package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hipstr/internal/fatbin"
	"hipstr/internal/telemetry"
)

// engineSubset keeps the determinism test affordable: a gadget-mining
// driver, the Table2 -> Fig7 dependency chain, and a size×benchmark sweep.
const engineSubset = "fig3,table2,fig7,fig11"

func runEngine(t *testing.T, parallel int) (string, []Result, *telemetry.Telemetry, string) {
	t.Helper()
	var buf bytes.Buffer
	s := QuickSuite(&buf)
	s.Parallel = parallel
	s.Telemetry = telemetry.New()
	exps, err := Select(engineSubset)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	results, err := Run(context.Background(), s, exps, Options{ResultsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), results, s.Telemetry, dir
}

// TestParallelMatchesSerial is the engine's core guarantee: rows and
// printed tables are byte-identical at -parallel=1 and -parallel=N.
func TestParallelMatchesSerial(t *testing.T) {
	serialOut, serialRes, _, _ := runEngine(t, 1)
	parOut, parRes, tel, dir := runEngine(t, 4)
	if serialOut != parOut {
		t.Fatalf("printed output differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialOut, parOut)
	}
	if len(serialRes) != len(parRes) {
		t.Fatalf("result count differs: %d vs %d", len(serialRes), len(parRes))
	}
	for i := range serialRes {
		if serialRes[i].Name != parRes[i].Name {
			t.Fatalf("result order differs: %s vs %s", serialRes[i].Name, parRes[i].Name)
		}
		a, err := json.Marshal(serialRes[i].Rows)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(parRes[i].Rows)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s rows differ:\n%s\nvs\n%s", serialRes[i].Name, a, b)
		}
	}

	// Result artifacts: one loadable JSON per experiment.
	for _, name := range strings.Split(engineSubset, ",") {
		data, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatalf("%s artifact: %v", name, err)
		}
		if res.Name != name || res.Rows == nil {
			t.Fatalf("%s artifact malformed: %+v", name, res)
		}
	}

	// Telemetry: engine counters plus per-figure series gauges.
	snap := tel.Snapshot()
	if got := snap.Counters["bench.experiments.run"]; got != 4 {
		t.Fatalf("bench.experiments.run = %d, want 4", got)
	}
	var series int
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "experiments.fig3.") || strings.HasPrefix(name, "experiments.fig11.") {
			series++
		}
	}
	if series == 0 {
		t.Fatalf("no per-figure series gauges published: %v", snap.Gauges)
	}
}

// TestBinCacheSingleflight hammers the compile cache from many goroutines
// (run with -race): every caller must observe the same binary per profile,
// compiled exactly once.
func TestBinCacheSingleflight(t *testing.T) {
	s := QuickSuite(io.Discard)
	const per = 8
	bins := make([]*fatbin.Binary, per*len(s.Profiles))
	var wg sync.WaitGroup
	for g := 0; g < len(bins); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b, err := s.bin(s.Profiles[g%len(s.Profiles)])
			if err != nil {
				t.Error(err)
				return
			}
			bins[g] = b
		}(g)
	}
	wg.Wait()
	for g, b := range bins {
		if b == nil {
			t.Fatalf("goroutine %d got nil binary", g)
		}
		if want := bins[g%len(s.Profiles)]; b != want {
			t.Fatalf("goroutine %d got a different binary instance for %s",
				g, s.Profiles[g%len(s.Profiles)].Name)
		}
	}
	for _, p := range s.Profiles {
		if s.module(p.Name) == nil {
			t.Fatalf("module %s not cached", p.Name)
		}
	}
}

// TestForEachCancellation cancels mid-sweep and checks the runner stops
// dispatching, returns the cancellation, and leaks no goroutines.
func TestForEachCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	s := &Suite{Parallel: 4}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int
	var mu sync.Mutex
	err := s.forEach(ctx, 64, func(i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 0 {
			cancel()
		}
		<-ctx.Done()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	n := ran
	mu.Unlock()
	if n >= 64 {
		t.Fatalf("all %d cells ran despite cancellation", n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, got)
	}
}

// TestDriverPreCanceled checks cancellation is honored before any cell of
// a real driver runs.
func TestDriverPreCanceled(t *testing.T) {
	s := QuickSuite(io.Discard)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Fig9(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig9 err = %v, want context.Canceled", err)
	}
	if _, err := Run(ctx, s, All(), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
}

// TestForEachPanicRecovery checks a panicking cell fails its sweep with
// the lowest failing index's error — and the process survives, serial or
// parallel.
func TestForEachPanicRecovery(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		s := &Suite{Parallel: parallel}
		err := s.forEach(context.Background(), 8, func(i int) error {
			if i == 1 || i == 5 {
				panic("synthetic cell failure")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "cell 1 panicked") {
			t.Fatalf("parallel=%d: err = %v, want cell 1 panic", parallel, err)
		}
	}
}

// TestRunPanicContainment checks a panic at driver level (outside any
// cell) fails that experiment only; with ContinueOnError the rest of the
// registry still runs.
func TestRunPanicContainment(t *testing.T) {
	var buf bytes.Buffer
	s := QuickSuite(&buf)
	exps := []Experiment{
		funcExperiment{name: "boom", desc: "always panics",
			run: func(context.Context, *Suite) (any, error) { panic("driver exploded") }},
		funcExperiment{name: "fig7-after", desc: "runs after the panic",
			run: func(_ context.Context, s *Suite) (any, error) { return s.Fig7(30), nil }},
	}
	results, err := Run(context.Background(), s, exps, Options{ContinueOnError: true})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want contained boom panic", err)
	}
	if len(results) != 1 || results[0].Name != "fig7-after" {
		t.Fatalf("later experiment did not run: %+v", results)
	}
}

// TestRegistryOrder pins the registry to the paper's evaluation order and
// checks Select's subset and error behavior.
func TestRegistryOrder(t *testing.T) {
	want := []string{"fig3", "fig4", "table2", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "httpd"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.Name() != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.Name(), want[i])
		}
		if e.Description() == "" {
			t.Fatalf("%s has no description", e.Name())
		}
	}
	sub, err := Select(" fig12, fig4 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name() != "fig4" || sub[1].Name() != "fig12" {
		t.Fatalf("Select did not preserve registry order: %v", sub)
	}
	if _, err := Select("fig99"); err == nil {
		t.Fatal("Select accepted an unknown experiment")
	}
}
