package fleet

import "math/rand"

// queue is a mutex-protected tenant deque. The owning worker pushes and
// pops at the front (FIFO within a worker keeps latency fair across its
// tenants); thieves take from the back, so the work a victim is about to
// touch — the cache-warm end — stays with the victim. A plain mutex beats
// a lock-free Chase-Lev here: a slice is tens of microseconds to
// milliseconds of guest execution, so queue ops are nowhere near the
// contention regime that justifies one.
type queue struct {
	mu    chan struct{} // 1-buffered semaphore; see lock/unlock
	head  int
	items []*Tenant
}

// The semaphore-as-mutex lets size() be a non-blocking best-effort probe
// without a second atomic field, and keeps the zero value unusable (a
// queue must be init'd), which catches plumbing mistakes in tests.
func newQueue() *queue { return &queue{mu: make(chan struct{}, 1)} }

func (q *queue) lock()   { q.mu <- struct{}{} }
func (q *queue) unlock() { <-q.mu }

func (q *queue) push(t *Tenant) {
	q.lock()
	q.items = append(q.items, t)
	q.unlock()
}

// pop removes the front tenant (owner side).
func (q *queue) pop() *Tenant {
	q.lock()
	if q.head == len(q.items) {
		q.head = 0
		q.items = q.items[:0]
		q.unlock()
		return nil
	}
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.head = 0
		q.items = q.items[:0]
	}
	q.unlock()
	return t
}

func (q *queue) size() int {
	q.lock()
	n := len(q.items) - q.head
	q.unlock()
	return n
}

// stealInto takes the back half of q (rounding up, at least one), returns
// the first stolen tenant for immediate execution, and appends the rest to
// the thief's deque. Taking half amortizes steal traffic: a thief that
// found work once has a local supply before it must search again.
func (q *queue) stealInto(thief *queue) *Tenant {
	q.lock()
	n := len(q.items) - q.head
	if n == 0 {
		q.unlock()
		return nil
	}
	k := (n + 1) / 2
	cut := len(q.items) - k
	taken := make([]*Tenant, k)
	copy(taken, q.items[cut:])
	for i := cut; i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = q.items[:cut]
	if q.head == len(q.items) {
		q.head = 0
		q.items = q.items[:0]
	}
	q.unlock()

	first := taken[0]
	if len(taken) > 1 {
		thief.lock()
		thief.items = append(thief.items, taken[1:]...)
		thief.unlock()
	}
	return first
}

// worker executes tenant slices. Each worker owns a deque; the host owns
// a global injector fed by admission. Dispatch order per iteration:
//
//  1. every 4th dispatch drains the injector first even when local work
//     is plentiful — the anti-starvation rule that bounds how long a
//     newly admitted tenant waits behind a worker's private backlog;
//  2. own deque front;
//  3. injector;
//  4. steal half a victim's deque, visiting victims in a seeded random
//     rotation so thieves don't convoy on worker 0.
//
// The rng only randomizes victim order (scheduling), never guest
// execution, so fleet results stay bit-identical across worker counts.
type worker struct {
	h    *Host
	id   int
	q    *queue
	rng  *rand.Rand
	tick uint64
}

func (w *worker) loop() {
	defer w.h.wg.Done()
	for {
		// Graceful drain: on context cancel (Ctrl-C) the worker finishes
		// the slice it is in and stops dispatching new ones, so the host
		// can still write its final metrics and incident artifacts
		// instead of silently executing the whole backlog first.
		if w.h.ctx.Err() != nil {
			return
		}
		t := w.next()
		if t == nil {
			if w.h.done() || w.h.ctx.Err() != nil {
				return
			}
			w.park()
			continue
		}
		w.h.runSlice(w, t)
	}
}

func (w *worker) next() *Tenant {
	w.tick++
	if w.tick%4 == 0 {
		if t := w.h.inj.pop(); t != nil {
			return t
		}
	}
	if t := w.q.pop(); t != nil {
		return t
	}
	if t := w.h.inj.pop(); t != nil {
		return t
	}
	n := len(w.h.workers)
	if n > 1 {
		start := w.rng.Intn(n)
		for i := 0; i < n; i++ {
			v := w.h.workers[(start+i)%n]
			if v == w {
				continue
			}
			if t := v.q.stealInto(w.q); t != nil {
				w.h.cSteals.Inc()
				return t
			}
		}
	}
	return nil
}

// park blocks until new work may exist. The idle count is bumped before
// re-checking for work under the host lock, and producers signal under
// the same lock after publishing, so the classic lost-wakeup interleaving
// (check, publish, signal-into-void, sleep) cannot occur.
func (w *worker) park() {
	h := w.h
	h.mu.Lock()
	h.idle++
	for !h.workAvailable() && !h.done() && h.ctx.Err() == nil {
		h.cond.Wait()
	}
	h.idle--
	h.mu.Unlock()
}

func (h *Host) workAvailable() bool {
	if h.inj.size() > 0 {
		return true
	}
	for _, w := range h.workers {
		if w.q.size() > 0 {
			return true
		}
	}
	return false
}

// wake signals one parked worker; wakeAll releases every parked worker
// (used for shutdown edges: admission closed + drained, or ctx cancel).
func (h *Host) wake() {
	h.mu.Lock()
	if h.idle > 0 {
		h.cond.Signal()
	}
	h.mu.Unlock()
}

func (h *Host) wakeAll() {
	h.mu.Lock()
	h.cond.Broadcast()
	h.mu.Unlock()
}
