package experiments

import (
	"context"

	"hipstr/internal/core"
	"hipstr/internal/dbt"
	"hipstr/internal/isa"
	"hipstr/internal/isomeron"
	"hipstr/internal/migrate"
	"hipstr/internal/perf"
	"hipstr/internal/stats"
	"hipstr/internal/workload"
)

// measurement window (progress-write boundaries).
func (s *Suite) window() (warm, measure int) {
	if s.Quick {
		return 1, 1
	}
	return 1, 2
}

// forEachProfile fans one cell per benchmark out on the worker pool.
func (s *Suite) forEachProfile(ctx context.Context, fn func(i int, p workload.Profile) error) error {
	return s.forEach(ctx, len(s.Profiles), func(i int) error {
		return fn(i, s.Profiles[i])
	})
}

// Fig9Row is one benchmark of Figure 9: relative performance at each PSR
// optimization level (1.0 = native).
type Fig9Row struct {
	Benchmark  string
	O1, O2, O3 float64
	NativeCPI  float64
}

// Fig9 measures steady-state performance at each optimization level.
func (s *Suite) Fig9(ctx context.Context) ([]Fig9Row, error) {
	s.header("Figure 9: Performance at PSR optimization levels (relative to native)")
	warm, meas := s.window()
	rows := make([]Fig9Row, len(s.Profiles))
	err := s.forEachProfile(ctx, func(i int, p workload.Profile) error {
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		native, err := perf.MeasureNative(bin, isa.X86, warm, meas)
		if err != nil {
			return err
		}
		row := Fig9Row{Benchmark: p.Name, NativeCPI: native.CPI}
		for _, o := range []dbt.OptLevel{dbt.O1, dbt.O2, dbt.O3} {
			cfg := dbt.DefaultConfig()
			cfg.Opt = o
			cfg.Seed = p.Seed
			cfg.MigrateProb = 0
			m, _, err := perf.MeasureVM(bin, isa.X86, cfg, warm, meas)
			if err != nil {
				return err
			}
			rel := perf.Relative(native, m)
			switch o {
			case dbt.O1:
				row.O1 = rel
			case dbt.O2:
				row.O2 = rel
			case dbt.O3:
				row.O3 = rel
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	var o3 []float64
	for _, row := range rows {
		s.printf("%-12s O1 %s  O2 %s  O3 %s\n", row.Benchmark,
			stats.Pct(row.O1), stats.Pct(row.O2), stats.Pct(row.O3))
		o3 = append(o3, row.O3)
	}
	s.printf("average PSR-O3: %s of native (paper: 86.9%%)\n", stats.Pct(stats.Mean(o3)))
	return rows, nil
}

// Fig10Row is one benchmark of Figure 10: relative performance at each
// stack-randomization size.
type Fig10Row struct {
	Benchmark         string
	S8, S16, S32, S64 float64
}

// Fig10 sweeps the frame randomization space (S8..S64 KiB).
func (s *Suite) Fig10(ctx context.Context) ([]Fig10Row, error) {
	s.header("Figure 10: Effect of additional stack memory (relative to native)")
	warm, meas := s.window()
	sizes := []int{2, 4, 8, 16} // pages: 8,16,32,64 KiB
	rows := make([]Fig10Row, len(s.Profiles))
	err := s.forEachProfile(ctx, func(i int, p workload.Profile) error {
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		native, err := perf.MeasureNative(bin, isa.X86, warm, meas)
		if err != nil {
			return err
		}
		row := Fig10Row{Benchmark: p.Name}
		for si, pages := range sizes {
			cfg := dbt.DefaultConfig()
			cfg.RandPages = pages
			cfg.Seed = p.Seed
			cfg.MigrateProb = 0
			m, _, err := perf.MeasureVM(bin, isa.X86, cfg, warm, meas)
			if err != nil {
				return err
			}
			rel := perf.Relative(native, m)
			switch si {
			case 0:
				row.S8 = rel
			case 1:
				row.S16 = rel
			case 2:
				row.S32 = rel
			case 3:
				row.S64 = rel
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		s.printf("%-12s S8 %s  S16 %s  S32 %s  S64 %s\n", row.Benchmark,
			stats.Pct(row.S8), stats.Pct(row.S16), stats.Pct(row.S32), stats.Pct(row.S64))
	}
	return rows, nil
}

// Fig11Point is one RAT size of Figure 11 (suite-average overhead vs the
// largest RAT).
type Fig11Point struct {
	RATSize  int
	Overhead float64 // fractional cycles overhead vs the 2048-entry RAT
	MissRate float64
}

// Fig11 sweeps the hardware return address table size.
func (s *Suite) Fig11(ctx context.Context) ([]Fig11Point, error) {
	s.header("Figure 11: Effect of RAT size on performance")
	warm, meas := s.window()
	sizes := []int{32, 64, 128, 256, 512, 1024, 2048}
	if s.Quick {
		sizes = []int{32, 256, 2048}
	}
	// One cell per (RAT size, benchmark) pair.
	type cell struct {
		cycles   float64
		missRate float64
		hasMiss  bool
	}
	np := len(s.Profiles)
	cells := make([]cell, len(sizes)*np)
	err := s.forEach(ctx, len(cells), func(ci int) error {
		size, p := sizes[ci/np], s.Profiles[ci%np]
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		cfg := dbt.DefaultConfig()
		cfg.RATSize = size
		cfg.Seed = p.Seed
		cfg.MigrateProb = 0
		m, vm, err := perf.MeasureVM(bin, isa.X86, cfg, warm, meas)
		if err != nil {
			return err
		}
		c := cell{cycles: m.Cycles}
		rat := vm.RATOf(isa.X86)
		if rat.Lookups > 0 {
			c.missRate = float64(rat.Misses) / float64(rat.Lookups)
			c.hasMiss = true
		}
		cells[ci] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pts []Fig11Point
	for si, size := range sizes {
		var overheads, missRates []float64
		for pi := range s.Profiles {
			c := cells[si*np+pi]
			overheads = append(overheads, c.cycles)
			if c.hasMiss {
				missRates = append(missRates, c.missRate)
			}
		}
		pts = append(pts, Fig11Point{RATSize: size,
			Overhead: stats.Mean(overheads), MissRate: stats.Mean(missRates)})
	}
	// Normalize against the largest RAT.
	ref := pts[len(pts)-1].Overhead
	for i := range pts {
		pts[i].Overhead = pts[i].Overhead/ref - 1
		s.printf("RAT %5d: overhead %s, miss rate %.4f%%\n",
			pts[i].RATSize, stats.Pct(pts[i].Overhead), 100*pts[i].MissRate)
	}
	return pts, nil
}

// Fig12Row is one benchmark of Figure 12: migration overhead in
// microseconds, both directions, averaged over random checkpoints.
type Fig12Row struct {
	Benchmark string
	ToX86us   float64 // ARM -> x86
	ToARMus   float64 // x86 -> ARM
}

// Fig12 forces migrations at random checkpoints and reports the modeled
// state-transformation cost.
func (s *Suite) Fig12(ctx context.Context) ([]Fig12Row, error) {
	s.header("Figure 12: Migration overhead (microseconds)")
	checkpoints := 10
	if s.Quick {
		checkpoints = 4
	}
	// One cell per (benchmark, checkpoint) pair; each boots a private
	// System, so cells only share the read-only binary.
	type cell struct {
		toARM, toX86 float64
		hasARM       bool
		hasX86       bool
	}
	cells := make([]cell, len(s.Profiles)*checkpoints)
	// runToMigration advances in small slices until a migration lands
	// (or the program ends).
	runToMigration := func(sys *core.System) (bool, error) {
		before := sys.Engine.Stats.Migrations
		for i := 0; i < 400; i++ {
			if sys.Exited() {
				return false, nil
			}
			if _, err := sys.Run(5_000); err != nil {
				return false, err
			}
			if sys.Engine.Stats.Migrations > before {
				return true, nil
			}
		}
		return false, nil
	}
	err := s.forEach(ctx, len(cells), func(ci int) error {
		p, c := s.Profiles[ci/checkpoints], ci%checkpoints
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig()
		cfg.DBT.Seed = p.Seed + int64(c)
		cfg.DBT.MigrateProb = 0 // only forced migrations
		sys, err := core.New(bin, cfg)
		if err != nil {
			return err
		}
		// Random checkpoint: run a varying slice, then force.
		if _, err := sys.Run(uint64(3_000 + 7_000*c)); err != nil {
			return err
		}
		eng := sys.Engine
		// x86 -> ARM.
		sys.RequestPhaseMigration()
		ok, err := runToMigration(sys)
		if err != nil {
			return err
		}
		if ok && sys.Active() == isa.ARM {
			cells[ci].toARM = eng.Stats.LastCostMicros
			cells[ci].hasARM = true
			// ARM -> x86.
			sys.RequestPhaseMigration()
			ok, err = runToMigration(sys)
			if err != nil {
				return err
			}
			if ok && sys.Active() == isa.X86 {
				cells[ci].toX86 = eng.Stats.LastCostMicros
				cells[ci].hasX86 = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig12Row
	for pi, p := range s.Profiles {
		var toARM, toX86 []float64
		for c := 0; c < checkpoints; c++ {
			cl := cells[pi*checkpoints+c]
			if cl.hasARM {
				toARM = append(toARM, cl.toARM)
			}
			if cl.hasX86 {
				toX86 = append(toX86, cl.toX86)
			}
		}
		row := Fig12Row{Benchmark: p.Name,
			ToARMus: stats.Mean(toARM), ToX86us: stats.Mean(toX86)}
		rows = append(rows, row)
		s.printf("%-12s arm->x86 %7.0fus  x86->arm %7.0fus\n", p.Name, row.ToX86us, row.ToARMus)
	}
	var a, b []float64
	for _, r := range rows {
		if r.ToX86us > 0 {
			a = append(a, r.ToX86us)
		}
		if r.ToARMus > 0 {
			b = append(b, r.ToARMus)
		}
	}
	s.printf("average: arm->x86 %.0fus (paper: 909us), x86->arm %.0fus (paper: 1287us)\n",
		stats.Mean(a), stats.Mean(b))
	return rows, nil
}

// Fig13Point is one cache size of Figure 13: indirect-transfer code-cache
// misses (security events) observed in a fixed work window.
type Fig13Point struct {
	CacheKB        int
	SecurityEvents uint64
	Flushes        uint64
	OverheadPct    float64
}

// Fig13 sweeps the code cache size.
func (s *Suite) Fig13(ctx context.Context) ([]Fig13Point, error) {
	s.header("Figure 13: Effect of code cache size on security migrations")
	warm, meas := s.window()
	sizes := []int{16, 32, 64, 128, 256, 768, 1536}
	if s.Quick {
		sizes = []int{16, 64, 1536}
	}
	type cell struct {
		events, flushes uint64
		cycles          float64
	}
	np := len(s.Profiles)
	cells := make([]cell, len(sizes)*np)
	err := s.forEach(ctx, len(cells), func(ci int) error {
		kb, p := sizes[ci/np], s.Profiles[ci%np]
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		cfg := dbt.DefaultConfig()
		cfg.CodeCacheSize = uint32(kb) * 1024
		cfg.Seed = p.Seed
		cfg.MigrateProb = 0
		m, vm, err := perf.MeasureVM(bin, isa.X86, cfg, warm, meas)
		if err != nil {
			return err
		}
		cells[ci] = cell{
			events:  vm.Stats.CodeCacheMisses,
			flushes: vm.Stats.Flushes,
			cycles:  m.Cycles,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pts []Fig13Point
	var refCycles float64
	for si := len(sizes) - 1; si >= 0; si-- {
		var events, flushes uint64
		var cycles []float64
		for pi := range s.Profiles {
			c := cells[si*np+pi]
			events += c.events
			flushes += c.flushes
			cycles = append(cycles, c.cycles)
		}
		pt := Fig13Point{CacheKB: sizes[si], SecurityEvents: events, Flushes: flushes}
		c := stats.Mean(cycles)
		if si == len(sizes)-1 {
			refCycles = c
		}
		if refCycles > 0 {
			pt.OverheadPct = c/refCycles - 1
		}
		pts = append([]Fig13Point{pt}, pts...)
	}
	for _, pt := range pts {
		s.printf("cache %5dKB: security events %4d, flushes %3d, overhead %s\n",
			pt.CacheKB, pt.SecurityEvents, pt.Flushes, stats.Pct(pt.OverheadPct))
	}
	return pts, nil
}

// Fig14Curve is one system's relative performance over diversification
// probability (Figure 14).
type Fig14Curve struct {
	System   string
	P        []float64
	Relative []float64
}

// Fig14 compares HIPStR (two cache sizes) against Isomeron and
// PSR+Isomeron.
func (s *Suite) Fig14(ctx context.Context) ([]Fig14Curve, error) {
	s.header("Figure 14: Performance comparison with Isomeron (relative to native)")
	warm, meas := s.window()
	ps := []float64{0, 0.25, 0.5, 0.75, 1.0}
	if s.Quick {
		ps = []float64{0, 0.5, 1.0}
	}
	systems := []string{"Isomeron", "PSR+Isomeron", "HIPStR-256KB", "HIPStR-2MB"}
	curves := make([]Fig14Curve, len(systems))
	for i, name := range systems {
		curves[i] = Fig14Curve{System: name, P: ps}
	}
	// One cell per (diversification probability, benchmark) pair — the
	// paper's slowest sweep and the one that gains most from fan-out.
	type cell struct {
		iso, combo, hip256, hip2m float64
	}
	np := len(s.Profiles)
	cells := make([]cell, len(ps)*np)
	err := s.forEach(ctx, len(cells), func(ci int) error {
		pv, p := ps[ci/np], s.Profiles[ci%np]
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		native, err := perf.MeasureNative(bin, isa.X86, warm, meas)
		if err != nil {
			return err
		}
		var c cell
		// Isomeron: modeled from the native run's call structure.
		isoCfg := isomeron.DefaultConfig()
		isoCfg.DiversifyProb = pv
		c.iso = isoCfg.Apply(native).Relative
		// PSR+Isomeron: PSR measured, Isomeron shepherding on top.
		psrCfg := dbt.DefaultConfig()
		psrCfg.Seed = p.Seed
		psrCfg.MigrateProb = 0
		psrRun, _, err := perf.MeasureVM(bin, isa.X86, psrCfg, warm, meas)
		if err != nil {
			return err
		}
		c.combo = isoCfg.CombineWithPSR(native, psrRun).Relative
		// HIPStR: PSR plus probabilistic migration on steady-state
		// security events. Warm caches make those events rare, so
		// raising the diversification probability costs almost
		// nothing — the paper's core performance argument. The
		// event rate is measured over the steady-state window and
		// each event charged the modeled migration cost.
		for _, cacheKB := range []int{256, 2048} {
			cfg := dbt.DefaultConfig()
			cfg.Seed = p.Seed
			cfg.CodeCacheSize = uint32(cacheKB) * 1024
			cfg.MigrateProb = 0 // measure events; migration modeled below
			m, delta, _, err := perf.MeasureVMStats(bin, isa.X86, cfg, warm, meas)
			if err != nil {
				return err
			}
			coreCfg := perf.CoreFor(isa.X86)
			migCycles := migrate.CostMicros(isa.ARM, 4, 120) * coreCfg.FreqGHz * 1e3
			extra := pv * float64(delta.CodeCacheMisses) * migCycles
			rel := native.Cycles / (m.Cycles + extra)
			if cacheKB == 256 {
				c.hip256 = rel
			} else {
				c.hip2m = rel
			}
		}
		cells[ci] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi := range ps {
		var iso, combo, hip256, hip2m []float64
		for bi := range s.Profiles {
			c := cells[pi*np+bi]
			iso = append(iso, c.iso)
			combo = append(combo, c.combo)
			hip256 = append(hip256, c.hip256)
			hip2m = append(hip2m, c.hip2m)
		}
		curves[0].Relative = append(curves[0].Relative, stats.Mean(iso))
		curves[1].Relative = append(curves[1].Relative, stats.Mean(combo))
		curves[2].Relative = append(curves[2].Relative, stats.Mean(hip256))
		curves[3].Relative = append(curves[3].Relative, stats.Mean(hip2m))
	}
	s.printf("%5s", "p")
	for _, c := range curves {
		s.printf(" %13s", c.System)
	}
	s.printf("\n")
	for i, pv := range ps {
		s.printf("%5.2f", pv)
		for _, c := range curves {
			s.printf(" %13s", stats.Pct(c.Relative[i]))
		}
		s.printf("\n")
	}
	// Headline: HIPStR vs Isomeron at full diversification.
	last := len(ps) - 1
	s.printf("HIPStR(2MB) vs Isomeron at p=1: +%s (paper: +15.6%%)\n",
		stats.Pct(curves[3].Relative[last]/curves[0].Relative[last]-1))
	return curves, nil
}
