package dbt

import (
	"hipstr/internal/isa"
	"hipstr/internal/psr"
)

// Call-boundary register marshaling — the core of the paper's procedure
// call transformation (§5.1). Each function's relocation map scatters
// architectural registers differently, so the translated code enforces a
// boundary convention: at every call instruction, function entry, and
// return, architectural register state is in its physical registers.
//
//   - callers de-relocate (Loc -> physical) before a call and re-relocate
//     (physical -> Loc) immediately after it (where the RAT resumes),
//   - callees re-relocate at entry (inside the rewritten prologue) and
//     de-relocate before returning (inside the rewritten epilogue).
//
// Marshaling stages every relocated value through the map's temp area
// first, which makes the moves hazard-free regardless of how the register
// permutation cycles. The staging temporaries are the boundary-dead
// scratch registers (x86 ECX; ARM R12, which is never relocated).

// boundaryTemp returns a register that is architecturally dead at call
// boundaries and safe to clobber during marshaling.
func boundaryTemp(k isa.Kind) isa.Reg {
	if k == isa.X86 {
		return isa.ECX
	}
	return isa.R12
}

// marshalSlot returns the temp-area offset used for architectural
// register r during boundary marshaling.
func marshalSlot(m *psr.Map, r isa.Reg, delta int32) int32 {
	return m.TempOff + 4*int32(r&0xF) - delta
}

// emitDeRelocate emits Loc(r) -> physical r for every relocated register:
// stage every relocated value into the temp area (memory writes only),
// then load each physical register from its slot.
func (t *translator) emitDeRelocate() {
	m := t.m
	k := t.k
	sp := isa.StackReg(k)
	tmp := boundaryTemp(k)
	regs := t.boundaryRegs()
	for _, r := range regs {
		l := m.LocOfReg(r)
		slot := marshalSlot(m, r, t.delta)
		if l.Kind == psr.LocReg {
			t.a.StoreWord(l.Reg, sp, slot, armScratchFor(k, l.Reg))
		} else {
			t.a.LoadWord(tmp, sp, l.Off-t.delta, armScratchFor(k, tmp))
			t.a.StoreWord(tmp, sp, slot, armScratchFor(k, tmp))
		}
	}
	for _, r := range regs {
		t.a.LoadWord(r, sp, marshalSlot(m, r, t.delta), armScratchFor(k, r))
	}
}

// emitReRelocate emits physical r -> Loc(r) for every relocated register:
// stage all physical values, then scatter to the relocated homes.
func (t *translator) emitReRelocate() {
	m := t.m
	k := t.k
	sp := isa.StackReg(k)
	tmp := boundaryTemp(k)
	regs := t.boundaryRegs()
	for _, r := range regs {
		t.a.StoreWord(r, sp, marshalSlot(m, r, t.delta), armScratchFor(k, r))
	}
	for _, r := range regs {
		l := m.LocOfReg(r)
		slot := marshalSlot(m, r, t.delta)
		if l.Kind == psr.LocReg {
			t.a.LoadWord(l.Reg, sp, slot, armScratchFor(k, l.Reg))
		} else {
			t.a.LoadWord(tmp, sp, slot, armScratchFor(k, tmp))
			t.a.StoreWord(tmp, sp, l.Off-t.delta, armScratchFor(k, tmp))
		}
	}
}

// indirectTargetSlot is the temp-area word (beyond any marshaling slot of
// a real register) used to stage indirect-call targets.
const indirectTargetSlot = 15

// stageIndirectTarget reads an indirect call's target operand through the
// relocation map and parks it in the temp area, returning the canonical
// frame offset the dispatch trap should read.
func (t *translator) stageIndirectTarget(in *isa.Inst, idx int) int32 {
	k := t.k
	sp := isa.StackReg(k)
	slot := t.m.TempOff + 4*indirectTargetSlot
	src := t.lowerOperand(in.Dst, idx)
	if k == isa.X86 {
		if src.Kind == isa.OpdMem {
			tmp := t.tmp()
			t.a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(tmp), Src: src})
			src = isa.R(tmp)
		}
		t.a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(sp, slot-t.delta), Src: src})
		return slot
	}
	vr := src.Reg
	if src.Kind == isa.OpdMem {
		vr = t.tmp()
		t.a.LoadWord(vr, src.Mem.Base, src.Mem.Disp, armScratchFor(k, vr))
	} else if src.Kind == isa.OpdImm {
		vr = t.tmp()
		t.a.Const32(vr, uint32(src.Imm))
	}
	t.a.StoreWord(vr, sp, slot-t.delta, armScratchFor(k, vr))
	return slot
}

// boundaryRegs lists the registers this function must marshal at call
// boundaries. The full relocated set is required for soundness: a callee
// that skipped re-relocating some caller-live physical register could
// still clobber it through its translator temporaries or syscall
// marshaling. (A liveness-pruned variant was evaluated and reverted: the
// ~1% win did not justify tracking every possible physical clobber.)
func (t *translator) boundaryRegs() []isa.Reg {
	return relocatedRegs(t.m, t.k)
}

// relocatedRegs lists every architectural register whose map entry is not
// the identity, in a stable order (the unpruned marshal set, also used by
// the VM's software re-relocation on recovery paths).
func relocatedRegs(m *psr.Map, k isa.Kind) []isa.Reg {
	var out []isa.Reg
	for i := 0; i < isa.NumRegs(k); i++ {
		r := isa.Reg(i)
		if r == isa.StackReg(k) || (k == isa.ARM && r >= isa.SP) {
			continue
		}
		if m.Relocated(r) {
			out = append(out, r)
		}
	}
	return out
}
