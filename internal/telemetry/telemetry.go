package telemetry

// Telemetry bundles one metrics registry with one event tracer — the unit
// of observability a protected System carries. All methods are nil-safe so
// uninstrumented construction paths (a bare migrate.Engine in a test, say)
// need no guards.
type Telemetry struct {
	Reg   *Registry
	Trace *Tracer
}

// New returns a fresh registry + tracer pair with the default ring size.
func New() *Telemetry {
	return &Telemetry{Reg: NewRegistry(), Trace: NewTracer(DefaultTraceCap)}
}

// NewWithTraceCap returns a registry + tracer pair whose event ring keeps
// the last capacity events (<= 0 selects DefaultTraceCap).
func NewWithTraceCap(capacity int) *Telemetry {
	return &Telemetry{Reg: NewRegistry(), Trace: NewTracer(capacity)}
}

// PublishSeries is the nil-safe series exporter (see Registry.PublishSeries).
func (t *Telemetry) PublishSeries(prefix string, points []SeriesPoint) {
	if t == nil || t.Reg == nil {
		return
	}
	t.Reg.PublishSeries(prefix, points)
}

// Emit records a trace event; a nil receiver drops it.
func (t *Telemetry) Emit(e Event) {
	if t == nil || t.Trace == nil {
		return
	}
	t.Trace.Emit(e)
}

// Snapshot returns the registry snapshot; a nil receiver yields an empty
// snapshot.
func (t *Telemetry) Snapshot() Snapshot {
	if t == nil || t.Reg == nil {
		return Snapshot{
			Counters:   map[string]uint64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistSnapshot{},
		}
	}
	return t.Reg.Snapshot()
}

// Counter is a nil-safe registry accessor (returns a detached counter on a
// nil receiver so callers can increment unconditionally).
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil || t.Reg == nil {
		return &Counter{}
	}
	return t.Reg.Counter(name)
}

// Gauge is the nil-safe gauge accessor.
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil || t.Reg == nil {
		return &Gauge{}
	}
	return t.Reg.Gauge(name)
}

// Histogram is the nil-safe histogram accessor.
func (t *Telemetry) Histogram(name string) *Histogram {
	if t == nil || t.Reg == nil {
		return &Histogram{}
	}
	return t.Reg.Histogram(name)
}
