package experiments_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hipstr/internal/attack"
	"hipstr/internal/experiments"
	"hipstr/internal/isa"
)

var ctx = context.Background()

// The quick suite exercises every experiment driver end to end and checks
// the paper's qualitative claims on the reduced benchmark set.

func quick(t *testing.T) (*experiments.Suite, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return experiments.QuickSuite(&buf), &buf
}

func TestFig3SurfaceReduction(t *testing.T) {
	s, buf := quick(t)
	rows, err := s.Fig3(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Viable == 0 {
			t.Fatalf("%s: no viable gadgets", r.Benchmark)
		}
		frac := float64(r.Unobfuscated) / float64(r.Viable)
		if frac > 0.15 {
			t.Fatalf("%s: %.0f%% unobfuscated; PSR should obfuscate the vast majority",
				r.Benchmark, frac*100)
		}
	}
	t.Log(buf.String())
}

func TestFig4SurvivingFraction(t *testing.T) {
	s, _ := quick(t)
	rows, err := s.Fig4(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		frac := float64(r.Surviving) / float64(r.Total)
		if frac <= 0 || frac > 0.5 {
			t.Fatalf("%s: surviving fraction %.2f implausible (paper: ~16%%)", r.Benchmark, frac)
		}
	}
}

func TestTable2Infeasibility(t *testing.T) {
	s, _ := quick(t)
	rows, err := s.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AttemptsNoBias < 1e12 {
			t.Fatalf("%s: brute force feasible (%.2e attempts)", r.Benchmark, r.AttemptsNoBias)
		}
	}
}

func TestFig5MigrationGating(t *testing.T) {
	s, _ := quick(t)
	rows, err := s.Fig5(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.JIT.InCache > r.JIT.TotalViable {
			t.Fatalf("%s: cache surface exceeds total", r.Benchmark)
		}
		if r.JIT.SufficientForExploit {
			t.Fatalf("%s: JIT-ROP exploit remained possible", r.Benchmark)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	s, _ := quick(t)
	rows, err := s.Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.X86ToARM < 0.5 || r.ARMToX86 < 0.5 {
			t.Fatalf("%s: migration safety too low: %+v", r.Benchmark, r)
		}
		if r.LegacyX86 > r.X86ToARM || r.LegacyARM > r.ARMToX86 {
			t.Fatalf("%s: on-demand transform did not improve safety", r.Benchmark)
		}
	}
}

func TestFig7And8(t *testing.T) {
	s, _ := quick(t)
	pts := s.Fig7(33)
	if len(pts) != 12 {
		t.Fatal("wrong chain range")
	}
	curves, err := s.Fig8(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[attack.Technique]experiments.Fig8Curve{}
	for _, c := range curves {
		byName[c.Technique] = c
	}
	last := len(byName[attack.TechHIPStR].Surviving) - 1
	if byName[attack.TechHIPStR].Surviving[last] > byName[attack.TechPSRIsomeron].Surviving[last] {
		t.Fatal("HIPStR should retain fewer gadgets than PSR+Isomeron at p=1")
	}
}

func TestFig9And10Windows(t *testing.T) {
	s, _ := quick(t)
	rows, err := s.Fig9(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.O3 < 0.2 || r.O3 > 1.1 {
			t.Fatalf("%s: O3 relative %.2f implausible", r.Benchmark, r.O3)
		}
		if r.O2 < r.O1*0.9 {
			t.Fatalf("%s: O2 (%.2f) regressed badly from O1 (%.2f)", r.Benchmark, r.O2, r.O1)
		}
	}
	rows10, err := s.Fig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows10 {
		// Figure 10: growing the frame to 64 KiB costs only a few percent.
		if r.S64 < r.S8-0.15 {
			t.Fatalf("%s: S64 (%.2f) collapsed vs S8 (%.2f)", r.Benchmark, r.S64, r.S8)
		}
	}
}

func TestFig11RATFree(t *testing.T) {
	s, _ := quick(t)
	pts, err := s.Fig11(ctx)
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last.MissRate > 0.001 {
		t.Fatalf("large RAT still missing: %.4f", last.MissRate)
	}
	// 512+ entries should be essentially free (paper: no noticeable
	// degradation at 512).
	for _, pt := range pts {
		if pt.RATSize >= 512 && pt.Overhead > 0.02 {
			t.Fatalf("RAT %d overhead %.3f", pt.RATSize, pt.Overhead)
		}
	}
}

func TestFig12Asymmetry(t *testing.T) {
	s, _ := quick(t)
	rows, err := s.Fig12(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ToARMus == 0 || r.ToX86us == 0 {
			t.Fatalf("%s: no migrations measured: %+v", r.Benchmark, r)
		}
		if r.ToARMus <= r.ToX86us {
			t.Fatalf("%s: x86->arm (%f) should cost more than arm->x86 (%f)",
				r.Benchmark, r.ToARMus, r.ToX86us)
		}
	}
}

func TestFig13LargeCacheQuiet(t *testing.T) {
	s, _ := quick(t)
	pts, err := s.Fig13(ctx)
	if err != nil {
		t.Fatal(err)
	}
	small, large := pts[0], pts[len(pts)-1]
	if small.CacheKB > large.CacheKB {
		t.Fatal("points out of order")
	}
	if large.Flushes > small.Flushes {
		t.Fatal("larger cache flushed more")
	}
}

func TestFig14HIPStRWins(t *testing.T) {
	s, buf := quick(t)
	curves, err := s.Fig14(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, c := range curves {
		byName[c.System] = c.Relative
	}
	last := len(byName["Isomeron"]) - 1
	if byName["HIPStR-2MB"][last] <= byName["Isomeron"][last] {
		t.Log(buf.String())
		t.Fatalf("HIPStR (%.2f) did not beat Isomeron (%.2f) at p=1",
			byName["HIPStR-2MB"][last], byName["Isomeron"][last])
	}
	if byName["HIPStR-2MB"][last] <= byName["PSR+Isomeron"][last] {
		t.Fatalf("HIPStR should beat PSR+Isomeron")
	}
	if !strings.Contains(buf.String(), "HIPStR") {
		t.Fatal("no output")
	}
	_ = isa.X86
}

func TestHTTPDCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("httpd is the largest binary")
	}
	s, buf := quick(t)
	res, err := s.HTTPD(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obfuscated < 0.85 {
		t.Fatalf("httpd obfuscation only %.2f", res.Obfuscated)
	}
	if res.JIT.SufficientForExploit {
		t.Fatal("httpd JIT-ROP exploit possible")
	}
	t.Log(buf.String())
}
