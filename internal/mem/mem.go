// Package mem provides the sparse, permission-checked 32-bit address space
// shared by both cores of the simulated heterogeneous-ISA CMP.
//
// The address space is organized as 4 KiB pages created on demand by Map.
// Named regions record the process layout (per-ISA text sections, data,
// heap, stack, per-ISA code caches) so higher layers — the PSR virtual
// machine's software-fault-isolation checks, the gadget miner, the JIT-ROP
// attacker model — can reason about which region an address falls in.
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the granularity of mapping and permissions.
const PageSize = 4096

// Perm is a page-permission bitmask.
type Perm uint8

const (
	PermR Perm = 1 << iota
	PermW
	PermX
	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Fault is a memory access violation: unmapped address or permission
// mismatch. Attack simulations use Faults to detect crashed exploit
// attempts.
type Fault struct {
	Addr   uint32
	Access Perm
	Mapped bool
}

func (f *Fault) Error() string {
	if !f.Mapped {
		return fmt.Sprintf("mem: fault: %s access to unmapped address %#x", f.Access, f.Addr)
	}
	return fmt.Sprintf("mem: fault: %s access denied at %#x", f.Access, f.Addr)
}

type page struct {
	data []byte
	perm Perm
	// gen is the page's code generation: the codeGen value of the last
	// mutation that could have changed executable bytes on this page. The
	// effective generation reported by PageGen is max(gen, allGen), so
	// whole-address-space invalidations stay O(1).
	gen uint64
	// shared marks data as aliased by a Snapshot or a sibling Memory
	// (Fork/Clone): the bytes are immutable until this Memory copies them
	// (copy-on-write). The flag is per-Memory and flipped only by the
	// owning goroutine, so the write barrier pays a plain bool check, not
	// an atomic.
	shared bool
}

// Region is a named address range of the process layout.
type Region struct {
	Name string
	Base uint32
	Size uint32
	Perm Perm
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint32) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// End returns the first address past the region.
func (r Region) End() uint32 { return r.Base + r.Size }

// Memory is a sparse paged address space.
type Memory struct {
	pages   map[uint32]*page
	regions map[string]Region
	// codeGen is the monotonic code-generation counter: it advances on
	// every mutation that could change executable bytes (writes into
	// pages with execute permission, permission changes that grant
	// execute, and explicit InvalidateCode calls). Consumers that cache
	// decoded instructions — the interpreter's basic-block cache — compare
	// generations instead of re-fetching, so the hot path stays a single
	// integer comparison. It is the "anything changed?" fast path; the
	// per-page generations below say *what* changed.
	codeGen uint64
	// allGen is the whole-address-space invalidation floor: InvalidateCode
	// raises it to codeGen, and every page's effective generation is
	// clamped up to it (see PageGen). This keeps full invalidation O(1)
	// while ranged mutations touch only the pages actually written.
	allGen uint64
	// writeLog is a ring of the byte ranges behind recent generation
	// bumps, indexed by generation. Consumers that fall behind by more
	// than CodeWriteLogSize generations (or that observe allGen moving)
	// fall back to coarser page- or whole-cache invalidation.
	writeLog [CodeWriteLogSize]codeWrite
	// cowBroken counts pages this Memory has privatized: shared page data
	// copied because of a write (see ensureOwned).
	cowBroken uint64
	// tlb is a direct-mapped translation cache over the page table. Pages
	// are never removed from the table and *page pointers are stable for
	// the life of the Memory (Map re-permissions in place, ensureOwned
	// swaps the data slice inside the struct), so entries never need
	// invalidation: permissions and the shared flag live on the page and
	// are still checked on every access. A nil tlbPG slot is empty.
	tlbPN [tlbSize]uint32
	tlbPG [tlbSize]*page
}

// tlbSize is the number of direct-mapped page-translation slots per
// Memory; must be a power of two.
const tlbSize = 64

// CodeWriteLogSize is the number of recent ranged code mutations the
// memory remembers for byte-exact cache invalidation.
const CodeWriteLogSize = 64

type codeWrite struct {
	gen  uint64
	addr uint32
	size uint32
}

// CodeWrite is the byte range of one ranged code mutation.
type CodeWrite struct {
	Addr uint32
	Size uint32
}

// CodeWriteAt returns the byte range whose mutation produced generation g,
// if g is recent enough to still be in the write log. Whole-address-space
// invalidations never appear here — CodeGenFloor reports those.
func (m *Memory) CodeWriteAt(g uint64) (CodeWrite, bool) {
	e := &m.writeLog[g%CodeWriteLogSize]
	if e.gen != g {
		return CodeWrite{}, false
	}
	return CodeWrite{Addr: e.addr, Size: e.size}, true
}

// logCodeWrite records the byte range of the mutation that produced the
// current code generation.
func (m *Memory) logCodeWrite(addr, size uint32) {
	m.writeLog[m.codeGen%CodeWriteLogSize] = codeWrite{gen: m.codeGen, addr: addr, size: size}
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{
		pages:   make(map[uint32]*page),
		regions: make(map[string]Region),
		codeGen: 1,
	}
}

// CodeGen returns the current code generation. Some cached decode of
// executable bytes may be stale once the value changes; PageGen narrows
// the staleness to individual pages.
func (m *Memory) CodeGen() uint64 { return m.codeGen }

// PageGen returns the effective code generation of page number pn
// (addr/PageSize). A cached decode of bytes on that page is stale once
// the value moves past the generation observed at decode time. Unmapped
// pages report the whole-space floor: nothing decodable lives there.
func (m *Memory) PageGen(pn uint32) uint64 {
	if pg, ok := m.pages[pn]; ok && pg.gen > m.allGen {
		return pg.gen
	}
	return m.allGen
}

// CodeGenFloor returns the whole-address-space invalidation floor: the
// generation every page is clamped up to. Block caches compare it against
// their sync point to detect a full invalidation without walking pages.
func (m *Memory) CodeGenFloor() uint64 { return m.allGen }

// InvalidateCode advances the code generation for the entire address
// space without touching memory — the coarse fallback when the caller
// cannot name the affected range. Every page's effective generation moves,
// so consumers drop all cached decodes.
func (m *Memory) InvalidateCode() {
	m.codeGen++
	m.allGen = m.codeGen
}

// InvalidateCodeRange advances the code generation of the pages covering
// [addr, addr+size) without touching memory. The DBT wires code-cache
// flushes here so block caches drop decodes of evicted translations —
// and only those — even before their bytes are overwritten.
func (m *Memory) InvalidateCodeRange(addr, size uint32) {
	if size == 0 {
		return
	}
	m.codeGen++
	m.logCodeWrite(addr, size)
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for pn := first; pn <= last; pn++ {
		if pg, ok := m.pages[pn]; ok {
			pg.gen = m.codeGen
		}
	}
}

// Map creates (or re-permissions) pages covering [addr, addr+size) with the
// given permissions and, when name is non-empty, records a region of that
// name. Size is rounded up to whole pages.
func (m *Memory) Map(name string, addr, size uint32, perm Perm) Region {
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	bumped := false
	for pn := first; pn <= last; pn++ {
		if pg, ok := m.pages[pn]; ok {
			if (pg.perm|perm)&PermX != 0 {
				if !bumped {
					m.codeGen++
					m.logCodeWrite(first*PageSize, (last-first+1)*PageSize)
					bumped = true
				}
				pg.gen = m.codeGen
			}
			pg.perm = perm
		} else {
			// A fresh page cannot have cached decodes: no generation bump.
			m.pages[pn] = &page{data: make([]byte, PageSize), perm: perm}
		}
	}
	r := Region{Name: name, Base: addr, Size: size, Perm: perm}
	if name != "" {
		m.regions[name] = r
	}
	return r
}

// Protect changes the permissions of all pages covering [addr, addr+size).
// Unmapped pages in the range are ignored.
func (m *Memory) Protect(addr, size uint32, perm Perm) {
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	bumped := false
	for pn := first; pn <= last; pn++ {
		if pg, ok := m.pages[pn]; ok {
			if (pg.perm|perm)&PermX != 0 {
				if !bumped {
					m.codeGen++
					m.logCodeWrite(first*PageSize, (last-first+1)*PageSize)
					bumped = true
				}
				pg.gen = m.codeGen
			}
			pg.perm = perm
		}
	}
}

// Region returns the named region.
func (m *Memory) Region(name string) (Region, bool) {
	r, ok := m.regions[name]
	return r, ok
}

// Regions returns all named regions sorted by base address.
func (m *Memory) Regions() []Region {
	out := make([]Region, 0, len(m.regions))
	for _, r := range m.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// RegionAt returns the named region containing addr, if any.
func (m *Memory) RegionAt(addr uint32) (Region, bool) {
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// ensureOwned privatizes a page whose data is aliased by a snapshot or a
// sibling fork: the bytes are copied and the shared flag drops, so the
// write about to happen cannot leak into other address spaces. Pages never
// shared (the common case after warm-up) cost one predictable branch.
func (m *Memory) ensureOwned(pg *page) {
	if !pg.shared {
		return
	}
	nd := make([]byte, PageSize)
	copy(nd, pg.data)
	pg.data = nd
	pg.shared = false
	m.cowBroken++
}

// CowBroken returns how many shared pages this Memory has privatized
// (copied on first write) since it was created or forked.
func (m *Memory) CowBroken() uint64 { return m.cowBroken }

// SharedPages returns how many of this Memory's pages still alias bytes
// owned jointly with a snapshot or sibling fork. A freshly forked Memory
// shares everything; the count decays as the write barrier privatizes
// pages.
func (m *Memory) SharedPages() int {
	n := 0
	for _, pg := range m.pages {
		if pg.shared {
			n++
		}
	}
	return n
}

func (m *Memory) pageFor(addr uint32, access Perm) (*page, error) {
	pn := addr / PageSize
	slot := pn & (tlbSize - 1)
	pg := m.tlbPG[slot]
	if pg == nil || m.tlbPN[slot] != pn {
		var ok bool
		pg, ok = m.pages[pn]
		if !ok {
			return nil, &Fault{Addr: addr, Access: access}
		}
		m.tlbPN[slot] = pn
		m.tlbPG[slot] = pg
	}
	if pg.perm&access != access {
		return nil, &Fault{Addr: addr, Access: access, Mapped: true}
	}
	return pg, nil
}

// Read copies len(buf) bytes from addr, requiring read permission.
func (m *Memory) Read(addr uint32, buf []byte) error {
	off := addr
	for len(buf) > 0 {
		pg, err := m.pageFor(off, PermR)
		if err != nil {
			return err
		}
		po := off % PageSize
		n := copy(buf, pg.data[po:])
		buf = buf[n:]
		off += uint32(n)
	}
	return nil
}

// Write copies buf to addr, requiring write permission.
func (m *Memory) Write(addr uint32, buf []byte) error {
	off := addr
	n0 := uint32(len(buf))
	bumped := false
	for len(buf) > 0 {
		pg, err := m.pageFor(off, PermW)
		if err != nil {
			return err
		}
		m.ensureOwned(pg)
		if pg.perm&PermX != 0 {
			if !bumped {
				m.codeGen++
				m.logCodeWrite(addr, n0)
				bumped = true
			}
			pg.gen = m.codeGen
		}
		po := off % PageSize
		n := copy(pg.data[po:], buf)
		buf = buf[n:]
		off += uint32(n)
	}
	return nil
}

// WriteForce writes ignoring permissions, mapping pages as needed. Loaders
// and the DBT's code-cache emitter use it; simulated programs never do.
func (m *Memory) WriteForce(addr uint32, buf []byte) {
	off := addr
	n0 := uint32(len(buf))
	bumped := false
	for len(buf) > 0 {
		pn := off / PageSize
		pg, ok := m.pages[pn]
		if !ok {
			pg = &page{data: make([]byte, PageSize)}
			m.pages[pn] = pg
		}
		m.ensureOwned(pg)
		if pg.perm&PermX != 0 {
			if !bumped {
				m.codeGen++
				m.logCodeWrite(addr, n0)
				bumped = true
			}
			pg.gen = m.codeGen
		}
		po := off % PageSize
		n := copy(pg.data[po:], buf)
		buf = buf[n:]
		off += uint32(n)
	}
}

// LoadByte reads a single byte.
func (m *Memory) LoadByte(addr uint32) (byte, error) {
	pg, err := m.pageFor(addr, PermR)
	if err != nil {
		return 0, err
	}
	return pg.data[addr%PageSize], nil
}

// StoreByte writes a single byte.
func (m *Memory) StoreByte(addr uint32, v byte) error {
	pg, err := m.pageFor(addr, PermW)
	if err != nil {
		return err
	}
	m.ensureOwned(pg)
	if pg.perm&PermX != 0 {
		m.codeGen++
		m.logCodeWrite(addr, 1)
		pg.gen = m.codeGen
	}
	pg.data[addr%PageSize] = v
	return nil
}

// ReadWord reads a little-endian 32-bit word.
func (m *Memory) ReadWord(addr uint32) (uint32, error) {
	if po := addr % PageSize; po <= PageSize-4 {
		pg, err := m.pageFor(addr, PermR)
		if err != nil {
			return 0, err
		}
		d := pg.data[po : po+4 : po+4]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
	}
	var b [4]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteWord writes a little-endian 32-bit word.
func (m *Memory) WriteWord(addr uint32, v uint32) error {
	if po := addr % PageSize; po <= PageSize-4 {
		pg, err := m.pageFor(addr, PermW)
		if err != nil {
			return err
		}
		m.ensureOwned(pg)
		if pg.perm&PermX != 0 {
			m.codeGen++
			m.logCodeWrite(addr, 4)
			pg.gen = m.codeGen
		}
		d := pg.data[po : po+4 : po+4]
		d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return nil
	}
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return m.Write(addr, b[:])
}

// Fetch returns up to n instruction bytes starting at addr, requiring
// execute permission on every page touched. Fewer than n bytes are
// returned when the executable range ends.
func (m *Memory) Fetch(addr uint32, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	off := addr
	for len(out) < n {
		pg, err := m.pageFor(off, PermX)
		if err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		po := off % PageSize
		take := min(n-len(out), PageSize-int(po))
		out = append(out, pg.data[po:int(po)+take]...)
		off += uint32(take)
	}
	return out, nil
}

// FetchInto is Fetch with a caller-owned buffer: it fills buf with
// instruction bytes starting at addr and returns how many were copied.
// Fewer than len(buf) bytes come back when the executable range ends;
// a fault on the very first page is an error. The interpreter's block
// cache uses this to refill without allocating per fetch.
func (m *Memory) FetchInto(addr uint32, buf []byte) (int, error) {
	off := addr
	n := 0
	for n < len(buf) {
		pg, err := m.pageFor(off, PermX)
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		po := off % PageSize
		c := copy(buf[n:], pg.data[po:])
		n += c
		off += uint32(c)
	}
	return n, nil
}

// Snapshot is a frozen image of a Memory: page data aliased copy-on-write,
// plus the region table and the full code-generation state (codeGen,
// allGen floor, write log) at the moment of the snapshot. Snapshots are
// immutable and safe to Fork from many goroutines concurrently; the
// source Memory keeps running and privatizes pages as it writes.
type Snapshot struct {
	pages    map[uint32]snapPage
	regions  map[string]Region
	codeGen  uint64
	allGen   uint64
	writeLog [CodeWriteLogSize]codeWrite
}

type snapPage struct {
	data []byte // immutable: every aliasing Memory carries shared=true
	perm Perm
	gen  uint64
}

// Snapshot freezes the current image. Every live page is marked shared, so
// the source Memory's next write to it copies first — the snapshot's bytes
// never change after this call. Cost is O(page-table), zero byte copies.
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		pages:    make(map[uint32]snapPage, len(m.pages)),
		regions:  make(map[string]Region, len(m.regions)),
		codeGen:  m.codeGen,
		allGen:   m.allGen,
		writeLog: m.writeLog,
	}
	for pn, pg := range m.pages {
		pg.shared = true
		s.pages[pn] = snapPage{data: pg.data, perm: pg.perm, gen: pg.gen}
	}
	for n, r := range m.regions {
		s.regions[n] = r
	}
	return s
}

// Pages returns how many pages the snapshot holds.
func (s *Snapshot) Pages() int { return len(s.pages) }

// Fork materializes a new Memory from the snapshot. Every page aliases the
// snapshot's bytes until the new Memory first writes it (the write barrier
// copies on demand), so forking costs O(page-table) regardless of image
// size. Code generations, the allGen floor, and the write log carry over,
// keeping block caches built against the source image exactly as valid as
// they were at snapshot time.
func (s *Snapshot) Fork() *Memory {
	c := New()
	for pn, sp := range s.pages {
		c.pages[pn] = &page{data: sp.data, perm: sp.perm, gen: sp.gen, shared: true}
	}
	for n, r := range s.regions {
		c.regions[n] = r
	}
	c.codeGen = s.codeGen
	c.allGen = s.allGen
	c.writeLog = s.writeLog
	return c
}

// Clone copies the address space, including regions and generation state.
// The copy is lazy: both the original and the clone keep aliasing the same
// page bytes until either side writes (copy-on-write), so Clone is
// O(page-table) rather than O(image). Respawn-based brute-force
// simulations use it to restore pristine process images.
func (m *Memory) Clone() *Memory {
	return m.Snapshot().Fork()
}
