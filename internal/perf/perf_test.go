package perf_test

import (
	"testing"

	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/perf"
	"hipstr/internal/workload"
)

func bench(t *testing.T, name string) *fatbin.Binary {
	t.Helper()
	p, ok := workload.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	bin, err := workload.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestNativeMeasurement(t *testing.T) {
	bin := bench(t, "libquantum")
	m, err := perf.MeasureNative(bin, isa.X86, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Instrs == 0 || m.Cycles <= 0 {
		t.Fatalf("empty measurement: %+v", m)
	}
	if m.CPI < 0.25 || m.CPI > 20 {
		t.Fatalf("x86 CPI %.2f implausible", m.CPI)
	}
	t.Logf("x86 native: %d instrs, CPI %.2f", m.Instrs, m.CPI)
}

func TestX86CoreOutperformsARM(t *testing.T) {
	// Same work on both cores: the Xeon-class core should finish it in
	// less wall time (higher frequency, deeper ROB).
	bin := bench(t, "libquantum")
	mx, err := perf.MeasureNative(bin, isa.X86, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := perf.MeasureNative(bin, isa.ARM, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("x86 %.3gms vs arm %.3gms", mx.Seconds*1e3, ma.Seconds*1e3)
	if mx.Seconds >= ma.Seconds {
		t.Fatalf("x86 (%.3gms) not faster than ARM (%.3gms)", mx.Seconds*1e3, ma.Seconds*1e3)
	}
}

func TestPSROverheadIsBoundedAndOptimizationsHelp(t *testing.T) {
	bin := bench(t, "libquantum")
	native, err := perf.MeasureNative(bin, isa.X86, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rel := map[dbt.OptLevel]float64{}
	for _, opt := range []dbt.OptLevel{dbt.O0, dbt.O2, dbt.O3} {
		cfg := dbt.DefaultConfig()
		cfg.Opt = opt
		cfg.MigrateProb = 0
		m, _, err := perf.MeasureVM(bin, isa.X86, cfg, 1, 2)
		if err != nil {
			t.Fatalf("opt %d: %v", opt, err)
		}
		rel[opt] = perf.Relative(native, m)
		t.Logf("O%d: relative %.3f (CPI %.2f vs native %.2f)", opt, rel[opt], m.CPI, native.CPI)
	}
	if rel[dbt.O0] <= 0.2 || rel[dbt.O0] >= 1.05 {
		t.Fatalf("O0 relative performance %.2f out of plausible range", rel[dbt.O0])
	}
	// Figure 9's shape: O2's global register cache is a significant win
	// over O0; O3 adds a further modest gain.
	if rel[dbt.O2] <= rel[dbt.O0] {
		t.Fatalf("global register cache did not help: O2 %.3f <= O0 %.3f", rel[dbt.O2], rel[dbt.O0])
	}
	if rel[dbt.O3] < rel[dbt.O2]*0.97 {
		t.Fatalf("register bias regressed badly: O3 %.3f vs O2 %.3f", rel[dbt.O3], rel[dbt.O2])
	}
}

func TestCachesAndPredictorCount(t *testing.T) {
	bin := bench(t, "lbm")
	m, err := perf.MeasureNative(bin, isa.X86, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counts.Loads == 0 || m.Counts.Stores == 0 || m.Counts.Branches == 0 {
		t.Fatalf("instruction mix empty: %+v", m.Counts)
	}
	if m.Counts.Returns == 0 || m.Counts.Calls == 0 {
		t.Fatalf("call structure empty: %+v", m.Counts)
	}
}

func TestRATPenaltyScalesWithReturns(t *testing.T) {
	// Two identical VM runs, one with a tiny RAT: more return misses
	// means retranslation work, but the per-return penalty itself is
	// charged identically; the *system* effect shows in VM stats.
	bin := bench(t, "libquantum")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	_, vm, err := perf.MeasureVM(bin, isa.X86, cfg, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vm.RATOf(isa.X86).Lookups == 0 {
		t.Fatal("no RAT activity")
	}
	missRate := float64(vm.RATOf(isa.X86).Misses) / float64(vm.RATOf(isa.X86).Lookups)
	if missRate > 0.01 {
		t.Fatalf("512-entry RAT miss rate %.4f; paper expects ~0", missRate)
	}
}
