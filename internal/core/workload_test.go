package core_test

import (
	"reflect"
	"testing"

	"hipstr/internal/core"
	"hipstr/internal/isa"
	"hipstr/internal/proc"
	"hipstr/internal/workload"
)

// TestWorkloadsUnderFullDefense runs the two smallest benchmarks to
// completion under HIPStR with migration probability 1 and checks exact
// behavioral equivalence with native execution — the strongest end-to-end
// guarantee in the suite (full programs, indirect calls, syscalls, and
// live migrations).
func TestWorkloadsUnderFullDefense(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	for _, name := range []string{"libquantum", "lbm"} {
		p, _ := workload.ProfileByName(name)
		p.WorkIters = 3
		bin, err := workload.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		native, err := proc.New(bin, isa.X86)
		if err != nil {
			t.Fatal(err)
		}
		if err := native.RunToExit(80_000_000); err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 2; seed++ {
			cfg := core.DefaultConfig()
			cfg.DBT.Seed = seed
			cfg.DBT.MigrateProb = 1.0
			sys, err := core.New(bin, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(200_000_000); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !sys.Exited() || sys.ExitCode() != native.ExitCode {
				t.Fatalf("%s seed %d: exit %d (exited=%v), native %d",
					name, seed, sys.ExitCode(), sys.Exited(), native.ExitCode)
			}
			if !reflect.DeepEqual(sys.VM.P.Trace, native.Trace) {
				t.Fatalf("%s seed %d: progress trace diverged", name, seed)
			}
			t.Logf("%s seed %d: %d migrations, %d security events, final core %s",
				name, seed, sys.Migrations(), sys.SecurityEvents(), sys.Active())
		}
	}
}

// TestWorkloadTinyCacheUnderDefense stresses cache flushes + migrations
// together on a real workload.
func TestWorkloadTinyCacheUnderDefense(t *testing.T) {
	p, _ := workload.ProfileByName("libquantum")
	p.WorkIters = 2
	bin, err := workload.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	native, err := proc.New(bin, isa.X86)
	if err != nil {
		t.Fatal(err)
	}
	if err := native.RunToExit(80_000_000); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.DBT.CodeCacheSize = 8 * 1024
	cfg.DBT.MigrateProb = 1.0
	sys, err := core.New(bin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(300_000_000); err != nil {
		t.Fatal(err)
	}
	if !sys.Exited() || sys.ExitCode() != native.ExitCode {
		t.Fatalf("exit %d (exited=%v), native %d", sys.ExitCode(), sys.Exited(), native.ExitCode)
	}
	if sys.VM.Stats.Flushes == 0 {
		t.Fatal("expected flushes with a 24 KiB cache")
	}
}
