package fatbin

import (
	"testing"

	"hipstr/internal/isa"
	"hipstr/internal/mem"
)

func sampleMeta() *FuncMeta {
	return &FuncMeta{
		Name:      "f",
		NumArgs:   2,
		NVRegs:    6,
		NSlots:    3,
		FrameSize: 0x80,
		OutArgOff: 0,
		LocalOff:  0x10,
		SpillOff:  0x1C,
		SaveOff:   0x2C,
		FixedSlot: []bool{false, true, false},
		Entry:     [2]uint32{X86TextBase, ARMTextBase},
		Start:     [2]uint32{X86TextBase, ARMTextBase},
		End:       [2]uint32{X86TextBase + 0x100, ARMTextBase + 0x100},
	}
}

func TestFrameOffsets(t *testing.T) {
	f := sampleMeta()
	if f.RetAddrOff() != 0x80 {
		t.Fatalf("ret addr at %#x", f.RetAddrOff())
	}
	if f.ArgOff(0) != 0x84 || f.ArgOff(1) != 0x88 {
		t.Fatalf("arg offsets %#x %#x", f.ArgOff(0), f.ArgOff(1))
	}
	// Parameters live in their incoming slots.
	if f.HomeOff(0) != f.ArgOff(0) || f.HomeOff(1) != f.ArgOff(1) {
		t.Fatal("param homes not aliased to arg slots")
	}
	if f.HomeOff(2) != f.SpillOff {
		t.Fatalf("first non-param home at %#x, want %#x", f.HomeOff(2), f.SpillOff)
	}
	if f.SlotOff(1) != f.LocalOff+4 {
		t.Fatalf("slot offset %#x", f.SlotOff(1))
	}
}

func TestRelocatableOffsetsExcludeFixed(t *testing.T) {
	f := sampleMeta()
	off := f.RelocatableOffsets()
	want := map[uint32]bool{}
	for _, o := range off {
		if want[o] {
			t.Fatalf("duplicate relocatable offset %#x", o)
		}
		want[o] = true
	}
	if want[f.SlotOff(1)] {
		t.Fatal("fixed slot listed as relocatable")
	}
	if !want[f.SlotOff(0)] || !want[f.SlotOff(2)] {
		t.Fatal("free slots missing")
	}
	if !want[f.RetAddrOff()] {
		t.Fatal("return-address slot missing")
	}
	for w := uint32(0); w < SaveAreaWords; w++ {
		if !want[f.SaveOff+4*w] {
			t.Fatalf("save word %d missing", w)
		}
	}
	// Non-param homes included, param homes (caller's area) excluded.
	if !want[f.HomeOff(3)] {
		t.Fatal("vreg home missing")
	}
	if want[f.ArgOff(0)] {
		t.Fatal("incoming arg slot should not be self-relocated")
	}
}

func TestCallSiteByRet(t *testing.T) {
	f := sampleMeta()
	f.CallSites = []CallSite{{RetAddr: [2]uint32{0x100, 0x200}}}
	if cs, ok := f.CallSiteByRet(isa.X86, 0x100); !ok || cs.RetAddr[isa.ARM] != 0x200 {
		t.Fatal("lookup failed")
	}
	if _, ok := f.CallSiteByRet(isa.ARM, 0x100); ok {
		t.Fatal("wrong-ISA lookup matched")
	}
}

func TestLoadMapsRegions(t *testing.T) {
	b := &Binary{
		Module:     "t",
		Text:       [2][]byte{{0x90}, {0, 0, 0, 0}},
		Data:       []byte{1, 2, 3, 4},
		FuncByName: map[string]int{},
	}
	ram := mem.New()
	b.Load(ram, 0x10000, 0x1000)
	for _, name := range []string{"text.x86", "text.arm", "data", "heap", "stack"} {
		if _, ok := ram.Region(name); !ok {
			t.Fatalf("region %q not mapped", name)
		}
	}
	v, err := ram.ReadWord(DataBase)
	if err != nil || v != 0x04030201 {
		t.Fatalf("data readback %#x, %v", v, err)
	}
	if _, err := ram.Fetch(X86TextBase, 1); err != nil {
		t.Fatalf("text not executable: %v", err)
	}
	if err := ram.WriteWord(X86TextBase, 1); err == nil {
		t.Fatal("text writable")
	}
}

func TestTextRangeAndCacheBases(t *testing.T) {
	b := &Binary{Text: [2][]byte{make([]byte, 100), make([]byte, 200)}}
	lo, hi := b.TextRange(isa.X86)
	if lo != X86TextBase || hi != X86TextBase+100 {
		t.Fatal("x86 range wrong")
	}
	lo, hi = b.TextRange(isa.ARM)
	if lo != ARMTextBase || hi != ARMTextBase+200 {
		t.Fatal("arm range wrong")
	}
	if CacheBase(isa.X86) == CacheBase(isa.ARM) {
		t.Fatal("cache regions must be disjoint")
	}
	if TextBase(isa.X86) == TextBase(isa.ARM) {
		t.Fatal("text regions must be disjoint")
	}
}
