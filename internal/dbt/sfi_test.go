package dbt_test

import (
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/testprogs"
)

// TestNoIndirectJumpsInCodeCache verifies the software-fault-isolation
// invariant of §5.1: "there exist absolutely no indirect jumps translated
// into the code cache" — every indirect transfer is either a direct jump
// into translated code, a VM trap, or a RAT-mediated return.
func TestNoIndirectJumpsInCodeCache(t *testing.T) {
	tc := testprogs.All()["table"] // heavy on indirect calls
	bin, err := compiler.Compile(tc.Mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	cache := vm.Cache(isa.X86)
	addr := uint32(fatbin.X86CacheBase)
	end := fatbin.X86CacheBase + cache.Used()
	for addr < end {
		win, err := vm.P.Mem.Fetch(addr, 16)
		if err != nil {
			addr++
			continue
		}
		in, derr := isa.DecodeX86(win, addr)
		if derr != nil {
			addr++ // alignment padding between units
			continue
		}
		if in.Op == isa.OpJmpI || in.Op == isa.OpCallI {
			t.Fatalf("indirect transfer translated into the cache at %#x: %s", addr, in.String())
		}
		addr += uint32(in.Size)
	}
}

// TestStackReturnAddressesPointToSource verifies the §3.4 invariant that
// return addresses stored on the stack reference original source code,
// never the code cache — scanned live at every call.
func TestStackReturnAddressesPointToSource(t *testing.T) {
	bin, err := compiler.Compile(testprogs.Fib(10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sample the stack periodically: every word that looks like a cache
	// address is a violation (the stack may hold arbitrary data, but the
	// cache region is reserved, so no legitimate value collides).
	violations := 0
	checked := 0
	for i := 0; i < 400; i++ {
		if _, err := vm.Run(500); err != nil || vm.P.Exited {
			break
		}
		sp := vm.P.M.SP()
		for off := uint32(0); off < 4096; off += 4 {
			v, err := vm.P.Mem.ReadWord(sp + off)
			if err != nil {
				break
			}
			checked++
			if vm.Cache(isa.X86).Contains(v) || vm.Cache(isa.ARM).Contains(v) {
				violations++
			}
		}
	}
	if checked == 0 {
		t.Fatal("never sampled the stack")
	}
	if violations > 0 {
		t.Fatalf("%d stack words pointed into the code cache", violations)
	}
}

// TestForgedTrapIsKilled verifies that program-crafted int vectors in the
// VM's trap range are software-fault-isolated rather than interpreted.
func TestForgedTrapIsKilled(t *testing.T) {
	// A program whose source contains int 0x81 cannot be produced by the
	// compiler; emulate a gadget that decodes to one by checking the
	// translator's handling through the gadget path: translate a unit
	// whose source bytes contain CD 81.
	mod := testprogs.SumLoop(3)
	bin, err := compiler.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run to completion: no forged traps in legit code, process exits.
	if _, err := vm.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.P.Exited {
		t.Fatal("no exit")
	}
	if vm.Stats.Kills != 0 {
		t.Fatalf("legitimate run recorded %d kills", vm.Stats.Kills)
	}
}

// TestChainPatchingConverges: after steady state, re-running the same loop
// performs no further translations (branches were patched to direct
// cache-to-cache jumps).
func TestChainPatchingConverges(t *testing.T) {
	bin, err := compiler.Compile(testprogs.SumLoop(5000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.DualTranslate = false
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(15_000); err != nil {
		t.Fatal(err)
	}
	warm := vm.Stats.Translations[isa.X86]
	patches := vm.Stats.ChainPatches
	if _, err := vm.Run(15_000); err != nil {
		t.Fatal(err)
	}
	if vm.Stats.Translations[isa.X86] != warm {
		t.Fatalf("steady-state loop still translating: %d -> %d",
			warm, vm.Stats.Translations[isa.X86])
	}
	if patches == 0 {
		t.Fatal("no branch chaining happened")
	}
}

// TestTranslationsAreDeterministicPerSeed: the same seed yields the same
// relocation maps and identical cache contents.
func TestTranslationsAreDeterministicPerSeed(t *testing.T) {
	bin, err := compiler.Compile(testprogs.Collatz(9))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func(seed int64) []byte {
		cfg := dbt.DefaultConfig()
		cfg.Seed = seed
		cfg.MigrateProb = 0
		vm, err := dbt.New(bin, isa.X86, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vm.Run(200_000); err != nil {
			t.Fatal(err)
		}
		used := vm.Cache(isa.X86).Used()
		buf := make([]byte, used)
		vm.P.Mem.Read(fatbin.X86CacheBase, buf)
		return buf
	}
	a := snapshot(7)
	b := snapshot(7)
	c := snapshot(8)
	if string(a) != string(b) {
		t.Fatal("same seed produced different cache contents")
	}
	if string(a) == string(c) && len(a) > 64 {
		t.Fatal("different seeds produced identical cache contents")
	}
}
