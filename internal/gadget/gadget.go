// Package gadget implements Galileo-style gadget mining (Shacham 2007) and
// concrete gadget-effect analysis for both ISAs of the fat binary.
//
// On the x86-like ISA every byte offset is a potential decode start, so
// unintentional gadgets (unaligned suffixes ending in a 0xC3 ret byte or an
// indirect-branch encoding) dominate the attack surface. The ARM-like ISA
// only decodes at aligned word boundaries with a strict decoder, which
// shrinks its surface by well over an order of magnitude — the asymmetry
// §5.5 of the paper measures.
package gadget

import (
	"fmt"
	"sort"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
)

// EnderKind classifies a gadget's terminating instruction.
type EnderKind uint8

const (
	EndRet EnderKind = iota
	EndJmpInd
	EndCallInd
	EndPopPC
	EndBx
)

func (e EnderKind) String() string {
	switch e {
	case EndRet:
		return "ret"
	case EndJmpInd:
		return "jmp*"
	case EndCallInd:
		return "call*"
	case EndPopPC:
		return "pop{pc}"
	case EndBx:
		return "bx"
	}
	return "?"
}

// Gadget is a short instruction sequence ending in an indirect control
// transfer.
type Gadget struct {
	ISA     isa.Kind
	Addr    uint32
	Len     int // instruction count, including the ender
	Bytes   int
	Ender   EnderKind
	Aligned bool // starts on a legitimate instruction boundary
	Func    string
	Instrs  []isa.Inst
}

func (g *Gadget) String() string {
	return fmt.Sprintf("%s@%#x[%d insts, %s]", g.ISA, g.Addr, g.Len, g.Ender)
}

// MaxInstrs is the default gadget length bound (short sequences are the
// useful ones; Galileo uses a comparable window).
const MaxInstrs = 5

// maxX86Lookback bounds the backward byte scan per ender.
const maxX86Lookback = 24

// Mine discovers every gadget in bin's ISA-k text section with at most
// maxInstrs instructions.
func Mine(bin *fatbin.Binary, k isa.Kind, maxInstrs int) []Gadget {
	if maxInstrs <= 0 {
		maxInstrs = MaxInstrs
	}
	if k == isa.X86 {
		return mineX86(bin, maxInstrs)
	}
	return mineARM(bin, maxInstrs)
}

// MineAll mines both ISAs.
func MineAll(bin *fatbin.Binary, maxInstrs int) [2][]Gadget {
	return [2][]Gadget{
		isa.X86: Mine(bin, isa.X86, maxInstrs),
		isa.ARM: Mine(bin, isa.ARM, maxInstrs),
	}
}

// legitBoundaries decodes the official instruction stream and returns the
// set of legitimate instruction-start addresses.
func legitBoundaries(bin *fatbin.Binary, k isa.Kind) map[uint32]bool {
	out := make(map[uint32]bool)
	text := bin.Text[k]
	base := fatbin.TextBase(k)
	for _, f := range bin.Funcs {
		addr := f.Start[k]
		for addr < f.End[k] {
			out[addr] = true
			in, err := isa.Decode(k, text[addr-base:], addr)
			if err != nil {
				addr++ // alignment padding
				continue
			}
			addr += uint32(in.Size)
		}
	}
	return out
}

// enderOf classifies a decoded instruction as a gadget terminator.
func enderOf(in *isa.Inst) (EnderKind, bool) {
	switch in.Op {
	case isa.OpRet:
		return EndRet, true
	case isa.OpJmpI:
		return EndJmpInd, true
	case isa.OpCallI:
		return EndCallInd, true
	case isa.OpBx:
		return EndBx, true
	case isa.OpPopM:
		if in.RegMask&(1<<isa.PC) != 0 {
			return EndPopPC, true
		}
	}
	return 0, false
}

// decodeRun decodes from start, accepting sequences whose only control
// transfer is a final ender at enderAddr. Returns the instructions or nil.
func decodeRun(text []byte, base uint32, k isa.Kind, start, enderEnd uint32, maxInstrs int) []isa.Inst {
	var instrs []isa.Inst
	addr := start
	for addr < enderEnd && len(instrs) <= maxInstrs {
		off := addr - base
		if off >= uint32(len(text)) {
			return nil
		}
		in, err := isa.Decode(k, text[off:], addr)
		if err != nil {
			return nil
		}
		next := addr + uint32(in.Size)
		if _, isEnder := enderOf(&in); isEnder {
			if next == enderEnd {
				return append(instrs, in)
			}
			return nil // indirect transfer mid-sequence
		}
		if in.Op.IsControl() && in.Op != isa.OpSys {
			return nil // direct transfer breaks the chain
		}
		instrs = append(instrs, in)
		addr = next
	}
	return nil
}

func mineX86(bin *fatbin.Binary, maxInstrs int) []Gadget {
	text := bin.Text[isa.X86]
	base := uint32(fatbin.X86TextBase)
	legit := legitBoundaries(bin, isa.X86)
	var out []Gadget
	seen := make(map[uint32]bool)
	for off := 0; off < len(text); off++ {
		addr := base + uint32(off)
		in, err := isa.DecodeX86(text[off:], addr)
		if err != nil {
			continue
		}
		ender, ok := enderOf(&in)
		if !ok {
			continue
		}
		enderEnd := addr + uint32(in.Size)
		// The ender alone is a gadget; so is every decodable backward
		// extension within the lookback window.
		for lb := 0; lb <= maxX86Lookback; lb++ {
			start := addr - uint32(lb)
			if int(start)-int(base) < 0 {
				break
			}
			if seen[start] {
				continue
			}
			instrs := decodeRun(text, base, isa.X86, start, enderEnd, maxInstrs)
			if instrs == nil {
				continue
			}
			seen[start] = true
			fn := bin.FuncAt(isa.X86, start)
			name := ""
			if fn != nil {
				name = fn.Name
			}
			out = append(out, Gadget{
				ISA:     isa.X86,
				Addr:    start,
				Len:     len(instrs),
				Bytes:   int(enderEnd - start),
				Ender:   ender,
				Aligned: legit[start],
				Func:    name,
				Instrs:  instrs,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func mineARM(bin *fatbin.Binary, maxInstrs int) []Gadget {
	text := bin.Text[isa.ARM]
	base := uint32(fatbin.ARMTextBase)
	legit := legitBoundaries(bin, isa.ARM)
	var out []Gadget
	for off := 0; off+4 <= len(text); off += 4 {
		addr := base + uint32(off)
		in, err := isa.DecodeARM(text[off:], addr)
		if err != nil {
			continue
		}
		ender, ok := enderOf(&in)
		if !ok {
			continue
		}
		enderEnd := addr + 4
		for lb := 0; lb <= maxInstrs-1; lb++ {
			start := addr - uint32(4*lb)
			if int(start)-int(base) < 0 {
				break
			}
			instrs := decodeRun(text, base, isa.ARM, start, enderEnd, maxInstrs)
			if instrs == nil {
				continue
			}
			fn := bin.FuncAt(isa.ARM, start)
			name := ""
			if fn != nil {
				name = fn.Name
			}
			out = append(out, Gadget{
				ISA:     isa.ARM,
				Addr:    start,
				Len:     len(instrs),
				Bytes:   int(enderEnd - start),
				Ender:   ender,
				Aligned: legit[start],
				Func:    name,
				Instrs:  instrs,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Summary aggregates a mined gadget population.
type Summary struct {
	Total     int
	Unaligned int
	ByEnder   map[EnderKind]int
	WithSys   int
}

// Summarize aggregates counts over gs.
func Summarize(gs []Gadget) Summary {
	s := Summary{ByEnder: make(map[EnderKind]int)}
	for i := range gs {
		g := &gs[i]
		s.Total++
		if !g.Aligned {
			s.Unaligned++
		}
		s.ByEnder[g.Ender]++
		for j := range g.Instrs {
			if g.Instrs[j].Op == isa.OpSys {
				s.WithSys++
				break
			}
		}
	}
	return s
}
