// Command benchab automates the interleaved A/B benchmark protocol used
// to validate every performance PR in this repo, and doubles as the CI
// regression gate.
//
// A/B mode compares two git refs (or a ref against the current working
// tree) by materialising each side in its own git worktree and running
// the selected benchmarks in strict A,B,A,B,... interleaving — the same
// machine, the same thermal/noise environment, alternating sides so
// neither monopolises a quiet or a noisy window. The best (minimum
// ns/op) run per sub-benchmark wins for each side, and the result is
// emitted as a BENCH_*.json document in the repo's before/after shape:
//
//	benchab -base HEAD~1 -bench 'BenchmarkInterpreterSteps' -rounds 5 \
//	        -json BENCH_interp.json -note-before "..." -note-after "..."
//
// Check mode replays the benchmarks on the current tree and asserts
// against the "after" section of a checked-in BENCH_*.json. The gate is
// shape-generic: the throughput figure is whatever rate metric the
// document records (steps_per_sec, requests_per_sec, any *_per_sec, or
// the inverse of an ns_per_* latency — ns_per_step and ns_per_spawn
// included), and it must stay within -tolerance of the recorded value;
// allocs_per_op, when recorded, is a hard ceiling. Recorded names match
// either the sub-benchmark path after the first '/' or the normalized
// full name ("BenchmarkSpawn/cold" -> "spawn-cold"), so one gate serves
// every BENCH document in the repo. CI uses this as the bench smoke gate:
//
//	benchab -check BENCH_interp.json -tolerance 0.20
//	benchab -check BENCH_fleet.json -bench BenchmarkFleet
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one sub-benchmark's figures as canonical metric keys: go
// test units map via metricKey ("ns/op" -> ns_per_op, "steps/s" ->
// steps_per_sec, "B/op" -> bytes_per_op, "allocs/op" -> allocs_per_op,
// any other x/y -> x_per_y). The open map is what lets one check gate
// every BENCH_*.json shape, custom ReportMetric units included.
type Result map[string]float64

// Side is the before or after half of a BENCH document.
type Side struct {
	Commit  string            `json:"commit,omitempty"`
	Note    string            `json:"note,omitempty"`
	Results map[string]Result `json:"results"`
}

// Doc is the full BENCH_*.json document.
type Doc struct {
	Benchmark   string             `json:"benchmark"`
	Description string             `json:"description,omitempty"`
	Environment map[string]string  `json:"environment"`
	Before      Side               `json:"before"`
	After       Side               `json:"after"`
	Speedup     map[string]float64 `json:"speedup_steps_per_sec"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchab: ")
	var (
		bench      = flag.String("bench", "BenchmarkInterpreterSteps", "benchmark regex passed to go test -bench")
		pkg        = flag.String("pkg", ".", "package to benchmark (relative to repo root)")
		base       = flag.String("base", "", "git ref for the 'before' side (required in A/B mode)")
		head       = flag.String("head", "", "git ref for the 'after' side (default: current working tree)")
		rounds     = flag.Int("rounds", 5, "interleaved rounds per side")
		benchtime  = flag.String("benchtime", "1s", "go test -benchtime")
		jsonOut    = flag.String("json", "", "write the before/after document to this file (default: stdout)")
		noteBefore = flag.String("note-before", "", "note recorded on the before side")
		noteAfter  = flag.String("note-after", "", "note recorded on the after side")
		desc       = flag.String("description", "", "document description")
		check      = flag.String("check", "", "check mode: assert current tree against this BENCH_*.json's 'after' results")
		tolerance  = flag.Float64("tolerance", 0.20, "check mode: allowed fractional steps/s regression")
	)
	flag.Parse()

	if *check != "" {
		if err := runCheck(*check, *bench, *pkg, *benchtime, *rounds, *tolerance); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *base == "" {
		log.Fatal("A/B mode needs -base <git-ref> (or use -check)")
	}
	if err := runAB(*bench, *pkg, *base, *head, *benchtime, *rounds,
		*jsonOut, *noteBefore, *noteAfter, *desc); err != nil {
		log.Fatal(err)
	}
}

// runAB executes the interleaved protocol and writes the document.
func runAB(bench, pkg, base, head, benchtime string, rounds int,
	jsonOut, noteBefore, noteAfter, desc string) error {
	baseDir, cleanupBase, err := checkout(base)
	if err != nil {
		return err
	}
	defer cleanupBase()
	headDir := "."
	if head != "" {
		var cleanupHead func()
		headDir, cleanupHead, err = checkout(head)
		if err != nil {
			return err
		}
		defer cleanupHead()
	}

	env := map[string]string{}
	before := map[string]Result{}
	after := map[string]Result{}
	for i := 0; i < rounds; i++ {
		log.Printf("round %d/%d: before (%s)", i+1, rounds, base)
		if err := runOnce(baseDir, pkg, bench, benchtime, before, env, nil); err != nil {
			return fmt.Errorf("before side: %w", err)
		}
		log.Printf("round %d/%d: after", i+1, rounds)
		if err := runOnce(headDir, pkg, bench, benchtime, after, env, nil); err != nil {
			return fmt.Errorf("after side: %w", err)
		}
	}
	if len(before) == 0 || len(after) == 0 {
		return fmt.Errorf("benchmark regex %q matched nothing", bench)
	}

	doc := Doc{
		Benchmark:   bench,
		Description: desc,
		Environment: env,
		Before:      Side{Commit: shortCommit(base), Note: noteBefore, Results: before},
		After:       Side{Note: noteAfter, Results: after},
		Speedup:     map[string]float64{},
	}
	if head != "" {
		doc.After.Commit = shortCommit(head)
	}
	for name, b := range before {
		br, _ := rateOf(b)
		if a, ok := after[name]; ok && br > 0 {
			if ar, _ := rateOf(a); ar > 0 {
				doc.Speedup[name] = round2(ar / br)
			}
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonOut == "" {
		os.Stdout.Write(out)
		return nil
	}
	if err := os.WriteFile(jsonOut, out, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", jsonOut)
	return nil
}

// runCheck benchmarks the current tree and gates on a recorded document.
func runCheck(path, bench, pkg, benchtime string, rounds int, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.After.Results) == 0 {
		return fmt.Errorf("%s has no after.results to gate on", path)
	}
	got := map[string]Result{}
	alias := map[string]string{}
	for i := 0; i < rounds; i++ {
		log.Printf("round %d/%d", i+1, rounds)
		if err := runOnce(".", pkg, bench, benchtime, got, nil, alias); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(doc.After.Results))
	for name := range doc.After.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := doc.After.Results[name]
		g, ok := got[name]
		if !ok {
			// Recorded names may be the normalized full benchmark path
			// ("spawn-cold" for BenchmarkSpawn/cold) rather than the
			// short sub-name the parser keys on.
			if short, ok2 := alias[name]; ok2 {
				g, ok = got[short]
			}
		}
		if !ok {
			log.Printf("FAIL %s: benchmark missing from run", name)
			failed = true
			continue
		}
		wantRate, rateKey := rateOf(want)
		gotRate, _ := rateOf(g)
		floor := wantRate * (1 - tolerance)
		// The allocs ceiling scales with tolerance, except a recorded 0
		// stays an exact zero-allocation guarantee.
		wantAllocs, hasAllocs := want["allocs_per_op"]
		allocCeil := wantAllocs * (1 + tolerance)
		switch {
		case hasAllocs && g["allocs_per_op"] > allocCeil:
			log.Printf("FAIL %s: %.0f allocs/op over ceiling %.0f (recorded %.0f)",
				name, g["allocs_per_op"], allocCeil, wantAllocs)
			failed = true
		case wantRate > 0 && gotRate < floor:
			log.Printf("FAIL %s: %.0f/s < floor %.0f (recorded %.0f via %s, tolerance %.0f%%)",
				name, gotRate, floor, wantRate, rateKey, 100*tolerance)
			failed = true
		case wantRate <= 0 && !hasAllocs:
			log.Printf("skip %s: document records neither a rate metric nor an allocs ceiling", name)
		default:
			log.Printf("ok   %s: %.2f ns/op, %.0f/s (floor %.0f), %.0f allocs/op",
				name, g["ns_per_op"], gotRate, floor, g["allocs_per_op"])
		}
	}
	if failed {
		return fmt.Errorf("bench floor check failed against %s", path)
	}
	return nil
}

// rateOf extracts the comparable throughput figure from a result:
// steps_per_sec, then requests_per_sec, then any other *_per_sec metric
// (alphabetical, for determinism), then the inverse of any ns_per_*
// latency (which covers legacy ns_per_step / ns_per_spawn documents).
// Returns the rate in events/sec and the key that supplied it.
func rateOf(r Result) (float64, string) {
	for _, k := range []string{"steps_per_sec", "requests_per_sec"} {
		if r[k] > 0 {
			return r[k], k
		}
	}
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.HasSuffix(k, "_per_sec") && r[k] > 0 {
			return r[k], k
		}
	}
	for _, k := range keys {
		if strings.HasPrefix(k, "ns_per_") && r[k] > 0 {
			return 1e9 / r[k], k
		}
	}
	return 0, ""
}

// checkout materialises ref in a temporary git worktree and returns its
// path plus a cleanup func. The worktree is detached so it never touches
// branch state.
func checkout(ref string) (string, func(), error) {
	dir, err := os.MkdirTemp("", "benchab-"+sanitize(ref)+"-")
	if err != nil {
		return "", nil, err
	}
	// MkdirTemp creates the dir; git worktree add wants to create it.
	os.Remove(dir)
	if out, err := exec.Command("git", "worktree", "add", "--detach", dir, ref).CombinedOutput(); err != nil {
		return "", nil, fmt.Errorf("git worktree add %s: %v\n%s", ref, err, out)
	}
	cleanup := func() {
		exec.Command("git", "worktree", "remove", "--force", dir).Run()
		os.RemoveAll(dir)
	}
	return dir, cleanup, nil
}

// runOnce executes one go test -bench pass in dir, folding each parsed
// line into best (keeping the minimum-ns/op observation per name) and,
// when env is non-nil, capturing the goos/goarch/cpu header lines.
func runOnce(dir, pkg, bench, benchtime string, best map[string]Result, env, alias map[string]string) error {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchmem", "-benchtime", benchtime, "-count", "1", pkg)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test -bench in %s: %v\n%s", dir, err, out)
	}
	parseBenchOutput(string(out), best, env, alias)
	return nil
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// parseBenchOutput folds go test -bench lines into best. Keys are the
// sub-benchmark path after the first '/' (with the trailing -GOMAXPROCS
// suffix stripped), or the full name for flat benchmarks. When alias is
// non-nil it additionally records normalized full names
// ("BenchmarkSpawn/cold" -> "spawn-cold") mapping to the short keys, so
// check mode can resolve either spelling in a recorded document.
func parseBenchOutput(out string, best map[string]Result, env, alias map[string]string) {
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if env != nil {
			for _, key := range []string{"goos", "goarch", "cpu"} {
				if v, ok := strings.CutPrefix(line, key+": "); ok {
					env[key] = strings.TrimSpace(v)
				}
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		full := trimProcs(m[1])
		name := full
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		r, ok := parseMetrics(m[2])
		if !ok {
			continue
		}
		if prev, seen := best[name]; !seen || r["ns_per_op"] < prev["ns_per_op"] {
			best[name] = r
		}
		if alias != nil {
			alias[normalizeName(full)] = name
		}
	}
}

// normalizeName flattens a full benchmark path to the document-key
// convention: Benchmark prefix stripped, lowercased, '/' to '-'.
func normalizeName(full string) string {
	s := strings.TrimPrefix(full, "Benchmark")
	return strings.ToLower(strings.ReplaceAll(s, "/", "-"))
}

// trimProcs strips the -GOMAXPROCS suffix go test appends to bench names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseMetrics reads the "value unit value unit ..." tail of a bench
// line into canonical keys. A line is accepted only when every value
// parses and the mandatory ns/op figure is present (it is also the
// best-of-rounds fold key).
func parseMetrics(tail string) (Result, bool) {
	r := Result{}
	fields := strings.Fields(tail)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		r[metricKey(fields[i+1])] = v
	}
	if _, ok := r["ns_per_op"]; !ok {
		return nil, false
	}
	return r, true
}

// metricKey maps a go test unit to its canonical document key. Beyond
// the four standard units, any x/y unit becomes x_per_y (with a bare /s
// spelled _per_sec) and hostile characters collapse to underscores, so
// custom b.ReportMetric units round-trip through documents losslessly
// enough to gate on.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "steps/s":
		return "steps_per_sec"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "req/s":
		return "requests_per_sec"
	}
	u := unit
	if strings.HasSuffix(u, "/s") {
		u = u[:len(u)-2] + "/sec"
	}
	u = strings.ReplaceAll(u, "/", "_per_")
	u = strings.ReplaceAll(u, "%", "pct_")
	var b strings.Builder
	for _, r := range strings.ToLower(u) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func shortCommit(ref string) string {
	out, err := exec.Command("git", "rev-parse", "--short", ref).Output()
	if err != nil {
		return ref
	}
	return strings.TrimSpace(string(out))
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '.' {
			return r
		}
		return '_'
	}, s)
}

func round2(v float64) float64 {
	s, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'f', 2, 64), 64)
	return s
}
