package compiler

import (
	"fmt"
	"sort"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/prog"
)

// funcAlign is the alignment of function entry points in both text
// sections.
const funcAlign = 16

func alignUp(v uint32, a uint32) uint32 { return (v + a - 1) &^ (a - 1) }

// analysis carries the per-function results shared by both ISA lowerings.
type analysis struct {
	loops  []*loopInfo
	loopOf []*loopInfo
	live   *prog.Liveness
}

// Compile lowers mod to both ISAs and produces the fat binary with its
// extended symbol table.
func Compile(mod *prog.Module) (*fatbin.Binary, error) {
	return compile(mod, 0)
}

// CompileDiversified produces an Isomeron-style program variant: the same
// module with per-function basic-block layout shuffled and random nops
// inserted at block boundaries, so intra-function code addresses differ
// from the canonical compilation while semantics are identical.
func CompileDiversified(mod *prog.Module, layoutSeed int64) (*fatbin.Binary, error) {
	if layoutSeed == 0 {
		layoutSeed = 1
	}
	return compile(mod, layoutSeed)
}

func compile(mod *prog.Module, layoutSeed int64) (*fatbin.Binary, error) {
	if err := mod.Validate(); err != nil {
		return nil, err
	}
	bin := &fatbin.Binary{
		Module:     mod.Name,
		FuncByName: make(map[string]int),
	}

	// Data section layout.
	globalOff := make([]uint32, len(mod.Globals))
	var dataLen uint32
	for i, g := range mod.Globals {
		globalOff[i] = dataLen
		dataLen = alignUp(dataLen+g.Size, 4)
	}
	bin.Data = make([]byte, dataLen)
	for i, g := range mod.Globals {
		copy(bin.Data[globalOff[i]:], g.Init)
	}
	gaddr := func(gi int) uint32 { return fatbin.DataBase + globalOff[gi] }

	// Per-function analysis and common frame layout.
	metas := make([]*fatbin.FuncMeta, len(mod.Funcs))
	anas := make([]*analysis, len(mod.Funcs))
	for i, f := range mod.Funcs {
		loops := findLoops(f)
		live := prog.ComputeLiveness(f)
		chooseBindings(f, loops, live, layoutSeed)
		anas[i] = &analysis{
			loops:  loops,
			loopOf: innermostLoop(f, loops),
			live:   live,
		}
		metas[i] = layoutFrame(f, i, anas[i])
		bin.FuncByName[f.Name] = i
	}
	bin.Funcs = metas

	// Lower each ISA: a sizing pass (call targets unknown) fixes the
	// layout, then the final pass encodes real targets. Sizes must agree.
	for _, k := range isa.Kinds {
		entries := make(map[string]uint32, len(mod.Funcs))
		for _, f := range mod.Funcs {
			entries[f.Name] = 0
		}
		cur := fatbin.TextBase(k)
		sizes := make([]uint32, len(mod.Funcs))
		for i, f := range mod.Funcs {
			lo := newLowerer(k, mod, f, metas[i], cur, anas[i].loops, anas[i].loopOf, entries, gaddr)
			lo.diversify(layoutSeed)
			code, _, err := lo.lower()
			if err != nil {
				return nil, fmt.Errorf("compiler: %s/%s sizing: %w", f.Name, k, err)
			}
			metas[i].Entry[k] = cur
			metas[i].Start[k] = cur
			sizes[i] = uint32(len(code))
			cur = alignUp(cur+uint32(len(code)), funcAlign)
		}
		for _, f := range mod.Funcs {
			entries[f.Name] = metas[bin.FuncByName[f.Name]].Entry[k]
		}
		text := make([]byte, cur-fatbin.TextBase(k))
		for i, f := range mod.Funcs {
			lo := newLowerer(k, mod, f, metas[i], metas[i].Entry[k], anas[i].loops, anas[i].loopOf, entries, gaddr)
			lo.diversify(layoutSeed)
			code, labels, err := lo.lower()
			if err != nil {
				return nil, fmt.Errorf("compiler: %s/%s: %w", f.Name, k, err)
			}
			if uint32(len(code)) != sizes[i] {
				return nil, fmt.Errorf("compiler: %s/%s: unstable size %d -> %d", f.Name, k, sizes[i], len(code))
			}
			off := metas[i].Entry[k] - fatbin.TextBase(k)
			copy(text[off:], code)
			metas[i].End[k] = metas[i].Entry[k] + uint32(len(code))
			fillBlockAddrs(metas[i], k, f, labels)
			fillCallSites(metas[i], k, labels)
		}
		bin.Text[k] = text
	}

	// Block live-in homes (common to both ISAs, with per-ISA register
	// residence from the loop bindings).
	for i, f := range mod.Funcs {
		fillLiveIn(metas[i], f, anas[i])
	}

	if _, ok := bin.FuncByName["main"]; ok {
		bin.EntryFunc = "main"
	} else if len(mod.Funcs) > 0 {
		bin.EntryFunc = mod.Funcs[0].Name
	}
	return bin, nil
}

// layoutFrame computes the common stack frame organization of f.
func layoutFrame(f *prog.Func, index int, ana *analysis) *fatbin.FuncMeta {
	maxOut := 0
	hasCallIn := make(map[int]bool)
	for _, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			switch in.Kind {
			case prog.OpCall, prog.OpCallInd:
				if len(in.Args) > maxOut {
					maxOut = len(in.Args)
				}
				hasCallIn[b.ID] = true
			case prog.OpSyscall:
				hasCallIn[b.ID] = true
			}
		}
	}
	m := &fatbin.FuncMeta{
		Name:    f.Name,
		Index:   index,
		NumArgs: f.NParams,
		NVRegs:  f.NVRegs,
		NSlots:  f.NSlots,
		RetReg:  retRegs,
	}
	m.OutArgOff = 0
	m.LocalOff = 4 * uint32(maxOut)
	m.SpillOff = m.LocalOff + 4*uint32(f.NSlots)
	nSpill := f.NVRegs - f.NParams
	if nSpill < 0 {
		nSpill = 0
	}
	m.SaveOff = m.SpillOff + 4*uint32(nSpill)
	m.FrameSize = m.SaveOff + 4*fatbin.SaveAreaWords
	m.FixedSlot = make([]bool, f.NSlots)
	for s := range f.FixedSlots {
		m.FixedSlot[s] = true
	}
	// Callee-saved registers: the union of loop-binding registers, per ISA.
	for _, k := range isa.Kinds {
		used := map[isa.Reg]bool{}
		for _, l := range ana.loops {
			for _, r := range l.bind[k] {
				used[r] = true
			}
		}
		var regs []isa.Reg
		for r := range used {
			regs = append(regs, r)
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		if len(regs) > fatbin.SaveAreaWords {
			regs = regs[:fatbin.SaveAreaWords]
		}
		m.SavedRegs[k] = regs
	}
	// Block skeletons (addresses filled after lowering).
	m.Blocks = make([]fatbin.BlockMeta, len(f.Blocks))
	for i, b := range f.Blocks {
		m.Blocks[i] = fatbin.BlockMeta{
			ID:      b.ID,
			InLoop:  ana.loopOf[b.ID] != nil,
			HasCall: hasCallIn[b.ID],
		}
	}
	return m
}

// fillBlockAddrs records per-ISA block address ranges from the assembler's
// label table. Edge stubs emitted after a block's terminator are attributed
// to that block.
func fillBlockAddrs(m *fatbin.FuncMeta, k isa.Kind, f *prog.Func, labels map[string]uint32) {
	for i := range m.Blocks {
		if i == 0 {
			// The prologue belongs to the entry block.
			m.Blocks[i].Addr[k] = m.Start[k]
		} else {
			m.Blocks[i].Addr[k] = labels[blockLabel(m.Blocks[i].ID)]
		}
		if i+1 < len(m.Blocks) {
			m.Blocks[i].End[k] = labels[blockLabel(m.Blocks[i+1].ID)]
		} else {
			m.Blocks[i].End[k] = labels["epi"]
		}
	}
}

// fillCallSites records the per-ISA return addresses of every call site.
func fillCallSites(m *fatbin.FuncMeta, k isa.Kind, labels map[string]uint32) {
	for i := 0; ; i++ {
		addr, ok := labels[callSiteLabel(i)]
		if !ok {
			break
		}
		if i >= len(m.CallSites) {
			m.CallSites = append(m.CallSites, fatbin.CallSite{})
		}
		m.CallSites[i].RetAddr[k] = addr
	}
}

// fillLiveIn records, per block, where each live-in value resides at block
// entry on each ISA: its canonical frame home plus, inside loops, the
// loop-scoped register that currently holds it.
func fillLiveIn(m *fatbin.FuncMeta, f *prog.Func, ana *analysis) {
	for i := range m.Blocks {
		bid := m.Blocks[i].ID
		var homes []fatbin.VarHome
		for _, v := range ana.live.In[bid].Members() {
			h := fatbin.VarHome{
				VReg:     int32(v),
				FrameOff: int32(m.HomeOff(int32(v))),
				Reg:      [2]isa.Reg{isa.NoReg, isa.NoReg},
			}
			if l := ana.loopOf[bid]; l != nil {
				for _, k := range isa.Kinds {
					if r, ok := l.bind[k][v]; ok {
						h.Reg[k] = r
					}
				}
			}
			homes = append(homes, h)
		}
		m.Blocks[i].LiveIn = homes
	}
}
