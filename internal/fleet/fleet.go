// Package fleet is the multi-tenant host: it admits thousands of guest
// VMs from an open-loop traffic source, forks each from a per-binary
// prototype snapshot (warm admission — the Nth spawn pays O(dirty state),
// not a boot), and executes them on a bounded work-stealing worker pool
// in step-budget time slices so long guests cannot starve admission.
//
// This is the stance HIPStR's premise demands: migration and PSR are
// cheap enough to apply to every running program, which only matters if
// one host can actually run "every running program" at once. The fleet
// treats migration probability, step quotas, and kill/respawn-under-
// attack as per-tenant policy, making heterogeneous-ISA defense a
// fleet-scheduling decision rather than a per-process toggle.
//
// Determinism contract: guest execution consumes only per-VM randomness
// (the PSR/policy streams seeded per fork) and per-tenant randomness
// (attack injection, seeded from the fleet seed and the tenant ID).
// Scheduling randomness — steal-victim rotation — never reaches a guest.
// A fleet run therefore produces bit-identical per-tenant results
// (digest over exit code, architectural state, and output trace) at any
// worker count, which the tests pin.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hipstr/internal/core"
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/obsrv"
	"hipstr/internal/telemetry"
	"hipstr/internal/workload"
)

// DefaultSliceSteps is the per-dispatch step budget when Policy.SliceSteps
// is zero: long enough that slice overhead (two queue ops, a clock read)
// is noise against ~10ns/step execution, short enough that a worker
// revisits the injector several hundred times per second per core.
const DefaultSliceSteps = 20_000

// Policy is the per-tenant resource and defense envelope.
type Policy struct {
	// SliceSteps is the step budget per dispatch (0 = DefaultSliceSteps).
	SliceSteps uint64
	// StepQuota retires the tenant after this many guest steps in its
	// current life (0 = run to completion). Respawns reset the meter:
	// a fresh guest gets a fresh budget.
	StepQuota uint64
	// CacheQuotaBytes bounds each tenant's per-ISA code cache. It is a
	// boot-time property of the workload's prototype (resizing a live
	// cache would invalidate PCs inside it), so it applies per workload
	// class, not per individual tenant.
	CacheQuotaBytes uint32
	// MigrateProb is the per-security-event migration probability under
	// ModeHIPStR (ignored under PSR, which pins it to 0).
	MigrateProb float64
	// AttackProb injects a synthetic breach detection before a slice
	// with this probability, exercising the kill/respawn path under
	// load. Draws come from the tenant's private seeded stream.
	AttackProb float64
	// RespawnLimit caps breach respawns per tenant; past it the tenant
	// is killed for good.
	RespawnLimit int
	// WarmupSteps runs a disposable fork of each prototype this many
	// steps at AddWorkload time, populating the shared unit cache so
	// tenant admission installs translations by copy instead of
	// translating (0 = no warmup).
	WarmupSteps uint64
}

// DefaultPolicy mirrors the paper's always-on stance: full migration
// probability, a few respawns before giving up on a compromised tenant.
func DefaultPolicy() Policy {
	return Policy{
		SliceSteps:   DefaultSliceSteps,
		MigrateProb:  1.0,
		RespawnLimit: 3,
		WarmupSteps:  50_000,
	}
}

// Config configures a Host.
type Config struct {
	// Workers is the execution pool size (0 = GOMAXPROCS).
	Workers int
	// Mode selects the defense every tenant runs under.
	Mode core.Mode
	// Seed roots every deterministic stream: prototype PSR seeds,
	// per-tenant attack streams, respawn seed lineages.
	Seed int64
	// Policy is the default per-tenant envelope.
	Policy Policy
	// ColdAdmission boots every tenant from scratch (private unit
	// cache, full translation) instead of forking the prototype
	// snapshot — the baseline the warm path is measured against.
	ColdAdmission bool
	// PerTenantSeries bounds how many tenants publish per-tenant metric
	// series into the registry (0 = 64; < 0 = every tenant). The bound
	// exists because series are gauges that live forever in the
	// registry; a million-tenant run must not grow it unbounded.
	PerTenantSeries int
	// TenantTraceCap bounds each tenant's private event ring (0 = 256).
	// Events are ~80 B; the default keeps a 1000-tenant fleet's tracer
	// footprint around 20 MB instead of 300+.
	TenantTraceCap int
	// Telemetry receives fleet aggregates (nil = private instance).
	Telemetry *telemetry.Telemetry
}

// DefaultConfig returns a HIPStR-mode fleet with the default policy.
func DefaultConfig() Config {
	return Config{Mode: core.ModeHIPStR, Seed: 1, Policy: DefaultPolicy()}
}

// Tenant states, in lifecycle order.
const (
	tenantQueued int32 = iota
	tenantRunning
	tenantDone
	tenantKilled
)

func stateName(s int32) string {
	switch s {
	case tenantQueued:
		return "queued"
	case tenantRunning:
		return "running"
	case tenantDone:
		return "done"
	case tenantKilled:
		return "killed"
	}
	return "unknown"
}

// Tenant is one admitted guest. Workers hold mu while running a slice;
// HTTP drill-down takes the same lock, so an observer sees either the
// state before or after a slice, never mid-step.
type Tenant struct {
	id       uint64
	workload string
	policy   Policy
	seed     int64
	proto    *proto
	admitted time.Time

	state atomic.Int32

	mu         sync.Mutex
	sys        *core.System
	rng        *rand.Rand // attack-injection draws only
	steps      uint64     // lifetime guest steps, across respawns
	lifeSteps  uint64     // steps in the current life (quota domain)
	slices     uint64
	respawns   int
	migrations uint64
	exitCode   uint32
	errMsg     string
	latency    time.Duration
	digest     uint64
	final      telemetry.Snapshot
}

// ID returns the tenant's fleet-unique ID.
func (t *Tenant) ID() uint64 { return t.id }

// Workload returns the workload profile name.
func (t *Tenant) Workload() string { return t.workload }

// State returns the lifecycle state name.
func (t *Tenant) State() string { return stateName(t.state.Load()) }

// Done reports whether the tenant has been retired (completed or killed).
func (t *Tenant) Done() bool {
	s := t.state.Load()
	return s == tenantDone || s == tenantKilled
}

// Digest returns the result digest (valid once Done).
func (t *Tenant) Digest() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.digest
}

// Steps returns lifetime guest steps executed so far.
func (t *Tenant) Steps() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.steps
}

// Respawns returns how many breach respawns the tenant has used.
func (t *Tenant) Respawns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.respawns
}

// ExitCode returns the guest exit code (valid once Done).
func (t *Tenant) ExitCode() uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exitCode
}

// Latency returns admission-to-retirement latency (valid once Done).
func (t *Tenant) Latency() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.latency
}

// Err returns why the tenant was killed ("" for clean completion).
func (t *Tenant) Err() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errMsg
}

// proto is one workload's admission source: the compiled fat binary and
// the booted-prototype snapshot every warm tenant forks from.
type proto struct {
	name string
	bin  *fatbin.Binary
	cfg  core.Config
	snap *core.Snapshot
}

// Host is the multi-tenant fleet host.
type Host struct {
	cfg Config
	tel *telemetry.Telemetry

	workers []*worker
	inj     *queue

	mu   sync.Mutex // parking lot: cond + idle count
	cond *sync.Cond
	idle int

	tmu     sync.RWMutex
	protos  map[string]*proto
	tenants map[uint64]*Tenant
	order   []uint64

	nextID  atomic.Uint64
	pending atomic.Int64
	active  atomic.Int64
	peak    atomic.Int64
	closed  atomic.Bool
	ready   atomic.Bool
	started bool
	startNS atomic.Int64
	endNS   atomic.Int64
	ctx     context.Context
	quit    chan struct{}
	quitOne sync.Once
	wg      sync.WaitGroup

	cAdmitted, cCompleted, cQuota, cKilled *telemetry.Counter
	cRespawns, cBreaches, cSteals, cSlices *telemetry.Counter
	cSteps, cMigrations                    *telemetry.Counter
	hLatency, hSlice                       *telemetry.Histogram
}

// NewHost returns a host with its aggregate metrics registered. The
// gauges (active, peak, rps, injector depth) are collector-backed and
// read only atomics, so the registry is scrape-safe from any goroutine
// without a pump.
func NewHost(cfg Config) *Host {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Policy.SliceSteps == 0 {
		cfg.Policy.SliceSteps = DefaultSliceSteps
	}
	if cfg.PerTenantSeries == 0 {
		cfg.PerTenantSeries = 64
	}
	if cfg.TenantTraceCap <= 0 {
		cfg.TenantTraceCap = 256
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New()
	}
	h := &Host{
		cfg:     cfg,
		tel:     tel,
		inj:     newQueue(),
		protos:  make(map[string]*proto),
		tenants: make(map[uint64]*Tenant),
		quit:    make(chan struct{}),

		cAdmitted:   tel.Counter("fleet.admitted"),
		cCompleted:  tel.Counter("fleet.completed"),
		cQuota:      tel.Counter("fleet.quota_retired"),
		cKilled:     tel.Counter("fleet.killed"),
		cRespawns:   tel.Counter("fleet.respawns"),
		cBreaches:   tel.Counter("fleet.breaches"),
		cSteals:     tel.Counter("fleet.steals"),
		cSlices:     tel.Counter("fleet.slices"),
		cSteps:      tel.Counter("fleet.steps"),
		cMigrations: tel.Counter("fleet.migrations"),
		hLatency:    tel.Histogram("fleet.latency_us"),
		hSlice:      tel.Histogram("fleet.slice_us"),
	}
	h.cond = sync.NewCond(&h.mu)
	for i := 0; i < cfg.Workers; i++ {
		h.workers = append(h.workers, &worker{
			h:   h,
			id:  i,
			q:   newQueue(),
			rng: rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x9E3779B9)),
		})
	}
	tel.Reg.RegisterCollector(func() {
		tel.Gauge("fleet.workers").Set(float64(cfg.Workers))
		tel.Gauge("fleet.active").Set(float64(h.active.Load()))
		tel.Gauge("fleet.active_peak").Set(float64(h.peak.Load()))
		tel.Gauge("fleet.injector_depth").Set(float64(h.inj.size()))
		tel.Gauge("fleet.rps").Set(h.rps())
		tel.Gauge(
			"fleet.latency_p99_us",
		).Set(h.hLatency.Snapshot().Quantile(0.99))
	})
	return h
}

// Telemetry returns the host's aggregate registry.
func (h *Host) Telemetry() *telemetry.Telemetry { return h.tel }

// MarkReady flips the readiness gate. The driver calls it once every
// AddWorkload has booted and warmed its prototype, so /readyz stops
// refusing traffic exactly when admissions can be served warm.
func (h *Host) MarkReady() { h.ready.Store(true) }

// Ready reports whether the host's prototypes are warmed (MarkReady).
func (h *Host) Ready() bool { return h.ready.Load() }

// forkConfig is the per-tenant fork envelope: private telemetry with a
// small event ring (the fleet-scale memory bound).
func (h *Host) forkConfig() dbt.ForkConfig {
	return dbt.ForkConfig{TraceCap: h.cfg.TenantTraceCap}
}

// protoConfig builds the boot config for a workload prototype.
func (h *Host) protoConfig(prof workload.Profile) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = h.cfg.Mode
	cfg.DBT.Seed = h.cfg.Seed ^ prof.Seed<<16
	cfg.DBT.TraceCap = h.cfg.TenantTraceCap
	if q := h.cfg.Policy.CacheQuotaBytes; q > 0 {
		cfg.DBT.CodeCacheSize = q
	}
	if h.cfg.Mode == core.ModeHIPStR {
		cfg.DBT.MigrateProb = h.cfg.Policy.MigrateProb
	}
	return cfg
}

// AddWorkload compiles the named profile, boots its prototype, snapshots
// it, and (warm path) runs a disposable fork WarmupSteps to populate the
// process-wide shared unit cache, so admission installs translations by
// copy. Call before Start/Admit; not safe concurrently with Admit.
func (h *Host) AddWorkload(name string) error {
	h.tmu.Lock()
	defer h.tmu.Unlock()
	if _, ok := h.protos[name]; ok {
		return nil
	}
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return fmt.Errorf("fleet: unknown workload %q", name)
	}
	bin, err := workload.Compile(prof)
	if err != nil {
		return fmt.Errorf("fleet: compile %s: %w", name, err)
	}
	cfg := h.protoConfig(prof)
	sys, err := core.New(bin, cfg)
	if err != nil {
		return fmt.Errorf("fleet: boot %s prototype: %w", name, err)
	}
	p := &proto{name: name, bin: bin, cfg: cfg, snap: sys.Snapshot()}
	if w := h.cfg.Policy.WarmupSteps; w > 0 && !h.cfg.ColdAdmission {
		wf, err := p.snap.Fork(h.forkConfig())
		if err != nil {
			return fmt.Errorf("fleet: warmup fork %s: %w", name, err)
		}
		if _, err := wf.Run(w); err != nil &&
			!errors.Is(err, dbt.ErrSecurityKill) {
			return fmt.Errorf("fleet: warmup %s: %w", name, err)
		}
	}
	h.protos[name] = p
	return nil
}

// Admit creates a tenant of the named workload and queues it on the
// global injector. Safe from any goroutine (the traffic generator runs
// outside the pool) until Close.
func (h *Host) Admit(name string) (*Tenant, error) {
	if h.closed.Load() {
		return nil, errors.New("fleet: admission closed")
	}
	h.tmu.RLock()
	p := h.protos[name]
	h.tmu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("fleet: workload %q not added", name)
	}
	id := h.nextID.Add(1)
	tseed := h.cfg.Seed ^ int64(id)*0x7F4A7C15
	var sys *core.System
	var err error
	if h.cfg.ColdAdmission {
		// Same seed as the prototype: the cold baseline must produce the
		// results warm forking produces, just slower. NoSharedUnits makes
		// it pay full translation, the cost warm admission avoids.
		cfg := p.cfg
		cfg.DBT.NoSharedUnits = true
		sys, err = core.New(p.bin, cfg)
	} else {
		sys, err = p.snap.Fork(h.forkConfig())
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: admit %s: %w", name, err)
	}
	h.applyPolicy(sys)
	t := &Tenant{
		id:       id,
		workload: name,
		policy:   h.cfg.Policy,
		seed:     tseed,
		proto:    p,
		admitted: time.Now(),
		sys:      sys,
		rng:      rand.New(rand.NewSource(tseed)),
	}
	h.tmu.Lock()
	h.tenants[id] = t
	h.order = append(h.order, id)
	h.tmu.Unlock()

	h.cAdmitted.Inc()
	h.pending.Add(1)
	a := h.active.Add(1)
	for {
		p := h.peak.Load()
		if a <= p || h.peak.CompareAndSwap(p, a) {
			break
		}
	}
	h.inj.push(t)
	h.wake()
	return t, nil
}

// applyPolicy imposes the per-tenant envelope on a freshly forked or
// booted system. MigrateProb is read by the VM at security-event time,
// so setting it here takes effect for the tenant's whole life.
func (h *Host) applyPolicy(sys *core.System) {
	if h.cfg.Mode == core.ModeHIPStR {
		sys.VM.Cfg.MigrateProb = h.cfg.Policy.MigrateProb
	}
}

// Start launches the worker pool. Admission may begin before or after.
func (h *Host) Start(ctx context.Context) {
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()
	h.ctx = ctx
	h.startNS.Store(time.Now().UnixNano())
	h.wg.Add(len(h.workers))
	for _, w := range h.workers {
		go w.loop()
	}
	go func() {
		select {
		case <-ctx.Done():
			h.wakeAll()
		case <-h.quit:
		}
	}()
}

// Close stops admission; workers drain the remaining tenants and exit.
func (h *Host) Close() {
	h.closed.Store(true)
	if h.pending.Load() == 0 {
		h.wakeAll()
	}
}

// done reports the drain condition: admission closed, nothing pending.
func (h *Host) done() bool {
	return h.closed.Load() && h.pending.Load() == 0
}

// Wait blocks until the pool drains (after Close) or ctx is canceled,
// and returns ctx's error in the latter case.
func (h *Host) Wait() error {
	h.wg.Wait()
	h.endNS.Store(time.Now().UnixNano())
	h.quitOne.Do(func() { close(h.quit) })
	if h.ctx != nil && h.ctx.Err() != nil && !h.done() {
		return h.ctx.Err()
	}
	return nil
}

// runSlice executes one dispatch of t on worker w.
func (h *Host) runSlice(w *worker, t *Tenant) {
	start := time.Now()
	t.mu.Lock()
	t.state.Store(tenantRunning)
	retired := h.sliceLocked(t)
	if !retired {
		t.state.Store(tenantQueued)
	}
	t.mu.Unlock()
	h.hSlice.Observe(float64(time.Since(start).Microseconds()))
	h.cSlices.Inc()
	if !retired {
		w.q.push(t)
		h.wake() // a parked peer may steal from our refilled deque
	}
}

// sliceLocked advances t by one slice. Returns true when the tenant was
// retired (finalized). Caller holds t.mu.
func (h *Host) sliceLocked(t *Tenant) bool {
	p := &t.policy
	if p.AttackProb > 0 && t.rng.Float64() < p.AttackProb {
		h.cBreaches.Inc()
		if h.breachLocked(t, "injected breach detection") {
			return true
		}
	}
	budget := p.SliceSteps
	if p.StepQuota > 0 {
		if rem := p.StepQuota - t.lifeSteps; rem < budget {
			budget = rem
		}
	}
	ran, err := t.sys.Run(budget)
	t.steps += ran
	t.lifeSteps += ran
	t.slices++
	h.cSteps.Add(ran)
	switch {
	case err != nil && errors.Is(err, dbt.ErrSecurityKill):
		h.cBreaches.Inc()
		return h.breachLocked(t, err.Error())
	case err != nil:
		return h.finalizeLocked(t, tenantKilled, err.Error())
	case t.sys.Exited():
		return h.finalizeLocked(t, tenantDone, "")
	case p.StepQuota > 0 && t.lifeSteps >= p.StepQuota:
		h.cQuota.Inc()
		return h.finalizeLocked(t, tenantDone, "")
	case ran == 0:
		return h.finalizeLocked(t, tenantKilled, "no forward progress")
	}
	return false
}

// breachLocked is the §5.3 response: kill the compromised guest and
// respawn it from the snapshot under a fresh PSR seed (O(dirty pages)),
// unless the tenant has exhausted its respawn budget. Returns true when
// the tenant was retired instead of respawned. Caller holds t.mu.
func (h *Host) breachLocked(t *Tenant, reason string) bool {
	// The event tap: breaches, respawns, and kills land in the aggregate
	// trace ring so /events and incident flight-recorder bundles carry
	// the per-tenant context of a storm, not just its counters.
	h.tel.Emit(telemetry.Event{
		Type:   telemetry.EvSecurity,
		Detail: fmt.Sprintf("tenant %d (%s): %s", t.id, t.workload, reason),
	})
	if t.respawns >= t.policy.RespawnLimit {
		return h.finalizeLocked(t, tenantKilled, "respawn limit: "+reason)
	}
	t.respawns++
	// The seed lineage is a pure function of the tenant seed and life
	// count, so respawn behavior is schedule-independent.
	newSeed := t.seed + int64(t.respawns)*0x6C62272E07BB0142
	sys, err := t.proto.snap.Respawn(newSeed, h.forkConfig())
	if err != nil {
		return h.finalizeLocked(t, tenantKilled, "respawn: "+err.Error())
	}
	h.applyPolicy(sys)
	t.sys = sys
	t.lifeSteps = 0
	h.cRespawns.Inc()
	h.tel.Emit(telemetry.Event{
		Type:   telemetry.EvRespawn,
		Detail: fmt.Sprintf("tenant %d (%s): life %d", t.id, t.workload, t.respawns+1),
	})
	return false
}

// finalizeLocked retires t: records the result digest and final metrics
// snapshot, releases the VM (the memory bound that lets thousands of
// retired tenants stay inspectable), publishes the per-tenant series,
// and settles the fleet counters. Caller holds t.mu. Always true.
func (h *Host) finalizeLocked(t *Tenant, st int32, msg string) bool {
	t.migrations = t.sys.Migrations()
	h.cMigrations.Add(t.migrations)
	t.exitCode = t.sys.ExitCode()
	t.digest = resultDigest(t.sys)
	t.errMsg = msg
	t.latency = time.Since(t.admitted)
	h.hLatency.Observe(float64(t.latency.Microseconds()))
	t.final = t.sys.Telemetry().Snapshot()
	t.sys = nil
	t.state.Store(st)
	if st == tenantDone {
		h.cCompleted.Inc()
	} else {
		h.cKilled.Inc()
		h.tel.Emit(telemetry.Event{
			Type:   telemetry.EvKill,
			Detail: fmt.Sprintf("tenant %d (%s): %s", t.id, t.workload, msg),
		})
	}
	h.active.Add(-1)
	h.publishTenantSeries(t)
	if h.pending.Add(-1) == 0 && h.closed.Load() {
		h.wakeAll()
	}
	return true
}

// publishTenantSeries exports the tenant's headline numbers as gauges
// (fleet.tenant.<id>.*) for the obsrv drill-down and /metrics scrape,
// bounded by PerTenantSeries. Caller holds t.mu.
func (h *Host) publishTenantSeries(t *Tenant) {
	lim := h.cfg.PerTenantSeries
	if lim >= 0 && t.id > uint64(lim) {
		return
	}
	h.tel.PublishSeries(
		fmt.Sprintf("fleet.tenant.%d", t.id),
		[]telemetry.SeriesPoint{{Fields: map[string]float64{
			"steps":      float64(t.steps),
			"slices":     float64(t.slices),
			"respawns":   float64(t.respawns),
			"migrations": float64(t.migrations),
			"latency_us": float64(t.latency.Microseconds()),
			"exit_code":  float64(t.exitCode),
		}}},
	)
}

// resultDigest folds the guest-visible outcome — exit status, final
// architectural state, and the complete output trace — into one FNV-1a
// word. Two runs of the same tenant must produce equal digests for the
// fleet's determinism contract to hold.
func resultDigest(sys *core.System) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	d := uint64(offset)
	f32 := func(v uint32) {
		for i := 0; i < 4; i++ {
			d = (d ^ uint64(v>>(8*i))&0xff) * prime
		}
	}
	m := sys.VM.P.M
	f32(uint32(m.ISA))
	f32(m.PC)
	for _, r := range m.Regs {
		f32(r)
	}
	f32(sys.ExitCode())
	if sys.Exited() {
		f32(1)
	} else {
		f32(0)
	}
	for _, v := range sys.VM.P.Trace {
		f32(v)
	}
	return d
}

// rps is completed tenants per second of host uptime.
func (h *Host) rps() float64 {
	start := h.startNS.Load()
	if start == 0 {
		return 0
	}
	end := h.endNS.Load()
	if end == 0 {
		end = time.Now().UnixNano()
	}
	el := time.Duration(end - start)
	if el <= 0 {
		return 0
	}
	return float64(h.cCompleted.Value()) / el.Seconds()
}

// Aggregates is the fleet-wide summary.
type Aggregates struct {
	Workers      int           `json:"workers"`
	Admitted     uint64        `json:"admitted"`
	Completed    uint64        `json:"completed"`
	QuotaRetired uint64        `json:"quota_retired"`
	Killed       uint64        `json:"killed"`
	Breaches     uint64        `json:"breaches"`
	Respawns     uint64        `json:"respawns"`
	Migrations   uint64        `json:"migrations"`
	Steals       uint64        `json:"steals"`
	Slices       uint64        `json:"slices"`
	Steps        uint64        `json:"steps"`
	Active       int64         `json:"active"`
	ActivePeak   int64         `json:"active_peak"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	RPS          float64       `json:"rps"`
	LatencyP50us float64       `json:"latency_p50_us"`
	LatencyP99us float64       `json:"latency_p99_us"`
}

// Aggregates returns the current fleet-wide summary. Safe concurrently
// with execution (reads only atomics and the histogram sketch).
func (h *Host) Aggregates() Aggregates {
	lat := h.hLatency.Snapshot()
	var el time.Duration
	if s := h.startNS.Load(); s != 0 {
		e := h.endNS.Load()
		if e == 0 {
			e = time.Now().UnixNano()
		}
		el = time.Duration(e - s)
	}
	return Aggregates{
		Workers:      h.cfg.Workers,
		Admitted:     h.cAdmitted.Value(),
		Completed:    h.cCompleted.Value(),
		QuotaRetired: h.cQuota.Value(),
		Killed:       h.cKilled.Value(),
		Breaches:     h.cBreaches.Value(),
		Respawns:     h.cRespawns.Value(),
		Migrations:   h.cMigrations.Value(),
		Steals:       h.cSteals.Value(),
		Slices:       h.cSlices.Value(),
		Steps:        h.cSteps.Value(),
		Active:       h.active.Load(),
		ActivePeak:   h.peak.Load(),
		Elapsed:      el,
		RPS:          h.rps(),
		LatencyP50us: lat.Quantile(0.50),
		LatencyP99us: lat.Quantile(0.99),
	}
}

// Tenants returns all tenants in admission order.
func (h *Host) Tenants() []*Tenant {
	h.tmu.RLock()
	defer h.tmu.RUnlock()
	out := make([]*Tenant, 0, len(h.order))
	for _, id := range h.order {
		out = append(out, h.tenants[id])
	}
	return out
}

// infoLocked builds the drill-down summary. Caller holds t.mu.
func (t *Tenant) infoLocked() obsrv.TenantInfo {
	live := t.steps
	mig := t.migrations
	if t.sys != nil {
		mig = t.sys.Migrations()
	}
	return obsrv.TenantInfo{
		ID:       fmt.Sprintf("%d", t.id),
		Workload: t.workload,
		State:    stateName(t.state.Load()),
		Fields: map[string]float64{
			"steps":      float64(live),
			"slices":     float64(t.slices),
			"respawns":   float64(t.respawns),
			"migrations": float64(mig),
			"latency_us": float64(t.latency.Microseconds()),
			"exit_code":  float64(t.exitCode),
		},
	}
}

// TenantList implements obsrv.TenantSource: a summary row per tenant in
// admission order.
func (h *Host) TenantList() []obsrv.TenantInfo {
	ts := h.Tenants()
	out := make([]obsrv.TenantInfo, 0, len(ts))
	for _, t := range ts {
		t.mu.Lock()
		out = append(out, t.infoLocked())
		t.mu.Unlock()
	}
	return out
}

// TenantSnapshot implements obsrv.TenantSource: one tenant's summary
// plus its full telemetry snapshot (live registry while running, the
// frozen finalize-time snapshot afterwards).
func (h *Host) TenantSnapshot(id string) (obsrv.TenantInfo, telemetry.Snapshot, bool) {
	var tid uint64
	if _, err := fmt.Sscanf(id, "%d", &tid); err != nil {
		return obsrv.TenantInfo{}, telemetry.Snapshot{}, false
	}
	h.tmu.RLock()
	t := h.tenants[tid]
	h.tmu.RUnlock()
	if t == nil {
		return obsrv.TenantInfo{}, telemetry.Snapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	info := t.infoLocked()
	snap := t.final
	if t.sys != nil {
		snap = t.sys.Telemetry().Snapshot()
	}
	return info, snap, true
}
