// Command hipstr-bench regenerates every table and figure of the paper's
// evaluation (§6-7) through the experiment engine: drivers come from the
// experiment registry, each driver's independent cells fan out on a
// bounded worker pool (-parallel), and results are exportable as both a
// metrics artifact (-metrics-out) and per-experiment JSON result
// artifacts (-results-out). Printed tables are byte-identical at any
// -parallel setting. Use -quick for a reduced sweep on the three smallest
// benchmarks and -list to see the registry. With -listen the observability
// server exposes the suite's metrics (per-figure series as they publish),
// the event stream, and pprof over HTTP while the evaluation runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"hipstr"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps on the three smallest benchmarks")
	outPath := flag.String("out", "", "also write the report to this file")
	only := flag.String("only", "", "run a comma-separated subset (e.g. fig9,fig12,httpd)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	parallel := flag.Int("parallel", 0, "worker pool per experiment (0 = GOMAXPROCS, 1 = serial)")
	metricsOut := flag.String("metrics-out", "", "write a metrics JSON artifact (durations, run counters, per-figure series)")
	resultsOut := flag.String("results-out", "", "write one <experiment>.json result artifact per experiment into this directory")
	keepGoing := flag.Bool("keep-going", false, "continue with remaining experiments after a failure")
	listen := flag.String("listen", "", "serve live observability endpoints on this address (e.g. 127.0.0.1:9121)")
	timelineOut := flag.String("timeline-out", "", "write the experiment/cell span timeline as Chrome trace JSON (open in ui.perfetto.dev)")
	flag.Parse()

	if *list {
		for _, e := range hipstr.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name(), e.Description())
		}
		return
	}

	exps, err := hipstr.SelectExperiments(*only)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var s *hipstr.ExperimentSuite
	if *quick {
		s = hipstr.NewQuickExperiments(w)
	} else {
		s = hipstr.NewExperiments(w)
	}
	s.Parallel = *parallel
	tel := hipstr.NewTelemetry()
	s.Telemetry = tel
	var spans *hipstr.SpanTracer
	if *timelineOut != "" || *listen != "" {
		spans = tel.EnableSpans(0)
	}

	// Ctrl-C cancels mid-sweep: in-flight cells finish, the rest are
	// skipped, and the run reports the cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The suite registry carries no collectors (experiments publish series
	// with atomic writes), so handlers can snapshot it live from any
	// goroutine — no pump needed here, unlike hipstr-run.
	if *listen != "" {
		srv, err := hipstr.NewObservabilityServer(*listen, hipstr.ObservabilityOptions{
			Snapshot: func() (hipstr.MetricsSnapshot, bool) { return tel.Snapshot(), true },
			Tracer:   tel.Trace,
			Spans:    spans,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability: serving http://%s/\n", srv.Addr())
		go func() {
			if err := srv.Serve(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				log.Printf("observability shutdown: %v", err)
			}
		}()
	}

	results, err := hipstr.RunExperiments(ctx, s, exps, hipstr.ExperimentOptions{
		ResultsDir:      *resultsOut,
		ContinueOnError: *keepGoing,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w, "\ndone.")
	if *resultsOut != "" {
		fmt.Fprintf(w, "%d result artifacts written to %s\n", len(results), *resultsOut)
	}

	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := hipstr.WriteChromeTrace(f, spans.Spans(), nil); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "timeline written to %s (%d spans; open in ui.perfetto.dev)\n",
			*timelineOut, spans.Completed())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.Snapshot().WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "metrics artifact written to %s\n", *metricsOut)
	}
}
