package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func x86Samples() []Inst {
	return []Inst{
		{Op: OpNop},
		{Op: OpRet},
		{Op: OpLeave},
		{Op: OpHlt},
		{Op: OpSys, Imm: 0x80},
		{Op: OpInc, Dst: R(EDX)},
		{Op: OpDec, Dst: R(EDI)},
		{Op: OpPush, Src: R(EBX)},
		{Op: OpPush, Src: I(0x1234)},
		{Op: OpPush, Src: MB(ESP, 0x40)},
		{Op: OpPop, Dst: R(ESI)},
		{Op: OpPop, Dst: MB(EBP, -8)},
		{Op: OpMov, Dst: R(EAX), Src: I(42)},
		{Op: OpMov, Dst: R(EAX), Src: R(EBX)},
		{Op: OpMov, Dst: MB(ESP, 0x7F), Src: R(ECX)},
		{Op: OpMov, Dst: MB(ESP, 0x2000), Src: R(ECX)},
		{Op: OpMov, Dst: R(ECX), Src: MB(ESP, 0x2000)},
		{Op: OpMov, Dst: MB(EBP, 0), Src: R(EDX)},
		{Op: OpMov, Dst: MB(EAX, 12), Src: I(-7)},
		{Op: OpMov, Dst: R(EDX), Src: M(MemRef{Disp: 0x10003000})},
		{Op: OpMov, Dst: R(EDX), Src: M(MemRef{HasBase: true, Base: EAX, HasIndex: true, Index: EDX, Scale: 4, Disp: 0x30})},
		{Op: OpLea, Dst: R(EAX), Src: MB(ESP, 0x44)},
		{Op: OpAdd, Dst: R(EAX), Src: R(EBX)},
		{Op: OpAdd, Dst: R(EAX), Src: I(1)},
		{Op: OpAdd, Dst: MB(ESP, 8), Src: I(0x12345)},
		{Op: OpSub, Dst: R(ESP), Src: I(0x100)},
		{Op: OpAnd, Dst: R(EAX), Src: MB(ESI, 0)},
		{Op: OpOr, Dst: MB(ESP, 0x80C), Src: R(EAX)},
		{Op: OpXor, Dst: R(EDX), Src: R(EDX)},
		{Op: OpCmp, Dst: R(EAX), Src: I(0)},
		{Op: OpTest, Dst: R(EAX), Src: R(EAX)},
		{Op: OpShl, Dst: R(EAX), Src: I(3)},
		{Op: OpShr, Dst: MB(ESP, 4), Src: R(ECX)},
		{Op: OpMul, Dst: R(EAX), Src: R(ECX)},
		{Op: OpMul, Dst: R(EDI), Src: MB(ESP, 0x20)},
		{Op: OpDiv, Dst: R(EAX), Src: R(EBX)},
		{Op: OpNeg, Dst: R(EBX)},
		{Op: OpNot, Dst: MB(ESP, 0x10)},
		{Op: OpJmp, Addr: 0x1000, Target: 0x1200},
		{Op: OpCall, Addr: 0x1000, Target: 0x800},
		{Op: OpJcc, Cond: CondEQ, Addr: 0x1000, Target: 0x1100},
		{Op: OpJcc, Cond: CondLE, Addr: 0x1000, Target: 0xF00},
		{Op: OpJmpI, Dst: R(EAX)},
		{Op: OpJmpI, Dst: MB(EBX, 0x10)},
		{Op: OpCallI, Dst: R(EDX)},
		{Op: OpCallI, Dst: M(MemRef{Disp: 0x10000010})},
	}
}

func armSamples() []Inst {
	return []Inst{
		{Op: OpNop},
		{Op: OpHlt},
		{Op: OpSys, Imm: 0x80},
		{Op: OpMov, Dst: R(R0), Src: I(42)},
		{Op: OpMov, Dst: R(R4), Src: R(R9)},
		{Op: OpMov, Dst: R(R1), Src: I(0xABCD)}, // movw path via imm16? no: 0xABCD > imm13; test separately
		{Op: OpMovT, Dst: R(R1), Src: I(0x1234)},
		{Op: OpNot, Dst: R(R2), Src: R(R3)},
		{Op: OpAdd, Dst: R(R0), Src: R(R1), Src2: R(R2)},
		{Op: OpAdd, Dst: R(SP), Src: I(-64), Src2: R(SP)},
		{Op: OpSub, Dst: R(R5), Src: I(1), Src2: R(R5)},
		{Op: OpRsb, Dst: R(R3), Src: I(0), Src2: R(R4)},
		{Op: OpAnd, Dst: R(R1), Src: R(R2), Src2: R(R1)},
		{Op: OpOr, Dst: R(R7), Src: R(R8), Src2: R(R9)},
		{Op: OpXor, Dst: R(R10), Src: R(R11), Src2: R(R12)},
		{Op: OpShl, Dst: R(R0), Src: I(4), Src2: R(R0)},
		{Op: OpShr, Dst: R(R1), Src: R(R2), Src2: R(R1)},
		{Op: OpMul, Dst: R(R0), Src: R(R1), Src2: R(R2)},
		{Op: OpDiv, Dst: R(R0), Src: R(R1), Src2: R(R0)},
		{Op: OpCmp, Dst: R(R4), Src: I(10)},
		{Op: OpTest, Dst: R(R4), Src: R(R5)},
		{Op: OpLoad, Dst: R(R0), Src: MB(SP, 0x40)},
		{Op: OpLoad, Dst: R(R0), Src: MB(SP, -16)},
		{Op: OpLoad, Dst: R(R3), Src: M(MemRef{HasBase: true, Base: R1, HasIndex: true, Index: R2, Scale: 1})},
		{Op: OpStore, Dst: MB(SP, 0x100), Src: R(R6)},
		{Op: OpJmp, Addr: 0x2000, Target: 0x2400},
		{Op: OpJcc, Cond: CondNE, Addr: 0x2000, Target: 0x1F00},
		{Op: OpCall, Addr: 0x2000, Target: 0x8000},
		{Op: OpBx, Dst: R(LR)},
		{Op: OpCallI, Dst: R(R3)},
		{Op: OpPushM, RegMask: 1<<R4 | 1<<R5 | 1<<LR},
		{Op: OpPopM, RegMask: 1<<R4 | 1<<R5 | 1<<PC},
		{Op: OpPush, Src: R(R0)},
		{Op: OpPop, Dst: R(R1)},
	}
}

func sameOperand(a, b Operand) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case OpdReg:
		return a.Reg == b.Reg
	case OpdImm:
		return a.Imm == b.Imm
	case OpdMem:
		am, bm := a.Mem, b.Mem
		if am.HasBase != bm.HasBase || am.HasIndex != bm.HasIndex || am.Disp != bm.Disp {
			return false
		}
		if am.HasBase && am.Base != bm.Base {
			return false
		}
		if am.HasIndex {
			as, bs := am.Scale, bm.Scale
			if as == 0 {
				as = 1
			}
			if bs == 0 {
				bs = 1
			}
			if am.Index != bm.Index || as != bs {
				return false
			}
		}
	}
	return true
}

func checkRoundTrip(t *testing.T, k Kind, samples []Inst) {
	t.Helper()
	for i, want := range samples {
		want.ISA = k
		if want.Cond == 0 {
			want.Cond = CondAlways
		}
		if k == ARM && want.Op == OpMov && want.Src.Kind == OpdImm && !FitsARMImm(want.Src.Imm) {
			continue // exercised by TestARMMovw below
		}
		enc, err := Encode(k, &want)
		if err != nil {
			t.Fatalf("sample %d (%s): encode: %v", i, want.String(), err)
		}
		got, err := Decode(k, enc, want.Addr)
		if err != nil {
			t.Fatalf("sample %d (%s): decode % x: %v", i, want.String(), enc, err)
		}
		if got.Op != want.Op {
			// push r / pop r on ARM decode to the multi-register forms.
			if k == ARM && want.Op == OpPush && got.Op == OpPushM && got.RegMask == 1<<want.Src.Reg {
				continue
			}
			if k == ARM && want.Op == OpPop && got.Op == OpPopM && got.RegMask == 1<<want.Dst.Reg {
				continue
			}
			t.Fatalf("sample %d: op mismatch: want %s got %s", i, want.Op, got.Op)
		}
		if int(got.Size) != len(enc) {
			t.Errorf("sample %d (%s): size %d != encoded length %d", i, want.String(), got.Size, len(enc))
		}
		if got.Op == OpJmp || got.Op == OpJcc || got.Op == OpCall {
			if got.Target != want.Target {
				t.Errorf("sample %d (%s): target %#x != %#x", i, want.String(), got.Target, want.Target)
			}
			if got.Cond != want.Cond {
				t.Errorf("sample %d (%s): cond %s != %s", i, want.String(), got.Cond, want.Cond)
			}
			continue
		}
		if got.Op == OpPushM || got.Op == OpPopM {
			if got.RegMask != want.RegMask {
				t.Errorf("sample %d: mask %#x != %#x", i, got.RegMask, want.RegMask)
			}
			continue
		}
		if got.Op == OpSys && got.Imm != want.Imm {
			t.Errorf("sample %d: sys imm %#x != %#x", i, got.Imm, want.Imm)
		}
		// ARM two-operand ALU round-trips with an explicit Src2.
		wantSrc2 := want.Src2
		if k == ARM && wantSrc2.Kind == OpdNone {
			switch want.Op {
			case OpAdd, OpSub, OpRsb, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv:
				wantSrc2 = want.Dst
			}
		}
		if !sameOperand(got.Dst, want.Dst) {
			t.Errorf("sample %d (%s): dst %s != %s", i, want.String(), got.Dst, want.Dst)
		}
		if !sameOperand(got.Src, want.Src) {
			t.Errorf("sample %d (%s): src %s != %s", i, want.String(), got.Src, want.Src)
		}
		if wantSrc2.Kind != OpdNone && !sameOperand(got.Src2, wantSrc2) {
			t.Errorf("sample %d (%s): src2 %s != %s", i, want.String(), got.Src2, wantSrc2)
		}
	}
}

func TestX86RoundTrip(t *testing.T) { checkRoundTrip(t, X86, x86Samples()) }
func TestARMRoundTrip(t *testing.T) { checkRoundTrip(t, ARM, armSamples()) }

func TestX86EncodingLengthsVary(t *testing.T) {
	lens := map[int]bool{}
	for _, in := range x86Samples() {
		enc, err := EncodeX86(&in)
		if err != nil {
			t.Fatal(err)
		}
		lens[len(enc)] = true
	}
	if len(lens) < 4 {
		t.Fatalf("x86 should be variable length; got lengths %v", lens)
	}
}

func TestARMFixedWidth(t *testing.T) {
	for _, in := range armSamples() {
		if in.Op == OpMov && in.Src.Kind == OpdImm && !FitsARMImm(in.Src.Imm) {
			continue
		}
		enc, err := EncodeARM(&in)
		if err != nil {
			t.Fatalf("%s: %v", in.String(), err)
		}
		if len(enc) != 4 {
			t.Fatalf("%s: arm encoding must be 4 bytes, got %d", in.String(), len(enc))
		}
	}
}

func TestARMMovwMovtMaterialize(t *testing.T) {
	// movw r1, #0xBEEF ; movt r1, #0xDEAD materializes 0xDEADBEEF.
	movw := Inst{Op: OpMov, Dst: R(R1), Src: I(int32(0xBEEF))}
	if FitsARMImm(movw.Src.Imm) {
		t.Fatalf("0xBEEF unexpectedly fits the 13-bit immediate")
	}
	// Encoder for wide immediates is provided by MaterializeARMConst.
	insts := MaterializeARMConst(R1, 0xDEADBEEF)
	if len(insts) != 2 {
		t.Fatalf("expected movw+movt, got %d instructions", len(insts))
	}
	for _, in := range insts {
		if _, err := EncodeARM(&in); err != nil {
			t.Fatalf("encode %s: %v", in.String(), err)
		}
	}
}

func TestARMStrictDecode(t *testing.T) {
	// Random words should overwhelmingly fail to decode: this is the
	// aligned-ISA property that shrinks ARM's gadget surface.
	rng := rand.New(rand.NewSource(1))
	valid := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		var b [4]byte
		rng.Read(b[:])
		if _, err := DecodeARM(b[:], 0); err == nil {
			valid++
		}
	}
	frac := float64(valid) / trials
	if frac > 0.05 {
		t.Fatalf("ARM decoder accepts %.2f%% of random words; want < 5%%", frac*100)
	}
}

func TestX86DenseDecode(t *testing.T) {
	// By contrast a sizable fraction of random x86 byte windows decode.
	rng := rand.New(rand.NewSource(2))
	valid := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		var b [16]byte
		rng.Read(b[:])
		if _, err := DecodeX86(b[:], 0); err == nil {
			valid++
		}
	}
	frac := float64(valid) / trials
	if frac < 0.20 {
		t.Fatalf("x86 decoder accepts only %.2f%% of random windows; want >= 20%%", frac*100)
	}
}

func TestCondNegate(t *testing.T) {
	conds := []Cond{CondEQ, CondNE, CondLT, CondGE, CondGT, CondLE, CondB, CondAE}
	for _, c := range conds {
		if c.Negate().Negate() != c {
			t.Errorf("negate not involutive for %s", c)
		}
		if c.Negate() == c {
			t.Errorf("negate fixed point at %s", c)
		}
	}
}

func TestRegNames(t *testing.T) {
	if EAX.Name(X86) != "eax" || ESP.Name(X86) != "esp" {
		t.Error("x86 register names wrong")
	}
	if SP.Name(ARM) != "sp" || LR.Name(ARM) != "lr" || PC.Name(ARM) != "pc" || R7.Name(ARM) != "r7" {
		t.Error("arm register names wrong")
	}
}

func TestIsReturnIdioms(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: OpRet}, true},
		{Inst{Op: OpBx, Dst: R(LR)}, true},
		{Inst{Op: OpBx, Dst: R(R3)}, false},
		{Inst{Op: OpPopM, RegMask: 1 << PC}, true},
		{Inst{Op: OpPopM, RegMask: 1 << R4}, false},
		{Inst{Op: OpJmp}, false},
	}
	for _, c := range cases {
		if got := c.in.IsReturn(); got != c.want {
			t.Errorf("%s: IsReturn=%v want %v", c.in.Op, got, c.want)
		}
	}
}

func TestX86ModRMQuick(t *testing.T) {
	// Property: any register-register mov round-trips for all pairs.
	f := func(d, s uint8) bool {
		in := Inst{Op: OpMov, Dst: R(Reg(d % 8)), Src: R(Reg(s % 8))}
		enc, err := EncodeX86(&in)
		if err != nil {
			return false
		}
		got, err := DecodeX86(enc, 0)
		if err != nil {
			return false
		}
		return got.Op == OpMov && got.Dst.Reg == in.Dst.Reg && got.Src.Reg == in.Src.Reg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestX86DispQuick(t *testing.T) {
	// Property: esp-relative loads round-trip for arbitrary displacements.
	f := func(disp int32, r uint8) bool {
		reg := Reg(r % 8)
		in := Inst{Op: OpMov, Dst: R(reg), Src: MB(ESP, disp)}
		enc, err := EncodeX86(&in)
		if err != nil {
			return false
		}
		got, err := DecodeX86(enc, 0)
		if err != nil {
			return false
		}
		return got.Src.Kind == OpdMem && got.Src.Mem.Disp == disp &&
			got.Src.Mem.Base == ESP && got.Dst.Reg == reg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestARMImmQuick(t *testing.T) {
	// Property: in-range ARM immediates round-trip exactly.
	f := func(v int16, r uint8) bool {
		imm := int32(v) % 4096
		reg := Reg(r % 13)
		in := Inst{Op: OpAdd, Dst: R(reg), Src: I(imm), Src2: R(reg)}
		enc, err := EncodeARM(&in)
		if err != nil {
			return false
		}
		got, err := DecodeARM(enc, 0)
		if err != nil {
			return false
		}
		return got.Src.Kind == OpdImm && got.Src.Imm == imm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
