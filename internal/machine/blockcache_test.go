package machine

import (
	"sync"
	"testing"

	"hipstr/internal/isa"
	"hipstr/internal/mem"
)

// loopProgram emits a small countdown loop ending in a halt.
func loopProgram(iters int32) func(a *isa.Asm) {
	return func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.ECX), Src: isa.I(iters)})
		a.Label("loop")
		a.Emit(isa.Inst{Op: isa.OpDec, Dst: isa.R(isa.ECX)})
		a.Emit(isa.Inst{Op: isa.OpCmp, Dst: isa.R(isa.ECX), Src: isa.I(0)})
		a.Jcc(isa.CondNE, "loop")
		a.Emit(isa.Inst{Op: isa.OpHlt})
	}
}

func TestBlockCacheCountsHitsAndMisses(t *testing.T) {
	m, _ := load(t, isa.X86, loopProgram(1000))
	mustRun(t, m)
	bs := m.BlockStats()
	if bs.Misses == 0 {
		t.Fatal("no block refills recorded")
	}
	if bs.Misses > 8 {
		t.Fatalf("loop decoded %d blocks; expected a handful", bs.Misses)
	}
	if bs.Hits < 900 {
		t.Fatalf("hits = %d; the loop body should be served from cache", bs.Hits)
	}
	if bs.Invalidations != 0 {
		t.Fatalf("unexpected invalidations: %d", bs.Invalidations)
	}
	if r := bs.HitRatio(); r < 0.95 {
		t.Fatalf("hit ratio = %.3f, want >= 0.95", r)
	}
	if bs.Blocks == 0 {
		t.Fatal("no blocks resident after the run")
	}
}

// TestSelfModifyingCodeRedecodes overwrites an upcoming instruction from
// inside the program and checks the block cache notices before executing
// it — even though the store and its victim share one basic block. The
// program layout is fixed so the store's absolute target is known at
// assembly time: the patch instruction (mov [imm32], imm32) encodes to 10
// bytes, so the victim mov's immediate field sits at textBase+11.
func TestSelfModifyingCodeRedecodes(t *testing.T) {
	a := isa.NewAsm(isa.X86, textBase)
	a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.M(isa.MemRef{Disp: textBase + 11}), Src: isa.I(99)})
	a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(42)})
	a.Emit(isa.Inst{Op: isa.OpHlt})
	code, _, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if code[10] != 0xB8 {
		t.Fatalf("layout drifted: mov eax,imm not at offset 10 (got %#x)", code[10])
	}
	ram := mem.New()
	ram.Map("text", textBase, uint32(len(code))+mem.PageSize, mem.PermRWX)
	ram.WriteForce(textBase, code)
	m := New(isa.X86, ram)
	m.PC = textBase
	mustRun(t, m)
	if got := m.Regs[isa.EAX]; got != 99 {
		t.Fatalf("eax = %d; stale decode executed (want the patched 99)", got)
	}
	if bs := m.BlockStats(); bs.Invalidations == 0 {
		t.Fatal("store into executable text did not invalidate the block cache")
	}
}

func TestInvalidateCodeForcesRedecode(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Label("loop")
		a.Emit(isa.Inst{Op: isa.OpInc, Dst: isa.R(isa.EAX)})
		a.Jmp("loop")
	})
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	before := m.BlockStats()
	if before.Blocks == 0 {
		t.Fatal("no blocks cached after first run")
	}
	m.Mem.InvalidateCode()
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	after := m.BlockStats()
	if after.Invalidations != before.Invalidations+1 {
		t.Fatalf("invalidations %d -> %d, want one more", before.Invalidations, after.Invalidations)
	}
	if after.Misses <= before.Misses {
		t.Fatal("no re-decode after explicit code invalidation")
	}
}

// TestConcurrentMachines exercises the block cache under -race: parallel
// experiment cells each own a machine + memory and must share nothing.
func TestConcurrentMachines(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := isa.NewAsm(isa.X86, textBase)
			loopProgram(5000)(a)
			code, _, err := a.Assemble()
			if err != nil {
				errs <- err
				return
			}
			ram := mem.New()
			ram.Map("text", textBase, uint32(len(code))+mem.PageSize, mem.PermRX)
			ram.WriteForce(textBase, code)
			m := New(isa.X86, ram)
			m.PC = textBase
			if _, err := m.Run(100000); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
