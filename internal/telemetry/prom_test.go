package telemetry

import (
	"strings"
	"testing"
)

// TestWritePromByteStable pins the exposition output of a fixed registry:
// family order (counters, gauges, histograms), lexical name order within a
// family, name sanitization, and cumulative le buckets. The pinned bucket
// bounds are specific to histogram schema version 2 (base-1.02 sketch);
// a schema bump must update this golden output.
func TestWritePromByteStable(t *testing.T) {
	if HistSchemaVersion != 2 {
		t.Fatalf("golden output below pins schema version 2, registry reports %d", HistSchemaVersion)
	}
	r := NewRegistry()
	r.Counter("dbt.translations.x86").Add(7)
	r.Counter("dbt.translations.arm").Add(3)
	r.Counter("dbt.sharedcache.hits").Add(5)
	r.Counter("dbt.sharedcache.bytes_saved").Add(4096)
	r.Counter("mem.cow.broken_pages").Add(2)
	r.Counter("machine.fusion.pairs").Add(11)
	r.Counter("machine.fusion.blocks.batched").Add(9)
	r.Counter("machine.fusion.blocks.exact").Add(1)
	r.Counter("machine.fusion.commits").Add(9)
	r.Gauge("dbt.cache.x86.occupancy").Set(0.25)
	r.Gauge("mem.cow.shared_pages").Set(12)
	h := r.Histogram("dbt.translate.latency_us.x86")
	h.Observe(1)   // bucket le=1 (1.02^0, exact)
	h.Observe(1)   // bucket le=1
	h.Observe(3)   // bucket le=1.02^56 ~ 3.03
	h.Observe(100) // bucket le=1.02^233 ~ 100.89

	want := strings.Join([]string{
		"# TYPE dbt_sharedcache_bytes_saved counter",
		"dbt_sharedcache_bytes_saved 4096",
		"# TYPE dbt_sharedcache_hits counter",
		"dbt_sharedcache_hits 5",
		"# TYPE dbt_translations_arm counter",
		"dbt_translations_arm 3",
		"# TYPE dbt_translations_x86 counter",
		"dbt_translations_x86 7",
		"# TYPE machine_fusion_blocks_batched counter",
		"machine_fusion_blocks_batched 9",
		"# TYPE machine_fusion_blocks_exact counter",
		"machine_fusion_blocks_exact 1",
		"# TYPE machine_fusion_commits counter",
		"machine_fusion_commits 9",
		"# TYPE machine_fusion_pairs counter",
		"machine_fusion_pairs 11",
		"# TYPE mem_cow_broken_pages counter",
		"mem_cow_broken_pages 2",
		"# TYPE dbt_cache_x86_occupancy gauge",
		"dbt_cache_x86_occupancy 0.25",
		"# TYPE mem_cow_shared_pages gauge",
		"mem_cow_shared_pages 12",
		"# TYPE dbt_translate_latency_us_x86 histogram",
		`dbt_translate_latency_us_x86_bucket{le="1"} 2`,
		`dbt_translate_latency_us_x86_bucket{le="3.0311652864835517"} 3`,
		`dbt_translate_latency_us_x86_bucket{le="100.88811797408722"} 4`,
		`dbt_translate_latency_us_x86_bucket{le="+Inf"} 4`,
		"dbt_translate_latency_us_x86_sum 105",
		"dbt_translate_latency_us_x86_count 4",
		"",
	}, "\n")

	for i := 0; i < 3; i++ {
		var b strings.Builder
		if err := r.Snapshot().WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		if got := b.String(); got != want {
			t.Fatalf("exposition mismatch (iteration %d):\ngot:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"dbt.rat.x86.misses": "dbt_rat_x86_misses",
		"a-b c/d":            "a_b_c_d",
		"0abc":               "_0abc",
		"ok_name:x":          "ok_name:x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel("plain"); got != "plain" {
		t.Errorf("EscapeLabel(plain) = %q", got)
	}
	if got := EscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("EscapeLabel = %q", got)
	}
}

// TestRegistryKindConflict pins the loud-failure contract: reusing a
// metric name under a different kind panics with the name in the message.
func TestRegistryKindConflict(t *testing.T) {
	cases := []struct {
		name  string
		first func(r *Registry)
		then  func(r *Registry)
	}{
		{"counter-then-gauge", func(r *Registry) { r.Counter("x.y") }, func(r *Registry) { r.Gauge("x.y") }},
		{"counter-then-histogram", func(r *Registry) { r.Counter("x.y") }, func(r *Registry) { r.Histogram("x.y") }},
		{"gauge-then-counter", func(r *Registry) { r.Gauge("x.y") }, func(r *Registry) { r.Counter("x.y") }},
		{"gauge-then-histogram", func(r *Registry) { r.Gauge("x.y") }, func(r *Registry) { r.Histogram("x.y") }},
		{"histogram-then-counter", func(r *Registry) { r.Histogram("x.y") }, func(r *Registry) { r.Counter("x.y") }},
		{"histogram-then-gauge", func(r *Registry) { r.Histogram("x.y") }, func(r *Registry) { r.Gauge("x.y") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.first(r)
			defer func() {
				rec := recover()
				if rec == nil {
					t.Fatal("expected panic on kind conflict")
				}
				msg, ok := rec.(string)
				if !ok || !strings.Contains(msg, `"x.y"`) {
					t.Fatalf("panic message %v does not name the metric", rec)
				}
			}()
			tc.then(r)
		})
	}
}

// TestRegistrySameKindIdempotent guards against over-eager conflict
// detection: re-requesting the same name under the same kind returns the
// same metric.
func TestRegistrySameKindIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Error("Histogram not idempotent")
	}
}
