// Package health turns the recording observability stack into a watching
// one: a rolling history ring over periodic telemetry snapshots, a rule
// engine evaluating declarative SLO/anomaly conditions against that
// history with hysteresis, and an incident flight recorder that captures
// a forensic bundle (triggering series window, recent trace events and
// spans, top offender tenants, profiler top table, host config) the
// moment a rule fires — while the context still exists, not after the
// storm has rotated it out of the rings.
//
// Everything here runs off the snapshot path: Observe is called by the
// goroutine that already snapshots the registry (the obsrv pump loop or a
// dedicated fleet monitor goroutine), so the guest hot path never sees a
// single extra instruction, and HTTP reads of history and incidents take
// their own locks against that one writer.
package health

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"hipstr/internal/telemetry"
)

// Defaults bounding the history ring's memory: WindowSamples rows of up
// to MaxSeries float64 columns (plus one shared name index), so the worst
// case is WindowSamples*MaxSeries*8 bytes regardless of how long the
// process runs or how many series the registry grows.
const (
	DefaultWindowSamples = 512
	DefaultMaxSeries     = 4096
)

// Point is one sample of one series.
type Point struct {
	// TimeNS is the sample's absolute wall-clock time in nanoseconds.
	TimeNS int64 `json:"t"`
	// Value is the sampled value.
	Value float64 `json:"v"`
}

// History is a bounded rolling window of flattened telemetry snapshots.
// Counters and gauges map to one series each under their metric name;
// histograms flatten to <name>.count, <name>.sum, <name>.p50 and
// <name>.p99. Storage is columnar: one shared name->column index plus a
// ring of per-sample value rows, so series names are stored once, not
// once per sample.
type History struct {
	mu        sync.RWMutex
	capacity  int
	maxSeries int
	cols      map[string]int
	names     []string
	times     []int64
	rows      [][]float64
	total     uint64 // samples appended (including rotated-out)
	dropped   uint64 // series refused by the maxSeries bound
}

// NewHistory returns a history ring keeping the last windowSamples
// snapshots across at most maxSeries distinct series (<= 0 selects the
// defaults).
func NewHistory(windowSamples, maxSeries int) *History {
	if windowSamples <= 0 {
		windowSamples = DefaultWindowSamples
	}
	if maxSeries <= 0 {
		maxSeries = DefaultMaxSeries
	}
	return &History{
		capacity:  windowSamples,
		maxSeries: maxSeries,
		cols:      make(map[string]int),
	}
}

// col returns the column index for name, creating it if the series bound
// allows; ok=false means the series was dropped. Caller holds mu.
func (h *History) col(name string) (int, bool) {
	if c, ok := h.cols[name]; ok {
		return c, true
	}
	if len(h.names) >= h.maxSeries {
		h.dropped++
		return 0, false
	}
	c := len(h.names)
	h.names = append(h.names, name)
	h.cols[name] = c
	return c, true
}

// Append flattens snap into one sample row at tsNS. It is the single
// writer; HTTP readers are safe concurrently.
func (h *History) Append(tsNS int64, snap telemetry.Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	row := make([]float64, len(h.names), len(h.names)+16)
	for i := range row {
		row[i] = math.NaN()
	}
	set := func(name string, v float64) {
		c, ok := h.col(name)
		if !ok {
			return
		}
		for len(row) <= c {
			row = append(row, math.NaN())
		}
		row[c] = v
	}
	for name, v := range snap.Counters {
		set(name, float64(v))
	}
	for name, v := range snap.Gauges {
		set(name, v)
	}
	for name, hs := range snap.Histograms {
		set(name+".count", float64(hs.Count))
		set(name+".sum", hs.Sum)
		set(name+".p50", hs.Quantile(0.50))
		set(name+".p99", hs.Quantile(0.99))
	}
	if len(h.rows) < h.capacity {
		h.times = append(h.times, tsNS)
		h.rows = append(h.rows, row)
	} else {
		at := int(h.total % uint64(h.capacity))
		h.times[at] = tsNS
		h.rows[at] = row
	}
	h.total++
}

// Len returns the number of retained samples.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.rows)
}

// Total returns the number of samples ever appended.
func (h *History) Total() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.total
}

// DroppedSeries returns how many series were refused by the MaxSeries
// bound (0 in healthy configurations; nonzero is itself a signal).
func (h *History) DroppedSeries() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.dropped
}

// Names returns every known series name, sorted.
func (h *History) Names() []string {
	h.mu.RLock()
	out := append([]string(nil), h.names...)
	h.mu.RUnlock()
	sort.Strings(out)
	return out
}

// orderedIdx returns retained sample indices oldest-first. Caller holds a
// read lock.
func (h *History) orderedIdx() []int {
	n := len(h.rows)
	idx := make([]int, 0, n)
	if n < h.capacity {
		for i := 0; i < n; i++ {
			idx = append(idx, i)
		}
		return idx
	}
	start := int(h.total % uint64(h.capacity))
	for i := 0; i < n; i++ {
		idx = append(idx, (start+i)%n)
	}
	return idx
}

// Series returns the retained points of one series oldest-first, skipping
// samples where the series was absent. nil means the series is unknown.
func (h *History) Series(name string) []Point {
	return h.SeriesWindow(name, 0, math.MaxInt64)
}

// SeriesWindow returns the series points with fromNS <= t <= toNS,
// oldest-first.
func (h *History) SeriesWindow(name string, fromNS, toNS int64) []Point {
	h.mu.RLock()
	defer h.mu.RUnlock()
	c, ok := h.cols[name]
	if !ok {
		return nil
	}
	var out []Point
	for _, i := range h.orderedIdx() {
		t := h.times[i]
		if t < fromNS || t > toNS {
			continue
		}
		row := h.rows[i]
		if c >= len(row) || math.IsNaN(row[c]) {
			continue
		}
		out = append(out, Point{TimeNS: t, Value: row[c]})
	}
	return out
}

// Latest returns the most recent value of the series; ok=false when the
// series is unknown or has no retained sample.
func (h *History) Latest(name string) (Point, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	c, ok := h.cols[name]
	if !ok {
		return Point{}, false
	}
	idx := h.orderedIdx()
	for i := len(idx) - 1; i >= 0; i-- {
		row := h.rows[idx[i]]
		if c < len(row) && !math.IsNaN(row[c]) {
			return Point{TimeNS: h.times[idx[i]], Value: row[c]}, true
		}
	}
	return Point{}, false
}

// Rate returns the counter-reset-safe per-second rate of the series over
// the window ending at nowNS: positive deltas accumulate normally and a
// decrease is treated as a reset (the Prometheus convention — the new
// value counts as growth from zero, which is exactly what a fleet respawn
// or VM reboot looks like). ok=false when the window holds fewer than two
// samples.
func (h *History) Rate(name string, window time.Duration, nowNS int64) (float64, bool) {
	pts := h.SeriesWindow(name, nowNS-window.Nanoseconds(), nowNS)
	if len(pts) < 2 {
		return 0, false
	}
	var inc float64
	for i := 1; i < len(pts); i++ {
		d := pts[i].Value - pts[i-1].Value
		if d < 0 { // counter reset
			d = pts[i].Value
		}
		inc += d
	}
	el := float64(pts[len(pts)-1].TimeNS-pts[0].TimeNS) / 1e9
	if el <= 0 {
		return 0, false
	}
	return inc / el, true
}

// Deriv returns the signed per-second slope of the series over the window
// ((last-first)/elapsed) — the gauge-domain rate-of-change, where a
// decrease really is a decrease, not a counter reset.
func (h *History) Deriv(name string, window time.Duration, nowNS int64) (float64, bool) {
	pts := h.SeriesWindow(name, nowNS-window.Nanoseconds(), nowNS)
	if len(pts) < 2 {
		return 0, false
	}
	el := float64(pts[len(pts)-1].TimeNS-pts[0].TimeNS) / 1e9
	if el <= 0 {
		return 0, false
	}
	return (pts[len(pts)-1].Value - pts[0].Value) / el, true
}

// BurnFraction returns the fraction of window samples where the series
// breaches threshold in direction op (the SLO burn measure), and the
// number of samples considered.
func (h *History) BurnFraction(name string, window time.Duration, nowNS int64, op Op, threshold float64) (float64, int) {
	pts := h.SeriesWindow(name, nowNS-window.Nanoseconds(), nowNS)
	if len(pts) == 0 {
		return 0, 0
	}
	bad := 0
	for _, p := range pts {
		if op.breaches(p.Value, threshold) {
			bad++
		}
	}
	return float64(bad) / float64(len(pts)), len(pts)
}

// QuerySeries is one series in a history query result.
type QuerySeries struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// QueryResult is the JSON shape served at /history.
type QueryResult struct {
	Samples uint64        `json:"samples"`
	Series  []QuerySeries `json:"series,omitempty"`
	Names   []string      `json:"names,omitempty"`
}

// Query resolves a /history request: the named series limited to the last
// maxPoints points each (0 = all), or, with no names, the series index.
func (h *History) Query(names []string, maxPoints int) QueryResult {
	res := QueryResult{Samples: h.Total()}
	if len(names) == 0 {
		res.Names = h.Names()
		return res
	}
	for _, name := range names {
		pts := h.Series(name)
		if maxPoints > 0 && len(pts) > maxPoints {
			pts = pts[len(pts)-maxPoints:]
		}
		res.Series = append(res.Series, QuerySeries{Name: name, Points: pts})
	}
	return res
}

// fmtValue renders a series value compactly for incident summaries.
func fmtValue(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
