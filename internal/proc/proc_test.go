package proc_test

import (
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/isa"
	"hipstr/internal/proc"
	"hipstr/internal/prog"
	"hipstr/internal/testprogs"
)

func TestBootAndExit(t *testing.T) {
	bin, err := compiler.Compile(testprogs.SumLoop(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range isa.Kinds {
		p, err := proc.New(bin, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunToExit(1_000_000); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if p.ExitCode != 21 {
			t.Fatalf("%s: exit %d", k, p.ExitCode)
		}
	}
}

func TestSyscallTraceAndExecveRecording(t *testing.T) {
	mb := prog.NewModule("sys")
	fb := mb.Func("main", 0)
	a := fb.Const(5)
	fb.Syscall(4, a) // write(5)
	b := fb.Const(9)
	fb.Syscall(4, b) // write(9)
	path := fb.Const(0x1234)
	z := fb.Const(0)
	fb.Syscall(11, path, z, z) // execve
	fb.Syscall(1, z)
	fb.Ret(z)
	bin, err := compiler.Compile(mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	p, err := proc.New(bin, isa.X86)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunToExit(10_000); err != nil {
		t.Fatal(err)
	}
	if len(p.Trace) != 2 || p.Trace[0] != 5 || p.Trace[1] != 9 {
		t.Fatalf("trace %v", p.Trace)
	}
	if len(p.Execves) != 1 || p.Execves[0].PathPtr != 0x1234 {
		t.Fatalf("execves %v", p.Execves)
	}
}

func TestUnknownSyscallFails(t *testing.T) {
	mb := prog.NewModule("bad")
	fb := mb.Func("main", 0)
	z := fb.Const(0)
	fb.Syscall(999, z)
	fb.Ret(z)
	bin, err := compiler.Compile(mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	p, err := proc.New(bin, isa.X86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(10_000); err == nil {
		t.Fatal("unknown syscall should error")
	}
}

func TestExitCodeFromReturn(t *testing.T) {
	// main returning without calling exit(): the bootstrap captures the
	// return value through the exit sentinel.
	mb := prog.NewModule("ret")
	fb := mb.Func("main", 0)
	v := fb.Const(123)
	fb.Ret(v)
	bin, err := compiler.Compile(mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range isa.Kinds {
		p, err := proc.New(bin, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunToExit(10_000); err != nil {
			t.Fatal(err)
		}
		if p.ExitCode != 123 {
			t.Fatalf("%s: exit %d", k, p.ExitCode)
		}
	}
}

func TestResetReruns(t *testing.T) {
	bin, err := compiler.Compile(testprogs.Fib(8))
	if err != nil {
		t.Fatal(err)
	}
	p, err := proc.New(bin, isa.X86)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunToExit(1_000_000); err != nil {
		t.Fatal(err)
	}
	first := p.ExitCode
	p.Reset(isa.ARM)
	if err := p.RunToExit(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != first {
		t.Fatalf("rerun on ARM gave %d, first %d", p.ExitCode, first)
	}
}
