// Package workload generates the synthetic benchmark programs standing in
// for the paper's SPEC CPU2006 C benchmarks and the httpd case study.
//
// Each benchmark is produced deterministically from a named profile that
// controls the properties the evaluation depends on: code volume (gadget
// population), loop structure (register bindings, steady-state behavior),
// memory intensity, call-graph shape, indirect-call density (JIT-ROP
// surface), and constant entropy (unintentional-gadget bytes on the
// variable-length ISA). The programs are real: they compile for both ISAs,
// terminate, and produce deterministic checksums, so every security and
// performance experiment runs on executable code rather than statistical
// stand-ins.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"hipstr/internal/compiler"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/prog"
)

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	Name string
	Seed int64
	// Funcs is the number of worker functions (drives code volume).
	Funcs int
	// MaxLoops bounds the loops per function; MaxTrip bounds trip counts.
	MaxLoops int
	MaxTrip  int
	// Arith is the number of arithmetic ops per loop body.
	Arith int
	// MemOps is the number of global-array accesses per loop body.
	MemOps int
	// CallFanout is how many (acyclic) direct calls a function makes.
	CallFanout int
	// IndirectFrac is the probability a call goes through the global
	// function-pointer table instead of being direct.
	IndirectFrac float64
	// DataKB sizes the global data arena.
	DataKB int
	// WorkIters is main's outer loop count (dynamic instruction volume).
	WorkIters int
	// PointerChase adds linked-list walks through the arena (mcf-style).
	PointerChase bool
	// ByteOps mixes in byte-granularity masking work (bzip2/httpd-style).
	ByteOps bool
}

// Profiles returns the benchmark suite of the paper: the eight SPEC C
// benchmarks used in the evaluation plus the httpd case study, with
// relative shapes chosen to mirror each program's character (gobmk and
// httpd are code-heavy; lbm and libquantum are small kernels with hot
// loops; mcf chases pointers; bzip2 masks bytes).
func Profiles() []Profile {
	return []Profile{
		{Name: "bzip2", Seed: 101, Funcs: 34, MaxLoops: 2, MaxTrip: 24, Arith: 6, MemOps: 3, CallFanout: 2, IndirectFrac: 0.05, DataKB: 64, WorkIters: 10, ByteOps: true},
		{Name: "gobmk", Seed: 102, Funcs: 96, MaxLoops: 2, MaxTrip: 10, Arith: 5, MemOps: 2, CallFanout: 3, IndirectFrac: 0.10, DataKB: 48, WorkIters: 6},
		{Name: "hmmer", Seed: 103, Funcs: 40, MaxLoops: 3, MaxTrip: 18, Arith: 7, MemOps: 3, CallFanout: 2, IndirectFrac: 0.04, DataKB: 56, WorkIters: 8},
		{Name: "lbm", Seed: 104, Funcs: 9, MaxLoops: 3, MaxTrip: 40, Arith: 10, MemOps: 4, CallFanout: 1, IndirectFrac: 0.0, DataKB: 96, WorkIters: 14},
		{Name: "libquantum", Seed: 105, Funcs: 12, MaxLoops: 2, MaxTrip: 36, Arith: 6, MemOps: 2, CallFanout: 1, IndirectFrac: 0.0, DataKB: 24, WorkIters: 16},
		{Name: "mcf", Seed: 106, Funcs: 22, MaxLoops: 2, MaxTrip: 20, Arith: 4, MemOps: 5, CallFanout: 2, IndirectFrac: 0.06, DataKB: 128, WorkIters: 8, PointerChase: true},
		{Name: "milc", Seed: 107, Funcs: 28, MaxLoops: 3, MaxTrip: 22, Arith: 9, MemOps: 3, CallFanout: 2, IndirectFrac: 0.03, DataKB: 72, WorkIters: 8},
		{Name: "sphinx3", Seed: 108, Funcs: 48, MaxLoops: 2, MaxTrip: 16, Arith: 6, MemOps: 3, CallFanout: 3, IndirectFrac: 0.08, DataKB: 64, WorkIters: 7},
	}
}

// HTTPD returns the network-daemon case-study profile (§7.1): the largest
// code body with heavy indirect dispatch through handler tables.
func HTTPD() Profile {
	return Profile{
		Name: "httpd", Seed: 200, Funcs: 150, MaxLoops: 2, MaxTrip: 12,
		Arith: 5, MemOps: 3, CallFanout: 3, IndirectFrac: 0.25,
		DataKB: 96, WorkIters: 6, ByteOps: true,
	}
}

// ProfileByName finds a profile in the suite (including httpd).
func ProfileByName(name string) (Profile, bool) {
	for _, p := range append(Profiles(), HTTPD()) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the SPEC-like suite in paper order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Generate builds the benchmark module for p.
func Generate(p Profile) *prog.Module {
	g := &generator{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
		mb:  prog.NewModule(p.Name),
	}
	return g.run()
}

// Compile generates and compiles the benchmark in one step.
func Compile(p Profile) (*fatbin.Binary, error) {
	return compiler.Compile(Generate(p))
}

type generator struct {
	p   Profile
	rng *rand.Rand
	mb  *prog.ModuleBuilder

	arena    int // global data arena
	fnTable  int // global function-pointer table
	tableLen int
}

func (g *generator) run() *prog.Module {
	p := g.p
	g.arena = g.mb.Global("arena", uint32(p.DataKB)*1024, g.arenaInit())
	g.tableLen = p.Funcs / 4
	if g.tableLen < 2 {
		g.tableLen = 2
	}
	g.fnTable = g.mb.Global("fntable", uint32(4*g.tableLen), nil)

	names := make([]string, p.Funcs)
	for i := range names {
		names[i] = fmt.Sprintf("w%03d", i)
	}
	for i := range names {
		g.genWorker(names, i)
	}
	g.genLibcStubs()
	g.genMain(names)
	return g.mb.MustBuild()
}

// genLibcStubs emits the syscall wrappers every C program links: a write
// stub (used by main for progress) and an execve stub that is never called
// legitimately — the classic return-into-libc target, whose body also
// provides the `int 0x80`-bearing gadgets ROP chains end with.
func (g *generator) genLibcStubs() {
	wr := g.mb.Func("libc_write", 1)
	r := wr.Syscall(4, wr.Param(0))
	wr.Ret(r)

	ex := g.mb.Func("libc_execve", 3)
	r2 := ex.Syscall(11, ex.Param(0), ex.Param(1), ex.Param(2))
	ex.Ret(r2)
}

// arenaInit seeds the arena with deterministic pseudo-random words; for
// pointer-chasing profiles, the first words form a linked ring.
func (g *generator) arenaInit() []byte {
	n := g.p.DataKB * 1024
	b := make([]byte, n)
	r := rand.New(rand.NewSource(g.p.Seed ^ 0xda7a))
	for i := 0; i < n; i += 4 {
		v := uint32(r.Int63())
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
	}
	if g.p.PointerChase {
		// nodes of 8 bytes: {value, next-offset}; a shuffled ring over the
		// first quarter of the arena.
		nodes := n / 4 / 8
		order := r.Perm(nodes)
		for i := 0; i < nodes; i++ {
			cur := order[i]
			next := order[(i+1)%nodes]
			off := cur * 8
			addr := uint32(fatbin.DataBase) + uint32(next*8)
			b[off+4] = byte(addr)
			b[off+5] = byte(addr >> 8)
			b[off+6] = byte(addr >> 16)
			b[off+7] = byte(addr >> 24)
		}
	}
	return b
}

// juicyConst returns a random 32-bit constant. Real compiled code is full
// of addresses, masks, and magic numbers whose byte patterns include
// indirect-branch and return opcodes; drawing from the full 32-bit space
// reproduces that density.
func (g *generator) juicyConst() int32 {
	return int32(g.rng.Uint32())
}

// genWorker emits worker function i. Workers only call higher-numbered
// workers, keeping the call graph acyclic and termination trivial.
func (g *generator) genWorker(names []string, i int) {
	p := g.p
	fb := g.mb.Func(names[i], 1)
	x := fb.Param(0)
	acc := fb.Const(g.juicyConst())

	nLoops := 1 + g.rng.Intn(p.MaxLoops)
	for l := 0; l < nLoops; l++ {
		g.genLoop(fb, acc, x, l)
	}

	// Direct and indirect calls deeper into the suite. The call graph
	// stays acyclic: direct calls only go to higher indices, and the
	// function-pointer table (populated from the top half of the suite)
	// is only consulted by lower-half workers.
	for c := 0; c < p.CallFanout; c++ {
		lo := i + 1
		if lo >= len(names) {
			break
		}
		callee := lo + g.rng.Intn(len(names)-lo)
		if i < len(names)/2 && g.rng.Float64() < p.IndirectFrac {
			slot := g.rng.Intn(g.tableLen)
			base := fb.GlobalAddr(g.fnTable, int32(4*slot))
			fp := fb.Load(base, 0)
			r := fb.CallInd(fp, true, acc)
			fb.BinTo(acc, prog.BinXor, acc, r)
		} else if g.rng.Float64() < 0.55 {
			arg := fb.BinImm(prog.BinAnd, acc, 0xFFFF)
			r := fb.Call(names[callee], true, arg)
			fb.BinTo(acc, prog.BinAdd, acc, r)
		}
	}
	out := fb.Bin(prog.BinXor, acc, x)
	fb.Ret(out)
}

// genLoop emits one counted loop accumulating into acc.
func (g *generator) genLoop(fb *prog.FuncBuilder, acc, x prog.VReg, idx int) {
	p := g.p
	trip := int32(2 + g.rng.Intn(p.MaxTrip))
	j := fb.Const(0)
	entry := fb.CurBlock()
	head := fb.NewBlock()
	body := fb.NewBlock()
	exit := fb.NewBlock()
	fb.SetBlock(entry)
	fb.Jmp(head)
	fb.SetBlock(head)
	fb.BrImm(isa.CondLT, j, trip, body, exit)
	fb.SetBlock(body)
	cur := acc
	for a := 0; a < p.Arith; a++ {
		switch g.rng.Intn(7) {
		case 0:
			fb.BinTo(cur, prog.BinAdd, cur, j)
		case 1:
			fb.BinTo(cur, prog.BinXor, cur, x)
		case 2:
			fb.BinImmTo(cur, prog.BinMul, cur, int32(3+g.rng.Intn(13)))
		case 3:
			t := fb.BinImm(prog.BinShl, cur, int32(1+g.rng.Intn(7)))
			fb.BinTo(cur, prog.BinAdd, cur, t)
		case 4:
			t := fb.BinImm(prog.BinShr, cur, int32(1+g.rng.Intn(7)))
			fb.BinTo(cur, prog.BinXor, cur, t)
		case 5:
			d := fb.BinImm(prog.BinOr, j, 1) // non-zero divisor
			fb.BinTo(cur, prog.BinDiv, cur, d)
			fb.BinImmTo(cur, prog.BinAdd, cur, g.juicyConst())
		case 6:
			if p.ByteOps {
				fb.BinImmTo(cur, prog.BinAnd, cur, 0xFF)
				fb.BinImmTo(cur, prog.BinXor, cur, int32(g.rng.Intn(256)))
			} else {
				fb.BinImmTo(cur, prog.BinAdd, cur, g.juicyConst())
			}
		}
	}
	words := int32(p.DataKB * 256)
	for mo := 0; mo < p.MemOps; mo++ {
		idxv := fb.BinImm(prog.BinAnd, cur, (words-1)&^3|3)
		off := fb.BinImm(prog.BinMul, idxv, 4)
		base := fb.GlobalAddr(g.arena, 0)
		addr := fb.Bin(prog.BinAdd, base, off)
		if g.rng.Intn(3) == 0 {
			fb.Store(addr, 0, cur)
		} else {
			v := fb.Load(addr, 0)
			fb.BinTo(cur, prog.BinAdd, cur, v)
		}
	}
	if g.p.PointerChase && idx == 0 {
		// Walk a few links of the arena ring.
		ptr := fb.GlobalAddr(g.arena, 0)
		pv := fb.Copy(ptr)
		for s := 0; s < 4; s++ {
			v := fb.Load(pv, 0)
			fb.BinTo(cur, prog.BinXor, cur, v)
			fb.LoadTo(pv, pv, 4)
		}
	}
	fb.BinImmTo(j, prog.BinAdd, j, 1)
	fb.Jmp(head)
	fb.SetBlock(exit)
}

// genMain emits the driver: it fills the function-pointer table, runs the
// outer work loop calling into the suite, reports progress through
// SysWrite, and exits with a checksum.
func (g *generator) genMain(names []string) {
	p := g.p
	fb := g.mb.Func("main", 0)
	// Populate the indirect-dispatch table with a deterministic sample of
	// upper-half workers (keeps the indirect call graph acyclic).
	tbl := fb.GlobalAddr(g.fnTable, 0)
	half := len(names) / 2
	perm := g.rng.Perm(len(names) - half)
	picks := make([]int, g.tableLen)
	for s := range picks {
		picks[s] = half + perm[s%len(perm)]
	}
	sort.Ints(picks)
	for s := 0; s < g.tableLen; s++ {
		fp := fb.FuncAddr(names[picks[s]])
		fb.Store(tbl, int32(4*s), fp)
	}
	sum := fb.Const(0)
	it := fb.Const(0)
	entry := fb.CurBlock()
	head := fb.NewBlock()
	body := fb.NewBlock()
	exit := fb.NewBlock()
	fb.SetBlock(entry)
	fb.Jmp(head)
	fb.SetBlock(head)
	fb.BrImm(isa.CondLT, it, int32(p.WorkIters), body, exit)
	fb.SetBlock(body)
	// Call a few roots directly and one through the table.
	roots := 3
	if roots > len(names) {
		roots = len(names)
	}
	for r := 0; r < roots; r++ {
		root := g.rng.Intn(len(names) / 2)
		v := fb.Call(names[root], true, it)
		fb.BinTo(sum, prog.BinAdd, sum, v)
	}
	slot := g.rng.Intn(g.tableLen)
	base2 := fb.GlobalAddr(g.fnTable, int32(4*slot))
	fp := fb.Load(base2, 0)
	rv := fb.CallInd(fp, true, sum)
	fb.BinTo(sum, prog.BinXor, sum, rv)
	fb.Call("libc_write", false, sum) // progress trace
	fb.BinImmTo(it, prog.BinAdd, it, 1)
	fb.Jmp(head)
	fb.SetBlock(exit)
	lo := fb.BinImm(prog.BinAnd, sum, 0x7FFFFFFF)
	fb.Syscall(1, lo)
	fb.Ret(lo)
}
