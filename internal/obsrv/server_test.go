package obsrv_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hipstr/internal/obsrv"
	"hipstr/internal/telemetry"
)

func testOptions(tel *telemetry.Telemetry) obsrv.Options {
	return obsrv.Options{
		Snapshot: func() (telemetry.Snapshot, bool) { return tel.Snapshot(), true },
		Tracer:   tel.Trace,
	}
}

func TestEndpoints(t *testing.T) {
	tel := telemetry.New()
	tel.Reg.Counter("dbt.translations.x86").Add(42)
	tel.Reg.Gauge("perf.x86.cpi").Set(1.5)
	h, _ := obsrv.NewHandler(testOptions(tel))
	ts := httptest.NewServer(h)
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok\n") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "dbt_translations_x86 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE dbt_translations_x86 counter") {
		t.Errorf("/metrics missing TYPE line:\n%s", body)
	}
	code, body = get("/stats.json")
	if code != 200 || !strings.Contains(body, `"dbt.translations.x86": 42`) {
		t.Errorf("/stats.json = %d:\n%s", code, body)
	}
	if code, _ := get("/profile"); code != http.StatusNotFound {
		t.Errorf("/profile without profiler = %d, want 404", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := get("/nosuch"); code != http.StatusNotFound {
		t.Errorf("/nosuch = %d", code)
	}
}

// fakeTenants is a minimal TenantSource: two fixed guests, one with a
// private registry carrying a single counter.
type fakeTenants struct{ reg *telemetry.Registry }

func (f *fakeTenants) TenantList() []obsrv.TenantInfo {
	return []obsrv.TenantInfo{
		{ID: "1", Workload: "libquantum", State: "done",
			Fields: map[string]float64{"steps": 40000, "respawns": 1}},
		{ID: "2", Workload: "httpd", State: "running"},
	}
}

func (f *fakeTenants) TenantSnapshot(id string) (obsrv.TenantInfo, telemetry.Snapshot, bool) {
	if id != "1" {
		return obsrv.TenantInfo{}, telemetry.Snapshot{}, false
	}
	return f.TenantList()[0], f.reg.Snapshot(), true
}

func TestTenantEndpoints(t *testing.T) {
	tel := telemetry.New()
	src := &fakeTenants{reg: telemetry.NewRegistry()}
	src.reg.Counter("dbt.translations.x86").Add(7)
	opts := testOptions(tel)
	opts.Tenants = src
	h, _ := obsrv.NewHandler(opts)
	ts := httptest.NewServer(h)
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/tenants")
	if code != 200 {
		t.Fatalf("/tenants = %d", code)
	}
	if !strings.Contains(body, `"count": 2`) && !strings.Contains(body, `"count":2`) {
		t.Errorf("/tenants missing count:\n%s", body)
	}
	for _, want := range []string{`"libquantum"`, `"httpd"`, `"running"`, `"steps"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/tenants missing %s:\n%s", want, body)
		}
	}
	code, body = get("/tenants/1")
	if code != 200 {
		t.Fatalf("/tenants/1 = %d", code)
	}
	if !strings.Contains(body, `"dbt.translations.x86":7`) {
		t.Errorf("/tenants/1 missing private counter:\n%s", body)
	}
	if !strings.Contains(body, `"respawns"`) {
		t.Errorf("/tenants/1 missing tenant fields:\n%s", body)
	}
	if code, _ := get("/tenants/99"); code != http.StatusNotFound {
		t.Errorf("/tenants/99 = %d, want 404", code)
	}

	// Without a source the drill-down is absent, not empty.
	h2, _ := obsrv.NewHandler(testOptions(tel))
	ts2 := httptest.NewServer(h2)
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/tenants without source = %d, want 404", resp.StatusCode)
	}
}

func TestMetricsBeforeFirstPublish(t *testing.T) {
	var pump obsrv.Pump
	h, _ := obsrv.NewHandler(obsrv.Options{Snapshot: pump.Latest})
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish /metrics = %d, want 503", resp.StatusCode)
	}
	pump.Publish(telemetry.NewRegistry().Snapshot())
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-publish /metrics = %d", resp.StatusCode)
	}
}

// TestSSEDropOldest pins the never-block contract: a subscriber that is
// not drained absorbs unbounded emission by discarding its oldest events,
// and Drain reports the loss.
func TestSSEDropOldest(t *testing.T) {
	hub := obsrv.NewEventHub(4)
	sub := hub.Subscribe()
	defer hub.Unsubscribe(sub)
	for i := 1; i <= 10; i++ {
		hub.Emit(telemetry.Event{Seq: uint64(i), Type: telemetry.EvTranslate})
	}
	events, dropped := sub.Drain()
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d: seq %d, want %d (oldest must go first)", i, e.Seq, want)
		}
	}
	// Drained ring starts empty again.
	if events, dropped = sub.Drain(); len(events) != 0 || dropped != 0 {
		t.Errorf("second drain = %d events, %d dropped", len(events), dropped)
	}
}

// TestSSEStream runs a real SSE request end to end: ring backlog first,
// then live events, ordered by sequence number without duplicates.
func TestSSEStream(t *testing.T) {
	tel := telemetry.New()
	tel.Trace.Emit(telemetry.Event{Type: telemetry.EvTranslate, ISA: "x86", Addr: 0x1000})
	tel.Trace.Emit(telemetry.Event{Type: telemetry.EvRATMiss, ISA: "x86"})
	h, _ := obsrv.NewHandler(testOptions(tel))
	ts := httptest.NewServer(h)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// A live event emitted after connect must also arrive.
	tel.Trace.Emit(telemetry.Event{Type: telemetry.EvMigrateEnd, ISA: "arm", Cost: 9})

	sc := bufio.NewScanner(resp.Body)
	var ids []string
	for sc.Scan() && len(ids) < 3 {
		if strings.HasPrefix(sc.Text(), "id: ") {
			ids = append(ids, strings.TrimPrefix(sc.Text(), "id: "))
		}
	}
	if fmt.Sprint(ids) != "[1 2 3]" {
		t.Errorf("SSE ids = %v, want [1 2 3]", ids)
	}
}

// TestServerShutdown checks New/Serve/Shutdown round-trips and that an
// open SSE stream does not wedge graceful shutdown.
func TestServerShutdown(t *testing.T) {
	tel := telemetry.New()
	srv, err := obsrv.New("127.0.0.1:0", testOptions(tel))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Hold an SSE stream open across the shutdown.
	sseResp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != http.ErrServerClosed {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}
