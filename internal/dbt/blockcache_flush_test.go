package dbt_test

import (
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/isa"
	"hipstr/internal/migrate"
	"hipstr/internal/testprogs"
)

// TestFlushMidRunInvalidatesBlockCache forces code-cache flushes mid-run
// (2 KiB cache, many translation units) and verifies the interpreter's
// block cache drops its predecodes each time: stale decodes of evicted
// units must never execute, and the invalidation/hit counters must be
// visible through the telemetry registry.
func TestFlushMidRunInvalidatesBlockCache(t *testing.T) {
	mod := testprogs.CallChain(12)
	bin, err := compiler.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.CodeCacheSize = 2048
	cfg.MigrateProb = 0
	cfg.DualTranslate = false
	vm := runVM(t, bin, isa.X86, cfg)
	if vm.Stats.Flushes == 0 {
		t.Fatal("expected code cache flushes with a 2 KiB cache")
	}
	bs := vm.P.M.BlockStats()
	if bs.Invalidations == 0 {
		t.Fatal("code cache flushed but block cache never invalidated")
	}
	// With constant flush pressure nearly every dispatch re-decodes; the
	// cache may legitimately never hit here, but it must keep refilling.
	if bs.Misses == 0 {
		t.Fatalf("block cache saw no traffic: %+v", bs)
	}
	want := uint32(7 + 11*12/2)
	if vm.P.ExitCode != want {
		t.Fatalf("result corrupted across flushes: %d != %d", vm.P.ExitCode, want)
	}
	fs := vm.P.M.FusionStats()
	s := vm.Telemetry().Snapshot()
	for name, wantV := range map[string]uint64{
		"machine.blockcache.hits":                  bs.Hits,
		"machine.blockcache.misses":                bs.Misses,
		"machine.blockcache.invalidations":         bs.Invalidations,
		"machine.blockcache.invalidations.partial": bs.PartialInvalidations,
		"machine.blockcache.invalidations.full":    bs.FullInvalidations,
		"machine.blockcache.evicted":               bs.BlocksEvicted,
		"machine.fusion.pairs":                     fs.PairsFused,
		"machine.fusion.blocks.batched":            fs.BatchedBlocks,
		"machine.fusion.blocks.exact":              fs.ExactBlocks,
		"machine.fusion.commits":                   fs.Commits,
	} {
		if got, ok := s.Counters[name]; !ok || got != wantV {
			t.Errorf("registry %s = %d (present=%v), want %d", name, got, ok, wantV)
		}
	}
	if got := s.Gauges["machine.blockcache.hit_ratio"]; got != bs.HitRatio() {
		t.Errorf("registry hit_ratio = %v, want %v", got, bs.HitRatio())
	}
}

// TestFlushInvalidationsAreRanged reruns the flush-churn scenario and pins
// down the granularity: every code-cache flush reaches the block cache as a
// ranged (partial) invalidation scoped to the flushed cache's pages — never
// as a whole-address-space drop — and the legacy counter remains the sum of
// the split counters.
func TestFlushInvalidationsAreRanged(t *testing.T) {
	mod := testprogs.CallChain(12)
	bin, err := compiler.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.CodeCacheSize = 2048
	cfg.MigrateProb = 0
	cfg.DualTranslate = false
	vm := runVM(t, bin, isa.X86, cfg)
	if vm.Stats.Flushes == 0 {
		t.Fatal("expected code cache flushes with a 2 KiB cache")
	}
	bs := vm.P.M.BlockStats()
	if bs.PartialInvalidations == 0 {
		t.Fatalf("flush churn produced no partial invalidations: %+v", bs)
	}
	if bs.FullInvalidations != 0 {
		t.Fatalf("flushes fell back to whole-cache invalidation %d times: %+v",
			bs.FullInvalidations, bs)
	}
	if bs.Invalidations != bs.PartialInvalidations+bs.FullInvalidations {
		t.Fatalf("legacy invalidations %d != partial %d + full %d",
			bs.Invalidations, bs.PartialInvalidations, bs.FullInvalidations)
	}
	if bs.BlocksEvicted == 0 {
		t.Fatalf("flush churn evicted no blocks: %+v", bs)
	}
}

// TestCrossISAChurnStaysPartial runs with dual translation and forced
// migration on every security event, so both ISAs' code caches see commits
// and flushes, and verifies the invalidation traffic never widens to a
// whole-cache drop while execution stays correct.
func TestCrossISAChurnStaysPartial(t *testing.T) {
	mod := testprogs.CallChain(12)
	bin, err := compiler.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.CodeCacheSize = 4096
	cfg.RATSize = 4 // force RAT misses -> security events -> migrations
	cfg.MigrateProb = 1
	cfg.DualTranslate = true
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm.Migrator = migrate.New()
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if !vm.P.Exited {
		t.Fatal("program did not exit")
	}
	if vm.Stats.Migrations == 0 {
		t.Skip("no migrations occurred; cross-ISA churn not exercised")
	}
	bs := vm.P.M.BlockStats()
	if bs.FullInvalidations != 0 {
		t.Fatalf("cross-ISA churn triggered %d whole-cache invalidations: %+v",
			bs.FullInvalidations, bs)
	}
	want := uint32(7 + 11*12/2)
	if vm.P.ExitCode != want {
		t.Fatalf("result corrupted across cross-ISA churn: %d != %d", vm.P.ExitCode, want)
	}
}
