// Package hipstr is a full reproduction of "HIPStR: Heterogeneous-ISA
// Program State Relocation" (Venkat, Shamasunder, Tullsen, Shacham —
// ASPLOS 2016): a security defense that thwarts return-oriented
// programming by combining run-time randomization of program state
// (registers and stack objects) with non-deterministic execution migration
// between the two ISAs of a heterogeneous chip multiprocessor.
//
// The package is the public facade over the complete system:
//
//   - a multi-ISA compiler producing fat binaries with a common stack
//     frame organization and an extended symbol table,
//   - two synthetic ISAs (a byte-dense x86-like and a strict, aligned
//     ARM-like) with encoders, decoders, and interpreters,
//   - the PSR virtual machines: dynamic binary translators that randomize
//     calling conventions, register allocation, and stack slot coloring
//     per function, police every indirect control transfer, and model the
//     hardware Return Address Table,
//   - PSR-aware cross-ISA migration with full stack transformation,
//   - the attack suite (return-into-libc, ROP chains, Algorithm 1 brute
//     force, JIT-ROP, tailored diversification bypass, Blind-ROP) and the
//     Galileo gadget miner,
//   - the cycle-approximate timing model of the paper's Table 1 cores,
//   - and the benchmark generator plus experiment drivers regenerating
//     every table and figure of the paper's evaluation.
//
// Quick start:
//
//	bin, _ := hipstr.CompileWorkload("libquantum")
//	sys, _ := hipstr.Protect(bin, hipstr.Defaults())
//	sys.Run(1_000_000)
package hipstr

import (
	"context"
	"fmt"
	"io"

	"hipstr/internal/attack"
	"hipstr/internal/compiler"
	"hipstr/internal/core"
	"hipstr/internal/dbt"
	"hipstr/internal/experiments"
	"hipstr/internal/fatbin"
	"hipstr/internal/fleet"
	"hipstr/internal/gadget"
	"hipstr/internal/isa"
	"hipstr/internal/migrate"
	"hipstr/internal/obsrv"
	"hipstr/internal/perf"
	"hipstr/internal/proc"
	"hipstr/internal/profiler"
	"hipstr/internal/prog"
	"hipstr/internal/psr"
	"hipstr/internal/telemetry"
	"hipstr/internal/workload"
)

// ISA identifies one of the CMP's instruction sets.
type ISA = isa.Kind

// The two ISAs of the heterogeneous CMP.
const (
	X86 = isa.X86
	ARM = isa.ARM
)

// Binary is a compiled multi-ISA fat binary.
type Binary = fatbin.Binary

// Module is an architecture-neutral program (the compiler's input); build
// one with NewProgram.
type Module = prog.Module

// ProgramBuilder constructs Modules.
type ProgramBuilder = prog.ModuleBuilder

// NewProgram starts an empty program.
func NewProgram(name string) *ProgramBuilder { return prog.NewModule(name) }

// BinOp is an IR arithmetic operator.
type BinOp = prog.BinOp

// IR operators.
const (
	Add = prog.BinAdd
	Sub = prog.BinSub
	Mul = prog.BinMul
	Div = prog.BinDiv
	And = prog.BinAnd
	Or  = prog.BinOr
	Xor = prog.BinXor
	Shl = prog.BinShl
	Shr = prog.BinShr
)

// Cond is an IR branch condition.
type Cond = isa.Cond

// Branch conditions.
const (
	EQ = isa.CondEQ
	NE = isa.CondNE
	LT = isa.CondLT
	GE = isa.CondGE
	GT = isa.CondGT
	LE = isa.CondLE
)

// Compile lowers a program to both ISAs.
func Compile(m *Module) (*Binary, error) { return compiler.Compile(m) }

// Workloads lists the benchmark suite (the paper's eight SPEC-like
// programs; "httpd" is additionally available).
func Workloads() []string { return workload.Names() }

// CompileWorkload generates and compiles a named benchmark.
func CompileWorkload(name string) (*Binary, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("hipstr: unknown workload %q (have %v)", name, workload.Names())
	}
	return workload.Compile(p)
}

// Config configures a protected process.
type Config = core.Config

// Mode selects the defense layers.
type Mode = core.Mode

// Defense modes.
const (
	ModePSR    = core.ModePSR
	ModeHIPStR = core.ModeHIPStR
)

// Defaults returns the paper's main configuration: PSR at -O3 with 8 KiB
// randomization space, 2 MiB code caches, a 512-entry RAT, and migration
// probability 1 on security events.
func Defaults() Config { return core.DefaultConfig() }

// System is a process protected by HIPStR.
type System = core.System

// Protect boots bin under the configured defense.
func Protect(bin *Binary, cfg Config) (*System, error) { return core.New(bin, cfg) }

// SystemSnapshot is a frozen copy-on-write image of a protected process:
// memory, registers, translated code, and PSR layout lineage. Snapshot a
// booted prototype once, then materialize guests from it with Fork (warm
// spawn: same translations, O(dirty pages)) or Respawn (kill+respawn with
// a fresh PSR seed — the paper's §5.3 breach response made cheap).
//
//	proto, _ := hipstr.Protect(bin, hipstr.Defaults())
//	snap := proto.Snapshot()
//	guest, _ := snap.Fork(hipstr.ForkConfig{})          // warm spawn
//	fresh, _ := snap.Respawn(newSeed, hipstr.ForkConfig{}) // re-randomized
type SystemSnapshot = core.Snapshot

// ForkConfig parameterizes one fork of a SystemSnapshot (per-fork
// telemetry; nil means a private instance).
type ForkConfig = dbt.ForkConfig

// SharedUnitCacheStats reports the process-wide content-addressed
// translation cache: how many translations were served from (hits) or
// published into (installs) the shared cache, and the code bytes whose
// re-translation hits avoided.
type SharedUnitCacheStats = dbt.UnitCacheStats

// SharedUnitCache returns stats for the process-wide shared translation
// cache that every VM consults by default (dbt.Config.NoSharedUnits opts
// a VM out; dbt.Config.SharedUnits injects a private cache).
func SharedUnitCache() SharedUnitCacheStats { return dbt.SharedUnits.Stats() }

// Telemetry is the unified observability unit every System carries: a
// hierarchical metrics registry (counters, gauges, log-bucketed
// histograms) plus a structured event tracer with pluggable sinks.
// Access it through System.Telemetry(), or create one with NewTelemetry
// and inject it via Config.DBT.Telemetry to share a registry across
// subsystems or attach trace sinks before boot.
type Telemetry = telemetry.Telemetry

// MetricsSnapshot is a point-in-time copy of every metric, with delta
// semantics and JSON export.
type MetricsSnapshot = telemetry.Snapshot

// TraceEvent is one structured runtime event (translation, cache flush,
// RAT miss, security event, policy decision, migration begin/end, ...).
type TraceEvent = telemetry.Event

// TraceSink receives every trace event as it is emitted.
type TraceSink = telemetry.Sink

// Span is one in-flight trace span; the zero Span is valid and inert, so
// instrumentation sites need no enabled/disabled branches.
type Span = telemetry.Span

// SpanEvent is one completed span record, carrying wall-clock and
// guest-cycle durations plus the modeled cost attributed to the span.
type SpanEvent = telemetry.SpanEvent

// SpanTracer records completed spans into a bounded ring with sink
// fan-out; enable one on a Telemetry via its EnableSpans method.
type SpanTracer = telemetry.SpanTracer

// WriteChromeTrace writes spans (plus optional point events) as Chrome
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []SpanEvent, events []TraceEvent) error {
	return telemetry.WriteChromeTrace(w, spans, events)
}

// NewTelemetry returns a fresh metrics registry + event tracer pair.
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewSpanJSONLSink returns a span sink writing one JSON object per
// completed span to w; the "kind":"span" field keeps span lines
// distinguishable from point events sharing the stream.
func NewSpanJSONLSink(w io.Writer) *telemetry.SpanJSONLSink { return telemetry.NewSpanJSONLSink(w) }

// NewJSONLTraceSink returns a sink writing one JSON object per event to w;
// attach it with tel.Trace.AddSink.
func NewJSONLTraceSink(w io.Writer) *telemetry.JSONLSink { return telemetry.NewJSONLSink(w) }

// Profiler is the guest-cycle sampling profiler: it attributes simulated
// cycles to guest basic blocks and functions (symbolized via the fat
// binary's extended symbol table), including cycles spent in PSR code
// caches, and exports hot-block tables and folded flamegraph stacks.
type Profiler = profiler.Profiler

// ProfileReport is a point-in-time profile summary.
type ProfileReport = profiler.Report

// NewProfiler returns a profiler symbolizing against bin, sampling every
// interval guest instructions (0 selects the default period). Wire it
// with Attach (machine hook), BindModel (timing-model cycles), and
// SetResolver (code-cache PC mapping, e.g. dbt.VM.ResolvePC).
func NewProfiler(bin *Binary, interval uint64) *Profiler { return profiler.New(bin, interval) }

// ObservabilityOptions configures the embedded observability server's
// endpoints (/metrics, /stats.json, /events, /profile, /healthz,
// /debug/pprof/).
type ObservabilityOptions = obsrv.Options

// ObservabilityServer serves live telemetry over HTTP while a simulation
// runs.
type ObservabilityServer = obsrv.Server

// TelemetryPump hands snapshots from the goroutine driving the VM to the
// observability server's scrape handlers (Snapshot is only safe on the VM
// goroutine; Pump.Latest is safe anywhere).
type TelemetryPump = obsrv.Pump

// NewObservabilityServer listens on addr and serves the configured
// observability endpoints (call Serve to start, Shutdown to stop).
func NewObservabilityServer(addr string, o ObservabilityOptions) (*ObservabilityServer, error) {
	return obsrv.New(addr, o)
}

// Fleet is a multi-tenant host: it admits guest VMs forked from
// per-workload prototype snapshots (warm admission) and executes them on
// a bounded work-stealing worker pool under per-tenant policy (step and
// cache quotas, migration probability, kill/respawn under attack).
//
//	h := hipstr.NewFleet(hipstr.FleetDefaults())
//	h.AddWorkload("libquantum")
//	h.Start(ctx)
//	id, _ := h.Admit("libquantum")
//	h.Close()
//	h.Wait()
type Fleet = fleet.Host

// FleetConfig configures a Fleet (worker count, defense mode, seed,
// default tenant policy, warm vs cold admission).
type FleetConfig = fleet.Config

// FleetPolicy is the per-tenant resource and defense policy.
type FleetPolicy = fleet.Policy

// FleetAggregates is a point-in-time summary of fleet progress.
type FleetAggregates = fleet.Aggregates

// FleetTenant is one admitted guest's handle (state, digest, steps,
// latency).
type FleetTenant = fleet.Tenant

// FleetDefaults returns the default fleet configuration: GOMAXPROCS
// workers, HIPStR mode, warm admission, and the default tenant policy.
func FleetDefaults() FleetConfig { return fleet.DefaultConfig() }

// NewFleet creates a fleet host; call AddWorkload for each profile
// tenants will run, then Start before Admit.
func NewFleet(cfg FleetConfig) *Fleet { return fleet.NewHost(cfg) }

// Arrivals is a seeded open-loop Poisson arrival generator for fleet
// traffic (deterministic per seed).
type Arrivals = workload.Arrivals

// NewArrivals returns an arrival generator targeting ratePerSec
// admissions per second (rate <= 0 means back-to-back, zero gaps).
func NewArrivals(seed int64, ratePerSec float64) *Arrivals {
	return workload.NewArrivals(seed, ratePerSec)
}

// Process is an unprotected native process (the baseline).
type Process = proc.Process

// RunNative boots bin for native execution on ISA k.
func RunNative(bin *Binary, k ISA) (*Process, error) { return proc.New(bin, k) }

// Gadget is a code-reuse gadget; Effect its concrete behavior.
type Gadget = gadget.Gadget

// Effect captures a gadget's attacker-visible behavior.
type Effect = gadget.Effect

// MineGadgets runs the Galileo miner over bin's ISA-k text section.
func MineGadgets(bin *Binary, k ISA) []Gadget { return gadget.Mine(bin, k, 0) }

// GadgetEffect concretely executes a gadget against an attacker stack.
func GadgetEffect(bin *Binary, g *Gadget) Effect {
	return gadget.NewAnalyzer(bin).NativeEffect(g)
}

// Victim is a program with a stack-overflow vulnerability, for attack
// demonstrations.
type Victim = attack.Victim

// AttackOutcome classifies attack attempts.
type AttackOutcome = attack.Outcome

// Attack outcomes.
const (
	OutcomeShell    = attack.OutcomeShell
	OutcomeCrash    = attack.OutcomeCrash
	OutcomeKilled   = attack.OutcomeKilled
	OutcomeNoEffect = attack.OutcomeNoEffect
)

// NewVictim compiles a vulnerable program with the given amount of
// gadget-rich library code.
func NewVictim(workers int) (*Victim, error) { return attack.BuildVictim(workers) }

// BruteForceResult is a Table 2 row.
type BruteForceResult = attack.BruteForceResult

// SimulateBruteForce runs the paper's Algorithm 1 against bin.
func SimulateBruteForce(bin *Binary, seed int64) BruteForceResult {
	return attack.SimulateBruteForce(bin, psr.DefaultConfig(), seed)
}

// MigrationSafety is the Figure 6 analysis.
type MigrationSafety = migrate.SafetyReport

// AnalyzeMigrationSafety classifies every basic block by migration safety.
func AnalyzeMigrationSafety(bin *Binary) MigrationSafety {
	return migrate.AnalyzeSafety(bin, migrate.DefaultPolicy())
}

// Measurement is a work-normalized timing result.
type Measurement = perf.Measurement

// MeasurePSR runs bin under a PSR virtual machine and measures the work
// window between progress markers warm and warm+measure.
func MeasurePSR(bin *Binary, k ISA, warm, measure int) (Measurement, error) {
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	m, _, err := perf.MeasureVM(bin, k, cfg, warm, measure)
	return m, err
}

// MeasureNative measures native execution over the same window.
func MeasureNative(bin *Binary, k ISA, warm, measure int) (Measurement, error) {
	return perf.MeasureNative(bin, k, warm, measure)
}

// ExperimentSuite regenerates the paper's tables and figures. Set
// Parallel to bound the per-driver worker pool (0 = GOMAXPROCS, 1 =
// serial) and Telemetry to export every figure's raw series as metrics.
type ExperimentSuite = experiments.Suite

// NewExperiments returns the full-suite experiment driver writing
// human-readable tables to w.
func NewExperiments(w io.Writer) *ExperimentSuite { return experiments.NewSuite(w) }

// NewQuickExperiments returns a reduced suite for fast runs.
func NewQuickExperiments(w io.Writer) *ExperimentSuite { return experiments.QuickSuite(w) }

// Experiment is one registered evaluation driver: named, self-describing,
// and runnable by the experiment engine.
type Experiment = experiments.Experiment

// ExperimentResult is one driver's structured rows plus run metadata — the
// schema of the per-experiment JSON result artifacts.
type ExperimentResult = experiments.Result

// ExperimentOptions configures an engine run (result artifact directory,
// error policy).
type ExperimentOptions = experiments.Options

// Experiments returns every registered experiment in evaluation order.
func Experiments() []Experiment { return experiments.All() }

// SelectExperiments resolves a comma-separated experiment name list; an
// empty string selects the full evaluation.
func SelectExperiments(names string) ([]Experiment, error) { return experiments.Select(names) }

// RunExperiments executes exps against s on the experiment engine:
// per-driver sweeps fan out on s.Parallel workers with deterministic
// output, rows are published into s.Telemetry, and each experiment can
// write a JSON result artifact. Cancel ctx to stop mid-sweep.
func RunExperiments(ctx context.Context, s *ExperimentSuite, exps []Experiment, opts ExperimentOptions) ([]ExperimentResult, error) {
	return experiments.Run(ctx, s, exps, opts)
}
