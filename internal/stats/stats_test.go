package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty inputs should give 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("mean wrong")
	}
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean %f", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("non-positive input should give 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.137) != "13.7%" {
		t.Fatalf("Pct: %s", Pct(0.137))
	}
	if Sci(1234567) != "1.23e+06" {
		t.Fatalf("Sci: %s", Sci(1234567))
	}
}

func TestGeoMeanLEMeanQuick(t *testing.T) {
	// AM-GM inequality as a property.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
