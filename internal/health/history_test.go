package health

import (
	"math"
	"testing"
	"time"

	"hipstr/internal/telemetry"
)

// snap builds a snapshot with the given counters and gauges, the two
// flattened-series forms the history tests exercise.
func snap(counters map[string]uint64, gauges map[string]float64) telemetry.Snapshot {
	return telemetry.Snapshot{Counters: counters, Gauges: gauges}
}

func appendCounter(h *History, tsNS int64, name string, v uint64) {
	h.Append(tsNS, snap(map[string]uint64{name: v}, nil))
}

func TestHistoryEmpty(t *testing.T) {
	h := NewHistory(8, 16)
	if h.Len() != 0 || h.Total() != 0 {
		t.Fatalf("empty history: Len=%d Total=%d", h.Len(), h.Total())
	}
	if pts := h.Series("nope"); pts != nil {
		t.Fatalf("unknown series: got %v, want nil", pts)
	}
	if _, ok := h.Latest("nope"); ok {
		t.Fatal("Latest on empty history reported ok")
	}
	if _, ok := h.Rate("nope", time.Second, 0); ok {
		t.Fatal("Rate on empty history reported ok")
	}
	if _, ok := h.Deriv("nope", time.Second, 0); ok {
		t.Fatal("Deriv on empty history reported ok")
	}
	if frac, n := h.BurnFraction("nope", time.Second, 0, OpAbove, 1); frac != 0 || n != 0 {
		t.Fatalf("BurnFraction on empty history: %v, %d", frac, n)
	}
	q := h.Query(nil, 0)
	if q.Samples != 0 || len(q.Names) != 0 || len(q.Series) != 0 {
		t.Fatalf("Query on empty history: %+v", q)
	}
}

func TestHistoryRingBounded(t *testing.T) {
	const cap = 8
	h := NewHistory(cap, 16)
	for i := 0; i < 3*cap; i++ {
		appendCounter(h, int64(i)*1e9, "c", uint64(i))
	}
	if h.Len() != cap {
		t.Fatalf("Len=%d, want capacity %d", h.Len(), cap)
	}
	if h.Total() != 3*cap {
		t.Fatalf("Total=%d, want %d", h.Total(), 3*cap)
	}
	pts := h.Series("c")
	if len(pts) != cap {
		t.Fatalf("retained %d points, want %d", len(pts), cap)
	}
	// Oldest-first, and only the newest capacity samples survive.
	for i, p := range pts {
		want := float64(3*cap - cap + i)
		if p.Value != want {
			t.Fatalf("pts[%d]=%v, want %v", i, p.Value, want)
		}
	}
	last, ok := h.Latest("c")
	if !ok || last.Value != float64(3*cap-1) {
		t.Fatalf("Latest=%v ok=%v", last, ok)
	}
}

func TestHistoryMaxSeriesBound(t *testing.T) {
	h := NewHistory(4, 2)
	h.Append(0, snap(map[string]uint64{"a": 1, "b": 2, "c": 3, "d": 4}, nil))
	if got := len(h.Names()); got != 2 {
		t.Fatalf("kept %d series, want 2", got)
	}
	if h.DroppedSeries() != 2 {
		t.Fatalf("DroppedSeries=%d, want 2", h.DroppedSeries())
	}
}

func TestHistoryRateCounterReset(t *testing.T) {
	h := NewHistory(16, 8)
	// 0s: 100, 1s: 200 (+100), 2s: 30 after a reset (counts as +30), 3s: 50 (+20).
	for i, v := range []uint64{100, 200, 30, 50} {
		appendCounter(h, int64(i)*1e9, "c", v)
	}
	rate, ok := h.Rate("c", 10*time.Second, 3e9)
	if !ok {
		t.Fatal("Rate not ok")
	}
	want := (100.0 + 30.0 + 20.0) / 3.0
	if math.Abs(rate-want) > 1e-9 {
		t.Fatalf("rate=%v, want %v", rate, want)
	}
}

func TestHistoryRateNeedsTwoSamples(t *testing.T) {
	h := NewHistory(16, 8)
	appendCounter(h, 0, "c", 5)
	if _, ok := h.Rate("c", time.Second, 0); ok {
		t.Fatal("Rate with one sample reported ok")
	}
}

func TestHistoryDerivSigned(t *testing.T) {
	h := NewHistory(16, 8)
	// A gauge that rises then falls: deriv over the full window is negative.
	for i, v := range []float64{100, 80, 60, 40} {
		h.Append(int64(i)*1e9, snap(nil, map[string]float64{"g": v}))
	}
	d, ok := h.Deriv("g", 10*time.Second, 3e9)
	if !ok || math.Abs(d-(-20)) > 1e-9 {
		t.Fatalf("deriv=%v ok=%v, want -20", d, ok)
	}
}

func TestHistoryBurnFraction(t *testing.T) {
	h := NewHistory(16, 8)
	for i, v := range []float64{1, 5, 5, 1} { // half the samples above 2
		h.Append(int64(i)*1e9, snap(nil, map[string]float64{"g": v}))
	}
	frac, n := h.BurnFraction("g", 10*time.Second, 3e9, OpAbove, 2)
	if n != 4 || math.Abs(frac-0.5) > 1e-9 {
		t.Fatalf("burn=%v over %d samples, want 0.5 over 4", frac, n)
	}
}

func TestHistorySparseSeriesSkipsAbsentSamples(t *testing.T) {
	h := NewHistory(16, 8)
	appendCounter(h, 0, "a", 1)
	appendCounter(h, 1e9, "b", 2) // "a" absent: NaN in this row
	appendCounter(h, 2e9, "a", 3)
	pts := h.Series("a")
	if len(pts) != 2 || pts[0].Value != 1 || pts[1].Value != 3 {
		t.Fatalf("sparse series: %v", pts)
	}
}

func TestHistoryQuery(t *testing.T) {
	h := NewHistory(16, 8)
	for i := 0; i < 6; i++ {
		appendCounter(h, int64(i)*1e9, "c", uint64(i))
	}
	q := h.Query([]string{"c", "missing"}, 3)
	if q.Samples != 6 || len(q.Series) != 2 {
		t.Fatalf("query: %+v", q)
	}
	if got := q.Series[0].Points; len(got) != 3 || got[0].Value != 3 {
		t.Fatalf("maxPoints window: %v", got)
	}
	if len(q.Series[1].Points) != 0 {
		t.Fatalf("missing series should have no points: %v", q.Series[1].Points)
	}
	// No names selected -> index form.
	idx := h.Query(nil, 0)
	if len(idx.Names) != 1 || idx.Names[0] != "c" {
		t.Fatalf("index: %+v", idx)
	}
}

func TestHistoryHistogramFlattening(t *testing.T) {
	tel := telemetry.New()
	hist := tel.Histogram("lat")
	for i := 0; i < 100; i++ {
		hist.Observe(float64(i + 1))
	}
	h := NewHistory(4, 16)
	h.Append(1e9, tel.Snapshot())
	for _, name := range []string{"lat.count", "lat.sum", "lat.p50", "lat.p99"} {
		if _, ok := h.Latest(name); !ok {
			t.Fatalf("missing flattened series %s (have %v)", name, h.Names())
		}
	}
	if p, _ := h.Latest("lat.count"); p.Value != 100 {
		t.Fatalf("lat.count=%v, want 100", p.Value)
	}
}
