package perf

import (
	"fmt"

	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/proc"
	"hipstr/internal/telemetry"
)

// Measurement is a work-normalized timing result: cycles spent between two
// progress boundaries of the workload (the SysWrite markers every
// benchmark's outer loop emits). Comparing measurements of the same
// boundaries under different execution modes yields relative performance
// independent of how many machine instructions each mode needed.
type Measurement struct {
	Core    string
	Cycles  float64
	Instrs  uint64
	CPI     float64
	Seconds float64
	Counts  Counts
}

const measureChunk = 500_000
const measureCap = 400_000_000

// MeasureNative runs bin natively on ISA k, warming through warmWrites
// progress markers and measuring through the next measureWrites.
func MeasureNative(bin *fatbin.Binary, k isa.Kind, warmWrites, measureWrites int) (Measurement, error) {
	p, err := proc.New(bin, k)
	if err != nil {
		return Measurement{}, err
	}
	model := NewModel(CoreFor(k))
	model.Attach(p.M)
	return measure(p, model, warmWrites, measureWrites)
}

// MeasureVM runs bin under a PSR virtual machine on ISA k with the given
// configuration and measures the same work window.
func MeasureVM(bin *fatbin.Binary, k isa.Kind, cfg dbt.Config, warmWrites, measureWrites int) (Measurement, *dbt.VM, error) {
	vm, err := dbt.New(bin, k, cfg)
	if err != nil {
		return Measurement{}, nil, err
	}
	model := NewModel(CoreFor(k))
	model.RATEnabled = true
	model.BindTelemetry(vm.Telemetry())
	model.Attach(vm.P.M)
	m, err := measure(vm.P, model, warmWrites, measureWrites)
	return m, vm, err
}

// MeasureVMWith measures an already-constructed VM (e.g. with a migration
// engine installed).
func MeasureVMWith(vm *dbt.VM, warmWrites, measureWrites int) (Measurement, error) {
	model := NewModel(CoreFor(vm.Active()))
	model.RATEnabled = true
	model.BindTelemetry(vm.Telemetry())
	model.Attach(vm.P.M)
	return measure(vm.P, model, warmWrites, measureWrites)
}

// MeasureVMStats is MeasureVM plus the VM event-counter delta across the
// measured window only (warmup events — compulsory translation — are
// excluded), for steady-state security-event rates.
func MeasureVMStats(bin *fatbin.Binary, k isa.Kind, cfg dbt.Config, warmWrites, measureWrites int) (Measurement, dbt.Stats, *dbt.VM, error) {
	vm, err := dbt.New(bin, k, cfg)
	if err != nil {
		return Measurement{}, dbt.Stats{}, nil, err
	}
	model := NewModel(CoreFor(k))
	model.RATEnabled = true
	model.Attach(vm.P.M)
	var atWarm dbt.Stats
	orig := vm.P.M.Syscall
	p := vm.P
	vm.P.M.Syscall = func(m *machine.Machine, vec int32) error {
		before := len(p.Trace)
		if err := orig(m, vec); err != nil {
			return err
		}
		if len(p.Trace) != before && len(p.Trace) == warmWrites {
			atWarm = vm.Stats
		}
		return nil
	}
	meas, err := measure(p, model, warmWrites, measureWrites)
	if err != nil {
		return Measurement{}, dbt.Stats{}, vm, err
	}
	delta := vm.Stats
	delta.CodeCacheMisses -= atWarm.CodeCacheMisses
	delta.SecurityEvents -= atWarm.SecurityEvents
	delta.ReturnMisses -= atWarm.ReturnMisses
	delta.CompulsoryMisses -= atWarm.CompulsoryMisses
	delta.Flushes -= atWarm.Flushes
	return meas, delta, vm, nil
}

// measure snapshots the model exactly at the progress-write boundaries by
// interposing on the syscall handler, so overshooting a boundary inside a
// run chunk cannot blur the window.
func measure(p *proc.Process, model *Model, warmWrites, measureWrites int) (Measurement, error) {
	snaps := make(map[int]Snapshot)
	counts := make(map[int]Counts)
	var phaseStart float64
	orig := p.M.Syscall
	p.M.Syscall = func(m *machine.Machine, vec int32) error {
		before := len(p.Trace)
		if err := orig(m, vec); err != nil {
			return err
		}
		if len(p.Trace) != before {
			snaps[len(p.Trace)] = model.Snap()
			counts[len(p.Trace)] = model.Counts
			// Per-phase cycle accounting: each progress write closes one
			// workload phase.
			if model.tel != nil {
				cyc := model.Cycles - phaseStart
				model.histPhase.Observe(cyc)
				model.tel.Emit(telemetry.Event{
					Type: telemetry.EvPhase, ISA: model.Core.Name, Cost: cyc,
					Detail: fmt.Sprintf("write %d", len(p.Trace)),
				})
			}
			phaseStart = model.Cycles
		}
		return nil
	}
	target := warmWrites + measureWrites
	var total uint64
	for len(p.Trace) < target {
		if p.Exited {
			return Measurement{}, fmt.Errorf("perf: program exited after %d writes (want %d)", len(p.Trace), target)
		}
		ran, err := p.Run(measureChunk)
		if err != nil {
			return Measurement{}, err
		}
		total += ran
		if total > measureCap {
			return Measurement{}, fmt.Errorf("perf: exceeded %d instructions waiting for %d writes", measureCap, target)
		}
	}
	start, ok1 := snaps[warmWrites]
	end, ok2 := snaps[target]
	if !ok1 || !ok2 {
		return Measurement{}, fmt.Errorf("perf: missing boundary snapshots (%v/%v)", ok1, ok2)
	}
	cyc := end.Cycles - start.Cycles
	ins := end.Instrs - start.Instrs
	m := Measurement{
		Core:    model.Core.Name,
		Cycles:  cyc,
		Instrs:  ins,
		Seconds: cyc / (model.Core.FreqGHz * 1e9),
		Counts:  diffCounts(counts[target], counts[warmWrites]),
	}
	if ins > 0 {
		m.CPI = cyc / float64(ins)
	}
	return m, nil
}

func diffCounts(a, b Counts) Counts {
	return Counts{
		Instrs:   a.Instrs - b.Instrs,
		Loads:    a.Loads - b.Loads,
		Stores:   a.Stores - b.Stores,
		Branches: a.Branches - b.Branches,
		Calls:    a.Calls - b.Calls,
		Returns:  a.Returns - b.Returns,
		MulDiv:   a.MulDiv - b.MulDiv,
	}
}

// Relative returns the performance of measured relative to baseline (1.0 =
// parity, lower = slower), comparing cycles for the same work window.
func Relative(baseline, measured Measurement) float64 {
	if measured.Cycles == 0 {
		return 0
	}
	return baseline.Cycles / measured.Cycles
}
