package machine

import (
	"testing"

	"hipstr/internal/isa"
)

func TestByteOpsTouchOnlyLowByte(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EBX), Src: isa.I(0x11223344)})
		a.Emit(isa.Inst{Op: isa.OpMov, ByteOp: true, Dst: isa.R(isa.EBX), Src: isa.I(0x7F)})
		a.Emit(isa.Inst{Op: isa.OpAdd, ByteOp: true, Dst: isa.R(isa.EBX), Src: isa.I(1)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	mustRun(t, m)
	if m.Regs[isa.EBX] != 0x11223380 {
		t.Fatalf("ebx = %#x, want upper bytes preserved and low byte 0x80", m.Regs[isa.EBX])
	}
}

func TestByteMemoryAccess(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(isa.ESP, 8), Src: isa.I(0x11223344)})
		// Write only the low byte through memory, then read a single byte
		// back into a register whose upper bits must survive.
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.ECX), Src: isa.I(0x55)})
		a.Emit(isa.Inst{Op: isa.OpMov, ByteOp: true, Dst: isa.MB(isa.ESP, 8), Src: isa.R(isa.ECX)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.MB(isa.ESP, 8)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EDX), Src: isa.I(0xAABBCC00 - 1<<31)})
		a.Emit(isa.Inst{Op: isa.OpMov, ByteOp: true, Dst: isa.R(isa.EDX), Src: isa.MB(isa.ESP, 9)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	mustRun(t, m)
	if m.Regs[isa.EAX] != 0x11223355 {
		t.Fatalf("eax = %#x", m.Regs[isa.EAX])
	}
	if m.Regs[isa.EDX]&0xFF != 0x33 {
		t.Fatalf("edx low byte = %#x, want 0x33", m.Regs[isa.EDX]&0xFF)
	}
}

func TestByteCmpSetsFlags(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(0x1FF41)})
		a.Emit(isa.Inst{Op: isa.OpCmp, ByteOp: true, Dst: isa.R(isa.EAX), Src: isa.I(0x41)})
		a.Jcc(isa.CondEQ, "eq")
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EBX), Src: isa.I(0)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
		a.Label("eq")
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EBX), Src: isa.I(1)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	mustRun(t, m)
	if m.Regs[isa.EBX] != 1 {
		t.Fatal("byte compare ignored upper bits incorrectly")
	}
}

func TestRetImmFreesStack(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpPush, Src: isa.I(0x1111)}) // callee arg
		a.Call("fn")
		a.Emit(isa.Inst{Op: isa.OpHlt})
		a.Label("fn")
		a.Emit(isa.Inst{Op: isa.OpRet, Imm: 4}) // pop ret, free the arg
	})
	sp0 := m.SP()
	mustRun(t, m)
	if m.SP() != sp0 {
		t.Fatalf("ret imm16 left stack imbalanced: %#x vs %#x", m.SP(), sp0)
	}
}
