package isa

import "testing"

func TestByteOpRoundTrip(t *testing.T) {
	samples := []Inst{
		{Op: OpMov, ByteOp: true, Dst: R(EBX), Src: I(0x7F)},
		{Op: OpMov, ByteOp: true, Dst: R(EAX), Src: MB(ESP, 0x10)},
		{Op: OpMov, ByteOp: true, Dst: MB(ESP, 0x10), Src: R(ECX)},
		{Op: OpAdd, ByteOp: true, Dst: R(EAX), Src: I(3)},
		{Op: OpOr, ByteOp: true, Dst: MB(ESP, 0x80C), Src: R(EAX)}, // Figure 2's example
		{Op: OpXor, ByteOp: true, Dst: R(EDX), Src: R(EDX)},
		{Op: OpCmp, ByteOp: true, Dst: R(EBX), Src: I(0x41)},
		{Op: OpSub, ByteOp: true, Dst: MB(EBX, 4), Src: I(1)},
	}
	for i, want := range samples {
		want.ISA = X86
		want.Cond = CondAlways
		enc, err := EncodeX86(&want)
		if err != nil {
			t.Fatalf("sample %d: encode: %v", i, err)
		}
		got, err := DecodeX86(enc, 0)
		if err != nil {
			t.Fatalf("sample %d: decode % x: %v", i, enc, err)
		}
		if !got.ByteOp {
			t.Fatalf("sample %d: lost the byte-op flag", i)
		}
		if got.Op != want.Op {
			t.Fatalf("sample %d: op %s != %s", i, got.Op, want.Op)
		}
	}
}

func TestRetImm16RoundTrip(t *testing.T) {
	in := Inst{Op: OpRet, Imm: 0x10, ISA: X86, Cond: CondAlways}
	enc, err := EncodeX86(&in)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] != 0xC2 || len(enc) != 3 {
		t.Fatalf("encoding % x", enc)
	}
	got, err := DecodeX86(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpRet || got.Imm != 0x10 {
		t.Fatalf("decoded %s imm=%d", got.Op, got.Imm)
	}
}

func TestZeroBytesDecode(t *testing.T) {
	// 00 /r — "add r/m8, r8" — is why real x86's unintentional gadget
	// surface is huge: runs of zero bytes decode as instructions.
	in, err := DecodeX86([]byte{0x00, 0x00, 0x00, 0x00}, 0)
	if err != nil {
		t.Fatalf("zero bytes should decode: %v", err)
	}
	if in.Op != OpAdd || !in.ByteOp {
		t.Fatalf("decoded %s byteop=%v", in.Op, in.ByteOp)
	}
}
