package mem

import (
	"bytes"
	"sync"
	"testing"
)

// TestForkDivergence: a write in one fork must be invisible in sibling
// forks and in the snapshot itself.
func TestForkDivergence(t *testing.T) {
	m := New()
	m.Map("data", 0x1000, PageSize, PermRW)
	if err := m.Write(0x1000, []byte("original")); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	a, b := s.Fork(), s.Fork()

	if err := a.Write(0x1000, []byte("mutant-A")); err != nil {
		t.Fatal(err)
	}
	check := func(name string, mm *Memory, want string) {
		t.Helper()
		buf := make([]byte, 8)
		if err := mm.Read(0x1000, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != want {
			t.Fatalf("%s: got %q want %q", name, buf, want)
		}
	}
	check("fork A", a, "mutant-A")
	check("fork B", b, "original")
	check("source", m, "original")

	// The snapshot's bytes must survive the SOURCE writing too.
	if err := m.Write(0x1000, []byte("mutant-S")); err != nil {
		t.Fatal(err)
	}
	c := s.Fork()
	check("late fork", c, "original")
	check("source", m, "mutant-S")
}

// TestForkCowAccounting: forks start fully shared, privatize exactly the
// written pages, and count the breaks.
func TestForkCowAccounting(t *testing.T) {
	m := New()
	m.Map("data", 0, 4*PageSize, PermRW)
	s := m.Snapshot()
	if m.SharedPages() != 4 {
		t.Fatalf("source shared pages = %d, want 4", m.SharedPages())
	}
	f := s.Fork()
	if f.SharedPages() != 4 || f.CowBroken() != 0 {
		t.Fatalf("fresh fork: shared=%d broken=%d, want 4/0", f.SharedPages(), f.CowBroken())
	}
	// One write spanning two pages privatizes both, leaves the rest shared.
	if err := f.Write(PageSize-2, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if f.SharedPages() != 2 || f.CowBroken() != 2 {
		t.Fatalf("after spanning write: shared=%d broken=%d, want 2/2", f.SharedPages(), f.CowBroken())
	}
	// Rewriting an already-private page breaks nothing further.
	if err := f.Write(0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if f.CowBroken() != 2 {
		t.Fatalf("rewrite broke again: broken=%d, want 2", f.CowBroken())
	}
}

// TestForkCarriesCodeGens: per-page generations, the allGen floor, and the
// write log must carry across Snapshot/Fork, and generation bumps after
// the fork must stay private to the Memory that made them.
func TestForkCarriesCodeGens(t *testing.T) {
	m := New()
	m.Map("text", 0x1000, 2*PageSize, PermRWX)
	if err := m.Write(0x1000, []byte{0xAA}); err != nil { // bump page 1
		t.Fatal(err)
	}
	m.InvalidateCode()                                    // raise the floor
	if err := m.Write(0x2000, []byte{0xBB}); err != nil { // bump page 2 past floor
		t.Fatal(err)
	}
	s := m.Snapshot()
	f := s.Fork()

	if f.CodeGen() != m.CodeGen() || f.CodeGenFloor() != m.CodeGenFloor() {
		t.Fatalf("gen state diverged at fork: %d/%d vs %d/%d",
			f.CodeGen(), f.CodeGenFloor(), m.CodeGen(), m.CodeGenFloor())
	}
	for pn := uint32(1); pn <= 2; pn++ {
		if f.PageGen(pn) != m.PageGen(pn) {
			t.Fatalf("page %d gen: fork %d vs source %d", pn, f.PageGen(pn), m.PageGen(pn))
		}
	}
	// The last ranged write must still be replayable from the fork's log.
	w, ok := f.CodeWriteAt(f.CodeGen())
	if !ok || w.Addr != 0x2000 || w.Size != 1 {
		t.Fatalf("fork write log: ok=%v w=%+v", ok, w)
	}

	// A code write in the fork bumps only the fork.
	g0 := m.CodeGen()
	if err := f.Write(0x1004, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	if f.CodeGen() != g0+1 {
		t.Fatalf("fork gen = %d, want %d", f.CodeGen(), g0+1)
	}
	if m.CodeGen() != g0 {
		t.Fatalf("source gen moved to %d on a fork write", m.CodeGen())
	}
	if f.PageGen(1) != f.CodeGen() || m.PageGen(1) == f.CodeGen() {
		t.Fatalf("page gen leak: fork=%d source=%d", f.PageGen(1), m.PageGen(1))
	}
}

// TestCloneIsCow: Clone still isolates both directions (the legacy deep-copy
// contract) while sharing bytes until first write.
func TestCloneIsCow(t *testing.T) {
	m := New()
	m.Map("data", 0, PageSize, PermRW)
	if err := m.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if c.SharedPages() != 1 || m.SharedPages() != 1 {
		t.Fatalf("clone not shared: %d/%d", c.SharedPages(), m.SharedPages())
	}
	if err := m.Write(0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(1, []byte{8}); err != nil {
		t.Fatal(err)
	}
	mb, cb := make([]byte, 3), make([]byte, 3)
	_ = m.Read(0, mb)
	_ = c.Read(0, cb)
	if !bytes.Equal(mb, []byte{9, 2, 3}) || !bytes.Equal(cb, []byte{1, 8, 3}) {
		t.Fatalf("divergence wrong: m=%v c=%v", mb, cb)
	}
}

// TestForkRaceHammer: many forks of one snapshot reading and writing
// concurrently must neither race (run with -race) nor observe each other.
func TestForkRaceHammer(t *testing.T) {
	m := New()
	m.Map("data", 0, 8*PageSize, PermRW)
	for i := uint32(0); i < 8; i++ {
		if err := m.WriteWord(i*PageSize, 0xFEED0000+i); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Snapshot()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			f := s.Fork()
			for i := 0; i < 200; i++ {
				pn := uint32(i) % 8
				v, err := f.ReadWord(pn * PageSize)
				if err != nil {
					errs <- err
					return
				}
				want := 0xFEED0000 + pn
				if i >= 8 { // after one lap, our own writes are visible
					want = id<<16 | pn
				}
				if v != want {
					errs <- &Fault{Addr: pn * PageSize}
					return
				}
				if err := f.WriteWord(pn*PageSize, id<<16|pn); err != nil {
					errs <- err
					return
				}
			}
		}(uint32(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("hammer: %v", err)
	}
}
