// Package profiler implements a guest-cycle sampling profiler for the
// HIPStR VM: it hooks the machine's dispatch loop, samples execution every
// N guest instructions, and attributes the simulated cycles accumulated
// between samples (from the perf timing model when one is bound, raw
// instruction counts otherwise) to guest code regions — per basic block
// and per function of the fat binary's extended symbol table.
//
// Execution inside a PSR code cache is mapped back to guest source
// addresses through a resolver (dbt.VM.ResolvePC), so translated code,
// trap stubs, and chained superblocks all charge the guest function they
// were translated from — the paper's evaluation (§6-7) reports per-region
// PSR overhead, which end-to-end totals cannot attribute.
//
// Beyond sampled guest cycles (the "interpret" phase), the profiler taps
// the event tracer for the two VM phases with explicit costs: translation
// latency (EvTranslate, microseconds) and migration cost (EvMigrateEnd,
// microseconds). Reports export a top-N hot-block table, a JSON summary,
// and folded flamegraph stacks in the same "frame;frame;frame weight"
// format cmd/tracestat -folded emits.
//
// The profiler is strictly pay-for-what-you-use: nothing is attached to
// the machine until Attach is called, and the sampling fast path is one
// counter increment and compare per instruction.
package profiler

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/perf"
	"hipstr/internal/telemetry"
)

// DefaultInterval is the sampling period in guest instructions.
const DefaultInterval = 64

// Resolver maps an executing PC on ISA k to the guest source address it
// executes on behalf of (identity for native text, unit-source for code
// caches). It reports false when the PC belongs to no guest code.
type Resolver func(k isa.Kind, pc uint32) (uint32, bool)

// ClassResolver additionally classifies the PC: stub reports that it
// falls inside a translation unit's trap-stub region, i.e. the sample
// caught VM-dispatch overhead rather than translated guest code
// (dbt.VM.ResolvePCClass).
type ClassResolver func(k isa.Kind, pc uint32) (src uint32, stub, ok bool)

// blockKey aggregates samples per guest basic block.
type blockKey struct {
	k    isa.Kind
	fn   int32 // index into bin.Funcs; -1 = unsymbolized
	bb   int32 // BlockMeta.ID within the function; -1 = unknown block
	stub bool  // sample hit a trap stub (VM dispatch overhead)
}

// phaseKey aggregates traced phase costs (translate) per guest function.
type phaseKey struct {
	k  isa.Kind
	fn int32
}

type agg struct {
	cost    float64
	samples uint64
}

// Profiler is a sampling guest-cycle profiler. Attach it to at most one
// machine; sampling runs on that machine's goroutine, while reports may be
// taken from any goroutine (the observability server serves them live).
type Profiler struct {
	interval uint64
	pending  uint64 // instructions since the last sample (VM goroutine only)
	cycles   func() float64
	last     float64
	bin      *fatbin.Binary
	resolve  Resolver
	resolveC ClassResolver

	mu        sync.Mutex
	buckets   map[blockKey]*agg
	translate map[phaseKey]*agg
	migrate   map[isa.Kind]*agg
	samples   uint64
	instrs    uint64
	total     float64 // cycles attributed via sampling
	unattr    float64 // cycles whose sample failed to symbolize
}

// New returns a profiler symbolizing against bin, sampling every interval
// guest instructions (<= 0 selects DefaultInterval).
func New(bin *fatbin.Binary, interval uint64) *Profiler {
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Profiler{
		interval:  interval,
		bin:       bin,
		buckets:   make(map[blockKey]*agg),
		translate: make(map[phaseKey]*agg),
		migrate:   make(map[isa.Kind]*agg),
	}
}

// Interval returns the sampling period in guest instructions.
func (p *Profiler) Interval() uint64 { return p.interval }

// SetResolver installs the execution-PC → guest-source mapping. The PSR
// drivers wire dbt.VM.ResolvePC; native execution needs none (text PCs
// symbolize directly).
func (p *Profiler) SetResolver(r Resolver) { p.resolve = r }

// SetClassResolver installs a classifying resolver (dbt.VM.ResolvePCClass)
// that splits sampled cycles between translated guest code and VM
// dispatch overhead (trap stubs). It takes precedence over SetResolver.
func (p *Profiler) SetClassResolver(r ClassResolver) { p.resolveC = r }

// BindModel attributes the timing model's simulated cycles instead of raw
// instruction counts. Attach the model to the machine *before* the
// profiler so every sample sees the cycles already charged for the
// sampled instruction.
func (p *Profiler) BindModel(mo *perf.Model) {
	p.BindCycles(func() float64 { return mo.Cycles })
}

// BindCycles installs a cumulative simulated-cycle source read at every
// sample; deltas between samples become the attributed cost. Without one,
// each instruction costs one cycle.
func (p *Profiler) BindCycles(f func() float64) {
	p.cycles = f
	if f != nil {
		p.last = f()
	}
}

// Attach chains the profiler onto m's exec hook. Attach after any timing
// model so samples observe post-charge cycle counts.
func (p *Profiler) Attach(m *machine.Machine) {
	prev := m.OnExec
	m.OnExec = func(mm *machine.Machine, in *isa.Inst) {
		if prev != nil {
			prev(mm, in)
		}
		p.pending++
		if p.pending >= p.interval {
			p.sample(mm.ISA, in.Addr)
		}
	}
}

// AttachTracer taps t's event stream for the costed VM phases (translate,
// migrate) so reports break those out alongside sampled guest cycles.
func (p *Profiler) AttachTracer(t *telemetry.Telemetry) {
	if t == nil || t.Trace == nil {
		return
	}
	t.Trace.AddSink(p)
}

// BindTelemetry publishes the profiler's own meters through t: sample and
// instruction counters plus the attribution ratio, refreshed at snapshot
// time. Safe from any goroutine (the profiler carries its own lock).
func (p *Profiler) BindTelemetry(t *telemetry.Telemetry) {
	if t == nil || t.Reg == nil {
		return
	}
	r := t.Reg
	r.RegisterCollector(func() {
		p.mu.Lock()
		samples, instrs, total, unattr := p.samples, p.instrs, p.total, p.unattr
		p.mu.Unlock()
		r.Counter("profiler.samples").Set(samples)
		r.Counter("profiler.instructions").Set(instrs)
		r.Gauge("profiler.cycles").Set(total)
		ratio := 0.0
		if total > 0 {
			ratio = (total - unattr) / total
		}
		r.Gauge("profiler.attributed_ratio").Set(ratio)
	})
}

// sample charges the cycles accumulated since the previous sample to the
// guest region owning pc. Runs on the machine goroutine; resolution (which
// reads VM state) happens before taking the aggregation lock.
func (p *Profiler) sample(k isa.Kind, pc uint32) {
	cost := float64(p.pending)
	if p.cycles != nil {
		c := p.cycles()
		cost = c - p.last
		p.last = c
	}
	n := p.pending
	p.pending = 0

	src, stub, ok := pc, false, true
	if p.resolveC != nil {
		src, stub, ok = p.resolveC(k, pc)
	} else if p.resolve != nil {
		src, ok = p.resolve(k, pc)
	}
	key := blockKey{k: k, fn: -1, bb: -1, stub: stub}
	if ok && p.bin != nil {
		if fn, blk := p.bin.BlockAt(k, src); fn != nil {
			key.fn = int32(fn.Index)
			if blk != nil {
				key.bb = int32(blk.ID)
			}
		}
	}

	p.mu.Lock()
	p.samples++
	p.instrs += n
	p.total += cost
	if key.fn < 0 {
		p.unattr += cost
	}
	a := p.buckets[key]
	if a == nil {
		a = &agg{}
		p.buckets[key] = a
	}
	a.cost += cost
	a.samples++
	p.mu.Unlock()
}

// Emit implements telemetry.Sink: translation and migration events carry
// explicit costs (microseconds) that the sampler cannot see, so they are
// accounted as their own phases.
func (p *Profiler) Emit(e telemetry.Event) {
	switch e.Type {
	case telemetry.EvTranslate:
		k, ok := kindOf(e.ISA)
		if !ok {
			return
		}
		fn := int32(-1)
		if p.bin != nil {
			if f := p.bin.FuncAt(k, e.Addr); f != nil {
				fn = int32(f.Index)
			}
		}
		p.mu.Lock()
		key := phaseKey{k: k, fn: fn}
		a := p.translate[key]
		if a == nil {
			a = &agg{}
			p.translate[key] = a
		}
		a.cost += e.Cost
		a.samples++
		p.mu.Unlock()
	case telemetry.EvMigrateEnd:
		if e.Cost <= 0 {
			return // refusals carry no cost
		}
		k, ok := kindOf(e.ISA)
		if !ok {
			return
		}
		p.mu.Lock()
		a := p.migrate[k]
		if a == nil {
			a = &agg{}
			p.migrate[k] = a
		}
		a.cost += e.Cost
		a.samples++
		p.mu.Unlock()
	}
}

func kindOf(s string) (isa.Kind, bool) {
	for _, k := range isa.Kinds {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// BlockProfile is one guest basic block's sampled cost.
type BlockProfile struct {
	ISA   string `json:"isa"`
	Func  string `json:"func"`
	Block int    `json:"block"` // BlockMeta.ID; -1 = unknown
	Addr  uint32 `json:"addr"`  // guest block start (0 when unknown)
	// Dispatch marks cycles sampled inside trap stubs: VM dispatch
	// overhead attributed to the unit's guest block rather than the
	// block's own translated code.
	Dispatch bool    `json:"dispatch,omitempty"`
	Cycles   float64 `json:"cycles"`
	Samples  uint64  `json:"samples"`
}

// FuncProfile is one guest function's sampled cost across both ISAs.
type FuncProfile struct {
	Func    string  `json:"func"`
	Cycles  float64 `json:"cycles"`
	Samples uint64  `json:"samples"`
	Share   float64 `json:"share"` // fraction of total sampled cycles
}

// PhaseCost is one traced VM-phase aggregate (cost in microseconds).
type PhaseCost struct {
	Phase  string  `json:"phase"`
	ISA    string  `json:"isa"`
	Func   string  `json:"func,omitempty"`
	Count  uint64  `json:"count"`
	CostUS float64 `json:"cost_us"`
}

// Report is a point-in-time profile summary.
type Report struct {
	Interval         uint64         `json:"interval"`
	Instructions     uint64         `json:"instructions"`
	Samples          uint64         `json:"samples"`
	TotalCycles      float64        `json:"total_cycles"`
	AttributedCycles float64        `json:"attributed_cycles"`
	AttributedRatio  float64        `json:"attributed_ratio"`
	Funcs            []FuncProfile  `json:"funcs"`
	Blocks           []BlockProfile `json:"blocks"`
	Phases           []PhaseCost    `json:"phases,omitempty"`
}

const unknownFunc = "(unknown)"

func (p *Profiler) funcName(fn int32) string {
	if fn < 0 || p.bin == nil || int(fn) >= len(p.bin.Funcs) {
		return unknownFunc
	}
	return p.bin.Funcs[fn].Name
}

// Report builds the current profile. Safe from any goroutine.
func (p *Profiler) Report() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := Report{
		Interval:         p.interval,
		Instructions:     p.instrs,
		Samples:          p.samples,
		TotalCycles:      p.total,
		AttributedCycles: p.total - p.unattr,
	}
	if r.TotalCycles > 0 {
		r.AttributedRatio = r.AttributedCycles / r.TotalCycles
	}
	byFunc := make(map[string]*FuncProfile)
	for key, a := range p.buckets {
		name := p.funcName(key.fn)
		bp := BlockProfile{
			ISA:      key.k.String(),
			Func:     name,
			Block:    int(key.bb),
			Dispatch: key.stub,
			Cycles:   a.cost,
			Samples:  a.samples,
		}
		if key.fn >= 0 && key.bb >= 0 {
			if bm := p.bin.Funcs[key.fn].BlockByID(int(key.bb)); bm != nil {
				bp.Addr = bm.Addr[key.k]
			}
		}
		r.Blocks = append(r.Blocks, bp)
		fp := byFunc[name]
		if fp == nil {
			fp = &FuncProfile{Func: name}
			byFunc[name] = fp
		}
		fp.Cycles += a.cost
		fp.Samples += a.samples
	}
	for _, fp := range byFunc {
		if r.TotalCycles > 0 {
			fp.Share = fp.Cycles / r.TotalCycles
		}
		r.Funcs = append(r.Funcs, *fp)
	}
	sort.Slice(r.Funcs, func(i, j int) bool {
		if r.Funcs[i].Cycles != r.Funcs[j].Cycles {
			return r.Funcs[i].Cycles > r.Funcs[j].Cycles
		}
		return r.Funcs[i].Func < r.Funcs[j].Func
	})
	sort.Slice(r.Blocks, func(i, j int) bool {
		a, b := r.Blocks[i], r.Blocks[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.ISA != b.ISA {
			return a.ISA < b.ISA
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return !a.Dispatch && b.Dispatch
	})
	for key, a := range p.translate {
		r.Phases = append(r.Phases, PhaseCost{
			Phase: "translate", ISA: key.k.String(), Func: p.funcName(key.fn),
			Count: a.samples, CostUS: a.cost,
		})
	}
	for k, a := range p.migrate {
		r.Phases = append(r.Phases, PhaseCost{
			Phase: "migrate", ISA: k.String(), Count: a.samples, CostUS: a.cost,
		})
	}
	sort.Slice(r.Phases, func(i, j int) bool {
		a, b := r.Phases[i], r.Phases[j]
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.ISA < b.ISA
	})
	return r
}

// foldedWeight follows tracestat's rule: the rounded-up cost, falling back
// to the sample count so cost-less aggregates still appear.
func foldedWeight(cost float64, count uint64) uint64 {
	w := uint64(math.Ceil(cost))
	if w == 0 {
		w = count
	}
	return w
}

// WriteFolded writes flamegraph folded stacks, one per aggregate, in the
// same "frame;frame;... weight" format cmd/tracestat -folded emits, sorted
// by stack name for deterministic output. Sampled guest cycles appear
// under the "interpret" phase as interpret;<func>;<isa>;block<N>, except
// cycles sampled inside trap stubs, which appear under "vm-dispatch" with
// the same sub-stack; traced translation and migration costs (whose
// weights are microseconds, the tracer's native unit for those events)
// appear under "translate" and "migrate".
func (r Report) WriteFolded(w io.Writer) error {
	lines := make([]string, 0, len(r.Blocks)+len(r.Phases))
	for _, b := range r.Blocks {
		blk := fmt.Sprintf("block%d", b.Block)
		if b.Block < 0 {
			blk = "block?"
		}
		phase := "interpret"
		if b.Dispatch {
			phase = "vm-dispatch"
		}
		lines = append(lines, fmt.Sprintf("%s;%s;%s;%s %d",
			phase, b.Func, b.ISA, blk, foldedWeight(b.Cycles, b.Samples)))
	}
	for _, ph := range r.Phases {
		fn := ph.Func
		if fn == "" {
			fn = "(migration)"
		}
		lines = append(lines, fmt.Sprintf("%s;%s;%s %d",
			ph.Phase, fn, ph.ISA, foldedWeight(ph.CostUS, ph.Count)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteTop writes the top-n hot-block table (n <= 0 means all blocks) with
// cumulative share of total sampled cycles.
func (r Report) WriteTop(w io.Writer, n int) error {
	if n <= 0 || n > len(r.Blocks) {
		n = len(r.Blocks)
	}
	if _, err := fmt.Fprintf(w, "%d samples, %.0f cycles over %d instructions (%.1f%% attributed)\n\n",
		r.Samples, r.TotalCycles, r.Instructions, 100*r.AttributedRatio); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %-4s %-24s %6s %10s %14s %7s %7s\n",
		"#", "isa", "func", "block", "samples", "cycles", "self%", "cum%"); err != nil {
		return err
	}
	var cum float64
	for i := 0; i < n; i++ {
		b := r.Blocks[i]
		cum += b.Cycles
		self, cumPct := 0.0, 0.0
		if r.TotalCycles > 0 {
			self = 100 * b.Cycles / r.TotalCycles
			cumPct = 100 * cum / r.TotalCycles
		}
		if _, err := fmt.Fprintf(w, "%4d %-4s %-24s %6d %10d %14.0f %6.2f%% %6.2f%%\n",
			i+1, b.ISA, b.Func, b.Block, b.Samples, b.Cycles, self, cumPct); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
