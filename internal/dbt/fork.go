package dbt

import (
	"math/rand"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/mem"
	"hipstr/internal/proc"
	"hipstr/internal/psr"
	"hipstr/internal/telemetry"
)

// VMSnapshot is an immutable point-in-time image of a running VM: the
// guest address space frozen copy-on-write, the machine register state,
// both code caches and RATs, trap/call registries, and the PSR layout
// lineage (seed + map build order). Snapshots are cheap — O(page-table),
// zero page copies — and safe to Fork from many goroutines concurrently.
//
// A fleet host keeps one booted "prototype" VM per binary and snapshots
// it once: admitting the Nth tenant is then a Fork (alias every page,
// clone the translation metadata) instead of a boot (load the image,
// translate the entry). Killing a breached guest and respawning it with a
// fresh PSR seed reuses the same snapshot through Respawn.
type VMSnapshot struct {
	bin   *fatbin.Binary
	cfg   Config // normalized; Telemetry cleared (each fork gets its own)
	mem   *mem.Snapshot
	state machine.State
	stats Stats

	caches [2]*CodeCache
	rats   [2]*RAT
	traps  [2]map[uint32]trapMeta
	calls  [2]map[uint32]callMeta
	gen    [2]int

	layoutSeed int64
	mapOrder   []int

	pendingMigration bool
	lastEventTarget  uint32
	trace            []uint32
	exited           bool
	exitCode         uint32
	execves          []proc.ExecveEvent
}

// ForkConfig parameterizes one fork of a snapshot.
type ForkConfig struct {
	// Telemetry receives the fork's metrics and traces. Leave nil for a
	// private instance (forks never share the prototype's registry: its
	// collector reads the prototype's live state).
	Telemetry *telemetry.Telemetry
	// TraceCap bounds the private tracer ring when Telemetry is nil.
	TraceCap int
}

// Snapshot freezes the VM's complete state. The VM keeps running
// afterwards; its next write to any page copies first (CoW), so the
// snapshot stays pristine. Cost is O(page-table + translation metadata).
func (vm *VM) Snapshot() *VMSnapshot {
	cfg := vm.Cfg
	cfg.Telemetry = nil
	s := &VMSnapshot{
		bin:              vm.Bin,
		cfg:              cfg,
		mem:              vm.P.Mem.Snapshot(),
		state:            vm.P.M.State,
		stats:            vm.Stats,
		gen:              vm.gen,
		layoutSeed:       vm.layoutSeed,
		mapOrder:         append([]int(nil), vm.mapOrder...),
		pendingMigration: vm.PendingMigration,
		lastEventTarget:  vm.LastEventTarget,
		trace:            append([]uint32(nil), vm.P.Trace...),
		exited:           vm.P.Exited,
		exitCode:         vm.P.ExitCode,
		execves:          append([]proc.ExecveEvent(nil), vm.P.Execves...),
	}
	for _, k := range isa.Kinds {
		s.caches[k] = vm.caches[k].Clone()
		s.rats[k] = vm.rats[k].Clone()
		s.traps[k] = cloneTraps(vm.traps[k])
		s.calls[k] = cloneCalls(vm.calls[k])
	}
	return s
}

// Fork materializes a new VM continuing exactly where the snapshot was
// taken: same registers, same translated code (aliased copy-on-write),
// same RAT and trap state, and — via map-build replay — the identical
// relocation maps and PSR RNG stream. A fork of a freshly booted
// prototype is indistinguishable from a cold New of the same config; the
// only post-fork divergence from the prototype's own continuation is the
// migration-policy RNG, which restarts from the seed (its state is not
// extractable from math/rand).
func (s *VMSnapshot) Fork(fc ForkConfig) (*VM, error) {
	vm, p := s.newShell(s.cfg, fc)
	p.M.State = s.state
	p.Trace = append([]uint32(nil), s.trace...)
	p.Exited = s.exited
	p.ExitCode = s.exitCode
	p.Execves = append([]proc.ExecveEvent(nil), s.execves...)
	for _, k := range isa.Kinds {
		vm.caches[k] = s.caches[k].Clone()
		vm.caches[k].OnFlush = p.Mem.InvalidateCodeRange
		vm.rats[k] = s.rats[k].Clone()
		vm.traps[k] = cloneTraps(s.traps[k])
		vm.calls[k] = cloneCalls(s.calls[k])
	}
	vm.gen = s.gen
	vm.Stats = s.stats
	vm.PendingMigration = s.pendingMigration
	vm.LastEventTarget = s.lastEventTarget
	// The layout lineage may differ from cfg.Seed if the prototype had
	// Respawned in place before the snapshot.
	vm.layoutSeed = s.layoutSeed
	vm.rebuildMaps(s.mapOrder)
	return vm, nil
}

// Respawn materializes a fresh guest from the snapshot under a new PSR
// seed: the paper's kill+respawn breach response (§5.3) at O(dirty pages)
// cost. Memory forks copy-on-write from the snapshot image; relocation
// maps, code caches, RATs, and trap registries start empty (re-randomized
// under newSeed), and execution re-enters at the program entry on ISA k.
// Stale translated bytes from the snapshot's cache region are unreachable
// — the entry maps are empty and indirect transfers into cache regions
// are policed — and are overwritten copy-on-write as translation refills.
func (s *VMSnapshot) Respawn(k isa.Kind, newSeed int64, fc ForkConfig) (*VM, error) {
	cfg := s.cfg
	cfg.Seed = newSeed
	vm, p := s.newShell(cfg, fc)
	for _, kk := range isa.Kinds {
		vm.caches[kk] = NewCodeCache(kk, cfg.CodeCacheSize)
		vm.caches[kk].OnFlush = p.Mem.InvalidateCodeRange
		vm.rats[kk] = NewRAT(cfg.RATSize)
		vm.traps[kk] = make(map[uint32]trapMeta)
		vm.calls[kk] = make(map[uint32]callMeta)
	}
	if err := vm.Start(k); err != nil {
		return nil, err
	}
	return vm, nil
}

// newShell builds the common part of a forked VM: the CoW memory fork,
// the adopted process, hooks, telemetry, and the PSR randomizer seeded
// from cfg.Seed (rebuildMaps replays it forward for continuation forks).
func (s *VMSnapshot) newShell(cfg Config, fc ForkConfig) (*VM, *proc.Process) {
	cfg.Telemetry = fc.Telemetry
	cfg.TraceCap = fc.TraceCap
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewWithTraceCap(cfg.TraceCap)
	}
	ram := s.mem.Fork()
	p := proc.Adopt(s.bin, machine.State{ISA: s.state.ISA}, ram)
	vm := &VM{
		Bin:        s.bin,
		P:          p,
		Cfg:        cfg,
		Rand:       psr.NewRandomizer(cfg.Seed, cfg.psrConfig()),
		policyRng:  rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		maps:       make(map[int][2]*psr.Map),
		tel:        cfg.Telemetry,
		layoutSeed: cfg.Seed,
		mapDigest:  digestInit,
	}
	if !cfg.NoSharedUnits {
		if vm.shared = cfg.SharedUnits; vm.shared == nil {
			vm.shared = SharedUnits
		}
	}
	vm.registerTelemetry()
	p.SetControlHook(vm.onControl)
	vm.progSyscall = p.M.Syscall
	p.M.Syscall = vm.onSyscall
	return vm, p
}

// Fork is Snapshot().Fork(fc) in one step — the warm-spawn path when the
// caller does not need to keep the snapshot for further forks.
func (vm *VM) Fork(fc ForkConfig) (*VM, error) {
	return vm.Snapshot().Fork(fc)
}

// rebuildMaps replays a recorded map-build order against a fresh
// randomizer seeded with layoutSeed. Because psr.Randomizer draws are
// consumed strictly during Build, replaying the same builds in the same
// order reconstructs byte-identical maps AND leaves the RNG stream in the
// same position — so translations after the fork match translations the
// prototype would have produced.
func (vm *VM) rebuildMaps(order []int) {
	vm.Rand = psr.NewRandomizer(vm.layoutSeed, vm.Cfg.psrConfig())
	for _, idx := range order {
		vm.mapOf(vm.Bin.Funcs[idx])
	}
}

func cloneTraps(m map[uint32]trapMeta) map[uint32]trapMeta {
	n := make(map[uint32]trapMeta, len(m))
	for k, v := range m {
		n[k] = v
	}
	return n
}

func cloneCalls(m map[uint32]callMeta) map[uint32]callMeta {
	n := make(map[uint32]callMeta, len(m))
	for k, v := range m {
		n[k] = v
	}
	return n
}
