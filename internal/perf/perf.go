// Package perf implements the cycle-approximate timing model of the
// heterogeneous-ISA CMP: the two cores of Table 1 (a low-power in-order-ish
// ARM modeled after the Cortex-A9 and a high-performance x86 modeled after
// the Xeon), with set-associative instruction and data caches, a gshare
// branch predictor, functional-unit latencies whose exposure scales with
// ROB depth, and the 1-cycle Return Address Table lookup penalty of §5.1.
//
// The model attaches to a running machine as an execution observer and
// charges cycles per event. It is calibrated for *relative* comparisons
// (native vs PSR optimization levels, HIPStR vs Isomeron), which is what
// every performance figure in the paper reports.
package perf

import (
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/telemetry"
)

// CacheConfig describes one level-1 cache.
type CacheConfig struct {
	SizeKB  int
	Ways    int
	LineB   int
	HitLat  float64
	MissLat float64
}

// CoreConfig mirrors one row of Table 1.
type CoreConfig struct {
	Name       string
	FreqGHz    float64
	FetchWidth int
	IssueWidth int
	ROBSize    int
	LQSize     int
	SQSize     int
	IntALU     int
	IntMulDiv  int
	FPALU      int
	ICache     CacheConfig
	DCache     CacheConfig
	// MispredictPenalty is the pipeline refill cost in cycles.
	MispredictPenalty float64
	// RATLookup is the return-address-table translation penalty (§5.1).
	RATLookup float64
}

// ARMCore returns the Cortex-A9-like core of Table 1.
func ARMCore() CoreConfig {
	return CoreConfig{
		Name: "arm", FreqGHz: 2.0,
		FetchWidth: 2, IssueWidth: 4, ROBSize: 20,
		LQSize: 16, SQSize: 16,
		IntALU: 2, IntMulDiv: 1, FPALU: 2,
		ICache:            CacheConfig{SizeKB: 32, Ways: 2, LineB: 64, HitLat: 1, MissLat: 18},
		DCache:            CacheConfig{SizeKB: 32, Ways: 2, LineB: 64, HitLat: 2, MissLat: 20},
		MispredictPenalty: 9,
		RATLookup:         1,
	}
}

// X86Core returns the Xeon-like core of Table 1.
func X86Core() CoreConfig {
	return CoreConfig{
		Name: "x86", FreqGHz: 3.3,
		FetchWidth: 4, IssueWidth: 4, ROBSize: 128,
		LQSize: 48, SQSize: 96,
		IntALU: 6, IntMulDiv: 1, FPALU: 2,
		ICache:            CacheConfig{SizeKB: 32, Ways: 2, LineB: 64, HitLat: 1, MissLat: 16},
		DCache:            CacheConfig{SizeKB: 32, Ways: 2, LineB: 64, HitLat: 2, MissLat: 18},
		MispredictPenalty: 15,
		RATLookup:         1,
	}
}

// CoreFor returns the core model matching ISA k.
func CoreFor(k isa.Kind) CoreConfig {
	if k == isa.X86 {
		return X86Core()
	}
	return ARMCore()
}

// cacheSim is a set-associative cache with LRU replacement.
type cacheSim struct {
	cfg      CacheConfig
	sets     int
	setMask  int // sets-1 when sets is a power of two, else -1
	lineBits uint
	ways     int
	hitLat   float64 // cfg.HitLat, lifted so access stays inlineable
	// tags and lru are set-major flat arrays (sets*ways entries): one
	// bounds-checked slice per access instead of a per-set pointer chase.
	tags []uint32
	lru  []uint64
	tick uint64
	// lastLine/lastIdx memoize the most recently accessed line and its
	// flat-array slot. The last-touched way is always the set's newest, so
	// it can never be the LRU victim of an intervening miss — the memo is
	// stale-proof, and a repeated access applies the exact same effects
	// as the search loop would. Its LRU timestamp is written lazily:
	// memo hits bump only tick, and accessSlow flushes the final value
	// before any set search reads it, so observable LRU state is
	// unchanged (intermediate per-hit timestamps are never read).
	lastLine uint32
	lastIdx  int

	Misses uint64
}

// Hits returns how many accesses were cache hits. Every access is a hit
// or a miss and tick counts accesses, so the value is derived instead of
// being a third counter on the hot path.
func (c *cacheSim) Hits() uint64 { return c.tick - c.Misses }

func newCacheSim(cfg CacheConfig) *cacheSim {
	lines := cfg.SizeKB * 1024 / cfg.LineB
	sets := lines / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	lb := uint(0)
	for 1<<lb < cfg.LineB {
		lb++
	}
	c := &cacheSim{cfg: cfg, sets: sets, setMask: -1, lineBits: lb, ways: cfg.Ways, hitLat: cfg.HitLat}
	if sets&(sets-1) == 0 {
		c.setMask = sets - 1
	}
	c.tags = make([]uint32, sets*cfg.Ways)
	c.lru = make([]uint64, sets*cfg.Ways)
	for i := range c.tags {
		c.tags[i] = ^uint32(0)
	}
	// Seed the memo with a real resident entry so access needs no
	// validity check: every fresh tag is ^0, so line ^0 maps to way 0 of
	// its set and a hit there is exactly what the search loop would
	// report for that line on an untouched cache.
	c.lastLine = ^uint32(0)
	if c.setMask >= 0 {
		c.lastIdx = (int(c.lastLine) & c.setMask) * cfg.Ways
	} else {
		c.lastIdx = (int(c.lastLine) % sets) * cfg.Ways
	}
	return c
}

// access touches addr and returns the latency. The body stays under the
// inlining budget: the memo-hit path (the overwhelmingly common case in
// block-structured code) runs without a call, and only genuine set
// searches reach accessSlow.
func (c *cacheSim) access(addr uint32) float64 {
	if addr>>c.lineBits == c.lastLine {
		c.tick++
		return c.hitLat
	}
	return c.accessSlow(addr)
}

// accessSlow is the non-memoized set search and LRU fill for access.
func (c *cacheSim) accessSlow(addr uint32) float64 {
	line := addr >> c.lineBits
	// Flush the memoized way's deferred LRU timestamp (the tick of its
	// most recent touch, which is the previous access) before any LRU
	// state is read below.
	c.lru[c.lastIdx] = c.tick
	c.tick++
	// Power-of-two set counts (every Table 1 config) index with a mask;
	// the modulo fallback keeps arbitrary configs working. Same index
	// either way, so simulated state evolution is unchanged.
	var set int
	if c.setMask >= 0 {
		set = int(line) & c.setMask
	} else {
		set = int(line) % c.sets
	}
	tag := line
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	lru := c.lru[base : base+c.ways]
	for w, t := range tags {
		if t == tag {
			lru[w] = c.tick
			c.lastLine = line
			c.lastIdx = base + w
			return c.cfg.HitLat
		}
	}
	c.Misses++
	victim, oldest := 0, lru[0]
	for w := 1; w < len(lru); w++ {
		if lru[w] < oldest {
			victim, oldest = w, lru[w]
		}
	}
	tags[victim] = tag
	lru[victim] = c.tick
	c.lastLine = line
	c.lastIdx = base + victim
	return c.cfg.MissLat
}

// predictor is a gshare-style branch direction predictor.
type predictor struct {
	table   []uint8
	history uint32

	Lookups, Mispredicts uint64
}

func newPredictor(bits int) *predictor {
	return &predictor{table: make([]uint8, 1<<bits)}
}

func (p *predictor) predict(pc uint32) bool {
	idx := (pc ^ p.history) & uint32(len(p.table)-1)
	return p.table[idx] >= 2
}

func (p *predictor) update(pc uint32, taken bool) bool {
	p.Lookups++
	idx := (pc ^ p.history) & uint32(len(p.table)-1)
	pred := p.table[idx] >= 2
	if taken && p.table[idx] < 3 {
		p.table[idx]++
	}
	if !taken && p.table[idx] > 0 {
		p.table[idx]--
	}
	p.history = p.history<<1 | b2u(taken)
	mis := pred != taken
	if mis {
		p.Mispredicts++
	}
	return mis
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Counts aggregates instruction-mix statistics.
type Counts struct {
	Instrs   uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
	Calls    uint64
	Returns  uint64
	MulDiv   uint64
}

// Model accumulates cycles for one core.
type Model struct {
	Core   CoreConfig
	ICache *cacheSim
	DCache *cacheSim
	Bpred  *predictor

	Cycles float64
	Counts Counts

	// RATEnabled charges the return-address translation penalty on every
	// return (the modified return macro-op).
	RATEnabled bool

	tel       *telemetry.Telemetry
	histPhase *telemetry.Histogram

	// The pending conditional branch is recorded by value, not by *Inst:
	// the interpreter's block cache recycles evicted instruction storage,
	// so hooks must not hold pointers into a block across calls.
	lastJccValid  bool
	lastJccTarget uint32
	lastJccAddr   uint32

	// Per-event costs precomputed from Core at construction. Each is the
	// bit-identical value of the original inline expression (same float
	// operations in the same order), cached so the observe path performs
	// no divisions.
	exp       float64 // latencyExposure()
	issueCost float64 // 1.0 / IssueWidth
	icHitCost float64 // ICache.HitLat / FetchWidth / 4
	mulCost   float64 // 3 * exp / IntMulDiv
	divCost   float64 // 12 * exp / IntMulDiv
	callCost  float64 // 1 * exp
}

// NewModel builds a timing model for the given core.
func NewModel(core CoreConfig) *Model {
	mo := &Model{
		Core:   core,
		ICache: newCacheSim(core.ICache),
		DCache: newCacheSim(core.DCache),
		Bpred:  newPredictor(12),
	}
	exp := 24.0 / float64(core.ROBSize)
	if exp > 1 {
		exp = 1
	}
	mo.exp = exp
	mo.issueCost = 1.0 / float64(core.IssueWidth)
	mo.icHitCost = core.ICache.HitLat / float64(core.FetchWidth) / 4
	mo.mulCost = 3 * exp / float64(core.IntMulDiv)
	mo.divCost = 12 * exp / float64(core.IntMulDiv)
	mo.callCost = 1 * exp
	return mo
}

// BindTelemetry publishes the model's cycle accounting through t: a
// collector mirrors the per-core counters at snapshot time (the model's
// fields stay the canonical per-instruction accumulators — no atomics in
// the observe path), and the measurement loop feeds a per-phase cycle
// histogram plus phase trace events.
func (mo *Model) BindTelemetry(t *telemetry.Telemetry) {
	if t == nil || t.Reg == nil {
		return
	}
	mo.tel = t
	r := t.Reg
	name := mo.Core.Name
	mo.histPhase = r.Histogram("perf." + name + ".phase_cycles")
	r.RegisterCollector(func() {
		r.Gauge("perf." + name + ".cycles").Set(mo.Cycles)
		r.Gauge("perf." + name + ".cpi").Set(mo.CPI())
		r.Counter("perf." + name + ".instrs").Set(mo.Counts.Instrs)
		r.Counter("perf." + name + ".loads").Set(mo.Counts.Loads)
		r.Counter("perf." + name + ".stores").Set(mo.Counts.Stores)
		r.Counter("perf." + name + ".branches").Set(mo.Counts.Branches)
		r.Counter("perf." + name + ".calls").Set(mo.Counts.Calls)
		r.Counter("perf." + name + ".returns").Set(mo.Counts.Returns)
		r.Counter("perf." + name + ".muldiv").Set(mo.Counts.MulDiv)
		r.Counter("perf." + name + ".icache.hits").Set(mo.ICache.Hits())
		r.Counter("perf." + name + ".icache.misses").Set(mo.ICache.Misses)
		r.Counter("perf." + name + ".dcache.hits").Set(mo.DCache.Hits())
		r.Counter("perf." + name + ".dcache.misses").Set(mo.DCache.Misses)
		r.Counter("perf." + name + ".bpred.lookups").Set(mo.Bpred.Lookups)
		r.Counter("perf." + name + ".bpred.mispredicts").Set(mo.Bpred.Mispredicts)
	})
}

// Attach installs the model as the machine's timing observer. The machine
// calls ObserveInst before each instruction in exact mode and CommitBlock
// once per fused block in batched mode; both account identically (see
// machine.Timing). Set m.Timing to nil to stop observing.
func (mo *Model) Attach(m *machine.Machine) {
	m.Timing = mo
}

// latencyExposure scales functional-unit latency by how little the ROB can
// hide: deep out-of-order windows overlap long-latency operations.
func (mo *Model) latencyExposure() float64 {
	return mo.exp
}

// ObserveInst implements machine.Timing's exact-mode observation.
func (mo *Model) ObserveInst(m *machine.Machine, in *isa.Inst) {
	mo.Observe(m, in)
}

// CommitBlock implements machine.Timing's batched commit: it charges a
// whole block's instructions in one call at block exit. The first nLogged
// instructions already executed, so their dynamic addresses come from the
// machine's effective-address log; the remainder (the block's final
// instruction, plus an already-executed register-only compare when the
// terminator is a fused cmp+jcc) observe live machine state. The charge
// sequence — every float operation, cache access, and predictor update in
// order — is identical to per-instruction observation, so cycle totals
// match bit for bit.
func (mo *Model) CommitBlock(m *machine.Machine, insts []isa.Inst, nLogged int, eas []uint32) {
	// The running cycle total stays in a local for the whole block: the
	// additions happen in the identical order with identical operands, so
	// the result is bit-equal to accumulating in the field, without the
	// per-charge load/store traffic.
	cy := mo.Cycles
	c := 0
	for i := 0; i < nLogged; i++ {
		in := &insts[i]
		cy = mo.observeFront(in, cy)
		c, cy = mo.observeMemLogged(in, eas, c, cy)
	}
	for i := nLogged; i < len(insts); i++ {
		in := &insts[i]
		cy = mo.observeFront(in, cy)
		cy = mo.observeMem(m, in, cy)
	}
	mo.Cycles = cy
}

// Observe charges cycles for one executed instruction against live
// machine state.
func (mo *Model) Observe(m *machine.Machine, in *isa.Inst) {
	mo.Cycles = mo.observeMem(m, in, mo.observeFront(in, mo.Cycles))
}

// observeFront charges the state-independent part of one instruction:
// pending branch resolution, issue bandwidth, instruction fetch, and
// functional-unit latency. It needs no machine state, so the logged and
// live observation paths share it verbatim. The cycle total is threaded
// through cy so block commits keep it in a register.
func (mo *Model) observeFront(in *isa.Inst, cy float64) float64 {
	c := &mo.Core
	mo.Counts.Instrs++

	// Resolve the previous conditional branch now that the outcome is
	// visible (the next instruction's address tells the direction).
	if mo.lastJccValid {
		taken := in.Addr == mo.lastJccTarget
		if mo.Bpred.update(mo.lastJccAddr, taken) {
			cy += c.MispredictPenalty
		}
		mo.lastJccValid = false
	}

	// Issue bandwidth.
	cy += mo.issueCost

	// Instruction fetch: one I-cache access per line touched.
	lat := mo.ICache.access(in.Addr)
	if lat > mo.ICache.cfg.HitLat {
		cy += lat
	} else {
		cy += mo.icHitCost
	}

	switch in.Op {
	case isa.OpMul:
		mo.Counts.MulDiv++
		cy += mo.mulCost
	case isa.OpDiv:
		mo.Counts.MulDiv++
		cy += mo.divCost
	case isa.OpJcc:
		mo.Counts.Branches++
		mo.Bpred.predict(in.Addr)
		mo.lastJccValid = true
		mo.lastJccTarget = in.Target
		mo.lastJccAddr = in.Addr
	case isa.OpCall, isa.OpCallI:
		mo.Counts.Calls++
		cy += mo.callCost
	case isa.OpRet, isa.OpBx:
		if in.Op == isa.OpRet || in.Dst.IsReg(isa.LR) {
			mo.Counts.Returns++
			if mo.RATEnabled {
				cy += mo.Core.RATLookup
			}
		}
	}
	return cy
}

func (mo *Model) observeMem(m *machine.Machine, in *isa.Inst, cy float64) float64 {
	charge := func(o isa.Operand, store bool) {
		if o.Kind != isa.OpdMem {
			return
		}
		ea := effectiveAddr(m, o.Mem)
		lat := mo.DCache.access(ea)
		exp := mo.exp
		if store {
			mo.Counts.Stores++
			// Stores retire through the store queue; latency mostly hidden.
			cy += lat * exp * 0.3
		} else {
			mo.Counts.Loads++
			cy += lat * exp
		}
	}
	switch in.Op {
	case isa.OpMov, isa.OpLoad, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpCmp, isa.OpTest, isa.OpMul, isa.OpDiv, isa.OpShl,
		isa.OpShr, isa.OpNeg, isa.OpNot, isa.OpInc, isa.OpDec:
		charge(in.Src, false)
		if in.Op == isa.OpMov || in.Op == isa.OpLoad {
			charge(in.Dst, true)
		} else {
			// Read-modify-write memory destination.
			if in.Dst.Kind == isa.OpdMem {
				charge(in.Dst, false)
				charge(in.Dst, true)
			}
		}
	case isa.OpStore:
		charge(in.Dst, true)
	case isa.OpPush:
		charge(in.Src, false)
		mo.Counts.Stores++
		cy += mo.DCache.access(m.SP()-4) * mo.exp * 0.3
	case isa.OpPop, isa.OpRet, isa.OpLeave:
		mo.Counts.Loads++
		cy += mo.DCache.access(m.SP()) * mo.exp
	case isa.OpPushM, isa.OpPopM:
		n := 0
		for r := 0; r < 16; r++ {
			if in.RegMask&(1<<r) != 0 {
				n++
			}
		}
		cy += float64(n) * mo.DCache.access(m.SP()) * mo.exp * 0.5
	}
	return cy
}

// observeMemLogged mirrors observeMem with dynamic addresses replayed
// from the machine's effective-address log (layout: src EA if Src is a
// memory operand, then dst EA if Dst is one, then pre-exec SP for
// Op.StackAccess instructions — see isa.Op.StackAccess). Entries the
// model does not charge (e.g. a lea's address) are still consumed, so the
// cursor stays aligned with what the machine logged. It returns the
// advanced cursor.
func (mo *Model) observeMemLogged(in *isa.Inst, eas []uint32, c int, cy float64) (int, float64) {
	var srcEA, dstEA, spEA uint32
	if in.Src.Kind == isa.OpdMem {
		srcEA = eas[c]
		c++
	}
	if in.Dst.Kind == isa.OpdMem {
		dstEA = eas[c]
		c++
	}
	if in.Op.StackAccess() {
		spEA = eas[c]
		c++
	}
	exp := mo.exp
	switch in.Op {
	case isa.OpMov, isa.OpLoad, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpCmp, isa.OpTest, isa.OpMul, isa.OpDiv, isa.OpShl,
		isa.OpShr, isa.OpNeg, isa.OpNot, isa.OpInc, isa.OpDec:
		if in.Src.Kind == isa.OpdMem {
			mo.Counts.Loads++
			cy += mo.DCache.access(srcEA) * exp
		}
		if in.Op == isa.OpMov || in.Op == isa.OpLoad {
			if in.Dst.Kind == isa.OpdMem {
				mo.Counts.Stores++
				cy += mo.DCache.access(dstEA) * exp * 0.3
			}
		} else if in.Dst.Kind == isa.OpdMem {
			// Read-modify-write memory destination: load then store.
			mo.Counts.Loads++
			cy += mo.DCache.access(dstEA) * exp
			mo.Counts.Stores++
			cy += mo.DCache.access(dstEA) * exp * 0.3
		}
	case isa.OpStore:
		if in.Dst.Kind == isa.OpdMem {
			mo.Counts.Stores++
			cy += mo.DCache.access(dstEA) * exp * 0.3
		}
	case isa.OpPush:
		if in.Src.Kind == isa.OpdMem {
			mo.Counts.Loads++
			cy += mo.DCache.access(srcEA) * exp
		}
		mo.Counts.Stores++
		cy += mo.DCache.access(spEA-4) * exp * 0.3
	case isa.OpPop, isa.OpRet, isa.OpLeave:
		mo.Counts.Loads++
		cy += mo.DCache.access(spEA) * exp
	case isa.OpPushM, isa.OpPopM:
		n := 0
		for r := 0; r < 16; r++ {
			if in.RegMask&(1<<r) != 0 {
				n++
			}
		}
		cy += float64(n) * mo.DCache.access(spEA) * exp * 0.5
	}
	return c, cy
}

func effectiveAddr(m *machine.Machine, r isa.MemRef) uint32 {
	var a uint32 = uint32(r.Disp)
	if r.HasBase {
		a += m.Regs[r.Base]
	}
	if r.HasIndex {
		s := uint32(r.Scale)
		if s == 0 {
			s = 1
		}
		a += m.Regs[r.Index] * s
	}
	return a
}

// CPI returns cycles per instruction so far.
func (mo *Model) CPI() float64 {
	if mo.Counts.Instrs == 0 {
		return 0
	}
	return mo.Cycles / float64(mo.Counts.Instrs)
}

// Seconds converts accumulated cycles to wall time on this core.
func (mo *Model) Seconds() float64 {
	return mo.Cycles / (mo.Core.FreqGHz * 1e9)
}

// Snapshot captures the current cycle/instruction counters.
type Snapshot struct {
	Cycles float64
	Instrs uint64
}

// Snap returns the current counters.
func (mo *Model) Snap() Snapshot {
	return Snapshot{Cycles: mo.Cycles, Instrs: mo.Counts.Instrs}
}

// Since returns cycles and instructions accumulated after s.
func (mo *Model) Since(s Snapshot) (float64, uint64) {
	return mo.Cycles - s.Cycles, mo.Counts.Instrs - s.Instrs
}
