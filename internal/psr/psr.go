// Package psr implements Program State Relocation: per-function relocation
// maps that randomize calling conventions, register allocation, and stack
// slot coloring (paper §3.4, §5.1). The PSR virtual machine (package dbt)
// applies these maps while translating basic blocks; legitimate execution
// always finds state at the (consistently) relocated locations, while a
// ROP gadget that strays from legitimate control flow reads and writes the
// wrong places.
package psr

import (
	"fmt"
	"math"
	"math/rand"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
)

// Config controls the randomization space and optimization-relevant
// behavior of map construction.
type Config struct {
	// RandPages is the randomization space added to every frame, in 4 KiB
	// pages (paper: 2..16 pages, i.e. 13..16 bits of entropy per
	// parameter). Default 2 (8 KiB).
	RandPages int
	// RegisterBias, when set (the -O3 mode), forces at least three
	// architectural registers to relocate to other registers rather than
	// to stack slots.
	RegisterBias bool
	// GlobalRegCache, when > 0 (the -O2 mode), reserves this many
	// register-to-register relocations for the hottest registers; it is
	// fixed at 3 in the paper.
	GlobalRegCache int
	// PruneBoundaryMarshal (the O1+ "eliminate redundant caller/callee
	// register save and restore" optimization) limits call-boundary
	// marshaling to registers carrying live values across boundaries:
	// the callee-saved class plus the return register.
	PruneBoundaryMarshal bool
}

// DefaultConfig mirrors the paper's main configuration: 8 KiB frames,
// 3-entry global register cache, register bias on.
func DefaultConfig() Config {
	return Config{RandPages: 2, RegisterBias: true, GlobalRegCache: 3}
}

// RandSpace returns the randomization space in bytes.
func (c Config) RandSpace() uint32 {
	p := c.RandPages
	if p <= 0 {
		p = 2
	}
	return uint32(p) * 4096
}

// ArgWindow is the region at the bottom of every translated frame reserved
// for randomized outgoing-argument placement. Callee argument offsets are
// drawn from [ArgReserved, ArgWindow): the first ArgReserved bytes are
// left untouched because fixed (address-taken) stack slots keep their
// canonical offsets there in every caller's frame.
const (
	ArgWindow   = 1024
	ArgReserved = 128
)

// reservedWords is the size of the staging and marshaling areas carved out
// of the randomization space (indirect-call argument staging + syscall
// register marshaling).
const (
	stageWords = 8
	tempWords  = 16
)

// LocKind discriminates Loc.
type LocKind uint8

const (
	LocReg LocKind = iota
	LocStack
)

// Loc is a relocated location: a register or an SP-relative stack offset
// in the translated frame.
type Loc struct {
	Kind LocKind
	Reg  isa.Reg
	Off  int32
}

func (l Loc) String() string {
	if l.Kind == LocReg {
		return fmt.Sprintf("r%d", uint8(l.Reg))
	}
	return fmt.Sprintf("[sp+%#x]", l.Off)
}

// RegLoc and StackLoc are Loc constructors.
func RegLoc(r isa.Reg) Loc   { return Loc{Kind: LocReg, Reg: r} }
func StackLoc(off int32) Loc { return Loc{Kind: LocStack, Off: off} }

// PruneBoundaryMarshal, when set on the map (from the O1+ optimization
// "eliminate redundant caller/callee register save and restore"), limits
// call-boundary marshaling to registers with live values at boundaries:
// the callee-saved class and the return register.
//
// Map is the relocation map of one function on one ISA (Figure 2): the
// randomized calling convention, register reallocation, and stack slot
// coloring rules every translation of the function's blocks must follow.
type Map struct {
	Fn  *fatbin.FuncMeta
	ISA isa.Kind

	RandSpace    uint32
	NewFrameSize uint32 // Fn.FrameSize + RandSpace

	// OffTo relocates canonical frame offsets (relocatable slots, vreg
	// homes, the return-address word) to randomized offsets. Fixed
	// (address-taken) slots map to themselves.
	OffTo map[int32]int32
	// RegTo relocates architectural registers. Identity entries mean "not
	// relocated"; stack entries move the register into the frame.
	RegTo [16]Loc
	// FreeRegs are physical registers left unoccupied by RegTo — the
	// translator's temporaries.
	FreeRegs []isa.Reg
	// RetOff is the relocated return-address offset (OffTo of the
	// canonical return-address slot).
	RetOff int32
	// ArgOff[i] is the randomized calling convention: incoming argument i
	// lives at caller-frame offset ArgOff[i] (drawn from [0, ArgWindow)),
	// i.e. callee offset NewFrameSize+ArgOff[i].
	ArgOff []int32
	// StageOff is the canonical staging area used when the callee of an
	// indirect call is unknown at translation time; the VM relocates the
	// staged arguments at dispatch.
	StageOff int32
	// TempOff is the marshaling scratch area for instructions with
	// physical register requirements (syscalls, x86 div/shift).
	TempOff int32

	// EntropyBits is the average entropy per randomized parameter, and
	// Params the number of randomizable parameters, for the Table 2
	// accounting.
	EntropyBits float64
	Params      int

	// PruneBoundary mirrors Config.PruneBoundaryMarshal for the
	// translator.
	PruneBoundary bool
}

// ArgCalleeOff returns the callee-SP-relative offset of incoming argument i
// under the randomized convention.
func (m *Map) ArgCalleeOff(i int) int32 {
	return int32(m.NewFrameSize) + m.ArgOff[i]
}

// LocOfReg returns the relocated location of architectural register r.
func (m *Map) LocOfReg(r isa.Reg) Loc { return m.RegTo[r&0xF] }

// Relocated reports whether register r moved.
func (m *Map) Relocated(r isa.Reg) bool {
	l := m.RegTo[r&0xF]
	return !(l.Kind == LocReg && l.Reg == r)
}

// Randomizer builds relocation maps from a seedable entropy source. The
// production configuration would use a CSPRNG; experiments seed it for
// reproducibility.
type Randomizer struct {
	rng *rand.Rand
	cfg Config
}

// NewRandomizer returns a Randomizer with the given seed and config.
func NewRandomizer(seed int64, cfg Config) *Randomizer {
	return &Randomizer{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Config returns the randomizer's configuration.
func (r *Randomizer) Config() Config { return r.cfg }

// relocatableRegs lists the architectural registers PSR may relocate on
// ISA k. The stack pointer never moves; neither do ARM's LR/PC (the
// return path is relocated via the return-address slot instead), nor R12
// (the translator's address-legalization scratch).
func relocatableRegs(k isa.Kind) []isa.Reg {
	if k == isa.X86 {
		return []isa.Reg{isa.EAX, isa.ECX, isa.EDX, isa.EBX, isa.EBP, isa.ESI, isa.EDI}
	}
	return []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R3, isa.R4, isa.R5,
		isa.R6, isa.R7, isa.R8, isa.R9, isa.R10, isa.R11}
}

// x86SpecialRegs may host only themselves (or be spilled to stack): the
// translator's fixups for implicit-register instructions (div, variable
// shifts) rely on being able to reload them without displacing another
// architectural register's home.
var x86SpecialRegs = map[isa.Reg]bool{isa.EAX: true, isa.ECX: true, isa.EDX: true}

// BuildPair builds the relocation maps of fn for both ISAs with a common
// randomization-space size, as the PSR virtual machines translate each
// compulsory miss for both ISAs (paper §3.5).
func (r *Randomizer) BuildPair(fn *fatbin.FuncMeta) [2]*Map {
	var out [2]*Map
	for _, k := range isa.Kinds {
		out[k] = r.Build(fn, k)
	}
	return out
}

// Build constructs a fresh relocation map for fn on ISA k.
func (r *Randomizer) Build(fn *fatbin.FuncMeta, k isa.Kind) *Map {
	m := &Map{
		Fn:            fn,
		ISA:           k,
		RandSpace:     r.cfg.RandSpace(),
		OffTo:         make(map[int32]int32),
		PruneBoundary: r.cfg.PruneBoundaryMarshal,
	}
	m.NewFrameSize = fn.FrameSize + m.RandSpace

	// Carve reserved areas out of the top of the randomization space.
	resTop := int32(m.NewFrameSize)
	m.TempOff = resTop - 4*tempWords
	m.StageOff = m.TempOff - 4*stageWords
	lo := int32(ArgWindow) // below: outgoing-arg window
	hi := m.StageOff       // above: staging/temp areas
	if hi <= lo {
		panic("psr: randomization space too small")
	}

	// Fixed (address-taken) slots keep their canonical offsets; mark them
	// occupied so random choices avoid them. They must lie below
	// ArgReserved, where no caller's randomized argument can land.
	occupied := map[int32]bool{}
	for s, fixed := range fn.FixedSlot {
		if fixed {
			off := int32(fn.SlotOff(s))
			if off+4 > ArgReserved {
				panic(fmt.Sprintf("psr: %s: fixed slot at %#x exceeds the reserved window (%#x)",
					fn.Name, off, ArgReserved))
			}
			m.OffTo[off] = off
			occupied[off] = true
		}
	}

	// Stack slot coloring + return-address relocation: every relocatable
	// canonical offset gets a fresh random home in [lo, hi).
	span := hi - lo
	pick := func() int32 {
		for {
			off := lo + int32(r.rng.Intn(int(span)))
			// Word objects must not straddle a reserved boundary.
			if off+4 > hi {
				continue
			}
			conflict := false
			for d := int32(-3); d <= 3; d++ {
				if occupied[off+d] {
					conflict = true
					break
				}
			}
			if !conflict {
				occupied[off] = true
				return off
			}
		}
	}
	relocatable := fn.RelocatableOffsets()
	for _, off := range relocatable {
		m.OffTo[int32(off)] = pick()
	}
	m.RetOff = m.OffTo[int32(fn.RetAddrOff())]

	// Randomized calling convention: argument offsets within the caller's
	// outgoing window. Fixed (address-taken) slots keep canonical offsets
	// that may fall inside the window of any caller, so argument draws
	// avoid the canonical fixed-slot range of every function (a single
	// conservative reservation: the maximum canonical local extent).
	m.ArgOff = make([]int32, fn.NumArgs)
	argUsed := map[int32]bool{}
	for i := range m.ArgOff {
		for {
			off := ArgReserved + int32(r.rng.Intn(ArgWindow-ArgReserved-4))
			ok := true
			for d := int32(-3); d <= 3; d++ {
				if argUsed[off+d] {
					ok = false
					break
				}
			}
			if ok {
				argUsed[off] = true
				m.ArgOff[i] = off
				break
			}
		}
	}

	// Register reallocation. Identity-initialize, then relocate.
	//
	// The x86 "special" registers (EAX/ECX/EDX: implicit operands of div,
	// variable shifts, and the syscall number) may relocate to the stack
	// or stay put, but their physical registers never host a *different*
	// architectural register — this keeps the translator's implicit-
	// operand fixups free of displacement chains.
	//
	// Register-resident relocations (register bias / global register
	// cache) rotate a random subset of the remaining registers among
	// themselves; everything else moves to a random stack slot.
	for i := 0; i < 16; i++ {
		m.RegTo[i] = RegLoc(isa.Reg(i))
	}
	regs := relocatableRegs(k)
	var normal, special []isa.Reg
	for _, reg := range regs {
		if k == isa.X86 && x86SpecialRegs[reg] {
			special = append(special, reg)
		} else {
			normal = append(normal, reg)
		}
	}
	r.rng.Shuffle(len(normal), func(i, j int) { normal[i], normal[j] = normal[j], normal[i] })

	regResident := 0
	if r.cfg.RegisterBias {
		regResident = 3
	}
	if r.cfg.GlobalRegCache > regResident {
		regResident = r.cfg.GlobalRegCache
	}
	if regResident > len(normal) {
		regResident = len(normal)
	}
	resident := normal[:regResident]
	toStack := normal[regResident:]
	if len(resident) > 1 {
		for i, src := range resident {
			m.RegTo[src] = RegLoc(resident[(i+1)%len(resident)])
		}
	}
	for _, reg := range toStack {
		m.RegTo[reg] = StackLoc(pick())
	}
	// Special registers: without the global register cache, all but one
	// (randomly chosen) spill to stack — maximum entropy, heavy traffic.
	// With the cache (the -O2 optimization), the hottest registers — the
	// x86 scratch set is the hottest by construction — stay register-
	// resident: only one random special spills. Spilled specials free
	// their physical registers, guaranteeing the translator the two
	// temporaries its worst-case rewrites require (the second temporary
	// comes from the unrotated portion of the normal pool).
	if len(special) > 0 {
		keepN := 1
		if r.cfg.GlobalRegCache > 0 {
			// The global register cache keeps the hottest registers —
			// the scratch set, by construction of compiled code — in
			// registers; tight loops then run at native register speed.
			keepN = len(special)
		}
		kept := map[int]bool{}
		for len(kept) < keepN {
			kept[r.rng.Intn(len(special))] = true
		}
		for i, reg := range special {
			if !kept[i] {
				m.RegTo[reg] = StackLoc(pick())
			}
		}
	}

	// Free registers: physical registers nobody relocated into.
	hosts := map[isa.Reg]bool{}
	for i := 0; i < 16; i++ {
		if l := m.RegTo[i]; l.Kind == LocReg {
			hosts[l.Reg] = true
		}
	}
	for _, reg := range regs {
		if !hosts[reg] {
			m.FreeRegs = append(m.FreeRegs, reg)
		}
	}
	if k == isa.ARM {
		m.FreeRegs = append(m.FreeRegs, armTemp)
	}
	// Guarantee the translator's temporaries on x86: demote register-
	// resident relocations to the stack until enough physical registers
	// are free. Compiled code needs two temporaries in the worst case;
	// under the global register cache only one register is stack-relocated
	// at a time, so one temporary suffices (the translator degrades
	// gracefully for attacker-crafted operand shapes that would need more).
	minFree := 2
	if r.cfg.GlobalRegCache > 0 {
		minFree = 1
	}
	for k == isa.X86 && len(m.FreeRegs) < minFree {
		victim := toStackVictim(resident, special, m)
		m.RegTo[victim] = StackLoc(pick())
		hosts = map[isa.Reg]bool{}
		for i := 0; i < 16; i++ {
			if l := m.RegTo[i]; l.Kind == LocReg {
				hosts[l.Reg] = true
			}
		}
		m.FreeRegs = nil
		for _, reg := range regs {
			if !hosts[reg] {
				m.FreeRegs = append(m.FreeRegs, reg)
			}
		}
	}

	// Entropy accounting: each stack-relocated object draws from ~span
	// byte positions (13+ bits at 8 KiB); register-resident relocations
	// draw from the register file.
	m.Params = len(relocatable) + len(m.ArgOff)
	stackBits := math.Log2(float64(span))
	m.EntropyBits = stackBits
	return m
}

// armTemp is the ARM translator's dedicated temporary.
const armTemp = isa.R12

// toStackVictim picks a register-resident relocation to demote when the
// map would otherwise leave the translator with no temporary.
func toStackVictim(resident, special []isa.Reg, m *Map) isa.Reg {
	for _, r := range resident {
		if m.RegTo[r].Kind == LocReg {
			return r
		}
	}
	for _, r := range special {
		if m.RegTo[r].Kind == LocReg {
			return r
		}
	}
	panic("psr: no demotable register")
}
