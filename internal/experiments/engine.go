package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"hipstr/internal/telemetry"
)

// workers returns the effective pool bound.
func (s *Suite) workers() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runCell executes one independent unit of a driver's sweep, converting a
// panic into an error so a bad cell fails its experiment, not the process.
func runCell(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: cell %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// runCellSpanned runs one cell under a child span of the experiment's
// parent span, so parallel sweeps are visualizable cell by cell. With
// spans disabled the child is the inert zero Span.
func (s *Suite) runCellSpanned(fn func(int) error, i int) error {
	sp := s.expSpan.StartChild("cell")
	sp.SetDetail(fmt.Sprintf("cell %d", i))
	err := runCell(fn, i)
	if err != nil {
		sp.SetDetail(fmt.Sprintf("cell %d: failed", i))
	}
	sp.End()
	return err
}

// forEach runs fn(0..n-1) on a bounded worker pool. Cells must be
// independent and deterministic given their index; callers collect results
// by index and print after forEach returns, so output never depends on
// scheduling. The first error (lowest index) wins and stops dispatch;
// cancellation of ctx stops dispatch mid-sweep and forEach returns only
// after every in-flight cell has finished, so no goroutines outlive it.
func (s *Suite) forEach(ctx context.Context, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := s.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := s.runCellSpanned(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	idx := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := s.runCellSpanned(fn, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-cctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Result is one experiment's structured output: the rows/series the driver
// returned, plus run metadata. It is the JSON result artifact schema.
type Result struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Quick       bool    `json:"quick"`
	Parallel    int     `json:"parallel"`
	Seconds     float64 `json:"seconds"`
	Rows        any     `json:"rows"`
}

// Options configures an engine run.
type Options struct {
	// ResultsDir, when non-empty, receives one <name>.json Result
	// artifact per experiment (created if missing).
	ResultsDir string
	// ContinueOnError keeps running remaining experiments after a
	// failure; Run then returns the first error alongside the completed
	// results.
	ContinueOnError bool
}

// Run executes exps in registry order against s, timing each, publishing
// rows into s.Telemetry, and writing JSON artifacts per Options. The
// experiments themselves run sequentially — parallelism lives inside each
// driver's cell sweep — so printed output is stable.
func Run(ctx context.Context, s *Suite, exps []Experiment, opts Options) ([]Result, error) {
	if opts.ResultsDir != "" {
		if err := os.MkdirAll(opts.ResultsDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: results dir: %w", err)
		}
	}
	tel := s.Telemetry
	var results []Result
	var firstErr error
	for _, e := range exps {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		start := time.Now()
		if tel != nil {
			s.expSpan = tel.StartSpan("experiments", e.Name())
		}
		rows, err := runExperiment(ctx, e, s)
		if err != nil {
			s.expSpan.SetDetail(err.Error())
		}
		s.expSpan.End()
		s.expSpan = telemetry.Span{}
		secs := time.Since(start).Seconds()
		if err != nil {
			tel.Counter("bench.experiments.failed").Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", e.Name(), err)
			}
			if !opts.ContinueOnError {
				return results, firstErr
			}
			continue
		}
		res := Result{
			Name:        e.Name(),
			Description: e.Description(),
			Quick:       s.Quick,
			Parallel:    s.workers(),
			Seconds:     secs,
			Rows:        rows,
		}
		results = append(results, res)
		tel.Counter("bench.experiments.run").Inc()
		tel.Gauge("bench.seconds." + e.Name()).Set(secs)
		tel.Histogram("bench.experiment_seconds").Observe(secs)
		tel.PublishSeries("experiments."+e.Name(), seriesOf(rows))
		if opts.ResultsDir != "" {
			if werr := writeResult(opts.ResultsDir, res); werr != nil && firstErr == nil {
				firstErr = werr
			}
		}
	}
	return results, firstErr
}

// runExperiment invokes one driver with the same panic containment cells
// get: a panic anywhere in the driver fails that experiment, not the run.
func runExperiment(ctx context.Context, e Experiment, s *Suite) (rows any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: %s panicked: %v\n%s", e.Name(), r, debug.Stack())
		}
	}()
	return e.Run(ctx, s)
}

// writeResult writes one experiment's JSON artifact.
func writeResult(dir string, res Result) error {
	f, err := os.Create(filepath.Join(dir, res.Name+".json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// seriesOf flattens a driver's rows into telemetry series points: each
// element of a row slice becomes one point labeled by its first string
// field (falling back to the first field's value), with every numeric
// field — scalar, float slice, or float-valued map — exported under its
// lowercased name.
func seriesOf(rows any) []telemetry.SeriesPoint {
	v := reflect.ValueOf(rows)
	if !v.IsValid() {
		return nil
	}
	if v.Kind() != reflect.Slice {
		if p, ok := pointOf(v); ok {
			return []telemetry.SeriesPoint{p}
		}
		return nil
	}
	var pts []telemetry.SeriesPoint
	for i := 0; i < v.Len(); i++ {
		if p, ok := pointOf(v.Index(i)); ok {
			pts = append(pts, p)
		}
	}
	return pts
}

func pointOf(v reflect.Value) (telemetry.SeriesPoint, bool) {
	for v.Kind() == reflect.Pointer && !v.IsNil() {
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return telemetry.SeriesPoint{}, false
	}
	pt := telemetry.SeriesPoint{Fields: map[string]float64{}}
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f, fv := t.Field(i), v.Field(i)
		if !f.IsExported() {
			continue
		}
		name := strings.ToLower(f.Name)
		switch fv.Kind() {
		case reflect.String:
			if pt.Label == "" {
				pt.Label = fv.String()
			}
		case reflect.Bool:
			if fv.Bool() {
				pt.Fields[name] = 1
			} else {
				pt.Fields[name] = 0
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			pt.Fields[name] = float64(fv.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			pt.Fields[name] = float64(fv.Uint())
		case reflect.Float32, reflect.Float64:
			pt.Fields[name] = fv.Float()
		case reflect.Slice:
			if fv.Type().Elem().Kind() == reflect.Float64 {
				for j := 0; j < fv.Len(); j++ {
					pt.Fields[fmt.Sprintf("%s.%d", name, j)] = fv.Index(j).Float()
				}
			}
		case reflect.Map:
			if fv.Type().Elem().Kind() == reflect.Float64 {
				for _, k := range fv.MapKeys() {
					key := strings.ToLower(fmt.Sprint(k.Interface()))
					pt.Fields[name+"."+sanitizeLabel(key)] = fv.MapIndex(k).Float()
				}
			}
		case reflect.Struct:
			if nested, ok := pointOf(fv); ok {
				for fn, val := range nested.Fields {
					pt.Fields[name+"."+fn] = val
				}
			}
		}
	}
	if pt.Label == "" && t.NumField() > 0 {
		// Sweep-point rows (RAT size, cache KB, technique) label by
		// their leading field's value.
		first := v.Field(0)
		if s, ok := first.Interface().(fmt.Stringer); ok {
			pt.Label = s.String()
		} else {
			switch first.Kind() {
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
				pt.Label = fmt.Sprint(first.Int())
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				pt.Label = fmt.Sprint(first.Uint())
			}
		}
	}
	pt.Label = sanitizeLabel(pt.Label)
	if len(pt.Fields) == 0 {
		return telemetry.SeriesPoint{}, false
	}
	return pt, true
}

// sanitizeLabel keeps metric names clean: spaces and '+' become '-', and
// the dot stays reserved as the hierarchy separator.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '+', '.', '/':
			return '-'
		}
		return r
	}, s)
}
