package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	m := New()
	m.Map("data", 0x1000, 0x2000, PermRW)
	if err := m.WriteWord(0x1ffe, 0xDEADBEEF); err != nil { // straddles pages
		t.Fatal(err)
	}
	v, err := m.ReadWord(0x1ffe)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("got %#x", v)
	}
}

func TestPermissionFaults(t *testing.T) {
	m := New()
	m.Map("ro", 0x1000, 0x1000, PermR)
	if err := m.WriteWord(0x1000, 1); err == nil {
		t.Fatal("write to read-only page succeeded")
	}
	var f *Fault
	err := m.WriteWord(0x1000, 1)
	if !errors.As(err, &f) || !f.Mapped || f.Access != PermW {
		t.Fatalf("fault detail wrong: %v", err)
	}
	if _, err := m.ReadWord(0x5000); err == nil {
		t.Fatal("read of unmapped page succeeded")
	}
	if _, err := m.Fetch(0x1000, 4); err == nil {
		t.Fatal("fetch from non-executable page succeeded")
	}
}

func TestFetchStopsAtBoundary(t *testing.T) {
	m := New()
	m.Map("text", 0x1000, 0x1000, PermRX)
	// 0x2000.. is unmapped; a fetch near the end returns a short window.
	b, err := m.Fetch(0x1ffc, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4 {
		t.Fatalf("window len %d, want 4", len(b))
	}
}

func TestProtect(t *testing.T) {
	m := New()
	m.Map("cc", 0x1000, 0x1000, PermRW)
	m.Write(0x1000, []byte{1, 2, 3, 4})
	m.Protect(0x1000, 0x1000, PermRX)
	if err := m.WriteWord(0x1000, 9); err == nil {
		t.Fatal("write after protect succeeded")
	}
	if _, err := m.Fetch(0x1000, 4); err != nil {
		t.Fatalf("fetch after protect: %v", err)
	}
}

func TestRegions(t *testing.T) {
	m := New()
	m.Map("text", 0x8000, 0x1000, PermRX)
	m.Map("stack", 0x20000, 0x4000, PermRW)
	r, ok := m.Region("text")
	if !ok || r.Base != 0x8000 {
		t.Fatal("region lookup failed")
	}
	if got, ok := m.RegionAt(0x21000); !ok || got.Name != "stack" {
		t.Fatalf("RegionAt: %v %v", got, ok)
	}
	if _, ok := m.RegionAt(0x99999999); ok {
		t.Fatal("RegionAt matched nothing")
	}
	rs := m.Regions()
	if len(rs) != 2 || rs[0].Name != "text" || rs[1].Name != "stack" {
		t.Fatalf("Regions() = %v", rs)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Map("data", 0x1000, 0x1000, PermRW)
	m.WriteWord(0x1000, 42)
	c := m.Clone()
	c.WriteWord(0x1000, 99)
	v, _ := m.ReadWord(0x1000)
	if v != 42 {
		t.Fatalf("clone aliased original: %d", v)
	}
	cv, _ := c.ReadWord(0x1000)
	if cv != 99 {
		t.Fatalf("clone write lost: %d", cv)
	}
	if _, ok := c.Region("data"); !ok {
		t.Fatal("clone dropped regions")
	}
}

func TestWriteForceMapsPages(t *testing.T) {
	m := New()
	m.WriteForce(0x7000, []byte{9, 9, 9})
	// Pages created by WriteForce carry no permissions: reads fault.
	if _, err := m.ReadWord(0x7000); err == nil {
		t.Fatal("WriteForce should not grant read permission")
	}
	m.Protect(0x7000, 4, PermR)
	b := make([]byte, 3)
	if err := m.Read(0x7000, b); err != nil || !bytes.Equal(b, []byte{9, 9, 9}) {
		t.Fatalf("read back %v, %v", b, err)
	}
}

func TestReadWriteRoundTripQuick(t *testing.T) {
	m := New()
	m.Map("d", 0x10000, 0x10000, PermRW)
	f := func(off uint16, v uint32) bool {
		addr := 0x10000 + uint32(off)
		if addr+4 > 0x20000 {
			addr = 0x20000 - 4
		}
		if err := m.WriteWord(addr, v); err != nil {
			return false
		}
		got, err := m.ReadWord(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
