package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hipstr/internal/health"
)

func bundle(id int, rule string, openNS, resolveNS int64, peak float64, offenders ...string) health.Incident {
	inc := health.Incident{
		ID:       id,
		Rule:     health.Rule{Name: rule, Series: "fleet.respawns", Kind: health.KindRate, Threshold: 5},
		Severity: "page",
		OpenedNS: openNS, ResolvedNS: resolveNS,
		Value: peak / 2, Peak: peak,
		Window: []health.Point{{TimeNS: openNS, Value: peak}},
	}
	for _, id := range offenders {
		inc.Offenders = append(inc.Offenders, health.Offender{ID: id, Workload: "libquantum", Score: 3})
	}
	return inc
}

func writeBundle(t *testing.T, dir string, inc health.Incident) {
	t.Helper()
	buf, err := json.MarshalIndent(inc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "incident-001-"+inc.Rule.Name+".json")
	if inc.ID != 1 {
		name = filepath.Join(dir, "incident-002-"+inc.Rule.Name+".json")
	}
	if err := os.WriteFile(name, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeIncidentBundles(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, bundle(1, "respawn-storm", 1e9, 4e9, 120, "t7", "t3"))
	writeBundle(t, dir, bundle(2, "latency-slo-burn", 2e9, 0, 0.8))

	var b strings.Builder
	if err := summarizeIncidents(dir, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"2 incidents", "1 resolved, 1 open",
		"respawn-storm", "resolved", "3s", "120.0", "t7(libquantum 3) t3(libquantum 3)",
		"latency-slo-burn", "open",
		"1 window points",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestSummarizeFromJSONL: without per-incident bundles the append-only
// log is used, and the last record per ID (the resolve rewrite) wins.
func TestSummarizeFromJSONL(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "incidents.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, inc := range []health.Incident{
		bundle(1, "respawn-storm", 1e9, 0, 60, "t1"),   // open record
		bundle(1, "respawn-storm", 1e9, 5e9, 90, "t1"), // resolve record supersedes
	} {
		line, _ := json.Marshal(inc)
		f.Write(append(line, '\n'))
	}
	f.Close()

	var b strings.Builder
	if err := summarizeIncidents(dir, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "1 incidents") || !strings.Contains(out, "incidents.jsonl") {
		t.Fatalf("jsonl source line:\n%s", out)
	}
	if !strings.Contains(out, "resolved") || !strings.Contains(out, "90.0") || !strings.Contains(out, "4s") {
		t.Fatalf("resolve record did not win:\n%s", out)
	}
}

func TestSummarizeEmptyDir(t *testing.T) {
	var b strings.Builder
	if err := summarizeIncidents(t.TempDir(), &b); err == nil ||
		!strings.Contains(err.Error(), "no incident") {
		t.Fatalf("empty dir error: %v", err)
	}
}
