// Package perf implements the cycle-approximate timing model of the
// heterogeneous-ISA CMP: the two cores of Table 1 (a low-power in-order-ish
// ARM modeled after the Cortex-A9 and a high-performance x86 modeled after
// the Xeon), with set-associative instruction and data caches, a gshare
// branch predictor, functional-unit latencies whose exposure scales with
// ROB depth, and the 1-cycle Return Address Table lookup penalty of §5.1.
//
// The model attaches to a running machine as an execution observer and
// charges cycles per event. It is calibrated for *relative* comparisons
// (native vs PSR optimization levels, HIPStR vs Isomeron), which is what
// every performance figure in the paper reports.
package perf

import (
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/telemetry"
)

// CacheConfig describes one level-1 cache.
type CacheConfig struct {
	SizeKB  int
	Ways    int
	LineB   int
	HitLat  float64
	MissLat float64
}

// CoreConfig mirrors one row of Table 1.
type CoreConfig struct {
	Name       string
	FreqGHz    float64
	FetchWidth int
	IssueWidth int
	ROBSize    int
	LQSize     int
	SQSize     int
	IntALU     int
	IntMulDiv  int
	FPALU      int
	ICache     CacheConfig
	DCache     CacheConfig
	// MispredictPenalty is the pipeline refill cost in cycles.
	MispredictPenalty float64
	// RATLookup is the return-address-table translation penalty (§5.1).
	RATLookup float64
}

// ARMCore returns the Cortex-A9-like core of Table 1.
func ARMCore() CoreConfig {
	return CoreConfig{
		Name: "arm", FreqGHz: 2.0,
		FetchWidth: 2, IssueWidth: 4, ROBSize: 20,
		LQSize: 16, SQSize: 16,
		IntALU: 2, IntMulDiv: 1, FPALU: 2,
		ICache:            CacheConfig{SizeKB: 32, Ways: 2, LineB: 64, HitLat: 1, MissLat: 18},
		DCache:            CacheConfig{SizeKB: 32, Ways: 2, LineB: 64, HitLat: 2, MissLat: 20},
		MispredictPenalty: 9,
		RATLookup:         1,
	}
}

// X86Core returns the Xeon-like core of Table 1.
func X86Core() CoreConfig {
	return CoreConfig{
		Name: "x86", FreqGHz: 3.3,
		FetchWidth: 4, IssueWidth: 4, ROBSize: 128,
		LQSize: 48, SQSize: 96,
		IntALU: 6, IntMulDiv: 1, FPALU: 2,
		ICache:            CacheConfig{SizeKB: 32, Ways: 2, LineB: 64, HitLat: 1, MissLat: 16},
		DCache:            CacheConfig{SizeKB: 32, Ways: 2, LineB: 64, HitLat: 2, MissLat: 18},
		MispredictPenalty: 15,
		RATLookup:         1,
	}
}

// CoreFor returns the core model matching ISA k.
func CoreFor(k isa.Kind) CoreConfig {
	if k == isa.X86 {
		return X86Core()
	}
	return ARMCore()
}

// cacheSim is a set-associative cache with LRU replacement.
type cacheSim struct {
	cfg      CacheConfig
	sets     int
	lineBits uint
	tags     [][]uint32
	lru      [][]uint64
	tick     uint64

	Hits, Misses uint64
}

func newCacheSim(cfg CacheConfig) *cacheSim {
	lines := cfg.SizeKB * 1024 / cfg.LineB
	sets := lines / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	lb := uint(0)
	for 1<<lb < cfg.LineB {
		lb++
	}
	c := &cacheSim{cfg: cfg, sets: sets, lineBits: lb}
	c.tags = make([][]uint32, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint32, cfg.Ways)
		c.lru[i] = make([]uint64, cfg.Ways)
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint32(0)
		}
	}
	return c
}

// access touches addr and returns the latency.
func (c *cacheSim) access(addr uint32) float64 {
	c.tick++
	line := addr >> c.lineBits
	set := int(line) % c.sets
	tag := line
	ways := c.tags[set]
	for w, t := range ways {
		if t == tag {
			c.lru[set][w] = c.tick
			c.Hits++
			return c.cfg.HitLat
		}
	}
	c.Misses++
	victim, oldest := 0, c.lru[set][0]
	for w := 1; w < len(ways); w++ {
		if c.lru[set][w] < oldest {
			victim, oldest = w, c.lru[set][w]
		}
	}
	ways[victim] = tag
	c.lru[set][victim] = c.tick
	return c.cfg.MissLat
}

// predictor is a gshare-style branch direction predictor.
type predictor struct {
	table   []uint8
	history uint32

	Lookups, Mispredicts uint64
}

func newPredictor(bits int) *predictor {
	return &predictor{table: make([]uint8, 1<<bits)}
}

func (p *predictor) predict(pc uint32) bool {
	idx := (pc ^ p.history) & uint32(len(p.table)-1)
	return p.table[idx] >= 2
}

func (p *predictor) update(pc uint32, taken bool) bool {
	p.Lookups++
	idx := (pc ^ p.history) & uint32(len(p.table)-1)
	pred := p.table[idx] >= 2
	if taken && p.table[idx] < 3 {
		p.table[idx]++
	}
	if !taken && p.table[idx] > 0 {
		p.table[idx]--
	}
	p.history = p.history<<1 | b2u(taken)
	mis := pred != taken
	if mis {
		p.Mispredicts++
	}
	return mis
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Counts aggregates instruction-mix statistics.
type Counts struct {
	Instrs   uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
	Calls    uint64
	Returns  uint64
	MulDiv   uint64
}

// Model accumulates cycles for one core.
type Model struct {
	Core   CoreConfig
	ICache *cacheSim
	DCache *cacheSim
	Bpred  *predictor

	Cycles float64
	Counts Counts

	// RATEnabled charges the return-address translation penalty on every
	// return (the modified return macro-op).
	RATEnabled bool

	tel       *telemetry.Telemetry
	histPhase *telemetry.Histogram

	// The pending conditional branch is recorded by value, not by *Inst:
	// the interpreter's block cache recycles evicted instruction storage,
	// so hooks must not hold pointers into a block across calls.
	lastJccValid  bool
	lastJccTarget uint32
	lastJccAddr   uint32
	prevExec      machine.ExecHook
}

// NewModel builds a timing model for the given core.
func NewModel(core CoreConfig) *Model {
	return &Model{
		Core:   core,
		ICache: newCacheSim(core.ICache),
		DCache: newCacheSim(core.DCache),
		Bpred:  newPredictor(12),
	}
}

// BindTelemetry publishes the model's cycle accounting through t: a
// collector mirrors the per-core counters at snapshot time (the model's
// fields stay the canonical per-instruction accumulators — no atomics in
// the observe path), and the measurement loop feeds a per-phase cycle
// histogram plus phase trace events.
func (mo *Model) BindTelemetry(t *telemetry.Telemetry) {
	if t == nil || t.Reg == nil {
		return
	}
	mo.tel = t
	r := t.Reg
	name := mo.Core.Name
	mo.histPhase = r.Histogram("perf." + name + ".phase_cycles")
	r.RegisterCollector(func() {
		r.Gauge("perf." + name + ".cycles").Set(mo.Cycles)
		r.Gauge("perf." + name + ".cpi").Set(mo.CPI())
		r.Counter("perf." + name + ".instrs").Set(mo.Counts.Instrs)
		r.Counter("perf." + name + ".loads").Set(mo.Counts.Loads)
		r.Counter("perf." + name + ".stores").Set(mo.Counts.Stores)
		r.Counter("perf." + name + ".branches").Set(mo.Counts.Branches)
		r.Counter("perf." + name + ".calls").Set(mo.Counts.Calls)
		r.Counter("perf." + name + ".returns").Set(mo.Counts.Returns)
		r.Counter("perf." + name + ".muldiv").Set(mo.Counts.MulDiv)
		r.Counter("perf." + name + ".icache.hits").Set(mo.ICache.Hits)
		r.Counter("perf." + name + ".icache.misses").Set(mo.ICache.Misses)
		r.Counter("perf." + name + ".dcache.hits").Set(mo.DCache.Hits)
		r.Counter("perf." + name + ".dcache.misses").Set(mo.DCache.Misses)
		r.Counter("perf." + name + ".bpred.lookups").Set(mo.Bpred.Lookups)
		r.Counter("perf." + name + ".bpred.mispredicts").Set(mo.Bpred.Mispredicts)
	})
}

// Attach chains the model onto the machine's execution hook. Call Detach
// (or overwrite OnExec) to stop observing.
func (mo *Model) Attach(m *machine.Machine) {
	mo.prevExec = m.OnExec
	m.OnExec = func(mm *machine.Machine, in *isa.Inst) {
		if mo.prevExec != nil {
			mo.prevExec(mm, in)
		}
		mo.Observe(mm, in)
	}
}

// latencyExposure scales functional-unit latency by how little the ROB can
// hide: deep out-of-order windows overlap long-latency operations.
func (mo *Model) latencyExposure() float64 {
	e := 24.0 / float64(mo.Core.ROBSize)
	if e > 1 {
		e = 1
	}
	return e
}

// Observe charges cycles for one executed instruction.
func (mo *Model) Observe(m *machine.Machine, in *isa.Inst) {
	c := &mo.Core
	mo.Counts.Instrs++

	// Resolve the previous conditional branch now that the outcome is
	// visible (the next instruction's address tells the direction).
	if mo.lastJccValid {
		taken := in.Addr == mo.lastJccTarget
		if mo.Bpred.update(mo.lastJccAddr, taken) {
			mo.Cycles += c.MispredictPenalty
		}
		mo.lastJccValid = false
	}

	// Issue bandwidth.
	mo.Cycles += 1.0 / float64(c.IssueWidth)

	// Instruction fetch: one I-cache access per line touched.
	lat := mo.ICache.access(in.Addr)
	if lat > mo.ICache.cfg.HitLat {
		mo.Cycles += lat
	} else {
		mo.Cycles += lat / float64(c.FetchWidth) / 4
	}

	exp := mo.latencyExposure()
	switch in.Op {
	case isa.OpMul:
		mo.Counts.MulDiv++
		mo.Cycles += 3 * exp / float64(c.IntMulDiv)
	case isa.OpDiv:
		mo.Counts.MulDiv++
		mo.Cycles += 12 * exp / float64(c.IntMulDiv)
	case isa.OpJcc:
		mo.Counts.Branches++
		mo.Bpred.predict(in.Addr)
		mo.lastJccValid = true
		mo.lastJccTarget = in.Target
		mo.lastJccAddr = in.Addr
	case isa.OpCall, isa.OpCallI:
		mo.Counts.Calls++
		mo.Cycles += 1 * exp
	case isa.OpRet, isa.OpBx:
		if in.Op == isa.OpRet || in.Dst.IsReg(isa.LR) {
			mo.Counts.Returns++
			if mo.RATEnabled {
				mo.Cycles += mo.Core.RATLookup
			}
		}
	}

	// Data accesses.
	mo.observeMem(m, in)
}

func (mo *Model) observeMem(m *machine.Machine, in *isa.Inst) {
	charge := func(o isa.Operand, store bool) {
		if o.Kind != isa.OpdMem {
			return
		}
		ea := effectiveAddr(m, o.Mem)
		lat := mo.DCache.access(ea)
		exp := mo.latencyExposure()
		if store {
			mo.Counts.Stores++
			// Stores retire through the store queue; latency mostly hidden.
			mo.Cycles += lat * exp * 0.3
		} else {
			mo.Counts.Loads++
			mo.Cycles += lat * exp
		}
	}
	switch in.Op {
	case isa.OpMov, isa.OpLoad, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpCmp, isa.OpTest, isa.OpMul, isa.OpDiv, isa.OpShl,
		isa.OpShr, isa.OpNeg, isa.OpNot, isa.OpInc, isa.OpDec:
		charge(in.Src, false)
		if in.Op == isa.OpMov || in.Op == isa.OpLoad {
			charge(in.Dst, true)
		} else {
			// Read-modify-write memory destination.
			if in.Dst.Kind == isa.OpdMem {
				charge(in.Dst, false)
				charge(in.Dst, true)
			}
		}
	case isa.OpStore:
		charge(in.Dst, true)
	case isa.OpPush:
		charge(in.Src, false)
		mo.Counts.Stores++
		mo.Cycles += mo.DCache.access(m.SP()-4) * mo.latencyExposure() * 0.3
	case isa.OpPop, isa.OpRet, isa.OpLeave:
		mo.Counts.Loads++
		mo.Cycles += mo.DCache.access(m.SP()) * mo.latencyExposure()
	case isa.OpPushM, isa.OpPopM:
		n := 0
		for r := 0; r < 16; r++ {
			if in.RegMask&(1<<r) != 0 {
				n++
			}
		}
		mo.Cycles += float64(n) * mo.DCache.access(m.SP()) * mo.latencyExposure() * 0.5
	}
}

func effectiveAddr(m *machine.Machine, r isa.MemRef) uint32 {
	var a uint32 = uint32(r.Disp)
	if r.HasBase {
		a += m.Regs[r.Base]
	}
	if r.HasIndex {
		s := uint32(r.Scale)
		if s == 0 {
			s = 1
		}
		a += m.Regs[r.Index] * s
	}
	return a
}

// CPI returns cycles per instruction so far.
func (mo *Model) CPI() float64 {
	if mo.Counts.Instrs == 0 {
		return 0
	}
	return mo.Cycles / float64(mo.Counts.Instrs)
}

// Seconds converts accumulated cycles to wall time on this core.
func (mo *Model) Seconds() float64 {
	return mo.Cycles / (mo.Core.FreqGHz * 1e9)
}

// Snapshot captures the current cycle/instruction counters.
type Snapshot struct {
	Cycles float64
	Instrs uint64
}

// Snap returns the current counters.
func (mo *Model) Snap() Snapshot {
	return Snapshot{Cycles: mo.Cycles, Instrs: mo.Counts.Instrs}
}

// Since returns cycles and instructions accumulated after s.
func (mo *Model) Since(s Snapshot) (float64, uint64) {
	return mo.Cycles - s.Cycles, mo.Counts.Instrs - s.Instrs
}
