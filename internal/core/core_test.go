package core_test

import (
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/core"
	"hipstr/internal/isa"
	"hipstr/internal/testprogs"
)

const maxSteps = 20_000_000

func TestHIPStRRunsPrograms(t *testing.T) {
	for name, tc := range testprogs.All() {
		t.Run(name, func(t *testing.T) {
			bin, err := compiler.Compile(tc.Mod)
			if err != nil {
				t.Fatal(err)
			}
			s, err := core.New(bin, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(maxSteps); err != nil {
				t.Fatal(err)
			}
			if !s.Exited() || s.ExitCode() != tc.Exit {
				t.Fatalf("exit %d (exited=%v), want %d", s.ExitCode(), s.Exited(), tc.Exit)
			}
		})
	}
}

func TestPhaseMigrationSwitchesISA(t *testing.T) {
	bin, err := compiler.Compile(testprogs.Fib(15))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	s, err := core.New(bin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := s.Active()
	// Run a little, request migration, keep running.
	if _, err := s.Run(500); err != nil {
		t.Fatal(err)
	}
	s.RequestPhaseMigration()
	if _, err := s.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if !s.Exited() || s.ExitCode() != 610 {
		t.Fatalf("fib(15) exit %d", s.ExitCode())
	}
	if s.Migrations() == 0 {
		t.Fatal("phase migration never happened")
	}
	if s.Active() == start && s.Migrations()%2 == 1 {
		t.Fatal("odd number of migrations but ISA unchanged")
	}
}

func TestPSRModeNeverMigrates(t *testing.T) {
	bin, err := compiler.Compile(testprogs.GlobalTable())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModePSR
	s, err := core.New(bin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if s.Migrations() != 0 {
		t.Fatalf("PSR mode migrated %d times", s.Migrations())
	}
	if s.Active() != isa.X86 {
		t.Fatal("ISA changed in PSR mode")
	}
}

func TestRespawnReRandomizesAndRuns(t *testing.T) {
	bin, err := compiler.Compile(testprogs.SumLoop(10))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(bin, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Respawn(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(maxSteps); err != nil {
			t.Fatal(err)
		}
		if s.ExitCode() != 45 {
			t.Fatalf("respawn %d: exit %d", i, s.ExitCode())
		}
	}
	if s.Respawns() != 3 {
		t.Fatalf("respawn count %d", s.Respawns())
	}
}
