package health

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hipstr/internal/obsrv"
	"hipstr/internal/telemetry"
)

// fakeTenants is a canned obsrv.TenantSource for bundle-capture tests.
type fakeTenants struct{ list []obsrv.TenantInfo }

func (f *fakeTenants) TenantList() []obsrv.TenantInfo { return f.list }
func (f *fakeTenants) TenantSnapshot(id string) (obsrv.TenantInfo, telemetry.Snapshot, bool) {
	for _, ti := range f.list {
		if ti.ID == id {
			return ti, telemetry.Snapshot{}, true
		}
	}
	return obsrv.TenantInfo{}, telemetry.Snapshot{}, false
}

func testTenants() *fakeTenants {
	return &fakeTenants{list: []obsrv.TenantInfo{
		{ID: "t1", Workload: "libquantum", State: "running", Fields: map[string]float64{"respawns": 2, "steps": 100}},
		{ID: "t2", Workload: "bzip2", State: "running", Fields: map[string]float64{"respawns": 7, "steps": 50}},
		{ID: "t3", Workload: "gobmk", State: "done", Fields: map[string]float64{"respawns": 0, "steps": 900}},
		{ID: "t4", Workload: "mcf", State: "running", Fields: map[string]float64{"respawns": 2, "steps": 400}},
	}}
}

func TestIncidentBundleCapture(t *testing.T) {
	tel := telemetry.New()
	for i := 0; i < 5; i++ {
		tel.Emit(telemetry.Event{Type: telemetry.EvRespawn, Detail: "tenant"})
	}
	rec := NewRecorder(RecorderConfig{
		Events:     tel.Trace.Tail,
		Tenants:    testTenants(),
		OffenderK:  3,
		Profile:    func() (string, bool) { return "top table", true },
		HostConfig: map[string]any{"guests": 4},
	})
	h := NewHistory(16, 8)
	for i := 0; i < 5; i++ {
		h.Append(int64(i)*secNS, snap(map[string]uint64{"fleet.respawns": uint64(i * 100)}, nil))
	}
	rule := Rule{Name: "storm", Series: "fleet.respawns", Kind: KindRate,
		Threshold: 50, Window: 10 * time.Second, OffenderKey: "respawns"}

	inc := rec.Open(rule, 99, h, 4*secNS)

	if len(inc.Window) != 5 {
		t.Fatalf("window captured %d points, want 5", len(inc.Window))
	}
	if len(inc.Events) != 5 {
		t.Fatalf("captured %d events, want 5", len(inc.Events))
	}
	// Offenders: respawns desc, zero-score t3 excluded, K=3 keeps all
	// nonzero; ties (t1/t4 at 2) break by steps desc.
	if len(inc.Offenders) != 3 {
		t.Fatalf("offenders: %+v", inc.Offenders)
	}
	if inc.Offenders[0].ID != "t2" || inc.Offenders[1].ID != "t4" || inc.Offenders[2].ID != "t1" {
		t.Fatalf("offender order: %s %s %s", inc.Offenders[0].ID, inc.Offenders[1].ID, inc.Offenders[2].ID)
	}
	if inc.ProfileTop != "top table" {
		t.Fatalf("profile top: %q", inc.ProfileTop)
	}
	var cfg map[string]any
	if err := json.Unmarshal(inc.Config, &cfg); err != nil || cfg["guests"] != float64(4) {
		t.Fatalf("config: %s (%v)", inc.Config, err)
	}
}

func TestRecorderBounded(t *testing.T) {
	rec := NewRecorder(RecorderConfig{MaxIncidents: 4})
	h := NewHistory(4, 4)
	rule := Rule{Name: "r", Series: "g", Kind: KindThreshold, Threshold: 1}
	var open *Incident
	for i := 0; i < 10; i++ {
		inc := rec.Open(rule, float64(i), h, int64(i))
		if i == 7 {
			open = inc // leave #8 open
		} else {
			rec.Resolve(inc, int64(i)+1)
		}
	}
	opened, resolved, stored := rec.Counts()
	if opened != 10 || resolved != 9 || stored != 4 {
		t.Fatalf("counts: opened=%d resolved=%d stored=%d", opened, resolved, stored)
	}
	// Eviction drops oldest resolved first: the open incident survives even
	// though older stored incidents were evicted around it.
	if _, ok := rec.Incident(open.ID); !ok {
		t.Fatal("open incident was evicted")
	}
}

func TestRecorderArtifacts(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(RecorderConfig{Dir: dir, Tenants: testTenants()})
	h := NewHistory(8, 4)
	h.Append(0, snap(nil, map[string]float64{"g": 50}))
	rule := Rule{Name: "hot-cache", Series: "g", Kind: KindThreshold, Threshold: 1, OffenderKey: "respawns"}
	inc := rec.Open(rule, 50, h, secNS)
	rec.Resolve(inc, 3*secNS)
	if err := rec.DumpErr(); err != nil {
		t.Fatal(err)
	}

	// The per-incident bundle is rewritten at resolve.
	buf, err := os.ReadFile(filepath.Join(dir, "incident-001-hot-cache.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got Incident
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.ResolvedNS != 3*secNS || got.Rule.Name != "hot-cache" || len(got.Offenders) == 0 {
		t.Fatalf("bundle: %+v", got)
	}

	// incidents.jsonl appends one record per transition: open + resolve.
	lines, err := os.ReadFile(filepath.Join(dir, "incidents.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs := strings.Split(strings.TrimSpace(string(lines)), "\n")
	if len(recs) != 2 {
		t.Fatalf("jsonl has %d records, want 2", len(recs))
	}
	var first, last Incident
	if err := json.Unmarshal([]byte(recs[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(recs[1]), &last); err != nil {
		t.Fatal(err)
	}
	if first.ResolvedNS != 0 || last.ResolvedNS != 3*secNS {
		t.Fatalf("jsonl transitions: open=%+v resolve=%+v", first, last)
	}
}

func TestIncidentEventsEmitted(t *testing.T) {
	var events []telemetry.Event
	rec := NewRecorder(RecorderConfig{Emit: func(e telemetry.Event) { events = append(events, e) }})
	h := NewHistory(4, 4)
	rule := Rule{Name: "r", Series: "g", Kind: KindThreshold, Threshold: 1}
	inc := rec.Open(rule, 5, h, 0)
	rec.Resolve(inc, secNS)
	if len(events) != 2 {
		t.Fatalf("emitted %d events, want 2", len(events))
	}
	if !strings.Contains(events[0].Detail, "incident-open #1 r") ||
		!strings.Contains(events[1].Detail, "incident-resolve #1 r") {
		t.Fatalf("event details: %q / %q", events[0].Detail, events[1].Detail)
	}
}

func TestIncidentHandler(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Tenants: testTenants()})
	h := NewHistory(8, 4)
	h.Append(0, snap(nil, map[string]float64{"g": 50}))
	rule := Rule{Name: "r", Series: "g", Kind: KindThreshold, Threshold: 1, OffenderKey: "respawns"}
	rec.Open(rule, 50, h, secNS)
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := json.NewDecoder(resp.Body).Token(); err == nil {
			// re-read fully below
		}
		return resp.StatusCode, b.String()
	}

	resp, err := srv.Client().Get(srv.URL + "/incidents")
	if err != nil {
		t.Fatal(err)
	}
	var list IncidentList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Open != 1 || len(list.Incidents) != 1 || list.Incidents[0].State != "open" {
		t.Fatalf("list: %+v", list)
	}
	if list.Incidents[0].Offenders == 0 {
		t.Fatal("summary lost the offender count")
	}

	resp, err = srv.Client().Get(srv.URL + "/incidents/1")
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	if err := json.NewDecoder(resp.Body).Decode(&inc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if inc.ID != 1 || len(inc.Offenders) == 0 || len(inc.Window) == 0 {
		t.Fatalf("bundle: %+v", inc)
	}

	if code, _ := get("/incidents/99"); code != 404 {
		t.Fatalf("unknown id: %d, want 404", code)
	}
	if code, _ := get("/incidents/xyz"); code != 400 {
		t.Fatalf("bad id: %d, want 400", code)
	}
}

func TestMonitorSelfTelemetry(t *testing.T) {
	tel := telemetry.New()
	mon := NewMonitor(Config{
		Rules:     []Rule{{Name: "r", Series: "g", Kind: KindThreshold, Threshold: 10}},
		Telemetry: tel,
	})
	mon.Observe(0, snap(nil, map[string]float64{"g": 50}))
	if mon.OpenIncidents() != 1 {
		t.Fatalf("open=%d, want 1", mon.OpenIncidents())
	}
	s := tel.Snapshot()
	if s.Counters["health.incidents.opened"] != 1 || s.Gauges["health.incidents.open"] != 1 {
		t.Fatalf("self telemetry: %+v", s.Counters)
	}
	if s.Counters["health.samples"] != 1 {
		t.Fatalf("health.samples=%d", s.Counters["health.samples"])
	}
	// The incident-open event reached the shared tracer.
	found := false
	for _, e := range tel.Trace.Tail(0) {
		if strings.Contains(e.Detail, "incident-open") {
			found = true
		}
	}
	if !found {
		t.Fatal("incident-open event not emitted to telemetry")
	}
}
