package machine_test

// Differential semantics tests for the fused/batched dispatch path: every
// testprogs workload is executed twice on each ISA — once through
// Machine.Run (superinstruction fusion, block-batched timing) and once
// through per-instruction Machine.Step — and the two trajectories must
// agree exactly: registers, flags, PC, Steps, halt state at every sync
// point, and memory, syscall trace, and exit status at the end. A second
// test attaches the cycle-approximate timing model to both and requires
// bit-identical float64 cycle totals, proving the batched commit replays
// the exact observation sequence. Chunk sizes are primes so Run budgets
// expire at every offset within blocks, exercising the exact-mode tail.

import (
	"fmt"
	"sync"
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/mem"
	"hipstr/internal/perf"
	"hipstr/internal/proc"
	"hipstr/internal/testprogs"
)

// diffChunks are the Run step budgets between sync points. Primes (and 1)
// make budget boundaries land at every block offset.
var diffChunks = []uint64{1, 2, 3, 7, 13, 97, 1009}

const diffMaxSteps = 2_000_000

// compileAll compiles every testprogs workload once.
func compileAll(t *testing.T) map[string]*fatbin.Binary {
	t.Helper()
	bins := make(map[string]*fatbin.Binary)
	for name, tp := range testprogs.All() {
		bin, err := compiler.Compile(tp.Mod)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		bins[name] = bin
	}
	return bins
}

// stepN single-steps p's machine n times or until it halts.
func stepN(t *testing.T, p *proc.Process, n uint64) {
	t.Helper()
	for i := uint64(0); i < n && !p.M.Halted; i++ {
		if err := p.M.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
}

// requireSameState compares the full architectural state of both machines.
func requireSameState(t *testing.T, label string, ref, fus *machine.Machine) {
	t.Helper()
	if ref.State != fus.State {
		t.Fatalf("%s: state diverged\n step: %+v\n  run: %+v", label, ref.State, fus.State)
	}
}

// requireSameMemory compares every named region byte for byte.
func requireSameMemory(t *testing.T, label string, ref, fus *mem.Memory) {
	t.Helper()
	for _, r := range ref.Regions() {
		a := make([]byte, r.Size)
		b := make([]byte, r.Size)
		if err := ref.Read(r.Base, a); err != nil {
			t.Fatalf("%s: read %s from step image: %v", label, r.Name, err)
		}
		if err := fus.Read(r.Base, b); err != nil {
			t.Fatalf("%s: read %s from run image: %v", label, r.Name, err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: region %s differs at %#x: step=%#x run=%#x",
					label, r.Name, r.Base+uint32(i), a[i], b[i])
			}
		}
	}
}

// runDifferential executes one workload on one ISA through both dispatch
// paths, asserting identical trajectories. It returns the step count so
// callers can sanity-check the workload actually ran.
func runDifferential(t *testing.T, bin *fatbin.Binary, k isa.Kind, chunk uint64) uint64 {
	t.Helper()
	ref, err := proc.New(bin, k)
	if err != nil {
		t.Fatal(err)
	}
	fus, err := proc.New(bin, k)
	if err != nil {
		t.Fatal(err)
	}
	for !fus.M.Halted && fus.M.Steps < diffMaxSteps {
		n, err := fus.Run(chunk)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		stepN(t, ref, n)
		requireSameState(t, fmt.Sprintf("after %d steps", fus.M.Steps), ref.M, fus.M)
		if n == 0 && !fus.M.Halted {
			t.Fatal("run made no progress")
		}
	}
	if !fus.M.Halted {
		t.Fatalf("workload did not halt within %d steps", diffMaxSteps)
	}
	requireSameMemory(t, "at halt", ref.Mem, fus.Mem)
	if ref.Exited != fus.Exited || ref.ExitCode != fus.ExitCode {
		t.Fatalf("exit diverged: step=(%v,%d) run=(%v,%d)",
			ref.Exited, ref.ExitCode, fus.Exited, fus.ExitCode)
	}
	if len(ref.Trace) != len(fus.Trace) {
		t.Fatalf("trace length diverged: step=%d run=%d", len(ref.Trace), len(fus.Trace))
	}
	for i := range ref.Trace {
		if ref.Trace[i] != fus.Trace[i] {
			t.Fatalf("trace[%d] diverged: step=%d run=%d", i, ref.Trace[i], fus.Trace[i])
		}
	}
	return fus.M.Steps
}

// TestFusedRunMatchesStep is the headline differential test: fused Run vs
// per-instruction Step over every workload, both ISAs, all chunk sizes.
func TestFusedRunMatchesStep(t *testing.T) {
	bins := compileAll(t)
	for name, tp := range testprogs.All() {
		for _, k := range isa.Kinds {
			t.Run(fmt.Sprintf("%s/%s", name, k), func(t *testing.T) {
				for _, chunk := range diffChunks {
					steps := runDifferential(t, bins[name], k, chunk)
					if steps == 0 {
						t.Fatal("workload executed zero steps")
					}
				}
				_ = tp
			})
		}
	}
}

// TestBatchedTimingBitIdentical attaches the perf model to both dispatch
// paths and requires the accumulated float64 cycle count — and every
// event counter — to be equal to the last bit. This is the contract that
// lets every experiment table stay byte-identical under fusion.
func TestBatchedTimingBitIdentical(t *testing.T) {
	bins := compileAll(t)
	for name := range bins {
		for _, k := range isa.Kinds {
			t.Run(fmt.Sprintf("%s/%s", name, k), func(t *testing.T) {
				ref, err := proc.New(bins[name], k)
				if err != nil {
					t.Fatal(err)
				}
				fus, err := proc.New(bins[name], k)
				if err != nil {
					t.Fatal(err)
				}
				mRef := perf.NewModel(perf.CoreFor(k))
				mRef.Attach(ref.M)
				mFus := perf.NewModel(perf.CoreFor(k))
				mFus.Attach(fus.M)
				for !fus.M.Halted && fus.M.Steps < diffMaxSteps {
					n, err := fus.Run(1009)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					stepN(t, ref, n)
					if n == 0 && !fus.M.Halted {
						t.Fatal("run made no progress")
					}
				}
				requireSameState(t, "at halt", ref.M, fus.M)
				if mRef.Cycles != mFus.Cycles {
					t.Fatalf("cycles diverged: step=%v run=%v (delta %v)",
						mRef.Cycles, mFus.Cycles, mRef.Cycles-mFus.Cycles)
				}
				if mRef.Counts != mFus.Counts {
					t.Fatalf("counts diverged:\n step: %+v\n  run: %+v", mRef.Counts, mFus.Counts)
				}
				if mRef.ICache.Hits() != mFus.ICache.Hits() || mRef.ICache.Misses != mFus.ICache.Misses {
					t.Fatalf("icache diverged: step=%d/%d run=%d/%d",
						mRef.ICache.Hits(), mRef.ICache.Misses, mFus.ICache.Hits(), mFus.ICache.Misses)
				}
				if mRef.DCache.Hits() != mFus.DCache.Hits() || mRef.DCache.Misses != mFus.DCache.Misses {
					t.Fatalf("dcache diverged: step=%d/%d run=%d/%d",
						mRef.DCache.Hits(), mRef.DCache.Misses, mFus.DCache.Hits(), mFus.DCache.Misses)
				}
				if mRef.Bpred.Lookups != mFus.Bpred.Lookups || mRef.Bpred.Mispredicts != mFus.Bpred.Mispredicts {
					t.Fatalf("bpred diverged: step=%d/%d run=%d/%d",
						mRef.Bpred.Lookups, mRef.Bpred.Mispredicts, mFus.Bpred.Lookups, mFus.Bpred.Mispredicts)
				}
			})
		}
	}
}

// TestFusedDifferentialConcurrent runs independent differential pairs from
// several goroutines at once. Each pair owns its memory and machines; the
// point is to let the race detector (go test -race) observe the fused
// dispatch path running concurrently, catching any accidental shared
// state in fusion, block caching, or timing commits.
func TestFusedDifferentialConcurrent(t *testing.T) {
	bins := compileAll(t)
	var wg sync.WaitGroup
	for _, name := range []string{"sumloop", "fib", "nested", "ptrchase"} {
		for _, k := range isa.Kinds {
			wg.Add(1)
			go func(name string, k isa.Kind) {
				defer wg.Done()
				ref, err := proc.New(bins[name], k)
				if err != nil {
					t.Errorf("%s/%s: %v", name, k, err)
					return
				}
				fus, err := proc.New(bins[name], k)
				if err != nil {
					t.Errorf("%s/%s: %v", name, k, err)
					return
				}
				for !fus.M.Halted && fus.M.Steps < diffMaxSteps {
					n, err := fus.Run(97)
					if err != nil {
						t.Errorf("%s/%s: run: %v", name, k, err)
						return
					}
					for i := uint64(0); i < n && !ref.M.Halted; i++ {
						if err := ref.M.Step(); err != nil {
							t.Errorf("%s/%s: step: %v", name, k, err)
							return
						}
					}
					if ref.M.State != fus.M.State {
						t.Errorf("%s/%s: state diverged at %d steps", name, k, fus.M.Steps)
						return
					}
					if n == 0 && !fus.M.Halted {
						t.Errorf("%s/%s: no progress", name, k)
						return
					}
				}
			}(name, k)
		}
	}
	wg.Wait()
}
