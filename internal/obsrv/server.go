// Package obsrv is the HIPStR VM's embedded observability server: it
// exposes the telemetry subsystem over HTTP while a simulation runs —
// Prometheus exposition at /metrics, the full stats snapshot at
// /stats.json, a live server-sent-event stream of the trace ring at
// /events, the sampling profiler at /profile, /healthz, and the stdlib
// pprof handlers under /debug/pprof/ for introspecting the simulator
// itself. The server never touches VM state directly: scrapes read
// snapshots published through a Pump by the goroutine driving the VM, and
// the SSE hub's fan-out is drop-oldest so a slow curl can never stall
// translation or migration trap paths.
package obsrv

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"hipstr/internal/profiler"
	"hipstr/internal/telemetry"
)

// TenantInfo is one guest's scheduling summary in the fleet drill-down:
// identity, lifecycle state, and the numeric fields the host tracks per
// tenant (steps, slices, respawns, latency, ...).
type TenantInfo struct {
	ID       string             `json:"id"`
	Workload string             `json:"workload"`
	State    string             `json:"state"`
	Fields   map[string]float64 `json:"fields,omitempty"`
}

// TenantSource supplies the fleet drill-down endpoints. Implementations
// must be safe to call from HTTP handler goroutines while the fleet is
// executing (the fleet host serializes against the owning worker per
// tenant).
type TenantSource interface {
	// TenantList returns a summary of every tenant, stably ordered.
	TenantList() []TenantInfo
	// TenantSnapshot returns one tenant's summary plus its full private
	// telemetry snapshot; ok=false when the id is unknown.
	TenantSnapshot(id string) (TenantInfo, telemetry.Snapshot, bool)
}

// Options configures the endpoints. Nil fields disable their endpoints
// (404 for /profile, 503 for /metrics and /stats.json, empty stream for
// /events).
type Options struct {
	// Snapshot supplies the latest telemetry snapshot (typically
	// Pump.Latest). ok=false means none has been published yet.
	Snapshot func() (telemetry.Snapshot, bool)
	// Tracer, when set, feeds /events subscribers (its buffered ring is
	// replayed as backlog on connect).
	Tracer *telemetry.Tracer
	// Spans, when set, serves the bounded span ring at /timeline as
	// Chrome trace-event JSON (loadable in ui.perfetto.dev).
	Spans *telemetry.SpanTracer
	// Profile supplies the live profiler report for /profile.
	Profile func() (profiler.Report, bool)
	// Tenants, when set, serves the multi-tenant fleet drill-down:
	// /tenants lists every guest's summary, /tenants/{id} adds the
	// tenant's full private telemetry snapshot.
	Tenants TenantSource
	// Health, when set, contributes a detail line to /healthz. /healthz
	// stays pure liveness: it answers 200 whenever the process can serve
	// HTTP, regardless of readiness or open incidents.
	Health func() string
	// Ready, when set, gates /readyz: the endpoint answers 200 only once
	// ready is true (e.g. after fleet prototypes are warmed), 503 with
	// the detail otherwise. Nil means always ready.
	Ready func() (ready bool, detail string)
	// History, when set, serves the health engine's rolling metric
	// history at /history (health.Monitor.HistoryHandler).
	History http.Handler
	// Incidents, when set, serves the incident flight recorder at
	// /incidents and /incidents/{id} (health.Recorder.Handler).
	Incidents http.Handler
	// SSEBuffer overrides the per-subscriber ring capacity (tests).
	SSEBuffer int
	// SSEKeepalive overrides the idle-stream keepalive interval for
	// /events (0 selects DefaultSSEKeepalive, negative disables).
	SSEKeepalive time.Duration
}

// DefaultSSEKeepalive is how often an idle /events stream emits a
// ": keepalive" comment so proxies and test clients don't time out
// half-open connections.
const DefaultSSEKeepalive = 15 * time.Second

// Server serves the observability endpoints on one listener.
type Server struct {
	srv    *http.Server
	ln     net.Listener
	hub    *EventHub
	cancel context.CancelFunc
}

// NewHandler builds the route mux. The returned hub is attached to
// o.Tracer (nil when no tracer was given).
func NewHandler(o Options) (http.Handler, *EventHub) {
	var hub *EventHub
	if o.Tracer != nil {
		hub = NewEventHub(o.SSEBuffer)
		o.Tracer.AddSink(hub)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "hipstr observability\n\n"+
			"/metrics      Prometheus exposition\n"+
			"/stats.json   full telemetry snapshot\n"+
			"/events       live trace stream (SSE)\n"+
			"/timeline     span ring as Chrome trace JSON (ui.perfetto.dev)\n"+
			"/profile      sampling profiler (?format=folded|top|json, ?n=N)\n"+
			"/tenants      fleet drill-down (list; /tenants/{id} for one guest)\n"+
			"/history      rolling metric history (?series=a,b&points=N)\n"+
			"/incidents    incident flight recorder (list; /incidents/{id} for a bundle)\n"+
			"/healthz      liveness\n"+
			"/readyz       readiness (503 until prototypes are warmed)\n"+
			"/debug/pprof  simulator self-profiling\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		if o.Health != nil {
			fmt.Fprintln(w, o.Health())
		}
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Ready != nil {
			if ready, detail := o.Ready(); !ready {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "not ready")
				if detail != "" {
					fmt.Fprintln(w, detail)
				}
				return
			} else if detail != "" {
				fmt.Fprintln(w, "ready")
				fmt.Fprintln(w, detail)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		if o.History == nil {
			http.Error(w, "health engine not attached (hipstr-fleet -health-interval 0 disables it)", http.StatusNotFound)
			return
		}
		o.History.ServeHTTP(w, r)
	})
	incidents := func(w http.ResponseWriter, r *http.Request) {
		if o.Incidents == nil {
			http.Error(w, "health engine not attached (hipstr-fleet -health-interval 0 disables it)", http.StatusNotFound)
			return
		}
		o.Incidents.ServeHTTP(w, r)
	}
	mux.HandleFunc("/incidents", incidents)
	mux.HandleFunc("/incidents/", incidents)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := latest(o)
		if !ok {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WriteProm(w)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := latest(o)
		if !ok {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		if o.Profile == nil {
			http.Error(w, "profiler not enabled (run with -profile-out or -profile-interval)", http.StatusNotFound)
			return
		}
		rep, ok := o.Profile()
		if !ok {
			http.Error(w, "no profile yet", http.StatusServiceUnavailable)
			return
		}
		switch r.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			rep.WriteJSON(w)
		case "top":
			n, _ := strconv.Atoi(r.URL.Query().Get("n"))
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.WriteTop(w, n)
		default: // folded flamegraph stacks
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.WriteFolded(w)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(w, r, o.Tracer, hub, o.SSEKeepalive)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		if o.Spans == nil {
			http.Error(w, "span tracing not enabled (run with -timeline-out)", http.StatusNotFound)
			return
		}
		var events []telemetry.Event
		if o.Tracer != nil && r.URL.Query().Get("events") == "1" {
			events = o.Tracer.Events()
		}
		w.Header().Set("Content-Type", "application/json")
		telemetry.WriteChromeTrace(w, o.Spans.Spans(), events)
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		if o.Tenants == nil {
			http.Error(w, "no fleet attached (run under hipstr-fleet)", http.StatusNotFound)
			return
		}
		list := o.Tenants.TenantList()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Count   int          `json:"count"`
			Tenants []TenantInfo `json:"tenants"`
		}{len(list), list})
	})
	mux.HandleFunc("/tenants/", func(w http.ResponseWriter, r *http.Request) {
		if o.Tenants == nil {
			http.Error(w, "no fleet attached (run under hipstr-fleet)", http.StatusNotFound)
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/tenants/")
		info, snap, ok := o.Tenants.TenantSnapshot(id)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown tenant %q", id), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Tenant  TenantInfo         `json:"tenant"`
			Metrics telemetry.Snapshot `json:"metrics"`
		}{info, snap})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux, hub
}

func latest(o Options) (telemetry.Snapshot, bool) {
	if o.Snapshot == nil {
		return telemetry.Snapshot{}, false
	}
	return o.Snapshot()
}

// serveSSE streams trace events: the tracer's buffered ring as backlog,
// then live events until the client disconnects. Frames carry the event
// sequence number as the SSE id; dropped events surface as comment lines
// so consumers can detect gaps, and idle streams emit periodic
// ": keepalive" comments so half-open connections don't time out.
func serveSSE(w http.ResponseWriter, r *http.Request, tr *telemetry.Tracer, hub *EventHub, keepalive time.Duration) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if hub == nil || tr == nil {
		fmt.Fprint(w, ": no tracer attached\n\n")
		fl.Flush()
		return
	}
	sub := hub.Subscribe()
	defer hub.Unsubscribe(sub)
	if keepalive == 0 {
		keepalive = DefaultSSEKeepalive
	}
	var tick <-chan time.Time
	if keepalive > 0 {
		t := time.NewTicker(keepalive)
		defer t.Stop()
		tick = t.C
	}
	// Backlog: subscribe first, then replay the ring, skipping any overlap
	// delivered through the subscription while we replayed.
	var lastSeq uint64
	for _, e := range tr.Events() {
		writeSSE(w, e)
		lastSeq = e.Seq
	}
	fl.Flush()
	for {
		events, dropped := sub.Drain()
		if dropped > 0 {
			fmt.Fprintf(w, ": dropped %d events (slow consumer)\n\n", dropped)
		}
		wrote := dropped > 0
		for _, e := range events {
			if e.Seq <= lastSeq {
				continue
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			lastSeq = e.Seq
			wrote = true
		}
		if wrote {
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.Notify():
		case <-tick:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, e telemetry.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, data)
	return err
}

// New listens on addr and returns a server ready to Serve. Pass an
// explicit port 0 to let the OS choose (Addr reports the result).
func New(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsrv: listen %s: %w", addr, err)
	}
	h, hub := NewHandler(o)
	// Request contexts derive from this base context so Shutdown can end
	// otherwise-unbounded SSE streams.
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 5 * time.Second,
			BaseContext:       func(net.Listener) context.Context { return ctx },
		},
		ln:     ln,
		hub:    hub,
		cancel: cancel,
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Hub returns the SSE hub (nil when no tracer was configured).
func (s *Server) Hub() *EventHub { return s.hub }

// Serve blocks serving requests until Shutdown; it returns
// http.ErrServerClosed after a graceful shutdown.
func (s *Server) Serve() error { return s.srv.Serve(s.ln) }

// Shutdown gracefully drains in-flight requests. SSE streams hold their
// connections open, so Shutdown first cancels the base context to unblock
// them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	return s.srv.Shutdown(ctx)
}
