package dbt

import (
	"errors"
	"fmt"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/psr"
)

// VM trap vectors embedded in translated code. Program syscalls keep their
// native vector (0x80); everything else traps into the virtual machine.
const (
	vecSyscall  = 0x80
	vecIndirect = 0x81 // indirect call/jump dispatch
	vecChain    = 0x82 // direct branch to untranslated target (patch site)
	vecKill     = 0x83 // untranslatable/forbidden code reached
	vecPopPC    = 0x84 // ARM pop-into-PC return dispatch
)

// ErrNotText reports a translation request for an address outside the
// current ISA's text section.
var ErrNotText = errors.New("dbt: address not in text section")

// maxUnitInstrs bounds a translation unit (gadget streams can run long).
const maxUnitInstrs = 256

// trapMeta describes one emitted trap site.
type trapMeta struct {
	vec int32
	gen int // cache generation, for stale-patch detection
	// Chain traps.
	srcTarget uint32
	patchAddr uint32
	patchOp   isa.Op
	patchCond isa.Cond
	// Indirect traps.
	operand    isa.Operand
	isCall     bool
	srcRet     uint32 // source return address for indirect calls
	delta      int32  // SP delta at the trap
	fnIndex    int    // function whose map governs the trap site
	physState  bool   // register state is in boundary (physical) form
	targetSlot int32  // staged target frame offset (indirect calls); 0 = none
}

// callMeta describes a translated direct call site.
type callMeta struct {
	srcRet uint32
	gen    int
}

// translator translates one unit (a run of source instructions up to a
// control transfer) under a relocation map.
type translator struct {
	vm    *VM
	k     isa.Kind
	fn    *fatbin.FuncMeta
	m     *psr.Map
	a     *isa.Asm
	delta int32 // current ESP displacement from the frame base

	insts    []isa.Inst // decoded source unit
	callCtx  []int      // per instruction: index of next call in unit, or -1
	tmps     []isa.Reg
	tmpN     int
	labelN   int
	newTraps []pendingTrap
	newCalls []pendingCall
}

type pendingTrap struct {
	label string // label of the trap instruction
	meta  trapMeta
	// For chain traps, the label of the branch instruction to patch.
	patchLabel string
}

type pendingCall struct {
	label  string // label of the call instruction
	srcRet uint32
}

func (t *translator) tmp() isa.Reg {
	if len(t.tmps) == 0 {
		panic("dbt: relocation map provided no translator temporaries")
	}
	if t.tmpN >= len(t.tmps) {
		// Compiled code never exhausts the pool (the relocation maps
		// guarantee enough temporaries for its operand shapes); only
		// attacker-crafted gadget operands can — reuse wraps around,
		// further scrambling the gadget's effect.
		t.tmpN = 0
	}
	r := t.tmps[t.tmpN]
	t.tmpN++
	return r
}

func (t *translator) resetTmps() { t.tmpN = 0 }

func (t *translator) newLabel(prefix string) string {
	t.labelN++
	return fmt.Sprintf("%s%d", prefix, t.labelN)
}

// decodeUnit decodes source instructions starting at src until a
// unit-ending control transfer. Direct calls do not end the unit.
func (t *translator) decodeUnit(src uint32) error {
	text := t.vm.Bin.Text[t.k]
	base := fatbin.TextBase(t.k)
	addr := src
	for len(t.insts) < maxUnitInstrs {
		off := addr - base
		if off >= uint32(len(text)) {
			break
		}
		in, err := isa.Decode(t.k, text[off:], addr)
		if err != nil {
			if len(t.insts) == 0 {
				return fmt.Errorf("dbt: undecodable code at %#x: %w", addr, err)
			}
			break // emit what we have; the tail becomes a kill trap
		}
		// Superblock formation (O1, §5.4): fold forward unconditional
		// branches within the function by continuing translation at the
		// target — single entry, multiple exits, with code duplication
		// traded for locality.
		if in.Op == isa.OpJmp && t.vm.Cfg.Opt >= O1 &&
			in.Target > addr && in.Target < t.fn.End[t.k] &&
			len(t.insts) < maxUnitInstrs-16 {
			addr = in.Target
			continue
		}
		t.insts = append(t.insts, in)
		addr += uint32(in.Size)
		if endsUnit(&in) {
			break
		}
	}
	// Argument-store context: nearest following call within the unit.
	if cap(t.callCtx) >= len(t.insts) {
		t.callCtx = t.callCtx[:len(t.insts)]
	} else {
		t.callCtx = make([]int, len(t.insts))
	}
	next := -1
	for i := len(t.insts) - 1; i >= 0; i-- {
		op := t.insts[i].Op
		if op == isa.OpCall || op == isa.OpCallI {
			next = i
		}
		t.callCtx[i] = next
	}
	return nil
}

func endsUnit(in *isa.Inst) bool {
	switch in.Op {
	case isa.OpJmp, isa.OpJcc, isa.OpRet, isa.OpJmpI, isa.OpCallI, isa.OpBx, isa.OpHlt:
		return true
	case isa.OpPopM:
		return in.RegMask&(1<<isa.PC) != 0
	}
	return false
}

// remapFrameOff translates a canonical frame offset to its relocated
// offset. callee is the map of the call the access feeds (nil when the
// access is not an outgoing-argument store); indirect marks stores feeding
// an indirect call (staged instead).
func remapFrameOff(m *psr.Map, xc int32, callee *psr.Map, indirect bool) int32 {
	if to, ok := m.OffTo[xc]; ok {
		return to
	}
	fs := int32(m.Fn.FrameSize)
	switch {
	case xc >= 0 && xc < psr.ArgWindow && xc%4 == 0 && callee != nil && int(xc/4) < len(callee.ArgOff):
		// Outgoing argument store under the callee's randomized
		// convention.
		return callee.ArgOff[xc/4]
	case xc >= 0 && xc < psr.ArgWindow && xc%4 == 0 && indirect:
		return m.StageOff + xc
	case xc == fs:
		return m.RetOff
	case xc > fs+4 || (xc >= fs+4 && xc < fs+4+4*int32(m.Fn.NumArgs)):
		if xc >= fs+4 && (xc-fs-4)%4 == 0 {
			i := int((xc - fs - 4) / 4)
			if i < len(m.ArgOff) {
				// Incoming argument under this function's convention.
				return int32(m.NewFrameSize) + m.ArgOff[i]
			}
		}
		// Beyond the frame: shift by the frame growth.
		return xc + int32(m.NewFrameSize) - fs - 4
	}
	// Unknown offset inside the frame (gadget access): leave raw. The
	// state it hoped to find has been relocated elsewhere.
	return xc
}

// calleeCtx returns the callee's map (and indirectness) governing
// outgoing-argument stores at instruction index i.
func (t *translator) calleeCtx(i int) (*psr.Map, bool) {
	ci := t.callCtx[i]
	if ci < 0 {
		return nil, false
	}
	call := &t.insts[ci]
	if call.Op == isa.OpCallI {
		return nil, true
	}
	if fn := t.vm.Bin.FuncAt(t.k, call.Target); fn != nil {
		return t.vm.mapOf(fn)[t.k], false
	}
	return nil, false
}

// lowerOperand rewrites an operand under the relocation map, emitting
// loads into temporaries when a relocated value is needed in a register.
// asDest marks destination operands (no value load for pure overwrites is
// still required for memory bases, so the handling is identical except
// that register-relocated-to-stack destinations come back as memory
// operands).
func (t *translator) lowerOperand(o isa.Operand, idx int) isa.Operand {
	switch o.Kind {
	case isa.OpdImm, isa.OpdNone:
		return o
	case isa.OpdReg:
		l := t.m.LocOfReg(o.Reg)
		if o.Reg == isa.StackReg(t.k) || (t.k == isa.ARM && (o.Reg == isa.LR || o.Reg == isa.PC)) {
			return o
		}
		if l.Kind == psr.LocReg {
			return isa.R(l.Reg)
		}
		return isa.MB(isa.StackReg(t.k), l.Off-t.delta)
	case isa.OpdMem:
		mref := o.Mem
		sp := isa.StackReg(t.k)
		if mref.HasBase && mref.Base == sp && !mref.HasIndex {
			callee, indirect := t.calleeCtx(idx)
			xc := mref.Disp + t.delta
			mref.Disp = remapFrameOff(t.m, xc, callee, indirect) - t.delta
			return isa.M(mref)
		}
		// Relocated base/index registers must be materialized.
		if mref.HasBase && mref.Base != sp {
			l := t.m.LocOfReg(mref.Base)
			if l.Kind == psr.LocReg {
				mref.Base = l.Reg
			} else {
				r := t.tmp()
				t.a.LoadWord(r, sp, l.Off-t.delta, armScratchFor(t.k, r))
				mref.Base = r
			}
		}
		if mref.HasIndex {
			l := t.m.LocOfReg(mref.Index)
			if l.Kind == psr.LocReg {
				mref.Index = l.Reg
			} else {
				r := t.tmp()
				t.a.LoadWord(r, sp, l.Off-t.delta, armScratchFor(t.k, r))
				mref.Index = r
			}
		}
		return isa.M(mref)
	}
	return o
}

// armScratchFor returns the legalization scratch for ARM emissions,
// avoiding collision with the register being loaded.
func armScratchFor(k isa.Kind, avoid isa.Reg) isa.Reg {
	if k == isa.X86 {
		return isa.NoReg // unused on x86
	}
	if avoid == isa.R12 {
		return isa.R11
	}
	return isa.R12
}

// run translates the decoded unit, emitting into t.a.
func (t *translator) run(src uint32) error {
	if err := t.decodeUnit(src); err != nil {
		return err
	}
	i := 0
	for i < len(t.insts) {
		t.resetTmps()
		consumed := t.peephole(i)
		if consumed > 0 {
			i += consumed
			continue
		}
		in := t.insts[i]
		if t.k == isa.X86 {
			t.rewriteX86(&in, i)
		} else {
			t.rewriteARM(&in, i)
		}
		i++
	}
	// Decode stopped mid-stream without a terminator (invalid bytes or
	// unit-length cap): end with a kill or chain trap.
	last := &t.insts[len(t.insts)-1]
	if !endsUnit(last) && last.Op != isa.OpCall {
		if len(t.insts) >= maxUnitInstrs {
			// Long straight-line run: chain to its continuation.
			t.emitChain(last.Addr+uint32(last.Size), isa.OpJmp, isa.CondAlways)
		} else {
			t.emitKill()
		}
	} else if last.Op == isa.OpCall {
		// Unit ended on a decode failure right after a call: the return
		// path re-enters via the RAT, but straight-line flow is dead.
		t.emitKill()
	}
	return nil
}

// peephole recognizes multi-instruction prologue/epilogue units (ARM) at
// index i, returning the number of source instructions consumed (0 if no
// pattern matched).
func (t *translator) peephole(i int) int {
	if t.k != isa.ARM {
		return 0
	}
	ins := t.insts
	fs := int32(t.fn.FrameSize)
	nfs := int32(t.m.NewFrameSize)
	sp := isa.SP
	// spAdjust matches `sub sp,sp,#x` / `add sp,sp,#-x` forms, returning
	// the downward adjustment.
	spAdjust := func(in *isa.Inst) (int32, bool) {
		if !in.Dst.IsReg(sp) || !in.Src2.IsReg(sp) || in.Src.Kind != isa.OpdImm {
			return 0, false
		}
		switch in.Op {
		case isa.OpSub:
			return in.Src.Imm, true
		case isa.OpAdd:
			return -in.Src.Imm, true
		}
		return 0, false
	}
	adj := func(in *isa.Inst, want int32) bool {
		v, ok := spAdjust(in)
		return ok && v == want
	}
	// Prologue: sub sp,#4 ; str lr,[sp] ; sub sp,#FS
	if i+2 < len(ins) && adj(&ins[i], 4) &&
		ins[i+1].Op == isa.OpStore && ins[i+1].Src.IsReg(isa.LR) &&
		ins[i+1].Dst.Kind == isa.OpdMem && ins[i+1].Dst.Mem.Base == sp && ins[i+1].Dst.Mem.Disp == 0 &&
		adj(&ins[i+2], fs) {
		t.a.AddImm(sp, sp, -nfs, isa.R12)
		t.a.StoreWord(isa.LR, sp, t.m.RetOff, isa.R12)
		t.delta = 0
		t.emitReRelocate()
		return 3
	}
	// Epilogue: add sp,#FS ; ldr lr,[sp] ; add sp,#4 ; bx lr
	if i+3 < len(ins) && adj(&ins[i], -fs) &&
		ins[i+1].Op == isa.OpLoad && ins[i+1].Dst.IsReg(isa.LR) &&
		ins[i+1].Src.Kind == isa.OpdMem && ins[i+1].Src.Mem.Base == sp && ins[i+1].Src.Mem.Disp == 0 &&
		adj(&ins[i+2], -4) &&
		ins[i+3].Op == isa.OpBx && ins[i+3].Dst.IsReg(isa.LR) {
		t.emitDeRelocate()
		t.a.LoadWord(isa.LR, sp, t.m.RetOff, isa.R12)
		t.a.AddImm(sp, sp, nfs, isa.R12)
		t.a.Emit(isa.Inst{Op: isa.OpBx, Dst: isa.R(isa.LR)})
		t.delta = 0
		return 4
	}
	return 0
}

// emitChain emits a direct control transfer to srcTarget: a jump straight
// into the cache when the target is already translated, otherwise a branch
// to a local trap stub that will translate the target and patch this site.
func (t *translator) emitChain(srcTarget uint32, op isa.Op, cond isa.Cond) {
	if cacheAddr, ok := t.vm.caches[t.k].Lookup(srcTarget); ok {
		if op == isa.OpJcc {
			t.a.Emit(isa.Inst{Op: isa.OpJcc, Cond: cond, Target: cacheAddr})
		} else {
			t.a.Emit(isa.Inst{Op: isa.OpJmp, Target: cacheAddr})
		}
		return
	}
	stub := t.newLabel("stub")
	patch := t.newLabel("patch")
	t.a.Label(patch)
	t.a.EmitTo(isa.Inst{Op: op, Cond: cond}, stub)
	t.pendingStub(stub, patch, srcTarget, op, cond)
}

// pendingStub records a chain stub to be emitted at the end of the unit.
func (t *translator) pendingStub(stubLabel, patchLabel string, srcTarget uint32, op isa.Op, cond isa.Cond) {
	t.newTraps = append(t.newTraps, pendingTrap{
		label:      stubLabel,
		patchLabel: patchLabel,
		meta: trapMeta{
			vec:       vecChain,
			srcTarget: srcTarget,
			patchOp:   op,
			patchCond: cond,
			fnIndex:   t.fn.Index,
		},
	})
}

// emitTrapHere emits an in-line trap instruction with metadata.
func (t *translator) emitTrapHere(meta trapMeta) {
	lbl := t.newLabel("trap")
	t.a.Label(lbl)
	t.a.Emit(isa.Inst{Op: isa.OpSys, Imm: meta.vec})
	t.newTraps = append(t.newTraps, pendingTrap{label: lbl, meta: meta})
}

func (t *translator) emitKill() {
	t.emitTrapHere(trapMeta{vec: vecKill, fnIndex: t.fn.Index})
}

// srcRanges merges the decoded source instructions into contiguous
// address ranges (superblock inlining produces gaps).
func (t *translator) srcRanges() [][2]uint32 {
	var out [][2]uint32
	for i := range t.insts {
		in := &t.insts[i]
		end := in.Addr + uint32(in.Size)
		if n := len(out); n > 0 && out[n-1][1] == in.Addr {
			out[n-1][1] = end
			continue
		}
		out = append(out, [2]uint32{in.Addr, end})
	}
	return out
}

// flushStubs emits the deferred chain-trap stubs after the unit body.
// stubsLabel marks where a unit's deferred trap-stub region begins in the
// assembled code. The translator resolves it through the label map after
// assembly so the code cache can classify stub PCs (profiler VM-dispatch
// attribution). With no stubs the label lands on the unit's end address.
const stubsLabel = "__stubs"

func (t *translator) flushStubs() {
	t.a.Label(stubsLabel)
	for i := range t.newTraps {
		p := &t.newTraps[i]
		if p.meta.vec != vecChain || p.patchLabel == "" {
			continue
		}
		t.a.Label(p.label)
		t.a.Emit(isa.Inst{Op: isa.OpSys, Imm: vecChain})
	}
}
