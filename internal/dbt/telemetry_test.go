package dbt_test

import (
	"testing"

	"hipstr/internal/dbt"
	"hipstr/internal/isa"
	"hipstr/internal/telemetry"
)

// TestTelemetryMatchesStats is the registry-consistency guarantee: after a
// run, every registry-backed counter reports exactly what the legacy
// VM.Stats / RATOf / Cache accessors do.
func TestTelemetryMatchesStats(t *testing.T) {
	bin, _ := compile(t, "addrtaken")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm := runVM(t, bin, isa.X86, cfg)

	tel := vm.Telemetry()
	if tel == nil {
		t.Fatal("VM constructed without telemetry")
	}
	s := tel.Snapshot()

	st := vm.Stats
	wantCounters := map[string]uint64{
		"dbt.translations.x86":   st.Translations[isa.X86],
		"dbt.translations.arm":   st.Translations[isa.ARM],
		"dbt.indirect_dispatch":  st.IndirectDispatch,
		"dbt.code_cache_misses":  st.CodeCacheMisses,
		"dbt.compulsory_misses":  st.CompulsoryMisses,
		"dbt.return_misses":      st.ReturnMisses,
		"dbt.security_events":    st.SecurityEvents,
		"dbt.migrations":         st.Migrations,
		"dbt.chain_patches":      st.ChainPatches,
		"dbt.kills":              st.Kills,
		"dbt.flushes":            st.Flushes,
		"dbt.syscalls_forwarded": st.SyscallsForwarded,
	}
	for _, k := range isa.Kinds {
		rat := vm.RATOf(k)
		wantCounters["dbt.rat."+k.String()+".lookups"] = rat.Lookups
		wantCounters["dbt.rat."+k.String()+".misses"] = rat.Misses
		wantCounters["dbt.rat."+k.String()+".evictions"] = rat.Evictions
		c := vm.Cache(k)
		wantCounters["dbt.cache."+k.String()+".lookups"] = c.Lookups
		wantCounters["dbt.cache."+k.String()+".hits"] = c.Hits
	}
	for name, want := range wantCounters {
		if got, ok := s.Counters[name]; !ok || got != want {
			t.Errorf("%s = %d (present=%v), accessor says %d", name, got, ok, want)
		}
	}
	if s.Counters["dbt.translations.x86"] == 0 {
		t.Fatal("no translations recorded — instrumentation dead")
	}
	// The translation-latency histogram must have one observation per
	// translation event on each ISA.
	for _, k := range isa.Kinds {
		h := s.Histograms["dbt.translate.latency_us."+k.String()]
		if h.Count != st.Translations[k] {
			t.Errorf("latency histogram %s count %d != translations %d",
				k, h.Count, st.Translations[k])
		}
	}
	// Gauges mirror the live structures.
	if got := s.Gauges["dbt.cache.x86.used_bytes"]; got != float64(vm.Cache(isa.X86).Used()) {
		t.Errorf("used_bytes gauge %v != %d", got, vm.Cache(isa.X86).Used())
	}
	if got := s.Gauges["dbt.rat.x86.hit_ratio"]; got != vm.RATOf(isa.X86).HitRatio() {
		t.Errorf("rat hit ratio gauge %v != %v", got, vm.RATOf(isa.X86).HitRatio())
	}
	// Trace must carry translate events — as many as units were committed.
	var translateEvents uint64
	for _, e := range tel.Trace.Events() {
		if e.Type == telemetry.EvTranslate {
			translateEvents++
		}
	}
	total := st.Translations[isa.X86] + st.Translations[isa.ARM]
	if tel.Trace.Emitted() < total {
		t.Fatalf("trace emitted %d events, want >= %d translations", tel.Trace.Emitted(), total)
	}
	if translateEvents == 0 {
		t.Fatal("no translate events in ring")
	}
}

// TestTelemetrySharedInstance checks an injected telemetry instance is
// used rather than a private one.
func TestTelemetrySharedInstance(t *testing.T) {
	bin, _ := compile(t, "addrtaken")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.Telemetry = telemetry.New()
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Telemetry() != cfg.Telemetry {
		t.Fatal("VM ignored the injected telemetry instance")
	}
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if cfg.Telemetry.Snapshot().Counters["dbt.translations.x86"] == 0 {
		t.Fatal("shared registry saw no metrics")
	}
}

// TestTraceCapConfigurable checks Config.TraceCap sizes the private
// tracer's ring, and that zero keeps the 4096 default.
func TestTraceCapConfigurable(t *testing.T) {
	bin, _ := compile(t, "addrtaken")
	cfg := dbt.DefaultConfig()
	cfg.TraceCap = 64
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := vm.Telemetry().Trace.Cap(); got != 64 {
		t.Fatalf("trace cap = %d, want 64", got)
	}
	vm, err = dbt.New(bin, isa.X86, dbt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := vm.Telemetry().Trace.Cap(); got != telemetry.DefaultTraceCap {
		t.Fatalf("default trace cap = %d, want %d", got, telemetry.DefaultTraceCap)
	}
}
