package isa

import "fmt"

// Asm is a small two-pass assembler over the Inst vocabulary with symbolic
// labels. The compiler backends, the PSR translator, and tests use it to
// emit position-correct machine code for either ISA.
//
// Both encoders emit fixed sizes per (op, operand shape), so a single
// sizing pass followed by a fix-up pass suffices.
type Asm struct {
	kind   Kind
	base   uint32
	items  []asmItem
	labels map[string]int // label -> item index it precedes
	err    error

	// Reusable Assemble outputs; see Reset.
	buf        []byte
	labelAddrs map[string]uint32
}

type asmItem struct {
	inst  Inst
	label string // direct-branch target label, when symbolic
	addr  uint32
	size  uint8
}

// NewAsm returns an assembler for ISA k emitting at base.
func NewAsm(k Kind, base uint32) *Asm {
	return &Asm{kind: k, base: base, labels: make(map[string]int)}
}

// Reset reinitializes the assembler for a new unit at base, retaining the
// instruction, label, and output buffers of previous units. The slices and
// map returned by the previous Assemble are invalidated — callers that
// Reset must be done with them (the PSR translator is: translated bytes
// are committed to memory, label addresses copied into trap tables, before
// the next unit begins).
func (a *Asm) Reset(k Kind, base uint32) {
	a.kind = k
	a.base = base
	a.items = a.items[:0]
	clear(a.labels)
	a.err = nil
}

// Base returns the emission base address.
func (a *Asm) Base() uint32 { return a.base }

// Err returns the first error recorded while appending.
func (a *Asm) Err() error { return a.err }

// Emit appends a non-branching (or absolute-target) instruction.
func (a *Asm) Emit(in Inst) {
	in.ISA = a.kind
	if in.Cond == 0 && in.Op != OpJcc {
		in.Cond = CondAlways
	}
	a.items = append(a.items, asmItem{inst: in})
}

// EmitTo appends a direct control transfer to a label.
func (a *Asm) EmitTo(in Inst, label string) {
	in.ISA = a.kind
	a.items = append(a.items, asmItem{inst: in, label: label})
}

// Label binds name to the next emitted instruction.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.err = fmt.Errorf("isa: duplicate label %q", name)
		return
	}
	a.labels[name] = len(a.items)
}

// Jmp emits an unconditional jump to label.
func (a *Asm) Jmp(label string) { a.EmitTo(Inst{Op: OpJmp, Cond: CondAlways}, label) }

// Jcc emits a conditional jump to label.
func (a *Asm) Jcc(c Cond, label string) { a.EmitTo(Inst{Op: OpJcc, Cond: c}, label) }

// Call emits a direct call to label.
func (a *Asm) Call(label string) { a.EmitTo(Inst{Op: OpCall, Cond: CondAlways}, label) }

// Len reports the number of instructions emitted so far.
func (a *Asm) Len() int { return len(a.items) }

// emitARMConst emits the movw/movt sequence loading v into rd — the
// allocation-free twin of MaterializeARMConst for the emission helpers.
func (a *Asm) emitARMConst(rd Reg, v uint32) {
	a.Emit(Inst{Op: OpMov, Dst: R(rd), Src: I(int32(v & 0xFFFF))})
	if v>>16 != 0 {
		a.Emit(Inst{Op: OpMovT, Dst: R(rd), Src: I(int32(v >> 16))})
	}
}

// LoadWord emits a word load rd = mem[base+off]. On ARM, offsets outside
// the 13-bit immediate range are legalized through the scratch register
// (materialize offset, add base, register-offset load) — the "additional
// instructions and register temporaries" the paper describes for missing
// addressing modes.
func (a *Asm) LoadWord(rd, base Reg, off int32, scratch Reg) {
	if a.kind == X86 {
		a.Emit(Inst{Op: OpMov, Dst: R(rd), Src: MB(base, off)})
		return
	}
	if FitsARMImm(off) {
		a.Emit(Inst{Op: OpLoad, Dst: R(rd), Src: MB(base, off)})
		return
	}
	a.emitARMConst(scratch, uint32(off))
	a.Emit(Inst{Op: OpAdd, Dst: R(scratch), Src: R(base), Src2: R(scratch)})
	a.Emit(Inst{Op: OpLoad, Dst: R(rd), Src: MB(scratch, 0)})
}

// StoreWord emits mem[base+off] = rs, legalizing large ARM offsets through
// scratch (which must differ from rs).
func (a *Asm) StoreWord(rs, base Reg, off int32, scratch Reg) {
	if a.kind == X86 {
		a.Emit(Inst{Op: OpMov, Dst: MB(base, off), Src: R(rs)})
		return
	}
	if FitsARMImm(off) {
		a.Emit(Inst{Op: OpStore, Dst: MB(base, off), Src: R(rs)})
		return
	}
	a.emitARMConst(scratch, uint32(off))
	a.Emit(Inst{Op: OpAdd, Dst: R(scratch), Src: R(base), Src2: R(scratch)})
	a.Emit(Inst{Op: OpStore, Dst: MB(scratch, 0), Src: R(rs)})
}

// AddImm emits dst = src + imm, legalizing large ARM immediates through
// scratch.
func (a *Asm) AddImm(dst, src Reg, imm int32, scratch Reg) {
	if a.kind == X86 {
		if dst != src {
			a.Emit(Inst{Op: OpLea, Dst: R(dst), Src: MB(src, imm)})
		} else if imm != 0 {
			a.Emit(Inst{Op: OpAdd, Dst: R(dst), Src: I(imm)})
		}
		return
	}
	if FitsARMImm(imm) {
		a.Emit(Inst{Op: OpAdd, Dst: R(dst), Src: I(imm), Src2: R(src)})
		return
	}
	a.emitARMConst(scratch, uint32(imm))
	a.Emit(Inst{Op: OpAdd, Dst: R(dst), Src: R(scratch), Src2: R(src)})
}

// Const32 emits dst = v: one mov on x86, movw/movt on ARM.
func (a *Asm) Const32(dst Reg, v uint32) {
	if a.kind == X86 {
		a.Emit(Inst{Op: OpMov, Dst: R(dst), Src: I(int32(v))})
		return
	}
	a.emitARMConst(dst, v)
}

// Const32Wide is Const32 but always emits the full-width form (movw+movt
// on ARM) so instruction sizes stay stable across assembler passes whose
// constant values differ.
func (a *Asm) Const32Wide(dst Reg, v uint32) {
	if a.kind == X86 {
		a.Emit(Inst{Op: OpMov, Dst: R(dst), Src: I(int32(v))})
		return
	}
	a.Emit(Inst{Op: OpMov, Dst: R(dst), Src: I(int32(v & 0xFFFF))})
	a.Emit(Inst{Op: OpMovT, Dst: R(dst), Src: I(int32(v >> 16))})
}

// Assemble resolves labels and encodes all instructions. It returns the
// code bytes and the address of each label. Both are owned by the
// assembler and remain valid until the next Reset.
func (a *Asm) Assemble() ([]byte, map[string]uint32, error) {
	if a.err != nil {
		return nil, nil, a.err
	}
	// Pass 1: size and encode each instruction. Label targets are
	// temporarily resolved to the instruction's own address (always
	// encodable); both encoders emit fixed sizes per (op, operand shape),
	// so only label-targeted items need re-encoding once label addresses
	// are known — everything else is already final.
	addr := a.base
	a.buf = a.buf[:0]
	for i := range a.items {
		it := &a.items[i]
		in := it.inst
		in.Addr = addr
		if it.label != "" {
			in.Target = addr
		}
		enc, err := Encode(a.kind, &in)
		if err != nil {
			return nil, nil, fmt.Errorf("isa: sizing %s: %w", in.String(), err)
		}
		it.addr = addr
		it.size = uint8(len(enc))
		a.buf = append(a.buf, enc...)
		addr += uint32(len(enc))
	}
	if a.labelAddrs == nil {
		a.labelAddrs = make(map[string]uint32, len(a.labels))
	} else {
		clear(a.labelAddrs)
	}
	for name, idx := range a.labels {
		if idx >= len(a.items) {
			a.labelAddrs[name] = addr // label at end of stream
		} else {
			a.labelAddrs[name] = a.items[idx].addr
		}
	}
	// Pass 2: re-encode label-targeted items in place with final targets.
	for i := range a.items {
		it := &a.items[i]
		if it.label == "" {
			continue
		}
		in := it.inst
		in.Addr = it.addr
		t, ok := a.labelAddrs[it.label]
		if !ok {
			return nil, nil, fmt.Errorf("isa: undefined label %q", it.label)
		}
		in.Target = t
		enc, err := Encode(a.kind, &in)
		if err != nil {
			return nil, nil, fmt.Errorf("isa: encoding %s: %w", in.String(), err)
		}
		if len(enc) != int(it.size) {
			return nil, nil, fmt.Errorf("isa: unstable size for %s: %d then %d", in.String(), it.size, len(enc))
		}
		copy(a.buf[it.addr-a.base:], enc)
	}
	return a.buf, a.labelAddrs, nil
}
