module hipstr

go 1.22
