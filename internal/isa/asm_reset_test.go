package isa

import (
	"bytes"
	"testing"
)

// emitUnit assembles a small label-bearing unit: a countdown loop plus a
// forward branch, exercising both re-encoded (label) and fixed items.
func emitUnit(a *Asm, iters int32) {
	r := ECX
	if a.kind == ARM {
		r = R1
	}
	a.Const32(r, uint32(iters))
	a.Label("loop")
	a.AddImm(r, r, -1, r)
	a.Emit(Inst{Op: OpCmp, Dst: R(r), Src: I(0)})
	a.Jcc(CondNE, "loop")
	a.Jmp("done")
	a.Emit(Inst{Op: OpNop})
	a.Label("done")
	a.Emit(Inst{Op: OpHlt})
}

// TestAsmResetMatchesFreshAssembler reuses one assembler across several
// units — the translator's hot pattern — and checks every unit's bytes and
// label addresses are identical to a fresh assembler's.
func TestAsmResetMatchesFreshAssembler(t *testing.T) {
	reused := NewAsm(X86, 0x1000)
	cases := []struct {
		k     Kind
		base  uint32
		iters int32
	}{
		{X86, 0x1000, 3},
		{ARM, 0x2000, 70000}, // large constant: movw+movt path
		{X86, 0x1000, 30},
		{ARM, 0x4000, 5},
	}
	for i, c := range cases {
		if i > 0 {
			reused.Reset(c.k, c.base)
		}
		emitUnit(reused, c.iters)
		gotCode, gotLabels, err := reused.Assemble()
		if err != nil {
			t.Fatalf("case %d: reused assemble: %v", i, err)
		}

		fresh := NewAsm(c.k, c.base)
		emitUnit(fresh, c.iters)
		wantCode, wantLabels, err := fresh.Assemble()
		if err != nil {
			t.Fatalf("case %d: fresh assemble: %v", i, err)
		}
		if !bytes.Equal(gotCode, wantCode) {
			t.Fatalf("case %d (%s@%#x): reused bytes differ from fresh:\n got %x\nwant %x",
				i, c.k, c.base, gotCode, wantCode)
		}
		if len(gotLabels) != len(wantLabels) {
			t.Fatalf("case %d: label count %d != %d", i, len(gotLabels), len(wantLabels))
		}
		for name, addr := range wantLabels {
			if gotLabels[name] != addr {
				t.Fatalf("case %d: label %q = %#x, want %#x", i, name, gotLabels[name], addr)
			}
		}
	}
}

// TestAsmResetClearsErrorAndLabels ensures a failed unit (duplicate label)
// does not poison the next one.
func TestAsmResetClearsErrorAndLabels(t *testing.T) {
	a := NewAsm(X86, 0)
	a.Label("x")
	a.Emit(Inst{Op: OpNop})
	a.Label("x")
	if _, _, err := a.Assemble(); err == nil {
		t.Fatal("duplicate label not reported")
	}
	a.Reset(X86, 0)
	a.Label("x") // same name again: must not collide with the old unit
	a.Emit(Inst{Op: OpHlt})
	if _, _, err := a.Assemble(); err != nil {
		t.Fatalf("assembler not reusable after error: %v", err)
	}
}
