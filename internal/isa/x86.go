package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("isa: truncated instruction")
	ErrInvalid   = errors.New("isa: invalid encoding")
)

// x86 opcode assignments (a faithful subset of IA-32's one-byte map; the
// properties that matter to HIPStR — byte density, 0xC3 ret, ModRM memory
// operands — are preserved).
const (
	xopAddMR  = 0x01
	xopAddRM  = 0x03
	xopOrMR   = 0x09
	xopOrRM   = 0x0B
	xopAndMR  = 0x21
	xopAndRM  = 0x23
	xopSubMR  = 0x29
	xopSubRM  = 0x2B
	xopXorMR  = 0x31
	xopXorRM  = 0x33
	xopCmpMR  = 0x39
	xopCmpRM  = 0x3B
	xopInc    = 0x40 // +r
	xopDec    = 0x48 // +r
	xopPush   = 0x50 // +r
	xopPop    = 0x58 // +r
	xopPushI  = 0x68
	xopJccS   = 0x70 // +cc, rel8
	xopGrpI32 = 0x81 // /ext, imm32
	xopGrpI8  = 0x83 // /ext, imm8
	xopTestMR = 0x85
	xopMovMR  = 0x89
	xopMovRM  = 0x8B
	xopLea    = 0x8D
	xopPopM   = 0x8F // /0
	xopNop    = 0x90
	xopMovRI  = 0xB8 // +r, imm32
	xopShGrp  = 0xC1 // /4 shl imm8, /5 shr imm8
	xopRet    = 0xC3
	xopMovMI  = 0xC7 // /0, imm32
	xopLeave  = 0xC9
	xopInt    = 0xCD
	xopShCL   = 0xD3 // /4 shl cl, /5 shr cl
	xopCall   = 0xE8
	xopJmp    = 0xE9
	xopJmpS   = 0xEB
	xopF7     = 0xF7 // /2 not, /3 neg, /4 mul, /6 div
	xopHlt    = 0xF4
	xopFF     = 0xFF // /2 call r/m, /4 jmp r/m, /6 push r/m
	xopTwo    = 0x0F // two-byte escape: 0x80+cc Jcc rel32, 0xAF imul
)

// condCC maps Cond to the x86 condition-code nibble used by 0x70+cc and
// 0x0F 0x80+cc.
var condCC = map[Cond]byte{
	CondB: 0x2, CondAE: 0x3, CondEQ: 0x4, CondNE: 0x5,
	CondLT: 0xC, CondGE: 0xD, CondLE: 0xE, CondGT: 0xF,
}

var ccCond = func() map[byte]Cond {
	m := make(map[byte]Cond, len(condCC))
	for c, cc := range condCC {
		m[cc] = c
	}
	return m
}()

// encodeModRM encodes a ModRM (and, when needed, SIB and displacement)
// byte sequence for register field reg and r/m operand rm.
func encodeModRM(reg byte, rm Operand) ([]byte, error) {
	switch rm.Kind {
	case OpdReg:
		if rm.Reg > 7 {
			return nil, fmt.Errorf("%w: x86 register %d", ErrInvalid, rm.Reg)
		}
		return []byte{0xC0 | reg<<3 | byte(rm.Reg)}, nil
	case OpdMem:
		m := rm.Mem
		// Absolute (no base, no index): mod=00 rm=101 disp32.
		if !m.HasBase && !m.HasIndex {
			out := []byte{reg<<3 | 0x05, 0, 0, 0, 0}
			binary.LittleEndian.PutUint32(out[1:], uint32(m.Disp))
			return out, nil
		}
		needSIB := m.HasIndex || (m.HasBase && m.Base == ESP)
		var mod byte
		var disp []byte
		// mod=00 with base EBP means disp32-only in this encoding, so a
		// plain [ebp] must be expressed as [ebp+0] with a disp8.
		zeroDispOK := !(m.HasBase && m.Base == EBP)
		switch {
		case m.Disp == 0 && zeroDispOK:
			mod = 0x00
		case m.Disp >= -128 && m.Disp <= 127:
			mod = 0x40
			disp = []byte{byte(int8(m.Disp))}
		default:
			mod = 0x80
			disp = make([]byte, 4)
			binary.LittleEndian.PutUint32(disp, uint32(m.Disp))
		}
		if !needSIB {
			if m.Base > 7 {
				return nil, fmt.Errorf("%w: x86 base register %d", ErrInvalid, m.Base)
			}
			out := []byte{mod | reg<<3 | byte(m.Base)}
			return append(out, disp...), nil
		}
		// SIB form.
		var scale byte
		switch m.Scale {
		case 0, 1:
			scale = 0
		case 2:
			scale = 1
		case 4:
			scale = 2
		case 8:
			scale = 3
		default:
			return nil, fmt.Errorf("%w: scale %d", ErrInvalid, m.Scale)
		}
		index := byte(4) // none
		if m.HasIndex {
			if m.Index == ESP || m.Index > 7 {
				return nil, fmt.Errorf("%w: x86 index register %d", ErrInvalid, m.Index)
			}
			index = byte(m.Index)
		}
		base := byte(5)
		if m.HasBase {
			if m.Base > 7 {
				return nil, fmt.Errorf("%w: x86 base register %d", ErrInvalid, m.Base)
			}
			base = byte(m.Base)
		} else {
			// No base with SIB requires mod=00 and a disp32.
			mod = 0x00
			disp = make([]byte, 4)
			binary.LittleEndian.PutUint32(disp, uint32(m.Disp))
		}
		if m.HasBase && m.Base == EBP && mod == 0x00 {
			mod = 0x40
			disp = []byte{0}
		}
		out := []byte{mod | reg<<3 | 0x04, scale<<6 | index<<3 | base}
		return append(out, disp...), nil
	default:
		return nil, fmt.Errorf("%w: bad r/m operand kind %d", ErrInvalid, rm.Kind)
	}
}

var x86GrpExt = map[Op]byte{OpAdd: 0, OpOr: 1, OpAnd: 4, OpSub: 5, OpXor: 6, OpCmp: 7}
var x86GrpOp = map[byte]Op{0: OpAdd, 1: OpOr, 4: OpAnd, 5: OpSub, 6: OpXor, 7: OpCmp}

var x86ALUMR = map[Op]byte{
	OpAdd: xopAddMR, OpOr: xopOrMR, OpAnd: xopAndMR,
	OpSub: xopSubMR, OpXor: xopXorMR, OpCmp: xopCmpMR,
}
var x86ALURM = map[Op]byte{
	OpAdd: xopAddRM, OpOr: xopOrRM, OpAnd: xopAndRM,
	OpSub: xopSubRM, OpXor: xopXorRM, OpCmp: xopCmpRM,
}

func imm32(v int32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(v))
	return b
}

// Byte-form ALU opcode pairs (op r/m8, r8) and (op r8, r/m8).
var x86ByteMR = map[Op]byte{
	OpAdd: 0x00, OpOr: 0x08, OpAnd: 0x20, OpSub: 0x28, OpXor: 0x30,
	OpCmp: 0x38, OpMov: 0x88,
}
var x86ByteRM = map[Op]byte{
	OpAdd: 0x02, OpOr: 0x0A, OpAnd: 0x22, OpSub: 0x2A, OpXor: 0x32,
	OpCmp: 0x3A, OpMov: 0x8A,
}

// x86ByteALImm maps "op al, imm8" single-byte opcodes.
var x86ByteALImm = map[byte]Op{
	0x04: OpAdd, 0x0C: OpOr, 0x24: OpAnd, 0x2C: OpSub, 0x34: OpXor, 0x3C: OpCmp,
}

func isByteALImm(op byte) bool {
	_, ok := x86ByteALImm[op]
	return ok
}

// Decoder-side word ALU maps (inverse of x86ALURM/MR). Package-level so
// DecodeX86 stays allocation-free on the interpreter hot path.
var aluRM = map[byte]Op{
	xopAddRM: OpAdd, xopOrRM: OpOr, xopAndRM: OpAnd,
	xopSubRM: OpSub, xopXorRM: OpXor, xopCmpRM: OpCmp, xopMovRM: OpMov,
}
var aluMR = map[byte]Op{
	xopAddMR: OpAdd, xopOrMR: OpOr, xopAndMR: OpAnd,
	xopSubMR: OpSub, xopXorMR: OpXor, xopCmpMR: OpCmp, xopMovMR: OpMov,
	xopTestMR: OpTest,
}

// Decoder-side byte ALU maps (inverse of x86ByteMR/RM).
var byteMROp = map[byte]Op{
	0x00: OpAdd, 0x08: OpOr, 0x20: OpAnd, 0x28: OpSub, 0x30: OpXor,
	0x38: OpCmp, 0x88: OpMov,
}
var byteRMOp = map[byte]Op{
	0x02: OpAdd, 0x0A: OpOr, 0x22: OpAnd, 0x2A: OpSub, 0x32: OpXor,
	0x3A: OpCmp, 0x8A: OpMov,
}

// encodeX86Byte handles the 8-bit operand forms.
func encodeX86Byte(in *Inst) ([]byte, error) {
	cat := func(op byte, modrm []byte, tail ...byte) []byte {
		out := append([]byte{op}, modrm...)
		return append(out, tail...)
	}
	switch {
	case in.Op == OpMov && in.Dst.Kind == OpdReg && in.Src.Kind == OpdImm:
		if in.Dst.Reg > 7 {
			return nil, fmt.Errorf("%w: mov8 register", ErrInvalid)
		}
		return []byte{0xB0 + byte(in.Dst.Reg), byte(in.Src.Imm)}, nil
	case in.Src.Kind == OpdImm:
		if in.Dst.IsReg(EAX) {
			if op1, ok := map[Op]byte{OpAdd: 0x04, OpOr: 0x0C, OpAnd: 0x24,
				OpSub: 0x2C, OpXor: 0x34, OpCmp: 0x3C}[in.Op]; ok {
				return []byte{op1, byte(in.Src.Imm)}, nil
			}
		}
		ext, ok := x86GrpExt[in.Op]
		if !ok {
			return nil, fmt.Errorf("%w: byte group op %s", ErrInvalid, in.Op)
		}
		modrm, err := encodeModRM(ext, in.Dst)
		if err != nil {
			return nil, err
		}
		return cat(0x80, modrm, byte(in.Src.Imm)), nil
	case in.Dst.Kind == OpdReg && in.Src.Kind != OpdReg:
		op, ok := x86ByteRM[in.Op]
		if !ok {
			return nil, fmt.Errorf("%w: byte rm op %s", ErrInvalid, in.Op)
		}
		modrm, err := encodeModRM(byte(in.Dst.Reg), in.Src)
		if err != nil {
			return nil, err
		}
		return cat(op, modrm), nil
	case in.Src.Kind == OpdReg:
		op, ok := x86ByteMR[in.Op]
		if !ok {
			return nil, fmt.Errorf("%w: byte mr op %s", ErrInvalid, in.Op)
		}
		modrm, err := encodeModRM(byte(in.Src.Reg), in.Dst)
		if err != nil {
			return nil, err
		}
		return cat(op, modrm), nil
	}
	return nil, fmt.Errorf("%w: byte operand shape", ErrInvalid)
}

// EncodeX86 encodes in into its x86 byte representation. Direct control
// transfers are encoded with rel32 displacements computed from in.Addr
// (the address the instruction will be placed at) and in.Target.
func EncodeX86(in *Inst) ([]byte, error) {
	if in.ByteOp {
		return encodeX86Byte(in)
	}
	cat := func(op byte, modrm []byte, tail ...byte) []byte {
		out := append([]byte{op}, modrm...)
		return append(out, tail...)
	}
	switch in.Op {
	case OpNop:
		return []byte{xopNop}, nil
	case OpHlt:
		return []byte{xopHlt}, nil
	case OpRet:
		if in.Imm > 0 {
			return []byte{0xC2, byte(in.Imm), byte(in.Imm >> 8)}, nil
		}
		return []byte{xopRet}, nil
	case OpLeave:
		return []byte{xopLeave}, nil
	case OpSys:
		return []byte{xopInt, byte(in.Imm)}, nil
	case OpInc, OpDec:
		if in.Dst.Kind != OpdReg || in.Dst.Reg > 7 {
			return nil, fmt.Errorf("%w: inc/dec needs x86 register dst", ErrInvalid)
		}
		base := byte(xopInc)
		if in.Op == OpDec {
			base = xopDec
		}
		return []byte{base + byte(in.Dst.Reg)}, nil
	case OpPush:
		switch in.Src.Kind {
		case OpdReg:
			if in.Src.Reg > 7 {
				return nil, fmt.Errorf("%w: push register %d", ErrInvalid, in.Src.Reg)
			}
			return []byte{xopPush + byte(in.Src.Reg)}, nil
		case OpdImm:
			return append([]byte{xopPushI}, imm32(in.Src.Imm)...), nil
		case OpdMem:
			modrm, err := encodeModRM(6, in.Src)
			if err != nil {
				return nil, err
			}
			return cat(xopFF, modrm), nil
		}
		return nil, fmt.Errorf("%w: push operand", ErrInvalid)
	case OpPop:
		switch in.Dst.Kind {
		case OpdReg:
			if in.Dst.Reg > 7 {
				return nil, fmt.Errorf("%w: pop register %d", ErrInvalid, in.Dst.Reg)
			}
			return []byte{xopPop + byte(in.Dst.Reg)}, nil
		case OpdMem:
			modrm, err := encodeModRM(0, in.Dst)
			if err != nil {
				return nil, err
			}
			return cat(xopPopM, modrm), nil
		}
		return nil, fmt.Errorf("%w: pop operand", ErrInvalid)
	case OpMov:
		switch {
		case in.Dst.Kind == OpdReg && in.Src.Kind == OpdImm:
			if in.Dst.Reg > 7 {
				return nil, fmt.Errorf("%w: mov register %d", ErrInvalid, in.Dst.Reg)
			}
			return append([]byte{xopMovRI + byte(in.Dst.Reg)}, imm32(in.Src.Imm)...), nil
		case in.Src.Kind == OpdImm:
			modrm, err := encodeModRM(0, in.Dst)
			if err != nil {
				return nil, err
			}
			return cat(xopMovMI, modrm, imm32(in.Src.Imm)...), nil
		case in.Dst.Kind == OpdReg && in.Src.Kind != OpdReg:
			modrm, err := encodeModRM(byte(in.Dst.Reg), in.Src)
			if err != nil {
				return nil, err
			}
			return cat(xopMovRM, modrm), nil
		case in.Src.Kind == OpdReg:
			modrm, err := encodeModRM(byte(in.Src.Reg), in.Dst)
			if err != nil {
				return nil, err
			}
			return cat(xopMovMR, modrm), nil
		}
		return nil, fmt.Errorf("%w: mov mem,mem", ErrInvalid)
	case OpLea:
		if in.Dst.Kind != OpdReg || in.Src.Kind != OpdMem {
			return nil, fmt.Errorf("%w: lea operands", ErrInvalid)
		}
		modrm, err := encodeModRM(byte(in.Dst.Reg), in.Src)
		if err != nil {
			return nil, err
		}
		return cat(xopLea, modrm), nil
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpCmp:
		if in.Src.Kind == OpdImm {
			ext := x86GrpExt[in.Op]
			modrm, err := encodeModRM(ext, in.Dst)
			if err != nil {
				return nil, err
			}
			if in.Src.Imm >= -128 && in.Src.Imm <= 127 {
				return cat(xopGrpI8, modrm, byte(int8(in.Src.Imm))), nil
			}
			return cat(xopGrpI32, modrm, imm32(in.Src.Imm)...), nil
		}
		if in.Dst.Kind == OpdReg && in.Src.Kind == OpdMem {
			modrm, err := encodeModRM(byte(in.Dst.Reg), in.Src)
			if err != nil {
				return nil, err
			}
			return cat(x86ALURM[in.Op], modrm), nil
		}
		if in.Src.Kind == OpdReg {
			modrm, err := encodeModRM(byte(in.Src.Reg), in.Dst)
			if err != nil {
				return nil, err
			}
			return cat(x86ALUMR[in.Op], modrm), nil
		}
		return nil, fmt.Errorf("%w: %s operands", ErrInvalid, in.Op)
	case OpTest:
		if in.Src.Kind != OpdReg {
			return nil, fmt.Errorf("%w: test needs register src", ErrInvalid)
		}
		modrm, err := encodeModRM(byte(in.Src.Reg), in.Dst)
		if err != nil {
			return nil, err
		}
		return cat(xopTestMR, modrm), nil
	case OpShl, OpShr:
		ext := byte(4)
		if in.Op == OpShr {
			ext = 5
		}
		modrm, err := encodeModRM(ext, in.Dst)
		if err != nil {
			return nil, err
		}
		if in.Src.Kind == OpdImm {
			return cat(xopShGrp, modrm, byte(in.Src.Imm)), nil
		}
		if in.Src.IsReg(ECX) {
			return cat(xopShCL, modrm), nil
		}
		return nil, fmt.Errorf("%w: shift count must be imm or cl", ErrInvalid)
	case OpMul:
		if in.Dst.Kind == OpdReg && in.Src.Kind == OpdImm {
			// imul r, r/m, imm: r = r/m * imm (r/m defaults to dst).
			rm := in.Src2
			if rm.Kind == OpdNone {
				rm = in.Dst
			}
			modrm, err := encodeModRM(byte(in.Dst.Reg), rm)
			if err != nil {
				return nil, err
			}
			if in.Src.Imm >= -128 && in.Src.Imm <= 127 {
				return cat(0x6B, modrm, byte(int8(in.Src.Imm))), nil
			}
			return cat(0x69, modrm, imm32(in.Src.Imm)...), nil
		}
		if in.Dst.Kind == OpdReg {
			modrm, err := encodeModRM(byte(in.Dst.Reg), in.Src)
			if err != nil {
				return nil, err
			}
			return append([]byte{xopTwo, 0xAF}, modrm...), nil
		}
		return nil, fmt.Errorf("%w: imul needs register dst", ErrInvalid)
	case OpDiv:
		modrm, err := encodeModRM(6, in.Src)
		if err != nil {
			return nil, err
		}
		return cat(xopF7, modrm), nil
	case OpNeg:
		modrm, err := encodeModRM(3, in.Dst)
		if err != nil {
			return nil, err
		}
		return cat(xopF7, modrm), nil
	case OpNot:
		modrm, err := encodeModRM(2, in.Dst)
		if err != nil {
			return nil, err
		}
		return cat(xopF7, modrm), nil
	case OpJmp:
		rel := int32(in.Target) - int32(in.Addr) - 5
		return append([]byte{xopJmp}, imm32(rel)...), nil
	case OpCall:
		rel := int32(in.Target) - int32(in.Addr) - 5
		return append([]byte{xopCall}, imm32(rel)...), nil
	case OpJcc:
		cc, ok := condCC[in.Cond]
		if !ok {
			return nil, fmt.Errorf("%w: jcc condition %s", ErrInvalid, in.Cond)
		}
		rel := int32(in.Target) - int32(in.Addr) - 6
		return append([]byte{xopTwo, 0x80 + cc}, imm32(rel)...), nil
	case OpJmpI:
		modrm, err := encodeModRM(4, in.Dst)
		if err != nil {
			return nil, err
		}
		return cat(xopFF, modrm), nil
	case OpCallI:
		modrm, err := encodeModRM(2, in.Dst)
		if err != nil {
			return nil, err
		}
		return cat(xopFF, modrm), nil
	}
	return nil, fmt.Errorf("%w: op %s not encodable on x86", ErrInvalid, in.Op)
}

// decodeModRM decodes a ModRM byte sequence starting at b[0], returning the
// reg field, the r/m operand, and the number of bytes consumed.
func decodeModRM(b []byte) (reg byte, rm Operand, n int, err error) {
	if len(b) < 1 {
		return 0, Operand{}, 0, ErrTruncated
	}
	modrm := b[0]
	mod := modrm >> 6
	reg = modrm >> 3 & 7
	rmf := modrm & 7
	n = 1
	if mod == 3 {
		return reg, R(Reg(rmf)), n, nil
	}
	var m MemRef
	if rmf == 4 { // SIB
		if len(b) < 2 {
			return 0, Operand{}, 0, ErrTruncated
		}
		sib := b[1]
		n = 2
		scale := sib >> 6
		index := sib >> 3 & 7
		base := sib & 7
		if index != 4 {
			m.HasIndex = true
			m.Index = Reg(index)
			m.Scale = 1 << scale
		}
		if base == 5 && mod == 0 {
			if len(b) < n+4 {
				return 0, Operand{}, 0, ErrTruncated
			}
			m.Disp = int32(binary.LittleEndian.Uint32(b[n:]))
			n += 4
			return reg, M(m), n, nil
		}
		m.HasBase = true
		m.Base = Reg(base)
	} else if mod == 0 && rmf == 5 {
		if len(b) < n+4 {
			return 0, Operand{}, 0, ErrTruncated
		}
		m.Disp = int32(binary.LittleEndian.Uint32(b[n:]))
		n += 4
		return reg, M(m), n, nil
	} else {
		m.HasBase = true
		m.Base = Reg(rmf)
	}
	switch mod {
	case 1:
		if len(b) < n+1 {
			return 0, Operand{}, 0, ErrTruncated
		}
		m.Disp = int32(int8(b[n]))
		n++
	case 2:
		if len(b) < n+4 {
			return 0, Operand{}, 0, ErrTruncated
		}
		m.Disp = int32(binary.LittleEndian.Uint32(b[n:]))
		n += 4
	}
	return reg, M(m), n, nil
}

// DecodeX86 decodes one instruction from b, which holds the bytes at
// address addr. It returns ErrInvalid for undefined encodings and
// ErrTruncated when b ends mid-instruction.
func DecodeX86(b []byte, addr uint32) (Inst, error) {
	in := Inst{ISA: X86, Addr: addr, Cond: CondAlways}
	if len(b) == 0 {
		return in, ErrTruncated
	}
	op := b[0]
	need := func(n int) error {
		if len(b) < n {
			return ErrTruncated
		}
		return nil
	}
	fin := func(n int) (Inst, error) {
		in.Size = uint8(n)
		return in, nil
	}
	switch {
	case op == xopNop:
		in.Op = OpNop
		return fin(1)
	case op == xopHlt:
		in.Op = OpHlt
		return fin(1)
	case op == xopRet:
		in.Op = OpRet
		return fin(1)
	case op == 0xC2: // ret imm16: pop return address, then free imm bytes
		if err := need(3); err != nil {
			return in, err
		}
		in.Op = OpRet
		in.Imm = int32(binary.LittleEndian.Uint16(b[1:]))
		return fin(3)
	case op == 0xF8 || op == 0xF9 || op == 0xFC || op == 0xFD || op == 0x98:
		// Flag/width manipulation without modeled effect.
		in.Op = OpNop
		return fin(1)
	case op >= 0xB0 && op < 0xB8: // mov r8, imm8
		if err := need(2); err != nil {
			return in, err
		}
		in.Op = OpMov
		in.ByteOp = true
		in.Dst = R(Reg(op - 0xB0))
		in.Src = I(int32(b[1]))
		return fin(2)
	case x86ByteALImm[op] != OpInvalid && isByteALImm(op):
		if err := need(2); err != nil {
			return in, err
		}
		in.Op = x86ByteALImm[op]
		in.ByteOp = true
		in.Dst = R(EAX)
		in.Src = I(int32(b[1]))
		return fin(2)
	case op == 0x80: // byte group: op r/m8, imm8
		ext, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		o, ok := x86GrpOp[ext]
		if !ok {
			return in, ErrInvalid
		}
		if err := need(1 + n + 1); err != nil {
			return in, err
		}
		in.Op = o
		in.ByteOp = true
		in.Dst = rm
		in.Src = I(int32(b[1+n]))
		return fin(1 + n + 1)
	case op == xopLeave:
		in.Op = OpLeave
		return fin(1)
	case op == xopInt:
		if err := need(2); err != nil {
			return in, err
		}
		in.Op = OpSys
		in.Imm = int32(b[1])
		return fin(2)
	case op >= xopInc && op < xopInc+8:
		in.Op = OpInc
		in.Dst = R(Reg(op - xopInc))
		return fin(1)
	case op >= xopDec && op < xopDec+8:
		in.Op = OpDec
		in.Dst = R(Reg(op - xopDec))
		return fin(1)
	case op >= xopPush && op < xopPush+8:
		in.Op = OpPush
		in.Src = R(Reg(op - xopPush))
		return fin(1)
	case op >= xopPop && op < xopPop+8:
		in.Op = OpPop
		in.Dst = R(Reg(op - xopPop))
		return fin(1)
	case op == xopPushI:
		if err := need(5); err != nil {
			return in, err
		}
		in.Op = OpPush
		in.Src = I(int32(binary.LittleEndian.Uint32(b[1:])))
		return fin(5)
	case op >= xopJccS && op < xopJccS+16:
		cond, ok := ccCond[op-xopJccS]
		if !ok {
			return in, ErrInvalid
		}
		if err := need(2); err != nil {
			return in, err
		}
		in.Op = OpJcc
		in.Cond = cond
		in.Target = addr + 2 + uint32(int32(int8(b[1])))
		return fin(2)
	case op >= xopMovRI && op < xopMovRI+8:
		if err := need(5); err != nil {
			return in, err
		}
		in.Op = OpMov
		in.Dst = R(Reg(op - xopMovRI))
		in.Src = I(int32(binary.LittleEndian.Uint32(b[1:])))
		return fin(5)
	case op == xopJmpS:
		if err := need(2); err != nil {
			return in, err
		}
		in.Op = OpJmp
		in.Target = addr + 2 + uint32(int32(int8(b[1])))
		return fin(2)
	case op == xopJmp:
		if err := need(5); err != nil {
			return in, err
		}
		in.Op = OpJmp
		in.Target = addr + 5 + uint32(int32(binary.LittleEndian.Uint32(b[1:])))
		return fin(5)
	case op == xopCall:
		if err := need(5); err != nil {
			return in, err
		}
		in.Op = OpCall
		in.Target = addr + 5 + uint32(int32(binary.LittleEndian.Uint32(b[1:])))
		return fin(5)
	case op == xopTwo:
		if err := need(2); err != nil {
			return in, err
		}
		op2 := b[1]
		switch {
		case op2 >= 0x80 && op2 < 0x90:
			cond, ok := ccCond[op2-0x80]
			if !ok {
				return in, ErrInvalid
			}
			if err := need(6); err != nil {
				return in, err
			}
			in.Op = OpJcc
			in.Cond = cond
			in.Target = addr + 6 + uint32(int32(binary.LittleEndian.Uint32(b[2:])))
			return fin(6)
		case op2 == 0xAF:
			reg, rm, n, err := decodeModRM(b[2:])
			if err != nil {
				return in, err
			}
			in.Op = OpMul
			in.Dst = R(Reg(reg))
			in.Src = rm
			return fin(2 + n)
		}
		return in, ErrInvalid
	}
	switch op {
	case 0x6B, 0x69: // imul r, r/m, imm
		reg, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		in.Op = OpMul
		in.Dst = R(Reg(reg))
		in.Src2 = rm
		if op == 0x6B {
			if err := need(1 + n + 1); err != nil {
				return in, err
			}
			in.Src = I(int32(int8(b[1+n])))
			return fin(1 + n + 1)
		}
		if err := need(1 + n + 4); err != nil {
			return in, err
		}
		in.Src = I(int32(binary.LittleEndian.Uint32(b[1+n:])))
		return fin(1 + n + 4)
	}
	// Byte-form ModRM ALU (op r/m8, r8) / (op r8, r/m8) — including the
	// all-zeros encoding 00 /r, the densest source of unintentional
	// gadgets in real x86 binaries.
	if o, ok := byteMROp[op]; ok {
		reg, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		in.Op = o
		in.ByteOp = true
		in.Dst = rm
		in.Src = R(Reg(reg))
		return fin(1 + n)
	}
	if o, ok := byteRMOp[op]; ok {
		reg, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		in.Op = o
		in.ByteOp = true
		in.Dst = R(Reg(reg))
		in.Src = rm
		return fin(1 + n)
	}
	// ModRM-based forms.
	if o, ok := aluRM[op]; ok {
		reg, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		in.Op = o
		in.Dst = R(Reg(reg))
		in.Src = rm
		return fin(1 + n)
	}
	if o, ok := aluMR[op]; ok {
		reg, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		in.Op = o
		in.Dst = rm
		in.Src = R(Reg(reg))
		return fin(1 + n)
	}
	switch op {
	case xopLea:
		reg, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		if rm.Kind != OpdMem {
			return in, ErrInvalid
		}
		in.Op = OpLea
		in.Dst = R(Reg(reg))
		in.Src = rm
		return fin(1 + n)
	case xopGrpI8, xopGrpI32:
		ext, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		o, ok := x86GrpOp[ext]
		if !ok {
			return in, ErrInvalid
		}
		in.Op = o
		in.Dst = rm
		if op == xopGrpI8 {
			if err := need(1 + n + 1); err != nil {
				return in, err
			}
			in.Src = I(int32(int8(b[1+n])))
			return fin(1 + n + 1)
		}
		if err := need(1 + n + 4); err != nil {
			return in, err
		}
		in.Src = I(int32(binary.LittleEndian.Uint32(b[1+n:])))
		return fin(1 + n + 4)
	case xopMovMI:
		ext, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		if ext != 0 {
			return in, ErrInvalid
		}
		if err := need(1 + n + 4); err != nil {
			return in, err
		}
		in.Op = OpMov
		in.Dst = rm
		in.Src = I(int32(binary.LittleEndian.Uint32(b[1+n:])))
		return fin(1 + n + 4)
	case xopShGrp, xopShCL:
		ext, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		switch ext {
		case 4:
			in.Op = OpShl
		case 5:
			in.Op = OpShr
		default:
			return in, ErrInvalid
		}
		in.Dst = rm
		if op == xopShGrp {
			if err := need(1 + n + 1); err != nil {
				return in, err
			}
			in.Src = I(int32(b[1+n]))
			return fin(1 + n + 1)
		}
		in.Src = R(ECX)
		return fin(1 + n)
	case xopF7:
		ext, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		switch ext {
		case 2:
			in.Op = OpNot
			in.Dst = rm
		case 3:
			in.Op = OpNeg
			in.Dst = rm
		case 4:
			in.Op = OpMul
			in.Dst = R(EAX)
			in.Src = rm
		case 6:
			in.Op = OpDiv
			in.Dst = R(EAX)
			in.Src = rm
		default:
			return in, ErrInvalid
		}
		return fin(1 + n)
	case xopFF:
		ext, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		switch ext {
		case 2:
			in.Op = OpCallI
			in.Dst = rm
		case 4:
			in.Op = OpJmpI
			in.Dst = rm
		case 6:
			in.Op = OpPush
			in.Src = rm
		default:
			return in, ErrInvalid
		}
		return fin(1 + n)
	case xopPopM:
		ext, rm, n, err := decodeModRM(b[1:])
		if err != nil {
			return in, err
		}
		if ext != 0 {
			return in, ErrInvalid
		}
		in.Op = OpPop
		in.Dst = rm
		return fin(1 + n)
	}
	return in, ErrInvalid
}
