package compiler_test

import (
	"reflect"
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/isa"
	"hipstr/internal/proc"
	"hipstr/internal/testprogs"
)

// TestDiversifiedVariantIsEquivalent: the Isomeron-style variant (block
// layout shuffled, nops inserted, binding registers permuted) must behave
// exactly like the canonical compilation while laying out differently.
func TestDiversifiedVariantIsEquivalent(t *testing.T) {
	for name, tc := range testprogs.All() {
		mod := tc.Mod
		canon, err := compiler.Compile(mod)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		variant, err := compiler.CompileDiversified(mod, 12345)
		if err != nil {
			t.Fatalf("%s variant: %v", name, err)
		}
		if reflect.DeepEqual(canon.Text[isa.X86], variant.Text[isa.X86]) {
			t.Errorf("%s: variant text identical to canonical", name)
		}
		for _, k := range isa.Kinds {
			pc, err := proc.New(canon, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := pc.RunToExit(20_000_000); err != nil {
				t.Fatalf("%s canon %s: %v", name, k, err)
			}
			pv, err := proc.New(variant, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := pv.RunToExit(20_000_000); err != nil {
				t.Fatalf("%s variant %s: %v", name, k, err)
			}
			if pc.ExitCode != pv.ExitCode {
				t.Fatalf("%s %s: variant exit %d, canon %d", name, k, pv.ExitCode, pc.ExitCode)
			}
			if !reflect.DeepEqual(pc.Trace, pv.Trace) {
				t.Fatalf("%s %s: traces diverge", name, k)
			}
		}
	}
}

// TestVariantsDifferBySeed: two seeds give different layouts.
func TestVariantsDifferBySeed(t *testing.T) {
	mod := testprogs.NestedLoops(4, 4)
	a, err := compiler.CompileDiversified(mod, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compiler.CompileDiversified(mod, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Text[isa.X86], b.Text[isa.X86]) {
		t.Fatal("different seeds produced identical variants")
	}
}
