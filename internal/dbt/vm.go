package dbt

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/mem"
	"hipstr/internal/proc"
	"hipstr/internal/psr"
	"hipstr/internal/telemetry"
)

// ErrSecurityKill reports a software-fault-isolation termination: an
// indirect transfer into the code cache, a forged trap vector, or
// untranslatable code.
var ErrSecurityKill = errors.New("dbt: process killed by security policy")

// OptLevel selects the PSR performance optimizations of Table 3.
type OptLevel int

const (
	O0 OptLevel = iota // no optimization
	O1                 // machine block placement, branch inlining/superblocks
	O2                 // + global register cache
	O3                 // + PSR with a register bias
)

// Config configures a PSR virtual machine pair.
type Config struct {
	CodeCacheSize uint32 // bytes per ISA (default 2 MiB)
	RATSize       int    // return address table entries (default 512)
	Opt           OptLevel
	RandPages     int // frame randomization space in pages (default 2)
	// DualTranslate translates each compulsory miss for both ISAs
	// (paper §3.5), reducing later cross-ISA misses.
	DualTranslate bool
	// MigrateProb is the probability of migrating to the other ISA when a
	// security event (indirect control transfer missing the code cache)
	// fires. Migration also requires a Migrator.
	MigrateProb float64
	Seed        int64
	// Telemetry receives the VM's metrics and trace events. Leave nil to
	// have the VM create a private instance; the HIPStR layer injects a
	// shared one so the DBT, migration engine, and timing model report
	// into a single registry.
	Telemetry *telemetry.Telemetry
	// TraceCap bounds the event tracer's ring buffer when the VM creates
	// its own Telemetry (long-run trace analysis without a sink needs a
	// deeper ring). Zero or negative selects telemetry.DefaultTraceCap;
	// ignored when Telemetry is injected.
	TraceCap int
	// SharedUnits overrides the process-wide shared translation-unit
	// cache (nil selects dbt.SharedUnits). Tests inject private caches;
	// cold-spawn benchmarks isolate themselves with one.
	SharedUnits *UnitCache
	// NoSharedUnits opts the VM out of the shared unit cache entirely:
	// every translation runs the translator.
	NoSharedUnits bool
}

// DefaultConfig returns the paper's main configuration.
func DefaultConfig() Config {
	return Config{
		CodeCacheSize: 2 << 20,
		RATSize:       512,
		Opt:           O3,
		RandPages:     2,
		DualTranslate: true,
		MigrateProb:   1.0,
	}
}

func (c Config) psrConfig() psr.Config {
	pc := psr.Config{RandPages: c.RandPages}
	if c.Opt >= O1 {
		pc.PruneBoundaryMarshal = true
	}
	if c.Opt >= O2 {
		pc.GlobalRegCache = 3
	}
	if c.Opt >= O3 {
		pc.RegisterBias = true
	}
	return pc
}

// Stats counts VM events.
type Stats struct {
	Translations       [2]uint64
	IndirectDispatch   uint64
	CodeCacheMisses    uint64 // indirect transfers that missed (security events)
	CompulsoryMisses   uint64
	ReturnMisses       uint64 // RAT misses leading to retranslation
	SecurityEvents     uint64
	Migrations         uint64
	SecurityMigrations uint64
	ChainPatches       uint64
	Kills              uint64
	Flushes            uint64
	SyscallsForwarded  uint64
	// Shared translation-unit cache outcomes, attributed to this VM (the
	// cache itself also keeps process-wide aggregates).
	SharedHits       uint64
	SharedMisses     uint64
	SharedInstalls   uint64
	SharedBytesSaved uint64
}

// Migrator transforms the running process's state to the other ISA and
// returns the code-cache address to resume at. It is installed by the
// HIPStR layer (package core); a nil Migrator disables migration.
type Migrator interface {
	// Migrate moves execution to the other ISA, resuming at the source
	// address resumeSrc (expressed in the *current* ISA's text). boundary
	// reports whether register state is in the call-boundary (physical)
	// convention (return events) rather than relocated form (indirect
	// jumps). It returns false when the point is not migration-safe.
	Migrate(vm *VM, resumeSrc uint32, boundary bool) bool
	// MigrateEntry migrates at a callee-entry boundary (indirect call
	// dispatch): the return address has been saved per the current ISA's
	// convention but the callee frame does not exist yet. calleeEntry is
	// the callee's entry address in the current ISA's text.
	MigrateEntry(vm *VM, calleeEntry uint32) bool
}

// VM is a pair of PSR virtual machines (one per ISA) sharing one process.
type VM struct {
	Bin *fatbin.Binary
	P   *proc.Process
	Cfg Config

	Rand      *psr.Randomizer
	policyRng *rand.Rand

	caches [2]*CodeCache
	rats   [2]*RAT
	maps   map[int][2]*psr.Map
	traps  [2]map[uint32]trapMeta
	calls  [2]map[uint32]callMeta
	gen    [2]int

	// shared is the content-addressed unit cache this VM consults and
	// publishes into (nil = opted out).
	shared *UnitCache
	// layoutSeed is the PSR seed behind vm.Rand (Cfg.Seed initially; each
	// Respawn replaces it). Part of the shared cache's layout class.
	layoutSeed int64
	// mapOrder records the symbol-table indices of every relocation map
	// built, in build order; mapDigest folds the same sequence. The
	// randomizer is sequential, so this order fully determines map
	// contents given the seed — Fork replays it to reconstruct identical
	// maps and RNG state, and the shared cache keys on the digest.
	mapOrder  []int
	mapDigest uint64

	Stats    Stats
	Migrator Migrator

	tel           *telemetry.Telemetry
	histTranslate [2]*telemetry.Histogram
	histUnitBytes [2]*telemetry.Histogram

	// PendingMigration requests a performance-policy migration (phase
	// change, §5.2) at the next migration-safe boundary (the next
	// return). The flag clears once a migration succeeds.
	PendingMigration bool

	// LastEventTarget records the raw target of the most recent security
	// event, before validation — the attack analyses use it to observe
	// where a hijacked transfer tried to go.
	LastEventTarget uint32

	progSyscall machine.SyscallHandler

	// xs holds the translator's reusable scratch buffers. Under cache
	// churn the translator runs thousands of times per second; recycling
	// its working set (the assembler's item list, decoded unit, pending
	// trap/call lists) keeps translation off the allocator entirely.
	xs translateScratch
}

// translateScratch recycles one translation's working set into the next.
// The VM is single-threaded, so one set suffices.
type translateScratch struct {
	asm      *isa.Asm
	insts    []isa.Inst
	callCtx  []int
	newTraps []pendingTrap
	newCalls []pendingCall
}

// New boots bin under a fresh PSR virtual machine pair starting on ISA k.
func New(bin *fatbin.Binary, k isa.Kind, cfg Config) (*VM, error) {
	if cfg.CodeCacheSize == 0 {
		cfg.CodeCacheSize = 2 << 20
	}
	if cfg.RATSize == 0 {
		cfg.RATSize = 512
	}
	if cfg.RandPages == 0 {
		cfg.RandPages = 2
	}
	p, err := proc.New(bin, k)
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewWithTraceCap(cfg.TraceCap)
	}
	vm := &VM{
		Bin:        bin,
		P:          p,
		Cfg:        cfg,
		Rand:       psr.NewRandomizer(cfg.Seed, cfg.psrConfig()),
		policyRng:  rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		maps:       make(map[int][2]*psr.Map),
		tel:        cfg.Telemetry,
		layoutSeed: cfg.Seed,
		mapDigest:  digestInit,
	}
	if !cfg.NoSharedUnits {
		if vm.shared = cfg.SharedUnits; vm.shared == nil {
			vm.shared = SharedUnits
		}
	}
	vm.registerTelemetry()
	for _, kk := range isa.Kinds {
		vm.caches[kk] = NewCodeCache(kk, cfg.CodeCacheSize)
		// A flush evicts translations without necessarily rewriting their
		// bytes; bump the code generation of the flushed region so the
		// interpreter's block cache drops its predecodes of the evicted
		// units — and nothing else (the other ISA's cache and program
		// text stay warm). Commits and chain patches invalidate their own
		// pages through the write barrier.
		vm.caches[kk].OnFlush = p.Mem.InvalidateCodeRange
		vm.rats[kk] = NewRAT(cfg.RATSize)
		vm.traps[kk] = make(map[uint32]trapMeta)
		vm.calls[kk] = make(map[uint32]callMeta)
		p.Mem.Map("cache."+kk.String(), fatbin.CacheBase(kk), cfg.CodeCacheSize, mem.PermRX)
	}
	p.SetControlHook(vm.onControl)
	vm.progSyscall = p.M.Syscall
	p.M.Syscall = vm.onSyscall
	if err := vm.Start(k); err != nil {
		return nil, err
	}
	return vm, nil
}

// Start (re)enters the program at its entry point on ISA k, translating
// the entry block.
func (vm *VM) Start(k isa.Kind) error {
	vm.P.Reset(k)
	entry := vm.Bin.Func(vm.Bin.EntryFunc).Entry[k]
	cacheAddr, err := vm.require(k, entry, true)
	if err != nil {
		return err
	}
	vm.P.M.PC = cacheAddr
	return nil
}

// Respawn models a crashed worker being re-spawned (paper §5.3): the
// run-time nature of PSR re-randomizes the code cache on both ISAs.
func (vm *VM) Respawn(k isa.Kind, newSeed int64) error {
	vm.Rand = psr.NewRandomizer(newSeed, vm.Cfg.psrConfig())
	vm.maps = make(map[int][2]*psr.Map)
	vm.layoutSeed = newSeed
	vm.mapOrder = vm.mapOrder[:0]
	vm.mapDigest = digestInit
	for _, kk := range isa.Kinds {
		vm.flush(kk)
	}
	return vm.Start(k)
}

// Run executes up to maxSteps instructions.
func (vm *VM) Run(maxSteps uint64) (uint64, error) { return vm.P.Run(maxSteps) }

// Active returns the ISA currently executing.
func (vm *VM) Active() isa.Kind { return vm.P.M.ISA }

// Cache returns the code cache of ISA k.
func (vm *VM) Cache(k isa.Kind) *CodeCache { return vm.caches[k] }

// RAT returns the return address table of ISA k.
func (vm *VM) RATOf(k isa.Kind) *RAT { return vm.rats[k] }

// Telemetry returns the VM's metrics registry and event tracer.
func (vm *VM) Telemetry() *telemetry.Telemetry { return vm.tel }

// ResolvePC maps an executing PC on ISA k to the guest source address it
// executes on behalf of: PCs inside ISA k's code cache (translated units,
// including their trap stubs) resolve through the owning translation
// unit's source block; guest-text PCs resolve to themselves. It reports
// false for addresses in neither region (or in a cache gap left by
// alignment before the first unit). Single-goroutine, like every other VM
// accessor: the sampling profiler calls it from the machine's exec hook.
func (vm *VM) ResolvePC(k isa.Kind, pc uint32) (uint32, bool) {
	if c := vm.caches[k]; c.Contains(pc) {
		return c.UnitAt(pc)
	}
	if vm.Bin.FuncAt(k, pc) != nil {
		return pc, true
	}
	return pc, false
}

// ResolvePCClass is ResolvePC plus a dispatch classification: stub
// reports whether pc falls inside a translation unit's deferred trap-stub
// region — VM dispatch overhead (chain traps awaiting patching) rather
// than translated guest code. Guest-text PCs are never stubs.
func (vm *VM) ResolvePCClass(k isa.Kind, pc uint32) (src uint32, stub, ok bool) {
	if c := vm.caches[k]; c.Contains(pc) {
		src, ok = c.UnitAt(pc)
		return src, ok && c.StubAt(pc), ok
	}
	if vm.Bin.FuncAt(k, pc) != nil {
		return pc, false, true
	}
	return pc, false, false
}

// registerTelemetry wires the VM into its registry. The raw Stats / RAT /
// CodeCache fields stay the canonical (and allocation-free) counters; a
// collector mirrors them into the registry at snapshot time, so the
// registry always reports exactly what the legacy accessors do without
// adding work to the dispatch loop. Only genuinely new measurements
// (translation latency, unit sizes) are pushed directly.
func (vm *VM) registerTelemetry() {
	r := vm.tel.Reg
	for _, k := range isa.Kinds {
		vm.histTranslate[k] = r.Histogram("dbt.translate.latency_us." + k.String())
		vm.histUnitBytes[k] = r.Histogram("dbt.translate.unit_bytes." + k.String())
	}
	r.RegisterCollector(func() {
		for _, k := range isa.Kinds {
			ks := k.String()
			r.Counter("dbt.translations." + ks).Set(vm.Stats.Translations[k])
			c := vm.caches[k]
			r.Gauge("dbt.cache." + ks + ".used_bytes").Set(float64(c.Used()))
			r.Gauge("dbt.cache." + ks + ".occupancy").Set(float64(c.Used()) / float64(c.Size))
			r.Gauge("dbt.cache." + ks + ".units").Set(float64(c.NumUnits()))
			r.Gauge("dbt.cache." + ks + ".indirect_targets").Set(float64(c.IndirectTargetCount()))
			r.Counter("dbt.cache." + ks + ".lookups").Set(c.Lookups)
			r.Counter("dbt.cache." + ks + ".hits").Set(c.Hits)
			r.Gauge("dbt.cache." + ks + ".hit_ratio").Set(c.HitRatio())
			rat := vm.rats[k]
			r.Counter("dbt.rat." + ks + ".lookups").Set(rat.Lookups)
			r.Counter("dbt.rat." + ks + ".misses").Set(rat.Misses)
			r.Counter("dbt.rat." + ks + ".evictions").Set(rat.Evictions)
			r.Gauge("dbt.rat." + ks + ".entries").Set(float64(rat.Entries()))
			r.Gauge("dbt.rat." + ks + ".hit_ratio").Set(rat.HitRatio())
		}
		bs := vm.P.M.BlockStats()
		r.Counter("machine.blockcache.hits").Set(bs.Hits)
		r.Counter("machine.blockcache.misses").Set(bs.Misses)
		// The legacy counter is the sum of the partial/full split, so
		// snapshots taken before the split stay metricsdiff-comparable.
		r.Counter("machine.blockcache.invalidations").Set(bs.Invalidations)
		r.Counter("machine.blockcache.invalidations.partial").Set(bs.PartialInvalidations)
		r.Counter("machine.blockcache.invalidations.full").Set(bs.FullInvalidations)
		r.Counter("machine.blockcache.evicted").Set(bs.BlocksEvicted)
		r.Gauge("machine.blockcache.blocks").Set(float64(bs.Blocks))
		r.Gauge("machine.blockcache.hit_ratio").Set(bs.HitRatio())
		fs := vm.P.M.FusionStats()
		r.Counter("machine.fusion.pairs").Set(fs.PairsFused)
		r.Counter("machine.fusion.blocks.batched").Set(fs.BatchedBlocks)
		r.Counter("machine.fusion.blocks.exact").Set(fs.ExactBlocks)
		r.Counter("machine.fusion.commits").Set(fs.Commits)
		st := &vm.Stats
		r.Counter("dbt.indirect_dispatch").Set(st.IndirectDispatch)
		r.Counter("dbt.code_cache_misses").Set(st.CodeCacheMisses)
		r.Counter("dbt.compulsory_misses").Set(st.CompulsoryMisses)
		r.Counter("dbt.return_misses").Set(st.ReturnMisses)
		r.Counter("dbt.security_events").Set(st.SecurityEvents)
		r.Counter("dbt.migrations").Set(st.Migrations)
		r.Counter("dbt.security_migrations").Set(st.SecurityMigrations)
		r.Counter("dbt.chain_patches").Set(st.ChainPatches)
		r.Counter("dbt.kills").Set(st.Kills)
		r.Counter("dbt.flushes").Set(st.Flushes)
		r.Counter("dbt.syscalls_forwarded").Set(st.SyscallsForwarded)
		r.Counter("dbt.sharedcache.hits").Set(st.SharedHits)
		r.Counter("dbt.sharedcache.misses").Set(st.SharedMisses)
		r.Counter("dbt.sharedcache.installs").Set(st.SharedInstalls)
		r.Counter("dbt.sharedcache.bytes_saved").Set(st.SharedBytesSaved)
		r.Gauge("mem.cow.shared_pages").Set(float64(vm.P.Mem.SharedPages()))
		r.Counter("mem.cow.broken_pages").Set(vm.P.Mem.CowBroken())
	})
}

// MapOf returns (building on demand) the relocation map pair of fn.
func (vm *VM) MapOf(fn *fatbin.FuncMeta) [2]*psr.Map { return vm.mapOf(fn) }

// EnsureTranslated returns the cache address of src's translation on ISA
// k, translating on demand. The migration engine uses it to land on warm
// code after a switch.
func (vm *VM) EnsureTranslated(k isa.Kind, src uint32) (uint32, error) {
	return vm.require(k, src, true)
}

// ApplyReRelocate marshals the boundary (physical) register state into
// pmap's relocated form in software — used by the migration engine when
// resuming at a freshly translated continuation.
func (vm *VM) ApplyReRelocate(pmap *psr.Map) error { return vm.applyReRelocate(pmap) }

func (vm *VM) mapOf(fn *fatbin.FuncMeta) [2]*psr.Map {
	if pair, ok := vm.maps[fn.Index]; ok {
		return pair
	}
	pair := vm.Rand.BuildPair(fn)
	vm.maps[fn.Index] = pair
	vm.mapOrder = append(vm.mapOrder, fn.Index)
	vm.mapDigest = foldDigest(vm.mapDigest, uint64(fn.Index))
	return pair
}

func (vm *VM) flush(k isa.Kind) {
	sp := vm.tel.StartSpan("dbt", "cache-flush")
	sp.SetISA(k.String())
	sp.SetDetail(fmt.Sprintf("%d units evicted", vm.caches[k].NumUnits()))
	vm.tel.Emit(telemetry.Event{
		Type: telemetry.EvCacheFlush, ISA: k.String(),
		Detail: fmt.Sprintf("%d units evicted", vm.caches[k].NumUnits()),
	})
	vm.caches[k].Flush()
	vm.rats[k].Flush()
	vm.traps[k] = make(map[uint32]trapMeta)
	vm.calls[k] = make(map[uint32]callMeta)
	vm.gen[k]++
	vm.Stats.Flushes++
	sp.End()
}

// unitAlign returns the code cache alignment for new units (machine block
// placement aligns to I-cache lines at O1+).
func (vm *VM) unitAlign() uint32 {
	if vm.Cfg.Opt >= O1 {
		return 64
	}
	return 16
}

// require returns the cache address of the translation of src on ISA k,
// translating (and optionally dual-translating) on a miss.
func (vm *VM) require(k isa.Kind, src uint32, dual bool) (uint32, error) {
	if a, ok := vm.caches[k].Lookup(src); ok {
		return a, nil
	}
	vm.Stats.CompulsoryMisses++
	addr, err := vm.translate(k, src)
	if err != nil {
		return 0, err
	}
	if dual && vm.Cfg.DualTranslate {
		// Translate the equivalent block for the other ISA so a future
		// migration lands on warm code (paper §3.5).
		other := k.Other()
		if fn, blk := vm.Bin.BlockAt(k, src); fn != nil && blk != nil && blk.Addr[k] == src {
			if _, ok := vm.caches[other].Lookup(blk.Addr[other]); !ok {
				if _, err := vm.translate(other, blk.Addr[other]); err == nil {
					// Best effort; failures surface when actually executed.
					_ = err
				}
			}
		}
	}
	return addr, nil
}

// translate builds, assembles, and commits one translation unit — or, when
// the shared unit cache already holds a byte-identical unit for this exact
// (binary, ISA, src, PSR layout, cache state) point, installs the shared
// copy without running the translator at all.
func (vm *VM) translate(k isa.Kind, src uint32) (uint32, error) {
	fn := vm.Bin.FuncAt(k, src)
	if fn == nil {
		return 0, fmt.Errorf("%w: %#x on %s", ErrNotText, src, k)
	}
	sp := vm.tel.StartSpan("dbt", "translate")
	sp.SetISA(k.String())
	start := time.Now()
	for attempt := 0; attempt < 2; attempt++ {
		base := vm.caches[k].NextAddr(vm.unitAlign())
		var key unitKey
		if vm.shared != nil {
			key = vm.unitKeyFor(k, src, base)
			if u := vm.shared.lookup(key); u != nil {
				addr, ok := vm.installShared(k, src, u)
				if !ok {
					// Shouldn't happen (the key pins base and cache size),
					// but fall back to the cold path's flush-and-retry.
					vm.flush(k)
					continue
				}
				vm.Stats.SharedHits++
				vm.Stats.SharedBytesSaved += uint64(len(u.code))
				us := float64(time.Since(start)) / float64(time.Microsecond)
				vm.histTranslate[k].Observe(us)
				vm.histUnitBytes[k].Observe(float64(len(u.code)))
				vm.tel.Emit(telemetry.Event{
					Type: telemetry.EvTranslate, ISA: k.String(), Addr: src, Cost: us,
					Detail: fmt.Sprintf("%d bytes (shared)", len(u.code)),
				})
				if sp.Active() {
					sp.SetCostUS(us)
					sp.SetDetail(fmt.Sprintf("src %#x, %d bytes (shared)", src, len(u.code)))
					sp.End()
				}
				return addr, nil
			}
			vm.Stats.SharedMisses++
		}
		mapN := len(vm.mapOrder)
		lk0, ht0 := vm.caches[k].Lookups, vm.caches[k].Hits
		if vm.xs.asm == nil {
			vm.xs.asm = isa.NewAsm(k, base)
		} else {
			vm.xs.asm.Reset(k, base)
		}
		t := &translator{
			vm:       vm,
			k:        k,
			fn:       fn,
			m:        vm.mapOf(fn)[k],
			a:        vm.xs.asm,
			tmps:     vm.mapOf(fn)[k].FreeRegs,
			insts:    vm.xs.insts[:0],
			callCtx:  vm.xs.callCtx[:0],
			newTraps: vm.xs.newTraps[:0],
			newCalls: vm.xs.newCalls[:0],
		}
		if err := t.run(src); err != nil {
			vm.saveScratch(t)
			return 0, err
		}
		t.flushStubs()
		code, labels, err := t.a.Assemble()
		if err != nil {
			vm.saveScratch(t)
			return 0, fmt.Errorf("dbt: assembling unit for %#x: %w", src, err)
		}
		addr, ok := vm.caches[k].Reserve(uint32(len(code)), vm.unitAlign())
		if !ok {
			vm.saveScratch(t)
			vm.flush(k)
			continue
		}
		if addr != base {
			return 0, fmt.Errorf("dbt: allocation raced: %#x != %#x", addr, base)
		}
		vm.caches[k].Commit(vm.P.Mem, src, addr, code)
		vm.caches[k].AddCovered(t.srcRanges())
		if stubAddr, ok := labels[stubsLabel]; ok {
			vm.caches[k].SetStubStart(stubAddr)
		}
		vm.Stats.Translations[k]++
		for _, pt := range t.newTraps {
			meta := pt.meta
			meta.gen = vm.gen[k]
			if pt.patchLabel != "" {
				meta.patchAddr = labels[pt.patchLabel]
			}
			vm.traps[k][labels[pt.label]] = meta
		}
		for _, pc := range t.newCalls {
			vm.calls[k][labels[pc.label]] = callMeta{srcRet: pc.srcRet, gen: vm.gen[k]}
		}
		if vm.shared != nil {
			vm.publishShared(key, addr, code, labels, t, mapN, lk0, ht0)
		}
		us := float64(time.Since(start)) / float64(time.Microsecond)
		vm.histTranslate[k].Observe(us)
		vm.histUnitBytes[k].Observe(float64(len(code)))
		vm.tel.Emit(telemetry.Event{
			Type: telemetry.EvTranslate, ISA: k.String(), Addr: src, Cost: us,
			Detail: fmt.Sprintf("%d bytes", len(code)),
		})
		vm.saveScratch(t)
		if sp.Active() {
			sp.SetCostUS(us)
			sp.SetDetail(fmt.Sprintf("src %#x, %d bytes", src, len(code)))
			sp.End()
		}
		return addr, nil
	}
	return 0, fmt.Errorf("dbt: unit for %#x exceeds code cache", src)
}

// saveScratch returns a finished translator's (possibly grown) buffers to
// the scratch pool for the next translation.
func (vm *VM) saveScratch(t *translator) {
	vm.xs.insts = t.insts
	vm.xs.callCtx = t.callCtx
	vm.xs.newTraps = t.newTraps
	vm.xs.newCalls = t.newCalls
}

// onControl implements the modified call/return macro-ops (paper §5.1)
// for execution inside the code cache.
func (vm *VM) onControl(m *machine.Machine, in *isa.Inst, kind machine.ControlKind, target, retAddr uint32) (uint32, uint32, error) {
	k := m.ISA
	if !vm.caches[k].Contains(in.Addr) {
		return target, retAddr, nil
	}
	switch kind {
	case machine.CtlCall:
		meta, ok := vm.calls[k][in.Addr]
		if !ok {
			return 0, 0, fmt.Errorf("%w: unregistered call site %#x", ErrSecurityKill, in.Addr)
		}
		cacheRet := in.Addr + uint32(in.Size)
		vm.rats[k].Insert(meta.srcRet, cacheRet)
		return target, meta.srcRet, nil
	case machine.CtlRet:
		if target == proc.ExitAddr {
			return target, retAddr, nil
		}
		if vm.PendingMigration && vm.Migrator != nil {
			if vm.Migrator.Migrate(vm, target, true) {
				vm.PendingMigration = false
				vm.Stats.Migrations++
				vm.tel.Emit(telemetry.Event{
					Type: telemetry.EvPolicy, ISA: vm.P.M.ISA.String(), Addr: target,
					Detail: "phase-migrate",
				})
				return vm.P.M.PC, retAddr, nil
			}
		}
		if cacheRet, ok := vm.rats[k].Lookup(target); ok {
			return cacheRet, retAddr, nil
		}
		// RAT miss: either an evicted translation (legitimate) or a
		// corrupted return address (attack). The VM makes no attempt to
		// distinguish (paper §3.5): this is a code-cache-miss security
		// event.
		vm.Stats.ReturnMisses++
		vm.tel.Emit(telemetry.Event{Type: telemetry.EvRATMiss, ISA: k.String(), Addr: target})
		newPC, err := vm.securityEvent(k, target, true)
		if err != nil {
			return 0, 0, err
		}
		return newPC, retAddr, nil
	}
	return target, retAddr, nil
}

// applyReRelocate performs the physical->relocated register marshal in
// software: recovery paths (RAT misses) enter freshly translated units
// that expect relocated state, while returns leave state in the boundary
// convention.
func (vm *VM) applyReRelocate(pmap *psr.Map) error {
	m := vm.P.M
	sp := m.SP()
	var snap [16]uint32
	copy(snap[:], m.Regs[:])
	for _, r := range relocatedRegs(pmap, m.ISA) {
		l := pmap.LocOfReg(r)
		if l.Kind == psr.LocReg {
			m.Regs[l.Reg] = snap[r]
		} else if err := m.Mem.WriteWord(sp+uint32(l.Off), snap[r]); err != nil {
			return err
		}
	}
	return nil
}

// securityEvent handles an indirect control transfer that missed the code
// cache: probabilistically migrate to the other ISA, then translate the
// target (wherever it points — legitimate block or gadget) and continue.
// returnBoundary marks events raised by returns, whose register state is
// in the boundary (physical) convention and must be re-relocated before
// entering a freshly translated continuation.
func (vm *VM) securityEvent(k isa.Kind, srcTarget uint32, returnBoundary bool) (uint32, error) {
	vm.Stats.CodeCacheMisses++
	vm.Stats.SecurityEvents++
	vm.LastEventTarget = srcTarget
	vm.tel.Emit(telemetry.Event{Type: telemetry.EvSecurity, ISA: k.String(), Addr: srcTarget})
	srcTarget, k2, err := vm.securityEventNormalize(k, srcTarget)
	if err != nil {
		return 0, err
	}
	k = k2
	if vm.Migrator != nil {
		if vm.policyRng.Float64() < vm.Cfg.MigrateProb {
			vm.tel.Emit(telemetry.Event{
				Type: telemetry.EvPolicy, ISA: k.String(), Addr: srcTarget,
				Detail: "security-migrate",
			})
			if vm.Migrator.Migrate(vm, srcTarget, returnBoundary) {
				vm.Stats.Migrations++
				vm.Stats.SecurityMigrations++
				return vm.P.M.PC, nil
			}
		} else {
			vm.tel.Emit(telemetry.Event{
				Type: telemetry.EvPolicy, ISA: k.String(), Addr: srcTarget,
				Detail: "stay",
			})
		}
	}
	pc, err := vm.require(k, srcTarget, true)
	if err != nil {
		return 0, err
	}
	if returnBoundary {
		if fn := vm.Bin.FuncAt(k, srcTarget); fn != nil {
			if err := vm.applyReRelocate(vm.mapOf(fn)[k]); err != nil {
				return 0, err
			}
		}
	}
	return pc, nil
}

// securityEventNormalize validates a security event's target, counting and
// tracing the kill when validation fails.
func (vm *VM) securityEventNormalize(k isa.Kind, srcTarget uint32) (uint32, isa.Kind, error) {
	t2, k2, err := vm.normalizeCodeAddr(k, srcTarget)
	if err != nil {
		vm.Stats.Kills++
		vm.tel.Emit(telemetry.Event{
			Type: telemetry.EvKill, ISA: k.String(), Addr: srcTarget, Detail: err.Error(),
		})
		return 0, k, err
	}
	return t2, k2, nil
}

// normalizeCodeAddr validates a code address and, when it points into the
// other ISA's text (a function pointer materialized before a migration),
// maps it to the current ISA via the symbol table. Targets inside either
// code cache are rejected outright (software fault isolation, §5.1).
func (vm *VM) normalizeCodeAddr(k isa.Kind, addr uint32) (uint32, isa.Kind, error) {
	for _, kk := range isa.Kinds {
		if vm.caches[kk].Contains(addr) {
			vm.Stats.Kills++
			vm.tel.Emit(telemetry.Event{
				Type: telemetry.EvKill, ISA: k.String(), Addr: addr,
				Detail: "indirect transfer into code cache",
			})
			return 0, k, fmt.Errorf("%w: indirect transfer into code cache at %#x", ErrSecurityKill, addr)
		}
	}
	if vm.Bin.FuncAt(k, addr) != nil {
		return addr, k, nil
	}
	other := k.Other()
	if fn := vm.Bin.FuncAt(other, addr); fn != nil {
		// Cross-ISA code pointer: prefer exact block correspondence, then
		// function entry.
		if _, blk := vm.Bin.BlockAt(other, addr); blk != nil && blk.Addr[other] == addr {
			return blk.Addr[k], k, nil
		}
		if fn.Entry[other] == addr {
			return fn.Entry[k], k, nil
		}
		return fn.Entry[k], k, nil
	}
	return 0, k, fmt.Errorf("%w: indirect transfer to non-text address %#x", ErrSecurityKill, addr)
}

// onSyscall dispatches program syscalls and VM traps.
func (vm *VM) onSyscall(m *machine.Machine, vector int32) error {
	k := m.ISA
	switch vector {
	case vecSyscall:
		vm.Stats.SyscallsForwarded++
		return vm.progSyscall(m, 0x80)
	case vecIndirect, vecChain, vecKill, vecPopPC:
		instrSize := uint32(2) // x86 int imm8
		if k == isa.ARM {
			instrSize = 4
		}
		key := m.PC - instrSize
		meta, ok := vm.traps[k][key]
		if !ok {
			return fmt.Errorf("%w: forged or stale trap at %#x", ErrSecurityKill, key)
		}
		switch vector {
		case vecKill:
			vm.Stats.Kills++
			vm.tel.Emit(telemetry.Event{
				Type: telemetry.EvKill, ISA: k.String(), Addr: key,
				Detail: "untranslatable code reached",
			})
			return fmt.Errorf("%w: untranslatable code reached (trap at %#x)", ErrSecurityKill, key)
		case vecChain:
			return vm.handleChain(m, k, &meta)
		case vecIndirect:
			return vm.handleIndirect(m, k, &meta)
		case vecPopPC:
			return vm.handlePopPC(m, k)
		}
	}
	return fmt.Errorf("dbt: unknown syscall vector %#x", vector)
}

// handleChain translates the target of a direct branch and patches the
// branch site to jump straight into the cache next time.
func (vm *VM) handleChain(m *machine.Machine, k isa.Kind, meta *trapMeta) error {
	cacheAddr, err := vm.require(k, meta.srcTarget, true)
	if err != nil {
		return err
	}
	if meta.gen == vm.gen[k] {
		in := isa.Inst{Op: meta.patchOp, Cond: meta.patchCond, Addr: meta.patchAddr, Target: cacheAddr}
		b, err := isa.Encode(k, &in)
		if err != nil {
			return fmt.Errorf("dbt: patch encode: %w", err)
		}
		vm.caches[k].Patch(vm.P.Mem, meta.patchAddr, b)
		vm.Stats.ChainPatches++
	}
	m.PC = cacheAddr
	return nil
}

// handleIndirect dispatches an indirect call or jump: evaluate the target
// from relocated state, police it, and transfer — marshaling staged
// arguments and updating the RAT for calls.
func (vm *VM) handleIndirect(m *machine.Machine, k isa.Kind, meta *trapMeta) error {
	vm.Stats.IndirectDispatch++
	fn := vm.Bin.Funcs[meta.fnIndex]
	pmap := vm.mapOf(fn)[k]
	var target uint32
	var err error
	if meta.targetSlot != 0 {
		// Indirect call: the target was staged before the boundary marshal.
		target, err = m.Mem.ReadWord(m.SP() + uint32(meta.targetSlot-meta.delta))
	} else {
		target, err = vm.evalOperand(m, pmap, meta.operand, meta.delta, meta.physState)
	}
	if err != nil {
		return fmt.Errorf("dbt: indirect target unavailable: %w", err)
	}
	target, k, err = vm.normalizeCodeAddr(k, target)
	if err != nil {
		return err
	}
	cacheAddr, hit := vm.caches[k].Lookup(target)
	if !meta.isCall {
		if hit {
			vm.caches[k].MarkIndirectTarget(target)
			m.PC = cacheAddr
			return nil
		}
		// Code-cache miss on an indirect jump: the security event (may
		// migrate; register state is in relocated form).
		newPC, err := vm.securityEvent(k, target, false)
		if err != nil {
			return err
		}
		vm.caches[vm.P.M.ISA].MarkIndirectTarget(target)
		m.PC = newPC
		return nil
	}
	// Indirect call: complete the dispatch on the current ISA first.
	genBefore := vm.gen[k]
	if !hit {
		vm.Stats.CodeCacheMisses++
		vm.Stats.SecurityEvents++
		vm.tel.Emit(telemetry.Event{Type: telemetry.EvSecurity, ISA: k.String(), Addr: target})
		cacheAddr, err = vm.require(k, target, true)
		if err != nil {
			vm.Stats.Kills++
			vm.tel.Emit(telemetry.Event{
				Type: telemetry.EvKill, ISA: k.String(), Addr: target, Detail: err.Error(),
			})
			return fmt.Errorf("%w: %v", ErrSecurityKill, err)
		}
	}
	vm.caches[k].MarkIndirectTarget(target)
	// Relocate staged arguments into the callee's randomized convention,
	// save the source return address per the ISA, update the RAT.
	callee := vm.Bin.FuncAt(k, target)
	if callee != nil && callee.Entry[k] == target {
		cmap := vm.mapOf(callee)[k]
		sp := m.SP()
		for i := 0; i < callee.NumArgs; i++ {
			v, err := m.Mem.ReadWord(sp + uint32(pmap.StageOff+4*int32(i)-meta.delta))
			if err != nil {
				return err
			}
			if err := m.Mem.WriteWord(sp+uint32(cmap.ArgOff[i]), v); err != nil {
				return err
			}
		}
	}
	// Register the return mapping — unless translating the callee flushed
	// the cache, in which case this unit's continuation is gone and the
	// return must take the RAT-miss recovery path instead.
	if vm.gen[k] == genBefore {
		cacheRet := m.PC // instruction after the trap
		vm.rats[m.ISA].Insert(meta.srcRet, cacheRet)
	}
	if m.ISA == isa.X86 {
		sp := m.SP() - 4
		if err := m.Mem.WriteWord(sp, meta.srcRet); err != nil {
			return err
		}
		m.SetSP(sp)
	} else {
		m.Regs[isa.LR] = meta.srcRet
	}
	m.PC = cacheAddr
	// A missing indirect call target is a potential breach: migrate to
	// the other ISA with some probability (paper §3.5), at the callee
	// entry boundary.
	if !hit && vm.Migrator != nil {
		if vm.policyRng.Float64() < vm.Cfg.MigrateProb {
			vm.tel.Emit(telemetry.Event{
				Type: telemetry.EvPolicy, ISA: k.String(), Addr: target,
				Detail: "security-migrate-entry",
			})
			if vm.Migrator.MigrateEntry(vm, target) {
				vm.Stats.Migrations++
				vm.Stats.SecurityMigrations++
			}
		} else {
			vm.tel.Emit(telemetry.Event{
				Type: telemetry.EvPolicy, ISA: k.String(), Addr: target,
				Detail: "stay",
			})
		}
	}
	return nil
}

// handlePopPC completes an ARM pop-multiple that included PC: the popped
// word is a source return address routed through the RAT.
func (vm *VM) handlePopPC(m *machine.Machine, k isa.Kind) error {
	sp := m.SP()
	srcRet, err := m.Mem.ReadWord(sp)
	if err != nil {
		return err
	}
	m.SetSP(sp + 4)
	if srcRet == proc.ExitAddr {
		m.Halted = true
		vm.P.Exited = true
		vm.P.ExitCode = m.Regs[isa.R0]
		return nil
	}
	if cacheRet, ok := vm.rats[k].Lookup(srcRet); ok {
		m.PC = cacheRet
		return nil
	}
	vm.Stats.ReturnMisses++
	vm.tel.Emit(telemetry.Event{Type: telemetry.EvRATMiss, ISA: k.String(), Addr: srcRet})
	newPC, err := vm.securityEvent(k, srcRet, true)
	if err != nil {
		return err
	}
	m.PC = newPC
	return nil
}

// evalOperand reads an indirect-transfer target from program state. When
// physState is set (indirect calls marshal to the boundary convention
// before trapping), registers are read physically; otherwise through the
// relocation map. Frame-resident values are always read through the map.
func (vm *VM) evalOperand(m *machine.Machine, pmap *psr.Map, o isa.Operand, delta int32, physState bool) (uint32, error) {
	sp := m.SP()
	regVal := func(r isa.Reg) (uint32, error) {
		if physState || r == isa.StackReg(m.ISA) {
			return m.Regs[r], nil
		}
		l := pmap.LocOfReg(r)
		if l.Kind == psr.LocReg {
			return m.Regs[l.Reg], nil
		}
		return m.Mem.ReadWord(sp + uint32(l.Off-delta))
	}
	switch o.Kind {
	case isa.OpdReg:
		return regVal(o.Reg)
	case isa.OpdMem:
		mr := o.Mem
		if mr.HasBase && mr.Base == isa.StackReg(m.ISA) && !mr.HasIndex {
			xc := mr.Disp + delta
			off := remapFrameOff(pmap, xc, nil, false)
			return m.Mem.ReadWord(sp + uint32(off-delta))
		}
		var ea uint32 = uint32(mr.Disp)
		if mr.HasBase {
			v, err := regVal(mr.Base)
			if err != nil {
				return 0, err
			}
			ea += v
		}
		if mr.HasIndex {
			v, err := regVal(mr.Index)
			if err != nil {
				return 0, err
			}
			s := uint32(mr.Scale)
			if s == 0 {
				s = 1
			}
			ea += v * s
		}
		return m.Mem.ReadWord(ea)
	}
	return 0, fmt.Errorf("dbt: bad indirect operand")
}
