package attack_test

import (
	"math"
	"testing"

	"hipstr/internal/attack"
	"hipstr/internal/compiler"
	"hipstr/internal/core"
	"hipstr/internal/dbt"
	"hipstr/internal/psr"
	"hipstr/internal/workload"
)

func TestBruteForceTable2Shape(t *testing.T) {
	p, _ := workload.ProfileByName("libquantum")
	bin, err := workload.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	res := attack.SimulateBruteForce(bin, psr.DefaultConfig(), 1)
	if res.ViableGadgets == 0 || res.ViableGadgets > res.TotalGadgets {
		t.Fatalf("viable %d of %d", res.ViableGadgets, res.TotalGadgets)
	}
	if res.AvgParams < 2 || res.AvgParams > 20 {
		t.Fatalf("avg params %.2f implausible", res.AvgParams)
	}
	// ~13 bits per parameter at 8 KiB frames.
	wantBits := res.AvgParams * 13
	if math.Abs(res.EntropyBits-wantBits) > res.AvgParams {
		t.Fatalf("entropy %.1f bits, expected about %.1f", res.EntropyBits, wantBits)
	}
	// The paper's headline: computationally infeasible (>= 1e15 even in
	// our smaller-binary setting; the paper's binaries give ~1e34).
	if res.AttemptsNoBias < 1e15 {
		t.Fatalf("brute-force attempts %.2e too low — defense ineffective", res.AttemptsNoBias)
	}
	if res.AttemptsBias < 1e10 {
		t.Fatalf("bias attempts %.2e too low", res.AttemptsBias)
	}
	t.Logf("%s: %d/%d viable, %.2f params, %.0f bits, %.2e / %.2e attempts",
		res.Benchmark, res.ViableGadgets, res.TotalGadgets,
		res.AvgParams, res.EntropyBits, res.AttemptsNoBias, res.AttemptsBias)
}

func TestJITROPSurfaceCollapses(t *testing.T) {
	p, _ := workload.ProfileByName("libquantum")
	bin, err := workload.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	res, err := attack.SimulateJITROP(bin, cfg, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: %d viable, %d in cache, %d trigger migration, %d survive (exploit=%v)",
		res.Benchmark, res.TotalViable, res.InCache, res.TriggerMigration,
		res.Survivors, res.SufficientForExploit)
	if res.TotalViable == 0 {
		t.Fatal("no viable gadgets at all")
	}
	if res.InCache >= res.TotalViable {
		t.Fatal("cache surface not smaller than the binary surface")
	}
	if res.Survivors > res.InCache {
		t.Fatal("survivors exceed cache population")
	}
	if res.SufficientForExploit {
		t.Fatal("JIT-ROP survivors sufficient for the execve exploit — defense failed")
	}
}

func TestEntropyCurves(t *testing.T) {
	// Figure 7: diversification-only techniques give 2^n; PSR-based
	// techniques dwarf them.
	for n := 1; n <= 12; n++ {
		iso := attack.Entropy(attack.TechIsomeron, n, 87)
		het := attack.Entropy(attack.TechHetISA, n, 87)
		if iso != math.Pow(2, float64(n)) || het != iso {
			t.Fatalf("diversification entropy wrong at n=%d", n)
		}
		hip := attack.EntropyBits(attack.TechHIPStR, n, 87)
		if hip <= attack.EntropyBits(attack.TechPSR, n, 87) {
			t.Fatalf("HIPStR entropy must exceed PSR alone at n=%d", n)
		}
	}
	// The paper's example: a length-8 chain under diversification alone
	// succeeds one in 256 attempts.
	if got := attack.Entropy(attack.TechIsomeron, 8, 87); got != 256 {
		t.Fatalf("length-8 Isomeron entropy = %v, want 256", got)
	}
}

func TestTailoredSurface(t *testing.T) {
	mod := workload.Generate(mustProfile(t, "libquantum"))
	bin, err := compiler.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	// Use a plausible PSR-surviving count (measured elsewhere); here the
	// shape of the curves is under test.
	res, err := attack.AnalyzeTailored(mod, bin, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", res)
	if res.Viable == 0 {
		t.Fatal("no viable gadgets")
	}
	if res.CrossISAImmune > res.SameISAImmune {
		t.Fatal("cross-ISA immunity should be rarer than same-ISA immunity")
	}
	// Figure 8: at p=1 HIPStR retains (almost) nothing; PSR+Isomeron
	// retains its same-ISA-immune gadgets.
	hipAt1 := res.Surviving(attack.TechHIPStR, 1.0)
	comboAt1 := res.Surviving(attack.TechPSRIsomeron, 1.0)
	if hipAt1 > comboAt1 {
		t.Fatalf("HIPStR (%f) should beat PSR+Isomeron (%f) at p=1", hipAt1, comboAt1)
	}
	// Curves decrease in p.
	for _, tech := range []attack.Technique{attack.TechIsomeron, attack.TechHIPStR, attack.TechPSRIsomeron} {
		if res.Surviving(tech, 0.2) < res.Surviving(tech, 0.8) {
			t.Fatalf("%v curve not decreasing", tech)
		}
	}
}

func TestBlindROPModel(t *testing.T) {
	m := attack.BlindROPModel{EntropyBits: 13, Unknowns: 6}
	lt := m.LoadTimeAttempts()
	rt := m.RunTimeAttempts()
	if lt >= rt {
		t.Fatalf("load-time attempts (%.2e) must be far below run-time (%.2e)", lt, rt)
	}
	if lt > 1e6 {
		t.Fatalf("load-time randomization should fall to Blind-ROP quickly: %.2e", lt)
	}
	if rt < 1e20 {
		t.Fatalf("run-time re-randomization should be infeasible: %.2e", rt)
	}
}

func TestRespawnProbeDoesNotImprove(t *testing.T) {
	v := victim(t)
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModePSR
	cfg.DBT.Seed = 11
	hijacks, shells, err := attack.RespawnProbe(v, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("12 respawn probes: %d hijacks, %d shells", hijacks, shells)
	if shells > 1 {
		t.Fatalf("respawn probing spawned %d shells", shells)
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	return p
}
