package health

import (
	"testing"
	"time"
)

const secNS = int64(time.Second)

// feed appends one gauge sample and evaluates the rules — one monitor tick.
func feed(h *History, e *Engine, tsNS int64, name string, v float64) {
	h.Append(tsNS, snap(nil, map[string]float64{name: v}))
	e.Eval(tsNS)
}

func newTestEngine(rules ...Rule) (*History, *Engine, *Recorder) {
	h := NewHistory(64, 16)
	rec := NewRecorder(RecorderConfig{})
	return h, NewEngine(h, rec, rules), rec
}

func TestThresholdLifecycle(t *testing.T) {
	h, e, rec := newTestEngine(Rule{
		Name: "hot", Series: "g", Kind: KindThreshold, Threshold: 10,
		For: 2 * time.Second, Cooldown: 2 * time.Second,
	})
	// Healthy.
	feed(h, e, 0, "g", 1)
	feed(h, e, 1*secNS, "g", 2)
	if got := e.OpenCount(); got != 0 {
		t.Fatalf("open after healthy samples: %d", got)
	}
	// Breach: must hold For=2s before opening.
	feed(h, e, 2*secNS, "g", 50) // badSince=2s
	feed(h, e, 3*secNS, "g", 60)
	if e.OpenCount() != 0 {
		t.Fatal("opened before For elapsed")
	}
	feed(h, e, 4*secNS, "g", 70) // 2s of continuous breach
	if e.OpenCount() != 1 {
		t.Fatal("did not open after For elapsed")
	}
	incs := rec.Incidents()
	if len(incs) != 1 || incs[0].Rule.Name != "hot" || !incs[0].Open() {
		t.Fatalf("incidents: %+v", incs)
	}
	if incs[0].Value != 70 {
		t.Fatalf("opening value=%v, want 70", incs[0].Value)
	}
	if len(incs[0].Window) == 0 {
		t.Fatal("threshold incident captured no window")
	}
	// Peak tracks the worst value while open.
	feed(h, e, 5*secNS, "g", 90)
	if incs = rec.Incidents(); incs[0].Peak != 90 {
		t.Fatalf("peak=%v, want 90", incs[0].Peak)
	}
	// Clear: must stay clear Cooldown=2s before resolving.
	feed(h, e, 6*secNS, "g", 1) // goodSince=6s
	feed(h, e, 7*secNS, "g", 1)
	if e.OpenCount() != 1 {
		t.Fatal("resolved before Cooldown elapsed")
	}
	feed(h, e, 8*secNS, "g", 1)
	if e.OpenCount() != 0 {
		t.Fatal("did not resolve after Cooldown")
	}
	incs = rec.Incidents()
	if incs[0].Open() || incs[0].ResolvedNS != 8*secNS {
		t.Fatalf("resolution: %+v", incs[0])
	}
	opened, resolved, stored := rec.Counts()
	if opened != 1 || resolved != 1 || stored != 1 {
		t.Fatalf("counts: %d %d %d", opened, resolved, stored)
	}
}

// TestHysteresisNoFlapOnSpike is the no-flap guarantee: a single-sample
// spike that clears by the next evaluation never opens an incident when
// the rule carries a For window.
func TestHysteresisNoFlapOnSpike(t *testing.T) {
	h, e, rec := newTestEngine(Rule{
		Name: "spiky", Series: "g", Kind: KindThreshold, Threshold: 10,
		For: time.Second, Cooldown: time.Second,
	})
	for i := 0; i < 20; i++ {
		v := 1.0
		if i == 10 {
			v = 1000 // one-sample spike
		}
		feed(h, e, int64(i)*secNS/2, "g", v) // 500ms ticks < For=1s
	}
	if opened, _, _ := rec.Counts(); opened != 0 {
		t.Fatalf("single-sample spike opened %d incidents", opened)
	}
}

// TestForZeroOpensImmediately: a rule without hysteresis pages on the
// first breaching evaluation.
func TestForZeroOpensImmediately(t *testing.T) {
	h, e, _ := newTestEngine(Rule{Name: "now", Series: "g", Kind: KindThreshold, Threshold: 10})
	feed(h, e, 0, "g", 11)
	if e.OpenCount() != 1 {
		t.Fatal("For=0 rule did not open on first breach")
	}
}

func TestRateRuleSurvivesCounterReset(t *testing.T) {
	h, e, rec := newTestEngine(Rule{
		Name: "storm", Series: "c", Kind: KindRate, Threshold: 50,
		Window: 5 * time.Second,
	})
	tick := func(ts int64, v uint64) {
		h.Append(ts, snap(map[string]uint64{"c": v}, nil))
		e.Eval(ts)
	}
	// 10/s: healthy. Then a reset (200 -> 5): with naive deltas the rate
	// would go hugely negative; reset-safe it stays ~10/s and still no fire.
	tick(0, 100)
	tick(1*secNS, 110)
	tick(2*secNS, 120)
	tick(3*secNS, 5) // reset
	tick(4*secNS, 15)
	if opened, _, _ := rec.Counts(); opened != 0 {
		t.Fatalf("counter reset opened %d incidents", opened)
	}
	// A real storm: +200/s.
	tick(5*secNS, 215)
	tick(6*secNS, 415)
	if e.OpenCount() != 1 {
		t.Fatal("genuine rate storm did not open")
	}
}

func TestBurnRule(t *testing.T) {
	h, e, _ := newTestEngine(Rule{
		Name: "slo", Series: "g", Kind: KindBurn, Threshold: 100,
		Fraction: 0.5, Window: 10 * time.Second,
	})
	// 1 of 4 samples breaching: 25% < 50%, no fire.
	for i, v := range []float64{10, 500, 10, 10} {
		feed(h, e, int64(i)*secNS, "g", v)
	}
	if e.OpenCount() != 0 {
		t.Fatal("burn fired below fraction")
	}
	// Push the breach fraction over 50% of the window.
	for i := 4; i < 10; i++ {
		feed(h, e, int64(i)*secNS, "g", 500)
	}
	if e.OpenCount() != 1 {
		t.Fatal("burn did not fire above fraction")
	}
}

func TestDerivRuleIgnoresDrainingGauge(t *testing.T) {
	h, e, rec := newTestEngine(Rule{
		Name: "starve", Series: "depth", Kind: KindDeriv, Threshold: 50,
		Window: 5 * time.Second,
	})
	// A deep queue draining: every slope is negative, so a deriv rule never
	// sees growth (a reset-safe rate rule would fire here, because it folds
	// each decrease into "reset + growth from zero").
	for i, v := range []float64{500, 400, 300, 200, 100} {
		feed(h, e, int64(i)*secNS, "depth", v)
	}
	if opened, _, _ := rec.Counts(); opened != 0 {
		t.Fatalf("draining gauge opened %d incidents", opened)
	}
	// Sustained growth fires.
	for i, v := range []float64{200, 300, 400, 500} {
		feed(h, e, int64(5+i)*secNS, "depth", v)
	}
	if e.OpenCount() != 1 {
		t.Fatal("sustained gauge growth did not open")
	}
}

func TestMissingSeriesIsHealthy(t *testing.T) {
	h, e, rec := newTestEngine(Rule{Name: "ghost", Series: "absent", Kind: KindThreshold, Threshold: 1})
	feed(h, e, 0, "other", 100)
	feed(h, e, secNS, "other", 100)
	if opened, _, _ := rec.Counts(); opened != 0 {
		t.Fatalf("missing series opened %d incidents", opened)
	}
}

func TestOpBelow(t *testing.T) {
	h, e, _ := newTestEngine(Rule{
		Name: "floor", Series: "g", Kind: KindThreshold, Op: OpBelow, Threshold: 5,
	})
	feed(h, e, 0, "g", 10)
	if e.OpenCount() != 0 {
		t.Fatal("OpBelow fired above threshold")
	}
	feed(h, e, secNS, "g", 2)
	if e.OpenCount() != 1 {
		t.Fatal("OpBelow did not fire below threshold")
	}
}
