package attack

import (
	"math"

	"hipstr/internal/core"
)

// BlindROPModel compares expected attack effort against load-time and
// run-time randomization under the crash/respawn threat model of §5.3: a
// parent re-spawns the worker on every crash, and the attacker probes one
// unknown at a time.
type BlindROPModel struct {
	// EntropyBits is the per-unknown randomization entropy.
	EntropyBits float64
	// Unknowns is how many independent values the exploit needs (gadget
	// locations, data slots, return-address slots).
	Unknowns int
}

// LoadTimeAttempts is the expected probe count against load-time
// randomization: state survives respawn, so each unknown is probed
// incrementally and the costs ADD (the Blind-ROP result — thousands of
// attempts even against 64-bit ASLR).
func (m BlindROPModel) LoadTimeAttempts() float64 {
	perUnknown := math.Pow(2, m.EntropyBits) / 2 // expected scan to hit
	return float64(m.Unknowns) * perUnknown
}

// RunTimeAttempts is the expected count against run-time (respawn-
// re-randomized) PSR: nothing learned survives a crash, so all unknowns
// must be guessed simultaneously and the costs MULTIPLY.
func (m BlindROPModel) RunTimeAttempts() float64 {
	return math.Pow(math.Pow(2, m.EntropyBits), float64(m.Unknowns)) / 2
}

// RespawnProbe drives a real Blind-ROP-style campaign against a protected
// victim: each attempt sprays the overflow budget with a gadget address,
// and every crash re-spawns the worker with fresh randomization. It
// returns the number of attempts that hijacked control (observed security
// events) and how many spawned a shell. With an 8 KiB randomization space
// and a bounded overflow, control hijack is rare and shells rarer still —
// and, crucially, the hit rate does NOT improve across attempts.
func RespawnProbe(v *Victim, cfg core.Config, attempts int) (hijacks, shells int, err error) {
	s, err := core.New(v.Bin, cfg)
	if err != nil {
		return 0, 0, err
	}
	payload := v.SprayPayload(NetBufWords - 1)
	for i := 0; i < attempts; i++ {
		if err := s.Respawn(); err != nil {
			return hijacks, shells, err
		}
		if err := inject(s.VM.P.Mem, v.NetBuf, payload); err != nil {
			return hijacks, shells, err
		}
		before := s.SecurityEvents()
		_, runErr := s.Run(attackMaxSteps)
		if s.SecurityEvents() > before {
			hijacks++
		}
		if v.shellSpawned(s.VM.P) {
			shells++
		}
		_ = runErr // crashes simply trigger the next respawn
	}
	return hijacks, shells, nil
}
