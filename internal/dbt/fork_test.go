package dbt_test

import (
	"reflect"
	"sync"
	"testing"

	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
)

// TestForkOfFreshPrototypeEqualsColdBoot: a fork taken right after boot
// must be byte- and stats-indistinguishable from a cold New of the same
// config — same translations, same cache bytes, same run outcome.
func TestForkOfFreshPrototypeEqualsColdBoot(t *testing.T) {
	bin, want := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.Seed = 11
	cfg.MigrateProb = 0
	cfg.NoSharedUnits = true // compare two fully cold translation paths

	cold, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fork, err := proto.Snapshot().Fork(dbt.ForkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range []*dbt.VM{cold, fork} {
		if _, err := vm.Run(maxSteps); err != nil {
			t.Fatal(err)
		}
		if !vm.P.Exited || vm.P.ExitCode != want {
			t.Fatalf("exit=%v code=%d want %d", vm.P.Exited, vm.P.ExitCode, want)
		}
	}
	if !reflect.DeepEqual(cold.Stats, fork.Stats) {
		t.Fatalf("stats diverged:\ncold %+v\nfork %+v", cold.Stats, fork.Stats)
	}
	for _, k := range isa.Kinds {
		cu, fu := cold.Cache(k).Used(), fork.Cache(k).Used()
		if cu != fu {
			t.Fatalf("%s cache used: cold %d fork %d", k, cu, fu)
		}
		cb := make([]byte, cu)
		fb := make([]byte, fu)
		if err := cold.P.Mem.Read(fatbin.CacheBase(k), cb); err != nil {
			t.Fatal(err)
		}
		if err := fork.P.Mem.Read(fatbin.CacheBase(k), fb); err != nil {
			t.Fatal(err)
		}
		if string(cb) != string(fb) {
			t.Fatalf("%s cache bytes diverged between cold boot and fork", k)
		}
	}
}

// TestForkIsolation: forks of one snapshot run to completion without
// perturbing each other or the prototype (VM-level CoW divergence).
func TestForkIsolation(t *testing.T) {
	bin, want := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	proto, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := proto.Snapshot()
	a, err := snap.Fork(dbt.ForkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.Fork(dbt.ForkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Run A to completion; B and the prototype must be untouched by A's
	// heap/stack/cache writes.
	if _, err := a.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if a.P.ExitCode != want {
		t.Fatalf("fork A exit %d want %d", a.P.ExitCode, want)
	}
	if b.P.M.Steps != 0 || b.P.Exited {
		t.Fatal("fork B advanced when only A ran")
	}
	for _, vm := range []*dbt.VM{b, proto} {
		if _, err := vm.Run(maxSteps); err != nil {
			t.Fatal(err)
		}
		if vm.P.ExitCode != want {
			t.Fatalf("exit %d want %d", vm.P.ExitCode, want)
		}
	}
	if a.P.Mem.CowBroken() == 0 {
		t.Fatal("fork A completed without breaking any CoW page")
	}
}

// TestSnapshotRespawnReRandomizes: a respawn fork re-randomizes relocation
// maps under the new seed while restoring the snapshot's memory image.
func TestSnapshotRespawnReRandomizes(t *testing.T) {
	bin, want := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	proto, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := proto.Snapshot()
	re, err := snap.Respawn(isa.X86, 999, dbt.ForkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fn := bin.Func("main")
	m1 := proto.MapOf(fn)[isa.X86]
	m2 := re.MapOf(fn)[isa.X86]
	if reflect.DeepEqual(m1.OffTo, m2.OffTo) {
		t.Fatal("respawn fork did not re-randomize the relocation map")
	}
	if _, err := re.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if re.P.ExitCode != want {
		t.Fatalf("respawned fork exit %d want %d", re.P.ExitCode, want)
	}
	// The prototype must still run unperturbed afterwards.
	if _, err := proto.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if proto.P.ExitCode != want {
		t.Fatalf("prototype exit %d want %d", proto.P.ExitCode, want)
	}
}

// TestEightForksSharedSnapshotRace: eight VMs forked from one snapshot run
// concurrently (run with -race): shared CoW frames, the shared unit cache,
// and the snapshot structures must all be safe, and every guest must
// compute the same result.
func TestEightForksSharedSnapshotRace(t *testing.T) {
	bin, want := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.SharedUnits = dbt.NewUnitCache(dbt.DefaultUnitCacheBytes)
	proto, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := proto.Snapshot()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	codes := make([]uint32, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vm, err := snap.Fork(dbt.ForkConfig{})
			if err != nil {
				errs <- err
				return
			}
			if _, err := vm.Run(maxSteps); err != nil {
				errs <- err
				return
			}
			codes[i] = vm.P.ExitCode
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, c := range codes {
		if c != want {
			t.Fatalf("fork %d exit %d want %d", i, c, want)
		}
	}
}
