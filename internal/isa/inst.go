package isa

import (
	"fmt"
	"strings"
)

// Op is the architecture-neutral semantic opcode of a decoded instruction.
// Both decoders produce Insts over this shared vocabulary so the machine
// interpreter, the gadget analyzer, and the PSR translator can reason about
// either ISA uniformly.
type Op uint8

const (
	OpInvalid Op = iota
	OpNop
	OpMov   // dst = src
	OpAdd   // dst = (src2|dst) + src
	OpSub   // dst = (src2|dst) - src
	OpRsb   // dst = src - src2 (ARM reverse subtract)
	OpAnd   // dst = (src2|dst) & src
	OpOr    // dst = (src2|dst) | src
	OpXor   // dst = (src2|dst) ^ src
	OpShl   // dst = (src2|dst) << src
	OpShr   // dst = (src2|dst) >> src (logical)
	OpMul   // dst = (src2|dst) * src
	OpDiv   // dst = (src2|dst) / src (unsigned; x86 form uses EAX/EDX pair)
	OpNeg   // dst = -dst
	OpNot   // dst = ^dst
	OpInc   // dst = dst + 1
	OpDec   // dst = dst - 1
	OpCmp   // set flags from (src2|dst) - src
	OpTest  // set flags from (src2|dst) & src
	OpLea   // dst = effective address of src mem operand
	OpLoad  // dst(reg) = mem[src]  (ARM ldr; on x86 expressed as OpMov with mem src)
	OpStore // mem[dst] = src       (ARM str; on x86 expressed as OpMov with mem dst)
	OpPush  // push src
	OpPop   // pop into dst
	OpPushM // push register mask (ARM stmdb sp!, {...})
	OpPopM  // pop register mask (ARM ldmia sp!, {...}); mask containing PC is a return
	OpJmp   // unconditional direct jump to Target
	OpJcc   // conditional direct jump to Target, condition in Cond
	OpCall  // direct call to Target
	OpJmpI  // indirect jump through dst operand (reg or mem)
	OpCallI // indirect call through dst operand (reg or mem)
	OpRet   // x86 ret: pop return address and jump
	OpBx    // ARM bx rm: branch to register; bx lr is the return idiom
	OpLeave // x86 leave: esp = ebp; pop ebp
	OpSys   // software interrupt / svc; Imm selects the vector
	OpHlt   // halt marker (used to fence code regions)
	OpMovT  // ARM movt: dst = (dst & 0xFFFF) | imm<<16
)

var opNames = map[Op]string{
	OpInvalid: "(invalid)", OpNop: "nop", OpMov: "mov", OpAdd: "add",
	OpSub: "sub", OpRsb: "rsb", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpMul: "mul", OpDiv: "div", OpNeg: "neg",
	OpNot: "not", OpInc: "inc", OpDec: "dec", OpCmp: "cmp", OpTest: "test",
	OpLea: "lea", OpLoad: "ldr", OpStore: "str", OpPush: "push", OpPop: "pop",
	OpPushM: "pushm", OpPopM: "popm", OpJmp: "jmp", OpJcc: "jcc",
	OpCall: "call", OpJmpI: "jmp*", OpCallI: "call*", OpRet: "ret",
	OpBx: "bx", OpLeave: "leave", OpSys: "sys", OpHlt: "hlt", OpMovT: "movt",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsControl reports whether o transfers control.
func (o Op) IsControl() bool {
	switch o {
	case OpJmp, OpJcc, OpCall, OpJmpI, OpCallI, OpRet, OpBx, OpSys:
		return true
	}
	return false
}

// IsIndirect reports whether o is an indirect control transfer (a gadget
// terminator the PSR virtual machine must police).
func (o Op) IsIndirect() bool {
	switch o {
	case OpJmpI, OpCallI, OpRet, OpBx:
		return true
	}
	return false
}

// Cond is a branch condition shared by both ISAs.
type Cond uint8

const (
	CondAlways Cond = iota
	CondEQ          // equal / zero
	CondNE          // not equal / not zero
	CondLT          // signed less than
	CondGE          // signed greater or equal
	CondGT          // signed greater than
	CondLE          // signed less or equal
	CondB           // unsigned below
	CondAE          // unsigned above or equal
)

var condNames = [...]string{"al", "eq", "ne", "lt", "ge", "gt", "le", "b", "ae"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondGE:
		return CondLT
	case CondGT:
		return CondLE
	case CondLE:
		return CondGT
	case CondB:
		return CondAE
	case CondAE:
		return CondB
	default:
		return CondAlways
	}
}

// OperandKind discriminates Operand.
type OperandKind uint8

const (
	OpdNone OperandKind = iota
	OpdReg
	OpdImm
	OpdMem
)

// MemRef is a memory operand: [base + index*scale + disp].
type MemRef struct {
	Base     Reg
	Index    Reg
	HasBase  bool
	HasIndex bool
	Scale    uint8 // 1, 2, 4 or 8
	Disp     int32
}

func (m MemRef) String() string {
	var b strings.Builder
	b.WriteByte('[')
	parts := 0
	if m.HasBase {
		b.WriteString(fmt.Sprintf("r%d", uint8(m.Base)))
		parts++
	}
	if m.HasIndex {
		if parts > 0 {
			b.WriteByte('+')
		}
		b.WriteString(fmt.Sprintf("r%d*%d", uint8(m.Index), m.Scale))
		parts++
	}
	if m.Disp != 0 || parts == 0 {
		if m.Disp >= 0 && parts > 0 {
			b.WriteByte('+')
		}
		b.WriteString(fmt.Sprintf("%#x", m.Disp))
	}
	b.WriteByte(']')
	return b.String()
}

// Operand is a decoded instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int32
	Mem  MemRef
}

// R builds a register operand.
func R(r Reg) Operand { return Operand{Kind: OpdReg, Reg: r} }

// I builds an immediate operand.
func I(v int32) Operand { return Operand{Kind: OpdImm, Imm: v} }

// M builds a memory operand.
func M(m MemRef) Operand { return Operand{Kind: OpdMem, Mem: m} }

// MB builds a base+displacement memory operand.
func MB(base Reg, disp int32) Operand {
	return Operand{Kind: OpdMem, Mem: MemRef{Base: base, HasBase: true, Disp: disp}}
}

func (o Operand) String() string {
	switch o.Kind {
	case OpdNone:
		return "_"
	case OpdReg:
		return fmt.Sprintf("r%d", uint8(o.Reg))
	case OpdImm:
		return fmt.Sprintf("$%#x", o.Imm)
	case OpdMem:
		return o.Mem.String()
	default:
		return "?"
	}
}

// IsReg reports whether o is the given register.
func (o Operand) IsReg(r Reg) bool { return o.Kind == OpdReg && o.Reg == r }

// Inst is a decoded instruction in architecture-neutral form. Dst is the
// x86-style destination (also a source for two-operand ALU forms); Src is
// the second operand. Src2, when present, makes the instruction
// three-operand (ARM ALU form: Dst = Src2 op Src).
type Inst struct {
	Op      Op
	Cond    Cond
	Dst     Operand
	Src     Operand
	Src2    Operand
	Target  uint32 // absolute target of direct control transfers
	Imm     int32  // auxiliary immediate (OpSys vector, ret pop count)
	RegMask uint16 // register set of OpPushM/OpPopM
	Addr    uint32 // address the instruction was decoded from
	Size    uint8  // encoded length in bytes
	ISA     Kind
	// ByteOp marks 8-bit x86 operand forms (operations touch only the low
	// byte of registers/memory). These encodings dominate the
	// unintentional-gadget surface of dense variable-length ISAs.
	ByteOp bool
}

// ThreeOperand reports whether the instruction uses the ARM-style
// dst = src2 op src form.
func (in *Inst) ThreeOperand() bool { return in.Src2.Kind != OpdNone }

// EndsBlock reports whether the instruction terminates a basic block for
// predecoding purposes: any control transfer, a halt, or an ARM pop
// multiple whose mask includes PC (a return in disguise — OpPopM is not an
// Op.IsControl op, but it redirects the PC all the same).
func (in *Inst) EndsBlock() bool {
	if in.Op.IsControl() || in.Op == OpHlt {
		return true
	}
	return in.Op == OpPopM && in.RegMask&(1<<PC) != 0
}

// IsReturn reports whether the instruction is a return idiom of its ISA:
// x86 ret, ARM bx lr, or an ARM pop multiple whose mask includes PC.
func (in *Inst) IsReturn() bool {
	switch in.Op {
	case OpRet:
		return true
	case OpBx:
		return in.Dst.IsReg(LR)
	case OpPopM:
		return in.RegMask&(1<<PC) != 0
	}
	return false
}

func (in *Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%08x: %s", in.Addr, in.Op)
	if in.Op == OpJcc || (in.Cond != CondAlways && in.Op != OpJcc) {
		fmt.Fprintf(&b, ".%s", in.Cond)
	}
	switch in.Op {
	case OpJmp, OpJcc, OpCall:
		fmt.Fprintf(&b, " %#x", in.Target)
		return b.String()
	case OpPushM, OpPopM:
		fmt.Fprintf(&b, " {%#04x}", in.RegMask)
		return b.String()
	case OpSys:
		fmt.Fprintf(&b, " %#x", in.Imm)
		return b.String()
	}
	sep := " "
	for _, o := range []Operand{in.Dst, in.Src, in.Src2} {
		if o.Kind == OpdNone {
			continue
		}
		b.WriteString(sep)
		b.WriteString(o.String())
		sep = ", "
	}
	return b.String()
}

// RegsRead returns the architectural registers the instruction reads,
// excluding the stack pointer's implicit use by push/pop/call/ret.
func (in *Inst) RegsRead() []Reg {
	var out []Reg
	add := func(r Reg) {
		for _, e := range out {
			if e == r {
				return
			}
		}
		out = append(out, r)
	}
	addOpd := func(o Operand, read bool) {
		switch o.Kind {
		case OpdReg:
			if read {
				add(o.Reg)
			}
		case OpdMem:
			if o.Mem.HasBase {
				add(o.Mem.Base)
			}
			if o.Mem.HasIndex {
				add(o.Mem.Index)
			}
		}
	}
	switch in.Op {
	case OpMov, OpLea, OpLoad, OpPop:
		addOpd(in.Dst, false) // dst only read for address computation
		addOpd(in.Src, true)
	case OpStore:
		addOpd(in.Dst, false)
		addOpd(in.Src, true)
		if in.Dst.Kind == OpdMem {
			// address registers already added
		}
	case OpPush:
		addOpd(in.Src, true)
	case OpPushM:
		for r := Reg(0); r < 16; r++ {
			if in.RegMask&(1<<r) != 0 {
				add(r)
			}
		}
	case OpJmpI, OpCallI, OpBx:
		addOpd(in.Dst, true)
	case OpNeg, OpNot, OpInc, OpDec, OpMovT:
		addOpd(in.Dst, true)
	case OpAdd, OpSub, OpRsb, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv, OpCmp, OpTest:
		if in.ThreeOperand() {
			addOpd(in.Src2, true)
			addOpd(in.Src, true)
			addOpd(in.Dst, false)
		} else {
			addOpd(in.Dst, true)
			addOpd(in.Src, true)
		}
	}
	return out
}

// RegsWritten returns the architectural registers the instruction writes,
// excluding implicit stack-pointer updates.
func (in *Inst) RegsWritten() []Reg {
	switch in.Op {
	case OpMov, OpLea, OpLoad, OpPop, OpAdd, OpSub, OpRsb, OpAnd, OpOr,
		OpXor, OpShl, OpShr, OpMul, OpNeg, OpNot, OpInc, OpDec, OpMovT:
		if in.Dst.Kind == OpdReg {
			return []Reg{in.Dst.Reg}
		}
	case OpDiv:
		if in.ISA == X86 {
			return []Reg{EAX, EDX}
		}
		if in.Dst.Kind == OpdReg {
			return []Reg{in.Dst.Reg}
		}
	case OpPopM:
		var out []Reg
		for r := Reg(0); r < 16; r++ {
			if in.RegMask&(1<<r) != 0 {
				out = append(out, r)
			}
		}
		return out
	case OpLeave:
		return []Reg{EBP}
	}
	return nil
}
