package health

import "time"

// VMRules is the built-in rule set for a single protected VM (hipstr-run):
// the code-cache and security-pressure anomalies that exist without a
// fleet. Fleet-scale rules (respawn storms, latency SLO burn, injector
// starvation) live with the host in fleet.DefaultHealthRules.
func VMRules() []Rule {
	return []Rule{
		{
			Name:        "code-cache-thrash",
			Series:      "machine.blockcache.invalidations.full",
			Kind:        KindRate,
			Threshold:   50, // whole-cache reconciles/sec
			Window:      5 * time.Second,
			For:         time.Second,
			Cooldown:    2 * time.Second,
			Severity:    "warn",
			Description: "full block-cache invalidations sustained: predecoded blocks are being rebuilt wholesale instead of patched",
		},
		{
			Name:        "code-cache-evict-churn",
			Series:      "machine.blockcache.evicted",
			Kind:        KindRate,
			Threshold:   5000, // evicted blocks/sec
			Window:      5 * time.Second,
			For:         time.Second,
			Cooldown:    2 * time.Second,
			Severity:    "warn",
			Description: "block eviction churn: translations are being thrown away about as fast as they are made (undersized cache)",
		},
		{
			Name:        "security-event-wave",
			Series:      "dbt.security_events",
			Kind:        KindRate,
			Threshold:   5000, // cache-miss security events/sec
			Window:      3 * time.Second,
			For:         500 * time.Millisecond,
			Cooldown:    2 * time.Second,
			Severity:    "page",
			Description: "code-cache-miss security events arriving far above steady state: an active probe or gadget brute-force",
		},
	}
}
