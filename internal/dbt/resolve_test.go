package dbt_test

import (
	"testing"

	"hipstr/internal/dbt"
	"hipstr/internal/isa"
)

// TestResolvePC checks the execution-PC → guest-source mapping the
// sampling profiler depends on: cache PCs anywhere inside a translation
// unit resolve to a source address that symbolizes, guest text PCs resolve
// to themselves, and everything else reports failure.
func TestResolvePC(t *testing.T) {
	bin, _ := compile(t, "nested")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm := runVM(t, bin, isa.X86, cfg)

	cache := vm.Cache(isa.X86)
	if cache.NumUnits() == 0 {
		t.Fatal("no translations to resolve against")
	}
	resolved := 0
	for _, src := range cache.TranslatedSources() {
		cacheAddr, ok := cache.Lookup(src)
		if !ok {
			continue
		}
		// Probe the unit entry and an interior PC: both must map back.
		for _, pc := range []uint32{cacheAddr, cacheAddr + 2} {
			got, ok := vm.ResolvePC(isa.X86, pc)
			if !ok {
				t.Fatalf("ResolvePC(%#x) failed for unit of %#x", pc, src)
			}
			if fn := bin.FuncAt(isa.X86, got); fn == nil {
				t.Fatalf("ResolvePC(%#x) = %#x does not symbolize", pc, got)
			}
		}
		got, _ := vm.ResolvePC(isa.X86, cacheAddr)
		if got != src {
			t.Errorf("unit entry %#x resolved to %#x, want %#x", cacheAddr, got, src)
		}
		resolved++
	}
	if resolved == 0 {
		t.Fatal("no units exercised")
	}

	// Guest text addresses are their own source.
	entry := bin.Funcs[0].Entry[isa.X86]
	if got, ok := vm.ResolvePC(isa.X86, entry); !ok || got != entry {
		t.Errorf("text PC %#x resolved to (%#x, %v), want identity", entry, got, ok)
	}

	// Unallocated cache space and arbitrary addresses do not resolve.
	if _, ok := vm.ResolvePC(isa.X86, cache.Base+cache.Size-4); ok {
		t.Error("unallocated cache tail resolved")
	}
	if _, ok := vm.ResolvePC(isa.X86, 0x10); ok {
		t.Error("junk address resolved")
	}
}

// TestUnitAtFlush pins that a flush forgets every unit mapping.
func TestUnitAtFlush(t *testing.T) {
	bin, _ := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm := runVM(t, bin, isa.ARM, cfg)
	cache := vm.Cache(isa.ARM)
	if cache.NumUnits() == 0 {
		t.Fatal("no translations")
	}
	var any uint32
	for _, src := range cache.TranslatedSources() {
		any, _ = cache.Lookup(src)
		break
	}
	if _, ok := cache.UnitAt(any); !ok {
		t.Fatalf("UnitAt(%#x) failed pre-flush", any)
	}
	cache.Flush()
	if _, ok := cache.UnitAt(any); ok {
		t.Error("UnitAt resolved after flush")
	}
}
