package psr

import (
	"reflect"
	"testing"
	"testing/quick"

	"hipstr/internal/compiler"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/testprogs"
)

func mainMeta(t *testing.T) *fatbin.FuncMeta {
	t.Helper()
	bin, err := compiler.Compile(testprogs.Fib(5))
	if err != nil {
		t.Fatal(err)
	}
	return bin.Func("fib")
}

func buildMap(t *testing.T, seed int64, k isa.Kind, cfg Config) *Map {
	t.Helper()
	return NewRandomizer(seed, cfg).Build(mainMeta(t), k)
}

func TestMapOffsetsInjectiveAndInRange(t *testing.T) {
	for _, k := range isa.Kinds {
		m := buildMap(t, 1, k, DefaultConfig())
		seen := map[int32]bool{}
		for orig, to := range m.OffTo {
			if seen[to] {
				t.Fatalf("%s: offset %#x has duplicate target %#x", k, orig, to)
			}
			seen[to] = true
			if to < 0 || uint32(to)+4 > m.NewFrameSize {
				t.Fatalf("%s: relocated offset %#x outside frame (size %#x)", k, to, m.NewFrameSize)
			}
		}
		if m.NewFrameSize != m.Fn.FrameSize+m.RandSpace {
			t.Fatalf("%s: frame size arithmetic wrong", k)
		}
	}
}

func TestReturnAddressRelocated(t *testing.T) {
	m := buildMap(t, 2, isa.X86, DefaultConfig())
	canonical := int32(m.Fn.RetAddrOff())
	if m.RetOff == canonical {
		t.Fatal("return address not relocated")
	}
	if m.RetOff < ArgWindow || m.RetOff >= m.StageOff {
		t.Fatalf("return address offset %#x outside randomization span", m.RetOff)
	}
}

func TestRegisterRelocationInjective(t *testing.T) {
	for _, k := range isa.Kinds {
		for seed := int64(0); seed < 30; seed++ {
			m := buildMap(t, seed, k, DefaultConfig())
			regHosts := map[isa.Reg]isa.Reg{}
			stackHosts := map[int32]bool{}
			for i := 0; i < isa.NumRegs(k); i++ {
				l := m.RegTo[i]
				switch l.Kind {
				case LocReg:
					if prev, dup := regHosts[l.Reg]; dup {
						t.Fatalf("%s seed %d: r%d and r%d both live in r%d", k, seed, prev, i, l.Reg)
					}
					regHosts[l.Reg] = isa.Reg(i)
				case LocStack:
					if stackHosts[l.Off] {
						t.Fatalf("%s seed %d: duplicate stack home %#x", k, seed, l.Off)
					}
					stackHosts[l.Off] = true
				}
			}
		}
	}
}

func TestX86SpecialRegsNeverHostOthers(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		m := buildMap(t, seed, isa.X86, DefaultConfig())
		for i := 0; i < 8; i++ {
			l := m.RegTo[i]
			if l.Kind == LocReg && x86SpecialRegs[l.Reg] && l.Reg != isa.Reg(i) {
				t.Fatalf("seed %d: special register %s hosts r%d", seed, l.Reg.Name(isa.X86), i)
			}
		}
	}
}

func TestTranslatorTemporaryAlwaysAvailable(t *testing.T) {
	for _, k := range isa.Kinds {
		for seed := int64(0); seed < 50; seed++ {
			cfg := DefaultConfig()
			cfg.GlobalRegCache = 4 // maximum register-residency pressure
			m := buildMap(t, seed, k, cfg)
			need := 1 // the global register cache leaves one stack-relocated register
			if len(m.FreeRegs) < need {
				t.Fatalf("%s seed %d: only %d free translator temporaries", k, seed, len(m.FreeRegs))
			}
			// A free register must truly host nothing.
			for _, fr := range m.FreeRegs {
				for i := 0; i < 16; i++ {
					if l := m.RegTo[i]; l.Kind == LocReg && l.Reg == fr && isa.Reg(i) != fr {
						t.Fatalf("%s seed %d: free register %d hosts r%d", k, seed, fr, i)
					}
					if l := m.RegTo[i]; l.Kind == LocReg && l.Reg == fr && isa.Reg(i) == fr && fr != armTemp {
						t.Fatalf("%s seed %d: free register %d is identity-occupied", k, seed, fr)
					}
				}
			}
		}
	}
}

func TestRegisterBias(t *testing.T) {
	cfg := Config{RandPages: 2, RegisterBias: true}
	for seed := int64(0); seed < 20; seed++ {
		m := buildMap(t, seed, isa.X86, cfg)
		regToReg := 0
		for i := 0; i < 8; i++ {
			l := m.RegTo[i]
			if l.Kind == LocReg && l.Reg != isa.Reg(i) {
				regToReg++
			}
		}
		if regToReg < 3 {
			t.Fatalf("seed %d: register bias produced only %d reg->reg relocations", seed, regToReg)
		}
	}
}

func TestNoBiasNoCacheSpillsEverything(t *testing.T) {
	cfg := Config{RandPages: 2}
	m := buildMap(t, 3, isa.X86, cfg)
	stack := 0
	for i := 0; i < 8; i++ {
		if m.RegTo[i].Kind == LocStack {
			stack++
		}
	}
	if stack < 4 {
		t.Fatalf("O0 map relocated only %d registers to stack", stack)
	}
}

func TestArgOffsetsDistinctWithinWindow(t *testing.T) {
	bin, _ := compiler.Compile(testprogs.ManyParams())
	fn := bin.Func("weigh")
	m := NewRandomizer(7, DefaultConfig()).Build(fn, isa.X86)
	if len(m.ArgOff) != 6 {
		t.Fatalf("want 6 arg offsets, got %d", len(m.ArgOff))
	}
	for i, a := range m.ArgOff {
		if a < 0 || a+4 > ArgWindow {
			t.Fatalf("arg %d offset %#x outside window", i, a)
		}
		for j, b := range m.ArgOff {
			if i != j && a == b {
				t.Fatalf("args %d and %d share offset %#x", i, j, a)
			}
		}
	}
}

func TestFixedSlotsStayPut(t *testing.T) {
	bin, _ := compiler.Compile(testprogs.AddressTaken())
	fn := bin.Func("main")
	m := NewRandomizer(9, DefaultConfig()).Build(fn, isa.X86)
	for s, fixed := range fn.FixedSlot {
		off := int32(fn.SlotOff(s))
		if fixed && m.OffTo[off] != off {
			t.Fatalf("fixed slot %d moved from %#x to %#x", s, off, m.OffTo[off])
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := buildMap(t, 42, isa.X86, DefaultConfig())
	b := buildMap(t, 42, isa.X86, DefaultConfig())
	if !reflect.DeepEqual(a.OffTo, b.OffTo) || a.RegTo != b.RegTo {
		t.Fatal("same seed produced different maps")
	}
	c := buildMap(t, 43, isa.X86, DefaultConfig())
	if reflect.DeepEqual(a.OffTo, c.OffTo) && a.RegTo == c.RegTo {
		t.Fatal("different seeds produced identical maps")
	}
}

func TestEntropyScalesWithRandPages(t *testing.T) {
	small := buildMap(t, 1, isa.X86, Config{RandPages: 2})
	big := buildMap(t, 1, isa.X86, Config{RandPages: 16})
	if small.EntropyBits < 12 || small.EntropyBits > 13.5 {
		t.Fatalf("8KiB entropy %.2f bits, want ~13", small.EntropyBits)
	}
	if big.EntropyBits <= small.EntropyBits+2.5 {
		t.Fatalf("64KiB entropy %.2f should exceed 8KiB entropy %.2f by ~3 bits",
			big.EntropyBits, small.EntropyBits)
	}
}

// TestMapInvariantsQuick drives the randomizer with arbitrary seeds and
// checks the structural invariants every map must satisfy: injective
// offset relocation inside the frame, injective register targets, fixed
// slots pinned, distinct argument offsets above the reserved window, and
// at least one translator temporary.
func TestMapInvariantsQuick(t *testing.T) {
	fn := mainMeta(t)
	f := func(seed int64, pages uint8, bias, cache bool) bool {
		cfg := Config{RandPages: int(pages%15) + 2, RegisterBias: bias}
		if cache {
			cfg.GlobalRegCache = 3
		}
		for _, k := range isa.Kinds {
			m := NewRandomizer(seed, cfg).Build(fn, k)
			seen := map[int32]bool{}
			for orig, to := range m.OffTo {
				if seen[to] || to < 0 || uint32(to)+4 > m.NewFrameSize {
					return false
				}
				seen[to] = true
				if fnFixed(fn, orig) && to != orig {
					return false
				}
			}
			hosts := map[isa.Reg]bool{}
			for i := 0; i < isa.NumRegs(k); i++ {
				if l := m.RegTo[i]; l.Kind == LocReg {
					if hosts[l.Reg] {
						return false
					}
					hosts[l.Reg] = true
				}
			}
			argSeen := map[int32]bool{}
			for _, a := range m.ArgOff {
				if a < ArgReserved || a+4 > ArgWindow || argSeen[a] {
					return false
				}
				argSeen[a] = true
			}
			if len(m.FreeRegs) == 0 {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

func fnFixed(fn *fatbin.FuncMeta, off int32) bool {
	for s, fixed := range fn.FixedSlot {
		if fixed && int32(fn.SlotOff(s)) == off {
			return true
		}
	}
	return false
}

func quickCheck(f interface{}) error {
	return quick.Check(f, &quick.Config{MaxCount: 60})
}

func TestBuildPairSharesFrameGeometry(t *testing.T) {
	r := NewRandomizer(5, DefaultConfig())
	pair := r.BuildPair(mainMeta(t))
	if pair[isa.X86].NewFrameSize != pair[isa.ARM].NewFrameSize {
		t.Fatal("pair frame sizes differ — migration would break")
	}
	if pair[isa.X86].RetOff == pair[isa.ARM].RetOff {
		t.Log("note: identical ret offsets across ISAs (allowed, just unlikely)")
	}
}
