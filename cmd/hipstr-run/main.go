// Command hipstr-run executes a benchmark natively or under the PSR /
// HIPStR virtual machines and reports execution statistics: live stats on
// a configurable instruction interval, a final summary, and optional
// machine-readable telemetry (-metrics-out JSON snapshot, -trace-out JSONL
// event stream, -timeline-out Perfetto span timeline). With -listen it
// embeds the observability server, exposing
// Prometheus metrics, the live trace stream, the guest-cycle sampling
// profiler, and pprof over HTTP while the simulation runs; -profile-out
// writes the profiler's folded flamegraph stacks at exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hipstr"
	"hipstr/internal/health"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/obsrv"
	"hipstr/internal/perf"
	"hipstr/internal/profiler"
)

func main() {
	name := flag.String("workload", "libquantum", "benchmark to run")
	mode := flag.String("mode", "hipstr", "native | psr | hipstr")
	isaName := flag.String("isa", "x86", "ISA to run on (native) or start on (psr/hipstr): x86 | arm")
	steps := flag.Uint64("steps", 50_000_000, "instruction budget")
	seed := flag.Int64("seed", 1, "randomization seed")
	metricsOut := flag.String("metrics-out", "", "write the final metrics snapshot as JSON to this file")
	traceOut := flag.String("trace-out", "", "stream trace events to this file as JSON lines")
	timelineOut := flag.String("timeline-out", "", "write the span timeline as Chrome trace JSON (open in ui.perfetto.dev)")
	interval := flag.Uint64("report-interval", 10_000_000, "print live stats every N instructions (0 = only at exit)")
	listen := flag.String("listen", "", "serve live observability endpoints on this address (e.g. 127.0.0.1:9120)")
	linger := flag.Bool("linger", true, "with -listen, keep serving after the run until Ctrl-C (use -linger=false for scripted runs)")
	profileOut := flag.String("profile-out", "", "write folded flamegraph stacks of the guest-cycle profile to this file")
	profileInterval := flag.Uint64("profile-interval", profiler.DefaultInterval, "guest-cycle sampling period in instructions")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tel := hipstr.NewTelemetry()
	// Span tracing is strictly opt-in: without -timeline-out or -listen the
	// span tracer stays nil and instrumented paths cost one nil check.
	var spans *hipstr.SpanTracer
	if *timelineOut != "" || *listen != "" {
		spans = tel.EnableSpans(0)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tel.Trace.AddSink(hipstr.NewJSONLTraceSink(f))
		// Completed spans share the stream; tracestat tells the line kinds
		// apart by the spans' "kind":"span" discriminator.
		if spans != nil {
			spans.AddSink(hipstr.NewSpanJSONLSink(f))
		}
	}

	bin, err := hipstr.CompileWorkload(*name)
	if err != nil {
		log.Fatal(err)
	}

	startISA, err := parseISA(*isaName)
	if err != nil {
		log.Fatal(err)
	}

	// The profiler is strictly opt-in: without -profile-out or -listen no
	// hook is attached and the dispatch loop runs untouched.
	var prof *profiler.Profiler
	if *profileOut != "" || *listen != "" {
		prof = profiler.New(bin, *profileInterval)
		prof.BindTelemetry(tel)
	}

	// runChunk executes up to n instructions; finish prints the final
	// mode-specific summary.
	var runChunk func(n uint64) (uint64, bool, error)
	var finish func()

	switch *mode {
	case "native":
		p, err := hipstr.RunNative(bin, startISA)
		if err != nil {
			log.Fatal(err)
		}
		// One timing model per ISA of the heterogeneous CMP; the core the
		// process boots on drives the dispatch loop, the sibling registers
		// its (zero) series so dashboards see both cores.
		var models [2]*perf.Model
		for _, k := range isa.Kinds {
			models[k] = perf.NewModel(perf.CoreFor(k))
			models[k].BindTelemetry(tel)
		}
		model := models[startISA]
		model.Attach(p.M)
		if spans != nil {
			// Guest-cycle span domain: the timing model's cycle counter.
			spans.SetCycleSource(func() float64 { return model.Cycles })
			p.M.Spans = spans
		}
		if prof != nil {
			// After the model: samples then see post-charge cycle counts.
			prof.BindModel(model)
			prof.Attach(p.M)
		}
		tel.Reg.RegisterCollector(func() {
			bs := p.M.BlockStats()
			tel.Reg.Counter("machine.blockcache.hits").Set(bs.Hits)
			tel.Reg.Counter("machine.blockcache.misses").Set(bs.Misses)
			tel.Reg.Counter("machine.blockcache.invalidations").Set(bs.Invalidations)
			tel.Reg.Counter("machine.blockcache.invalidations.partial").Set(bs.PartialInvalidations)
			tel.Reg.Counter("machine.blockcache.invalidations.full").Set(bs.FullInvalidations)
			tel.Reg.Counter("machine.blockcache.evicted").Set(bs.BlocksEvicted)
			tel.Reg.Gauge("machine.blockcache.blocks").Set(float64(bs.Blocks))
			tel.Reg.Gauge("machine.blockcache.hit_ratio").Set(bs.HitRatio())
			fs := p.M.FusionStats()
			tel.Reg.Counter("machine.fusion.pairs").Set(fs.PairsFused)
			tel.Reg.Counter("machine.fusion.blocks.batched").Set(fs.BatchedBlocks)
			tel.Reg.Counter("machine.fusion.blocks.exact").Set(fs.ExactBlocks)
			tel.Reg.Counter("machine.fusion.commits").Set(fs.Commits)
		})
		runChunk = func(n uint64) (uint64, bool, error) {
			ran, err := p.Run(n)
			return ran, p.Exited, err
		}
		finish = func() {
			fmt.Printf("native: %d instructions, exited=%v code=%d writes=%d\n",
				model.Counts.Instrs, p.Exited, p.ExitCode, len(p.Trace))
			fmt.Printf("  cycles=%.0f cpi=%.3f est=%.3fms on %s\n",
				model.Cycles, model.CPI(), model.Seconds()*1e3, model.Core.Name)
			fmt.Printf("  icache miss=%s dcache miss=%s bpred mispredict=%s\n",
				ratio(model.ICache.Misses, model.ICache.Hits()+model.ICache.Misses),
				ratio(model.DCache.Misses, model.DCache.Hits()+model.DCache.Misses),
				ratio(model.Bpred.Mispredicts, model.Bpred.Lookups))
			printBlockStats(p.M.BlockStats())
			printFusionStats(p.M.FusionStats())
		}
	case "psr", "hipstr":
		cfg := hipstr.Defaults()
		cfg.StartISA = startISA
		cfg.DBT.Seed = *seed
		cfg.DBT.Telemetry = tel
		if *mode == "psr" {
			cfg.Mode = hipstr.ModePSR
		}
		s, err := hipstr.Protect(bin, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if spans != nil {
			// Guest-cycle span domain: no timing model is attached under the
			// VMs, so retired guest instructions stand in for cycles.
			m := s.VM.P.M
			spans.SetCycleSource(func() float64 { return float64(m.Steps) })
			m.Spans = spans
		}
		if prof != nil {
			// Execution happens in the code caches; resolve cache PCs back
			// to guest source addresses, and tap the tracer so translation
			// and migration costs show up as phases.
			// The class resolver additionally splits cycles sampled in trap
			// stubs out of "interpret" into "vm-dispatch".
			prof.SetClassResolver(s.VM.ResolvePCClass)
			prof.AttachTracer(tel)
			prof.Attach(s.VM.P.M)
		}
		runChunk = func(n uint64) (uint64, bool, error) {
			ran, err := s.Run(n)
			return ran, s.Exited(), err
		}
		finish = func() {
			st := s.VM.Stats
			fmt.Printf("%s: exited=%v code=%d\n", *mode, s.Exited(), s.ExitCode())
			fmt.Printf("  translations x86=%d arm=%d, indirect dispatches=%d\n",
				st.Translations[hipstr.X86], st.Translations[hipstr.ARM], st.IndirectDispatch)
			fmt.Printf("  security events=%d, migrations=%d, kills=%d, flushes=%d\n",
				st.SecurityEvents, st.Migrations, st.Kills, st.Flushes)
			fmt.Printf("  shared units: %d hits, %d misses, %d installs, %d bytes saved\n",
				st.SharedHits, st.SharedMisses, st.SharedInstalls, st.SharedBytesSaved)
			fmt.Printf("  cow: %d pages still shared, %d pages broken\n",
				s.VM.P.Mem.SharedPages(), s.VM.P.Mem.CowBroken())
			rat := s.VM.RATOf(s.Active())
			fmt.Printf("  RAT: %d lookups, %d misses (active core: %s)\n",
				rat.Lookups, rat.Misses, s.Active())
			printBlockStats(s.VM.P.M.BlockStats())
			printFusionStats(s.VM.P.M.FusionStats())
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	// The observability server never touches VM state: this goroutine
	// publishes snapshots through the pump at chunk boundaries and handlers
	// serve the latest published copy.
	var pump obsrv.Pump
	var srv *obsrv.Server
	// The health engine rides the pump: every published snapshot also
	// lands in the rolling history ring and is evaluated against the
	// single-VM rule set, so /history and /incidents work on one guest
	// exactly as they do on a fleet.
	var mon *health.Monitor
	if *listen != "" {
		rcfg := health.RecorderConfig{Events: tel.Trace.Tail}
		if spans != nil {
			rcfg.Spans = spans.Tail
		}
		if prof != nil {
			rcfg.Profile = func() (string, bool) {
				var b strings.Builder
				if err := prof.Report().WriteTop(&b, 10); err != nil {
					return "", false
				}
				return b.String(), true
			}
		}
		rcfg.HostConfig = map[string]any{
			"workload": *name, "mode": *mode, "isa": *isaName,
			"steps": *steps, "seed": *seed,
		}
		mon = health.NewMonitor(health.Config{
			Rules:     health.VMRules(),
			Telemetry: tel,
			Recorder:  rcfg,
		})
		opts := obsrv.Options{
			Snapshot:  pump.Latest,
			Tracer:    tel.Trace,
			Spans:     spans,
			History:   mon.HistoryHandler(),
			Incidents: mon.Recorder.Handler(),
		}
		if prof != nil {
			opts.Profile = func() (profiler.Report, bool) { return prof.Report(), true }
		}
		srv, err = obsrv.New(*listen, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability: serving http://%s/ (metrics, stats.json, events, profile, debug/pprof)\n", srv.Addr())
		go func() {
			if err := srv.Serve(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		pump.Publish(tel.Snapshot())
	}

	// When serving, cap chunks so scrapes see fresh counters even between
	// live reports.
	const publishChunk = 1_000_000
	var total, lastReport uint64
	prev := tel.Snapshot()
	for total < *steps && ctx.Err() == nil {
		chunk := *steps - total
		if *interval != 0 && chunk > *interval {
			chunk = *interval
		}
		if srv != nil && chunk > publishChunk {
			chunk = publishChunk
		}
		ran, exited, err := runChunk(chunk)
		total += ran
		due := *interval != 0 && !exited && total-lastReport >= *interval
		if srv != nil || due {
			snap := tel.Snapshot()
			if srv != nil {
				pump.Publish(snap)
			}
			if mon != nil {
				mon.ObserveNow(snap)
			}
			if due {
				reportLive(*mode, startISA.String(), total, snap, snap.Delta(prev))
				prev = snap
				lastReport = total
			}
		}
		if err != nil {
			fmt.Printf("stopped after %d instructions: %v\n", total, err)
			break
		}
		if exited || ran == 0 {
			break
		}
	}
	if ctx.Err() != nil {
		fmt.Printf("interrupted after %d instructions\n", total)
	}
	finish()
	if srv != nil {
		snap := tel.Snapshot()
		pump.Publish(snap)
		if mon != nil {
			mon.ObserveNow(snap)
			if opened, resolved, _ := mon.Recorder.Counts(); opened > 0 {
				fmt.Printf("health: %d incidents opened, %d resolved (see /incidents)\n",
					opened, resolved)
			}
		}
	}

	if prof != nil {
		rep := prof.Report()
		fmt.Printf("profile: %d samples, %.1f%% of %.3e cycles attributed to guest functions\n",
			rep.Samples, 100*rep.AttributedRatio, rep.TotalCycles)
		if *profileOut != "" {
			f, err := os.Create(*profileOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := rep.WriteFolded(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("folded profile written to %s\n", *profileOut)
		}
	}
	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := hipstr.WriteChromeTrace(f, spans.Spans(), tel.Trace.Events()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s (%d spans; open in ui.perfetto.dev)\n",
			*timelineOut, spans.Completed())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.Snapshot().WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		fmt.Printf("trace written to %s (%d events emitted)\n", *traceOut, tel.Trace.Emitted())
	}

	// Linger so late scrapers (dashboards, CI curl loops) can read the
	// final state; Ctrl-C / SIGTERM exits gracefully, and -linger=false
	// skips the wait entirely for scripted runs.
	if srv != nil {
		if *linger && ctx.Err() == nil {
			fmt.Printf("run complete; observability server still on http://%s/ (Ctrl-C to exit)\n", srv.Addr())
			<-ctx.Done()
		}
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("observability shutdown: %v", err)
		}
	}
}

// reportLive prints one compact live-stats line from the current snapshot
// and the delta since the previous report. core names the ISA whose perf
// series native mode reads (the core the process runs on).
func reportLive(mode, core string, total uint64, snap, delta hipstr.MetricsSnapshot) {
	blkHit := ratio(snap.Counters["machine.blockcache.hits"],
		snap.Counters["machine.blockcache.hits"]+snap.Counters["machine.blockcache.misses"])
	if mode == "native" {
		pfx := "perf." + core
		fmt.Printf("[%12d] cycles=%.3e cpi=%.3f icache-miss=%s dcache-miss=%s bpred-mis=%s blk-hit=%s\n",
			total,
			snap.Gauges[pfx+".cycles"], snap.Gauges[pfx+".cpi"],
			ratio(snap.Counters[pfx+".icache.misses"],
				snap.Counters[pfx+".icache.hits"]+snap.Counters[pfx+".icache.misses"]),
			ratio(snap.Counters[pfx+".dcache.misses"],
				snap.Counters[pfx+".dcache.hits"]+snap.Counters[pfx+".dcache.misses"]),
			ratio(snap.Counters[pfx+".bpred.mispredicts"], snap.Counters[pfx+".bpred.lookups"]),
			blkHit)
		return
	}
	ratLookups := snap.Counters["dbt.rat.x86.lookups"] + snap.Counters["dbt.rat.arm.lookups"]
	ratMisses := snap.Counters["dbt.rat.x86.misses"] + snap.Counters["dbt.rat.arm.misses"]
	fmt.Printf("[%12d] translations=%d(+%d) sec-events=%d(+%d) migrations=%d(+%d) rat-hit=%s blk-hit=%s cache-occ=%.1f%%/%.1f%%\n",
		total,
		snap.Counters["dbt.translations.x86"]+snap.Counters["dbt.translations.arm"],
		delta.Counters["dbt.translations.x86"]+delta.Counters["dbt.translations.arm"],
		snap.Counters["dbt.security_events"], delta.Counters["dbt.security_events"],
		snap.Counters["dbt.migrations"], delta.Counters["dbt.migrations"],
		ratio(ratLookups-ratMisses, ratLookups), blkHit,
		100*snap.Gauges["dbt.cache.x86.occupancy"], 100*snap.Gauges["dbt.cache.arm.occupancy"])
}

// printBlockStats prints the final block-cache line, splitting invalidations
// into partial (page/range-scoped) and full (whole-cache) reconciles.
func printBlockStats(bs machine.BlockCacheStats) {
	fmt.Printf("  block cache: %d blocks, hit=%s, %d invalidations (%d partial, %d full), %d blocks evicted\n",
		bs.Blocks, ratio(bs.Hits, bs.Hits+bs.Misses),
		bs.Invalidations, bs.PartialInvalidations, bs.FullInvalidations, bs.BlocksEvicted)
}

// printFusionStats prints the superinstruction/batched-timing summary: how
// many instruction pairs were fused at predecode, and how block dispatches
// split between the fused fast path and exact per-instruction mode.
func printFusionStats(fs machine.FusionStats) {
	fmt.Printf("  fusion: %d pairs fused, blocks batched=%s (%d batched, %d exact), %d batched commits\n",
		fs.PairsFused, ratio(fs.BatchedBlocks, fs.BatchedBlocks+fs.ExactBlocks),
		fs.BatchedBlocks, fs.ExactBlocks, fs.Commits)
}

func parseISA(name string) (isa.Kind, error) {
	switch name {
	case "x86":
		return isa.X86, nil
	case "arm":
		return isa.ARM, nil
	}
	return 0, fmt.Errorf("unknown ISA %q (want x86 or arm)", name)
}

func ratio(num, den uint64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}
