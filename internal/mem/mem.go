// Package mem provides the sparse, permission-checked 32-bit address space
// shared by both cores of the simulated heterogeneous-ISA CMP.
//
// The address space is organized as 4 KiB pages created on demand by Map.
// Named regions record the process layout (per-ISA text sections, data,
// heap, stack, per-ISA code caches) so higher layers — the PSR virtual
// machine's software-fault-isolation checks, the gadget miner, the JIT-ROP
// attacker model — can reason about which region an address falls in.
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the granularity of mapping and permissions.
const PageSize = 4096

// Perm is a page-permission bitmask.
type Perm uint8

const (
	PermR Perm = 1 << iota
	PermW
	PermX
	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Fault is a memory access violation: unmapped address or permission
// mismatch. Attack simulations use Faults to detect crashed exploit
// attempts.
type Fault struct {
	Addr   uint32
	Access Perm
	Mapped bool
}

func (f *Fault) Error() string {
	if !f.Mapped {
		return fmt.Sprintf("mem: fault: %s access to unmapped address %#x", f.Access, f.Addr)
	}
	return fmt.Sprintf("mem: fault: %s access denied at %#x", f.Access, f.Addr)
}

type page struct {
	data []byte
	perm Perm
}

// Region is a named address range of the process layout.
type Region struct {
	Name string
	Base uint32
	Size uint32
	Perm Perm
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint32) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// End returns the first address past the region.
func (r Region) End() uint32 { return r.Base + r.Size }

// Memory is a sparse paged address space.
type Memory struct {
	pages   map[uint32]*page
	regions map[string]Region
	// codeGen is the monotonic code-generation counter: it advances on
	// every mutation that could change executable bytes (writes into
	// pages with execute permission, permission changes that grant
	// execute, and explicit InvalidateCode calls). Consumers that cache
	// decoded instructions — the interpreter's basic-block cache — compare
	// generations instead of re-fetching, so the hot path stays a single
	// integer comparison.
	codeGen uint64
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{
		pages:   make(map[uint32]*page),
		regions: make(map[string]Region),
		codeGen: 1,
	}
}

// CodeGen returns the current code generation. Any cached decode of
// executable bytes is stale once the value changes.
func (m *Memory) CodeGen() uint64 { return m.codeGen }

// InvalidateCode advances the code generation without touching memory.
// The DBT wires CodeCache.Flush here so block caches drop decodes of
// evicted translations even before their bytes are overwritten.
func (m *Memory) InvalidateCode() { m.codeGen++ }

// Map creates (or re-permissions) pages covering [addr, addr+size) with the
// given permissions and, when name is non-empty, records a region of that
// name. Size is rounded up to whole pages.
func (m *Memory) Map(name string, addr, size uint32, perm Perm) Region {
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	exec := false
	for pn := first; pn <= last; pn++ {
		if pg, ok := m.pages[pn]; ok {
			exec = exec || (pg.perm|perm)&PermX != 0
			pg.perm = perm
		} else {
			m.pages[pn] = &page{data: make([]byte, PageSize), perm: perm}
		}
	}
	if exec {
		m.codeGen++
	}
	r := Region{Name: name, Base: addr, Size: size, Perm: perm}
	if name != "" {
		m.regions[name] = r
	}
	return r
}

// Protect changes the permissions of all pages covering [addr, addr+size).
// Unmapped pages in the range are ignored.
func (m *Memory) Protect(addr, size uint32, perm Perm) {
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	exec := false
	for pn := first; pn <= last; pn++ {
		if pg, ok := m.pages[pn]; ok {
			exec = exec || (pg.perm|perm)&PermX != 0
			pg.perm = perm
		}
	}
	if exec {
		m.codeGen++
	}
}

// Region returns the named region.
func (m *Memory) Region(name string) (Region, bool) {
	r, ok := m.regions[name]
	return r, ok
}

// Regions returns all named regions sorted by base address.
func (m *Memory) Regions() []Region {
	out := make([]Region, 0, len(m.regions))
	for _, r := range m.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// RegionAt returns the named region containing addr, if any.
func (m *Memory) RegionAt(addr uint32) (Region, bool) {
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

func (m *Memory) pageFor(addr uint32, access Perm) (*page, error) {
	pg, ok := m.pages[addr/PageSize]
	if !ok {
		return nil, &Fault{Addr: addr, Access: access}
	}
	if pg.perm&access != access {
		return nil, &Fault{Addr: addr, Access: access, Mapped: true}
	}
	return pg, nil
}

// Read copies len(buf) bytes from addr, requiring read permission.
func (m *Memory) Read(addr uint32, buf []byte) error {
	off := addr
	for len(buf) > 0 {
		pg, err := m.pageFor(off, PermR)
		if err != nil {
			return err
		}
		po := off % PageSize
		n := copy(buf, pg.data[po:])
		buf = buf[n:]
		off += uint32(n)
	}
	return nil
}

// Write copies buf to addr, requiring write permission.
func (m *Memory) Write(addr uint32, buf []byte) error {
	off := addr
	exec := false
	for len(buf) > 0 {
		pg, err := m.pageFor(off, PermW)
		if err != nil {
			return err
		}
		exec = exec || pg.perm&PermX != 0
		po := off % PageSize
		n := copy(pg.data[po:], buf)
		buf = buf[n:]
		off += uint32(n)
	}
	if exec {
		m.codeGen++
	}
	return nil
}

// WriteForce writes ignoring permissions, mapping pages as needed. Loaders
// and the DBT's code-cache emitter use it; simulated programs never do.
func (m *Memory) WriteForce(addr uint32, buf []byte) {
	off := addr
	exec := false
	for len(buf) > 0 {
		pn := off / PageSize
		pg, ok := m.pages[pn]
		if !ok {
			pg = &page{data: make([]byte, PageSize)}
			m.pages[pn] = pg
		}
		exec = exec || pg.perm&PermX != 0
		po := off % PageSize
		n := copy(pg.data[po:], buf)
		buf = buf[n:]
		off += uint32(n)
	}
	if exec {
		m.codeGen++
	}
}

// LoadByte reads a single byte.
func (m *Memory) LoadByte(addr uint32) (byte, error) {
	var b [1]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// StoreByte writes a single byte.
func (m *Memory) StoreByte(addr uint32, v byte) error {
	return m.Write(addr, []byte{v})
}

// ReadWord reads a little-endian 32-bit word.
func (m *Memory) ReadWord(addr uint32) (uint32, error) {
	var b [4]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteWord writes a little-endian 32-bit word.
func (m *Memory) WriteWord(addr uint32, v uint32) error {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return m.Write(addr, b[:])
}

// Fetch returns up to n instruction bytes starting at addr, requiring
// execute permission on every page touched. Fewer than n bytes are
// returned when the executable range ends.
func (m *Memory) Fetch(addr uint32, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	off := addr
	for len(out) < n {
		pg, err := m.pageFor(off, PermX)
		if err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		po := off % PageSize
		take := min(n-len(out), PageSize-int(po))
		out = append(out, pg.data[po:int(po)+take]...)
		off += uint32(take)
	}
	return out, nil
}

// FetchInto is Fetch with a caller-owned buffer: it fills buf with
// instruction bytes starting at addr and returns how many were copied.
// Fewer than len(buf) bytes come back when the executable range ends;
// a fault on the very first page is an error. The interpreter's block
// cache uses this to refill without allocating per fetch.
func (m *Memory) FetchInto(addr uint32, buf []byte) (int, error) {
	off := addr
	n := 0
	for n < len(buf) {
		pg, err := m.pageFor(off, PermX)
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		po := off % PageSize
		c := copy(buf[n:], pg.data[po:])
		n += c
		off += uint32(c)
	}
	return n, nil
}

// Clone deep-copies the address space, including regions. Respawn-based
// brute-force simulations use it to restore pristine process images.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, pg := range m.pages {
		np := &page{data: make([]byte, PageSize), perm: pg.perm}
		copy(np.data, pg.data)
		c.pages[pn] = np
	}
	for n, r := range m.regions {
		c.regions[n] = r
	}
	c.codeGen = m.codeGen
	return c
}
