// Command fatdump inspects a fat binary: per-function dual-ISA
// disassembly, the extended symbol table (frame layout, relocatable
// offsets, per-block live-in homes, cross-ISA call sites), and — with
// -psr — the PSR-translated form of a function under a given seed,
// showing exactly how the relocation map rewrote it.
package main

import (
	"flag"
	"fmt"
	"log"

	"hipstr"
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
)

func main() {
	name := flag.String("workload", "libquantum", "benchmark to inspect")
	fnName := flag.String("func", "main", "function to dump")
	showPSR := flag.Bool("psr", false, "also dump the PSR translation")
	seed := flag.Int64("seed", 1, "randomization seed for -psr")
	symtab := flag.Bool("symtab", true, "print the extended symbol table entry")
	flag.Parse()

	bin, err := hipstr.CompileWorkload(*name)
	if err != nil {
		log.Fatal(err)
	}
	fn := bin.Func(*fnName)
	if fn == nil {
		log.Fatalf("no function %q; have %d functions (try w000, main, libc_write)", *fnName, len(bin.Funcs))
	}

	if *symtab {
		dumpSymtab(fn)
	}
	for _, k := range []hipstr.ISA{hipstr.X86, hipstr.ARM} {
		fmt.Printf("\n-- %s text [%#x, %#x) --\n", k, fn.Start[k], fn.End[k])
		dumpRange(bin.Text[k], fatbin.TextBase(k), k, fn.Start[k], fn.End[k])
	}

	if *showPSR {
		dumpPSR(bin, fn, *seed)
	}
}

func dumpSymtab(fn *fatbin.FuncMeta) {
	fmt.Printf("function %s: %d args, %d vregs, %d slots\n",
		fn.Name, fn.NumArgs, fn.NVRegs, fn.NSlots)
	fmt.Printf("frame %#x bytes: locals@%#x spills@%#x saves@%#x ret@%#x\n",
		fn.FrameSize, fn.LocalOff, fn.SpillOff, fn.SaveOff, fn.RetAddrOff())
	fmt.Printf("relocatable offsets: %d; call sites: %d\n",
		len(fn.RelocatableOffsets()), len(fn.CallSites))
	for i := range fn.Blocks {
		b := &fn.Blocks[i]
		fmt.Printf("  block %2d  x86 [%#x,%#x)  arm [%#x,%#x)  loop=%-5v live-in:",
			b.ID, b.Addr[isa.X86], b.End[isa.X86], b.Addr[isa.ARM], b.End[isa.ARM], b.InLoop)
		for _, h := range b.LiveIn {
			fmt.Printf(" v%d@%#x", h.VReg, h.FrameOff)
			if h.InReg(isa.X86) {
				fmt.Printf("/%s", h.Reg[isa.X86].Name(isa.X86))
			}
			if h.InReg(isa.ARM) {
				fmt.Printf("/%s", h.Reg[isa.ARM].Name(isa.ARM))
			}
		}
		fmt.Println()
	}
}

func dumpRange(text []byte, base uint32, k isa.Kind, start, end uint32) {
	addr := start
	for addr < end {
		off := addr - base
		if off >= uint32(len(text)) {
			return
		}
		in, err := isa.Decode(k, text[off:], addr)
		if err != nil {
			fmt.Printf("  %08x: .byte %#02x\n", addr, text[off])
			addr++
			continue
		}
		fmt.Printf("  %s\n", in.String())
		addr += uint32(in.Size)
	}
}

func dumpPSR(bin *hipstr.Binary, fn *fatbin.FuncMeta, seed int64) {
	cfg := dbt.DefaultConfig()
	cfg.Seed = seed
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := vm.MapOf(fn)[isa.X86]
	fmt.Printf("\n-- PSR relocation map (seed %d) --\n", seed)
	fmt.Printf("frame %#x -> %#x (randomization space %#x), ret slot %#x -> %#x\n",
		fn.FrameSize, m.NewFrameSize, m.RandSpace, fn.RetAddrOff(), m.RetOff)
	for r := 0; r < 8; r++ {
		reg := isa.Reg(r)
		if reg == isa.ESP {
			continue
		}
		loc := m.LocOfReg(reg)
		marker := ""
		if m.Relocated(reg) {
			marker = "  <- relocated"
		}
		fmt.Printf("  %s -> %s%s\n", reg.Name(isa.X86), loc, marker)
	}
	for i, a := range m.ArgOff {
		fmt.Printf("  arg %d -> caller frame +%#x\n", i, a)
	}
	cacheAddr, err := vm.EnsureTranslated(isa.X86, fn.Entry[isa.X86])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- translated entry unit at %#x --\n", cacheAddr)
	addr := cacheAddr
	for i := 0; i < 64; i++ {
		win, err := vm.P.Mem.Fetch(addr, 16)
		if err != nil {
			break
		}
		in, derr := isa.DecodeX86(win, addr)
		if derr != nil {
			break
		}
		fmt.Printf("  %s\n", in.String())
		addr += uint32(in.Size)
		if in.Op == isa.OpJmp || in.Op == isa.OpRet || in.Op == isa.OpHlt {
			break
		}
	}
}
