// Package isa defines the two synthetic instruction-set architectures used
// throughout the HIPStR reproduction: a variable-length, byte-dense x86-like
// ISA and a fixed-width, strictly aligned ARM-like ISA.
//
// The encodings are deliberately faithful to the properties the paper
// exploits: the x86-like ISA admits unaligned decoding (and therefore
// unintentional gadgets ending in the 0xC3 ret byte), exposes memory
// operands on ALU instructions, and has only eight general-purpose
// registers; the ARM-like ISA is a load/store architecture with sixteen
// registers and a strict 4-byte-aligned encoding, which shrinks its gadget
// surface by more than an order of magnitude.
package isa

import "fmt"

// Kind identifies one of the two ISAs of the heterogeneous CMP.
type Kind uint8

const (
	// X86 is the variable-length, register-poor, memory-operand ISA.
	X86 Kind = iota
	// ARM is the fixed-width, aligned, load/store ISA.
	ARM
)

// Kinds lists both ISAs in a stable order.
var Kinds = [2]Kind{X86, ARM}

// Other returns the opposite ISA, i.e. the migration target.
func (k Kind) Other() Kind {
	if k == X86 {
		return ARM
	}
	return X86
}

func (k Kind) String() string {
	switch k {
	case X86:
		return "x86"
	case ARM:
		return "arm"
	default:
		return fmt.Sprintf("isa(%d)", uint8(k))
	}
}

// WordSize is the architectural word size in bytes. Both ISAs are 32-bit.
const WordSize = 4

// Reg names an architectural register. Register numbers 0-7 are valid on
// x86; 0-15 on ARM.
type Reg uint8

// x86 register names.
const (
	EAX Reg = 0
	ECX Reg = 1
	EDX Reg = 2
	EBX Reg = 3
	ESP Reg = 4
	EBP Reg = 5
	ESI Reg = 6
	EDI Reg = 7
)

// ARM register names. R13-R15 have dedicated roles.
const (
	R0  Reg = 0
	R1  Reg = 1
	R2  Reg = 2
	R3  Reg = 3
	R4  Reg = 4
	R5  Reg = 5
	R6  Reg = 6
	R7  Reg = 7
	R8  Reg = 8
	R9  Reg = 9
	R10 Reg = 10
	R11 Reg = 11
	R12 Reg = 12
	SP  Reg = 13
	LR  Reg = 14
	PC  Reg = 15
)

// NoReg is a sentinel for "no register".
const NoReg Reg = 0xFF

var x86RegNames = [8]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// Name returns the conventional assembly name of r on the given ISA.
func (r Reg) Name(k Kind) string {
	if r == NoReg {
		return "<none>"
	}
	if k == X86 {
		if int(r) < len(x86RegNames) {
			return x86RegNames[r]
		}
		return fmt.Sprintf("x86r%d", uint8(r))
	}
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// NumRegs reports the number of architectural registers of ISA k.
func NumRegs(k Kind) int {
	if k == X86 {
		return 8
	}
	return 16
}

// StackReg returns the architectural stack pointer of ISA k.
func StackReg(k Kind) Reg {
	if k == X86 {
		return ESP
	}
	return SP
}

// AllocatableRegs returns the registers a compiler or the PSR randomizer
// may assign program values to on ISA k. The stack pointer, and on ARM
// the link register and program counter, are excluded; EBP is kept
// allocatable because the common frame layout is ESP-relative.
func AllocatableRegs(k Kind) []Reg {
	if k == X86 {
		return []Reg{EAX, ECX, EDX, EBX, EBP, ESI, EDI}
	}
	return []Reg{R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12}
}
