package main

import (
	"os"
	"path/filepath"
	"testing"

	"hipstr/internal/telemetry"
)

func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadTraceEmpty(t *testing.T) {
	events, spans, err := readTrace(writeTrace(t, ""))
	if err != nil {
		t.Fatalf("empty trace: %v", err)
	}
	if len(events) != 0 || len(spans) != 0 {
		t.Fatalf("got %d events, %d spans from empty trace", len(events), len(spans))
	}
	// Blank lines only are equally empty.
	events, spans, err = readTrace(writeTrace(t, "\n\n"))
	if err != nil || len(events) != 0 || len(spans) != 0 {
		t.Fatalf("blank-line trace: %d events, %d spans, %v", len(events), len(spans), err)
	}
}

func TestReadTraceTruncatedTail(t *testing.T) {
	// A trace cut mid-write: the final line is half an event. It must be
	// dropped with the parsed prefix preserved, not fail the run.
	events, _, err := readTrace(writeTrace(t,
		`{"seq":1,"type":"translate","isa":"x86","cost":3}`+"\n"+
			`{"seq":2,"type":"rat-miss","isa":"arm"}`+"\n"+
			`{"seq":3,"type":"mig`))
	if err != nil {
		t.Fatalf("truncated tail must not be fatal: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[1].Seq != 2 {
		t.Errorf("last kept event seq = %d, want 2", events[1].Seq)
	}
}

func TestReadTraceMalformedMidStream(t *testing.T) {
	// Garbage followed by more data is corruption, not truncation.
	_, _, err := readTrace(writeTrace(t,
		`{"seq":1,"type":"translate"}`+"\n"+
			"not json\n"+
			`{"seq":2,"type":"translate"}`))
	if err == nil {
		t.Fatal("mid-stream garbage must be fatal")
	}
}

func TestReadTraceMixedSpans(t *testing.T) {
	// Span records carry "kind":"span" and route to the span list; point
	// events keep flowing to the event list, in stream order.
	events, spans, err := readTrace(writeTrace(t,
		`{"seq":1,"type":"translate","isa":"x86","cost":3}`+"\n"+
			`{"kind":"span","id":1,"name":"migrate","track":"migrate","start_ns":10,"dur_ns":900,"cost_us":620}`+"\n"+
			`{"kind":"span","id":2,"parent":1,"name":"resume","track":"migrate","start_ns":700,"dur_ns":200}`+"\n"+
			`{"seq":2,"type":"rat-miss","isa":"arm"}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || len(spans) != 2 {
		t.Fatalf("got %d events, %d spans, want 2 and 2", len(events), len(spans))
	}
	if spans[0].Name != "migrate" || spans[0].CostUS != 620 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].ParentID != 1 || spans[1].DurNS != 200 {
		t.Errorf("span 1 = %+v", spans[1])
	}
}

func TestAssignPhasesEmpty(t *testing.T) {
	if labels := assignPhases(nil); len(labels) != 0 {
		t.Fatalf("assignPhases(nil) = %v", labels)
	}
	labels := assignPhases([]telemetry.Event{{Type: telemetry.EvTranslate}})
	if len(labels) != 1 || labels[0] != "(run)" {
		t.Fatalf("phase-less trace labels = %v", labels)
	}
}
