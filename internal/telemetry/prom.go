package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromName converts a dot-separated metric name into a legal Prometheus
// metric name: every character outside [a-zA-Z0-9_:] becomes '_', and a
// leading digit is prefixed with '_'. The mapping is not injective ("a.b"
// and "a_b" collide); registry names use dots exclusively as separators,
// so collisions do not occur in practice.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// EscapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and newline.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promFloat formats a float value for the exposition format.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the snapshot in the Prometheus text exposition format
// (version 0.0.4, scrapeable by Prometheus and OpenMetrics collectors).
// Output is byte-stable for a given snapshot and histogram schema
// version (HistSchemaVersion): counters, then gauges, then histograms,
// each family sorted by name. The sketch histograms export cumulative
// `le` buckets (upper bounds are powers of the sketch base, 1.02 at
// schema version 2) plus the conventional +Inf bucket, _sum, and _count
// series.
func (s Snapshot) WriteProm(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Snapshot buckets are per-bucket counts in ascending bound order;
		// the exposition format wants cumulative counts.
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, EscapeLabel(promFloat(b.UpperBound)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			pn, h.Count, pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
