// Package migrate implements PSR-aware cross-ISA execution migration
// (paper §5.2): at a migration point, every relocatable stack object of
// every live frame is fetched from its randomized location under the
// source ISA's relocation map and moved to its randomized location under
// the target ISA's map; return addresses are rewritten through the
// cross-ISA call-site table; and live register state is transformed using
// the extended symbol table's per-block value homes and the callee-save
// chains of both ISAs.
package migrate

import (
	"errors"
	"fmt"

	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/proc"
	"hipstr/internal/psr"
	"hipstr/internal/telemetry"
)

// ErrUnsafe reports that the current execution point is not
// migration-safe.
var ErrUnsafe = errors.New("migrate: not a migration-safe point")

// Policy controls migration-safety decisions.
type Policy struct {
	// OnDemand enables the on-demand transformation of §5.2: register-
	// resident live values are fetched and transformed at migration time.
	// Without it, only points whose live state is entirely memory-
	// resident are migration-safe (the prior work's ~45% regime).
	OnDemand bool
	// Capacity bounds how many register-resident live-ins the on-demand
	// transformer can move per frame before clobbering its scratch space.
	Capacity int
	// MaxFrames bounds the stack walk (runaway protection).
	MaxFrames int
}

// DefaultPolicy mirrors the paper's on-demand configuration.
func DefaultPolicy() Policy {
	return Policy{OnDemand: true, Capacity: 6, MaxFrames: 4096}
}

// Stats counts migration outcomes.
type Stats struct {
	Attempts     uint64
	Migrations   uint64
	Unsafe       uint64
	FramesMoved  uint64
	ObjectsMoved uint64
	// TotalCostMicros accumulates the modeled migration cost.
	TotalCostMicros float64
	// LastCostMicros is the cost of the most recent migration.
	LastCostMicros float64
}

// Engine implements dbt.Migrator.
type Engine struct {
	Policy Policy
	Stats  Stats
	// DebugLastErr records why the most recent attempt was refused.
	DebugLastErr error

	tel       *telemetry.Telemetry
	histCost  [2]*telemetry.Histogram // per target ISA
	histPhase [NumPhases]*telemetry.Histogram
}

// New returns a migration engine with the default policy.
func New() *Engine { return &Engine{Policy: DefaultPolicy()} }

// BindTelemetry points the engine at a registry + tracer: per-direction
// migration-cost histograms are pushed as migrations complete, and a
// collector mirrors the raw Stats fields at snapshot time.
func (e *Engine) BindTelemetry(t *telemetry.Telemetry) {
	if t == nil || t.Reg == nil {
		return
	}
	e.tel = t
	r := t.Reg
	for _, k := range isa.Kinds {
		e.histCost[k] = r.Histogram("migrate.cost_us.to_" + k.String())
	}
	for i, name := range PhaseNames {
		e.histPhase[i] = r.Histogram("migrate.phase." + name)
	}
	r.RegisterCollector(func() {
		r.Counter("migrate.attempts").Set(e.Stats.Attempts)
		r.Counter("migrate.migrations").Set(e.Stats.Migrations)
		r.Counter("migrate.unsafe").Set(e.Stats.Unsafe)
		r.Counter("migrate.frames_moved").Set(e.Stats.FramesMoved)
		r.Counter("migrate.objects_moved").Set(e.Stats.ObjectsMoved)
		r.Gauge("migrate.total_cost_us").Set(e.Stats.TotalCostMicros)
		r.Gauge("migrate.last_cost_us").Set(e.Stats.LastCostMicros)
	})
}

// frame describes one live stack frame discovered by the walk.
type frame struct {
	fn     *fatbin.FuncMeta
	base   uint32 // SP value of the frame (post-prologue)
	block  *fatbin.BlockMeta
	retA   uint32 // return address value (source ISA); ExitAddr at the root
	retB   uint32 // rewritten return address (target ISA)
	retOff int32  // canonical return-address offset
}

// Migrate implements dbt.Migrator for resume-point migrations (returns and
// indirect jumps).
func (e *Engine) Migrate(vm *dbt.VM, resumeSrc uint32, boundary bool) bool {
	e.Stats.Attempts++
	e.tel.Emit(telemetry.Event{
		Type: telemetry.EvMigrateBegin, ISA: vm.Active().String(), Addr: resumeSrc,
	})
	sp := e.tel.StartSpan("migrate", "migrate")
	sp.SetISA(vm.Active().String())
	if err := e.migrateResume(vm, resumeSrc, boundary, sp); err != nil {
		sp.SetDetail(err.Error())
		sp.End()
		e.refused(err)
		return false
	}
	e.Stats.Migrations++
	sp.SetISA(vm.Active().String())
	sp.SetCostUS(e.Stats.LastCostMicros)
	sp.End()
	e.completed(vm, resumeSrc)
	return true
}

// MigrateEntry implements dbt.Migrator for callee-entry migrations
// (indirect call dispatch).
func (e *Engine) MigrateEntry(vm *dbt.VM, calleeEntry uint32) bool {
	e.Stats.Attempts++
	e.tel.Emit(telemetry.Event{
		Type: telemetry.EvMigrateBegin, ISA: vm.Active().String(), Addr: calleeEntry,
		Detail: "callee-entry",
	})
	sp := e.tel.StartSpan("migrate", "migrate")
	sp.SetISA(vm.Active().String())
	sp.SetDetail("callee-entry")
	if err := e.migrateEntry(vm, calleeEntry, sp); err != nil {
		sp.SetDetail(err.Error())
		sp.End()
		e.refused(err)
		return false
	}
	e.Stats.Migrations++
	sp.SetISA(vm.Active().String())
	sp.SetCostUS(e.Stats.LastCostMicros)
	sp.End()
	e.completed(vm, calleeEntry)
	return true
}

func (e *Engine) refused(err error) {
	e.Stats.Unsafe++
	e.DebugLastErr = err
	e.tel.Emit(telemetry.Event{Type: telemetry.EvMigrateEnd, Detail: err.Error()})
}

func (e *Engine) completed(vm *dbt.VM, addr uint32) {
	e.tel.Emit(telemetry.Event{
		Type: telemetry.EvMigrateEnd, ISA: vm.Active().String(), Addr: addr,
		Cost: e.Stats.LastCostMicros,
	})
}

func (e *Engine) migrateResume(vm *dbt.VM, resumeSrc uint32, boundary bool, parent telemetry.Span) error {
	a := vm.Active()
	b := a.Other()
	m := vm.P.M

	// Child spans on error paths are abandoned un-ended (never recorded);
	// the parent span carries the refusal detail instead.
	child := parent.StartChild(PhaseNames[PhaseSafepointWait])
	fn, blk := vm.Bin.BlockAt(a, resumeSrc)
	if fn == nil || blk == nil {
		return fmt.Errorf("%w: resume %#x outside known blocks", ErrUnsafe, resumeSrc)
	}
	var resumeB uint32
	switch {
	case blk.Addr[a] == resumeSrc:
		resumeB = blk.Addr[b]
	default:
		cs, ok := fn.CallSiteByRet(a, resumeSrc)
		if !ok {
			// Mid-block, non-call-site address (e.g. a gadget): no
			// cross-ISA equivalent exists.
			return fmt.Errorf("%w: resume %#x is not an equivalence point", ErrUnsafe, resumeSrc)
		}
		resumeB = cs.RetAddr[b]
	}
	child.End()

	child = parent.StartChild(PhaseNames[PhaseRatRebuild])
	frames, err := e.walk(vm, a, fn, blk, m.SP())
	if err != nil {
		return err
	}
	child.SetCostUS(CostPhases(b, len(frames), 0)[PhaseRatRebuild])
	child.End()

	child = parent.StartChild(PhaseNames[PhaseTransform])
	regs0, err := e.sourceRegs(vm, a, frames[0], boundary)
	if err != nil {
		return err
	}
	regsB, objects, err := e.transform(vm, a, frames, regs0)
	if err != nil {
		return err
	}

	// Install the target register file: callee-saved state plus the
	// return register and the stack pointer.
	sp := m.SP()
	retVal := regs0[retRegOf(a)]
	copy(m.Regs[:], regsB[:])
	m.ISA = b
	m.SetSP(sp)
	m.Regs[retRegOf(b)] = retVal
	m.Flags = machine.Flags{}
	child.SetCostUS(CostPhases(b, 0, objects)[PhaseTransform])
	child.End()

	child = parent.StartChild(PhaseNames[PhaseRetranslate])
	cacheAddr, err := vm.EnsureTranslated(b, resumeB)
	if err != nil {
		return err
	}
	child.SetCostUS(CostPhases(b, 0, 0)[PhaseRetranslate])
	child.End()

	child = parent.StartChild(PhaseNames[PhaseResume])
	// Freshly translated continuations expect relocated register state.
	if err := vm.ApplyReRelocate(vm.MapOf(frames[0].fn)[b]); err != nil {
		return err
	}
	m.PC = cacheAddr
	e.account(b, len(frames), objects)
	child.SetCostUS(CostPhases(b, 0, 0)[PhaseResume])
	child.End()
	return nil
}

func (e *Engine) migrateEntry(vm *dbt.VM, calleeEntry uint32, parent telemetry.Span) error {
	a := vm.Active()
	b := a.Other()
	m := vm.P.M

	child := parent.StartChild(PhaseNames[PhaseSafepointWait])
	callee := vm.Bin.FuncAt(a, calleeEntry)
	if callee == nil || callee.Entry[a] != calleeEntry {
		return fmt.Errorf("%w: %#x is not a function entry", ErrUnsafe, calleeEntry)
	}
	// Recover the just-saved return address per the source convention.
	var srcRetA, callerBase uint32
	if a == isa.X86 {
		v, err := m.Mem.ReadWord(m.SP())
		if err != nil {
			return err
		}
		srcRetA = v
		callerBase = m.SP() + 4
	} else {
		srcRetA = m.Regs[isa.LR]
		callerBase = m.SP()
	}
	var srcRetB uint32
	var caller *fatbin.FuncMeta
	var callerBlk *fatbin.BlockMeta
	if srcRetA == proc.ExitAddr {
		srcRetB = proc.ExitAddr
	} else {
		caller = vm.Bin.FuncAt(a, srcRetA)
		if caller == nil {
			return fmt.Errorf("%w: return address %#x not in text", ErrUnsafe, srcRetA)
		}
		cs, ok := caller.CallSiteByRet(a, srcRetA)
		if !ok {
			return fmt.Errorf("%w: return address %#x is not a call site", ErrUnsafe, srcRetA)
		}
		srcRetB = cs.RetAddr[b]
		_, callerBlk = vm.Bin.BlockAt(a, srcRetA)
		if callerBlk == nil {
			return fmt.Errorf("%w: call site without block", ErrUnsafe)
		}
	}
	child.End()

	var frames []frame
	var regs0 [16]uint32
	objects := 0
	var regsB [16]uint32
	if caller != nil {
		child = parent.StartChild(PhaseNames[PhaseRatRebuild])
		var err error
		frames, err = e.walk(vm, a, caller, callerBlk, callerBase)
		if err != nil {
			return err
		}
		child.SetCostUS(CostPhases(b, len(frames)+1, 0)[PhaseRatRebuild])
		child.End()
		child = parent.StartChild(PhaseNames[PhaseTransform])
		// Indirect calls marshal to the boundary convention before
		// trapping, so register state is physical.
		copy(regs0[:], m.Regs[:])
		regsB, objects, err = e.transform(vm, a, frames, regs0)
		if err != nil {
			return err
		}
	} else {
		child = parent.StartChild(PhaseNames[PhaseRatRebuild])
		child.SetCostUS(CostPhases(b, 1, 0)[PhaseRatRebuild])
		child.End()
		child = parent.StartChild(PhaseNames[PhaseTransform])
		copy(regs0[:], m.Regs[:])
	}

	// Move the pending call's outgoing arguments between the two
	// randomized calling conventions.
	pair := vm.MapOf(callee)
	cmapA, cmapB := pair[a], pair[b]
	for i := 0; i < callee.NumArgs; i++ {
		v, err := m.Mem.ReadWord(callerBase + uint32(cmapA.ArgOff[i]))
		if err != nil {
			return err
		}
		if err := m.Mem.WriteWord(callerBase+uint32(cmapB.ArgOff[i]), v); err != nil {
			return err
		}
		objects++
	}

	// Install registers and switch the return-address convention.
	copy(m.Regs[:], regsB[:])
	m.ISA = b
	m.Flags = machine.Flags{}
	if b == isa.X86 {
		// Target pushes the return address.
		m.SetSP(callerBase - 4)
		if err := m.Mem.WriteWord(callerBase-4, srcRetB); err != nil {
			return err
		}
	} else {
		m.SetSP(callerBase)
		m.Regs[isa.LR] = srcRetB
	}
	child.SetCostUS(CostPhases(b, 0, objects)[PhaseTransform])
	child.End()

	child = parent.StartChild(PhaseNames[PhaseRetranslate])
	cacheAddr, err := vm.EnsureTranslated(b, callee.Entry[b])
	if err != nil {
		return err
	}
	child.SetCostUS(CostPhases(b, 0, 0)[PhaseRetranslate])
	child.End()

	child = parent.StartChild(PhaseNames[PhaseResume])
	// Callee entries expect the boundary (physical) convention; the
	// translated prologue re-relocates.
	m.PC = cacheAddr
	e.account(b, len(frames)+1, objects)
	child.SetCostUS(CostPhases(b, 0, 0)[PhaseResume])
	child.End()
	return nil
}

// sourceRegs builds the effective physical register file of the innermost
// frame: the actual registers at a return boundary, or a software
// de-relocation of the innermost map for indirect-jump events.
func (e *Engine) sourceRegs(vm *dbt.VM, a isa.Kind, inner frame, boundary bool) ([16]uint32, error) {
	m := vm.P.M
	var regs [16]uint32
	if boundary {
		copy(regs[:], m.Regs[:])
		return regs, nil
	}
	mapA := vm.MapOf(inner.fn)[a]
	for i := 0; i < 16; i++ {
		l := mapA.LocOfReg(isa.Reg(i))
		if l.Kind == psr.LocReg {
			regs[i] = m.Regs[l.Reg]
			continue
		}
		v, err := m.Mem.ReadWord(m.SP() + uint32(l.Off))
		if err != nil {
			return regs, err
		}
		regs[i] = v
	}
	return regs, nil
}

// transform checks migration safety, moves every frame's relocatable
// objects between the two ISAs' relocation maps, rewrites return
// addresses, rebuilds the target-ISA callee-save chain, and returns the
// target register file.
func (e *Engine) transform(vm *dbt.VM, a isa.Kind, frames []frame, regs0 [16]uint32) ([16]uint32, int, error) {
	b := a.Other()
	m := vm.P.M
	var regsB [16]uint32

	for _, fr := range frames {
		regResident := 0
		for _, h := range fr.block.LiveIn {
			if h.InReg(a) {
				regResident++
			}
		}
		if regResident > 0 && !e.Policy.OnDemand {
			return regsB, 0, fmt.Errorf("%w: register-resident state without on-demand transform", ErrUnsafe)
		}
		if regResident > e.Policy.Capacity {
			return regsB, 0, fmt.Errorf("%w: %d register-resident live-ins exceed capacity %d",
				ErrUnsafe, regResident, e.Policy.Capacity)
		}
	}

	// Per-depth source register files via the save-chain unwind.
	regsAt := make([][16]uint32, len(frames)+1)
	regsAt[0] = regs0
	for i, fr := range frames {
		regsAt[i+1] = regsAt[i]
		mapA := vm.MapOf(fr.fn)[a]
		for w, r := range fr.fn.SavedRegs[a] {
			off := int32(fr.fn.SaveOff + 4*uint32(w))
			v, err := m.Mem.ReadWord(fr.base + uint32(mapA.OffTo[off]))
			if err != nil {
				return regsB, 0, err
			}
			regsAt[i+1][r] = v
		}
	}

	// Plan all memory moves before mutating anything.
	type move struct {
		addr uint32
		val  uint32
	}
	var plan []move
	objects := 0
	for _, fr := range frames {
		pair := vm.MapOf(fr.fn)
		mapA, mapB := pair[a], pair[b]
		for off, toA := range mapA.OffTo {
			v, err := m.Mem.ReadWord(fr.base + uint32(toA))
			if err != nil {
				return regsB, 0, err
			}
			if off == fr.retOff {
				v = fr.retB
			}
			plan = append(plan, move{fr.base + uint32(mapB.OffTo[off]), v})
			objects++
		}
		for i := 0; i < fr.fn.NumArgs; i++ {
			src := fr.base + fr.fn.FrameSize + mapA.RandSpace + uint32(mapA.ArgOff[i])
			v, err := m.Mem.ReadWord(src)
			if err != nil {
				return regsB, 0, err
			}
			plan = append(plan, move{fr.base + fr.fn.FrameSize + mapB.RandSpace + uint32(mapB.ArgOff[i]), v})
			objects++
		}
	}

	// Target register file, live-value overrides, and target save chain,
	// walking outermost -> innermost.
	var saveWrites, liveWrites []move
	for i := len(frames) - 1; i >= 0; i-- {
		fr := frames[i]
		pair := vm.MapOf(fr.fn)
		mapA, mapB := pair[a], pair[b]
		for _, h := range fr.block.LiveIn {
			var val uint32
			if h.InReg(a) {
				val = regsAt[i][h.Reg[a]]
			} else {
				v, err := m.Mem.ReadWord(fr.base + uint32(mapA.OffTo[h.FrameOff]))
				if err != nil {
					return regsB, 0, err
				}
				val = v
			}
			if h.InReg(b) {
				regsB[h.Reg[b]] = val
			} else {
				liveWrites = append(liveWrites, move{fr.base + uint32(mapB.OffTo[h.FrameOff]), val})
			}
		}
		if i > 0 {
			callee := frames[i-1]
			calleeMapB := vm.MapOf(callee.fn)[b]
			for w, r := range callee.fn.SavedRegs[b] {
				off := int32(callee.fn.SaveOff + 4*uint32(w))
				saveWrites = append(saveWrites, move{callee.base + uint32(calleeMapB.OffTo[off]), regsB[r]})
			}
		}
	}

	for _, mv := range plan {
		if err := m.Mem.WriteWord(mv.addr, mv.val); err != nil {
			return regsB, 0, err
		}
	}
	for _, mv := range saveWrites {
		if err := m.Mem.WriteWord(mv.addr, mv.val); err != nil {
			return regsB, 0, err
		}
	}
	for _, mv := range liveWrites {
		if err := m.Mem.WriteWord(mv.addr, mv.val); err != nil {
			return regsB, 0, err
		}
	}
	e.Stats.FramesMoved += uint64(len(frames))
	e.Stats.ObjectsMoved += uint64(objects)
	return regsB, objects, nil
}

// walk discovers the live frames, innermost first, following relocated
// return addresses and rewriting them through the call-site table.
func (e *Engine) walk(vm *dbt.VM, a isa.Kind, fn *fatbin.FuncMeta, blk *fatbin.BlockMeta, sp uint32) ([]frame, error) {
	m := vm.P.M
	b := a.Other()
	var frames []frame
	base := sp
	cur := fn
	curBlk := blk
	for len(frames) < e.Policy.MaxFrames {
		mapA := vm.MapOf(cur)[a]
		retOff := int32(cur.RetAddrOff())
		retA, err := m.Mem.ReadWord(base + uint32(mapA.OffTo[retOff]))
		if err != nil {
			return nil, err
		}
		fr := frame{fn: cur, base: base, block: curBlk, retA: retA, retOff: retOff}
		if retA == proc.ExitAddr {
			fr.retB = proc.ExitAddr
			frames = append(frames, fr)
			return frames, nil
		}
		caller := vm.Bin.FuncAt(a, retA)
		if caller == nil {
			return nil, fmt.Errorf("%w: return address %#x not in text", ErrUnsafe, retA)
		}
		cs, ok := caller.CallSiteByRet(a, retA)
		if !ok {
			return nil, fmt.Errorf("%w: return address %#x is not a call site", ErrUnsafe, retA)
		}
		fr.retB = cs.RetAddr[b]
		frames = append(frames, fr)
		base = base + cur.FrameSize + mapA.RandSpace
		_, callerBlk := vm.Bin.BlockAt(a, retA)
		if callerBlk == nil {
			return nil, fmt.Errorf("%w: call site %#x has no block", ErrUnsafe, retA)
		}
		cur = caller
		curBlk = callerBlk
	}
	return nil, fmt.Errorf("%w: stack walk exceeded %d frames", ErrUnsafe, e.Policy.MaxFrames)
}

func (e *Engine) account(target isa.Kind, frames, objects int) {
	c := CostMicros(target, frames, objects)
	e.Stats.LastCostMicros = c
	e.Stats.TotalCostMicros += c
	if e.histCost[target] != nil {
		e.histCost[target].Observe(c)
	}
	if e.histPhase[0] != nil {
		phases := CostPhases(target, frames, objects)
		for i, v := range phases {
			e.histPhase[i].Observe(v)
		}
	}
}

func retRegOf(k isa.Kind) isa.Reg {
	if k == isa.X86 {
		return isa.EAX
	}
	return isa.R0
}

// Migration cost model (Figure 12): a fixed translation-infrastructure
// cost plus per-frame and per-object transformation work. Migrating toward
// ARM costs more per object (more registers to reconstruct, legalized
// addressing on the target), so x86->ARM is the slower direction — the
// paper reports 0.909 ms for ARM->x86 and 1.287 ms for x86->ARM.
const (
	baseCostMicrosX86  = 620.0
	baseCostMicrosARM  = 870.0
	perFrameMicrosX86  = 14.0
	perFrameMicrosARM  = 22.0
	perObjectMicrosX86 = 0.9
	perObjectMicrosARM = 1.3
)

// Migration phases, in execution order. These name both the child spans
// under a migration's parent span and the `migrate.phase.<name>`
// histogram series the cost model is decomposed into.
const (
	PhaseSafepointWait = iota // resolving the resume point to an equivalence point
	PhaseRatRebuild           // stack walk + cross-ISA return-address rewrite
	PhaseTransform            // register/stack state transform between relocation maps
	PhaseRetranslate          // ensuring the target-ISA continuation is translated
	PhaseResume               // installing registers/PC and re-relocating
	NumPhases
)

// PhaseNames maps phase indices to their span/series names.
var PhaseNames = [NumPhases]string{
	"safepoint-wait", "rat-rebuild", "transform", "retranslate", "resume",
}

// The fixed base cost splits across the infrastructure phases: most of it
// is translating the target-ISA continuation, the rest is split between
// the return-address-table/stack-walk machinery and the resume/relocation
// bookkeeping. Safe-point resolution is lookup-table work and carries no
// modeled cost of its own.
const (
	baseShareRatRebuild = 0.20
	baseShareRetrans    = 0.55
	baseShareResume     = 0.25
)

// CostPhases decomposes the migration cost model by phase. The phases sum
// to CostMicros exactly: the base cost splits over rat-rebuild /
// retranslate / resume by the fixed shares above, per-frame work bills to
// rat-rebuild, and per-object work bills to transform.
func CostPhases(target isa.Kind, frames, objects int) [NumPhases]float64 {
	base, perFrame, perObject := baseCostMicrosARM, perFrameMicrosARM, perObjectMicrosARM
	if target == isa.X86 {
		base, perFrame, perObject = baseCostMicrosX86, perFrameMicrosX86, perObjectMicrosX86
	}
	var p [NumPhases]float64
	p[PhaseSafepointWait] = 0
	p[PhaseRatRebuild] = baseShareRatRebuild*base + perFrame*float64(frames)
	p[PhaseTransform] = perObject * float64(objects)
	p[PhaseRetranslate] = baseShareRetrans * base
	p[PhaseResume] = baseShareResume * base
	return p
}

// CostMicros models the one-way migration cost toward the target ISA. It
// is defined as the sum of its phase decomposition so the
// `migrate.phase.*` series always account for the full `migrate.cost_us`
// total.
func CostMicros(target isa.Kind, frames, objects int) float64 {
	p := CostPhases(target, frames, objects)
	var sum float64
	for _, v := range p {
		sum += v
	}
	return sum
}

// SafetyReport classifies every block of a binary by migration safety in
// each direction — the Figure 6 analysis.
type SafetyReport struct {
	Total int
	Safe  [2]int // indexed by *source* ISA: Safe[X86] counts x86->ARM
}

// Fraction returns the migration-safe fraction for direction src->other.
func (r SafetyReport) Fraction(src isa.Kind) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Safe[src]) / float64(r.Total)
}

// AnalyzeSafety computes the static migration-safety of every basic block
// in bin under policy p: a block is safe in direction src->dst when its
// live-in register-resident state is within the on-demand transformer's
// reach (memory-resident state is always transformable thanks to the
// common frame layout).
func AnalyzeSafety(bin *fatbin.Binary, p Policy) SafetyReport {
	var rep SafetyReport
	for _, f := range bin.Funcs {
		for i := range f.Blocks {
			blk := &f.Blocks[i]
			rep.Total++
			for _, src := range isa.Kinds {
				regResident := 0
				for _, h := range blk.LiveIn {
					if h.InReg(src) {
						regResident++
					}
				}
				switch {
				case regResident == 0:
					rep.Safe[src]++
				case p.OnDemand && regResident <= p.Capacity:
					rep.Safe[src]++
				}
			}
		}
	}
	return rep
}

// Ensure Engine satisfies the VM's interface.
var _ dbt.Migrator = (*Engine)(nil)
