package workload

import (
	"math"
	"testing"
	"time"
)

// TestArrivalsPinnedSequence pins the exact arrival gaps for two seeds.
// The generator promises platform-independent determinism (splitmix64 +
// correctly-rounded float64 ops only), so these are hard equalities: a
// change here is a break in the open-loop traffic contract, not noise.
func TestArrivalsPinnedSequence(t *testing.T) {
	want1k := []int64{836005, 1369562, 3540554, 587633, 587463, 1439249, 2098409, 740379}
	a := NewArrivals(1, 1000)
	for i, w := range want1k {
		if got := a.Next().Nanoseconds(); got != w {
			t.Fatalf("seed 1 rate 1000: gap %d = %dns, want %dns", i, got, w)
		}
	}
	want250 := []int64{1976069, 67723, 9240883, 3498007}
	b := NewArrivals(7, 250)
	for i, w := range want250 {
		if got := b.Next().Nanoseconds(); got != w {
			t.Fatalf("seed 7 rate 250: gap %d = %dns, want %dns", i, got, w)
		}
	}
}

func TestArrivalsDeterministicPerSeed(t *testing.T) {
	a1 := NewArrivals(42, 500)
	a2 := NewArrivals(42, 500)
	for i := 0; i < 1000; i++ {
		if g1, g2 := a1.Next(), a2.Next(); g1 != g2 {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, g1, g2)
		}
	}
	b := NewArrivals(43, 500)
	same := 0
	a3 := NewArrivals(42, 500)
	for i := 0; i < 100; i++ {
		if a3.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 42 and 43 agree on %d/100 gaps; streams not independent", same)
	}
}

// TestArrivalsRateScaling: the same seed at double the rate yields exactly
// halved gaps (division by 2 is exact in IEEE 754), so rate sweeps reuse
// one underlying random stream.
func TestArrivalsRateScaling(t *testing.T) {
	a := NewArrivals(9, 100)
	b := NewArrivals(9, 200)
	for i := 0; i < 200; i++ {
		ga, gb := a.Next(), b.Next()
		if diff := ga - 2*gb; diff < -1 || diff > 1 {
			t.Fatalf("gap %d: rate 100 gave %v, rate 200 gave %v (want exactly half)", i, ga, gb)
		}
	}
}

// TestArrivalsMeanRate checks the empirical mean inter-arrival time
// against 1/rate: over 20k draws the sample mean of an exponential with
// mean 1ms has a standard error of ~7us, so 5% slack is > 7 sigma.
func TestArrivalsMeanRate(t *testing.T) {
	const rate = 1000.0
	a := NewArrivals(3, rate)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += a.Next()
	}
	mean := float64(sum.Nanoseconds()) / n
	want := 1e9 / rate
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean gap %.0fns, want %.0fns +-5%%", mean, want)
	}
}

func TestArrivalsSaturationMode(t *testing.T) {
	a := NewArrivals(1, 0)
	for i := 0; i < 10; i++ {
		if g := a.Next(); g != 0 {
			t.Fatalf("rate 0 must degenerate to back-to-back arrivals, got %v", g)
		}
	}
	if s := NewArrivals(5, 2000).Schedule(16); len(s) != 16 {
		t.Fatalf("Schedule(16) returned %d offsets", len(s))
	} else {
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("schedule not monotonic at %d: %v < %v", i, s[i], s[i-1])
			}
		}
	}
}
