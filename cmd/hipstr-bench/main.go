// Command hipstr-bench regenerates every table and figure of the paper's
// evaluation (§6-7) and prints them as text tables. Use -quick for a
// reduced sweep on the three smallest benchmarks, and -metrics-out to
// write a machine-readable metrics artifact alongside the report.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"hipstr"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps on the three smallest benchmarks")
	outPath := flag.String("out", "", "also write the report to this file")
	only := flag.String("only", "", "run a single experiment (table2, fig3..fig14, httpd)")
	metricsOut := flag.String("metrics-out", "", "write a metrics JSON artifact (per-experiment durations, run counters)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var s *hipstr.ExperimentSuite
	if *quick {
		s = hipstr.NewQuickExperiments(w)
	} else {
		s = hipstr.NewExperiments(w)
	}

	tel := hipstr.NewTelemetry()
	durations := tel.Histogram("bench.experiment_seconds")

	type exp struct {
		name string
		run  func() error
	}
	var table2Bits float64 = 30
	exps := []exp{
		{"fig3", func() error { _, err := s.Fig3(); return err }},
		{"fig4", func() error { _, err := s.Fig4(); return err }},
		{"table2", func() error {
			rows, err := s.Table2()
			if err == nil && len(rows) > 0 {
				sum := 0.0
				for _, r := range rows {
					sum += r.EntropyBits
				}
				table2Bits = sum / float64(len(rows))
			}
			return err
		}},
		{"fig5", func() error { _, err := s.Fig5(); return err }},
		{"fig6", func() error { _, err := s.Fig6(); return err }},
		{"fig7", func() error { s.Fig7(table2Bits); return nil }},
		{"fig8", func() error { _, err := s.Fig8(); return err }},
		{"fig9", func() error { _, err := s.Fig9(); return err }},
		{"fig10", func() error { _, err := s.Fig10(); return err }},
		{"fig11", func() error { _, err := s.Fig11(); return err }},
		{"fig12", func() error { _, err := s.Fig12(); return err }},
		{"fig13", func() error { _, err := s.Fig13(); return err }},
		{"fig14", func() error { _, err := s.Fig14(); return err }},
		{"httpd", func() error { _, err := s.HTTPD(); return err }},
	}
	for _, e := range exps {
		if *only != "" && e.name != *only {
			continue
		}
		start := time.Now()
		if err := e.run(); err != nil {
			tel.Counter("bench.experiments.failed").Inc()
			log.Fatalf("%s: %v", e.name, err)
		}
		secs := time.Since(start).Seconds()
		durations.Observe(secs)
		tel.Gauge("bench.seconds." + e.name).Set(secs)
		tel.Counter("bench.experiments.run").Inc()
	}
	fmt.Fprintln(w, "\ndone.")

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.Snapshot().WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "metrics artifact written to %s\n", *metricsOut)
	}
}
