package fleet

// The concurrent-admission hammer (satellite of the fleet PR): many
// goroutines fork and respawn VMs from ONE shared core.Snapshot while all
// of them translate through the process-wide shared UnitCache. Run under
// -race this exercises every cross-goroutine edge of the admission path;
// the assertions then pin byte-identical guest results against a serial
// run of the same work, so concurrency is shown to be invisible to
// guests, not merely non-crashing.

import (
	"context"
	"sync"
	"testing"

	"hipstr/internal/core"
	"hipstr/internal/dbt"
	"hipstr/internal/workload"
)

const hammerSteps = 25_000

// hammerSnapshot boots one libquantum prototype and snapshots it.
func hammerSnapshot(t *testing.T) *core.Snapshot {
	t.Helper()
	prof, ok := workload.ProfileByName("libquantum")
	if !ok {
		t.Fatal("libquantum profile missing")
	}
	bin, err := workload.Compile(prof)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.DBT.Seed = 0xfee1
	cfg.DBT.TraceCap = 256
	sys, err := core.New(bin, cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return sys.Snapshot()
}

// forkRun forks (i even) or respawns under seed i (i odd) and runs the
// guest hammerSteps, returning the result digest.
func forkRun(t *testing.T, snap *core.Snapshot, i int) uint64 {
	t.Helper()
	var sys *core.System
	var err error
	fc := dbt.ForkConfig{TraceCap: 256}
	if i%2 == 0 {
		sys, err = snap.Fork(fc)
	} else {
		sys, err = snap.Respawn(int64(0x1000+i), fc)
	}
	if err != nil {
		t.Errorf("guest %d spawn: %v", i, err)
		return 0
	}
	if _, err := sys.Run(hammerSteps); err != nil {
		t.Errorf("guest %d run: %v", i, err)
		return 0
	}
	return resultDigest(sys)
}

// TestRaceSharedSnapshotForkRespawn is the core of the hammer: 48 guests
// spawned concurrently from one snapshot — half CoW forks, half
// fresh-seed respawns — each executing 25k steps through the shared unit
// cache, byte-identical to the serial spawn of the same guest.
func TestRaceSharedSnapshotForkRespawn(t *testing.T) {
	snap := hammerSnapshot(t)
	const n = 48

	serial := make([]uint64, n)
	for i := range serial {
		serial[i] = forkRun(t, snap, i)
	}
	if t.Failed() {
		t.Fatal("serial pass failed; nothing to compare")
	}

	parallel := make([]uint64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			parallel[i] = forkRun(t, snap, i)
		}(i)
	}
	wg.Wait()

	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("guest %d: serial digest %#x != parallel %#x",
				i, serial[i], parallel[i])
		}
	}
	// All even guests are forks of one snapshot and must agree among
	// themselves; respawns must actually differ (new PSR seed) or the
	// respawn path silently degenerated into a fork.
	for i := 2; i < n; i += 2 {
		if serial[i] != serial[0] {
			t.Errorf("fork %d digest %#x != fork 0 %#x", i, serial[i], serial[0])
		}
	}
	if serial[1] == serial[0] {
		t.Error("respawn digest equals fork digest; reseed had no effect")
	}
}

// TestRaceFleetConcurrentAdmission drives the full host with admissions
// racing workers from several goroutines, then checks the per-tenant
// results against a serial single-admitter single-worker fleet.
func TestRaceFleetConcurrentAdmission(t *testing.T) {
	run := func(workers, admitters int) *Host {
		cfg := quotaConfig(workers)
		cfg.Policy.AttackProb = 0.2
		cfg.Policy.RespawnLimit = 1
		h := NewHost(cfg)
		if err := h.AddWorkload("libquantum"); err != nil {
			t.Fatalf("AddWorkload: %v", err)
		}
		h.Start(context.Background())
		const perAdmitter = 8
		var wg sync.WaitGroup
		wg.Add(admitters)
		for a := 0; a < admitters; a++ {
			go func() {
				defer wg.Done()
				for i := 0; i < perAdmitter; i++ {
					if _, err := h.Admit("libquantum"); err != nil {
						t.Errorf("Admit: %v", err)
					}
				}
			}()
		}
		wg.Wait()
		h.Close()
		if err := h.Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		return h
	}
	hs := run(1, 1) // 8 tenants, serial
	hp := run(4, 4) // 32 tenants, racing admitters and workers

	// A tenant's result is a pure function of the fleet seed and its ID
	// (admission order and scheduling never reach the guest), so every
	// parallel-host tenant whose ID exists in the serial host must match
	// it bit for bit; higher IDs have no serial counterpart and are only
	// checked for clean retirement.
	ser := hs.Tenants()
	for _, tn := range hp.Tenants() {
		if !tn.Done() {
			t.Fatalf("tenant %d not retired", tn.ID())
		}
		if tn.ID() <= uint64(len(ser)) {
			ref := ser[tn.ID()-1]
			if tn.Digest() != ref.Digest() || tn.Steps() != ref.Steps() {
				t.Errorf("tenant %d: digest/steps diverge from serial host "+
					"(%#x/%d vs %#x/%d)", tn.ID(),
					tn.Digest(), tn.Steps(), ref.Digest(), ref.Steps())
			}
		}
	}
}
