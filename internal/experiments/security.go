package experiments

import (
	"context"

	"hipstr/internal/attack"
	"hipstr/internal/dbt"
	"hipstr/internal/gadget"
	"hipstr/internal/isa"
	"hipstr/internal/migrate"
	"hipstr/internal/psr"
	"hipstr/internal/stats"
	"hipstr/internal/workload"
)

// Fig3Row is one bar of Figure 3: the classic-ROP attack surface split
// into gadgets PSR obfuscates and gadgets it leaves unchanged.
type Fig3Row struct {
	Benchmark    string
	Total        int
	Viable       int
	Obfuscated   int
	Unobfuscated int
}

// Fig3 measures the classic-ROP surface reduction: each viable gadget is
// executed natively and under PSR translation; identical outcomes mean the
// gadget survived unobfuscated.
func (s *Suite) Fig3(ctx context.Context) ([]Fig3Row, error) {
	s.header("Figure 3: Classic ROP attack surface (obfuscated vs unobfuscated)")
	rows := make([]Fig3Row, len(s.Profiles))
	err := s.forEachProfile(ctx, func(i int, p workload.Profile) error {
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		gs := s.sampleGadgets(gadget.Mine(bin, isa.X86, 0))
		viable, effects := viableGadgets(bin, gs)
		cfg := dbt.DefaultConfig()
		cfg.MigrateProb = 0
		cfg.Seed = p.Seed
		vm, err := dbt.New(bin, isa.X86, cfg)
		if err != nil {
			return err
		}
		row := Fig3Row{Benchmark: p.Name, Total: len(gs), Viable: len(viable)}
		for _, vi := range viable {
			te := gadget.TranslatedEffect(vm, &gs[vi])
			if effects[vi].SameOutcome(te) {
				row.Unobfuscated++
			} else {
				row.Obfuscated++
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	var reduc []float64
	for _, row := range rows {
		s.printf("%-12s total %6d  viable %5d  obfuscated %5d  unobfuscated %4d (%.2f%%)\n",
			row.Benchmark, row.Total, row.Viable, row.Obfuscated, row.Unobfuscated,
			100*float64(row.Unobfuscated)/max(1, float64(row.Viable)))
		if row.Viable > 0 {
			reduc = append(reduc, float64(row.Obfuscated)/float64(row.Viable))
		}
	}
	s.printf("average surface reduction: %s (paper: 98.04%%)\n", stats.Pct(stats.Mean(reduc)))
	return rows, nil
}

// Fig4Row is one bar of Figure 4: the brute-force surface split into
// eliminated and surviving (viable) gadgets.
type Fig4Row struct {
	Benchmark  string
	Total      int
	Eliminated int
	Surviving  int
}

// Fig4 measures the brute-force attack surface: gadgets that still
// populate a register with attacker data remain brute-force candidates.
func (s *Suite) Fig4(ctx context.Context) ([]Fig4Row, error) {
	s.header("Figure 4: Brute force attack surface (eliminated vs surviving)")
	rows := make([]Fig4Row, len(s.Profiles))
	err := s.forEachProfile(ctx, func(i int, p workload.Profile) error {
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		gs := s.sampleGadgets(gadget.Mine(bin, isa.X86, 0))
		viable, _ := viableGadgets(bin, gs)
		rows[i] = Fig4Row{
			Benchmark:  p.Name,
			Total:      len(gs),
			Surviving:  len(viable),
			Eliminated: len(gs) - len(viable),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		s.printf("%-12s total %6d  eliminated %6d  surviving %5d (%.1f%%)\n",
			row.Benchmark, row.Total, row.Eliminated, row.Surviving,
			100*float64(row.Surviving)/max(1, float64(row.Total)))
	}
	return rows, nil
}

// Table2Row mirrors Table 2.
type Table2Row = attack.BruteForceResult

// Table2 runs the Algorithm 1 brute-force simulation per benchmark. The
// measured mean entropy feeds Fig7 when the engine runs the full sequence.
func (s *Suite) Table2(ctx context.Context) ([]Table2Row, error) {
	s.header("Table 2: Brute force simulation")
	s.printf("%-12s %8s %8s %14s %14s\n", "benchmark", "params", "entropy", "attempts", "attempts(bias)")
	rows := make([]Table2Row, len(s.Profiles))
	err := s.forEachProfile(ctx, func(i int, p workload.Profile) error {
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		rows[i] = attack.SimulateBruteForce(bin, psr.DefaultConfig(), p.Seed)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for i, r := range rows {
		s.printf("%-12s %8.2f %7.0fb %14s %14s\n",
			s.Profiles[i].Name, r.AvgParams, r.EntropyBits,
			stats.Sci(r.AttemptsNoBias), stats.Sci(r.AttemptsBias))
		sum += r.EntropyBits
	}
	if len(rows) > 0 {
		s.setEntropyBits(sum / float64(len(rows)))
	}
	return rows, nil
}

// Fig5Row is one pair of bars of Figure 5: the JIT-ROP surface under
// single-ISA PSR and after HIPStR's migration gating.
type Fig5Row struct {
	Benchmark string
	JIT       attack.JITROPResult
}

// Fig5 measures the just-in-time code-reuse surface.
func (s *Suite) Fig5(ctx context.Context) ([]Fig5Row, error) {
	s.header("Figure 5: JIT-ROP attack surface on (a) PSR, (b) HIPStR")
	warm := uint64(600_000)
	if s.Quick {
		warm = 250_000
	}
	rows := make([]Fig5Row, len(s.Profiles))
	err := s.forEachProfile(ctx, func(i int, p workload.Profile) error {
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		cfg := dbt.DefaultConfig()
		cfg.Seed = p.Seed
		res, err := attack.SimulateJITROP(bin, cfg, warm)
		if err != nil {
			return err
		}
		rows[i] = Fig5Row{Benchmark: p.Name, JIT: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res := row.JIT
		s.printf("%-12s viable %5d  in-cache(PSR) %4d  migration-gated %4d  survive(HIPStR) %3d  exploit=%v\n",
			row.Benchmark, res.TotalViable, res.InCache, res.TriggerMigration,
			res.Survivors, res.SufficientForExploit)
	}
	return rows, nil
}

// Fig6Row is one benchmark of Figure 6: migration-safe block fractions.
type Fig6Row struct {
	Benchmark string
	X86ToARM  float64
	ARMToX86  float64
	LegacyX86 float64 // without on-demand transformation (the prior-work regime)
	LegacyARM float64
}

// Fig6 computes migration-safety from the extended symbol table.
func (s *Suite) Fig6(ctx context.Context) ([]Fig6Row, error) {
	s.header("Figure 6: Percentage of migration-safe basic blocks")
	rows := make([]Fig6Row, len(s.Profiles))
	err := s.forEachProfile(ctx, func(i int, p workload.Profile) error {
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		onDemand := migrate.AnalyzeSafety(bin, migrate.DefaultPolicy())
		legacy := migrate.AnalyzeSafety(bin, migrate.Policy{OnDemand: false})
		rows[i] = Fig6Row{
			Benchmark: p.Name,
			X86ToARM:  onDemand.Fraction(isa.X86),
			ARMToX86:  onDemand.Fraction(isa.ARM),
			LegacyX86: legacy.Fraction(isa.X86),
			LegacyARM: legacy.Fraction(isa.ARM),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []float64
	for _, row := range rows {
		s.printf("%-12s x86->arm %s  arm->x86 %s  (without on-demand: %s / %s)\n",
			row.Benchmark, stats.Pct(row.X86ToARM), stats.Pct(row.ARMToX86),
			stats.Pct(row.LegacyX86), stats.Pct(row.LegacyARM))
		all = append(all, row.X86ToARM, row.ARMToX86)
	}
	s.printf("average migration-safe: %s (paper: 78%%)\n", stats.Pct(stats.Mean(all)))
	return rows, nil
}

// Fig7Point is one curve point of Figure 7.
type Fig7Point struct {
	ChainLen int
	Entropy  map[attack.Technique]float64 // in bits
}

// Fig7 computes the entropy comparison using the measured per-gadget PSR
// entropy.
func (s *Suite) Fig7(psrBits float64) []Fig7Point {
	s.header("Figure 7: Entropy comparison (bits; paper plots 2^bits capped at 1024)")
	techs := []attack.Technique{attack.TechIsomeron, attack.TechHetISA,
		attack.TechPSRIsomeron, attack.TechHIPStR}
	var pts []Fig7Point
	s.printf("%5s %10s %10s %14s %14s\n", "chain", "Isomeron", "Het-ISA", "PSR+Isomeron", "HIPStR")
	for n := 1; n <= 12; n++ {
		pt := Fig7Point{ChainLen: n, Entropy: map[attack.Technique]float64{}}
		for _, t := range techs {
			pt.Entropy[t] = attack.EntropyBits(t, n, psrBits)
		}
		pts = append(pts, pt)
		s.printf("%5d %9.0fb %9.0fb %13.0fb %13.0fb\n", n,
			pt.Entropy[attack.TechIsomeron], pt.Entropy[attack.TechHetISA],
			pt.Entropy[attack.TechPSRIsomeron], pt.Entropy[attack.TechHIPStR])
	}
	return pts
}

// Fig8Curve is one technique's surviving-gadget curve of Figure 8.
type Fig8Curve struct {
	Technique attack.Technique
	P         []float64
	Surviving []float64
}

// Fig8 measures the tailored-attack surface vs diversification
// probability, averaged over the suite.
func (s *Suite) Fig8(ctx context.Context) ([]Fig8Curve, error) {
	s.header("Figure 8: Tailored-attack surface vs diversification probability")
	// Per-benchmark immunity populations, aggregated over the suite.
	results := make([]attack.TailoredResult, len(s.Profiles))
	err := s.forEachProfile(ctx, func(i int, p workload.Profile) error {
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		// PSR-surviving population from the Fig 5 cache analysis stands
		// in for the in-cache surface; use the viable count scaled by the
		// measured unobfuscated rate when available. Here: recompute
		// cheaply with the same sampling.
		gs := s.sampleGadgets(gadget.Mine(bin, isa.X86, 0))
		viable, _ := viableGadgets(bin, gs)
		psrSurface := len(viable) / 20 // measured unobfuscated rate is a few percent
		if psrSurface < 1 {
			psrSurface = 1
		}
		res, err := attack.AnalyzeTailored(s.module(p.Name), bin, psrSurface, p.Seed)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var agg attack.TailoredResult
	for _, res := range results {
		agg.Viable += res.Viable
		agg.PSRSurface += res.PSRSurface
		agg.SameISAImmune += res.SameISAImmune
		agg.CrossISAImmune += res.CrossISAImmune
		agg.PSRSameISAImmune += res.PSRSameISAImmune
	}
	techs := []attack.Technique{attack.TechIsomeron, attack.TechPSR,
		attack.TechHetISA, attack.TechPSRIsomeron, attack.TechHIPStR}
	ps := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	var curves []Fig8Curve
	s.printf("%5s", "p")
	for _, t := range techs {
		s.printf(" %14s", t)
	}
	s.printf("\n")
	for _, t := range techs {
		c := Fig8Curve{Technique: t, P: ps}
		for _, p := range ps {
			c.Surviving = append(c.Surviving, agg.Surviving(t, p))
		}
		curves = append(curves, c)
	}
	for i, p := range ps {
		s.printf("%5.1f", p)
		for _, c := range curves {
			s.printf(" %14.1f", c.Surviving[i])
		}
		s.printf("\n")
	}
	return curves, nil
}

// HTTPDResult is the §7.1 case study.
type HTTPDResult struct {
	Gadgets    int
	Obfuscated float64 // fraction
	BruteForce float64 // attempts
	JIT        attack.JITROPResult
}

// HTTPD runs the network-daemon case study.
func (s *Suite) HTTPD(ctx context.Context) (HTTPDResult, error) {
	s.header("httpd case study (§7.1)")
	var res HTTPDResult
	// A single cell: the case study has no inner sweep, but running it
	// through the pool keeps cancellation and panic containment uniform.
	err := s.forEach(ctx, 1, func(int) error {
		p := workload.HTTPD()
		bin, err := s.bin(p)
		if err != nil {
			return err
		}
		gs := s.sampleGadgets(gadget.Mine(bin, isa.X86, 0))
		viable, effects := viableGadgets(bin, gs)
		cfg := dbt.DefaultConfig()
		cfg.MigrateProb = 0
		cfg.Seed = p.Seed
		vm, err := dbt.New(bin, isa.X86, cfg)
		if err != nil {
			return err
		}
		unobf := 0
		for _, i := range viable {
			te := gadget.TranslatedEffect(vm, &gs[i])
			if effects[i].SameOutcome(te) {
				unobf++
			}
		}
		bf := attack.SimulateBruteForce(bin, psr.DefaultConfig(), p.Seed)
		jit, err := attack.SimulateJITROP(bin, dbt.DefaultConfig(), 600_000)
		if err != nil {
			return err
		}
		res = HTTPDResult{
			Gadgets:    len(gs),
			Obfuscated: 1 - float64(unobf)/max(1, float64(len(viable))),
			BruteForce: bf.AttemptsNoBias,
			JIT:        jit,
		}
		return nil
	})
	if err != nil {
		return HTTPDResult{}, err
	}
	s.printf("gadgets %d, obfuscated %s (paper: 99.7%%), brute force %s attempts,\n",
		res.Gadgets, stats.Pct(res.Obfuscated), stats.Sci(res.BruteForce))
	s.printf("JIT-ROP: %d in cache (paper: 84), %d survive migration (paper: 2), exploit=%v\n",
		res.JIT.InCache, res.JIT.Survivors, res.JIT.SufficientForExploit)
	return res, nil
}
