package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerRingOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: EvSecurity, Addr: uint32(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
		if e.Addr != uint32(6+i) {
			t.Fatalf("event %d addr %d, want %d", i, e.Addr, 6+i)
		}
	}
	if tr.Emitted() != 10 {
		t.Fatalf("emitted = %d, want 10", tr.Emitted())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(0)
	sink := NewJSONLSink(&buf)
	tr.AddSink(sink)
	tr.Emit(Event{Type: EvTranslate, ISA: "x86", Addr: 0x1000, Cost: 12.5})
	tr.Emit(Event{Type: EvMigrateEnd, ISA: "arm", Cost: 900})
	if sink.Written() != 2 || sink.Err() != nil {
		t.Fatalf("written=%d err=%v", sink.Written(), sink.Err())
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("JSONL has %d lines, want 2", n)
	}
}

func TestNilTelemetrySafe(t *testing.T) {
	var tel *Telemetry
	tel.Emit(Event{Type: EvKill})
	tel.Counter("x").Inc()
	tel.Gauge("y").Set(1)
	tel.Histogram("z").Observe(1)
	s := tel.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil telemetry leaked metrics")
	}
}
