package machine

import (
	"fmt"

	"hipstr/internal/isa"
)

// This file is the batched fast path of Run: fused superinstruction
// dispatch with block-batched timing commits. Invariants the arms rely on
// (established by isa.FuseBlock and Run's mode selection):
//
//   - The block's terminator, if any, is its final architectural
//     instruction, so only the last fused entry can transfer control,
//     halt, or invoke hooks. Body entries at most fault or store.
//   - The last fused entry is a single instruction or a cmp+jcc pair;
//     data pairs never cover the block's final instruction.
//   - m.PC may go stale inside the block (nothing reads it mid-block
//     without hooks attached); every arm leaves it correct after its
//     entry, and fault paths pin it to the faulting instruction's address
//     so errors look exactly like the per-instruction loop's.
//   - Specialized arms pre-mask register indices to 4 bits at fuse time;
//     the &0xF here only re-establishes the bound for the compiler.
//
// Timing protocol: while a Timing model is attached, body arms log each
// instruction's dynamic effective addresses (layout defined by
// isa.Op.StackAccess). The whole block's accounting is committed in one
// CommitBlock immediately before the final architectural instruction
// executes, so anything a terminator's hooks read from the model —
// measurement snapshots taken inside syscall handlers, span cycle
// sources — observes exactly the value the per-instruction loop would
// have shown. Early exits (faults, self-modifying-code evictions) commit
// the executed prefix at the exit point.

// logInstEAs records the generic arm's dynamic addresses before it
// executes: src EA, dst EA, then pre-exec SP, each when applicable. This
// mirrors what the timing model computes from live state in exact mode,
// so replaying the log is observation-identical.
func (m *Machine) logInstEAs(in *isa.Inst) {
	if in.Src.Kind == isa.OpdMem {
		m.eaLog[m.eaN] = m.ea(in.Src.Mem)
		m.eaN++
	}
	if in.Dst.Kind == isa.OpdMem {
		m.eaLog[m.eaN] = m.ea(in.Dst.Mem)
		m.eaN++
	}
	if in.Op.StackAccess() {
		m.eaLog[m.eaN] = m.SP()
		m.eaN++
	}
}

// fusedFault pins the PC to the faulting instruction and wraps the error
// exactly as stepInst does, so callers cannot tell which path faulted.
func (m *Machine) fusedFault(in *isa.Inst, err error) error {
	m.PC = in.Addr
	return fmt.Errorf("machine: at %#x (%s): %w", in.Addr, in.Op, err)
}

// runFused executes one predecoded block through the fused arms. The
// caller guarantees OnExec is nil and the step budget covers the block.
func (m *Machine) runFused(blk *Block) error {
	bc := &m.blocks
	insts := blk.Insts
	fused := blk.Fused
	t := m.Timing
	logOn := t != nil
	if logOn {
		m.eaN = 0
		m.logEA = true
	}
	startPC := m.PC
	logBase := 0 // first architectural instruction not yet committed
	done := 0    // architectural instructions executed so far
	last := len(fused) - 1
	for i := 0; i < last; i++ {
		f := &fused[i]
		n, wrote, err := m.execFusedBody(f, insts)
		done += n
		if err != nil {
			if logOn {
				m.logEA = false
				bc.commits++
				t.CommitBlock(m, insts[logBase:done], done-logBase, m.eaLog[:m.eaN])
			}
			return err
		}
		if wrote {
			if g := m.Mem.CodeGen(); g != bc.gen {
				// The write barrier fired: commit the executed prefix
				// (span cycle sources read the model during reconcile),
				// then reconcile. If this block was evicted, return with
				// the PC at the next instruction — the same latency the
				// per-instruction poll gave self-modifying code.
				if logOn {
					bc.commits++
					t.CommitBlock(m, insts[logBase:done], done-logBase, m.eaLog[:m.eaN])
					logBase = done
					m.eaN = 0
				}
				m.reconcileSpanned(bc, g)
				if !bc.alive(m.ISA, startPC, blk) {
					m.logEA = false
					return nil
				}
			}
		}
	}

	// Final entry: commit the block's timing before its last
	// architectural instruction executes (hooks it fires must see the
	// committed model), then execute it.
	f := &fused[last]
	switch f.Code {
	case isa.FCmpJccRI, isa.FCmpJccRR:
		// The compare executes first: it is register-only, so observing
		// it after execution is still exact (its accounting depends only
		// on static fields). The jcc is then live-observed pre-exec.
		b := uint32(f.Imm)
		if f.Code == isa.FCmpJccRR {
			b = m.Regs[f.R2&0xF]
		}
		m.cmpFlags(m.Regs[f.R1&0xF], b)
		m.Steps += 2
		if logOn {
			m.logEA = false
			bc.commits++
			t.CommitBlock(m, insts[logBase:], done-logBase, m.eaLog[:m.eaN])
		}
		if m.Flags.Eval(f.Cond) {
			jin := &insts[f.B]
			tgt, _, err := m.control(jin, CtlJcc, f.Target, 0)
			if err != nil {
				return m.fusedFault(jin, err)
			}
			m.PC = tgt
			return nil
		}
		m.PC = f.Next
		return nil
	}
	if logOn {
		m.logEA = false
		bc.commits++
		t.CommitBlock(m, insts[logBase:], done-logBase, m.eaLog[:m.eaN])
	}
	_, _, err := m.execFusedBody(f, insts)
	return err
}

// execFusedBody executes one fused entry and reports how many
// architectural instructions it retired and whether it may have written
// memory (requiring a code-generation poll). Terminator instructions only
// ever reach the FGeneric arm, and only as a block's final entry.
func (m *Machine) execFusedBody(f *isa.FusedInst, insts []isa.Inst) (int, bool, error) {
	switch f.Code {
	case isa.FMovRI:
		m.Steps++
		m.Regs[f.R1&0xF] = uint32(f.Imm)
		m.PC = f.Next
		return 1, false, nil
	case isa.FMovRR:
		m.Steps++
		m.Regs[f.R1&0xF] = m.Regs[f.R2&0xF]
		m.PC = f.Next
		return 1, false, nil
	case isa.FMovRM:
		m.Steps++
		ea := m.Regs[f.R2&0xF] + uint32(f.Imm)
		if m.logEA {
			m.eaLog[m.eaN] = ea
			m.eaN++
		}
		v, err := m.Mem.ReadWord(ea)
		if err != nil {
			return 1, false, m.fusedFault(&insts[f.A], err)
		}
		m.Regs[f.R1&0xF] = v
		m.PC = f.Next
		return 1, false, nil
	case isa.FMovMR:
		m.Steps++
		ea := m.Regs[f.R2&0xF] + uint32(f.Imm)
		if m.logEA {
			m.eaLog[m.eaN] = ea
			m.eaN++
		}
		if err := m.Mem.WriteWord(ea, m.Regs[f.R1&0xF]); err != nil {
			return 1, false, m.fusedFault(&insts[f.A], err)
		}
		m.PC = f.Next
		return 1, true, nil
	case isa.FLeaRM:
		m.Steps++
		ea := m.Regs[f.R2&0xF] + uint32(f.Imm)
		if m.logEA {
			m.eaLog[m.eaN] = ea
			m.eaN++
		}
		m.Regs[f.R1&0xF] = ea
		m.PC = f.Next
		return 1, false, nil
	case isa.FAluRI:
		m.Steps++
		r := f.R1 & 0xF
		m.Regs[r] = m.aluOp(f.Op, m.Regs[r], uint32(f.Imm))
		m.PC = f.Next
		return 1, false, nil
	case isa.FAluRR:
		m.Steps++
		r := f.R1 & 0xF
		m.Regs[r] = m.aluOp(f.Op, m.Regs[r], m.Regs[f.R2&0xF])
		m.PC = f.Next
		return 1, false, nil
	case isa.FAlu3RI:
		m.Steps++
		m.Regs[f.R1&0xF] = m.aluOp(f.Op, m.Regs[f.R2&0xF], uint32(f.Imm))
		m.PC = f.Next
		return 1, false, nil
	case isa.FAlu3RR:
		m.Steps++
		m.Regs[f.R1&0xF] = m.aluOp(f.Op, m.Regs[f.R2&0xF], m.Regs[f.R3&0xF])
		m.PC = f.Next
		return 1, false, nil
	case isa.FIncDec:
		m.Steps++
		v := m.Regs[f.R1&0xF]
		if f.Op == isa.OpInc {
			v++
		} else {
			v--
		}
		m.setZS(v)
		m.Regs[f.R1&0xF] = v
		m.PC = f.Next
		return 1, false, nil
	case isa.FCmpRI:
		m.Steps++
		m.cmpFlags(m.Regs[f.R1&0xF], uint32(f.Imm))
		m.PC = f.Next
		return 1, false, nil
	case isa.FCmpRR:
		m.Steps++
		m.cmpFlags(m.Regs[f.R1&0xF], m.Regs[f.R2&0xF])
		m.PC = f.Next
		return 1, false, nil
	case isa.FPushR, isa.FPushI:
		m.Steps++
		v := uint32(f.Imm)
		if f.Code == isa.FPushR {
			v = m.Regs[f.R1&0xF]
		}
		sp0 := m.SP()
		if m.logEA {
			m.eaLog[m.eaN] = sp0
			m.eaN++
		}
		if err := m.Mem.WriteWord(sp0-4, v); err != nil {
			return 1, false, m.fusedFault(&insts[f.A], err)
		}
		m.SetSP(sp0 - 4)
		m.PC = f.Next
		return 1, true, nil
	case isa.FPopR:
		m.Steps++
		sp0 := m.SP()
		if m.logEA {
			m.eaLog[m.eaN] = sp0
			m.eaN++
		}
		v, err := m.Mem.ReadWord(sp0)
		if err != nil {
			return 1, false, m.fusedFault(&insts[f.A], err)
		}
		m.SetSP(sp0 + 4)
		m.Regs[f.R1&0xF] = v
		m.PC = f.Next
		return 1, false, nil

	case isa.FMovMov:
		m.Steps += 2
		va := uint32(f.Imm)
		if f.Sub&isa.FSubImmA == 0 {
			va = m.Regs[f.R2&0xF]
		}
		m.Regs[f.R1&0xF] = va
		vb := uint32(f.Imm2)
		if f.Sub&isa.FSubImmB == 0 {
			vb = m.Regs[f.R4&0xF]
		}
		m.Regs[f.R3&0xF] = vb
		m.PC = f.Next
		return 2, false, nil
	case isa.FLoadAlu:
		m.Steps++
		ea := m.Regs[f.R2&0xF] + uint32(f.Imm)
		if m.logEA {
			m.eaLog[m.eaN] = ea
			m.eaN++
		}
		v, err := m.Mem.ReadWord(ea)
		if err != nil {
			return 1, false, m.fusedFault(&insts[f.A], err)
		}
		m.Regs[f.R1&0xF] = v
		m.Steps++
		a := m.Regs[f.R3&0xF]
		if f.Sub&isa.FSubAlu3 != 0 {
			a = m.Regs[f.R5&0xF]
		}
		b := uint32(f.Imm2)
		if f.Sub&isa.FSubAluImm == 0 {
			b = m.Regs[f.R4&0xF]
		}
		m.Regs[f.R3&0xF] = m.aluOp(f.Op, a, b)
		m.PC = f.Next
		return 2, false, nil
	case isa.FAluStore:
		m.Steps++
		a := m.Regs[f.R1&0xF]
		if f.Sub&isa.FSubAlu3 != 0 {
			a = m.Regs[f.R5&0xF]
		}
		b := uint32(f.Imm)
		if f.Sub&isa.FSubAluImm == 0 {
			b = m.Regs[f.R2&0xF]
		}
		m.Regs[f.R1&0xF] = m.aluOp(f.Op, a, b)
		m.Steps++
		ea := m.Regs[f.R3&0xF] + uint32(f.Imm2)
		if m.logEA {
			m.eaLog[m.eaN] = ea
			m.eaN++
		}
		if err := m.Mem.WriteWord(ea, m.Regs[f.R4&0xF]); err != nil {
			return 2, false, m.fusedFault(&insts[f.B], err)
		}
		m.PC = f.Next
		return 2, true, nil
	}

	// FGeneric (and, defensively, anything unrecognized): the full
	// interpreter arm. The PC already equals in.Addr on entry (every arm
	// restores it after its entry), and exec maintains it from here —
	// including its fault behavior, e.g. a failing syscall handler
	// observes the post-instruction PC. Wrapping without touching the PC
	// therefore matches stepInst exactly.
	in := &insts[f.A]
	if m.logEA {
		m.logInstEAs(in)
	}
	m.Steps++
	if err := m.exec(in); err != nil {
		return 1, true, fmt.Errorf("machine: at %#x (%s): %w", in.Addr, in.Op, err)
	}
	return 1, f.Sub&isa.FSubMayWrite != 0, nil
}
