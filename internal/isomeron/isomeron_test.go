package isomeron

import (
	"testing"

	"hipstr/internal/perf"
)

func sampleMeasurement() perf.Measurement {
	return perf.Measurement{
		Cycles: 1_000_000,
		Instrs: 2_000_000,
		Counts: perf.Counts{
			Instrs:  2_000_000,
			Calls:   10_000,
			Returns: 10_000,
		},
	}
}

func TestOverheadGrowsWithDiversification(t *testing.T) {
	m := sampleMeasurement()
	prev := 1.0
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := DefaultConfig()
		cfg.DiversifyProb = p
		r := cfg.Apply(m)
		if r.Relative <= 0 || r.Relative > 1 {
			t.Fatalf("p=%.2f: relative %.3f out of range", p, r.Relative)
		}
		if r.Relative > prev {
			t.Fatalf("p=%.2f: relative performance increased with diversification", p)
		}
		prev = r.Relative
	}
}

func TestAlwaysOnShepherdingCosts(t *testing.T) {
	m := sampleMeasurement()
	cfg := DefaultConfig()
	cfg.DiversifyProb = 0 // no switching at all
	r := cfg.Apply(m)
	// The instrumentation baseline still costs ~ShepherdFrac.
	if r.Relative > 1-cfg.ShepherdFrac/2 {
		t.Fatalf("p=0 relative %.3f: shepherding cost missing", r.Relative)
	}
}

func TestSwitchCountTracksProbability(t *testing.T) {
	m := sampleMeasurement()
	half := DefaultConfig()
	half.DiversifyProb = 0.5
	r := half.Apply(m)
	events := m.Counts.Calls + m.Counts.Returns
	frac := float64(r.Switches) / float64(events)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("switch fraction %.3f at p=0.5", frac)
	}
}

func TestCombineWithPSRIsWorseThanEither(t *testing.T) {
	native := sampleMeasurement()
	psrRun := native
	psrRun.Cycles = 1_200_000 // PSR costs 20%
	cfg := DefaultConfig()
	combo := cfg.CombineWithPSR(native, psrRun)
	iso := cfg.Apply(native)
	psrRel := native.Cycles / psrRun.Cycles
	if combo.Relative >= iso.Relative || combo.Relative >= psrRel {
		t.Fatalf("combined system (%.3f) should be slower than Isomeron (%.3f) and PSR (%.3f)",
			combo.Relative, iso.Relative, psrRel)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	m := sampleMeasurement()
	cfg := DefaultConfig()
	a := cfg.Apply(m)
	b := cfg.Apply(m)
	if a.Switches != b.Switches {
		t.Fatal("same seed produced different switch counts")
	}
}
