// Package telemetry is the HIPStR VM's unified observability layer: a
// hierarchical metrics registry (atomic counters, gauges, and log-bucketed
// histograms cheap enough for the interpreter's trap paths), a structured
// event tracer with a bounded ring buffer and pluggable sinks, and
// machine-readable snapshot/delta export. It has no dependencies beyond
// the standard library and is shared by the DBT, migration engine, policy
// core, timing model, and both command-line drivers.
//
// Metric names are dot-separated hierarchies ("dbt.rat.x86.misses").
// Subsystems whose hot paths keep plain (non-atomic, single-goroutine)
// counters publish them through collector callbacks: a collector runs at
// Snapshot time and copies the raw fields into registry metrics, so the
// registry always agrees with the legacy accessors without adding a
// single atomic operation to the interpreter loop.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or collector-set) uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value — used by collectors syncing a raw field.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucketing: a fixed-precision log sketch. Bucket i holds
// observations v with upperBound(i-1) < v <= upperBound(i), where
// upperBound(i) = histBase^(i-histZero). With base 1.02 every reported
// bucket bound is within 2% of any observation it covers, so tail
// quantiles (migration-cost p99 and worse) come out sharp instead of
// rounded to the nearest power of two. With histZero = 640 and 2048
// buckets the covered range is ~3.1e-6 .. 1.3e12, ample for microsecond
// latencies through cycle counts; observations outside it clamp to the
// extreme buckets, and observations at or below zero land in bucket 0.
const (
	histBase    = 1.02
	histBuckets = 2048
	histZero    = 640
)

// HistSchemaVersion identifies the histogram bucket layout; consumers
// that pin WriteProm output byte-for-byte should key their golden data
// on it. Version 1 was log2 buckets (64 buckets, zero offset 16);
// version 2 is the fixed-precision base-1.02 sketch.
const HistSchemaVersion = 2

// histInvLogBase converts a natural log into a base-histBase log.
var histInvLogBase = 1 / math.Log(histBase)

// Histogram is a fixed-precision log-bucketed distribution (a base-1.02
// sketch) with atomic updates.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits; valid only when count > 0
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	idx := histZero + int(math.Ceil(math.Log(v)*histInvLogBase))
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// BucketUpperBound returns the inclusive upper bound of bucket i.
func BucketUpperBound(i int) float64 { return math.Pow(histBase, float64(i-histZero)) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketOf(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	// Min/max races with concurrent observers are benign: each CAS loop
	// only tightens the bound against the latest published extreme.
	if h.count.Add(1) == 1 {
		h.minBits.Store(math.Float64bits(v))
		h.maxBits.Store(math.Float64bits(v))
		return
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns a point-in-time view of the histogram. Safe from any
// goroutine (all fields are atomics); concurrent observers may land in
// or out of the view, as with any monitoring read.
func (h *Histogram) Snapshot() HistSnapshot {
	hs := HistSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	if hs.Count > 0 {
		hs.Min = math.Float64frombits(h.minBits.Load())
		hs.Max = math.Float64frombits(h.maxBits.Load())
		hs.Mean = hs.Sum / float64(hs.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{UpperBound: BucketUpperBound(i), Count: n})
		}
	}
	sort.Slice(hs.Buckets, func(a, b int) bool {
		return hs.Buckets[a].UpperBound < hs.Buckets[b].UpperBound
	})
	return hs
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistSnapshot is a point-in-time view of one histogram.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile returns an approximate q-quantile (0 <= q <= 1) from the bucket
// upper bounds.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			ub := b.UpperBound
			if ub > s.Max {
				ub = s.Max
			}
			if ub < s.Min {
				ub = s.Min
			}
			return ub
		}
	}
	return s.Max
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Delta returns the change from prev to s: counters and histogram
// counts/sums are subtracted (metrics absent from prev pass through);
// gauges and histogram min/max are instantaneous and keep s's values.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		d.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		d.Gauges[k] = v
	}
	for k, h := range s.Histograms {
		p := prev.Histograms[k]
		dh := HistSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum, Min: h.Min, Max: h.Max}
		if dh.Count > 0 {
			dh.Mean = dh.Sum / float64(dh.Count)
		}
		pb := make(map[float64]uint64, len(p.Buckets))
		for _, b := range p.Buckets {
			pb[b.UpperBound] = b.Count
		}
		for _, b := range h.Buckets {
			if n := b.Count - pb[b.UpperBound]; n > 0 {
				dh.Buckets = append(dh.Buckets, Bucket{UpperBound: b.UpperBound, Count: n})
			}
		}
		d.Histograms[k] = dh
	}
	return d
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Registry is a hierarchical, concurrency-safe metrics registry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// checkKind panics when name is already registered under a different
// metric kind. Reusing a name across kinds silently forks the metric
// namespace (JSON snapshots keep separate maps but Prometheus exposition
// and dashboards key by name alone), so it fails loudly instead. The
// caller holds the write lock.
func (r *Registry) checkKind(name, want string) {
	var have string
	switch {
	case want != "counter" && r.counters[name] != nil:
		have = "counter"
	case want != "gauge" && r.gauges[name] != nil:
		have = "gauge"
	case want != "histogram" && r.hists[name] != nil:
		have = "histogram"
	default:
		return
	}
	panic(fmt.Sprintf("telemetry: metric %q already registered as a %s (requested %s)", name, have, want))
}

// Counter returns (creating on first use) the named counter. Requesting a
// name already held by a gauge or histogram panics.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		r.checkKind(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge. Requesting a
// name already held by a counter or histogram panics.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		r.checkKind(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
// Requesting a name already held by a counter or gauge panics.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		r.checkKind(name, "histogram")
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SeriesPoint is one labeled point of an experiment series: a row of a
// figure/table whose numeric columns should be exported as metrics.
type SeriesPoint struct {
	Label  string
	Fields map[string]float64
}

// PublishSeries flattens an ordered series into gauges under prefix: each
// point's field f becomes gauge "<prefix>.<label>.<f>" (or "<prefix>.<f>"
// for points with an empty label). Experiment drivers use it to make a
// figure's raw series exportable alongside the printed table.
func (r *Registry) PublishSeries(prefix string, points []SeriesPoint) {
	for _, p := range points {
		base := prefix
		if p.Label != "" {
			base += "." + p.Label
		}
		for f, v := range p.Fields {
			r.Gauge(base + "." + f).Set(v)
		}
	}
}

// RegisterCollector adds a callback invoked at the start of every
// Snapshot, letting subsystems with plain (single-goroutine) counters
// publish them lazily. Collectors must not call Snapshot.
func (r *Registry) RegisterCollector(f func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// Snapshot runs the collectors and returns a point-in-time copy of every
// metric. Collectors that read non-atomic subsystem fields make Snapshot
// safe only from the goroutine driving those subsystems (the same rule
// that already governs reading VM.Stats directly).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	cs := make([]func(), len(r.collectors))
	copy(cs, r.collectors)
	r.mu.RUnlock()
	for _, f := range cs {
		f()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
