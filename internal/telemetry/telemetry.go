package telemetry

// Telemetry bundles one metrics registry, one event tracer, and one
// optional span tracer — the unit of observability a protected System
// carries. All methods are nil-safe so uninstrumented construction paths
// (a bare migrate.Engine in a test, say) need no guards.
//
// Spans is nil by default: span tracing is strictly opt-in (EnableSpans),
// and instrumented hot paths pay only a nil check when it is off.
type Telemetry struct {
	Reg   *Registry
	Trace *Tracer
	Spans *SpanTracer
}

// New returns a fresh registry + tracer pair with the default ring size.
func New() *Telemetry {
	return &Telemetry{Reg: NewRegistry(), Trace: NewTracer(DefaultTraceCap)}
}

// NewWithTraceCap returns a registry + tracer pair whose event ring keeps
// the last capacity events (<= 0 selects DefaultTraceCap).
func NewWithTraceCap(capacity int) *Telemetry {
	return &Telemetry{Reg: NewRegistry(), Trace: NewTracer(capacity)}
}

// PublishSeries is the nil-safe series exporter (see Registry.PublishSeries).
func (t *Telemetry) PublishSeries(prefix string, points []SeriesPoint) {
	if t == nil || t.Reg == nil {
		return
	}
	t.Reg.PublishSeries(prefix, points)
}

// EnableSpans attaches a span tracer with the given ring capacity (<= 0
// selects DefaultSpanCap) and returns it. Calling it again replaces the
// tracer. A nil receiver returns nil (which is itself a valid, inert
// tracer).
func (t *Telemetry) EnableSpans(capacity int) *SpanTracer {
	if t == nil {
		return nil
	}
	t.Spans = NewSpanTracer(capacity)
	return t.Spans
}

// StartSpan opens a root span on the attached span tracer; with spans
// disabled (or a nil receiver) it returns the inert zero Span.
func (t *Telemetry) StartSpan(track, name string) Span {
	if t == nil || t.Spans == nil {
		return Span{}
	}
	return t.Spans.StartSpan(track, name)
}

// Emit records a trace event; a nil receiver drops it.
func (t *Telemetry) Emit(e Event) {
	if t == nil || t.Trace == nil {
		return
	}
	t.Trace.Emit(e)
}

// Snapshot returns the registry snapshot; a nil receiver yields an empty
// snapshot.
func (t *Telemetry) Snapshot() Snapshot {
	if t == nil || t.Reg == nil {
		return Snapshot{
			Counters:   map[string]uint64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistSnapshot{},
		}
	}
	return t.Reg.Snapshot()
}

// Counter is a nil-safe registry accessor (returns a detached counter on a
// nil receiver so callers can increment unconditionally).
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil || t.Reg == nil {
		return &Counter{}
	}
	return t.Reg.Counter(name)
}

// Gauge is the nil-safe gauge accessor.
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil || t.Reg == nil {
		return &Gauge{}
	}
	return t.Reg.Gauge(name)
}

// Histogram is the nil-safe histogram accessor.
func (t *Telemetry) Histogram(name string) *Histogram {
	if t == nil || t.Reg == nil {
		return &Histogram{}
	}
	return t.Reg.Histogram(name)
}
