package prog

import (
	"math/rand"

	"fmt"

	"hipstr/internal/isa"
)

// ModuleBuilder incrementally constructs a Module.
type ModuleBuilder struct {
	m *Module
}

// NewModule starts a module named name.
func NewModule(name string) *ModuleBuilder {
	return &ModuleBuilder{m: &Module{Name: name, FuncIdx: make(map[string]int)}}
}

// Global declares a data object and returns its index.
func (mb *ModuleBuilder) Global(name string, size uint32, init []byte) int {
	mb.m.Globals = append(mb.m.Globals, Global{Name: name, Size: size, Init: init})
	return len(mb.m.Globals) - 1
}

// Func opens a function with nparams parameters and returns its builder.
func (mb *ModuleBuilder) Func(name string, nparams int) *FuncBuilder {
	f := &Func{Name: name, NParams: nparams, NVRegs: nparams, FixedSlots: make(map[int]bool)}
	mb.m.FuncIdx[name] = len(mb.m.Funcs)
	mb.m.Funcs = append(mb.m.Funcs, f)
	fb := &FuncBuilder{f: f}
	fb.NewBlock() // entry
	return fb
}

// Build validates and returns the module.
func (mb *ModuleBuilder) Build() (*Module, error) {
	if err := mb.m.Validate(); err != nil {
		return nil, err
	}
	return mb.m, nil
}

// MustBuild is Build for tests and generators with known-good IR.
func (mb *ModuleBuilder) MustBuild() *Module {
	m, err := mb.Build()
	if err != nil {
		panic(fmt.Sprintf("prog: MustBuild: %v", err))
	}
	return m
}

// Shuffle returns a semantically identical copy of m with its functions in
// a different order, so every function lands at a different text address —
// the layout-diversification primitive behind Isomeron-style program
// variants.
func Shuffle(m *Module, seed int64) *Module {
	n := &Module{Name: m.Name, FuncIdx: make(map[string]int), Globals: m.Globals}
	order := rand.New(rand.NewSource(seed)).Perm(len(m.Funcs))
	n.Funcs = make([]*Func, len(m.Funcs))
	for i, oi := range order {
		n.Funcs[i] = m.Funcs[oi]
		n.FuncIdx[m.Funcs[oi].Name] = i
	}
	return n
}

// FuncBuilder appends instructions to a function under construction.
type FuncBuilder struct {
	f   *Func
	cur *Block
}

// FuncRef returns the function being built.
func (fb *FuncBuilder) FuncRef() *Func { return fb.f }

// Param returns the vreg holding parameter i.
func (fb *FuncBuilder) Param(i int) VReg {
	if i >= fb.f.NParams {
		panic(fmt.Sprintf("prog: param %d of %d", i, fb.f.NParams))
	}
	return VReg(i)
}

// NewVReg allocates a fresh virtual register.
func (fb *FuncBuilder) NewVReg() VReg {
	v := VReg(fb.f.NVRegs)
	fb.f.NVRegs++
	return v
}

// NewSlot allocates a fresh local stack slot and returns its index.
func (fb *FuncBuilder) NewSlot() int {
	s := fb.f.NSlots
	fb.f.NSlots++
	return s
}

// NewBlock opens a new basic block and makes it current.
func (fb *FuncBuilder) NewBlock() int {
	b := &Block{ID: len(fb.f.Blocks)}
	fb.f.Blocks = append(fb.f.Blocks, b)
	fb.cur = b
	return b.ID
}

// SetBlock switches the current block.
func (fb *FuncBuilder) SetBlock(id int) { fb.cur = fb.f.Blocks[id] }

// CurBlock returns the current block id.
func (fb *FuncBuilder) CurBlock() int { return fb.cur.ID }

func (fb *FuncBuilder) emit(in Instr) {
	fb.cur.Ins = append(fb.cur.Ins, in)
}

// ConstTo emits dst = imm into an existing vreg (loop-carried updates).
func (fb *FuncBuilder) ConstTo(dst VReg, imm int32) {
	fb.emit(Instr{Kind: OpConst, Dst: dst, Imm: imm, A: NoVReg, B: NoVReg})
}

// CopyTo emits dst = a into an existing vreg.
func (fb *FuncBuilder) CopyTo(dst, a VReg) {
	fb.emit(Instr{Kind: OpCopy, Dst: dst, A: a, B: NoVReg})
}

// BinTo emits dst = a op b into an existing vreg.
func (fb *FuncBuilder) BinTo(dst VReg, op BinOp, a, b VReg) {
	fb.emit(Instr{Kind: OpBin, Bin: op, Dst: dst, A: a, B: b})
}

// BinImmTo emits dst = a op imm into an existing vreg.
func (fb *FuncBuilder) BinImmTo(dst VReg, op BinOp, a VReg, imm int32) {
	fb.emit(Instr{Kind: OpBinImm, Bin: op, Dst: dst, A: a, Imm: imm, B: NoVReg})
}

// LoadTo emits dst = mem[a + off] into an existing vreg.
func (fb *FuncBuilder) LoadTo(dst, a VReg, off int32) {
	fb.emit(Instr{Kind: OpLoad, Dst: dst, A: a, Imm: off, B: NoVReg})
}

// Const emits Dst = imm.
func (fb *FuncBuilder) Const(imm int32) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpConst, Dst: d, Imm: imm, A: NoVReg, B: NoVReg})
	return d
}

// Copy emits Dst = a.
func (fb *FuncBuilder) Copy(a VReg) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpCopy, Dst: d, A: a, B: NoVReg})
	return d
}

// Bin emits Dst = a op b.
func (fb *FuncBuilder) Bin(op BinOp, a, b VReg) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpBin, Bin: op, Dst: d, A: a, B: b})
	return d
}

// BinImm emits Dst = a op imm.
func (fb *FuncBuilder) BinImm(op BinOp, a VReg, imm int32) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpBinImm, Bin: op, Dst: d, A: a, Imm: imm, B: NoVReg})
	return d
}

// Neg emits Dst = -a.
func (fb *FuncBuilder) Neg(a VReg) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpNeg, Dst: d, A: a, B: NoVReg})
	return d
}

// Not emits Dst = ^a.
func (fb *FuncBuilder) Not(a VReg) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpNot, Dst: d, A: a, B: NoVReg})
	return d
}

// LoadSlot emits Dst = slots[slot].
func (fb *FuncBuilder) LoadSlot(slot int) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpLoadSlot, Dst: d, Slot: slot, A: NoVReg, B: NoVReg})
	return d
}

// StoreSlot emits slots[slot] = a.
func (fb *FuncBuilder) StoreSlot(slot int, a VReg) {
	fb.emit(Instr{Kind: OpStoreSlot, Slot: slot, A: a, B: NoVReg, Dst: NoVReg})
}

// SlotAddr emits Dst = &slots[slot], pinning the slot.
func (fb *FuncBuilder) SlotAddr(slot int) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpSlotAddr, Dst: d, Slot: slot, A: NoVReg, B: NoVReg})
	return d
}

// GlobalAddr emits Dst = &globals[g] + off.
func (fb *FuncBuilder) GlobalAddr(g int, off int32) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpGlobalAddr, Dst: d, Global: g, Imm: off, A: NoVReg, B: NoVReg})
	return d
}

// Load emits Dst = mem[a + off].
func (fb *FuncBuilder) Load(a VReg, off int32) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpLoad, Dst: d, A: a, Imm: off, B: NoVReg})
	return d
}

// Store emits mem[a + off] = b.
func (fb *FuncBuilder) Store(a VReg, off int32, b VReg) {
	fb.emit(Instr{Kind: OpStore, A: a, B: b, Imm: off, Dst: NoVReg})
}

// Call emits a direct call; pass wantRet=false for void calls.
func (fb *FuncBuilder) Call(fn string, wantRet bool, args ...VReg) VReg {
	d := NoVReg
	if wantRet {
		d = fb.NewVReg()
	}
	fb.emit(Instr{Kind: OpCall, Fn: fn, Args: args, Dst: d, A: NoVReg, B: NoVReg})
	return d
}

// CallInd emits an indirect call through fnptr.
func (fb *FuncBuilder) CallInd(fnptr VReg, wantRet bool, args ...VReg) VReg {
	d := NoVReg
	if wantRet {
		d = fb.NewVReg()
	}
	fb.emit(Instr{Kind: OpCallInd, A: fnptr, Args: args, Dst: d, B: NoVReg})
	return d
}

// FuncAddr emits Dst = &fn.
func (fb *FuncBuilder) FuncAddr(fn string) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpFuncAddr, Dst: d, Fn: fn, A: NoVReg, B: NoVReg})
	return d
}

// Syscall emits Dst = syscall(num; args...).
func (fb *FuncBuilder) Syscall(num int32, args ...VReg) VReg {
	d := fb.NewVReg()
	fb.emit(Instr{Kind: OpSyscall, Imm: num, Args: args, Dst: d, A: NoVReg, B: NoVReg})
	return d
}

// Ret emits a return of a (pass NoVReg for void).
func (fb *FuncBuilder) Ret(a VReg) {
	fb.emit(Instr{Kind: OpRet, A: a, B: NoVReg, Dst: NoVReg})
}

// Jmp emits an unconditional jump.
func (fb *FuncBuilder) Jmp(blk int) {
	fb.emit(Instr{Kind: OpJmp, Blk: blk, A: NoVReg, B: NoVReg, Dst: NoVReg})
}

// Br emits if a cond b goto t else f.
func (fb *FuncBuilder) Br(cond isa.Cond, a, b VReg, t, f int) {
	fb.emit(Instr{Kind: OpBr, Cond: cond, A: a, B: b, Blk: t, Blk2: f, Dst: NoVReg})
}

// BrImm emits if a cond imm goto t else f.
func (fb *FuncBuilder) BrImm(cond isa.Cond, a VReg, imm int32, t, f int) {
	fb.emit(Instr{Kind: OpBrImm, Cond: cond, A: a, Imm: imm, Blk: t, Blk2: f, B: NoVReg, Dst: NoVReg})
}
