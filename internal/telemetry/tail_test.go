package telemetry

import (
	"fmt"
	"testing"
)

// TestTracerTail: the flight-recorder tap returns the most recent n
// events in emission order, the whole buffer when n is zero or oversized,
// and respects the ring's rotation.
func TestTracerTail(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 12; i++ { // rotates 4 out
		tr.Emit(Event{Type: EvRespawn, Detail: fmt.Sprintf("e%d", i)})
	}
	tail := tr.Tail(3)
	if len(tail) != 3 {
		t.Fatalf("Tail(3) returned %d events", len(tail))
	}
	for i, want := range []string{"e9", "e10", "e11"} {
		if tail[i].Detail != want {
			t.Fatalf("tail[%d]=%q, want %q", i, tail[i].Detail, want)
		}
	}
	if got := tr.Tail(0); len(got) != 8 {
		t.Fatalf("Tail(0) returned %d events, want full ring 8", len(got))
	}
	if got := tr.Tail(100); len(got) != 8 || got[0].Detail != "e4" {
		t.Fatalf("oversized Tail = %d events starting %q", len(got), got[0].Detail)
	}
}

func TestSpanTracerTail(t *testing.T) {
	st := NewSpanTracer(8)
	for i := 0; i < 5; i++ {
		sp := st.StartSpan("t", fmt.Sprintf("s%d", i))
		sp.End()
	}
	tail := st.Tail(2)
	if len(tail) != 2 || tail[0].Name != "s3" || tail[1].Name != "s4" {
		t.Fatalf("span tail: %+v", tail)
	}
	if got := st.Tail(0); len(got) != 5 {
		t.Fatalf("Tail(0) returned %d spans, want 5", len(got))
	}
}
