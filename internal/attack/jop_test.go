package attack_test

import (
	"testing"

	"hipstr/internal/attack"
	"hipstr/internal/core"
	"hipstr/internal/gadget"
	"hipstr/internal/isa"
	"hipstr/internal/proc"
)

// TestFunctionPointerHijack models the JOP / v-table-hijack family (§5.3):
// instead of smashing a return address, the attacker corrupts a function
// pointer. Natively the victim's next indirect call lands in attacker-
// chosen code; under HIPStR the dispatch is policed — the target is
// translated under PSR (obfuscating it) or software-fault-isolated.
func TestFunctionPointerHijack(t *testing.T) {
	v, err := attack.BuildVictim(24)
	if err != nil {
		t.Fatal(err)
	}
	// The victim's libc_execve entry is the attacker's favorite target.
	ex := v.Bin.Func("libc_execve")
	gEntry := ex.Entry[isa.X86]

	// Natively: boot, corrupt main's first callee pointer... the victim
	// has no function-pointer table, so emulate the hijack by poisoning
	// the return-into-libc payload's target through the data section: use
	// the netbuf as the corrupted "pointer" carrier and verify the direct
	// form works (the ROP test covers return flow; here we validate that
	// an indirect transfer to a *legitimate-looking* function entry is
	// policed identically under the defense).
	p, err := proc.New(v.Bin, isa.X86)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the hijacked indirect call natively: set up machine state
	// as the compiler's CallInd would and jump.
	p.M.PC = gEntry
	sp := p.M.SP() - 64
	p.M.SetSP(sp)
	// Entering at the entry point via a hijacked jump: after the
	// prologue allocates the frame, argument i is read from the word at
	// [entrySP + 4 + 4i].
	p.Mem.WriteWord(sp+4, v.ShellStr) // arg0 = "/bin/sh"
	p.Mem.WriteWord(sp+8, 0)
	p.Mem.WriteWord(sp+12, 0)
	p.Run(10_000)
	native := false
	for _, ev := range p.Execves {
		if ev.PathPtr == v.ShellStr {
			native = true
		}
	}
	if !native {
		t.Fatal("native hijacked dispatch did not reach execve")
	}

	// Under the defense, the identical architectural state at the same
	// source address is dispatched through the PSR translation: the
	// randomized calling convention reads the arguments from relocated
	// slots the attacker did not populate.
	shells := 0
	for seed := int64(0); seed < 6; seed++ {
		cfg := core.DefaultConfig()
		cfg.DBT.Seed = seed
		sys, err := core.New(v.Bin, cfg)
		if err != nil {
			t.Fatal(err)
		}
		vm := sys.VM
		cacheAddr, err := vm.EnsureTranslated(isa.X86, gEntry)
		if err != nil {
			t.Fatal(err)
		}
		m := vm.P.M
		sp := m.SP() - 64
		m.SetSP(sp)
		// Same attacker knowledge: the canonical argument positions.
		vm.P.Mem.WriteWord(sp+4, v.ShellStr)
		vm.P.Mem.WriteWord(sp+8, 0)
		vm.P.Mem.WriteWord(sp+12, 0)
		m.PC = cacheAddr
		vm.Run(10_000)
		for _, ev := range vm.P.Execves {
			if ev.PathPtr == v.ShellStr {
				shells++
			}
		}
	}
	if shells > 0 {
		t.Fatalf("hijacked dispatch spawned %d shells under PSR", shells)
	}
}

// TestGadgetTranslationNeverPanics fuzzes the translator with every mined
// gadget address (aligned and unintentional): translating and executing
// attacker-chosen entry points must never take the VM down, only the
// victim process.
func TestGadgetTranslationNeverPanics(t *testing.T) {
	v, err := attack.BuildVictim(16)
	if err != nil {
		t.Fatal(err)
	}
	gs := gadget.Mine(v.Bin, isa.X86, 0)
	cfg := core.DefaultConfig()
	cfg.DBT.Seed = 9
	sys, err := core.New(v.Bin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	translated := 0
	for i := range gs {
		e := gadget.TranslatedEffect(sys.VM, &gs[i])
		_ = e
		translated++
	}
	if translated != len(gs) {
		t.Fatalf("translated %d of %d", translated, len(gs))
	}
	// ARM too.
	ga := gadget.Mine(v.Bin, isa.ARM, 0)
	for i := range ga {
		_ = gadget.TranslatedEffect(sys.VM, &ga[i])
	}
}
