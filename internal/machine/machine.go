// Package machine implements the architectural state and instruction
// interpreter for both ISAs of the simulated CMP. A Machine executes
// decoded instructions against a shared sparse memory; hooks allow the PSR
// virtual machine to interpose on control transfers (the paper's modified
// call/return macro-ops and indirect-branch policing) and allow the timing
// model to observe every executed instruction.
package machine

import (
	"errors"
	"fmt"

	"hipstr/internal/isa"
	"hipstr/internal/mem"
	"hipstr/internal/telemetry"
)

// MaxInstLen is the widest fetch window needed to decode one instruction.
const MaxInstLen = 16

// Sentinel errors.
var (
	ErrHalted    = errors.New("machine: halted")
	ErrDivZero   = errors.New("machine: divide by zero")
	ErrNoSyscall = errors.New("machine: no syscall handler installed")
)

// ControlKind classifies a control transfer for the ControlHook.
type ControlKind uint8

const (
	CtlJmp ControlKind = iota
	CtlJcc
	CtlCall
	CtlCallInd
	CtlJmpInd
	CtlRet
)

func (k ControlKind) String() string {
	switch k {
	case CtlJmp:
		return "jmp"
	case CtlJcc:
		return "jcc"
	case CtlCall:
		return "call"
	case CtlCallInd:
		return "call*"
	case CtlJmpInd:
		return "jmp*"
	case CtlRet:
		return "ret"
	}
	return "ctl?"
}

// IsIndirect reports whether the transfer's target came from program state
// rather than the instruction encoding.
func (k ControlKind) IsIndirect() bool {
	return k == CtlCallInd || k == CtlJmpInd || k == CtlRet
}

// Flags is the condition-flag state shared by both ISA models.
type Flags struct {
	Z bool // zero
	S bool // sign
	C bool // carry/borrow (unsigned below after cmp)
	O bool // signed overflow
}

// Eval evaluates a branch condition against the flags.
func (f Flags) Eval(c isa.Cond) bool {
	switch c {
	case isa.CondAlways:
		return true
	case isa.CondEQ:
		return f.Z
	case isa.CondNE:
		return !f.Z
	case isa.CondLT:
		return f.S != f.O
	case isa.CondGE:
		return f.S == f.O
	case isa.CondGT:
		return !f.Z && f.S == f.O
	case isa.CondLE:
		return f.Z || f.S != f.O
	case isa.CondB:
		return f.C
	case isa.CondAE:
		return !f.C
	}
	return false
}

// State is the copyable architectural state of one core.
type State struct {
	ISA    isa.Kind
	Regs   [16]uint32
	Flags  Flags
	PC     uint32
	Halted bool
	Steps  uint64
}

// SP returns the stack pointer value for the state's ISA.
func (s *State) SP() uint32 { return s.Regs[isa.StackReg(s.ISA)] }

// SetSP sets the stack pointer for the state's ISA.
func (s *State) SetSP(v uint32) { s.Regs[isa.StackReg(s.ISA)] = v }

// ControlHook observes and may redirect a control transfer. target is the
// raw computed target; retAddr is, for calls, the return address about to
// be saved (zero otherwise). The returned values substitute them. A non-nil
// error aborts the instruction.
type ControlHook func(m *Machine, in *isa.Inst, kind ControlKind, target, retAddr uint32) (uint32, uint32, error)

// SyscallHandler services OpSys instructions.
type SyscallHandler func(m *Machine, vector int32) error

// ExecHook observes each instruction before it executes.
type ExecHook func(m *Machine, in *isa.Inst)

// Timing is the interface the machine drives a cycle-accounting model
// through. In exact mode (single-stepping, or any OnExec observer
// attached) the machine calls ObserveInst immediately before each
// instruction executes. In batched mode the machine executes a fused
// block's body while logging dynamic effective addresses, then calls
// CommitBlock once per block: insts[:nLogged] have already executed and
// must be accounted from the EA log (see isa.Op.StackAccess for the log
// layout), while insts[nLogged:] are observed against live machine state
// exactly as ObserveInst would see them — the machine guarantees that
// state is still pre-execution for the first of them and that any
// remaining ones need no dynamic state (a fused cmp+jcc tail). Both paths
// must charge bit-identical cycles: batching changes when accounting
// runs, never what it sums.
type Timing interface {
	ObserveInst(m *Machine, in *isa.Inst)
	CommitBlock(m *Machine, insts []isa.Inst, nLogged int, eas []uint32)
}

// Machine couples architectural state with memory and execution hooks.
type Machine struct {
	State
	Mem       *mem.Memory
	Syscall   SyscallHandler
	OnControl ControlHook
	OnExec    ExecHook

	// Timing, when non-nil, receives cycle-accounting callbacks. Unlike
	// OnExec it does not force exact per-instruction dispatch: fused
	// blocks batch its updates into one CommitBlock at block exit, which
	// is observation-equivalent because every point that can read the
	// model mid-run (control hooks, syscall handlers, span cycle sources)
	// sits at a block terminator, after the commit.
	Timing Timing

	// blocks is the predecoded basic-block cache driving Run. It lives on
	// the Machine rather than inside State: State is copied and replaced
	// wholesale (process reset, PSR state relocation) and the cache must
	// survive those — correctness is guaranteed by the code generation,
	// not by State identity.
	blocks blockCache

	// Spans, when non-nil, records block-cache invalidation storms as
	// spans on the "machine" track. Reconciles that evict nothing (the
	// common case under DBT translation churn) record nothing.
	Spans *telemetry.SpanTracer

	// eaLog accumulates the dynamic effective addresses of a fused
	// block's executed body (at most two entries per instruction: memory
	// operand EAs plus the pre-exec SP of stack ops), consumed by
	// Timing.CommitBlock. logEA gates the logging so the plain
	// (unobserved) fast path never pays for it.
	eaLog [2 * BlockCap]uint32
	eaN   int
	logEA bool
}

// New returns a machine for ISA k over memory m.
func New(k isa.Kind, m *mem.Memory) *Machine {
	return &Machine{State: State{ISA: k}, Mem: m}
}

// ea computes the effective address of a memory operand.
func (m *Machine) ea(r isa.MemRef) uint32 {
	var a uint32 = uint32(r.Disp)
	if r.HasBase {
		a += m.Regs[r.Base]
	}
	if r.HasIndex {
		s := uint32(r.Scale)
		if s == 0 {
			s = 1
		}
		a += m.Regs[r.Index] * s
	}
	return a
}

func (m *Machine) readOpd(o isa.Operand) (uint32, error) {
	switch o.Kind {
	case isa.OpdReg:
		return m.Regs[o.Reg&0xF], nil
	case isa.OpdImm:
		return uint32(o.Imm), nil
	case isa.OpdMem:
		return m.Mem.ReadWord(m.ea(o.Mem))
	}
	return 0, fmt.Errorf("machine: read of empty operand")
}

func (m *Machine) writeOpd(o isa.Operand, v uint32) error {
	switch o.Kind {
	case isa.OpdReg:
		m.Regs[o.Reg&0xF] = v
		return nil
	case isa.OpdMem:
		return m.Mem.WriteWord(m.ea(o.Mem), v)
	}
	return fmt.Errorf("machine: write to non-lvalue operand")
}

func (m *Machine) push(v uint32) error {
	sp := m.SP() - 4
	if err := m.Mem.WriteWord(sp, v); err != nil {
		return err
	}
	m.SetSP(sp)
	return nil
}

func (m *Machine) pop() (uint32, error) {
	sp := m.SP()
	v, err := m.Mem.ReadWord(sp)
	if err != nil {
		return 0, err
	}
	m.SetSP(sp + 4)
	return v, nil
}

func (m *Machine) setZS(v uint32) {
	m.Flags.Z = v == 0
	m.Flags.S = int32(v) < 0
}

func (m *Machine) cmpFlags(a, b uint32) {
	r := a - b
	m.setZS(r)
	m.Flags.C = a < b
	m.Flags.O = (int32(a) < 0) != (int32(b) < 0) && (int32(r) < 0) != (int32(a) < 0)
}

// control routes a transfer through the hook and returns the final target.
func (m *Machine) control(in *isa.Inst, kind ControlKind, target, retAddr uint32) (uint32, uint32, error) {
	if m.OnControl == nil {
		return target, retAddr, nil
	}
	return m.OnControl(m, in, kind, target, retAddr)
}

// Step fetches, decodes, and executes one instruction. It is the slow
// path: single-steppers (the gadget analyzer, debug harnesses) use it
// directly, and Run reproduces its exact fault behavior through the block
// cache. The fetch window lives on the stack so stepping never allocates.
func (m *Machine) Step() error {
	if m.Halted {
		return ErrHalted
	}
	var win [MaxInstLen]byte
	n, err := m.Mem.FetchInto(m.PC, win[:])
	if err != nil {
		return fmt.Errorf("machine: fetch at %#x: %w", m.PC, err)
	}
	in, err := isa.Decode(m.ISA, win[:n], m.PC)
	if err != nil {
		return fmt.Errorf("machine: decode at %#x: %w", m.PC, err)
	}
	return m.stepInst(&in)
}

// stepInst is the shared per-instruction arm: timing observation, exec
// hook, step accounting, execution, and error wrapping. Step and Run's
// exact path both funnel through it so single-stepping and cached
// dispatch cannot drift; the fused path is checked against it by the
// differential-semantics tests.
func (m *Machine) stepInst(in *isa.Inst) error {
	if m.Timing != nil {
		m.Timing.ObserveInst(m, in)
	}
	if m.OnExec != nil {
		m.OnExec(m, in)
	}
	m.Steps++
	if err := m.exec(in); err != nil {
		return fmt.Errorf("machine: at %#x (%s): %w", in.Addr, in.Op, err)
	}
	return nil
}

// Run executes until a halt, an error, or maxSteps instructions. It returns
// the number of instructions executed.
//
// Run dispatches predecoded basic blocks: each block is fetched, decoded,
// and fused into superinstructions once, then re-executed from the cache
// for as long as the memory's code generations hold.
//
// Two dispatch modes exist per block, chosen fresh at every dispatch:
//
//   - Batched (the fast path): no per-instruction observer is attached
//     (OnExec is nil — control hooks and syscall handlers only fire at
//     block terminators, so they never force exact mode) and the step
//     budget covers the whole block. Fused entries execute through
//     dedicated arms, the timing model's delta for the block is committed
//     once just before the final architectural instruction executes, and
//     the Mem.CodeGen poll runs only after memory-writing instructions
//     (the write barrier's dirty signal) — so self-modifying code still
//     takes effect at the very next instruction.
//
//   - Exact: with OnExec attached (profiler sampling, gadget tracing) or
//     near the budget boundary, instructions run one at a time through
//     the same stepInst arm Step uses, with hook semantics, Steps counts,
//     and fault behavior bit-identical to single-stepping.
//
// When the code generation moves mid-block, the cache reconciles at page
// granularity and execution continues in place if the current block's
// pages were untouched, while unrelated code production (DBT translation
// commits, chain patches) no longer interrupts the block or evicts its
// neighbors.
func (m *Machine) Run(maxSteps uint64) (uint64, error) {
	start := m.Steps
	bc := &m.blocks
	var prev *Block // last dispatched block, for successor chaining
	for !m.Halted && m.Steps-start < maxSteps {
		if g := m.Mem.CodeGen(); g != bc.gen {
			m.reconcileSpanned(bc, g)
		}
		var blk *Block
		if prev != nil && prev.next != nil && prev.nextPC == m.PC &&
			prev.nextISA == m.ISA && prev.linkEpoch == bc.epoch {
			// Successor chain: the block most recently executed after
			// prev at this PC is still cached (no eviction since the
			// link was made), so skip the map lookup.
			blk = prev.next
			bc.hits++
		} else {
			blk = bc.lookup(m.ISA, m.PC)
			if blk == nil {
				var err error
				blk, err = bc.refill(m)
				if err != nil {
					return m.Steps - start, err
				}
			}
			if prev != nil {
				prev.next, prev.nextPC = blk, m.PC
				prev.nextISA, prev.linkEpoch = m.ISA, bc.epoch
			}
		}
		prev = blk
		if m.OnExec == nil && uint64(len(blk.Insts)) <= maxSteps-(m.Steps-start) {
			bc.batchedBlocks++
			if err := m.runFused(blk); err != nil {
				return m.Steps - start, err
			}
			continue
		}
		bc.exactBlocks++
		startPC := m.PC
		insts := blk.Insts
		for i := range insts {
			if m.Steps-start >= maxSteps {
				return m.Steps - start, nil
			}
			if err := m.stepInst(&insts[i]); err != nil {
				return m.Steps - start, err
			}
			if m.Halted {
				return m.Steps - start, nil
			}
			if g := m.Mem.CodeGen(); g != bc.gen {
				// Code changed somewhere. Reconcile now; if this block
				// survived (the write was elsewhere), keep executing it,
				// otherwise re-decode from the new PC. A control transfer
				// is always a block terminator, so m.ISA still names the
				// block's ISA here.
				m.reconcileSpanned(bc, g)
				if !bc.alive(m.ISA, startPC, blk) {
					break
				}
			}
		}
	}
	return m.Steps - start, nil
}

// reconcileSpanned reconciles the block cache with code generation g,
// recording a span on the "machine" track when the reconcile evicted
// decoded blocks (an invalidation storm). Spans that would describe a
// no-op reconcile are abandoned un-ended, which records nothing.
func (m *Machine) reconcileSpanned(bc *blockCache, g uint64) {
	if m.Spans == nil {
		bc.reconcile(m.Mem, g)
		return
	}
	before := bc.evicted
	fullBefore := bc.fullInvals
	sp := m.Spans.StartSpan("machine", "invalidate")
	bc.reconcile(m.Mem, g)
	dropped := bc.evicted - before
	if dropped == 0 && bc.fullInvals == fullBefore {
		return
	}
	sp.SetISA(m.ISA.String())
	sp.SetDetail(fmt.Sprintf("%d blocks evicted", dropped))
	sp.End()
}

func (m *Machine) exec(in *isa.Inst) error {
	next := in.Addr + uint32(in.Size)
	if in.ByteOp {
		if err := m.execByte(in); err != nil {
			return err
		}
		m.PC = next
		return nil
	}
	switch in.Op {
	case isa.OpNop:
	case isa.OpHlt:
		m.Halted = true
		return nil
	case isa.OpMov, isa.OpLoad, isa.OpStore:
		// All three are one read→write data move; they differ only in
		// which side names memory (x86 mov vs ARM ldr/str).
		v, err := m.readOpd(in.Src)
		if err != nil {
			return err
		}
		if err := m.writeOpd(in.Dst, v); err != nil {
			return err
		}
	case isa.OpMovT:
		v, err := m.readOpd(in.Dst)
		if err != nil {
			return err
		}
		if err := m.writeOpd(in.Dst, v&0xFFFF|uint32(in.Src.Imm)<<16); err != nil {
			return err
		}
	case isa.OpLea:
		if err := m.writeOpd(in.Dst, m.ea(in.Src.Mem)); err != nil {
			return err
		}
	case isa.OpAdd, isa.OpSub, isa.OpRsb, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpMul, isa.OpDiv:
		if err := m.alu(in); err != nil {
			return err
		}
	case isa.OpNeg:
		v, err := m.readOpd(in.Dst)
		if err != nil {
			return err
		}
		r := -v
		m.setZS(r)
		m.Flags.C = v != 0
		if err := m.writeOpd(in.Dst, r); err != nil {
			return err
		}
	case isa.OpNot:
		src := in.Src
		if src.Kind == isa.OpdNone {
			src = in.Dst // x86 one-operand form
		}
		v, err := m.readOpd(src)
		if err != nil {
			return err
		}
		if err := m.writeOpd(in.Dst, ^v); err != nil {
			return err
		}
	case isa.OpInc, isa.OpDec:
		v, err := m.readOpd(in.Dst)
		if err != nil {
			return err
		}
		if in.Op == isa.OpInc {
			v++
		} else {
			v--
		}
		m.setZS(v)
		if err := m.writeOpd(in.Dst, v); err != nil {
			return err
		}
	case isa.OpCmp:
		var a, b uint32
		var err error
		if a, err = m.readOpd(in.Dst); err != nil {
			return err
		}
		if b, err = m.readOpd(in.Src); err != nil {
			return err
		}
		m.cmpFlags(a, b)
	case isa.OpTest:
		a, err := m.readOpd(in.Dst)
		if err != nil {
			return err
		}
		b, err := m.readOpd(in.Src)
		if err != nil {
			return err
		}
		m.setZS(a & b)
		m.Flags.C, m.Flags.O = false, false
	case isa.OpPush:
		v, err := m.readOpd(in.Src)
		if err != nil {
			return err
		}
		if err := m.push(v); err != nil {
			return err
		}
	case isa.OpPop:
		v, err := m.pop()
		if err != nil {
			return err
		}
		if err := m.writeOpd(in.Dst, v); err != nil {
			return err
		}
	case isa.OpPushM:
		n := 0
		for r := 0; r < 16; r++ {
			if in.RegMask&(1<<r) != 0 {
				n++
			}
		}
		sp := m.SP() - uint32(4*n)
		off := sp
		for r := 0; r < 16; r++ {
			if in.RegMask&(1<<r) != 0 {
				if err := m.Mem.WriteWord(off, m.Regs[r]); err != nil {
					return err
				}
				off += 4
			}
		}
		m.SetSP(sp)
	case isa.OpPopM:
		sp := m.SP()
		var pcVal uint32
		hasPC := in.RegMask&(1<<isa.PC) != 0
		for r := 0; r < 16; r++ {
			if in.RegMask&(1<<r) == 0 {
				continue
			}
			v, err := m.Mem.ReadWord(sp)
			if err != nil {
				return err
			}
			sp += 4
			if r == int(isa.PC) {
				pcVal = v
			} else {
				m.Regs[r] = v
			}
		}
		m.SetSP(sp)
		if hasPC {
			t, _, err := m.control(in, CtlRet, pcVal, 0)
			if err != nil {
				return err
			}
			m.PC = t
			return nil
		}
	case isa.OpLeave:
		m.Regs[isa.ESP] = m.Regs[isa.EBP]
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.Regs[isa.EBP] = v
	case isa.OpJmp:
		t, _, err := m.control(in, CtlJmp, in.Target, 0)
		if err != nil {
			return err
		}
		m.PC = t
		return nil
	case isa.OpJcc:
		if m.Flags.Eval(in.Cond) {
			t, _, err := m.control(in, CtlJcc, in.Target, 0)
			if err != nil {
				return err
			}
			m.PC = t
			return nil
		}
	case isa.OpCall:
		t, ra, err := m.control(in, CtlCall, in.Target, next)
		if err != nil {
			return err
		}
		if err := m.saveRetAddr(ra); err != nil {
			return err
		}
		m.PC = t
		return nil
	case isa.OpCallI:
		raw, err := m.readOpd(in.Dst)
		if err != nil {
			return err
		}
		t, ra, err := m.control(in, CtlCallInd, raw, next)
		if err != nil {
			return err
		}
		if err := m.saveRetAddr(ra); err != nil {
			return err
		}
		m.PC = t
		return nil
	case isa.OpJmpI:
		raw, err := m.readOpd(in.Dst)
		if err != nil {
			return err
		}
		t, _, err := m.control(in, CtlJmpInd, raw, 0)
		if err != nil {
			return err
		}
		m.PC = t
		return nil
	case isa.OpRet:
		raw, err := m.pop()
		if err != nil {
			return err
		}
		if in.Imm > 0 { // ret imm16 frees extra stack bytes
			m.SetSP(m.SP() + uint32(in.Imm))
		}
		t, _, err := m.control(in, CtlRet, raw, 0)
		if err != nil {
			return err
		}
		m.PC = t
		return nil
	case isa.OpBx:
		raw, err := m.readOpd(in.Dst)
		if err != nil {
			return err
		}
		kind := CtlJmpInd
		if in.Dst.IsReg(isa.LR) {
			kind = CtlRet
		}
		t, _, err := m.control(in, kind, raw, 0)
		if err != nil {
			return err
		}
		m.PC = t
		return nil
	case isa.OpSys:
		m.PC = next // handlers observe the post-instruction PC
		if m.Syscall == nil {
			return ErrNoSyscall
		}
		if err := m.Syscall(m, in.Imm); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("machine: unimplemented op %s", in.Op)
	}
	m.PC = next
	return nil
}

// saveRetAddr stores a call's return address per the ISA convention: pushed
// on x86, placed in LR on ARM.
func (m *Machine) saveRetAddr(ra uint32) error {
	if m.ISA == isa.X86 {
		return m.push(ra)
	}
	m.Regs[isa.LR] = ra
	return nil
}

// execByte implements the 8-bit x86 operand forms: operations read and
// write only the low byte of registers and single bytes of memory.
func (m *Machine) execByte(in *isa.Inst) error {
	readB := func(o isa.Operand) (uint32, error) {
		switch o.Kind {
		case isa.OpdReg:
			return m.Regs[o.Reg&0xF] & 0xFF, nil
		case isa.OpdImm:
			return uint32(o.Imm) & 0xFF, nil
		case isa.OpdMem:
			b, err := m.Mem.LoadByte(m.ea(o.Mem))
			return uint32(b), err
		}
		return 0, fmt.Errorf("machine: byte read of empty operand")
	}
	writeB := func(o isa.Operand, v uint32) error {
		switch o.Kind {
		case isa.OpdReg:
			r := o.Reg & 0xF
			m.Regs[r] = m.Regs[r]&^0xFF | v&0xFF
			return nil
		case isa.OpdMem:
			return m.Mem.StoreByte(m.ea(o.Mem), byte(v))
		}
		return fmt.Errorf("machine: byte write to non-lvalue")
	}
	if in.Op == isa.OpMov {
		v, err := readB(in.Src)
		if err != nil {
			return err
		}
		return writeB(in.Dst, v)
	}
	a, err := readB(in.Dst)
	if err != nil {
		return err
	}
	b, err := readB(in.Src)
	if err != nil {
		return err
	}
	var r uint32
	switch in.Op {
	case isa.OpAdd:
		r = (a + b) & 0xFF
	case isa.OpSub, isa.OpCmp:
		r = (a - b) & 0xFF
		m.Flags.C = a < b
	case isa.OpAnd:
		r = a & b
	case isa.OpOr:
		r = a | b
	case isa.OpXor:
		r = a ^ b
	default:
		return fmt.Errorf("machine: unsupported byte op %s", in.Op)
	}
	m.Flags.Z = r == 0
	m.Flags.S = r&0x80 != 0
	if in.Op == isa.OpCmp {
		return nil
	}
	return writeB(in.Dst, r)
}

func (m *Machine) alu(in *isa.Inst) error {
	var a, b uint32
	var err error
	if in.ThreeOperand() {
		if a, err = m.readOpd(in.Src2); err != nil {
			return err
		}
	} else {
		if a, err = m.readOpd(in.Dst); err != nil {
			return err
		}
	}
	if b, err = m.readOpd(in.Src); err != nil {
		return err
	}
	if in.Op == isa.OpDiv {
		if b == 0 {
			return ErrDivZero
		}
		if in.ISA == isa.X86 {
			// x86 form: eax = eax/b, edx = eax%b.
			q, rem := a/b, a%b
			m.Regs[isa.EAX] = q
			m.Regs[isa.EDX] = rem
			return nil
		}
		return m.writeOpd(in.Dst, a/b)
	}
	return m.writeOpd(in.Dst, m.aluOp(in.Op, a, b))
}

// aluOp is the shared ALU arm: it computes op(a, b) and applies the op's
// flag semantics. Both the generic interpreter switch and the fused exec
// arms funnel through it, so the two dispatch paths cannot drift. Div is
// handled by the caller (the x86 form writes a register pair and can
// fault).
func (m *Machine) aluOp(op isa.Op, a, b uint32) uint32 {
	var r uint32
	switch op {
	case isa.OpAdd:
		r = a + b
		m.Flags.C = r < a
		m.Flags.O = (int32(a) < 0) == (int32(b) < 0) && (int32(r) < 0) != (int32(a) < 0)
		m.setZS(r)
	case isa.OpSub:
		r = a - b
		m.cmpFlags(a, b)
	case isa.OpRsb:
		r = b - a
		m.cmpFlags(b, a)
	case isa.OpAnd:
		r = a & b
		m.setZS(r)
		m.Flags.C, m.Flags.O = false, false
	case isa.OpOr:
		r = a | b
		m.setZS(r)
		m.Flags.C, m.Flags.O = false, false
	case isa.OpXor:
		r = a ^ b
		m.setZS(r)
		m.Flags.C, m.Flags.O = false, false
	case isa.OpShl:
		r = a << (b & 31)
		m.setZS(r)
	case isa.OpShr:
		r = a >> (b & 31)
		m.setZS(r)
	case isa.OpMul:
		r = a * b
	}
	return r
}
