package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b.c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a.b.c") != c {
		t.Fatal("counter not deduplicated by name")
	}
	g := r.Gauge("a.g")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{0.5, 1, 2, 3, 1000, 0} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 1006.5 {
		t.Fatalf("sum = %v, want 1006.5", s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", n)
	}
	// The sketch base anchors bucket zero offset at 1: ub(bucketOf(1)) is
	// exactly 1, and anything above it lands one bucket up (ub 1.02).
	if got := bucketOf(1); BucketUpperBound(got) != 1 {
		t.Fatalf("bucketOf(1) -> ub %v, want 1", BucketUpperBound(got))
	}
	if got := bucketOf(1.01); BucketUpperBound(got) != histBase {
		t.Fatalf("bucketOf(1.01) -> ub %v, want %v", BucketUpperBound(got), histBase)
	}
	// Fixed precision: every reported bound is within one sketch base
	// factor (2%) of the observation it covers.
	for _, v := range []float64{0.0007, 3, 97.5, 1e6} {
		ub := BucketUpperBound(bucketOf(v))
		if ub < v || ub > v*histBase*histBase {
			t.Fatalf("bucketOf(%v) -> ub %v outside (v, v*%v^2]", v, ub, histBase)
		}
	}
	// Quantiles are monotone and bounded by the observed extremes.
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %v, want 1000", q)
	}
	if q := s.Quantile(0.5); q < 0 || q > 1000 {
		t.Fatalf("p50 = %v out of range", q)
	}
	// Huge and tiny observations clamp instead of panicking.
	h.Observe(math.MaxFloat64)
	h.Observe(1e-300)
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	h := r.Histogram("cost")
	c.Add(3)
	h.Observe(10)
	prev := r.Snapshot()
	c.Add(2)
	h.Observe(20)
	h.Observe(20)
	r.Gauge("occ").Set(0.75)
	d := r.Snapshot().Delta(prev)
	if d.Counters["events"] != 2 {
		t.Fatalf("delta counter = %d, want 2", d.Counters["events"])
	}
	if d.Gauges["occ"] != 0.75 {
		t.Fatalf("delta gauge = %v, want 0.75", d.Gauges["occ"])
	}
	dh := d.Histograms["cost"]
	if dh.Count != 2 || dh.Sum != 40 {
		t.Fatalf("delta hist = %+v, want count 2 sum 40", dh)
	}
	var n uint64
	for _, b := range dh.Buckets {
		n += b.Count
	}
	if n != 2 {
		t.Fatalf("delta buckets sum to %d, want 2", n)
	}
}

func TestCollectorSync(t *testing.T) {
	r := NewRegistry()
	raw := uint64(0)
	r.RegisterCollector(func() { r.Counter("raw").Set(raw) })
	raw = 41
	if got := r.Snapshot().Counters["raw"]; got != 41 {
		t.Fatalf("collected = %d, want 41", got)
	}
	raw++
	if got := r.Snapshot().Counters["raw"]; got != 42 {
		t.Fatalf("collected = %d, want 42", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h").Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Counters["c"] != 7 || back.Gauges["g"] != 1.25 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
