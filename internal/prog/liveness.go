package prog

// VRegSet is a bitset over a function's virtual registers.
type VRegSet []uint64

// NewVRegSet returns a set sized for n vregs.
func NewVRegSet(n int) VRegSet { return make(VRegSet, (n+63)/64) }

// Has reports membership.
func (s VRegSet) Has(v VReg) bool {
	if v < 0 {
		return false
	}
	return s[v/64]&(1<<(uint(v)%64)) != 0
}

// Add inserts v.
func (s VRegSet) Add(v VReg) {
	if v >= 0 {
		s[v/64] |= 1 << (uint(v) % 64)
	}
}

// Remove deletes v.
func (s VRegSet) Remove(v VReg) {
	if v >= 0 {
		s[v/64] &^= 1 << (uint(v) % 64)
	}
}

// Union merges o into s, reporting whether s changed.
func (s VRegSet) Union(o VRegSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s VRegSet) Clone() VRegSet {
	c := make(VRegSet, len(s))
	copy(c, s)
	return c
}

// Count returns the population count.
func (s VRegSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Members lists the vregs in ascending order.
func (s VRegSet) Members() []VReg {
	var out []VReg
	for i, w := range s {
		for b := 0; b < 64; b++ {
			if w&(1<<b) != 0 {
				out = append(out, VReg(i*64+b))
			}
		}
	}
	return out
}

// Liveness holds per-block live-in/live-out sets.
type Liveness struct {
	In  []VRegSet
	Out []VRegSet
}

// ComputeLiveness runs the standard backward dataflow analysis over f.
// The paper's PSR runtime performs equivalent "sophisticated liveness
// analysis" to compute the live-ins and live-outs recorded in the
// extended symbol table.
func ComputeLiveness(f *Func) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{In: make([]VRegSet, n), Out: make([]VRegSet, n)}
	gen := make([]VRegSet, n)
	kill := make([]VRegSet, n)
	for i, b := range f.Blocks {
		lv.In[i] = NewVRegSet(f.NVRegs)
		lv.Out[i] = NewVRegSet(f.NVRegs)
		gen[i] = NewVRegSet(f.NVRegs)
		kill[i] = NewVRegSet(f.NVRegs)
		for ii := range b.Ins {
			in := &b.Ins[ii]
			for _, u := range in.Uses() {
				if !kill[i].Has(u) {
					gen[i].Add(u)
				}
			}
			if d := in.Def(); d != NoVReg {
				kill[i].Add(d)
			}
		}
	}
	// Iterate to fixpoint in reverse block order for fast convergence.
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Succs() {
				if lv.Out[i].Union(lv.In[s]) {
					changed = true
				}
			}
			// in = gen ∪ (out − kill)
			newIn := lv.Out[i].Clone()
			for w := range newIn {
				newIn[w] = gen[i][w] | (newIn[w] &^ kill[i][w])
			}
			if lv.In[i].Union(newIn) {
				changed = true
			}
		}
	}
	return lv
}

// LiveAcross reports, for each instruction index in block b (of function f
// analyzed by lv), the set of vregs live immediately after it. Index
// len(Ins) is not included; the final entry corresponds to the state after
// the last instruction (== Out of the block).
func (lv *Liveness) LiveAcross(f *Func, b int) []VRegSet {
	blk := f.Blocks[b]
	out := make([]VRegSet, len(blk.Ins))
	cur := lv.Out[b].Clone()
	for i := len(blk.Ins) - 1; i >= 0; i-- {
		out[i] = cur.Clone()
		in := &blk.Ins[i]
		if d := in.Def(); d != NoVReg {
			cur.Remove(d)
		}
		for _, u := range in.Uses() {
			cur.Add(u)
		}
	}
	return out
}

// Preds computes the predecessor lists of f's CFG.
func Preds(f *Func) [][]int {
	preds := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// ReversePostorder returns block ids in reverse postorder from the entry.
// Unreachable blocks are appended at the end in id order.
func ReversePostorder(f *Func) []int {
	seen := make([]bool, len(f.Blocks))
	var order []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range f.Blocks[id].Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, id)
	}
	dfs(0)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for id := range f.Blocks {
		if !seen[id] {
			order = append(order, id)
		}
	}
	return order
}
