package dbt

import (
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/isa"
	"hipstr/internal/psr"
	"hipstr/internal/testprogs"
)

// buildMapFor compiles a program and builds a relocation map for fn.
func buildMapFor(t *testing.T, fnName string) *psr.Map {
	t.Helper()
	bin, err := compiler.Compile(testprogs.Fib(5))
	if err != nil {
		t.Fatal(err)
	}
	fn := bin.Func(fnName)
	if fn == nil {
		t.Fatalf("no function %s", fnName)
	}
	return psr.NewRandomizer(3, psr.DefaultConfig()).Build(fn, isa.X86)
}

func TestRemapFrameOffRelocatables(t *testing.T) {
	m := buildMapFor(t, "fib")
	fn := m.Fn
	// Every relocatable canonical offset maps through OffTo.
	for _, off := range fn.RelocatableOffsets() {
		got := remapFrameOff(m, int32(off), nil, false)
		if got == int32(off) && m.OffTo[int32(off)] != int32(off) {
			t.Fatalf("offset %#x not remapped", off)
		}
		if got != m.OffTo[int32(off)] {
			t.Fatalf("offset %#x: remap %#x != map %#x", off, got, m.OffTo[int32(off)])
		}
	}
}

func TestRemapFrameOffReturnAddress(t *testing.T) {
	m := buildMapFor(t, "fib")
	got := remapFrameOff(m, int32(m.Fn.RetAddrOff()), nil, false)
	if got != m.RetOff {
		t.Fatalf("ret slot remapped to %#x, want %#x", got, m.RetOff)
	}
}

func TestRemapFrameOffIncomingArgs(t *testing.T) {
	m := buildMapFor(t, "fib")
	fn := m.Fn
	for i := 0; i < fn.NumArgs; i++ {
		got := remapFrameOff(m, int32(fn.ArgOff(i)), nil, false)
		want := int32(m.NewFrameSize) + m.ArgOff[i]
		if got != want {
			t.Fatalf("arg %d: remap %#x, want %#x", i, got, want)
		}
	}
}

func TestRemapFrameOffOutgoingArgs(t *testing.T) {
	caller := buildMapFor(t, "main")
	callee := buildMapFor(t, "fib")
	// A store to the canonical out-arg slot 0 with a pending direct call
	// lands at the callee's randomized convention offset.
	got := remapFrameOff(caller, 0, callee, false)
	if got != callee.ArgOff[0] {
		t.Fatalf("out-arg 0 remapped to %#x, want %#x", got, callee.ArgOff[0])
	}
	// With an indirect pending call, it stages instead.
	got = remapFrameOff(caller, 0, nil, true)
	if got != caller.StageOff {
		t.Fatalf("staged out-arg at %#x, want %#x", got, caller.StageOff)
	}
}

func TestRemapFrameOffDeepCallerAccess(t *testing.T) {
	m := buildMapFor(t, "fib")
	fs := int32(m.Fn.FrameSize)
	// An access beyond the incoming args (deep into the caller's frame)
	// shifts by the frame growth.
	deep := fs + 4 + 4*int32(m.Fn.NumArgs) + 40
	got := remapFrameOff(m, deep, nil, false)
	want := deep + int32(m.NewFrameSize) - fs - 4
	if got != want {
		t.Fatalf("deep offset %#x -> %#x, want %#x", deep, got, want)
	}
}

func TestRemapFrameOffUnknownStaysRaw(t *testing.T) {
	m := buildMapFor(t, "fib")
	// A non-canonical mid-frame offset (a gadget access) is left alone —
	// the data it hoped for lives elsewhere.
	odd := int32(m.Fn.LocalOff) + 2 // unaligned, not canonical
	if got := remapFrameOff(m, odd, nil, false); got != odd {
		t.Fatalf("gadget offset %#x rewritten to %#x", odd, got)
	}
}

func TestSrcRangesMergesAdjacent(t *testing.T) {
	tr := &translator{
		insts: []isa.Inst{
			{Addr: 100, Size: 2},
			{Addr: 102, Size: 3},
			{Addr: 105, Size: 1},
			{Addr: 200, Size: 4}, // gap (inlined jump)
			{Addr: 204, Size: 2},
		},
	}
	rs := tr.srcRanges()
	if len(rs) != 2 {
		t.Fatalf("ranges %v", rs)
	}
	if rs[0] != [2]uint32{100, 106} || rs[1] != [2]uint32{200, 206} {
		t.Fatalf("ranges %v", rs)
	}
}

func TestCoveredQueries(t *testing.T) {
	c := NewCodeCache(isa.X86, 1<<20)
	c.AddCovered([][2]uint32{{100, 106}, {200, 206}})
	cases := []struct {
		addr uint32
		want bool
	}{
		{100, true}, {105, true}, {106, false}, {99, false},
		{200, true}, {205, true}, {206, false},
	}
	for _, tc := range cases {
		if got := c.Covered(tc.addr); got != tc.want {
			t.Fatalf("Covered(%d) = %v", tc.addr, got)
		}
	}
	c.Flush()
	if c.Covered(100) {
		t.Fatal("coverage survived flush")
	}
}
