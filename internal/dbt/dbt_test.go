package dbt_test

import (
	"errors"
	"reflect"
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/proc"
	"hipstr/internal/prog"
	"hipstr/internal/testprogs"
)

const maxSteps = 20_000_000

func compile(t *testing.T, name string) (*fatbin.Binary, uint32) {
	t.Helper()
	tc, ok := testprogs.All()[name]
	if !ok {
		t.Fatalf("unknown test program %q", name)
	}
	bin, err := compiler.Compile(tc.Mod)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return bin, tc.Exit
}

func runVM(t *testing.T, bin *fatbin.Binary, k isa.Kind, cfg dbt.Config) *dbt.VM {
	t.Helper()
	vm, err := dbt.New(bin, k, cfg)
	if err != nil {
		t.Fatalf("vm boot: %v", err)
	}
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatalf("vm run: %v", err)
	}
	if !vm.P.Exited {
		t.Fatal("program did not exit under the PSR VM")
	}
	return vm
}

// TestPSRPreservesBehavior is the central legitimate-execution guarantee
// (paper §5.3): every program must behave identically under PSR
// translation — same exit code, same syscall trace — on both ISAs, across
// several randomization seeds and optimization levels.
func TestPSRPreservesBehavior(t *testing.T) {
	for name, tc := range testprogs.All() {
		bin, err := compiler.Compile(tc.Mod)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		for _, k := range isa.Kinds {
			native, err := proc.New(bin, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := native.RunToExit(maxSteps); err != nil {
				t.Fatalf("%s native %s: %v", name, k, err)
			}
			for seed := int64(0); seed < 3; seed++ {
				for _, opt := range []dbt.OptLevel{dbt.O0, dbt.O3} {
					cfg := dbt.DefaultConfig()
					cfg.Seed = seed
					cfg.Opt = opt
					cfg.MigrateProb = 0
					t.Run(name+"/"+k.String(), func(t *testing.T) {
						vm := runVM(t, bin, k, cfg)
						if vm.P.ExitCode != native.ExitCode {
							t.Errorf("seed %d opt %d: exit %d, native %d",
								seed, opt, vm.P.ExitCode, native.ExitCode)
						}
						if !reflect.DeepEqual(vm.P.Trace, native.Trace) {
							t.Errorf("seed %d opt %d: trace %v, native %v",
								seed, opt, vm.P.Trace, native.Trace)
						}
					})
				}
			}
		}
	}
}

func TestTranslationIsLazy(t *testing.T) {
	// Only executed paths may be translated: run a program with an
	// untaken branch arm and verify the code cache holds fewer units than
	// the binary has blocks.
	bin, _ := compile(t, "fib")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.DualTranslate = false
	vm := runVM(t, bin, isa.X86, cfg)
	total := 0
	for _, f := range bin.Funcs {
		total += len(f.Blocks)
	}
	if n := vm.Cache(isa.X86).NumUnits(); n == 0 {
		t.Fatal("nothing translated")
	}
	if n := vm.Cache(isa.ARM).NumUnits(); n != 0 {
		t.Fatalf("ARM cache has %d units despite DualTranslate=false and no migration", n)
	}
}

func TestDualTranslationWarmsOtherCache(t *testing.T) {
	bin, _ := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.DualTranslate = true
	vm := runVM(t, bin, isa.X86, cfg)
	if n := vm.Cache(isa.ARM).NumUnits(); n == 0 {
		t.Fatal("dual translation produced no ARM units")
	}
}

func TestReturnAddressesOnStackAreSourceAddresses(t *testing.T) {
	// Paper §3.4: all return addresses stored on the stack point to
	// original source code, never into the code cache. Verify via the
	// RAT: every lookup during a run must be for a text address.
	bin, _ := compile(t, "fib")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm := runVM(t, bin, isa.X86, cfg)
	if vm.RATOf(isa.X86).Lookups == 0 {
		t.Fatal("no RAT activity in a recursive program")
	}
	if vm.RATOf(isa.X86).Misses > 0 {
		t.Fatalf("unexpected RAT misses in steady execution: %d", vm.RATOf(isa.X86).Misses)
	}
}

func TestCodeCacheMissesAreZeroInSteadyState(t *testing.T) {
	// Paper Figure 13: with an adequately sized code cache, no indirect
	// control transfer misses — so no security migrations.
	bin, _ := compile(t, "table") // exercises indirect calls
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm := runVM(t, bin, isa.X86, cfg)
	if vm.Stats.IndirectDispatch == 0 {
		t.Fatal("test program should perform indirect calls")
	}
	// First-use of each function pointer is a compulsory miss; re-use
	// must hit. table calls 3 distinct pointers once each, so misses
	// <= distinct targets.
	if vm.Stats.CodeCacheMisses > 3 {
		t.Fatalf("too many indirect misses: %d", vm.Stats.CodeCacheMisses)
	}
}

func TestTinyCodeCacheFlushesAndStillWorks(t *testing.T) {
	mod := testprogs.CallChain(12) // many functions: lots of units
	bin, err := compiler.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.CodeCacheSize = 2048 // absurdly small: forces flushes
	cfg.MigrateProb = 0
	cfg.DualTranslate = false
	vm := runVM(t, bin, isa.X86, cfg)
	if vm.Stats.Flushes == 0 {
		t.Fatal("expected code cache flushes with a 2 KiB cache")
	}
	want := uint32(7 + 11*12/2)
	if vm.P.ExitCode != want {
		t.Fatalf("program result lost across flushes: %d != %d", vm.P.ExitCode, want)
	}
}

func TestTinyRATStillCorrect(t *testing.T) {
	// The RAT is keyed by source return address: recursion reuses call
	// sites, so capacity pressure needs many *distinct* sites.
	mod := testprogs.CallChain(16)
	bin, err := compiler.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.RATSize = 4
	cfg.MigrateProb = 0
	vm := runVM(t, bin, isa.X86, cfg)
	want := uint32(7 + 15*16/2)
	if vm.P.ExitCode != want {
		t.Fatalf("tiny RAT broke execution: %d vs %d", vm.P.ExitCode, want)
	}
	if vm.RATOf(isa.X86).Misses == 0 {
		t.Fatal("expected RAT misses with 4 entries and 17 distinct call sites")
	}
	// RAT misses are security events: they retranslate through the
	// legitimate-recovery path.
	if vm.Stats.ReturnMisses == 0 {
		t.Fatal("return misses not recorded")
	}
}

func TestRespawnReRandomizes(t *testing.T) {
	bin, _ := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fn := bin.Func("main")
	m1 := vm.MapOf(fn)[isa.X86]
	if err := vm.Respawn(isa.X86, 999); err != nil {
		t.Fatal(err)
	}
	m2 := vm.MapOf(fn)[isa.X86]
	if reflect.DeepEqual(m1.OffTo, m2.OffTo) {
		t.Fatal("respawn did not re-randomize the relocation map")
	}
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if vm.P.ExitCode != 4950 {
		t.Fatalf("respawned run wrong result: %d", vm.P.ExitCode)
	}
}

func TestIndirectJumpIntoCodeCacheIsKilled(t *testing.T) {
	// Software fault isolation (§5.1): a function pointer pointing into
	// the code cache must terminate the process. A global holds a
	// poisoned pointer aimed into the x86 code cache.
	mb := prog.NewModule("poison")
	poison := fatbin.X86CacheBase + 16
	init := []byte{byte(poison), byte(poison >> 8), byte(poison >> 16), byte(poison >> 24)}
	g := mb.Global("fp", 4, init)
	fb := mb.Func("main", 0)
	base := fb.GlobalAddr(g, 0)
	fp := fb.Load(base, 0)
	fb.CallInd(fp, false)
	fb.Ret(prog.NoVReg)
	bin, err := compiler.Compile(mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = vm.Run(maxSteps)
	if !errors.Is(err, dbt.ErrSecurityKill) {
		t.Fatalf("want ErrSecurityKill, got %v (exited=%v)", err, vm.P.Exited)
	}
	if vm.Stats.Kills == 0 {
		t.Fatal("kill not counted")
	}
}
