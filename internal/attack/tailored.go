package attack

import (
	"math"

	"hipstr/internal/compiler"
	"hipstr/internal/fatbin"
	"hipstr/internal/gadget"
	"hipstr/internal/isa"
	"hipstr/internal/prog"
)

// Technique names the randomization schemes compared in Figures 7, 8,
// and 14.
type Technique int

const (
	TechIsomeron Technique = iota
	TechHetISA             // heterogeneous-ISA migration alone
	TechPSR
	TechPSRIsomeron
	TechHIPStR
)

func (t Technique) String() string {
	switch t {
	case TechIsomeron:
		return "Isomeron"
	case TechHetISA:
		return "Heterogeneous-ISA"
	case TechPSR:
		return "PSR"
	case TechPSRIsomeron:
		return "PSR+Isomeron"
	case TechHIPStR:
		return "HIPStR"
	}
	return "?"
}

// EntropyBits returns the Figure 7 entropy (in bits) of a gadget chain of
// length n under each technique. Diversification techniques contribute one
// bit per gadget (which variant/ISA executes it); PSR contributes
// psrBitsPerGadget bits of state-relocation entropy per gadget; the
// combined defenses multiply (add in bits).
func EntropyBits(t Technique, chainLen int, psrBitsPerGadget float64) float64 {
	div := float64(chainLen) // 2^n for a length-n chain
	switch t {
	case TechIsomeron, TechHetISA:
		return div
	case TechPSR:
		return psrBitsPerGadget * float64(chainLen)
	case TechPSRIsomeron, TechHIPStR:
		return div + psrBitsPerGadget*float64(chainLen)
	}
	return 0
}

// Entropy returns 2^EntropyBits, saturating at +Inf for large exponents.
func Entropy(t Technique, chainLen int, psrBitsPerGadget float64) float64 {
	return math.Pow(2, EntropyBits(t, chainLen, psrBitsPerGadget))
}

// TailoredResult is the Figure 8 analysis for one benchmark: how many
// gadgets remain usable by an attacker who interleaves gadgets from both
// program variants (Isomeron) or both ISAs (HIPStR), as the
// diversification probability varies.
type TailoredResult struct {
	Benchmark string
	// Viable is the full viable-gadget population (the p=0 surface for
	// non-PSR techniques).
	Viable int
	// PSRSurface is the PSR-surviving (unobfuscated) population — the p=0
	// surface for PSR-based techniques.
	PSRSurface int
	// SameISAImmune counts gadgets that behave identically in both
	// same-ISA program variants (immune to Isomeron's diversification).
	SameISAImmune int
	// CrossISAImmune counts gadgets whose address performs the same
	// attacker computation on both ISAs (immune to ISA randomization) —
	// structurally near-impossible with disjoint text mappings.
	CrossISAImmune int
	// PSRSameISAImmune counts PSR-surviving gadgets also immune to
	// same-ISA diversification.
	PSRSameISAImmune int
}

// Surviving returns the Figure 8 curve: the expected usable surface under
// technique t at diversification probability p.
func (r TailoredResult) Surviving(t Technique, p float64) float64 {
	switch t {
	case TechIsomeron:
		return float64(r.SameISAImmune) + (1-p)*float64(r.Viable-r.SameISAImmune)
	case TechHetISA:
		return float64(r.CrossISAImmune) + (1-p)*float64(r.Viable-r.CrossISAImmune)
	case TechPSR:
		return float64(r.PSRSurface)
	case TechPSRIsomeron:
		return float64(r.PSRSameISAImmune) + (1-p)*float64(r.PSRSurface-r.PSRSameISAImmune)
	case TechHIPStR:
		return float64(r.CrossISAImmune) + (1-p)*float64(r.PSRSurface)
	}
	return 0
}

// AnalyzeTailored measures the immunity populations for mod's binary. The
// Isomeron variant is a diversified compilation of the same program
// (intra-function block layout shuffled, nops inserted); a gadget is
// same-ISA immune when the corresponding function-relative address in the
// variant performs the same attacker-visible computation — Isomeron's
// diversifier maps control transfers between variants at function
// granularity, so that is exactly the code a diversified chain executes.
func AnalyzeTailored(mod *prog.Module, bin *fatbin.Binary, psrSurvivors int, seed int64) (TailoredResult, error) {
	res := TailoredResult{Benchmark: bin.Module, PSRSurface: psrSurvivors}
	variant, err := compiler.CompileDiversified(mod, seed)
	if err != nil {
		return res, err
	}
	gs := gadget.Mine(bin, isa.X86, 0)
	an := gadget.NewAnalyzer(bin)
	anVar := gadget.NewAnalyzer(variant)
	sameFrac := 0.0
	for i := range gs {
		g := &gs[i]
		e := an.NativeEffect(g)
		if !e.Viable() {
			continue
		}
		res.Viable++
		// Same-ISA immunity: Isomeron's diversifier maps control-transfer
		// targets between variants at valid instruction boundaries, so
		// the corresponding variant address is block-relative. Block
		// contents are identical between variants (only placement and
		// padding differ), so aligned gadgets survive; unintentional
		// (unaligned) gadgets land on shifted bytes and break.
		if vAddr, ok := variantAddr(bin, variant, g.Addr); ok {
			vg := *g
			vg.Addr = vAddr
			ev := anVar.NativeEffect(&vg)
			if e.SameOutcome(ev) {
				res.SameISAImmune++
			}
		}
		// Cross-ISA immunity: the address must decode on the other ISA's
		// text at all (disjoint bases make this structurally rare).
		if addrInText(variant, isa.ARM, g.Addr) || addrInText(bin, isa.ARM, g.Addr) {
			res.CrossISAImmune++
		}
	}
	if res.Viable > 0 {
		sameFrac = float64(res.SameISAImmune) / float64(res.Viable)
	}
	// PSR-surviving gadgets inherit the same-ISA immunity rate.
	res.PSRSameISAImmune = int(math.Round(sameFrac * float64(res.PSRSurface)))
	return res, nil
}

func addrInText(bin *fatbin.Binary, k isa.Kind, addr uint32) bool {
	base, end := bin.TextRange(k)
	return addr >= base && addr < end
}

// variantAddr maps an address in bin to the corresponding address in the
// diversified variant, block-relative (epilogue-relative for the shared
// epilogue region after the last block).
func variantAddr(bin, variant *fatbin.Binary, addr uint32) (uint32, bool) {
	fn, blk := bin.BlockAt(isa.X86, addr)
	if fn == nil {
		return 0, false
	}
	vfn := variant.Func(fn.Name)
	if vfn == nil {
		return 0, false
	}
	if blk != nil {
		vblk := vfn.BlockByID(blk.ID)
		if vblk == nil {
			return 0, false
		}
		v := vblk.Addr[isa.X86] + (addr - blk.Addr[isa.X86])
		if v >= vblk.End[isa.X86] {
			return 0, false
		}
		return v, true
	}
	// Epilogue region.
	if len(fn.Blocks) == 0 || len(vfn.Blocks) == 0 {
		return 0, false
	}
	epi := fn.Blocks[len(fn.Blocks)-1].End[isa.X86]
	vepi := vfn.Blocks[len(vfn.Blocks)-1].End[isa.X86]
	if addr < epi {
		return 0, false
	}
	v := vepi + (addr - epi)
	if v >= vfn.End[isa.X86] {
		return 0, false
	}
	return v, true
}
