// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablations for the design decisions DESIGN.md
// calls out. Each benchmark runs the corresponding experiment driver on
// the quick suite and reports its headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. cmd/hipstr-bench runs the full-size suite.
package hipstr_test

import (
	"context"
	"io"
	"runtime"
	"testing"

	"hipstr"
	"hipstr/internal/attack"
	"hipstr/internal/dbt"
	"hipstr/internal/fleet"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/mem"
	"hipstr/internal/migrate"
	"hipstr/internal/perf"
	"hipstr/internal/psr"
	"hipstr/internal/stats"
	"hipstr/internal/workload"
)

var ctx = context.Background()

func quickSuite() *hipstr.ExperimentSuite {
	return hipstr.NewQuickExperiments(io.Discard)
}

func BenchmarkFig3ClassicROPSurface(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig3(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var reduc []float64
		for _, r := range rows {
			if r.Viable > 0 {
				reduc = append(reduc, float64(r.Obfuscated)/float64(r.Viable))
			}
		}
		b.ReportMetric(100*stats.Mean(reduc), "%obfuscated")
	}
}

func BenchmarkFig4BruteForceSurface(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig4(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var surv []float64
		for _, r := range rows {
			surv = append(surv, float64(r.Surviving)/float64(r.Total))
		}
		b.ReportMetric(100*stats.Mean(surv), "%surviving")
	}
}

func BenchmarkTable2BruteForce(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var bits []float64
		for _, r := range rows {
			bits = append(bits, r.EntropyBits)
		}
		b.ReportMetric(stats.Mean(bits), "entropy-bits")
	}
}

func BenchmarkFig5JITROPSurface(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig5(ctx)
		if err != nil {
			b.Fatal(err)
		}
		survivors := 0
		for _, r := range rows {
			survivors += r.JIT.Survivors
		}
		b.ReportMetric(float64(survivors), "survivors")
	}
}

func BenchmarkFig6MigrationSafety(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig6(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var f []float64
		for _, r := range rows {
			f = append(f, r.X86ToARM, r.ARMToX86)
		}
		b.ReportMetric(100*stats.Mean(f), "%safe")
	}
}

func BenchmarkFig7Entropy(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		pts := s.Fig7(33)
		b.ReportMetric(pts[7].Entropy[attack.TechHIPStR], "bits@chain8")
	}
}

func BenchmarkFig8Tailored(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		curves, err := s.Fig8(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			if c.Technique == attack.TechHIPStR {
				b.ReportMetric(c.Surviving[len(c.Surviving)-1], "survivors@p1")
			}
		}
	}
}

func BenchmarkFig9OptLevels(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig9(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var o3 []float64
		for _, r := range rows {
			o3 = append(o3, r.O3)
		}
		b.ReportMetric(100*stats.Mean(o3), "%of-native@O3")
	}
}

func BenchmarkFig10StackEntropy(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig10(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var drop []float64
		for _, r := range rows {
			drop = append(drop, r.S8-r.S64)
		}
		b.ReportMetric(100*stats.Mean(drop), "%drop-S8-to-S64")
	}
}

func BenchmarkFig11RATSize(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		pts, err := s.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*pts[0].Overhead, "%overhead@RAT32")
	}
}

func BenchmarkFig12Migration(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig12(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var toARM []float64
		for _, r := range rows {
			if r.ToARMus > 0 {
				toARM = append(toARM, r.ToARMus)
			}
		}
		b.ReportMetric(stats.Mean(toARM), "us-x86-to-arm")
	}
}

func BenchmarkFig13CodeCache(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		pts, err := s.Fig13(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[len(pts)-1].SecurityEvents), "events@largest")
	}
}

func BenchmarkFig14VsIsomeron(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		curves, err := s.Fig14(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var hip, iso float64
		for _, c := range curves {
			last := c.Relative[len(c.Relative)-1]
			switch c.System {
			case "HIPStR-2MB":
				hip = last
			case "Isomeron":
				iso = last
			}
		}
		b.ReportMetric(100*(hip/iso-1), "%faster-than-isomeron@p1")
	}
}

func BenchmarkHTTPDCaseStudy(b *testing.B) {
	s := quickSuite()
	for i := 0; i < b.N; i++ {
		res, err := s.HTTPD(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.JIT.Survivors), "jitrop-survivors")
	}
}

// --- Interpreter hot loop ------------------------------------------------

// interpLoop assembles a small self-contained spin loop (ALU, stack
// store/load, call/return, compare-and-branch) and boots a bare machine on
// it. The shape mirrors what every experiment cell spends its time on:
// short basic blocks re-executed millions of times.
func interpLoop(b *testing.B, k isa.Kind) *machine.Machine {
	const (
		textBase = 0x08048000
		stackTop = 0x00800000
	)
	a := isa.NewAsm(k, textBase)
	a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(0), Src: isa.I(0)})
	a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(1), Src: isa.I(0)})
	a.Label("loop")
	a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(0), Src: isa.I(1)})
	a.StoreWord(0, isa.StackReg(k), 8, 2)
	a.LoadWord(2, isa.StackReg(k), 8, 3)
	a.Call("fn")
	a.Emit(isa.Inst{Op: isa.OpCmp, Dst: isa.R(0), Src: isa.R(1)})
	a.Jcc(isa.CondNE, "loop")
	a.Emit(isa.Inst{Op: isa.OpHlt})
	a.Label("fn")
	a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(2), Src: isa.I(3)})
	if k == isa.X86 {
		a.Emit(isa.Inst{Op: isa.OpRet})
	} else {
		a.Emit(isa.Inst{Op: isa.OpBx, Dst: isa.R(isa.LR)})
	}
	code, _, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	ram := mem.New()
	ram.Map("text", textBase, uint32(len(code))+mem.PageSize, mem.PermRX)
	ram.WriteForce(textBase, code)
	ram.Map("stack", stackTop-0x10000, 0x10000, mem.PermRW)
	m := machine.New(k, ram)
	m.PC = textBase
	m.SetSP(stackTop - 32)
	return m
}

// BenchmarkInterpreterSteps measures the raw interpreter dispatch rate:
// ns/op is ns/step (each iteration executes exactly one instruction), and
// the steps/s metric is the headline simulation speed. The "observed"
// variants attach the cycle-approximate timing model, the configuration
// every perf experiment runs under.
func BenchmarkInterpreterSteps(b *testing.B) {
	for _, k := range isa.Kinds {
		run := func(name string, observed bool) {
			b.Run(name, func(b *testing.B) {
				m := interpLoop(b, k)
				if observed {
					perf.NewModel(perf.CoreFor(k)).Attach(m)
				}
				b.ReportAllocs()
				b.ResetTimer()
				n, err := m.Run(uint64(b.N))
				if err != nil {
					b.Fatal(err)
				}
				if n != uint64(b.N) {
					b.Fatalf("ran %d steps, want %d", n, b.N)
				}
				b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "steps/s")
			})
		}
		run(k.String(), false)
		run(k.String()+"-observed", true)
	}
}

// --- DBT translation churn -----------------------------------------------

// BenchmarkDBTSteps measures the end-to-end VM dispatch rate under
// sustained translation churn: a deliberately small code cache keeps the
// DBT in a flush → retranslate → chain-patch cycle for the whole run, so
// every translation commit and patch writes into execute-permission pages.
// This is the workload where whole-cache block invalidation is the
// bottleneck — each commit used to drop every predecoded block, including
// those for untouched code-cache regions; page-granular generations evict
// only blocks overlapping the written pages. ns/op is ns/step and steps/s
// is the headline throughput.
func BenchmarkDBTSteps(b *testing.B) {
	p, _ := workload.ProfileByName("httpd")
	bin, err := workload.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []uint32{16 << 10, 32 << 10, 2 << 20} {
		name := "churn-16k"
		if size == 32<<10 {
			name = "churn-32k"
		}
		if size == 2<<20 {
			name = "steady-2m"
		}
		b.Run(name, func(b *testing.B) {
			cfg := dbt.DefaultConfig()
			cfg.CodeCacheSize = size
			cfg.MigrateProb = 0
			vm, err := dbt.New(bin, isa.X86, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var ran uint64
			for ran < uint64(b.N) {
				n, err := vm.Run(uint64(b.N) - ran)
				if err != nil {
					b.Fatal(err)
				}
				ran += n
				if vm.P.Exited {
					b.StopTimer()
					if err := vm.Start(isa.X86); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				} else if n == 0 {
					b.Fatal("vm made no progress")
				}
			}
			b.ReportMetric(float64(ran)/b.Elapsed().Seconds(), "steps/s")
			bs := vm.P.M.BlockStats()
			b.ReportMetric(float64(bs.Invalidations), "invalidations")
			b.ReportMetric(bs.HitRatio(), "blk-hit")
		})
	}
}

// --- Spawn latency -------------------------------------------------------

// spawnSteps bounds the guest work per spawn: enough to touch the
// workload's hot working set (so cold spawns pay the translator for it)
// while keeping steady-state execution from drowning out the spawn cost
// being measured.
const spawnSteps = 1_000

// BenchmarkSpawn measures admitting one more guest of an already-running
// binary. cold boots from scratch with unit sharing disabled (load the
// image, translate the working set). warm-shared still boots from scratch
// but installs translations from a pre-populated content-addressed unit
// cache. warm-fork is the full fast path: fork a booted prototype's
// snapshot (memory aliased copy-on-write) and serve translations shared.
func BenchmarkSpawn(b *testing.B) {
	p, _ := workload.ProfileByName("httpd")
	bin, err := workload.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	base := dbt.DefaultConfig()
	base.MigrateProb = 0

	spawnRun := func(b *testing.B, vm *dbt.VM) {
		b.Helper()
		if _, err := vm.Run(spawnSteps); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		cfg := base
		cfg.NoSharedUnits = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vm, err := dbt.New(bin, isa.X86, cfg)
			if err != nil {
				b.Fatal(err)
			}
			spawnRun(b, vm)
		}
	})

	b.Run("warm-shared", func(b *testing.B) {
		cfg := base
		cfg.SharedUnits = dbt.NewUnitCache(dbt.DefaultUnitCacheBytes)
		seed, err := dbt.New(bin, isa.X86, cfg)
		if err != nil {
			b.Fatal(err)
		}
		spawnRun(b, seed) // populate the unit cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vm, err := dbt.New(bin, isa.X86, cfg)
			if err != nil {
				b.Fatal(err)
			}
			spawnRun(b, vm)
		}
	})

	b.Run("warm-fork", func(b *testing.B) {
		cfg := base
		cfg.SharedUnits = dbt.NewUnitCache(dbt.DefaultUnitCacheBytes)
		seed, err := dbt.New(bin, isa.X86, cfg)
		if err != nil {
			b.Fatal(err)
		}
		spawnRun(b, seed) // populate the unit cache
		proto, err := dbt.New(bin, isa.X86, cfg)
		if err != nil {
			b.Fatal(err)
		}
		snap := proto.Snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			vm, err := snap.Fork(dbt.ForkConfig{})
			if err != nil {
				b.Fatal(err)
			}
			spawnRun(b, vm)
		}
	})
}

// BenchmarkRespawn measures the kill+respawn breach response in isolation
// (no guest steps): cold-boot pays bin.Load — O(image) — per respawn,
// from-snapshot forks the prototype's pages copy-on-write and allocates
// only what the fresh boot state dirties.
func BenchmarkRespawn(b *testing.B) {
	p, _ := workload.ProfileByName("httpd")
	bin, err := workload.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.SharedUnits = dbt.NewUnitCache(dbt.DefaultUnitCacheBytes)

	b.Run("cold-boot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dbt.New(bin, isa.X86, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("from-snapshot", func(b *testing.B) {
		proto, err := dbt.New(bin, isa.X86, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := proto.Run(spawnSteps); err != nil { // dirty some state
			b.Fatal(err)
		}
		snap := proto.Snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := snap.Respawn(isa.X86, 4242, dbt.ForkConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationRegCacheSize sweeps the global register cache size the
// paper fixes at 3 (§5.4).
func BenchmarkAblationRegCacheSize(b *testing.B) {
	p, _ := workload.ProfileByName("libquantum")
	bin, err := workload.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	native, err := perf.MeasureNative(bin, isa.X86, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, size := range []int{0, 3} {
			cfg := dbt.DefaultConfig()
			cfg.MigrateProb = 0
			if size == 0 {
				cfg.Opt = dbt.O1
			}
			m, _, err := perf.MeasureVM(bin, isa.X86, cfg, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			if size == 0 {
				b.ReportMetric(100*perf.Relative(native, m), "%native-cache0")
			} else {
				b.ReportMetric(100*perf.Relative(native, m), "%native-cache3")
			}
		}
	}
}

// BenchmarkAblationDualTranslation measures the §3.5 optimization of
// translating each compulsory miss for both ISAs.
func BenchmarkAblationDualTranslation(b *testing.B) {
	p, _ := workload.ProfileByName("libquantum")
	bin, err := workload.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, dual := range []bool{false, true} {
			cfg := dbt.DefaultConfig()
			cfg.DualTranslate = dual
			cfg.MigrateProb = 0
			vm, err := dbt.New(bin, isa.X86, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := vm.Run(300_000); err != nil {
				b.Fatal(err)
			}
			warm := float64(vm.Cache(isa.ARM).NumUnits())
			if dual {
				b.ReportMetric(warm, "arm-units-dual")
			} else {
				b.ReportMetric(warm, "arm-units-single")
			}
		}
	}
}

// BenchmarkAblationRegisterBias isolates the O3 register-bias entropy/
// performance trade (§5.4).
func BenchmarkAblationRegisterBias(b *testing.B) {
	p, _ := workload.ProfileByName("libquantum")
	bin, err := workload.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, bias := range []bool{false, true} {
			cfg := psr.DefaultConfig()
			cfg.RegisterBias = bias
			res := attack.SimulateBruteForce(bin, cfg, 1)
			if bias {
				b.ReportMetric(res.AttemptsBias, "attempts-bias")
			} else {
				b.ReportMetric(res.AttemptsNoBias, "attempts-nobias")
			}
		}
	}
}

// BenchmarkAblationOnDemandMigration contrasts the prior work's ~45%
// migration-safe regime with HIPStR's on-demand transformation (§5.2).
func BenchmarkAblationOnDemandMigration(b *testing.B) {
	p, _ := workload.ProfileByName("mcf")
	bin, err := workload.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		on := migrate.AnalyzeSafety(bin, migrate.DefaultPolicy())
		off := migrate.AnalyzeSafety(bin, migrate.Policy{OnDemand: false})
		b.ReportMetric(100*on.Fraction(isa.X86), "%safe-ondemand")
		b.ReportMetric(100*off.Fraction(isa.X86), "%safe-legacy")
	}
}

// BenchmarkFleet measures the multi-tenant host end to end: each
// iteration admits a batch of tenants into a fresh fleet, drains it, and
// reports requests/sec (tenants retired per second of wall time).
//
// single-worker vs workers-max carries the throughput-scaling story; the
// "max" side always names GOMAXPROCS workers so the recorded figure is
// stable across machines (on a single-core host the two coincide and
// the scaling ratio is trivially 1.0 — the multi-core claim must be
// read on a multi-core runner, as with the parallel engine benches).
//
// admit-warm vs admit-cold carries the PR 7 warm-spawn story at fleet
// scale: tiny step quotas make admission cost dominate, so warm forking
// from the prototype snapshot (CoW memory + shared unit cache) beats
// cold per-tenant boots by the snapshot/fork margins.
func BenchmarkFleet(b *testing.B) {
	drain := func(b *testing.B, cfg fleet.Config, wl string, guests int) {
		b.Helper()
		b.ReportAllocs()
		var retired, steps uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer() // compile + prototype boot are not admission
			h := fleet.NewHost(cfg)
			if err := h.AddWorkload(wl); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			h.Start(ctx)
			for g := 0; g < guests; g++ {
				if _, err := h.Admit(wl); err != nil {
					b.Fatal(err)
				}
			}
			h.Close()
			if err := h.Wait(); err != nil {
				b.Fatal(err)
			}
			agg := h.Aggregates()
			retired += agg.Completed + agg.Killed
			steps += agg.Steps
		}
		sec := b.Elapsed().Seconds()
		b.ReportMetric(float64(retired)/sec, "req/s")
		b.ReportMetric(float64(steps)/sec, "steps/s")
	}

	execCfg := func(workers int) fleet.Config {
		cfg := fleet.DefaultConfig()
		cfg.Workers = workers
		cfg.Policy.StepQuota = 50_000
		cfg.Policy.SliceSteps = 10_000
		cfg.Policy.WarmupSteps = 20_000
		return cfg
	}
	b.Run("single-worker", func(b *testing.B) {
		drain(b, execCfg(1), "libquantum", 32)
	})
	b.Run("workers-max", func(b *testing.B) {
		drain(b, execCfg(runtime.GOMAXPROCS(0)), "libquantum", 32)
	})

	admitCfg := func(cold bool) fleet.Config {
		cfg := fleet.DefaultConfig()
		cfg.ColdAdmission = cold
		cfg.Policy.StepQuota = 1_000
		cfg.Policy.SliceSteps = 1_000
		cfg.Policy.WarmupSteps = 50_000
		return cfg
	}
	b.Run("admit-warm", func(b *testing.B) {
		drain(b, admitCfg(false), "httpd", 64)
	})
	b.Run("admit-cold", func(b *testing.B) {
		drain(b, admitCfg(true), "httpd", 64)
	})
}
