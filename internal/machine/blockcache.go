package machine

import (
	"fmt"

	"hipstr/internal/isa"
	"hipstr/internal/mem"
)

// BlockCap is the maximum number of instructions predecoded into one basic
// block. Blocks normally end at a control transfer; straight-line runs
// longer than this are split, which only costs an extra cache lookup at the
// seam.
const BlockCap = 64

// maxCachedBlocks bounds each per-ISA block map. Real working sets are a
// few hundred blocks; the cap only matters for adversarial workloads (a
// JIT-ROP sweep decoding at every byte offset) where it keeps the cache
// from outgrowing the program it simulates.
const maxCachedBlocks = 1 << 14

// Block is a predecoded straight-line run of instructions. Insts[0].Addr is
// the block's start PC; execution falls off the end when the terminator is
// a not-taken branch or the block was split at BlockCap.
type Block struct {
	Insts []isa.Inst

	// Fused is the superinstruction lowering of Insts (see isa.FuseBlock):
	// the batched dispatch path executes these entries, falling back to
	// Insts for hooks, fault reporting, and timing commits.
	Fused []isa.FusedInst

	// [lo, hi) is the byte span the block decoded from (at most BlockCap ×
	// MaxInstLen ≤ PageSize bytes, so at most two pages). The cache's
	// per-page index uses the page span to find candidate blocks and the
	// byte span to evict exactly the ones a write overlapped.
	lo, hi uint32

	// next chains this block to the successor most recently dispatched
	// after it, letting steady-state loops bypass the block-map lookup.
	// A link is trusted only when nextPC and nextISA match the machine
	// and linkEpoch equals the cache's current eviction epoch — any
	// eviction bumps the epoch, which invalidates every link at once
	// without walking blocks.
	next      *Block
	nextPC    uint32
	nextISA   isa.Kind
	linkEpoch uint64
}

func (b *Block) pageLo() uint32 { return b.lo / mem.PageSize }
func (b *Block) pageHi() uint32 { return (b.hi - 1) / mem.PageSize }

// overlaps reports whether the block's byte span intersects [addr, addr+size).
func (b *Block) overlaps(addr, size uint32) bool {
	return uint64(b.hi) > uint64(addr) && uint64(b.lo) < uint64(addr)+uint64(size)
}

// BlockCacheStats is a snapshot of the interpreter block cache counters.
type BlockCacheStats struct {
	Hits   uint64 // block dispatches served from cache
	Misses uint64 // block refills (fetch + decode)
	// Invalidations is the legacy invalidation counter: every event that
	// evicted at least one block. It equals PartialInvalidations +
	// FullInvalidations, so dashboards and metricsdiff snapshots recorded
	// before the partial/full split stay comparable.
	Invalidations        uint64
	PartialInvalidations uint64 // page-ranged evictions (some blocks survived)
	FullInvalidations    uint64 // whole-cache drops (InvalidateCode fallback)
	BlocksEvicted        uint64 // blocks dropped across all invalidations
	Blocks               int    // blocks currently cached (both ISAs)
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any dispatch.
func (s BlockCacheStats) HitRatio() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// blockRef names one cached block from a page's index entry.
type blockRef struct {
	pc uint32
	k  isa.Kind
}

// pageIndex lists the cached blocks overlapping one page, together with
// the page generation they observed at decode time.
type pageIndex struct {
	gen  uint64
	refs []blockRef
}

// blockCache memoizes decoded basic blocks per ISA, keyed by start PC, and
// guards them with the memory's code generations. The dispatch fast path
// is one integer compare against the global generation; when that moves,
// the cache reconciles at page granularity: it walks its per-page index
// (only pages that actually hold blocks — a working set of tens, not the
// whole address space) and evicts just the blocks overlapping pages whose
// generation advanced. A whole-address-space InvalidateCode raises the
// memory's generation floor past the cache's sync point and falls back to
// the classic full drop. This keeps the block cache hot under DBT
// translation churn: a translation commit or chain patch dirties one or
// two code-cache pages, so predecodes of untouched regions — including
// the other ISA's — survive.
//
// Blocks are keyed per ISA because PSR migration retargets m.ISA mid-run
// (always at a control transfer, hence always at a block boundary), and the
// same address range decodes differently under each ISA's twin text.
type blockCache struct {
	blocks [2]map[uint32]*Block // indexed by isa.Kind
	byPage map[uint32]*pageIndex
	gen    uint64 // mem.CodeGen value the cache is synced to
	win    []byte // reusable fetch window for refills
	// free recycles evicted blocks' instruction storage into refills
	// (freeFused does the same for their fused lowerings). Hooks receive
	// *isa.Inst only for the duration of a call and must not retain them
	// (see Run), so storage of a dropped block cannot be observed again.
	// Under DBT churn this keeps steady-state refills from hitting the
	// allocator at all.
	free      [][]isa.Inst
	freeFused [][]isa.FusedInst

	hits, misses              uint64
	partialInvals, fullInvals uint64
	evicted                   uint64

	// epoch counts eviction events; block successor links record the
	// epoch they were made in and die when it moves (see Block.next).
	epoch uint64

	// Fusion/batching counters (see FusionStats).
	pairsFused    uint64
	batchedBlocks uint64
	exactBlocks   uint64
	commits       uint64
}

// maxFreeInsts bounds the recycled-storage pool.
const maxFreeInsts = 512

// recycle returns an evicted block's instruction storage to the pool.
func (bc *blockCache) recycle(b *Block) {
	if b.Insts != nil && len(bc.free) < maxFreeInsts {
		bc.free = append(bc.free, b.Insts[:0])
		b.Insts = nil
	}
	if b.Fused != nil && len(bc.freeFused) < maxFreeInsts {
		bc.freeFused = append(bc.freeFused, b.Fused[:0])
		b.Fused = nil
	}
}

// FusionStats is a snapshot of the superinstruction fusion and batched
// dispatch counters.
type FusionStats struct {
	PairsFused    uint64 // instruction pairs collapsed at predecode time
	BatchedBlocks uint64 // block dispatches through the fused fast path
	ExactBlocks   uint64 // block dispatches in exact per-instruction mode
	Commits       uint64 // batched timing-model commits (CommitBlock calls)
}

// FusionStats returns a snapshot of the machine's fusion counters.
func (m *Machine) FusionStats() FusionStats {
	bc := &m.blocks
	return FusionStats{
		PairsFused:    bc.pairsFused,
		BatchedBlocks: bc.batchedBlocks,
		ExactBlocks:   bc.exactBlocks,
		Commits:       bc.commits,
	}
}

// BlockStats returns a snapshot of the machine's block-cache counters.
func (m *Machine) BlockStats() BlockCacheStats {
	bc := &m.blocks
	return BlockCacheStats{
		Hits:                 bc.hits,
		Misses:               bc.misses,
		Invalidations:        bc.partialInvals + bc.fullInvals,
		PartialInvalidations: bc.partialInvals,
		FullInvalidations:    bc.fullInvals,
		BlocksEvicted:        bc.evicted,
		Blocks:               len(bc.blocks[isa.X86]) + len(bc.blocks[isa.ARM]),
	}
}

// reconcile adopts generation g, evicting whatever the move invalidated.
// Three tiers, cheapest-exact first:
//
//  1. Ranged: when the memory's write log still holds every generation in
//     (bc.gen, g], evict only blocks whose byte span a logged write
//     overlapped. A DBT translation commit appends fresh bytes past every
//     decoded block, so this tier usually evicts nothing at all.
//  2. Page walk: when the log rotated past us, compare each indexed
//     page's generation and evict whole pages that moved.
//  3. Full drop: a whole-address-space InvalidateCode raised the
//     generation floor past our sync point; drop everything.
//
// An empty cache adopting its first generation is not counted — only
// actual drops of decoded blocks are invalidations.
func (bc *blockCache) reconcile(mm *mem.Memory, g uint64) {
	if len(bc.byPage) == 0 {
		bc.gen = g
		return
	}
	if mm.CodeGenFloor() > bc.gen {
		bc.dropAll()
		bc.fullInvals++
	} else {
		evicted, ok := bc.reconcileRanged(mm, g)
		if !ok {
			evicted += bc.reconcilePages(mm)
		}
		if evicted > 0 {
			bc.partialInvals++
		}
	}
	bc.gen = g
}

// reconcileRanged replays the memory's write log from bc.gen forward,
// evicting blocks byte-overlapped by each logged mutation. It reports
// false (and leaves page generations untouched) when any generation in
// the window has rotated out of the log, in which case the caller must
// fall back to the page walk.
func (bc *blockCache) reconcileRanged(mm *mem.Memory, g uint64) (int, bool) {
	if g-bc.gen > mem.CodeWriteLogSize {
		return 0, false
	}
	n := 0
	for gg := bc.gen + 1; gg <= g; gg++ {
		w, ok := mm.CodeWriteAt(gg)
		if !ok {
			return n, false
		}
		n += bc.evictRange(w.Addr, w.Size)
	}
	// All mutations replayed: refresh the observed generation of every
	// touched page that still holds blocks, restoring the invariant that
	// indexed pages are current once the cache is synced.
	for gg := bc.gen + 1; gg <= g; gg++ {
		w, _ := mm.CodeWriteAt(gg)
		first := w.Addr / mem.PageSize
		last := (w.Addr + w.Size - 1) / mem.PageSize
		for pn := first; pn <= last; pn++ {
			if pi, ok := bc.byPage[pn]; ok {
				pi.gen = mm.PageGen(pn)
			}
		}
	}
	return n, true
}

// reconcilePages is the coarse fallback: evict every indexed page whose
// generation moved since the blocks on it were decoded.
func (bc *blockCache) reconcilePages(mm *mem.Memory) int {
	evicted := 0
	for pn, pi := range bc.byPage {
		if mm.PageGen(pn) != pi.gen {
			evicted += bc.evictPage(pn)
		}
	}
	return evicted
}

// evictRange drops every block whose byte span intersects [addr,
// addr+size) and returns how many were dropped.
func (bc *blockCache) evictRange(addr, size uint32) int {
	if size == 0 {
		return 0
	}
	first := addr / mem.PageSize
	last := (addr + size - 1) / mem.PageSize
	n := 0
	for pn := first; pn <= last; pn++ {
		pi, ok := bc.byPage[pn]
		if !ok {
			continue
		}
		for i := 0; i < len(pi.refs); {
			ref := pi.refs[i]
			b := bc.blocks[ref.k][ref.pc]
			if b == nil || !b.overlaps(addr, size) {
				i++
				continue
			}
			delete(bc.blocks[ref.k], ref.pc)
			bc.recycle(b)
			n++
			// Unlink from every page the block spans; on this page, swap
			// with the last ref and revisit index i.
			for q := b.pageLo(); q <= b.pageHi(); q++ {
				if q == pn {
					pi.refs[i] = pi.refs[len(pi.refs)-1]
					pi.refs = pi.refs[:len(pi.refs)-1]
				} else {
					bc.dropRef(q, ref)
				}
			}
		}
		if len(pi.refs) == 0 {
			delete(bc.byPage, pn)
		}
	}
	if n > 0 {
		bc.epoch++
	}
	bc.evicted += uint64(n)
	return n
}

// dropAll discards every cached block and the page index, recycling the
// blocks' instruction storage.
func (bc *blockCache) dropAll() {
	bc.epoch++
	for k := range bc.blocks {
		for _, b := range bc.blocks[k] {
			bc.recycle(b)
		}
	}
	bc.evicted += uint64(len(bc.blocks[0]) + len(bc.blocks[1]))
	bc.blocks[0] = nil
	bc.blocks[1] = nil
	bc.byPage = nil
}

// evictPage drops every block overlapping page pn and returns how many
// were dropped. Blocks spanning a second page are unlinked from that
// page's index entry too, so ref lists never accumulate stale entries.
func (bc *blockCache) evictPage(pn uint32) int {
	pi, ok := bc.byPage[pn]
	if !ok {
		return 0
	}
	delete(bc.byPage, pn)
	n := 0
	for _, ref := range pi.refs {
		b, ok := bc.blocks[ref.k][ref.pc]
		if !ok {
			continue
		}
		delete(bc.blocks[ref.k], ref.pc)
		for q := b.pageLo(); q <= b.pageHi(); q++ {
			if q != pn {
				bc.dropRef(q, ref)
			}
		}
		bc.recycle(b)
		n++
	}
	if n > 0 {
		bc.epoch++
	}
	bc.evicted += uint64(n)
	return n
}

// dropRef unlinks one block reference from page pn's index entry, removing
// the entry when it empties.
func (bc *blockCache) dropRef(pn uint32, ref blockRef) {
	pi, ok := bc.byPage[pn]
	if !ok {
		return
	}
	for i, r := range pi.refs {
		if r == ref {
			pi.refs[i] = pi.refs[len(pi.refs)-1]
			pi.refs = pi.refs[:len(pi.refs)-1]
			break
		}
	}
	if len(pi.refs) == 0 {
		delete(bc.byPage, pn)
	}
}

// alive reports whether blk is still the cached block for (k, pc) after a
// reconcile — the dispatch loop uses it to keep executing a block whose
// pages survived a generation move instead of breaking out to re-decode.
func (bc *blockCache) alive(k isa.Kind, pc uint32, blk *Block) bool {
	return bc.blocks[k][pc] == blk
}

// lookup returns the cached block starting at pc under ISA k, or nil.
func (bc *blockCache) lookup(k isa.Kind, pc uint32) *Block {
	if blk := bc.blocks[k]; blk != nil {
		if b, ok := blk[pc]; ok {
			bc.hits++
			return b
		}
	}
	return nil
}

// refill fetches and decodes a new block at m.PC and caches it, indexing
// it under every page it spans. The caller (Run) guarantees the cache is
// synced to the current generation, so the page generations recorded here
// are coherent with bc.gen. Fetch and decode failures are wrapped exactly
// as the per-step slow path wraps them, so callers see identical errors
// whether or not the cache is in play.
func (bc *blockCache) refill(m *Machine) (*Block, error) {
	if bc.win == nil {
		bc.win = make([]byte, BlockCap*MaxInstLen)
	}
	n, err := m.Mem.FetchInto(m.PC, bc.win)
	if err != nil {
		return nil, fmt.Errorf("machine: fetch at %#x: %w", m.PC, err)
	}
	var dst []isa.Inst
	if l := len(bc.free); l > 0 {
		dst = bc.free[l-1]
		bc.free = bc.free[:l-1]
	}
	insts, err := isa.DecodeBlock(m.ISA, bc.win[:n], m.PC, dst, BlockCap)
	if err != nil {
		return nil, fmt.Errorf("machine: decode at %#x: %w", m.PC, err)
	}
	bc.misses++
	var fdst []isa.FusedInst
	if l := len(bc.freeFused); l > 0 {
		fdst = bc.freeFused[l-1]
		bc.freeFused = bc.freeFused[:l-1]
	}
	fused, pairs := isa.FuseBlock(insts, fdst)
	bc.pairsFused += uint64(pairs)
	last := &insts[len(insts)-1]
	b := &Block{
		Insts: insts,
		Fused: fused,
		lo:    m.PC,
		hi:    last.Addr + uint32(last.Size),
	}
	tab := bc.blocks[m.ISA]
	if tab == nil || len(tab) >= maxCachedBlocks {
		if len(tab) >= maxCachedBlocks {
			// Cap overflow (adversarial decode sweeps): restart both maps
			// and the index together so no stale references survive.
			bc.dropAll()
		}
		tab = make(map[uint32]*Block)
		bc.blocks[m.ISA] = tab
	}
	tab[m.PC] = b
	if bc.byPage == nil {
		bc.byPage = make(map[uint32]*pageIndex)
	}
	ref := blockRef{pc: m.PC, k: m.ISA}
	for pn := b.pageLo(); pn <= b.pageHi(); pn++ {
		pi := bc.byPage[pn]
		if pi == nil {
			pi = &pageIndex{gen: m.Mem.PageGen(pn)}
			bc.byPage[pn] = pi
		}
		pi.refs = append(pi.refs, ref)
	}
	return b, nil
}
