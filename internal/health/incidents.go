package health

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hipstr/internal/obsrv"
	"hipstr/internal/telemetry"
)

// Defaults bounding the incident store and per-bundle forensic captures.
const (
	DefaultMaxIncidents = 64
	DefaultTailEvents   = 128
	DefaultTailSpans    = 64
	DefaultOffenderK    = 5
)

// Offender is one tenant implicated in an incident, ranked by the rule's
// offender key at capture time.
type Offender struct {
	ID       string             `json:"id"`
	Workload string             `json:"workload,omitempty"`
	State    string             `json:"state,omitempty"`
	Score    float64            `json:"score"`
	Fields   map[string]float64 `json:"fields,omitempty"`
}

// Incident is one rule firing with its forensic bundle: everything the
// flight recorder could capture at open time, plus resolution metadata
// once the rule clears.
type Incident struct {
	ID       int    `json:"id"`
	Rule     Rule   `json:"rule"`
	Severity string `json:"severity,omitempty"`
	// OpenedNS/ResolvedNS are absolute wall-clock nanoseconds; ResolvedNS
	// is 0 while the incident is open.
	OpenedNS   int64 `json:"opened_ns"`
	ResolvedNS int64 `json:"resolved_ns,omitempty"`
	// Value is the measure that opened the incident; Peak is the worst
	// value observed while it stayed open.
	Value float64 `json:"value"`
	Peak  float64 `json:"peak"`
	// Window is the triggering series' history window at open time.
	Window []Point `json:"window,omitempty"`
	// Events and Spans are the most recent tracer records at open time
	// (the flight-recorder tap).
	Events []telemetry.Event     `json:"events,omitempty"`
	Spans  []telemetry.SpanEvent `json:"spans,omitempty"`
	// Offenders are the top tenants by the rule's offender key.
	Offenders []Offender `json:"offenders,omitempty"`
	// ProfileTop is the profiler's top-table text, when one is attached.
	ProfileTop string `json:"profile_top,omitempty"`
	// Config is the host configuration at open time.
	Config json.RawMessage `json:"config,omitempty"`
}

// Open reports whether the incident is still open.
func (inc *Incident) Open() bool { return inc.ResolvedNS == 0 }

// Duration is open-to-resolve (or open-to-now for open incidents).
func (inc *Incident) Duration(nowNS int64) time.Duration {
	end := inc.ResolvedNS
	if end == 0 {
		end = nowNS
	}
	return time.Duration(end - inc.OpenedNS)
}

// RecorderConfig wires the flight recorder's forensic sources. Every
// field is optional: a nil source just leaves its bundle section empty.
type RecorderConfig struct {
	// MaxIncidents bounds the in-memory incident store (0 = default);
	// the oldest resolved incidents are evicted first.
	MaxIncidents int
	// TailEvents / TailSpans bound the per-bundle trace captures.
	TailEvents int
	TailSpans  int
	// OffenderK bounds the per-bundle offender list.
	OffenderK int
	// Events taps the most recent n trace events (telemetry.Tracer.Tail).
	Events func(n int) []telemetry.Event
	// Spans taps the most recent n completed spans (SpanTracer.Tail).
	Spans func(n int) []telemetry.SpanEvent
	// Tenants supplies offender candidates (the fleet host).
	Tenants obsrv.TenantSource
	// Profile supplies the profiler top-table text.
	Profile func() (string, bool)
	// HostConfig is marshaled into every bundle.
	HostConfig any
	// Dir, when set, dumps each bundle as incident-<id>-<rule>.json
	// (rewritten at resolve) plus an append-only incidents.jsonl of
	// open/resolve records.
	Dir string
	// Emit, when set, receives an EvPolicy event at open and resolve so
	// incidents surface on the live /events stream.
	Emit func(telemetry.Event)
}

// Recorder captures, stores, and serves incidents. Open/UpdatePeak/
// Resolve are called by the engine's single evaluation goroutine; the
// accessors are safe from HTTP handler goroutines.
type Recorder struct {
	cfg RecorderConfig

	mu        sync.RWMutex
	nextID    int
	incidents []*Incident
	opened    uint64
	resolved  uint64
	dumpErr   error
}

// NewRecorder returns a recorder with cfg's sources wired.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.MaxIncidents <= 0 {
		cfg.MaxIncidents = DefaultMaxIncidents
	}
	if cfg.TailEvents <= 0 {
		cfg.TailEvents = DefaultTailEvents
	}
	if cfg.TailSpans <= 0 {
		cfg.TailSpans = DefaultTailSpans
	}
	if cfg.OffenderK <= 0 {
		cfg.OffenderK = DefaultOffenderK
	}
	return &Recorder{cfg: cfg}
}

// Open captures a forensic bundle for rule firing with measure value and
// stores the new incident.
func (r *Recorder) Open(rule Rule, value float64, h *History, nowNS int64) *Incident {
	inc := &Incident{
		Rule:     rule,
		Severity: rule.Severity,
		OpenedNS: nowNS,
		Value:    value,
		Peak:     value,
	}
	// The triggering window: the rule's lookback, or the last 10 samples
	// for windowless threshold rules.
	if rule.Window > 0 {
		inc.Window = h.SeriesWindow(rule.Series, nowNS-rule.Window.Nanoseconds(), nowNS)
	} else if pts := h.Series(rule.Series); len(pts) > 0 {
		if len(pts) > 10 {
			pts = pts[len(pts)-10:]
		}
		inc.Window = pts
	}
	if r.cfg.Events != nil {
		inc.Events = r.cfg.Events(r.cfg.TailEvents)
	}
	if r.cfg.Spans != nil {
		inc.Spans = r.cfg.Spans(r.cfg.TailSpans)
	}
	if r.cfg.Tenants != nil {
		inc.Offenders = topOffenders(r.cfg.Tenants, rule.OffenderKey, r.cfg.OffenderK)
	}
	if r.cfg.Profile != nil {
		if top, ok := r.cfg.Profile(); ok {
			inc.ProfileTop = top
		}
	}
	if r.cfg.HostConfig != nil {
		if raw, err := json.Marshal(r.cfg.HostConfig); err == nil {
			inc.Config = raw
		}
	}

	r.mu.Lock()
	r.nextID++
	inc.ID = r.nextID
	r.incidents = append(r.incidents, inc)
	r.opened++
	r.evictLocked()
	r.mu.Unlock()

	r.dump(inc)
	if r.cfg.Emit != nil {
		r.cfg.Emit(telemetry.Event{
			Type:   telemetry.EvPolicy,
			Cost:   value,
			Detail: fmt.Sprintf("incident-open #%d %s: %s", inc.ID, rule.Name, rule.Condition()),
		})
	}
	return inc
}

// UpdatePeak tightens the worst-observed measure of an open incident.
func (r *Recorder) UpdatePeak(inc *Incident, v float64) {
	r.mu.Lock()
	if inc.Rule.op() == OpBelow {
		if v < inc.Peak {
			inc.Peak = v
		}
	} else if v > inc.Peak {
		inc.Peak = v
	}
	r.mu.Unlock()
}

// Resolve closes the incident and rewrites its artifact.
func (r *Recorder) Resolve(inc *Incident, nowNS int64) {
	r.mu.Lock()
	inc.ResolvedNS = nowNS
	r.resolved++
	r.mu.Unlock()
	r.dump(inc)
	if r.cfg.Emit != nil {
		r.cfg.Emit(telemetry.Event{
			Type: telemetry.EvPolicy,
			Detail: fmt.Sprintf("incident-resolve #%d %s after %v",
				inc.ID, inc.Rule.Name, inc.Duration(nowNS).Round(time.Millisecond)),
		})
	}
}

// evictLocked enforces the store bound, dropping oldest resolved
// incidents first, then oldest open ones. Caller holds mu.
func (r *Recorder) evictLocked() {
	for len(r.incidents) > r.cfg.MaxIncidents {
		at := -1
		for i, inc := range r.incidents {
			if !inc.Open() {
				at = i
				break
			}
		}
		if at < 0 {
			at = 0
		}
		r.incidents = append(r.incidents[:at], r.incidents[at+1:]...)
	}
}

// Counts returns (opened, resolved, currently stored).
func (r *Recorder) Counts() (opened, resolved uint64, stored int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.opened, r.resolved, len(r.incidents)
}

// Incidents returns copies of the stored incidents, oldest first. Copies,
// because open incidents keep mutating (Peak, ResolvedNS) under r.mu.
func (r *Recorder) Incidents() []Incident {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Incident, 0, len(r.incidents))
	for _, inc := range r.incidents {
		out = append(out, *inc)
	}
	return out
}

// Incident returns a copy of one incident by ID.
func (r *Recorder) Incident(id int) (Incident, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, inc := range r.incidents {
		if inc.ID == id {
			return *inc, true
		}
	}
	return Incident{}, false
}

// DumpErr returns the first artifact-write error, if any.
func (r *Recorder) DumpErr() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dumpErr
}

// dump writes the incident bundle artifact(s) under cfg.Dir: a pretty
// JSON file per incident (rewritten at resolve so the final artifact
// carries the resolution), and one line appended to incidents.jsonl.
func (r *Recorder) dump(inc *Incident) {
	if r.cfg.Dir == "" {
		return
	}
	r.mu.RLock()
	cp := *inc
	r.mu.RUnlock()
	err := func() error {
		if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
			return err
		}
		buf, err := json.MarshalIndent(cp, "", "  ")
		if err != nil {
			return err
		}
		name := fmt.Sprintf("incident-%03d-%s.json", cp.ID, cp.Rule.Name)
		if err := os.WriteFile(filepath.Join(r.cfg.Dir, name), buf, 0o644); err != nil {
			return err
		}
		f, err := os.OpenFile(filepath.Join(r.cfg.Dir, "incidents.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		line, err := json.Marshal(cp)
		if err != nil {
			return err
		}
		_, err = f.Write(append(line, '\n'))
		return err
	}()
	if err != nil {
		r.mu.Lock()
		if r.dumpErr == nil {
			r.dumpErr = err
		}
		r.mu.Unlock()
	}
}

// topOffenders ranks tenants by the named field (descending, ties broken
// by steps then ID) and returns the top k with a nonzero score — the
// tenants actually implicated, not an arbitrary prefix of the fleet.
func topOffenders(src obsrv.TenantSource, key string, k int) []Offender {
	list := src.TenantList()
	cands := make([]Offender, 0, len(list))
	for _, ti := range list {
		score := ti.Fields[key]
		if score <= 0 {
			continue
		}
		cands = append(cands, Offender{
			ID:       ti.ID,
			Workload: ti.Workload,
			State:    ti.State,
			Score:    score,
			Fields:   ti.Fields,
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		if si, sj := cands[i].Fields["steps"], cands[j].Fields["steps"]; si != sj {
			return si > sj
		}
		return cands[i].ID < cands[j].ID
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
