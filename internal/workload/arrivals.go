package workload

import (
	"math"
	"time"
)

// Arrivals is a seeded open-loop traffic generator: a Poisson process
// whose inter-arrival gaps are exponentially distributed around a target
// rate. The fleet host drives admission from it — "open-loop" meaning
// arrivals do not wait for the system (a saturated host falls behind the
// schedule instead of slowing the schedule down), which is the traffic
// model a service facing independent users must survive.
//
// The generator is fully deterministic for a given seed: it draws from a
// private splitmix64 stream and uses only correctly-rounded float64
// arithmetic, so the same seed yields the identical arrival sequence on
// every platform and Go version. Tests pin the sequence.
type Arrivals struct {
	state uint64
	rate  float64
}

// NewArrivals returns a generator producing ratePerSec arrivals per
// second on average. A rate <= 0 degenerates to back-to-back arrivals
// (Next always 0): the closed-loop/saturation special case.
func NewArrivals(seed int64, ratePerSec float64) *Arrivals {
	return &Arrivals{state: uint64(seed), rate: ratePerSec}
}

// next64 advances the private splitmix64 stream.
func (a *Arrivals) next64() uint64 {
	a.state += 0x9E3779B97F4A7C15
	z := a.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next returns the gap until the next arrival. Gaps are exponential with
// mean 1/rate: gap = -ln(1-U)/rate for U uniform in [0, 1), so the count
// of arrivals in any window is Poisson-distributed.
func (a *Arrivals) Next() time.Duration {
	if a.rate <= 0 {
		return 0
	}
	u := float64(a.next64()>>11) / (1 << 53) // uniform [0,1), 53 bits
	gap := -math.Log(1-u) / a.rate
	return time.Duration(gap * float64(time.Second))
}

// Schedule returns the first n cumulative arrival offsets from time zero
// (a convenience for tests and for pre-computing admission plans).
func (a *Arrivals) Schedule(n int) []time.Duration {
	out := make([]time.Duration, n)
	var t time.Duration
	for i := range out {
		t += a.Next()
		out[i] = t
	}
	return out
}
