// Command tracestat post-processes a -trace-out JSONL event stream (from
// hipstr-run or hipstr-bench) into per-phase and per-event-type breakdowns.
//
// Phase events (type "phase") partition the stream: every event up to and
// including a phase boundary is attributed to that phase (the boundary's
// Detail, e.g. "write 3"); events after the last boundary land in "(tail)",
// and a trace with no phase events is one "(run)" phase. The phase event's
// Cost is the cycles accumulated in the closing phase.
//
// With -folded, tracestat also writes flamegraph-style folded stacks, one
// "phase;event-type;isa weight" line per aggregate, ready for standard
// flamegraph tooling. The weight is the summed event cost (rounded up to 1)
// so costed events (translation latency, migration cost, phase cycles)
// dominate the graph while cost-less events still appear.
//
// Traces recorded with span tracing enabled mix span records (lines with
// "kind":"span") into the event stream. tracestat separates them out,
// prints a per-span-phase duration table (count, wall-clock, guest
// cycles, modeled cost), and with -chrome re-exports the whole trace as
// Chrome trace-event JSON loadable in ui.perfetto.dev.
//
// With -incidents, tracestat instead summarizes a health-engine
// -incident-dir of flight-recorder bundles: one row per incident with
// its rule, state, duration, peak measure, and top offender tenants.
//
// Usage:
//
//	tracestat [-folded out.folded] [-chrome out.json] [-top N] trace.jsonl
//	tracestat -incidents <dir>
//
// The trace input may be "-" for stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"

	"hipstr/internal/telemetry"
)

// agg accumulates one breakdown cell.
type agg struct {
	count uint64
	cost  float64
}

// key identifies a folded-stack leaf: phase / event type / ISA.
type key struct {
	phase string
	typ   string
	isa   string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")
	folded := flag.String("folded", "", "write flamegraph folded stacks to this file")
	chrome := flag.String("chrome", "", "re-export the trace as Chrome trace-event JSON to this file")
	top := flag.Int("top", 0, "limit per-phase rows to the N highest-cost phases (0 = all)")
	incidents := flag.String("incidents", "", "summarize a health-engine incident dir instead of a trace")
	flag.Parse()
	if *incidents != "" {
		if err := summarizeIncidents(*incidents, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-folded out.folded] [-chrome out.json] [-top N] trace.jsonl | tracestat -incidents <dir>")
		os.Exit(2)
	}

	events, spans, err := readTrace(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 && len(spans) == 0 {
		// An empty trace is a normal artifact of a run that emitted no
		// events (or was cut before any): report it clearly, emit the
		// zero-row tables so pipelines keep working, and exit 0.
		fmt.Fprintln(os.Stderr, "tracestat: no events in trace (empty input); emitting empty tables")
	}

	phases := assignPhases(events)

	byType := map[string]*agg{}
	byPhase := map[string]*agg{}
	cells := map[key]*agg{}
	var phaseOrder []string
	for i, e := range events {
		typ := string(e.Type)
		accumulate(byType, typ, e)
		ph := phases[i]
		if _, seen := byPhase[ph]; !seen {
			phaseOrder = append(phaseOrder, ph)
		}
		accumulate(byPhase, ph, e)
		k := key{phase: ph, typ: typ, isa: e.ISA}
		c := cells[k]
		if c == nil {
			c = &agg{}
			cells[k] = c
		}
		c.count++
		c.cost += e.Cost
	}

	printTypeTable(byType, len(events))
	printPhaseTable(byPhase, phaseOrder, *top)
	if len(spans) > 0 {
		printSpanTable(spans)
	}

	if *folded != "" {
		if err := writeFolded(*folded, cells); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("folded stacks written to %s (%d rows)\n", *folded, len(cells))
	}
	if *chrome != "" {
		if err := writeChrome(*chrome, spans, events); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chrome trace written to %s (%d spans, %d events; open in ui.perfetto.dev)\n",
			*chrome, len(spans), len(events))
	}
}

func accumulate(m map[string]*agg, k string, e telemetry.Event) {
	a := m[k]
	if a == nil {
		a = &agg{}
		m[k] = a
	}
	a.count++
	a.cost += e.Cost
}

// readTrace parses one record per line — a telemetry.SpanEvent when the
// line carries the "kind":"span" discriminator, a telemetry.Event
// otherwise — skipping blank lines. A line that fails to parse is held
// back rather than failing immediately: if it turns out to be the final
// line of the stream it is the usual signature of a trace cut mid-write
// (the emitting process was killed), so it is dropped with a warning; an
// unparsable line followed by more data is genuine corruption and stays
// fatal.
func readTrace(path string) ([]telemetry.Event, []telemetry.SpanEvent, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	var events []telemetry.Event
	var spans []telemetry.SpanEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	var pendingErr error
	pendingLine := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, nil, pendingErr
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			pendingErr = fmt.Errorf("%s:%d: %w", path, line, err)
			pendingLine = line
			continue
		}
		if probe.Kind == "span" {
			var s telemetry.SpanEvent
			if err := json.Unmarshal(b, &s); err != nil {
				pendingErr = fmt.Errorf("%s:%d: %w", path, line, err)
				pendingLine = line
				continue
			}
			spans = append(spans, s)
			continue
		}
		var e telemetry.Event
		if err := json.Unmarshal(b, &e); err != nil {
			pendingErr = fmt.Errorf("%s:%d: %w", path, line, err)
			pendingLine = line
			continue
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if pendingErr != nil {
		log.Printf("warning: dropping truncated trailing record at %s:%d", path, pendingLine)
	}
	return events, spans, nil
}

// assignPhases labels each event with the phase that closes at or after it.
// The tracer's ring buffer may have rotated early events out, so boundaries
// are located by position in the retained stream, not by Seq.
func assignPhases(events []telemetry.Event) []string {
	labels := make([]string, len(events))
	start := 0
	anyPhase := false
	for i, e := range events {
		if e.Type != telemetry.EvPhase {
			continue
		}
		anyPhase = true
		name := e.Detail
		if name == "" {
			name = fmt.Sprintf("phase %d", i)
		}
		for j := start; j <= i; j++ {
			labels[j] = name
		}
		start = i + 1
	}
	tail := "(tail)"
	if !anyPhase {
		tail = "(run)"
	}
	for j := start; j < len(events); j++ {
		labels[j] = tail
	}
	return labels
}

func printTypeTable(byType map[string]*agg, total int) {
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool {
		a, b := byType[types[i]], byType[types[j]]
		if a.cost != b.cost {
			return a.cost > b.cost
		}
		if a.count != b.count {
			return a.count > b.count
		}
		return types[i] < types[j]
	})
	fmt.Printf("%d events\n\n", total)
	fmt.Printf("%-18s %10s %14s %12s\n", "event type", "count", "total cost", "avg cost")
	for _, t := range types {
		a := byType[t]
		fmt.Printf("%-18s %10d %14.1f %12.3f\n", t, a.count, a.cost, a.cost/float64(a.count))
	}
}

func printPhaseTable(byPhase map[string]*agg, order []string, top int) {
	if top > 0 && top < len(order) {
		// Keep stream order but drop the cheapest phases.
		sorted := append([]string(nil), order...)
		sort.Slice(sorted, func(i, j int) bool { return byPhase[sorted[i]].cost > byPhase[sorted[j]].cost })
		keep := map[string]bool{}
		for _, p := range sorted[:top] {
			keep[p] = true
		}
		var trimmed []string
		for _, p := range order {
			if keep[p] {
				trimmed = append(trimmed, p)
			}
		}
		order = trimmed
	}
	fmt.Printf("\n%-18s %10s %14s\n", "phase", "events", "cost")
	for _, p := range order {
		a := byPhase[p]
		fmt.Printf("%-18s %10d %14.1f\n", p, a.count, a.cost)
	}
}

// printSpanTable aggregates span records by track and name (one row per
// span phase — "migrate/rat-rebuild", "dbt/translate", ...) and prints
// counts with totals in all three span domains: wall clock, guest
// cycles, and modeled cost.
func printSpanTable(spans []telemetry.SpanEvent) {
	type srow struct {
		count  uint64
		wallNS int64
		cycles float64
		costUS float64
	}
	rows := map[string]*srow{}
	for _, s := range spans {
		name := s.Name
		if s.Track != "" {
			name = s.Track + "/" + s.Name
		}
		r := rows[name]
		if r == nil {
			r = &srow{}
			rows[name] = r
		}
		r.count++
		r.wallNS += s.DurNS
		r.cycles += s.DurCycles
		r.costUS += s.CostUS
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := rows[names[i]], rows[names[j]]
		if a.wallNS != b.wallNS {
			return a.wallNS > b.wallNS
		}
		return names[i] < names[j]
	})
	fmt.Printf("\n%d spans\n\n", len(spans))
	fmt.Printf("%-24s %8s %12s %12s %14s %12s\n", "span phase", "count", "wall ms", "avg us", "guest cycles", "cost us")
	for _, n := range names {
		r := rows[n]
		fmt.Printf("%-24s %8d %12.3f %12.3f %14.0f %12.1f\n",
			n, r.count,
			float64(r.wallNS)/1e6,
			float64(r.wallNS)/1e3/float64(r.count),
			r.cycles, r.costUS)
	}
}

// writeChrome re-exports the trace in the Chrome trace-event format.
func writeChrome(path string, spans []telemetry.SpanEvent, events []telemetry.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, spans, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFolded emits "phase;event-type;isa weight" lines sorted by stack name
// so the output is deterministic for a given trace.
func writeFolded(path string, cells map[key]*agg) error {
	keys := make([]key, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.phase != b.phase {
			return a.phase < b.phase
		}
		if a.typ != b.typ {
			return a.typ < b.typ
		}
		return a.isa < b.isa
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, k := range keys {
		a := cells[k]
		weight := uint64(math.Ceil(a.cost))
		if weight == 0 {
			weight = a.count
		}
		isa := k.isa
		if isa == "" {
			isa = "any"
		}
		fmt.Fprintf(w, "%s;%s;%s %d\n", k.phase, k.typ, isa, weight)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
