package fleet

import (
	"time"

	"hipstr/internal/health"
)

// DefaultHealthRules is the built-in fleet rule set the health engine
// evaluates against the host's aggregate registry. Thresholds are
// deliberately conservative defaults — a quiet fleet (attack probability
// zero, uncontended latency) trips none of them, which the no-storm
// incident tests pin — and every rule carries open/resolve hysteresis so
// a single-sample spike cannot flap an incident.
//
// Rules over machine.* series are inert on the fleet registry (those
// series live in per-VM registries) but fire when the same rule set runs
// under hipstr-run's single-VM monitor; a rule whose series is absent
// simply never evaluates true.
func DefaultHealthRules() []health.Rule {
	return []health.Rule{
		{
			Name:        "respawn-storm",
			Series:      "fleet.respawns",
			Kind:        health.KindRate,
			Threshold:   5, // respawns/sec, fleet-wide
			Window:      3 * time.Second,
			For:         300 * time.Millisecond,
			Cooldown:    time.Second,
			Severity:    "page",
			OffenderKey: "respawns",
			Description: "kill/respawn churn: tenants are being re-randomized faster than steady state allows (attack wave or crash loop)",
		},
		{
			Name:        "attack-wave",
			Series:      "fleet.breaches",
			Kind:        health.KindRate,
			Threshold:   25, // breach detections/sec
			Window:      3 * time.Second,
			For:         300 * time.Millisecond,
			Cooldown:    time.Second,
			Severity:    "page",
			OffenderKey: "respawns",
			Description: "security-event detections (injected or real ErrSecurityKill) arriving as a sustained wave",
		},
		{
			Name:        "latency-slo-burn",
			Series:      "fleet.latency_p99_us",
			Kind:        health.KindBurn,
			Threshold:   2e6, // p99 objective: 2s admission-to-retirement
			Fraction:    0.5,
			Window:      10 * time.Second,
			For:         time.Second,
			Cooldown:    2 * time.Second,
			Severity:    "warn",
			OffenderKey: "latency_us",
			Description: "tenant latency p99 above the 2s objective for most of the window: the error budget is burning, not blipping",
		},
		{
			Name:        "code-cache-thrash",
			Series:      "machine.blockcache.invalidations.full",
			Kind:        health.KindRate,
			Threshold:   50, // whole-cache reconciles/sec
			Window:      5 * time.Second,
			For:         time.Second,
			Cooldown:    2 * time.Second,
			Severity:    "warn",
			OffenderKey: "respawns",
			Description: "full block-cache invalidations sustained: the code cache is being rebuilt wholesale instead of patched",
		},
		{
			Name:        "code-cache-evict-churn",
			Series:      "machine.blockcache.evicted",
			Kind:        health.KindRate,
			Threshold:   5000, // evicted blocks/sec
			Window:      5 * time.Second,
			For:         time.Second,
			Cooldown:    2 * time.Second,
			Severity:    "warn",
			OffenderKey: "respawns",
			Description: "block eviction churn: translations are being thrown away about as fast as they are made (undersized cache)",
		},
		{
			Name:        "injector-starvation",
			Series:      "fleet.injector_depth",
			Kind:        health.KindDeriv,
			Threshold:   50, // queued tenants/sec of sustained growth
			Window:      5 * time.Second,
			For:         5 * time.Second,
			Cooldown:    2 * time.Second,
			Severity:    "page",
			OffenderKey: "slices",
			Description: "global injector depth growing without relief: admission outpaces execution and new tenants are starving",
		},
	}
}
