// Command gadgetscan mines a benchmark's fat binary for code-reuse gadgets
// with the Galileo algorithm and classifies their concrete effects.
package main

import (
	"flag"
	"fmt"
	"log"

	"hipstr"
)

func main() {
	name := flag.String("workload", "libquantum", "benchmark to scan (see -list)")
	arch := flag.String("isa", "x86", "isa to mine: x86 or arm")
	list := flag.Bool("list", false, "list available workloads")
	show := flag.Int("show", 8, "print this many sample viable gadgets")
	flag.Parse()

	if *list {
		for _, n := range append(hipstr.Workloads(), "httpd") {
			fmt.Println(n)
		}
		return
	}
	k := hipstr.X86
	if *arch == "arm" {
		k = hipstr.ARM
	}
	bin, err := hipstr.CompileWorkload(*name)
	if err != nil {
		log.Fatal(err)
	}
	gs := hipstr.MineGadgets(bin, k)
	viable := 0
	unaligned := 0
	shown := 0
	for i := range gs {
		if !gs[i].Aligned {
			unaligned++
		}
		e := hipstr.GadgetEffect(bin, &gs[i])
		if !e.Viable() {
			continue
		}
		viable++
		if shown < *show {
			shown++
			fmt.Printf("%s  pops=%v  chain-slot=%d\n", gs[i].String(), e.Pops, e.NextSlot)
			for j := range gs[i].Instrs {
				fmt.Printf("    %s\n", gs[i].Instrs[j].String())
			}
		}
	}
	fmt.Printf("\n%s on %s: %d gadgets (%d unintentional), %d viable for brute force\n",
		*name, k, len(gs), unaligned, viable)
	bf := hipstr.SimulateBruteForce(bin, 1)
	fmt.Printf("Algorithm 1: avg %.2f randomizable params, %.0f bits entropy, %.2e attempts\n",
		bf.AvgParams, bf.EntropyBits, bf.AttemptsNoBias)
}
