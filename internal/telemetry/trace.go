package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// EventType names a structured trace event.
type EventType string

// The typed events emitted across the VM.
const (
	// EvTranslate fires when a translation unit is committed (Addr is the
	// source block, Cost the translation latency in microseconds).
	EvTranslate EventType = "translate"
	// EvCacheFlush fires when a code cache is flushed wholesale (Detail
	// records the number of evicted units).
	EvCacheFlush EventType = "cache-flush"
	// EvRATMiss fires when a return misses the Return Address Table and
	// traps to the VM (Addr is the source return address).
	EvRATMiss EventType = "rat-miss"
	// EvSecurity fires on a code-cache-miss security event (Addr is the
	// raw, pre-validation target of the suspect transfer).
	EvSecurity EventType = "security-event"
	// EvPolicy records a policy decision (Detail: e.g. "security-migrate",
	// "stay", "phase-migration-request").
	EvPolicy EventType = "policy"
	// EvMigrateBegin fires when a cross-ISA migration is attempted (ISA is
	// the source, Addr the resume point).
	EvMigrateBegin EventType = "migrate-begin"
	// EvMigrateEnd fires when the attempt concludes (ISA is the target on
	// success, Cost the modeled cost in microseconds; Detail carries the
	// refusal reason otherwise).
	EvMigrateEnd EventType = "migrate-end"
	// EvKill fires when the security policy terminates the process.
	EvKill EventType = "kill"
	// EvRespawn fires when a crashed worker is re-spawned with fresh
	// randomization (paper §5.3).
	EvRespawn EventType = "respawn"
	// EvPhase fires at a workload progress boundary in the timing model
	// (Cost is the cycles accumulated in the closing phase).
	EvPhase EventType = "phase"
)

// Event is one structured trace record.
type Event struct {
	Seq    uint64    `json:"seq"`
	Type   EventType `json:"type"`
	ISA    string    `json:"isa,omitempty"`
	Addr   uint32    `json:"addr,omitempty"`
	Target uint32    `json:"target,omitempty"`
	// Cost is event-specific: microseconds for translation/migration,
	// cycles for phase events.
	Cost   float64 `json:"cost,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Sink receives every event as it is emitted.
type Sink interface {
	Emit(Event)
}

// Tracer records typed events into a bounded ring buffer and fans them out
// to sinks. Emission happens on VM trap paths (translation, migration,
// security events), never per instruction, so a mutex is cheap enough.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	cap   int
	seq   uint64
	sinks []Sink
}

// DefaultTraceCap is the default ring capacity.
const DefaultTraceCap = 4096

// NewTracer returns a tracer keeping the last capacity events (<= 0 means
// DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity}
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return t.cap }

// AddSink attaches a sink; it receives events emitted from now on.
func (t *Tracer) AddSink(s Sink) {
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
}

// Emit records e, assigning its sequence number.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
	} else {
		t.ring[int((t.seq-1)%uint64(t.cap))] = e
	}
	sinks := t.sinks
	t.mu.Unlock()
	for _, s := range sinks {
		s.Emit(e)
	}
}

// Emitted returns the total number of events emitted (including any that
// have rotated out of the ring).
func (t *Tracer) Emitted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Tail returns the most recent n buffered events in emission order (all
// of them when n <= 0 or exceeds the buffer). It is the flight-recorder
// tap: an incident bundle wants the last few dozen events, not a copy of
// the whole ring.
func (t *Tracer) Tail(n int) []Event {
	evs := t.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Events returns the buffered events in emission order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < t.cap {
		return append(out, t.ring...)
	}
	start := int(t.seq % uint64(t.cap))
	out = append(out, t.ring[start:]...)
	return append(out, t.ring[:start]...)
}

// JSONLSink writes each event as one JSON object per line.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   uint64
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
	if s.err == nil {
		s.n++
	}
}

// Written returns the number of events successfully written.
func (s *JSONLSink) Written() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
