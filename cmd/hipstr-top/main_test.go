package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"hipstr/internal/health"
	"hipstr/internal/obsrv"
	"hipstr/internal/telemetry"
)

func TestParseSeries(t *testing.T) {
	specs := parseSeries("fleet.active, rate:fleet.respawns ,,x")
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs: %+v", len(specs), specs)
	}
	if specs[0] != (seriesSpec{name: "fleet.active"}) {
		t.Fatalf("spec 0: %+v", specs[0])
	}
	if specs[1] != (seriesSpec{name: "fleet.respawns", rate: true}) {
		t.Fatalf("spec 1: %+v", specs[1])
	}
	if specs[1].label() != "fleet.respawns/s" || specs[0].label() != "fleet.active" {
		t.Fatalf("labels: %q %q", specs[0].label(), specs[1].label())
	}
}

func TestTransformRateResetSafe(t *testing.T) {
	spec := seriesSpec{name: "c", rate: true}
	pts := []health.Point{
		{TimeNS: 0, Value: 100},
		{TimeNS: 1e9, Value: 200}, // +100/s
		{TimeNS: 2e9, Value: 30},  // reset: counts as +30/s
		{TimeNS: 3e9, Value: 50},  // +20/s
	}
	out := spec.transform(pts, 10)
	if len(out) != 3 {
		t.Fatalf("rate points: %+v", out)
	}
	for i, want := range []float64{100, 30, 20} {
		if out[i].Value != want {
			t.Fatalf("rate[%d]=%v, want %v", i, out[i].Value, want)
		}
	}
	// Non-rate specs only window.
	raw := seriesSpec{name: "g"}.transform(pts, 2)
	if len(raw) != 2 || raw[0].Value != 30 {
		t.Fatalf("windowed raw: %+v", raw)
	}
}

func TestSparkline(t *testing.T) {
	pts := []health.Point{{Value: 0}, {Value: 50}, {Value: 100}}
	got := sparkline(pts, 5)
	runes := []rune(got)
	if len(runes) != 5 {
		t.Fatalf("width: %d runes (%q)", len(runes), got)
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("scaling: %q", got)
	}
	if runes[3] != ' ' || runes[4] != ' ' {
		t.Fatalf("padding: %q", got)
	}
	// Flat series renders mid-height, not bottom.
	flat := []rune(sparkline([]health.Point{{Value: 7}, {Value: 7}}, 2))
	if flat[0] != '▄' || flat[1] != '▄' {
		t.Fatalf("flat: %q", string(flat))
	}
	if empty := sparkline(nil, 3); empty != "   " {
		t.Fatalf("empty: %q", empty)
	}
}

// testServer builds an httptest server with the endpoint set hipstr-top
// polls, backed by a real health monitor over a real registry.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	tel := telemetry.New()
	tel.Gauge("fleet.active").Set(12)
	tel.Gauge("fleet.rps").Set(340.5)
	tel.Counter("fleet.respawns").Add(9)

	mon := health.NewMonitor(health.Config{Telemetry: tel})
	for i := 0; i < 4; i++ {
		mon.Observe(int64(i)*1e9, tel.Snapshot())
	}

	opts := obsrv.Options{
		Snapshot:  func() (telemetry.Snapshot, bool) { return tel.Snapshot(), true },
		History:   mon.HistoryHandler(),
		Incidents: mon.Recorder.Handler(),
		Tenants: &fakeTenants{list: []obsrv.TenantInfo{
			{ID: "7", Workload: "libquantum", State: "running",
				Fields: map[string]float64{"steps": 9000, "respawns": 3, "latency_us": 1500}},
			{ID: "8", Workload: "bzip2", State: "done",
				Fields: map[string]float64{"steps": 80000, "respawns": 0, "latency_us": 900}},
		}},
	}
	h, _ := obsrv.NewHandler(opts)
	return httptest.NewServer(h)
}

type fakeTenants struct{ list []obsrv.TenantInfo }

func (f *fakeTenants) TenantList() []obsrv.TenantInfo { return f.list }
func (f *fakeTenants) TenantSnapshot(id string) (obsrv.TenantInfo, telemetry.Snapshot, bool) {
	return obsrv.TenantInfo{}, telemetry.Snapshot{}, false
}

func TestFrameAndRender(t *testing.T) {
	ts := testServer(t)
	defer ts.Close()

	cl := &client{base: ts.URL, http: ts.Client()}
	specs := parseSeries("fleet.active,rate:fleet.respawns,unknown.series")
	f, err := cl.frame(specs, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !f.statsOK {
		t.Fatal("stats not fetched")
	}
	if f.ready == "" {
		t.Fatal("readyz line empty")
	}
	if pts := f.history["fleet.active"]; len(pts) != 4 || pts[0].Value != 12 {
		t.Fatalf("gauge history: %+v", pts)
	}
	// The counter never moves across samples, so its rate is flat zero.
	if pts := f.history["fleet.respawns/s"]; len(pts) != 3 || pts[0].Value != 0 {
		t.Fatalf("rate history: %+v", pts)
	}
	if f.incidents == nil || f.incidents.Open != 0 {
		t.Fatalf("incidents: %+v", f.incidents)
	}
	if len(f.tenants) != 2 {
		t.Fatalf("tenants: %+v", f.tenants)
	}

	out := renderFrame(f, 16, 5)
	for _, want := range []string{
		"hipstr-top", "ready",
		"fleet   active 12",
		"fleet.active",
		"incidents  open 0",
		"top tenants",
		"libquantum",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Respawn sort: tenant 7 (3 respawns) outranks tenant 8 (more steps).
	if strings.Index(out, "libquantum") > strings.Index(out, "bzip2") {
		t.Fatalf("tenant ordering:\n%s", out)
	}
	// Unknown series renders nothing rather than a bogus line.
	if strings.Contains(out, "unknown.series") {
		t.Fatalf("unknown series leaked into render:\n%s", out)
	}
}

// TestFrameAgainstBareVM: a server without fleet/tenant/health endpoints
// (plain hipstr-run without -listen extras) still yields a frame.
func TestFrameAgainstBareVM(t *testing.T) {
	tel := telemetry.New()
	tel.Counter("dbt.translations.x86").Add(5)
	h, _ := obsrv.NewHandler(obsrv.Options{
		Snapshot: func() (telemetry.Snapshot, bool) { return tel.Snapshot(), true },
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := &client{base: ts.URL, http: ts.Client()}
	f, err := cl.frame(parseSeries(defaultSeries), 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.incidents != nil || len(f.tenants) != 0 {
		t.Fatalf("bare VM frame grew fleet sections: %+v", f)
	}
	out := renderFrame(f, 8, 5)
	if !strings.Contains(out, "vm      translations x86 5") {
		t.Fatalf("vm fallback line missing:\n%s", out)
	}
}

func TestFmtN(t *testing.T) {
	if got := fmtN(42); got != "42" {
		t.Fatalf("fmtN(42)=%q", got)
	}
	if got := fmtN(3.14159); got != "3.14" {
		t.Fatalf("fmtN(pi)=%q", got)
	}
}
