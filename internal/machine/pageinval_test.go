package machine

import (
	"errors"
	"sync"
	"testing"

	"hipstr/internal/isa"
	"hipstr/internal/mem"
)

// TestNonExecAdjacentWriteEvictsNothing writes into a data page directly
// adjacent to hot code and verifies the block cache is untouched: no
// reconcile, no evictions, no re-decodes.
func TestNonExecAdjacentWriteEvictsNothing(t *testing.T) {
	a := isa.NewAsm(isa.X86, textBase)
	a.Label("loop")
	a.Emit(isa.Inst{Op: isa.OpInc, Dst: isa.R(isa.EAX)})
	a.Jmp("loop")
	code, _, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ram := mem.New()
	ram.Map("text", textBase, mem.PageSize, mem.PermRX)
	dataBase := uint32(textBase + mem.PageSize)
	ram.Map("data", dataBase, mem.PageSize, mem.PermRW)
	ram.WriteForce(textBase, code)
	m := New(isa.X86, ram)
	m.PC = textBase

	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	before := m.BlockStats()
	if err := ram.Write(dataBase, []byte{0xAA, 0xBB, 0xCC, 0xDD}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	after := m.BlockStats()
	if after.Invalidations != before.Invalidations {
		t.Fatalf("data-page write triggered a reconcile: %d -> %d invalidations",
			before.Invalidations, after.Invalidations)
	}
	if after.BlocksEvicted != before.BlocksEvicted {
		t.Fatalf("data-page write evicted blocks: %d -> %d",
			before.BlocksEvicted, after.BlocksEvicted)
	}
	if after.Misses != before.Misses {
		t.Fatalf("data-page write forced re-decodes: misses %d -> %d",
			before.Misses, after.Misses)
	}
}

// TestRangedInvalidationKeepsOtherRegionBlocks caches blocks from two
// disjoint executable regions (the shape of two per-ISA DBT code caches),
// invalidates one region's range, and verifies only its blocks are evicted
// while the other region's decodes keep hitting.
func TestRangedInvalidationKeepsOtherRegionBlocks(t *testing.T) {
	emitLoop := func(k isa.Kind, base uint32) []byte {
		a := isa.NewAsm(k, base)
		a.Label("loop")
		a.Emit(isa.Inst{Op: isa.OpInc, Dst: isa.R(isa.EAX)})
		a.Jmp("loop")
		code, _, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		return code
	}
	baseA := uint32(textBase)
	baseB := uint32(textBase + 16*mem.PageSize)
	codeA := emitLoop(isa.X86, baseA)
	codeB := emitLoop(isa.X86, baseB)
	ram := mem.New()
	ram.Map("cacheA", baseA, mem.PageSize, mem.PermRX)
	ram.Map("cacheB", baseB, mem.PageSize, mem.PermRX)
	ram.WriteForce(baseA, codeA)
	ram.WriteForce(baseB, codeB)
	m := New(isa.X86, ram)

	m.PC = baseA
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	m.PC = baseB
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	warm := m.BlockStats()
	if warm.Blocks < 2 {
		t.Fatalf("expected blocks cached from both regions, have %d", warm.Blocks)
	}

	ram.InvalidateCodeRange(baseA, mem.PageSize)

	// Region B survives: rerunning it must not re-decode anything.
	m.PC = baseB
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	afterB := m.BlockStats()
	if afterB.Misses != warm.Misses {
		t.Fatalf("region B re-decoded after region A invalidation: misses %d -> %d",
			warm.Misses, afterB.Misses)
	}
	if afterB.PartialInvalidations != warm.PartialInvalidations+1 {
		t.Fatalf("partial invalidations %d -> %d, want one more",
			warm.PartialInvalidations, afterB.PartialInvalidations)
	}
	if afterB.FullInvalidations != warm.FullInvalidations {
		t.Fatalf("ranged invalidation was counted as full: %d -> %d",
			warm.FullInvalidations, afterB.FullInvalidations)
	}
	if afterB.BlocksEvicted == warm.BlocksEvicted {
		t.Fatal("no blocks evicted for the invalidated region")
	}
	if afterB.Invalidations != afterB.PartialInvalidations+afterB.FullInvalidations {
		t.Fatalf("legacy invalidations %d != partial %d + full %d",
			afterB.Invalidations, afterB.PartialInvalidations, afterB.FullInvalidations)
	}

	// Region A was evicted: rerunning it must re-decode.
	m.PC = baseA
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if final := m.BlockStats(); final.Misses <= afterB.Misses {
		t.Fatal("region A served stale decodes after its range was invalidated")
	}
}

// TestConcurrentMachinesCodeWriteHammer runs eight isolated machines under
// continuous code mutation — ranged writes, ranged invalidations, and full
// invalidations — to give the race detector a workout over the write-log
// replay and block-storage recycling paths.
func TestConcurrentMachinesCodeWriteHammer(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			a := isa.NewAsm(isa.X86, textBase)
			loopProgram(1 << 30)(a)
			code, _, err := a.Assemble()
			if err != nil {
				errs <- err
				return
			}
			ram := mem.New()
			ram.Map("text", textBase, uint32(len(code))+mem.PageSize, mem.PermRWX)
			ram.WriteForce(textBase, code)
			m := New(isa.X86, ram)
			m.PC = textBase
			for round := 0; round < 200; round++ {
				if _, err := m.Run(500); err != nil {
					errs <- err
					return
				}
				switch (round + seed) % 3 {
				case 0:
					// Rewrite the loop body in place (same bytes, new gen).
					ram.WriteForce(textBase, code)
				case 1:
					ram.InvalidateCodeRange(textBase, uint32(len(code)))
				case 2:
					ram.InvalidateCode()
				}
			}
			bs := m.BlockStats()
			if bs.Invalidations == 0 || bs.BlocksEvicted == 0 {
				errs <- errNoChurn
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errNoChurn = errors.New("hammer saw no invalidation traffic")
