package dbt_test

import (
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/isa"
	"hipstr/internal/testprogs"
)

// TestFlushMidRunInvalidatesBlockCache forces code-cache flushes mid-run
// (2 KiB cache, many translation units) and verifies the interpreter's
// block cache drops its predecodes each time: stale decodes of evicted
// units must never execute, and the invalidation/hit counters must be
// visible through the telemetry registry.
func TestFlushMidRunInvalidatesBlockCache(t *testing.T) {
	mod := testprogs.CallChain(12)
	bin, err := compiler.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.CodeCacheSize = 2048
	cfg.MigrateProb = 0
	cfg.DualTranslate = false
	vm := runVM(t, bin, isa.X86, cfg)
	if vm.Stats.Flushes == 0 {
		t.Fatal("expected code cache flushes with a 2 KiB cache")
	}
	bs := vm.P.M.BlockStats()
	if bs.Invalidations == 0 {
		t.Fatal("code cache flushed but block cache never invalidated")
	}
	// With constant flush pressure nearly every dispatch re-decodes; the
	// cache may legitimately never hit here, but it must keep refilling.
	if bs.Misses == 0 {
		t.Fatalf("block cache saw no traffic: %+v", bs)
	}
	want := uint32(7 + 11*12/2)
	if vm.P.ExitCode != want {
		t.Fatalf("result corrupted across flushes: %d != %d", vm.P.ExitCode, want)
	}
	s := vm.Telemetry().Snapshot()
	for name, wantV := range map[string]uint64{
		"machine.blockcache.hits":          bs.Hits,
		"machine.blockcache.misses":        bs.Misses,
		"machine.blockcache.invalidations": bs.Invalidations,
	} {
		if got, ok := s.Counters[name]; !ok || got != wantV {
			t.Errorf("registry %s = %d (present=%v), want %d", name, got, ok, wantV)
		}
	}
	if got := s.Gauges["machine.blockcache.hit_ratio"]; got != bs.HitRatio() {
		t.Errorf("registry hit_ratio = %v, want %v", got, bs.HitRatio())
	}
}
