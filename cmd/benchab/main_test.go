package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: hipstr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInterpreterSteps/x86-4                 	33491311	        34.39 ns/op	  29076476 steps/s	       0 B/op	       0 allocs/op
BenchmarkInterpreterSteps/x86-observed-4        	22470790	        52.79 ns/op	  18943change steps/s
BenchmarkInterpreterSteps/arm-4                 	38215176	        31.34 ns/op	  31908077 steps/s	       0 B/op	       0 allocs/op
BenchmarkFlat-4                                 	  100000	       475.70 ns/op	     112 B/op	       2 allocs/op
BenchmarkFleet/workers-max-4                    	       5	 212000000 ns/op	       321.5 req/s	  400000 B/op	    2100 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	best := map[string]Result{}
	env := map[string]string{}
	alias := map[string]string{}
	parseBenchOutput(sampleOutput, best, env, alias)

	if env["goos"] != "linux" || env["goarch"] != "amd64" ||
		env["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("environment header not captured: %v", env)
	}
	x86, ok := best["x86"]
	if !ok {
		t.Fatalf("x86 result missing: %v", best)
	}
	if x86["ns_per_op"] != 34.39 || x86["steps_per_sec"] != 29076476 ||
		x86["bytes_per_op"] != 0 || x86["allocs_per_op"] != 0 {
		t.Fatalf("x86 parsed wrong: %+v", x86)
	}
	if _, ok := best["x86-observed"]; ok {
		t.Fatal("malformed line should be skipped, not folded in")
	}
	// A flat benchmark keys on its full (procs-stripped) name; its rate
	// derives from ns/op since no explicit rate metric was reported.
	flat, ok := best["BenchmarkFlat"]
	if !ok {
		t.Fatalf("flat result missing: %v", best)
	}
	if flat["allocs_per_op"] != 2 || flat["bytes_per_op"] != 112 {
		t.Fatalf("flat allocs parsed wrong: %+v", flat)
	}
	if rate, key := rateOf(flat); key != "ns_per_op" ||
		rate < 2_102_165 || rate > 2_102_166 {
		t.Fatalf("flat rate fallback wrong: %v via %q", rate, key)
	}
	// Custom units map to canonical keys; req/s is a first-class rate.
	fl := best["workers-max"]
	if fl["requests_per_sec"] != 321.5 {
		t.Fatalf("req/s not parsed: %+v", fl)
	}
	if rate, key := rateOf(fl); key != "requests_per_sec" || rate != 321.5 {
		t.Fatalf("fleet rate selection wrong: %v via %q", rate, key)
	}
	// Normalized full names land in the alias table for check mode.
	if alias["fleet-workers-max"] != "workers-max" {
		t.Fatalf("alias table wrong: %v", alias)
	}
	if alias["interpretersteps-x86"] != "x86" {
		t.Fatalf("alias table wrong: %v", alias)
	}
}

func TestParseBenchOutputKeepsBest(t *testing.T) {
	best := map[string]Result{}
	parseBenchOutput("BenchmarkX/a-4 10 50.0 ns/op\n", best, nil, nil)
	parseBenchOutput("BenchmarkX/a-4 10 40.0 ns/op\n", best, nil, nil)
	parseBenchOutput("BenchmarkX/a-4 10 60.0 ns/op\n", best, nil, nil)
	if got := best["a"]["ns_per_op"]; got != 40.0 {
		t.Fatalf("best ns/op = %v, want 40.0", got)
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkInterpreterSteps/x86-observed-4": "BenchmarkInterpreterSteps/x86-observed",
		"BenchmarkFlat-16":                         "BenchmarkFlat",
		"BenchmarkNoSuffix":                        "BenchmarkNoSuffix",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricKey(t *testing.T) {
	cases := map[string]string{
		"ns/op":         "ns_per_op",
		"steps/s":       "steps_per_sec",
		"B/op":          "bytes_per_op",
		"allocs/op":     "allocs_per_op",
		"req/s":         "requests_per_sec",
		"spawns/s":      "spawns_per_sec",
		"blk-hit":       "blk_hit",
		"%obfuscated":   "pct_obfuscated",
		"us-x86-to-arm": "us_x86_to_arm",
	}
	for in, want := range cases {
		if got := metricKey(in); got != want {
			t.Errorf("metricKey(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRateOfLegacyShapes pins the rate extraction against the recorded
// document shapes already in the repo: interp (steps_per_sec), spawn
// (ns_per_spawn only), and a rate-less doc.
func TestRateOfLegacyShapes(t *testing.T) {
	interp := Result{"ns_per_step": 9.084, "steps_per_sec": 110078371, "allocs_per_op": 0}
	if v, k := rateOf(interp); k != "steps_per_sec" || v != 110078371 {
		t.Fatalf("interp shape: %v via %q", v, k)
	}
	spawn := Result{"ns_per_spawn": 2e6, "bytes_per_op": 7e6, "allocs_per_op": 6857}
	v, k := rateOf(spawn)
	if k != "ns_per_spawn" || v != 500 {
		t.Fatalf("spawn shape: %v via %q (want 500 spawns/s)", v, k)
	}
	custom := Result{"events_per_sec": 42}
	if v, k := rateOf(custom); k != "events_per_sec" || v != 42 {
		t.Fatalf("custom *_per_sec: %v via %q", v, k)
	}
	if v, k := rateOf(Result{"bytes_per_op": 5}); v != 0 || k != "" {
		t.Fatalf("rate-less shape must return 0: %v via %q", v, k)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSpawn/cold":            "spawn-cold",
		"BenchmarkRespawn/from-snapshot": "respawn-from-snapshot",
		"BenchmarkFleet/admit-warm":      "fleet-admit-warm",
		"BenchmarkFlat":                  "flat",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
