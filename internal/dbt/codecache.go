// Package dbt implements the PSR virtual machine: a classic just-in-time
// dynamic binary translator (paper §3.4, Figure 2) that translates one
// basic block at a time, applying the function's relocation map to every
// instruction, and polices all indirect control transfers. Together with
// the hardware-modeled Return Address Table it forms the runtime half of
// Program State Relocation.
package dbt

import (
	"fmt"
	"sort"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/mem"
)

// CodeCache is the translated-code region of one ISA. Translation units
// are bump-allocated; when the cache fills, it is flushed wholesale (the
// classic JIT fallback), which evicts every translation and the RAT
// entries pointing into it.
type CodeCache struct {
	ISA  isa.Kind
	Base uint32
	Size uint32

	cur uint32
	// srcToCache maps source block start addresses to their translation.
	srcToCache map[uint32]uint32
	// cacheToSrc is the reverse map, for diagnostics and JIT-ROP analysis.
	cacheToSrc map[uint32]uint32
	// indirectTargets records source addresses that became known indirect
	// jump targets or call sites — the attacker's only migration-free
	// entry points (paper §3.5).
	indirectTargets map[uint32]bool
	// covered records the source address ranges whose translations are
	// live in the cache (superblock formation inlines code into units, so
	// coverage is broader than the unit-entry map).
	covered [][2]uint32
	// units records committed unit start addresses. The bump allocator
	// only grows between flushes, so commits append in ascending order and
	// UnitAt can binary-search for the unit owning any cache PC.
	units []uint32
	// stubStarts parallels units: where each unit's deferred trap-stub
	// region (chain dispatch stubs emitted after the body) begins. A unit
	// with no stubs records its end address, so nothing classifies as
	// stub.
	stubStarts []uint32
	// chain digests the (src, cacheAddr) commit sequence since the last
	// flush. The translator emits direct jumps to already-warm targets, so
	// a unit's bytes depend on exactly this sequence; the shared unit
	// cache folds it into its content-addressed key.
	chain uint64

	Flushes      int
	Translations int
	// Lookups and Hits count Lookup calls cumulatively (they survive
	// flushes, like the RAT's counters) for hit-ratio telemetry.
	Lookups uint64
	Hits    uint64

	// OnFlush, when set, runs after every Flush with the byte range the
	// flush evicted ([base, base+size)). The PSR VM wires it to the
	// memory's ranged code-generation bump so interpreter block caches
	// drop predecoded blocks of the evicted translations — and only
	// those; blocks for the other ISA's cache and for program text
	// survive.
	OnFlush func(base, size uint32)
}

// NewCodeCache returns an empty code cache for ISA k.
func NewCodeCache(k isa.Kind, size uint32) *CodeCache {
	return &CodeCache{
		ISA:             k,
		Base:            fatbin.CacheBase(k),
		Size:            size,
		srcToCache:      make(map[uint32]uint32),
		cacheToSrc:      make(map[uint32]uint32),
		indirectTargets: make(map[uint32]bool),
	}
}

// Lookup returns the cache address of the translation of src.
func (c *CodeCache) Lookup(src uint32) (uint32, bool) {
	c.Lookups++
	a, ok := c.srcToCache[src]
	if ok {
		c.Hits++
	}
	return a, ok
}

// HitRatio returns the fraction of Lookup calls that hit (0 before any).
func (c *CodeCache) HitRatio() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}

// SourceOf returns the source address a translation unit was made from.
func (c *CodeCache) SourceOf(cacheAddr uint32) (uint32, bool) {
	s, ok := c.cacheToSrc[cacheAddr]
	return s, ok
}

// UnitAt returns the source address of the translation unit whose code
// contains cache address addr (any PC inside the unit, not just its
// start). The sampling profiler uses it to attribute cycles spent in
// translated code back to guest functions. It mutates no counters: a
// profiler probe must not perturb the hit-ratio telemetry it is measuring.
func (c *CodeCache) UnitAt(addr uint32) (uint32, bool) {
	if len(c.units) == 0 || !c.Contains(addr) || addr >= c.Base+c.cur {
		return 0, false
	}
	// First unit starting strictly after addr; its predecessor owns addr.
	i := sort.Search(len(c.units), func(i int) bool { return c.units[i] > addr })
	if i == 0 {
		return 0, false
	}
	src, ok := c.cacheToSrc[c.units[i-1]]
	return src, ok
}

// Contains reports whether addr falls inside the cache region.
func (c *CodeCache) Contains(addr uint32) bool {
	return addr >= c.Base && addr-c.Base < c.Size
}

// Used reports the bytes currently allocated.
func (c *CodeCache) Used() uint32 { return c.cur }

// NumUnits reports the number of live translation units.
func (c *CodeCache) NumUnits() int { return len(c.srcToCache) }

// NextAddr returns the address the next Reserve with the same alignment
// will yield, letting the translator assemble position-dependent code
// before committing.
func (c *CodeCache) NextAddr(align uint32) uint32 {
	return c.Base + ((c.cur + align - 1) &^ (align - 1))
}

// Reserve allocates n bytes, reporting false when the cache must be
// flushed first. align must be a power of two.
func (c *CodeCache) Reserve(n, align uint32) (uint32, bool) {
	start := (c.cur + align - 1) &^ (align - 1)
	if start+n > c.Size {
		return 0, false
	}
	c.cur = start + n
	return c.Base + start, true
}

// Commit records a completed translation unit and writes its bytes into
// memory (the cache region is mapped read+execute; the VM writes with
// loader privilege, modeling W^X with a privileged JIT writer).
func (c *CodeCache) Commit(m *mem.Memory, src, cacheAddr uint32, code []byte) {
	m.WriteForce(cacheAddr, code)
	c.srcToCache[src] = cacheAddr
	c.cacheToSrc[cacheAddr] = src
	c.units = append(c.units, cacheAddr)
	c.stubStarts = append(c.stubStarts, cacheAddr+uint32(len(code)))
	c.chain = foldDigest(foldDigest(c.chain, uint64(src)), uint64(cacheAddr))
	c.Translations++
}

// SetStubStart records where the most recently committed unit's trap-stub
// region begins (the translator learns it from the assembler's label map
// after Commit).
func (c *CodeCache) SetStubStart(stubAddr uint32) {
	if n := len(c.stubStarts); n > 0 {
		c.stubStarts[n-1] = stubAddr
	}
}

// StubAt reports whether cache address addr falls inside its unit's
// trap-stub region — VM dispatch overhead rather than translated guest
// code. Like UnitAt it mutates no counters.
func (c *CodeCache) StubAt(addr uint32) bool {
	if len(c.units) == 0 || !c.Contains(addr) || addr >= c.Base+c.cur {
		return false
	}
	i := sort.Search(len(c.units), func(i int) bool { return c.units[i] > addr })
	if i == 0 {
		return false
	}
	return addr >= c.stubStarts[i-1]
}

// Patch rewrites bytes inside a committed unit (branch chaining).
func (c *CodeCache) Patch(m *mem.Memory, addr uint32, b []byte) {
	if !c.Contains(addr) {
		panic(fmt.Sprintf("dbt: patch outside cache: %#x", addr))
	}
	m.WriteForce(addr, b)
}

// AddCovered records source ranges whose translation now lives in the
// cache.
func (c *CodeCache) AddCovered(ranges [][2]uint32) {
	c.covered = append(c.covered, ranges...)
}

// Covered reports whether some live translation includes source address
// addr — the JIT-ROP attacker's "discoverable through a cache leak" test.
func (c *CodeCache) Covered(addr uint32) bool {
	for _, r := range c.covered {
		if addr >= r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

// MarkIndirectTarget records src as a legitimate indirect target or call
// site known to the VM's internal structures.
func (c *CodeCache) MarkIndirectTarget(src uint32) { c.indirectTargets[src] = true }

// IsIndirectTarget reports whether src was recorded by MarkIndirectTarget.
func (c *CodeCache) IsIndirectTarget(src uint32) bool { return c.indirectTargets[src] }

// IndirectTargetCount returns the number of recorded indirect targets.
func (c *CodeCache) IndirectTargetCount() int { return len(c.indirectTargets) }

// TranslatedSources returns every source address with a live translation.
func (c *CodeCache) TranslatedSources() []uint32 {
	out := make([]uint32, 0, len(c.srcToCache))
	for s := range c.srcToCache {
		out = append(out, s)
	}
	return out
}

// Flush evicts everything, reporting the previously allocated byte range
// to OnFlush so downstream caches can invalidate just this region.
func (c *CodeCache) Flush() {
	used := c.cur
	c.cur = 0
	c.srcToCache = make(map[uint32]uint32)
	c.cacheToSrc = make(map[uint32]uint32)
	c.indirectTargets = make(map[uint32]bool)
	c.covered = nil
	c.units = nil
	c.stubStarts = nil
	c.chain = 0
	c.Flushes++
	if c.OnFlush != nil {
		c.OnFlush(c.Base, used)
	}
}

// Clone deep-copies the cache's allocation state, maps, and counters.
// OnFlush is left nil; the owning VM rewires it to its own memory. Fork
// uses it: the clone describes the same committed bytes, which the forked
// Memory aliases copy-on-write.
func (c *CodeCache) Clone() *CodeCache {
	n := &CodeCache{
		ISA: c.ISA, Base: c.Base, Size: c.Size, cur: c.cur,
		srcToCache:      make(map[uint32]uint32, len(c.srcToCache)),
		cacheToSrc:      make(map[uint32]uint32, len(c.cacheToSrc)),
		indirectTargets: make(map[uint32]bool, len(c.indirectTargets)),
		covered:         append([][2]uint32(nil), c.covered...),
		units:           append([]uint32(nil), c.units...),
		stubStarts:      append([]uint32(nil), c.stubStarts...),
		chain:           c.chain,
		Flushes:         c.Flushes,
		Translations:    c.Translations,
		Lookups:         c.Lookups,
		Hits:            c.Hits,
	}
	for k, v := range c.srcToCache {
		n.srcToCache[k] = v
	}
	for k, v := range c.cacheToSrc {
		n.cacheToSrc[k] = v
	}
	for k, v := range c.indirectTargets {
		n.indirectTargets[k] = v
	}
	return n
}

// RAT is the hardware-maintained Return Address Table (paper §5.1): a
// bounded table mapping source return addresses to their code cache
// translations. The call macro-op inserts entries; the return macro-op
// performs the lookup with a 1-cycle penalty. A miss traps to the VM.
type RAT struct {
	size    int
	entries map[uint32]uint32
	fifo    []uint32

	Lookups   uint64
	Misses    uint64
	Evictions uint64
}

// NewRAT returns a RAT holding size entries.
func NewRAT(size int) *RAT {
	return &RAT{size: size, entries: make(map[uint32]uint32, size)}
}

// Size returns the RAT capacity.
func (r *RAT) Size() int { return r.size }

// Entries returns the number of live entries.
func (r *RAT) Entries() int { return len(r.entries) }

// HitRatio returns the fraction of lookups that hit (0 before any).
func (r *RAT) HitRatio() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.Lookups-r.Misses) / float64(r.Lookups)
}

// Insert records srcRet -> cacheRet, evicting the oldest entry when full.
func (r *RAT) Insert(srcRet, cacheRet uint32) {
	if _, ok := r.entries[srcRet]; !ok {
		for len(r.entries) >= r.size && len(r.fifo) > 0 {
			old := r.fifo[0]
			r.fifo = r.fifo[1:]
			if _, live := r.entries[old]; live {
				delete(r.entries, old)
				r.Evictions++
			}
		}
		r.fifo = append(r.fifo, srcRet)
	}
	r.entries[srcRet] = cacheRet
}

// Lookup translates a source return address, counting the miss on failure.
func (r *RAT) Lookup(srcRet uint32) (uint32, bool) {
	r.Lookups++
	a, ok := r.entries[srcRet]
	if !ok {
		r.Misses++
	}
	return a, ok
}

// Flush clears the table (code cache flush invalidates its targets).
func (r *RAT) Flush() {
	r.entries = make(map[uint32]uint32, r.size)
	r.fifo = nil
}

// Clone deep-copies the table, its FIFO order, and its counters. Forked
// VMs keep the prototype's entries: cache addresses are identical across
// a fork (same committed units at the same offsets), so every entry stays
// valid.
func (r *RAT) Clone() *RAT {
	n := &RAT{
		size:    r.size,
		entries: make(map[uint32]uint32, len(r.entries)),
		fifo:    append([]uint32(nil), r.fifo...),
		Lookups: r.Lookups, Misses: r.Misses, Evictions: r.Evictions,
	}
	for k, v := range r.entries {
		n.entries[k] = v
	}
	return n
}
