package main

import (
	"os"
	"path/filepath"
	"testing"

	"hipstr/internal/telemetry"
)

func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadEventsEmpty(t *testing.T) {
	events, err := readEvents(writeTrace(t, ""))
	if err != nil {
		t.Fatalf("empty trace: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("got %d events from empty trace", len(events))
	}
	// Blank lines only are equally empty.
	events, err = readEvents(writeTrace(t, "\n\n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank-line trace: %d events, %v", len(events), err)
	}
}

func TestReadEventsTruncatedTail(t *testing.T) {
	// A trace cut mid-write: the final line is half an event. It must be
	// dropped with the parsed prefix preserved, not fail the run.
	events, err := readEvents(writeTrace(t,
		`{"seq":1,"type":"translate","isa":"x86","cost":3}`+"\n"+
			`{"seq":2,"type":"rat-miss","isa":"arm"}`+"\n"+
			`{"seq":3,"type":"mig`))
	if err != nil {
		t.Fatalf("truncated tail must not be fatal: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[1].Seq != 2 {
		t.Errorf("last kept event seq = %d, want 2", events[1].Seq)
	}
}

func TestReadEventsMalformedMidStream(t *testing.T) {
	// Garbage followed by more data is corruption, not truncation.
	_, err := readEvents(writeTrace(t,
		`{"seq":1,"type":"translate"}`+"\n"+
			"not json\n"+
			`{"seq":2,"type":"translate"}`))
	if err == nil {
		t.Fatal("mid-stream garbage must be fatal")
	}
}

func TestAssignPhasesEmpty(t *testing.T) {
	if labels := assignPhases(nil); len(labels) != 0 {
		t.Fatalf("assignPhases(nil) = %v", labels)
	}
	labels := assignPhases([]telemetry.Event{{Type: telemetry.EvTranslate}})
	if len(labels) != 1 || labels[0] != "(run)" {
		t.Fatalf("phase-less trace labels = %v", labels)
	}
}
