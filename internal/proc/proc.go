// Package proc boots fat-binary programs on a simulated core and provides
// the shared syscall environment. It is the "native execution" baseline:
// no PSR, no DBT — the program's own text section runs directly. The PSR
// virtual machine (package dbt) reuses the same bootstrap and syscall
// conventions.
package proc

import (
	"errors"
	"fmt"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/machine"
	"hipstr/internal/mem"
)

// ExitAddr is the sentinel return address installed under main: returning
// to it terminates the process.
const ExitAddr = 0xFFFFFFF0

// Syscall numbers of the simulated kernel ABI. The number is passed in
// EAX/R0; arguments in EBX,ECX,EDX,ESI,EDI (x86) or R1-R4 (ARM); the
// result returns in EAX/R0.
const (
	SysExit   = 1
	SysWrite  = 4  // record args[0] in the process trace
	SysExecve = 11 // the classic shellcode target
	SysGetPID = 20
)

// DefaultStackSize is the stack mapping created for a process.
const DefaultStackSize = 1 << 20

// DefaultHeapSize is the heap mapping created for a process.
const DefaultHeapSize = 1 << 20

// ExecveEvent records a successful execve: the attack-success signal in
// the security evaluation.
type ExecveEvent struct {
	PathPtr uint32
	ArgvPtr uint32
	EnvpPtr uint32
}

// Process is a program instance executing on one core.
type Process struct {
	Bin *fatbin.Binary
	Mem *mem.Memory
	M   *machine.Machine

	Trace    []uint32 // values written via SysWrite
	Exited   bool
	ExitCode uint32
	Execves  []ExecveEvent

	// OnControl chains an extra hook (the DBT installs its own; native
	// processes leave it nil).
	extraControl machine.ControlHook
}

// sysArgRegs mirrors the compiler's syscall argument registers.
var sysArgRegs = [2][]isa.Reg{
	isa.X86: {isa.EBX, isa.ECX, isa.EDX, isa.ESI, isa.EDI},
	isa.ARM: {isa.R1, isa.R2, isa.R3, isa.R4},
}

// New boots bin for native execution on ISA k with default sizes.
func New(bin *fatbin.Binary, k isa.Kind) (*Process, error) {
	return NewWith(bin, k, DefaultStackSize, DefaultHeapSize)
}

// NewWith boots bin with explicit stack and heap sizes.
func NewWith(bin *fatbin.Binary, k isa.Kind, stackSize, heapSize uint32) (*Process, error) {
	entryFn := bin.Func(bin.EntryFunc)
	if entryFn == nil {
		return nil, fmt.Errorf("proc: no entry function %q", bin.EntryFunc)
	}
	ram := mem.New()
	bin.Load(ram, stackSize, heapSize)
	m := machine.New(k, ram)
	p := &Process{Bin: bin, Mem: ram, M: m}
	m.Syscall = p.handleSyscall
	m.OnControl = p.handleControl
	p.Reset(k)
	return p, nil
}

// Adopt wraps an already-populated address space and machine state as a
// Process, skipping the O(image) bin.Load of NewWith. The snapshot/fork
// fast path uses it: ram is a copy-on-write fork of a booted (and possibly
// long-running) process image, st the register state to continue from.
// Trace/Exited/Execves start empty; the caller restores them when forking
// mid-run state rather than a pristine boot.
func Adopt(bin *fatbin.Binary, st machine.State, ram *mem.Memory) *Process {
	m := machine.New(st.ISA, ram)
	m.State = st
	p := &Process{Bin: bin, Mem: ram, M: m}
	m.Syscall = p.handleSyscall
	m.OnControl = p.handleControl
	return p
}

// Reset rewinds the machine to the program entry on ISA k without
// reloading memory. (Memory mutations from a previous run persist; use a
// fresh process for pristine state.)
func (p *Process) Reset(k isa.Kind) {
	entryFn := p.Bin.Func(p.Bin.EntryFunc)
	p.M.State = machine.State{ISA: k}
	p.M.PC = entryFn.Entry[k]
	sp := uint32(fatbin.StackTop - 64)
	if k == isa.X86 {
		sp -= 4
		p.M.Regs[isa.ESP] = sp
		// The bootstrap "caller" pushes the exit sentinel.
		if err := p.Mem.WriteWord(sp, ExitAddr); err != nil {
			panic(fmt.Sprintf("proc: bootstrap stack unmapped: %v", err))
		}
	} else {
		// ARM callees store LR themselves.
		p.M.Regs[isa.SP] = sp
		p.M.Regs[isa.LR] = ExitAddr
	}
	p.Exited = false
}

// SetControlHook chains an additional control hook ahead of the exit
// detection (used by the DBT layer).
func (p *Process) SetControlHook(h machine.ControlHook) { p.extraControl = h }

func (p *Process) handleControl(m *machine.Machine, in *isa.Inst, kind machine.ControlKind, target, retAddr uint32) (uint32, uint32, error) {
	if p.extraControl != nil {
		var err error
		target, retAddr, err = p.extraControl(m, in, kind, target, retAddr)
		if err != nil {
			return target, retAddr, err
		}
	}
	if kind == machine.CtlRet && target == ExitAddr {
		m.Halted = true
		p.Exited = true
		p.ExitCode = m.Regs[retRegOf(m.ISA)]
		// Park the PC on the sentinel; the machine stops before fetching.
		return target, retAddr, nil
	}
	return target, retAddr, nil
}

func retRegOf(k isa.Kind) isa.Reg {
	if k == isa.X86 {
		return isa.EAX
	}
	return isa.R0
}

func (p *Process) handleSyscall(m *machine.Machine, vector int32) error {
	if vector != 0x80 {
		return fmt.Errorf("proc: unknown syscall vector %#x", vector)
	}
	num := m.Regs[retRegOf(m.ISA)]
	regs := sysArgRegs[m.ISA]
	var args [5]uint32
	for i := 0; i < len(regs) && i < len(args); i++ {
		args[i] = m.Regs[regs[i]]
	}
	switch num {
	case SysExit:
		m.Halted = true
		p.Exited = true
		p.ExitCode = args[0]
	case SysWrite:
		p.Trace = append(p.Trace, args[0])
		m.Regs[retRegOf(m.ISA)] = 4
	case SysExecve:
		p.Execves = append(p.Execves, ExecveEvent{PathPtr: args[0], ArgvPtr: args[1], EnvpPtr: args[2]})
		m.Regs[retRegOf(m.ISA)] = 0
	case SysGetPID:
		m.Regs[retRegOf(m.ISA)] = 42
	default:
		return fmt.Errorf("proc: unknown syscall %d", num)
	}
	return nil
}

// Run executes up to maxSteps instructions, stopping at exit.
func (p *Process) Run(maxSteps uint64) (uint64, error) {
	n, err := p.M.Run(maxSteps)
	if err != nil && errors.Is(err, machine.ErrHalted) {
		err = nil
	}
	return n, err
}

// RunToExit runs until the program exits, failing if it does not within
// maxSteps.
func (p *Process) RunToExit(maxSteps uint64) error {
	if _, err := p.Run(maxSteps); err != nil {
		return err
	}
	if !p.Exited && !p.M.Halted {
		return fmt.Errorf("proc: program did not exit within %d steps", maxSteps)
	}
	return nil
}
