package fleet

import (
	"context"
	"strings"
	"testing"
)

// runFleet admits n libquantum tenants into a host built from cfg, drains
// it, and returns the host with every tenant retired.
func runFleet(t *testing.T, cfg Config, n int) *Host {
	t.Helper()
	h := NewHost(cfg)
	if err := h.AddWorkload("libquantum"); err != nil {
		t.Fatalf("AddWorkload: %v", err)
	}
	h.Start(context.Background())
	for i := 0; i < n; i++ {
		if _, err := h.Admit("libquantum"); err != nil {
			t.Fatalf("Admit %d: %v", i, err)
		}
	}
	h.Close()
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return h
}

func quotaConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.Policy.StepQuota = 40_000
	cfg.Policy.SliceSteps = 5_000
	cfg.Policy.WarmupSteps = 20_000
	return cfg
}

func TestFleetDrainsAndAggregates(t *testing.T) {
	const n = 24
	h := runFleet(t, quotaConfig(4), n)
	agg := h.Aggregates()
	if agg.Admitted != n {
		t.Fatalf("admitted = %d, want %d", agg.Admitted, n)
	}
	if agg.Completed+agg.Killed != n {
		t.Fatalf("completed %d + killed %d != admitted %d",
			agg.Completed, agg.Killed, n)
	}
	if agg.Active != 0 {
		t.Fatalf("active = %d after drain", agg.Active)
	}
	if agg.ActivePeak < 1 || agg.ActivePeak > n {
		t.Fatalf("active_peak = %d out of [1,%d]", agg.ActivePeak, n)
	}
	if agg.Steps == 0 || agg.Slices == 0 {
		t.Fatalf("no work recorded: %+v", agg)
	}
	if agg.RPS <= 0 {
		t.Fatalf("rps = %v, want > 0", agg.RPS)
	}
	for _, tn := range h.Tenants() {
		if !tn.Done() {
			t.Fatalf("tenant %d not retired: %s", tn.ID(), tn.State())
		}
		if tn.Steps() == 0 {
			t.Fatalf("tenant %d ran 0 steps", tn.ID())
		}
	}
	// The quota is far below libquantum's full run, so every completion
	// here is a quota retirement.
	if agg.QuotaRetired == 0 {
		t.Fatalf("expected quota retirements, got %+v", agg)
	}
	snap := h.Telemetry().Snapshot()
	if snap.Counters["fleet.admitted"] != n {
		t.Fatalf("registry fleet.admitted = %d", snap.Counters["fleet.admitted"])
	}
	if snap.Gauges["fleet.active_peak"] < 1 {
		t.Fatalf("registry fleet.active_peak = %v", snap.Gauges["fleet.active_peak"])
	}
	if snap.Histograms["fleet.latency_us"].Count != n {
		t.Fatalf("latency histogram count = %d, want %d",
			snap.Histograms["fleet.latency_us"].Count, n)
	}
}

// TestFleetDeterministicAcrossWorkers is the scheduling-independence
// contract: the same fleet (seed, policy, admission order) produces
// bit-identical per-tenant results whether one worker runs everything
// serially or four workers race and steal. Attack injection is on, so
// the respawn path is covered by the comparison too.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	const n = 16
	mk := func(workers int) Config {
		cfg := quotaConfig(workers)
		cfg.Policy.AttackProb = 0.25
		cfg.Policy.RespawnLimit = 2
		return cfg
	}
	h1 := runFleet(t, mk(1), n)
	h4 := runFleet(t, mk(4), n)
	t1, t4 := h1.Tenants(), h4.Tenants()
	if len(t1) != n || len(t4) != n {
		t.Fatalf("tenant counts: %d vs %d", len(t1), len(t4))
	}
	for i := range t1 {
		a, b := t1[i], t4[i]
		if a.Digest() != b.Digest() {
			t.Errorf("tenant %d digest: 1-worker %#x vs 4-worker %#x",
				a.ID(), a.Digest(), b.Digest())
		}
		if a.Steps() != b.Steps() {
			t.Errorf("tenant %d steps: %d vs %d", a.ID(), a.Steps(), b.Steps())
		}
		if a.Respawns() != b.Respawns() {
			t.Errorf("tenant %d respawns: %d vs %d",
				a.ID(), a.Respawns(), b.Respawns())
		}
		if a.State() != b.State() {
			t.Errorf("tenant %d state: %s vs %s", a.ID(), a.State(), b.State())
		}
	}
	a1, a4 := h1.Aggregates(), h4.Aggregates()
	if a1.Steps != a4.Steps || a1.Respawns != a4.Respawns ||
		a1.Completed != a4.Completed || a1.Killed != a4.Killed {
		t.Fatalf("aggregates diverge:\n1 worker: %+v\n4 workers: %+v", a1, a4)
	}
}

// TestFleetRespawnLimit: a tenant under certain attack burns its respawn
// budget and is then killed for good, with the reason recorded.
func TestFleetRespawnLimit(t *testing.T) {
	cfg := quotaConfig(2)
	cfg.Policy.AttackProb = 1.0
	cfg.Policy.RespawnLimit = 2
	h := runFleet(t, cfg, 4)
	agg := h.Aggregates()
	if agg.Killed != 4 || agg.Completed != 0 {
		t.Fatalf("want all 4 killed, got %+v", agg)
	}
	if agg.Respawns != 8 {
		t.Fatalf("respawns = %d, want 4 tenants x limit 2", agg.Respawns)
	}
	for _, tn := range h.Tenants() {
		if tn.State() != "killed" {
			t.Fatalf("tenant %d state %s", tn.ID(), tn.State())
		}
		if tn.Respawns() != 2 {
			t.Fatalf("tenant %d respawns %d", tn.ID(), tn.Respawns())
		}
		if !strings.Contains(tn.Err(), "respawn limit") {
			t.Fatalf("tenant %d err %q", tn.ID(), tn.Err())
		}
	}
}

// TestFleetColdAdmission: the cold baseline (fresh boot, private unit
// cache per tenant) must produce the same guest results as warm forking —
// warm admission is an optimization, not a semantic change.
func TestFleetColdVersusWarmResults(t *testing.T) {
	const n = 6
	warm := runFleet(t, quotaConfig(2), n)
	cold := quotaConfig(2)
	cold.ColdAdmission = true
	hc := runFleet(t, cold, n)
	tw, tc := warm.Tenants(), hc.Tenants()
	for i := range tw {
		if tw[i].Steps() != tc[i].Steps() {
			t.Errorf("tenant %d steps: warm %d vs cold %d",
				tw[i].ID(), tw[i].Steps(), tc[i].Steps())
		}
		if tw[i].Digest() != tc[i].Digest() {
			t.Errorf("tenant %d digest: warm %#x vs cold %#x",
				tw[i].ID(), tw[i].Digest(), tc[i].Digest())
		}
	}
}

func TestFleetAdmissionErrors(t *testing.T) {
	h := NewHost(quotaConfig(1))
	if _, err := h.Admit("libquantum"); err == nil {
		t.Fatal("Admit before AddWorkload must fail")
	}
	if err := h.AddWorkload("no-such-workload"); err == nil {
		t.Fatal("AddWorkload of unknown profile must fail")
	}
	if err := h.AddWorkload("libquantum"); err != nil {
		t.Fatalf("AddWorkload: %v", err)
	}
	h.Start(context.Background())
	if _, err := h.Admit("libquantum"); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	h.Close()
	if _, err := h.Admit("libquantum"); err == nil {
		t.Fatal("Admit after Close must fail")
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestFleetTenantSource(t *testing.T) {
	const n = 5
	h := runFleet(t, quotaConfig(2), n)
	list := h.TenantList()
	if len(list) != n {
		t.Fatalf("TenantList returned %d rows, want %d", len(list), n)
	}
	for i, info := range list {
		if info.ID == "" || info.Workload != "libquantum" {
			t.Fatalf("row %d malformed: %+v", i, info)
		}
		if info.Fields["steps"] <= 0 {
			t.Fatalf("row %d has no steps: %+v", i, info)
		}
	}
	info, snap, ok := h.TenantSnapshot(list[0].ID)
	if !ok {
		t.Fatalf("TenantSnapshot(%q) not found", list[0].ID)
	}
	if info.ID != list[0].ID {
		t.Fatalf("snapshot id %q != %q", info.ID, list[0].ID)
	}
	// A retired tenant serves its finalize-time frozen registry, which
	// must include the guest's own metrics (e.g. block-cache activity).
	if len(snap.Counters) == 0 {
		t.Fatalf("tenant snapshot has no counters")
	}
	if _, _, ok := h.TenantSnapshot("999999"); ok {
		t.Fatal("unknown tenant id must report !ok")
	}
	if _, _, ok := h.TenantSnapshot("bogus"); ok {
		t.Fatal("non-numeric tenant id must report !ok")
	}
	// Per-tenant series must have landed in the aggregate registry.
	reg := h.Telemetry().Snapshot()
	found := false
	for name := range reg.Gauges {
		if strings.HasPrefix(name, "fleet.tenant.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no fleet.tenant.* series published")
	}
}

// TestFleetCancel: canceling the context stops the pool even with
// admission still open, and Wait reports the cancellation.
func TestFleetCancel(t *testing.T) {
	cfg := quotaConfig(2)
	cfg.Policy.StepQuota = 0 // tenants would run for a very long time
	h := NewHost(cfg)
	if err := h.AddWorkload("libquantum"); err != nil {
		t.Fatalf("AddWorkload: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.Start(ctx)
	for i := 0; i < 4; i++ {
		if _, err := h.Admit("libquantum"); err != nil {
			t.Fatalf("Admit: %v", err)
		}
	}
	cancel()
	if err := h.Wait(); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}
