package prog

import (
	"testing"

	"hipstr/internal/isa"
)

// buildSum constructs: func sum(n) { s := 0; for i := 0; i < n; i++ { s += i }; return s }
func buildSum(t *testing.T) *Module {
	t.Helper()
	mb := NewModule("test")
	fb := mb.Func("sum", 1)
	n := fb.Param(0)
	sSlot := fb.NewSlot()
	iSlot := fb.NewSlot()
	zero := fb.Const(0)
	fb.StoreSlot(sSlot, zero)
	fb.StoreSlot(iSlot, zero)
	loop := fb.NewBlock()
	fb.SetBlock(0)
	fb.Jmp(loop)
	fb.SetBlock(loop)
	i := fb.LoadSlot(iSlot)
	body := fb.NewBlock()
	exit := fb.NewBlock()
	fb.SetBlock(loop)
	fb.Br(isa.CondLT, i, n, body, exit)
	fb.SetBlock(body)
	s := fb.LoadSlot(sSlot)
	i2 := fb.LoadSlot(iSlot)
	s2 := fb.Bin(BinAdd, s, i2)
	fb.StoreSlot(sSlot, s2)
	i3 := fb.BinImm(BinAdd, i2, 1)
	fb.StoreSlot(iSlot, i3)
	fb.Jmp(loop)
	fb.SetBlock(exit)
	r := fb.LoadSlot(sSlot)
	fb.Ret(r)
	m, err := mb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestBuilderProducesValidModule(t *testing.T) {
	m := buildSum(t)
	f := m.Func("sum")
	if f == nil {
		t.Fatal("function lookup failed")
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	if f.NSlots != 2 {
		t.Fatalf("slots = %d", f.NSlots)
	}
}

func TestValidateCatchesMissingTerminator(t *testing.T) {
	mb := NewModule("bad")
	fb := mb.Func("f", 0)
	fb.Const(1) // no terminator
	if _, err := mb.Build(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestValidateCatchesBadCall(t *testing.T) {
	mb := NewModule("bad")
	fb := mb.Func("f", 0)
	fb.Call("nonexistent", false)
	fb.Ret(NoVReg)
	if _, err := mb.Build(); err == nil {
		t.Fatal("expected validation error for unknown callee")
	}
}

func TestValidateCatchesBadBlockRef(t *testing.T) {
	mb := NewModule("bad")
	fb := mb.Func("f", 0)
	fb.Jmp(42)
	if _, err := mb.Build(); err == nil {
		t.Fatal("expected validation error for bad block")
	}
}

func TestSlotAddrPinsSlot(t *testing.T) {
	mb := NewModule("pin")
	fb := mb.Func("f", 0)
	s0 := fb.NewSlot()
	s1 := fb.NewSlot()
	_ = fb.SlotAddr(s1)
	fb.Ret(NoVReg)
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	if f.FixedSlots[s0] {
		t.Error("slot 0 should be relocatable")
	}
	if !f.FixedSlots[s1] {
		t.Error("address-taken slot 1 should be fixed")
	}
}

func TestSuccsAndPreds(t *testing.T) {
	m := buildSum(t)
	f := m.Func("sum")
	// Block 0 -> loop(1); loop -> body(2), exit(3); body -> loop.
	if s := f.Blocks[0].Succs(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("entry succs %v", s)
	}
	if s := f.Blocks[1].Succs(); len(s) != 2 {
		t.Fatalf("loop succs %v", s)
	}
	preds := Preds(f)
	if len(preds[1]) != 2 {
		t.Fatalf("loop preds %v", preds[1])
	}
	if len(preds[0]) != 0 {
		t.Fatalf("entry preds %v", preds[0])
	}
}

func TestLivenessLoopCarried(t *testing.T) {
	m := buildSum(t)
	f := m.Func("sum")
	lv := ComputeLiveness(f)
	// The parameter n (v0) is live into the loop header (block 1) because
	// the branch compares against it every iteration.
	if !lv.In[1].Has(f.Blocks[1].Ins[1].A) && !lv.In[1].Has(VReg(0)) {
		t.Fatal("param not live into loop header")
	}
	if !lv.Out[2].Has(VReg(0)) {
		t.Fatal("param should be live out of loop body")
	}
	// Nothing is live out of the exit block.
	if got := lv.Out[3].Count(); got != 0 {
		t.Fatalf("exit live-out count %d", got)
	}
}

func TestLiveAcross(t *testing.T) {
	m := buildSum(t)
	f := m.Func("sum")
	lv := ComputeLiveness(f)
	body := 2
	after := lv.LiveAcross(f, body)
	if len(after) != len(f.Blocks[body].Ins) {
		t.Fatalf("LiveAcross length %d", len(after))
	}
	// After the final store, only the loop-carried param remains live
	// (plus nothing block-local).
	last := after[len(after)-1]
	if !last.Has(VReg(0)) {
		t.Fatal("param not live at block end")
	}
}

func TestVRegSetOps(t *testing.T) {
	s := NewVRegSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Fatal("membership wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("count %d", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Fatal("remove failed")
	}
	mem := s.Members()
	if len(mem) != 2 || mem[0] != 0 || mem[1] != 129 {
		t.Fatalf("members %v", mem)
	}
	o := NewVRegSet(130)
	o.Add(5)
	if !o.Union(s) {
		t.Fatal("union should change")
	}
	if o.Union(s) {
		t.Fatal("second union should not change")
	}
	if o.Count() != 3 {
		t.Fatalf("union count %d", o.Count())
	}
}

func TestReversePostorder(t *testing.T) {
	m := buildSum(t)
	f := m.Func("sum")
	rpo := ReversePostorder(f)
	if len(rpo) != len(f.Blocks) {
		t.Fatalf("rpo len %d", len(rpo))
	}
	if rpo[0] != 0 {
		t.Fatalf("rpo starts at %d", rpo[0])
	}
	pos := make(map[int]int)
	for i, id := range rpo {
		pos[id] = i
	}
	// Entry precedes the loop header, which precedes its body.
	if !(pos[0] < pos[1]) {
		t.Fatal("entry not before loop")
	}
}
