// Package compiler implements the multi-ISA compiler: it lowers the
// architecture-neutral IR to both the x86-like and ARM-like ISAs, lays out
// a stack frame organization common to both, and emits the extended symbol
// table (liveness, value homes, relocatable offsets) that the PSR virtual
// machine and the cross-ISA migration engine rely on.
package compiler

import (
	"math/rand"
	"sort"

	"hipstr/internal/isa"
	"hipstr/internal/prog"
)

// loopInfo describes one natural loop of a function's CFG.
type loopInfo struct {
	id     int
	header int
	blocks map[int]bool
	inner  bool // contains no other loop
	// bind maps vregs to their loop-scoped register per ISA. Within the
	// loop these registers are the values' homes; entry and exit edges
	// load/store the canonical frame homes.
	bind [2]map[prog.VReg]isa.Reg
}

// dominators computes the immediate dominance relation as full dominator
// sets (iterative bitvector algorithm; function CFGs here are small).
func dominators(f *prog.Func) []map[int]bool {
	n := len(f.Blocks)
	preds := prog.Preds(f)
	dom := make([]map[int]bool, n)
	all := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		all[i] = true
	}
	for i := 0; i < n; i++ {
		if i == 0 {
			dom[i] = map[int]bool{0: true}
		} else {
			c := make(map[int]bool, n)
			for k := range all {
				c[k] = true
			}
			dom[i] = c
		}
	}
	order := prog.ReversePostorder(f)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			var inter map[int]bool
			for _, p := range preds[b] {
				if inter == nil {
					inter = make(map[int]bool, len(dom[p]))
					for k := range dom[p] {
						inter[k] = true
					}
					continue
				}
				for k := range inter {
					if !dom[p][k] {
						delete(inter, k)
					}
				}
			}
			if inter == nil {
				inter = make(map[int]bool)
			}
			inter[b] = true
			if len(inter) != len(dom[b]) {
				dom[b] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !dom[b][k] {
					dom[b] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// findLoops returns the natural loops of f, marking innermost loops.
func findLoops(f *prog.Func) []*loopInfo {
	dom := dominators(f)
	preds := prog.Preds(f)
	byHeader := make(map[int]*loopInfo)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if !dom[b.ID][s] {
				continue // not a back edge
			}
			// Back edge b -> s: natural loop = s plus all blocks reaching b
			// without passing through s.
			l, ok := byHeader[s]
			if !ok {
				l = &loopInfo{header: s, blocks: map[int]bool{s: true}}
				byHeader[s] = l
			}
			var stack []int
			if !l.blocks[b.ID] {
				l.blocks[b.ID] = true
				stack = append(stack, b.ID)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range preds[x] {
					if !l.blocks[p] {
						l.blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	var loops []*loopInfo
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].header < loops[j].header })
	for i, l := range loops {
		l.id = i
		l.inner = true
	}
	for _, outer := range loops {
		for _, in := range loops {
			if in == outer {
				continue
			}
			if outer.blocks[in.header] && len(in.blocks) < len(outer.blocks) {
				outer.inner = false
			}
		}
	}
	return loops
}

// bindableRegs lists, per ISA, the callee-saved registers available for
// loop-scoped value binding, in assignment order. The x86 set is small
// (register-poor ISA); ARM offers many more — this asymmetry drives both
// the performance results and the migration-safety asymmetry of Figure 6.
func bindableRegs(k isa.Kind) []isa.Reg {
	if k == isa.X86 {
		return []isa.Reg{isa.EBX, isa.ESI, isa.EDI}
	}
	return []isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9}
}

// chooseBindings selects, for each innermost loop, the hottest
// loop-carried vregs (live into at least one loop block) and assigns them
// loop-scoped registers per ISA. Block-local temporaries gain nothing from
// a loop-scoped home, so only values that cross block boundaries qualify.
// A non-zero layoutSeed permutes the register assignment order (diversified
// variants); canonical compilations keep the fixed order, which gives the
// positional cross-ISA correspondence migration relies on.
func chooseBindings(f *prog.Func, loops []*loopInfo, live *prog.Liveness, layoutSeed int64) {
	regsFor := func(k isa.Kind) []isa.Reg {
		regs := append([]isa.Reg(nil), bindableRegs(k)...)
		if layoutSeed != 0 {
			rng := rand.New(rand.NewSource(layoutSeed ^ int64(k)<<8 ^ hashName(f.Name)))
			rng.Shuffle(len(regs), func(i, j int) { regs[i], regs[j] = regs[j], regs[i] })
		}
		return regs
	}
	chooseBindingsWith(f, loops, live, regsFor)
}

func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ int64(s[i])) * 1099511628211
	}
	return h
}

func chooseBindingsWith(f *prog.Func, loops []*loopInfo, live *prog.Liveness, regsFor func(isa.Kind) []isa.Reg) {
	for _, l := range loops {
		l.bind[isa.X86] = map[prog.VReg]isa.Reg{}
		l.bind[isa.ARM] = map[prog.VReg]isa.Reg{}
		if !l.inner {
			continue
		}
		crossing := map[prog.VReg]bool{}
		for bid := range l.blocks {
			for _, v := range live.In[bid].Members() {
				crossing[v] = true
			}
		}
		counts := map[prog.VReg]int{}
		for bid := range l.blocks {
			for i := range f.Blocks[bid].Ins {
				in := &f.Blocks[bid].Ins[i]
				for _, u := range in.Uses() {
					if crossing[u] {
						counts[u]++
					}
				}
				if d := in.Def(); d != prog.NoVReg && crossing[d] {
					counts[d]++
				}
			}
		}
		type vc struct {
			v prog.VReg
			c int
		}
		var hot []vc
		for v, c := range counts {
			if c >= 2 {
				hot = append(hot, vc{v, c})
			}
		}
		sort.Slice(hot, func(i, j int) bool {
			if hot[i].c != hot[j].c {
				return hot[i].c > hot[j].c
			}
			return hot[i].v < hot[j].v
		})
		for _, k := range isa.Kinds {
			regs := regsFor(k)
			for i, h := range hot {
				if i >= len(regs) {
					break
				}
				l.bind[k][h.v] = regs[i]
			}
		}
	}
}

// innermostLoop maps each block to its innermost enclosing loop (or nil).
func innermostLoop(f *prog.Func, loops []*loopInfo) []*loopInfo {
	out := make([]*loopInfo, len(f.Blocks))
	for _, l := range loops {
		for b := range l.blocks {
			if out[b] == nil || len(l.blocks) < len(out[b].blocks) {
				out[b] = l
			}
		}
	}
	return out
}
