// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic benchmark suite: each driver returns a
// structured result and can print the same rows/series the paper reports.
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"

	"hipstr/internal/compiler"
	"hipstr/internal/fatbin"
	"hipstr/internal/gadget"
	"hipstr/internal/prog"
	"hipstr/internal/workload"
)

// Suite configures a run of the experiment drivers.
type Suite struct {
	// Profiles is the benchmark list (defaults to the paper's eight).
	Profiles []workload.Profile
	// Quick trims sweeps and samples gadget populations so the whole
	// suite finishes in test-friendly time.
	Quick bool
	// Out receives human-readable tables (nil discards).
	Out io.Writer

	bins map[string]*fatbin.Binary
	mods map[string]*prog.Module
}

// NewSuite returns a Suite over the full benchmark set.
func NewSuite(out io.Writer) *Suite {
	return &Suite{Profiles: workload.Profiles(), Out: out}
}

// QuickSuite returns a reduced suite for tests: the three smallest
// benchmarks and sampled gadget populations.
func QuickSuite(out io.Writer) *Suite {
	var ps []workload.Profile
	for _, name := range []string{"libquantum", "lbm", "mcf"} {
		p, _ := workload.ProfileByName(name)
		ps = append(ps, p)
	}
	return &Suite{Profiles: ps, Quick: true, Out: out}
}

func (s *Suite) printf(format string, args ...interface{}) {
	if s.Out != nil {
		fmt.Fprintf(s.Out, format, args...)
	}
}

// bin compiles (and caches) a benchmark.
func (s *Suite) bin(p workload.Profile) (*fatbin.Binary, error) {
	if s.bins == nil {
		s.bins = make(map[string]*fatbin.Binary)
		s.mods = make(map[string]*prog.Module)
	}
	if b, ok := s.bins[p.Name]; ok {
		return b, nil
	}
	mod := workload.Generate(p)
	b, err := compiler.Compile(mod)
	if err != nil {
		return nil, fmt.Errorf("experiments: compile %s: %w", p.Name, err)
	}
	s.bins[p.Name] = b
	s.mods[p.Name] = mod
	return b, nil
}

func (s *Suite) module(name string) *prog.Module { return s.mods[name] }

// sampleGadgets bounds a gadget population in Quick mode.
func (s *Suite) sampleGadgets(gs []gadget.Gadget) []gadget.Gadget {
	const cap = 400
	if !s.Quick || len(gs) <= cap {
		return gs
	}
	step := len(gs) / cap
	out := make([]gadget.Gadget, 0, cap)
	for i := 0; i < len(gs); i += step {
		out = append(out, gs[i])
	}
	return out
}

// viableGadgets mines and evaluates the viable population of a binary.
func viableGadgets(bin *fatbin.Binary, gs []gadget.Gadget) (viable []int, effects []gadget.Effect) {
	an := gadget.NewAnalyzer(bin)
	effects = make([]gadget.Effect, len(gs))
	for i := range gs {
		effects[i] = an.NativeEffect(&gs[i])
		if effects[i].Viable() {
			viable = append(viable, i)
		}
	}
	return viable, effects
}

// header prints a section banner.
func (s *Suite) header(title string) {
	s.printf("\n== %s ==\n", title)
}
