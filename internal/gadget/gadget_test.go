package gadget_test

import (
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/gadget"
	"hipstr/internal/isa"
	"hipstr/internal/testprogs"
)

func binFor(t *testing.T, name string) *fatbin.Binary {
	t.Helper()
	tc, ok := testprogs.All()[name]
	if !ok {
		t.Fatalf("no program %q", name)
	}
	bin, err := compiler.Compile(tc.Mod)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestMineFindsGadgets(t *testing.T) {
	bin := binFor(t, "fib")
	gs := gadget.Mine(bin, isa.X86, 0)
	if len(gs) == 0 {
		t.Fatal("no x86 gadgets in a binary with returns")
	}
	rets := 0
	for i := range gs {
		if gs[i].Ender == gadget.EndRet {
			rets++
		}
		if gs[i].Len == 0 || gs[i].Len > gadget.MaxInstrs+1 {
			t.Fatalf("gadget %s has %d instructions", gs[i].String(), gs[i].Len)
		}
	}
	if rets == 0 {
		t.Fatal("no ret-ending gadgets")
	}
}

func TestX86SurfaceExceedsARM(t *testing.T) {
	// §5.5: the aligned, strictly decoded ARM ISA has a far smaller
	// gadget surface (the paper measures 52x on real ISAs). Use a binary
	// with enough code volume for unintentional gadgets to appear.
	bin, err := compiler.Compile(testprogs.GadgetRich(60))
	if err != nil {
		t.Fatal(err)
	}
	x := len(gadget.Mine(bin, isa.X86, 0))
	a := len(gadget.Mine(bin, isa.ARM, 0))
	if x == 0 {
		t.Fatal("x86 surface empty")
	}
	if a*2 > x {
		t.Fatalf("ARM surface (%d) not much smaller than x86 (%d)", a, x)
	}
	t.Logf("x86 %d vs ARM %d gadgets (%.1fx)", x, a, float64(x)/float64(a))
}

func TestX86HasUnintentionalGadgets(t *testing.T) {
	bin := binFor(t, "collatz")
	gs := gadget.Mine(bin, isa.X86, 0)
	s := gadget.Summarize(gs)
	if s.Unaligned == 0 {
		t.Fatal("no unaligned (unintentional) gadgets on a variable-length ISA")
	}
	// ARM's aligned decoding admits no unaligned starts at all.
	as := gadget.Summarize(gadget.Mine(bin, isa.ARM, 0))
	if as.Unaligned != 0 {
		t.Fatalf("ARM reported %d unaligned gadgets", as.Unaligned)
	}
}

func TestNativeEffectFindsPops(t *testing.T) {
	bin, err := compiler.Compile(testprogs.GadgetRich(20))
	if err != nil {
		t.Fatal(err)
	}
	gs := gadget.Mine(bin, isa.X86, 0)
	an := gadget.NewAnalyzer(bin)
	viable := 0
	popRegs := map[isa.Reg]bool{}
	for i := range gs {
		e := an.NativeEffect(&gs[i])
		if e.Viable() {
			viable++
			for r := range e.Pops {
				popRegs[r] = true
			}
		}
	}
	if viable == 0 {
		t.Fatal("no viable gadgets — epilogues alone should provide pops")
	}
	if len(popRegs) == 0 {
		t.Fatal("no registers populated")
	}
	t.Logf("%d/%d viable, regs %v", viable, len(gs), popRegs)
}

func TestPSRObfuscatesMostGadgets(t *testing.T) {
	// The Figure 3 mechanism: under PSR translation, the overwhelming
	// majority of gadgets stop doing what the attacker intended.
	bin, err2 := compiler.Compile(testprogs.GadgetRich(15))
	if err2 != nil {
		t.Fatal(err2)
	}
	gs := gadget.Mine(bin, isa.X86, 0)
	an := gadget.NewAnalyzer(bin)
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total, same := 0, 0
	for i := range gs {
		native := an.NativeEffect(&gs[i])
		if !native.Viable() {
			continue
		}
		total++
		translated := gadget.TranslatedEffect(vm, &gs[i])
		if native.SameOutcome(translated) {
			same++
		}
	}
	if total == 0 {
		t.Skip("no viable gadgets to compare")
	}
	frac := float64(same) / float64(total)
	t.Logf("unobfuscated fraction: %d/%d = %.1f%%", same, total, frac*100)
	if frac > 0.25 {
		t.Fatalf("PSR left %.0f%% of gadgets unobfuscated; expected a small minority", frac*100)
	}
}

func TestEffectParamsPositive(t *testing.T) {
	bin := binFor(t, "sumloop")
	gs := gadget.Mine(bin, isa.X86, 0)
	an := gadget.NewAnalyzer(bin)
	for i := range gs {
		e := an.NativeEffect(&gs[i])
		if e.Viable() && e.Params() < 2 {
			t.Fatalf("viable gadget %s with %d params", gs[i].String(), e.Params())
		}
	}
}

func TestPatternSlot(t *testing.T) {
	if gadget.PatternSlot(0xA77AC005) != 5 {
		t.Fatal("pattern decode broken")
	}
	if gadget.PatternSlot(0x12345678) != -1 {
		t.Fatal("non-pattern value matched")
	}
}
