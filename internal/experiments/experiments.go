// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic benchmark suite. Each driver is
// registered as an Experiment (registry.go) and executed through the
// engine (engine.go): its independent per-workload / per-sweep-point cells
// fan out on a bounded worker pool, its structured rows are published into
// the telemetry registry and written as JSON result artifacts, and its
// printed tables are byte-identical regardless of scheduling.
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"hipstr/internal/compiler"
	"hipstr/internal/fatbin"
	"hipstr/internal/gadget"
	"hipstr/internal/prog"
	"hipstr/internal/telemetry"
	"hipstr/internal/workload"
)

// Suite configures a run of the experiment drivers.
type Suite struct {
	// Profiles is the benchmark list (defaults to the paper's eight).
	Profiles []workload.Profile
	// Quick trims sweeps and samples gadget populations so the whole
	// suite finishes in test-friendly time.
	Quick bool
	// Out receives human-readable tables (nil discards).
	Out io.Writer
	// Parallel bounds the worker pool each driver fans its independent
	// cells out on: 1 runs fully serial, 0 (the default) uses
	// runtime.GOMAXPROCS. Printed output is byte-identical either way.
	Parallel int
	// Telemetry, when set, receives each driver's structured series as
	// gauges plus the engine's run counters and timings.
	Telemetry *telemetry.Telemetry

	mu          sync.Mutex
	bins        map[string]*binEntry
	entropyBits float64 // measured PSR entropy (set by Table2, read by Fig7)

	// expSpan is the currently running experiment's parent span; cell
	// spans in forEach attach under it. Set by the engine before an
	// experiment starts (experiments run sequentially), read by cell
	// workers, so no lock is needed.
	expSpan telemetry.Span
}

// NewSuite returns a Suite over the full benchmark set.
func NewSuite(out io.Writer) *Suite {
	return &Suite{Profiles: workload.Profiles(), Out: out}
}

// QuickSuite returns a reduced suite for tests: the three smallest
// benchmarks and sampled gadget populations.
func QuickSuite(out io.Writer) *Suite {
	var ps []workload.Profile
	for _, name := range []string{"libquantum", "lbm", "mcf"} {
		p, _ := workload.ProfileByName(name)
		ps = append(ps, p)
	}
	return &Suite{Profiles: ps, Quick: true, Out: out}
}

func (s *Suite) printf(format string, args ...interface{}) {
	if s.Out != nil {
		fmt.Fprintf(s.Out, format, args...)
	}
}

// binEntry is one singleflight slot of the compile cache: concurrent cells
// requesting the same benchmark share one compilation.
type binEntry struct {
	once sync.Once
	bin  *fatbin.Binary
	mod  *prog.Module
	err  error
}

// bin compiles (and caches) a benchmark. It is safe for concurrent use:
// the per-benchmark sync.Once guarantees a single compile no matter how
// many cells race on the same profile.
func (s *Suite) bin(p workload.Profile) (*fatbin.Binary, error) {
	s.mu.Lock()
	if s.bins == nil {
		s.bins = make(map[string]*binEntry)
	}
	e, ok := s.bins[p.Name]
	if !ok {
		e = &binEntry{}
		s.bins[p.Name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		mod := workload.Generate(p)
		b, err := compiler.Compile(mod)
		if err != nil {
			e.err = fmt.Errorf("experiments: compile %s: %w", p.Name, err)
			return
		}
		e.bin, e.mod = b, mod
	})
	return e.bin, e.err
}

func (s *Suite) module(name string) *prog.Module {
	s.mu.Lock()
	e := s.bins[name]
	s.mu.Unlock()
	if e == nil {
		return nil
	}
	return e.mod
}

// setEntropyBits records the Table 2 measurement for Fig7.
func (s *Suite) setEntropyBits(bits float64) {
	s.mu.Lock()
	s.entropyBits = bits
	s.mu.Unlock()
}

// PSREntropyBits returns the per-gadget PSR entropy measured by Table2, or
// the paper's ~30-bit ballpark before Table2 has run.
func (s *Suite) PSREntropyBits() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entropyBits == 0 {
		return 30
	}
	return s.entropyBits
}

// sampleGadgets bounds a gadget population in Quick mode.
func (s *Suite) sampleGadgets(gs []gadget.Gadget) []gadget.Gadget {
	const maxSample = 400
	if !s.Quick || len(gs) <= maxSample {
		return gs
	}
	step := len(gs) / maxSample
	out := make([]gadget.Gadget, 0, maxSample)
	for i := 0; i < len(gs); i += step {
		out = append(out, gs[i])
	}
	return out
}

// viableGadgets mines and evaluates the viable population of a binary.
func viableGadgets(bin *fatbin.Binary, gs []gadget.Gadget) (viable []int, effects []gadget.Effect) {
	an := gadget.NewAnalyzer(bin)
	effects = make([]gadget.Effect, len(gs))
	for i := range gs {
		effects[i] = an.NativeEffect(&gs[i])
		if effects[i].Viable() {
			viable = append(viable, i)
		}
	}
	return viable, effects
}

// header prints a section banner.
func (s *Suite) header(title string) {
	s.printf("\n== %s ==\n", title)
}
