package dbt_test

import (
	"testing"

	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
)

// cacheBytes snapshots the translated-code region of one ISA's cache.
func cacheBytes(t *testing.T, vm *dbt.VM, k isa.Kind) []byte {
	t.Helper()
	buf := make([]byte, vm.Cache(k).Used())
	if err := vm.P.Mem.Read(fatbin.CacheBase(k), buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestSharedUnitsServeSecondVM: two VMs with identical binary, seed, and
// layout config share one unit cache. The first boots cold and publishes
// every unit; the second installs by copy — and must end up with the
// byte-identical cache region and identical translation stats.
func TestSharedUnitsServeSecondVM(t *testing.T) {
	bin, want := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.SharedUnits = dbt.NewUnitCache(dbt.DefaultUnitCacheBytes)

	first := runVM(t, bin, isa.X86, cfg)
	second := runVM(t, bin, isa.X86, cfg)
	for _, vm := range []*dbt.VM{first, second} {
		if vm.P.ExitCode != want {
			t.Fatalf("exit %d want %d", vm.P.ExitCode, want)
		}
	}
	if first.Stats.SharedHits != 0 {
		t.Fatalf("cold VM reported %d shared hits", first.Stats.SharedHits)
	}
	if first.Stats.SharedInstalls == 0 {
		t.Fatal("cold VM published no units")
	}
	if second.Stats.SharedHits == 0 {
		t.Fatal("warm VM translated everything from scratch")
	}
	if second.Stats.Translations != first.Stats.Translations {
		t.Fatalf("translations: cold %d warm %d",
			first.Stats.Translations, second.Stats.Translations)
	}
	if a, b := cacheBytes(t, first, isa.X86), cacheBytes(t, second, isa.X86); string(a) != string(b) {
		t.Fatal("shared-unit install produced different cache bytes than cold translation")
	}
	st := cfg.SharedUnits.Stats()
	if st.Hits == 0 || st.Installs == 0 || st.BytesSaved == 0 {
		t.Fatalf("cache stats not accounted: %+v", st)
	}
}

// TestSharedUnitsKeyedBySeed: a different PSR seed means different
// relocation maps, so units published under one seed must never serve a
// VM booted under another.
func TestSharedUnitsKeyedBySeed(t *testing.T) {
	bin, _ := compile(t, "sumloop")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.SharedUnits = dbt.NewUnitCache(dbt.DefaultUnitCacheBytes)

	runVM(t, bin, isa.X86, cfg)
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	other := runVM(t, bin, isa.X86, cfg2)
	if other.Stats.SharedHits != 0 {
		t.Fatalf("VM with different seed got %d shared hits", other.Stats.SharedHits)
	}
	if other.Stats.SharedInstalls == 0 {
		t.Fatal("second seed published nothing")
	}
}

// TestSharedUnitsKeyedByBinary: units from one binary must not serve
// another, even at the same seed.
func TestSharedUnitsKeyedByBinary(t *testing.T) {
	binA, _ := compile(t, "sumloop")
	binB, _ := compile(t, "fib")
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.SharedUnits = dbt.NewUnitCache(dbt.DefaultUnitCacheBytes)

	runVM(t, binA, isa.X86, cfg)
	vmB := runVM(t, binB, isa.X86, cfg)
	if vmB.Stats.SharedHits != 0 {
		t.Fatalf("different binary got %d shared hits", vmB.Stats.SharedHits)
	}
}

// TestSharedUnitsEviction: a cache capped below the program's translated
// footprint evicts FIFO — it keeps serving what fits, stays under cap,
// and never corrupts execution.
func TestSharedUnitsEviction(t *testing.T) {
	bin, want := compile(t, "sumloop")
	const capBytes = 512 // far below the program's translated size
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	cfg.SharedUnits = dbt.NewUnitCache(capBytes)

	runVM(t, bin, isa.X86, cfg)
	second := runVM(t, bin, isa.X86, cfg)
	if second.P.ExitCode != want {
		t.Fatalf("exit %d want %d", second.P.ExitCode, want)
	}
	st := cfg.SharedUnits.Stats()
	if st.Bytes > capBytes {
		t.Fatalf("cache holds %d bytes, cap %d", st.Bytes, capBytes)
	}
	if st.Installs <= uint64(st.Entries) {
		t.Fatalf("no eviction observed: installs %d entries %d", st.Installs, st.Entries)
	}
}
