package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing records *intervals* where the event tracer records points:
// a migration is one parent span with child spans for each phase, a
// translation is one span per unit, an experiment cell is one span per
// (workload, config) pair. Every span carries two time domains —
//
//   - wall clock: nanoseconds from the host monotonic clock, measuring
//     what the simulation itself costs to run, and
//   - guest cycles: the modeled cycle counter of the traced guest,
//     measuring what the traced program experiences,
//
// plus an optional modeled-cost attribute in microseconds (the Figure 12
// cost model lives in modeled time, not in either clock). Completed spans
// land in a bounded ring and fan out to sinks, mirroring the event
// tracer's shape so obsrv and tracestat can treat both uniformly.
//
// The subsystem is strictly opt-in: a nil *SpanTracer (the default — the
// Telemetry facade leaves Spans nil unless EnableSpans is called) makes
// StartSpan return a zero Span whose methods are single-branch no-ops, so
// instrumented hot paths cost one nil check and zero allocations when
// tracing is off.

// SpanEvent is one completed span record. Durations are closed intervals
// as measured at End; a span that never ended is not recorded.
type SpanEvent struct {
	// Kind discriminates span records from point Events in mixed JSONL
	// streams; it is always "span".
	Kind string `json:"kind"`
	// ID is the span's unique sequence number; ParentID is 0 for roots.
	ID       uint64 `json:"id"`
	ParentID uint64 `json:"parent,omitempty"`
	// Name is the span's phase or operation name (e.g. "migrate",
	// "transform", "translate").
	Name string `json:"name"`
	// Track groups spans onto one timeline row in exports: typically the
	// subsystem ("migrate", "dbt", "machine", "experiments").
	Track string `json:"track,omitempty"`
	// ISA optionally records the ISA the span concerns.
	ISA string `json:"isa,omitempty"`
	// StartNS/DurNS are the wall-clock start offset and duration in
	// nanoseconds, relative to the tracer's epoch.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// StartCycles/DurCycles are the guest-cycle-domain start and duration,
	// taken from the tracer's cycle source (0 when no source is attached).
	StartCycles float64 `json:"start_cycles,omitempty"`
	DurCycles   float64 `json:"dur_cycles,omitempty"`
	// CostUS is the modeled cost in microseconds attributed to this span
	// (the migration cost model's phase share), independent of both clocks.
	CostUS float64 `json:"cost_us,omitempty"`
	// Detail carries span-specific context (refusal reason, unit size...).
	Detail string `json:"detail,omitempty"`
}

// SpanSink receives every completed span.
type SpanSink interface {
	EmitSpan(SpanEvent)
}

// DefaultSpanCap is the default span ring capacity.
const DefaultSpanCap = 8192

// SpanTracer records completed spans into a bounded ring and fans them
// out to sinks. Starting a span is lock-free (an atomic ID allocation and
// a clock read); completion takes a mutex, which is fine because spans
// close on trap paths and phase boundaries, never per instruction.
type SpanTracer struct {
	epoch time.Time
	seq   atomic.Uint64

	// cycles, when non-nil, supplies the guest-cycle domain. It must be
	// safe to call from the tracing goroutine (machine step counters and
	// the perf model both are: they are only written between instructions
	// on the owning goroutine, and spans on other goroutines tolerate the
	// resulting slight skew).
	cycles func() float64

	mu    sync.Mutex
	ring  []SpanEvent
	cap   int
	total uint64
	sinks []SpanSink
}

// NewSpanTracer returns a tracer keeping the last capacity completed
// spans (<= 0 selects DefaultSpanCap).
func NewSpanTracer(capacity int) *SpanTracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanTracer{epoch: time.Now(), cap: capacity}
}

// SetCycleSource attaches the guest-cycle domain source. Pass nil to
// detach; spans then record zero cycle durations.
func (st *SpanTracer) SetCycleSource(f func() float64) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.cycles = f
	st.mu.Unlock()
}

// AddSink attaches a sink; it receives spans completed from now on.
func (st *SpanTracer) AddSink(s SpanSink) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.sinks = append(st.sinks, s)
	st.mu.Unlock()
}

// Cap returns the ring capacity.
func (st *SpanTracer) Cap() int {
	if st == nil {
		return 0
	}
	return st.cap
}

// Completed returns the total number of spans completed (including any
// that have rotated out of the ring).
func (st *SpanTracer) Completed() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// Spans returns the buffered completed spans in completion order.
func (st *SpanTracer) Spans() []SpanEvent {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanEvent, 0, len(st.ring))
	if len(st.ring) < st.cap {
		return append(out, st.ring...)
	}
	start := int(st.total % uint64(st.cap))
	out = append(out, st.ring[start:]...)
	return append(out, st.ring[:start]...)
}

// Tail returns the most recent n completed spans in completion order (all
// of them when n <= 0 or exceeds the buffer) — the flight-recorder tap
// mirroring Tracer.Tail.
func (st *SpanTracer) Tail(n int) []SpanEvent {
	spans := st.Spans()
	if n > 0 && len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	return spans
}

func (st *SpanTracer) readCycles() float64 {
	st.mu.Lock()
	f := st.cycles
	st.mu.Unlock()
	if f == nil {
		return 0
	}
	return f()
}

// Span is one in-flight span. The zero Span (nil tracer) is valid and
// inert: every method is a no-op behind a single nil check, so
// instrumentation sites need no enabled/disabled branches of their own.
// Span is a value type — starting a span allocates nothing beyond the
// ring slot its completion eventually overwrites.
type Span struct {
	tr          *SpanTracer
	id          uint64
	parent      uint64
	name        string
	track       string
	isa         string
	detail      string
	costUS      float64
	startNS     int64
	startCycles float64
}

// StartSpan opens a root span. On a nil tracer it returns the inert zero
// Span.
func (st *SpanTracer) StartSpan(track, name string) Span {
	if st == nil {
		return Span{}
	}
	return Span{
		tr:          st,
		id:          st.seq.Add(1),
		name:        name,
		track:       track,
		startNS:     int64(time.Since(st.epoch)),
		startCycles: st.readCycles(),
	}
}

// Active reports whether the span is recording (i.e. tracing is enabled).
func (s Span) Active() bool { return s.tr != nil }

// ID returns the span's sequence ID (0 when inert).
func (s Span) ID() uint64 { return s.id }

// StartChild opens a child span on the same tracer and track.
func (s Span) StartChild(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	c := s.tr.StartSpan(s.track, name)
	c.parent = s.id
	c.isa = s.isa
	return c
}

// SetISA tags the span with an ISA name. Returns the span for chaining.
func (s *Span) SetISA(isa string) {
	if s.tr != nil {
		s.isa = isa
	}
}

// SetDetail attaches span-specific context.
func (s *Span) SetDetail(detail string) {
	if s.tr != nil {
		s.detail = detail
	}
}

// SetCostUS attributes modeled cost (microseconds) to the span.
func (s *Span) SetCostUS(us float64) {
	if s.tr != nil {
		s.costUS = us
	}
}

// End completes the span, recording both domains' durations into the
// tracer ring and fanning out to sinks. Ending the zero Span is a no-op.
func (s Span) End() {
	st := s.tr
	if st == nil {
		return
	}
	endNS := int64(time.Since(st.epoch))
	endCycles := st.readCycles()
	ev := SpanEvent{
		Kind:        "span",
		ID:          s.id,
		ParentID:    s.parent,
		Name:        s.name,
		Track:       s.track,
		ISA:         s.isa,
		StartNS:     s.startNS,
		DurNS:       endNS - s.startNS,
		StartCycles: s.startCycles,
		DurCycles:   endCycles - s.startCycles,
		CostUS:      s.costUS,
		Detail:      s.detail,
	}
	if ev.DurNS < 0 {
		ev.DurNS = 0
	}
	if ev.DurCycles < 0 {
		ev.DurCycles = 0
	}
	st.mu.Lock()
	st.total++
	if len(st.ring) < st.cap {
		st.ring = append(st.ring, ev)
	} else {
		st.ring[int((st.total-1)%uint64(st.cap))] = ev
	}
	sinks := st.sinks
	st.mu.Unlock()
	for _, snk := range sinks {
		snk.EmitSpan(ev)
	}
}

// SpanJSONLSink writes each completed span as one JSON object per line;
// the "kind":"span" field keeps the lines distinguishable from point
// Events sharing the same stream.
type SpanJSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   uint64
	err error
}

// NewSpanJSONLSink returns a sink writing JSON lines to w.
func NewSpanJSONLSink(w io.Writer) *SpanJSONLSink {
	return &SpanJSONLSink{enc: json.NewEncoder(w)}
}

// EmitSpan implements SpanSink.
func (s *SpanJSONLSink) EmitSpan(ev SpanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
	if s.err == nil {
		s.n++
	}
}

// Written returns the number of spans successfully written.
func (s *SpanJSONLSink) Written() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, if any.
func (s *SpanJSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// --- Chrome trace-event / Perfetto export ---------------------------------

// Chrome trace-event constants: one process per time domain so Perfetto
// renders the wall-clock and guest-cycle timelines as separate track
// groups, with one thread (row) per span track within each.
const (
	chromePIDWall   = 1
	chromePIDCycles = 2
)

// chromeTID maps a span track name onto a stable thread ID within a
// domain process, assigning rows in first-seen order.
type chromeTID struct {
	ids  map[string]int
	next int
}

func (c *chromeTID) id(track string) int {
	if c.ids == nil {
		c.ids = make(map[string]int)
		c.next = 1
	}
	id, ok := c.ids[track]
	if !ok {
		id = c.next
		c.next++
		c.ids[track] = id
	}
	return id
}

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid,omitempty"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace writes spans (and optional point events, rendered as
// instants on the wall-clock timeline) as a Chrome trace-event JSON
// document loadable in ui.perfetto.dev or chrome://tracing.
//
// Spans appear twice: once in the wall-clock process (ts/dur in
// microseconds of host time) and once in the guest-cycle process (cycles
// mapped 1:1 onto trace microseconds — absolute numbers are guest cycles,
// not time). Events lacking cycle data are omitted from the cycle
// process. Span args carry the modeled CostUS and detail so per-phase
// cost is inspectable in the UI.
func WriteChromeTrace(w io.Writer, spans []SpanEvent, events []Event) error {
	var out []any
	wallTID := &chromeTID{}
	cycTID := &chromeTID{}

	out = append(out,
		chromeMeta{Name: "process_name", Ph: "M", PID: chromePIDWall,
			Args: map[string]any{"name": "wall clock (us)"}},
		chromeMeta{Name: "process_name", Ph: "M", PID: chromePIDCycles,
			Args: map[string]any{"name": "guest cycles"}},
	)

	track := func(s SpanEvent) string {
		if s.Track != "" {
			return s.Track
		}
		return "spans"
	}

	// Thread-name metadata in first-seen order, then the span slices.
	seenWall := map[string]bool{}
	seenCyc := map[string]bool{}
	for _, s := range spans {
		tk := track(s)
		if !seenWall[tk] {
			seenWall[tk] = true
			out = append(out, chromeMeta{Name: "thread_name", Ph: "M",
				PID: chromePIDWall, TID: wallTID.id(tk),
				Args: map[string]any{"name": tk}})
		}
		if s.DurCycles > 0 && !seenCyc[tk] {
			seenCyc[tk] = true
			out = append(out, chromeMeta{Name: "thread_name", Ph: "M",
				PID: chromePIDCycles, TID: cycTID.id(tk),
				Args: map[string]any{"name": tk}})
		}
	}
	for _, s := range spans {
		tk := track(s)
		args := map[string]any{"id": s.ID}
		if s.ParentID != 0 {
			args["parent"] = s.ParentID
		}
		if s.ISA != "" {
			args["isa"] = s.ISA
		}
		if s.CostUS != 0 {
			args["cost_us"] = s.CostUS
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		out = append(out, chromeEvent{
			Name: s.Name, Ph: "X",
			TS:  float64(s.StartNS) / 1e3,
			Dur: float64(s.DurNS) / 1e3,
			PID: chromePIDWall, TID: wallTID.id(tk),
			Args: args,
		})
		if s.DurCycles > 0 {
			out = append(out, chromeEvent{
				Name: s.Name, Ph: "X",
				TS:  s.StartCycles,
				Dur: s.DurCycles,
				PID: chromePIDCycles, TID: cycTID.id(tk),
				Args: args,
			})
		}
	}

	if len(events) > 0 {
		tid := wallTID.id("events")
		out = append(out, chromeMeta{Name: "thread_name", Ph: "M",
			PID: chromePIDWall, TID: tid,
			Args: map[string]any{"name": "events"}})
		// Point events carry no wall-clock timestamp of their own; spread
		// them by sequence number so ordering survives the conversion.
		for _, e := range events {
			args := map[string]any{"type": string(e.Type)}
			if e.ISA != "" {
				args["isa"] = e.ISA
			}
			if e.Addr != 0 {
				args["addr"] = fmt.Sprintf("%#x", e.Addr)
			}
			if e.Cost != 0 {
				args["cost"] = e.Cost
			}
			if e.Detail != "" {
				args["detail"] = e.Detail
			}
			out = append(out, chromeEvent{
				Name: string(e.Type), Ph: "i",
				TS:  float64(e.Seq),
				PID: chromePIDWall, TID: tid, S: "t",
				Args: args,
			})
		}
	}

	doc := struct {
		TraceEvents []any  `json:"traceEvents"`
		Unit        string `json:"displayTimeUnit"`
	}{TraceEvents: out, Unit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
