package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hipstr/internal/health"
)

// summarizeIncidents reads a -incident-dir of flight-recorder bundles and
// prints one row per incident: rule, state, duration, peak measure, and
// the top offender tenants. The per-incident incident-*.json artifacts
// are preferred (each is the final rewrite, carrying the resolution);
// when only the append-only incidents.jsonl exists, the last record per
// incident ID wins for the same reason.
func summarizeIncidents(dir string, w io.Writer) error {
	incs, src, err := loadIncidents(dir)
	if err != nil {
		return err
	}
	sort.Slice(incs, func(i, j int) bool { return incs[i].ID < incs[j].ID })

	open := 0
	for _, inc := range incs {
		if inc.Open() {
			open++
		}
	}
	fmt.Fprintf(w, "%d incidents in %s (%s): %d resolved, %d open\n\n",
		len(incs), dir, src, len(incs)-open, open)
	if len(incs) == 0 {
		return nil
	}

	fmt.Fprintf(w, "%-4s %-24s %-6s %-9s %10s %12s  %s\n",
		"id", "rule", "sev", "state", "duration", "peak", "offenders")
	for _, inc := range incs {
		state, dur := "open", "-"
		if !inc.Open() {
			state = "resolved"
			dur = inc.Duration(0).Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%-4d %-24s %-6s %-9s %10s %12.1f  %s\n",
			inc.ID, inc.Rule.Name, inc.Severity, state, dur, inc.Peak,
			offenderLine(inc.Offenders))
		fmt.Fprintf(w, "     %s; %d window points, %d events, %d spans\n",
			inc.Rule.Condition(), len(inc.Window), len(inc.Events), len(inc.Spans))
	}
	return nil
}

// loadIncidents reads the bundles, reporting which artifact form it used.
func loadIncidents(dir string) ([]health.Incident, string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if err != nil {
		return nil, "", err
	}
	if len(files) > 0 {
		var incs []health.Incident
		for _, f := range files {
			buf, err := os.ReadFile(f)
			if err != nil {
				return nil, "", err
			}
			var inc health.Incident
			if err := json.Unmarshal(buf, &inc); err != nil {
				return nil, "", fmt.Errorf("%s: %w", f, err)
			}
			incs = append(incs, inc)
		}
		return incs, fmt.Sprintf("%d bundle files", len(files)), nil
	}

	// Fallback: the append-only log. Later records for the same ID
	// supersede earlier ones (the resolve record follows the open record).
	f, err := os.Open(filepath.Join(dir, "incidents.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", fmt.Errorf("%s: no incident-*.json bundles or incidents.jsonl", dir)
		}
		return nil, "", err
	}
	defer f.Close()
	byID := map[int]health.Incident{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var inc health.Incident
		if err := json.Unmarshal(sc.Bytes(), &inc); err != nil {
			return nil, "", fmt.Errorf("incidents.jsonl:%d: %w", line, err)
		}
		byID[inc.ID] = inc
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	incs := make([]health.Incident, 0, len(byID))
	for _, inc := range byID {
		incs = append(incs, inc)
	}
	return incs, "incidents.jsonl", nil
}

func offenderLine(offs []health.Offender) string {
	if len(offs) == 0 {
		return "-"
	}
	parts := make([]string, len(offs))
	for i, o := range offs {
		parts[i] = fmt.Sprintf("%s(%s %.0f)", o.ID, o.Workload, o.Score)
	}
	return strings.Join(parts, " ")
}
