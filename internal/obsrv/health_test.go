package obsrv_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hipstr/internal/obsrv"
	"hipstr/internal/telemetry"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestReadyzGatesOnReadiness: /healthz is pure liveness (200 always),
// /readyz answers 503 with the detail until Ready flips true — the
// split that lets a load balancer hold traffic during prototype warmup
// without ever thinking the process is dead.
func TestReadyzGatesOnReadiness(t *testing.T) {
	tel := telemetry.New()
	ready := false
	opts := testOptions(tel)
	opts.Ready = func() (bool, string) {
		if !ready {
			return false, "fleet prototypes still warming"
		}
		return true, "fleet prototypes warmed"
	}
	h, _ := obsrv.NewHandler(opts)
	ts := httptest.NewServer(h)
	defer ts.Close()

	code, body := getBody(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "still warming") {
		t.Fatalf("/readyz before ready = %d %q", code, body)
	}
	// Liveness is unaffected by not-ready.
	if code, body := getBody(t, ts.URL+"/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz while not ready = %d %q", code, body)
	}

	ready = true
	code, body = getBody(t, ts.URL+"/readyz")
	if code != 200 || !strings.Contains(body, "warmed") {
		t.Fatalf("/readyz after ready = %d %q", code, body)
	}
}

// TestReadyzDefaultAlwaysReady: without a Ready hook (hipstr-run, tests),
// /readyz degenerates to liveness.
func TestReadyzDefaultAlwaysReady(t *testing.T) {
	tel := telemetry.New()
	h, _ := obsrv.NewHandler(testOptions(tel))
	ts := httptest.NewServer(h)
	defer ts.Close()
	if code, body := getBody(t, ts.URL+"/readyz"); code != 200 || !strings.HasPrefix(body, "ready") {
		t.Fatalf("/readyz without hook = %d %q", code, body)
	}
}

// TestHealthEndpointsWithoutEngine: /history and /incidents answer 404
// with a hint when no health engine is attached, rather than plumbing
// empty handlers.
func TestHealthEndpointsWithoutEngine(t *testing.T) {
	tel := telemetry.New()
	h, _ := obsrv.NewHandler(testOptions(tel))
	ts := httptest.NewServer(h)
	defer ts.Close()
	for _, path := range []string{"/history", "/incidents", "/incidents/1"} {
		if code, body := getBody(t, ts.URL+path); code != http.StatusNotFound ||
			!strings.Contains(body, "health engine not attached") {
			t.Fatalf("%s without engine = %d %q", path, code, body)
		}
	}
}

// TestHealthEndpointsDelegate: attached History/Incidents handlers
// receive their routes with the path intact (the incident handler routes
// on /incidents/{id} itself).
func TestHealthEndpointsDelegate(t *testing.T) {
	tel := telemetry.New()
	opts := testOptions(tel)
	opts.History = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "history:"+r.URL.RawQuery)
	})
	opts.Incidents = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "incidents:"+r.URL.Path)
	})
	h, _ := obsrv.NewHandler(opts)
	ts := httptest.NewServer(h)
	defer ts.Close()

	if _, body := getBody(t, ts.URL+"/history?series=a,b"); body != "history:series=a,b" {
		t.Fatalf("/history delegate = %q", body)
	}
	if _, body := getBody(t, ts.URL+"/incidents"); body != "incidents:/incidents" {
		t.Fatalf("/incidents delegate = %q", body)
	}
	if _, body := getBody(t, ts.URL+"/incidents/7"); body != "incidents:/incidents/7" {
		t.Fatalf("/incidents/7 delegate = %q", body)
	}
}
