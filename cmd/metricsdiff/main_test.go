package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSnapshot(t *testing.T) {
	path := writeFile(t, t.TempDir(), "m.json",
		`{"counters":{"dbt.migrations":7},"gauges":{"dbt.cache.x86.occupancy":0.5},"histograms":{}}`)
	s, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["dbt.migrations"] != 7 {
		t.Errorf("counter = %d, want 7", s.Counters["dbt.migrations"])
	}
	if s.Gauges["dbt.cache.x86.occupancy"] != 0.5 {
		t.Errorf("gauge = %v", s.Gauges["dbt.cache.x86.occupancy"])
	}
}

// TestLoadResultArtifact checks -results-out artifacts convert into the
// same experiments.<name>.<label>.<field> gauges the live registry
// publishes, including bools, arrays, nested objects, and sanitized
// labels.
func TestLoadResultArtifact(t *testing.T) {
	path := writeFile(t, t.TempDir(), "fig9.json", `{
		"name": "fig9", "description": "overhead", "quick": true,
		"parallel": 2, "seconds": 1.25,
		"rows": [
			{"Bench": "libquantum", "O3": 0.9, "Safe": true},
			{"Bench": "gcc+ref", "O3": 0.8, "Safe": false,
			 "PerISA": {"x86": 1.0, "arm": 2.0}, "Series": [5, 6]}
		]
	}`)
	s, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"bench.seconds.fig9":                  1.25,
		"experiments.fig9.libquantum.o3":      0.9,
		"experiments.fig9.libquantum.safe":    1,
		"experiments.fig9.gcc-ref.o3":         0.8,
		"experiments.fig9.gcc-ref.safe":       0,
		"experiments.fig9.gcc-ref.perisa.x86": 1.0,
		"experiments.fig9.gcc-ref.perisa.arm": 2.0,
		"experiments.fig9.gcc-ref.series.0":   5,
		"experiments.fig9.gcc-ref.series.1":   6,
	}
	for name, v := range want {
		if got := s.Gauges[name]; got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if len(s.Gauges) != len(want) {
		t.Errorf("extra gauges: %v", s.Gauges)
	}
}

func TestLoadResultsDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "fig9.json", `{"name":"fig9","seconds":1,"rows":[{"Bench":"mcf","O3":0.7}]}`)
	writeFile(t, dir, "tab2.json", `{"name":"tab2","seconds":2,"rows":{"Technique":"psr","Probes":128}}`)
	s, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gauges["experiments.fig9.mcf.o3"] != 0.7 {
		t.Errorf("fig9 series missing: %v", s.Gauges)
	}
	if s.Gauges["experiments.tab2.psr.probes"] != 128 {
		t.Errorf("single-row artifact not flattened: %v", s.Gauges)
	}
	if s.Gauges["bench.seconds.tab2"] != 2 {
		t.Errorf("runtime gauge missing: %v", s.Gauges)
	}
}

func TestLoadRejectsUnknownShape(t *testing.T) {
	dir := t.TempDir()
	if _, err := load(writeFile(t, dir, "x.json", `{"foo": 1}`)); err == nil {
		t.Error("unknown JSON shape must be rejected")
	}
	if _, err := load(writeFile(t, dir, "y.json", `not json`)); err == nil {
		t.Error("non-JSON must be rejected")
	}
	empty := t.TempDir()
	if _, err := load(empty); err == nil {
		t.Error("empty directory must be rejected")
	}
}
