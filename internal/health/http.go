package health

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HistoryHandler serves the rolling history as JSON time series:
//
//	/history                     -> {"samples":N,"names":[...]}
//	/history?series=a,b&points=N -> {"samples":N,"series":[{name,points}]}
//
// Unknown series return with empty points rather than erroring, so a
// dashboard polling a mixed series list keeps working while a subsystem
// warms up.
func (m *Monitor) HistoryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var names []string
		if s := r.URL.Query().Get("series"); s != "" {
			for _, n := range strings.Split(s, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
		}
		points, _ := strconv.Atoi(r.URL.Query().Get("points"))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(m.History.Query(names, points))
	})
}

// IncidentSummary is one row of the /incidents listing.
type IncidentSummary struct {
	ID         int     `json:"id"`
	Rule       string  `json:"rule"`
	Severity   string  `json:"severity,omitempty"`
	State      string  `json:"state"`
	OpenedNS   int64   `json:"opened_ns"`
	ResolvedNS int64   `json:"resolved_ns,omitempty"`
	DurationMS int64   `json:"duration_ms"`
	Value      float64 `json:"value"`
	Peak       float64 `json:"peak"`
	Offenders  int     `json:"offenders"`
	Condition  string  `json:"condition"`
}

// Summarize flattens an incident for the listing at nowNS.
func Summarize(inc Incident, nowNS int64) IncidentSummary {
	state := "open"
	if !inc.Open() {
		state = "resolved"
	}
	return IncidentSummary{
		ID:         inc.ID,
		Rule:       inc.Rule.Name,
		Severity:   inc.Severity,
		State:      state,
		OpenedNS:   inc.OpenedNS,
		ResolvedNS: inc.ResolvedNS,
		DurationMS: inc.Duration(nowNS).Milliseconds(),
		Value:      inc.Value,
		Peak:       inc.Peak,
		Offenders:  len(inc.Offenders),
		Condition:  inc.Rule.Condition(),
	}
}

// IncidentList is the JSON shape served at /incidents.
type IncidentList struct {
	Open      int               `json:"open"`
	Opened    uint64            `json:"opened"`
	Resolved  uint64            `json:"resolved"`
	Incidents []IncidentSummary `json:"incidents"`
}

// Handler serves the incident store:
//
//	/incidents      -> IncidentList (summaries, oldest first)
//	/incidents/{id} -> the full forensic bundle
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		path := strings.TrimSuffix(req.URL.Path, "/")
		if id := strings.TrimPrefix(path, "/incidents/"); id != path && id != "" {
			n, err := strconv.Atoi(id)
			if err != nil {
				http.Error(w, "bad incident id "+strconv.Quote(id), http.StatusBadRequest)
				return
			}
			inc, ok := r.Incident(n)
			if !ok {
				http.Error(w, "unknown incident "+id, http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(inc)
			return
		}
		now := time.Now().UnixNano()
		opened, resolved, _ := r.Counts()
		list := IncidentList{
			Open:     int(opened - resolved),
			Opened:   opened,
			Resolved: resolved,
		}
		incs := r.Incidents()
		list.Incidents = make([]IncidentSummary, 0, len(incs))
		for _, inc := range incs {
			list.Incidents = append(list.Incidents, Summarize(inc, now))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(list)
	})
}
