// Package prog defines the architecture-neutral intermediate representation
// consumed by the multi-ISA compiler. Programs are modules of functions;
// functions are CFGs of basic blocks over virtual registers and named local
// stack slots.
//
// The IR deliberately distinguishes slot accesses (LoadSlot/StoreSlot) from
// pointer-based memory accesses (Load/Store): slots whose address is never
// taken are relocatable by PSR, while address-taken slots become the "fixed
// stack slots" of the paper's extended symbol table.
package prog

import (
	"fmt"

	"hipstr/internal/isa"
)

// VReg is a virtual register id, local to a function. Parameters occupy
// v0..v(NParams-1) at function entry.
type VReg int32

// NoVReg marks an unused vreg field.
const NoVReg VReg = -1

// OpKind enumerates IR operations.
type OpKind uint8

const (
	OpConst      OpKind = iota // Dst = Imm
	OpCopy                     // Dst = A
	OpBin                      // Dst = A <Bin> B
	OpBinImm                   // Dst = A <Bin> Imm
	OpNeg                      // Dst = -A
	OpNot                      // Dst = ^A
	OpLoadSlot                 // Dst = slots[Slot]
	OpStoreSlot                // slots[Slot] = A
	OpSlotAddr                 // Dst = &slots[Slot] (pins Slot)
	OpGlobalAddr               // Dst = &globals[Global] + Imm
	OpLoad                     // Dst = mem[A + Imm]
	OpStore                    // mem[A + Imm] = B
	OpCall                     // Dst? = Fn(Args...)
	OpCallInd                  // Dst? = (*A)(Args...)
	OpFuncAddr                 // Dst = &Fn
	OpSyscall                  // Dst = syscall(Imm; Args...)
	OpRet                      // return A (or void when A == NoVReg)
	OpJmp                      // goto Blk
	OpBr                       // if A <Cond> B goto Blk else Blk2
	OpBrImm                    // if A <Cond> Imm goto Blk else Blk2
)

var opKindNames = [...]string{
	"const", "copy", "bin", "binimm", "neg", "not", "loadslot", "storeslot",
	"slotaddr", "globaladdr", "load", "store", "call", "callind", "funcaddr",
	"syscall", "ret", "jmp", "br", "brimm",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// BinOp is an arithmetic/logic operator.
type BinOp uint8

const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
)

var binNames = [...]string{"add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr"}

func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// MachineOp returns the isa.Op implementing b.
func (b BinOp) MachineOp() isa.Op {
	switch b {
	case BinAdd:
		return isa.OpAdd
	case BinSub:
		return isa.OpSub
	case BinMul:
		return isa.OpMul
	case BinDiv:
		return isa.OpDiv
	case BinAnd:
		return isa.OpAnd
	case BinOr:
		return isa.OpOr
	case BinXor:
		return isa.OpXor
	case BinShl:
		return isa.OpShl
	case BinShr:
		return isa.OpShr
	}
	return isa.OpInvalid
}

// Instr is one IR operation. Field use depends on Kind; unused vreg fields
// hold NoVReg.
type Instr struct {
	Kind   OpKind
	Bin    BinOp
	Cond   isa.Cond
	Dst    VReg
	A, B   VReg
	Imm    int32
	Slot   int
	Global int
	Fn     string
	Args   []VReg
	Blk    int // primary branch target block id
	Blk2   int // fall-through block id for branches
}

// IsTerminator reports whether the instruction ends a basic block.
func (i *Instr) IsTerminator() bool {
	switch i.Kind {
	case OpRet, OpJmp, OpBr, OpBrImm:
		return true
	}
	return false
}

// Uses returns the vregs the instruction reads.
func (i *Instr) Uses() []VReg {
	var out []VReg
	add := func(v VReg) {
		if v != NoVReg {
			out = append(out, v)
		}
	}
	switch i.Kind {
	case OpCopy, OpNeg, OpNot, OpStoreSlot, OpLoad:
		add(i.A)
	case OpBin:
		add(i.A)
		add(i.B)
	case OpBinImm:
		add(i.A)
	case OpStore:
		add(i.A)
		add(i.B)
	case OpBr:
		add(i.A)
		add(i.B)
	case OpBrImm:
		add(i.A)
	case OpRet:
		add(i.A)
	case OpCall, OpSyscall:
		out = append(out, i.Args...)
	case OpCallInd:
		add(i.A)
		out = append(out, i.Args...)
	}
	return out
}

// Def returns the vreg the instruction writes, or NoVReg.
func (i *Instr) Def() VReg {
	switch i.Kind {
	case OpConst, OpCopy, OpBin, OpBinImm, OpNeg, OpNot, OpLoadSlot,
		OpSlotAddr, OpGlobalAddr, OpLoad, OpFuncAddr:
		return i.Dst
	case OpCall, OpCallInd, OpSyscall:
		return i.Dst // may be NoVReg for void calls
	}
	return NoVReg
}

// Block is a basic block: straight-line instructions ending in one
// terminator.
type Block struct {
	ID  int
	Ins []Instr
}

// Term returns the block terminator.
func (b *Block) Term() *Instr {
	if len(b.Ins) == 0 {
		return nil
	}
	t := &b.Ins[len(b.Ins)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns successor block ids.
func (b *Block) Succs() []int {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Kind {
	case OpJmp:
		return []int{t.Blk}
	case OpBr, OpBrImm:
		if t.Blk == t.Blk2 {
			return []int{t.Blk}
		}
		return []int{t.Blk, t.Blk2}
	}
	return nil
}

// Func is a single function. Parameters are v0..v(NParams-1); NSlots local
// word-sized stack slots are addressable via LoadSlot/StoreSlot; slots
// pinned by OpSlotAddr are recorded in FixedSlots by Validate.
type Func struct {
	Name       string
	NParams    int
	NVRegs     int
	NSlots     int
	Blocks     []*Block
	FixedSlots map[int]bool
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Block returns the block with the given id.
func (f *Func) Block(id int) *Block { return f.Blocks[id] }

// Global is a word-aligned data object.
type Global struct {
	Name string
	Size uint32
	Init []byte
}

// Module is a compilation unit.
type Module struct {
	Name    string
	Funcs   []*Func
	FuncIdx map[string]int
	Globals []Global
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	if i, ok := m.FuncIdx[name]; ok {
		return m.Funcs[i]
	}
	return nil
}

// Validate checks module well-formedness and computes FixedSlots for every
// function: one terminator per block (as the final instruction), in-range
// vregs/slots/blocks, and resolvable call targets.
func (m *Module) Validate() error {
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("prog: %s: no blocks", f.Name)
		}
		if f.FixedSlots == nil {
			f.FixedSlots = make(map[int]bool)
		}
		for bi, b := range f.Blocks {
			if b.ID != bi {
				return fmt.Errorf("prog: %s: block %d has id %d", f.Name, bi, b.ID)
			}
			if b.Term() == nil {
				return fmt.Errorf("prog: %s: block %d lacks terminator", f.Name, bi)
			}
			for ii := range b.Ins {
				in := &b.Ins[ii]
				if in.IsTerminator() && ii != len(b.Ins)-1 {
					return fmt.Errorf("prog: %s: block %d: terminator mid-block at %d", f.Name, bi, ii)
				}
				for _, u := range in.Uses() {
					if int(u) >= f.NVRegs || u < 0 {
						return fmt.Errorf("prog: %s: block %d ins %d: vreg %d out of range", f.Name, bi, ii, u)
					}
				}
				if d := in.Def(); d != NoVReg && int(d) >= f.NVRegs {
					return fmt.Errorf("prog: %s: block %d ins %d: def vreg %d out of range", f.Name, bi, ii, d)
				}
				switch in.Kind {
				case OpLoadSlot, OpStoreSlot, OpSlotAddr:
					if in.Slot < 0 || in.Slot >= f.NSlots {
						return fmt.Errorf("prog: %s: slot %d out of range", f.Name, in.Slot)
					}
					if in.Kind == OpSlotAddr {
						f.FixedSlots[in.Slot] = true
					}
				case OpGlobalAddr:
					if in.Global < 0 || in.Global >= len(m.Globals) {
						return fmt.Errorf("prog: %s: global %d out of range", f.Name, in.Global)
					}
				case OpCall, OpFuncAddr:
					if _, ok := m.FuncIdx[in.Fn]; !ok {
						return fmt.Errorf("prog: %s: unknown function %q", f.Name, in.Fn)
					}
				case OpJmp:
					if in.Blk < 0 || in.Blk >= len(f.Blocks) {
						return fmt.Errorf("prog: %s: jmp to bad block %d", f.Name, in.Blk)
					}
				case OpBr, OpBrImm:
					if in.Blk < 0 || in.Blk >= len(f.Blocks) || in.Blk2 < 0 || in.Blk2 >= len(f.Blocks) {
						return fmt.Errorf("prog: %s: branch to bad blocks %d/%d", f.Name, in.Blk, in.Blk2)
					}
				}
			}
		}
	}
	return nil
}
