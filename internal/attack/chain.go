package attack

import (
	"fmt"
	"sort"

	"hipstr/internal/gadget"
	"hipstr/internal/isa"
)

// ReturnIntoLibc builds the classic return-into-libc payload (§2): the
// overflow overwrites vuln's return address with libc_execve's entry and
// places the arguments where the native calling convention will read them.
func (v *Victim) ReturnIntoLibc() []uint32 {
	retIdx := v.retIndex()
	ex := v.Bin.Func("libc_execve")
	p := make([]uint32, retIdx+6)
	for i := 0; i < retIdx; i++ {
		p[i] = 0x41414141 // classic filler
	}
	p[retIdx] = ex.Entry[isa.X86]
	p[retIdx+1] = 0xDEADC0DE // execve's own return address
	p[retIdx+2] = v.ShellStr // path
	p[retIdx+3] = 0          // argv
	p[retIdx+4] = 0          // envp
	return p
}

// retIndex is the payload word index that lands on vuln's canonical
// return-address slot.
func (v *Victim) retIndex() int {
	return int((v.Vuln.RetAddrOff() - v.BufOff) / 4)
}

// ChainStep documents one gadget of a built chain.
type ChainStep struct {
	Gadget *gadget.Gadget
	Sets   map[isa.Reg]uint32
}

// BuildClassicChain constructs a Figure 1-style ROP chain: pop gadgets
// establish register state, then control returns into the execve stub with
// attacker arguments. It returns the payload and the chain description.
func (v *Victim) BuildClassicChain() ([]uint32, []ChainStep, error) {
	gs := gadget.Mine(v.Bin, isa.X86, 0)
	an := gadget.NewAnalyzer(v.Bin)
	type cand struct {
		g *gadget.Gadget
		e gadget.Effect
	}
	var cands []cand
	for i := range gs {
		e := an.NativeEffect(&gs[i])
		if e.Viable() && e.SPDelta > 0 && e.SPDelta%4 == 0 && e.SPDelta < 4*200 {
			cands = append(cands, cand{&gs[i], e})
		}
	}
	// Shortest gadgets first: fewer side effects.
	sort.Slice(cands, func(i, j int) bool { return cands[i].g.Len < cands[j].g.Len })

	words := map[int]uint32{}
	set := func(idx int, val uint32) bool {
		if old, ok := words[idx]; ok && old != val {
			return false
		}
		if idx < 0 || idx >= NetBufWords-1 {
			return false
		}
		words[idx] = val
		return true
	}

	retIdx := v.retIndex()
	entry := retIdx + 1 // SP index after the first address pops
	var steps []ChainStep
	established := map[isa.Reg]bool{}

	// Pick up to two pop gadgets for distinct registers (demonstrating
	// state establishment), then finish with the execve stub.
	want := 2
	cursorAddr := retIdx // where the next gadget address must be written
	for _, c := range cands {
		if len(steps) >= want {
			break
		}
		var target isa.Reg = isa.NoReg
		for r := range c.e.Pops {
			if !established[r] {
				target = r
				break
			}
		}
		if target == isa.NoReg {
			continue
		}
		clobbers := false
		for _, r := range c.e.Clobbered {
			if established[r] {
				clobbers = true
			}
		}
		for r := range c.e.Pops {
			if established[r] && r != target {
				clobbers = true
			}
		}
		if clobbers {
			continue
		}
		// Tentatively lay out this gadget.
		ok := set(cursorAddr, c.g.Addr)
		vals := map[isa.Reg]uint32{}
		for r, slot := range c.e.Pops {
			val := uint32(0x51e77000) + uint32(r)
			ok = ok && set(entry+slot, val)
			vals[r] = val
		}
		nextAddrIdx := entry + c.e.NextSlot
		nextEntry := entry + int(c.e.SPDelta)/4
		if !ok || nextAddrIdx >= NetBufWords-1 || nextEntry >= NetBufWords-8 {
			continue
		}
		steps = append(steps, ChainStep{Gadget: c.g, Sets: vals})
		for r := range c.e.Pops {
			established[r] = true
		}
		cursorAddr = nextAddrIdx
		entry = nextEntry
	}
	if len(steps) == 0 {
		return nil, nil, fmt.Errorf("attack: no usable pop gadgets for a chain")
	}
	// Terminal: return into the execve stub.
	ex := v.Bin.Func("libc_execve")
	if !set(cursorAddr, ex.Entry[isa.X86]) ||
		!set(entry, 0xDEADC0DE) ||
		!set(entry+1, v.ShellStr) ||
		!set(entry+2, 0) || !set(entry+3, 0) {
		return nil, nil, fmt.Errorf("attack: chain layout collision")
	}
	maxIdx := 0
	for i := range words {
		if i > maxIdx {
			maxIdx = i
		}
	}
	payload := make([]uint32, maxIdx+1)
	for i := range payload {
		payload[i] = 0x42424242
	}
	for i, w := range words {
		payload[i] = w
	}
	return payload, steps, nil
}

// SprayPayload builds the strongest payload available to a PSR-aware
// attacker within the protocol's reach: every word of the overflow is the
// execve stub's address, hoping one lands on the relocated return-address
// slot. Under an 8 KiB randomization space and a bounded overflow, the
// relocated slot is overwhelmingly likely to be out of reach.
func (v *Victim) SprayPayload(words int) []uint32 {
	if words > NetBufWords-1 {
		words = NetBufWords - 1
	}
	ex := v.Bin.Func("libc_execve")
	p := make([]uint32, words)
	for i := range p {
		p[i] = ex.Entry[isa.X86]
	}
	return p
}
