package migrate_test

import (
	"reflect"
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/migrate"
	"hipstr/internal/proc"
	"hipstr/internal/testprogs"
)

const maxSteps = 20_000_000

func runNative(t *testing.T, bin *fatbin.Binary, k isa.Kind) *proc.Process {
	t.Helper()
	p, err := proc.New(bin, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunToExit(maxSteps); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMigrationPreservesBehavior is the HIPStR correctness core: with
// migration probability 1 and a tiny RAT forcing frequent security events,
// execution ping-pongs between the ISAs — and must still produce exactly
// the native behavior.
func TestMigrationPreservesBehavior(t *testing.T) {
	for name, tc := range testprogs.All() {
		bin, err := compiler.Compile(tc.Mod)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		native := runNative(t, bin, isa.X86)
		for seed := int64(0); seed < 3; seed++ {
			t.Run(name, func(t *testing.T) {
				cfg := dbt.DefaultConfig()
				cfg.Seed = seed
				cfg.RATSize = 2 // force return misses -> migration attempts
				cfg.MigrateProb = 1.0
				vm, err := dbt.New(bin, isa.X86, cfg)
				if err != nil {
					t.Fatal(err)
				}
				eng := migrate.New()
				vm.Migrator = eng
				if _, err := vm.Run(maxSteps); err != nil {
					t.Fatalf("seed %d: run: %v", seed, err)
				}
				if !vm.P.Exited {
					t.Fatalf("seed %d: did not exit", seed)
				}
				if vm.P.ExitCode != native.ExitCode {
					t.Errorf("seed %d: exit %d, native %d", seed, vm.P.ExitCode, native.ExitCode)
				}
				if !reflect.DeepEqual(vm.P.Trace, native.Trace) {
					t.Errorf("seed %d: trace diverged", seed)
				}
			})
		}
	}
}

// TestMigrationActuallyHappens drives a call-chain workload whose distinct
// return sites overwhelm a tiny RAT, so each return miss migrates.
func TestMigrationActuallyHappens(t *testing.T) {
	bin, err := compiler.Compile(testprogs.CallChain(16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.RATSize = 2
	cfg.MigrateProb = 1.0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := migrate.New()
	vm.Migrator = eng
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	want := uint32(7 + 15*16/2)
	if vm.P.ExitCode != want {
		t.Fatalf("exit %d, want %d", vm.P.ExitCode, want)
	}
	if eng.Stats.Migrations == 0 {
		t.Fatal("no migrations occurred despite RAT pressure")
	}
	if vm.Stats.SecurityMigrations == 0 {
		t.Fatal("VM did not count security migrations")
	}
	if eng.Stats.FramesMoved == 0 || eng.Stats.ObjectsMoved == 0 {
		t.Fatal("migration moved no state")
	}
	if eng.Stats.TotalCostMicros <= 0 {
		t.Fatal("cost model not accounted")
	}
}

// TestEntryMigrationViaIndirectCalls exercises the callee-entry boundary:
// indirect call targets always compulsory-miss on first dispatch.
func TestEntryMigrationViaIndirectCalls(t *testing.T) {
	tc := testprogs.All()["table"]
	bin, err := compiler.Compile(tc.Mod)
	if err != nil {
		t.Fatal(err)
	}
	native := runNative(t, bin, isa.X86)
	for seed := int64(0); seed < 5; seed++ {
		cfg := dbt.DefaultConfig()
		cfg.Seed = seed
		cfg.MigrateProb = 1.0
		vm, err := dbt.New(bin, isa.X86, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := migrate.New()
		vm.Migrator = eng
		if _, err := vm.Run(maxSteps); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if vm.P.ExitCode != native.ExitCode {
			t.Fatalf("seed %d: exit %d, want %d", seed, vm.P.ExitCode, native.ExitCode)
		}
		if eng.Stats.Migrations == 0 {
			t.Fatalf("seed %d: indirect-call misses did not migrate", seed)
		}
	}
}

// TestBidirectionalPingPong verifies multiple migrations in both
// directions still converge on the right answer.
func TestBidirectionalPingPong(t *testing.T) {
	bin, err := compiler.Compile(testprogs.Fib(14))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.RATSize = 1
	cfg.MigrateProb = 1.0
	vm, err := dbt.New(bin, isa.ARM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := migrate.New()
	vm.Migrator = eng
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if vm.P.ExitCode != 377 {
		t.Fatalf("fib(14) = %d, want 377", vm.P.ExitCode)
	}
	if eng.Stats.Migrations < 2 {
		t.Fatalf("expected repeated migrations, got %d", eng.Stats.Migrations)
	}
}

func TestSafetyAnalysisShape(t *testing.T) {
	bin, err := compiler.Compile(testprogs.NestedLoops(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	onDemand := migrate.AnalyzeSafety(bin, migrate.DefaultPolicy())
	legacy := migrate.AnalyzeSafety(bin, migrate.Policy{OnDemand: false})
	for _, k := range isa.Kinds {
		od, lg := onDemand.Fraction(k), legacy.Fraction(k)
		if od < lg {
			t.Fatalf("%s: on-demand fraction %.2f below legacy %.2f", k, od, lg)
		}
		if od <= 0 || od > 1 {
			t.Fatalf("%s: fraction %.2f out of range", k, od)
		}
	}
	// Loop-heavy code must show the on-demand improvement (the paper's
	// 45% -> 78%).
	if onDemand.Fraction(isa.X86) <= legacy.Fraction(isa.X86) {
		t.Fatal("on-demand transformation shows no improvement on loop code")
	}
}

func TestCostModelDirectionAsymmetry(t *testing.T) {
	toX86 := migrate.CostMicros(isa.X86, 5, 200)
	toARM := migrate.CostMicros(isa.ARM, 5, 200)
	if toARM <= toX86 {
		t.Fatalf("x86->ARM (%f) should cost more than ARM->x86 (%f)", toARM, toX86)
	}
}

func TestUnsafePointRefusesGracefully(t *testing.T) {
	// A gadget-like resume address (mid-block, not a call site) must be
	// refused without corrupting state.
	bin, err := compiler.Compile(testprogs.SumLoop(50))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := migrate.New()
	fn := bin.Func("main")
	if ok := eng.Migrate(vm, fn.Entry[isa.X86]+3, true); ok {
		t.Fatal("mid-instruction address accepted for migration")
	}
	if eng.Stats.Unsafe != 1 {
		t.Fatalf("unsafe not counted: %+v", eng.Stats)
	}
	// Execution still completes on the original ISA.
	if _, err := vm.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if vm.P.ExitCode != 1225 {
		t.Fatalf("exit %d want 1225", vm.P.ExitCode)
	}
}
