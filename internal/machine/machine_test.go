package machine

import (
	"errors"
	"testing"

	"hipstr/internal/isa"
	"hipstr/internal/mem"
)

const (
	textBase  = 0x08048000
	stackTop  = 0x0800_0000
	stackSize = 0x10000
)

// load assembles the program and returns a machine ready to run it.
func load(t *testing.T, k isa.Kind, build func(a *isa.Asm)) (*Machine, map[string]uint32) {
	t.Helper()
	a := isa.NewAsm(k, textBase)
	build(a)
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ram := mem.New()
	ram.Map("text", textBase, uint32(len(code)+mem.PageSize), mem.PermRX)
	ram.WriteForce(textBase, code)
	ram.Map("stack", stackTop-stackSize, stackSize, mem.PermRW)
	m := New(k, ram)
	m.PC = textBase
	m.SetSP(stackTop - 16)
	return m, labels
}

func mustRun(t *testing.T, m *Machine) {
	t.Helper()
	if _, err := m.Run(100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
}

func TestX86Arithmetic(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(10)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EBX), Src: isa.I(3)})
		a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(isa.EAX), Src: isa.R(isa.EBX)}) // 13
		a.Emit(isa.Inst{Op: isa.OpShl, Dst: isa.R(isa.EAX), Src: isa.I(2)})       // 52
		a.Emit(isa.Inst{Op: isa.OpSub, Dst: isa.R(isa.EAX), Src: isa.I(2)})       // 50
		a.Emit(isa.Inst{Op: isa.OpMul, Dst: isa.R(isa.EAX), Src: isa.R(isa.EBX)}) // 150
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	mustRun(t, m)
	if got := m.Regs[isa.EAX]; got != 150 {
		t.Fatalf("eax = %d, want 150", got)
	}
}

func TestARMArithmetic(t *testing.T) {
	m, _ := load(t, isa.ARM, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.R0), Src: isa.I(7)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.R1), Src: isa.I(5)})
		a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(isa.R2), Src: isa.R(isa.R1), Src2: isa.R(isa.R0)}) // 12
		a.Emit(isa.Inst{Op: isa.OpRsb, Dst: isa.R(isa.R3), Src: isa.I(0), Src2: isa.R(isa.R2)})      // -12
		a.Emit(isa.Inst{Op: isa.OpMul, Dst: isa.R(isa.R4), Src: isa.R(isa.R2), Src2: isa.R(isa.R1)}) // 60
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	mustRun(t, m)
	if m.Regs[isa.R2] != 12 || int32(m.Regs[isa.R3]) != -12 || m.Regs[isa.R4] != 60 {
		t.Fatalf("r2=%d r3=%d r4=%d", m.Regs[isa.R2], int32(m.Regs[isa.R3]), m.Regs[isa.R4])
	}
}

func TestX86StackOps(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.ECX), Src: isa.I(0x1234)})
		a.Emit(isa.Inst{Op: isa.OpPush, Src: isa.R(isa.ECX)})
		a.Emit(isa.Inst{Op: isa.OpPop, Dst: isa.R(isa.EDX)})
		a.Emit(isa.Inst{Op: isa.OpPush, Src: isa.I(0x77)})
		a.Emit(isa.Inst{Op: isa.OpPop, Dst: isa.R(isa.ESI)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	sp0 := m.SP()
	mustRun(t, m)
	if m.Regs[isa.EDX] != 0x1234 || m.Regs[isa.ESI] != 0x77 {
		t.Fatalf("edx=%#x esi=%#x", m.Regs[isa.EDX], m.Regs[isa.ESI])
	}
	if m.SP() != sp0 {
		t.Fatalf("stack imbalance: %#x -> %#x", sp0, m.SP())
	}
}

func TestX86MemoryAddressing(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		// Store through [esp+8], load back through base+index*4.
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(isa.ESP, 8), Src: isa.I(0xBEEF)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EBX), Src: isa.R(isa.ESP)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.ECX), Src: isa.I(2)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX),
			Src: isa.M(isa.MemRef{HasBase: true, Base: isa.EBX, HasIndex: true, Index: isa.ECX, Scale: 4})})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	mustRun(t, m)
	if m.Regs[isa.EAX] != 0xBEEF {
		t.Fatalf("eax=%#x want 0xbeef", m.Regs[isa.EAX])
	}
}

func TestBranching(t *testing.T) {
	for _, k := range isa.Kinds {
		m, _ := load(t, k, func(a *isa.Asm) {
			counter, limit := isa.R(0), isa.R(1)
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: counter, Src: isa.I(0)})
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: limit, Src: isa.I(10)})
			a.Label("loop")
			a.Emit(isa.Inst{Op: isa.OpAdd, Dst: counter, Src: isa.I(1)})
			a.Emit(isa.Inst{Op: isa.OpCmp, Dst: counter, Src: limit})
			a.Jcc(isa.CondLT, "loop")
			a.Emit(isa.Inst{Op: isa.OpHlt})
		})
		mustRun(t, m)
		if m.Regs[0] != 10 {
			t.Fatalf("%s: counter=%d want 10", k, m.Regs[0])
		}
	}
}

func TestX86CallRet(t *testing.T) {
	m, labels := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(1)})
		a.Call("fn")
		a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(isa.EAX), Src: isa.I(100)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
		a.Label("fn")
		a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(isa.EAX), Src: isa.I(10)})
		a.Emit(isa.Inst{Op: isa.OpRet})
	})
	_ = labels
	mustRun(t, m)
	if m.Regs[isa.EAX] != 111 {
		t.Fatalf("eax=%d want 111", m.Regs[isa.EAX])
	}
}

func TestARMCallReturnViaLR(t *testing.T) {
	m, _ := load(t, isa.ARM, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.R0), Src: isa.I(1)})
		a.Call("fn")
		a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(isa.R0), Src: isa.I(100)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
		a.Label("fn")
		a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(isa.R0), Src: isa.I(10)})
		a.Emit(isa.Inst{Op: isa.OpBx, Dst: isa.R(isa.LR)})
	})
	mustRun(t, m)
	if m.Regs[isa.R0] != 111 {
		t.Fatalf("r0=%d want 111", m.Regs[isa.R0])
	}
}

func TestARMPushPopWithPC(t *testing.T) {
	// A callee that saves LR with push and returns by popping into PC.
	m, _ := load(t, isa.ARM, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.R4), Src: isa.I(5)})
		a.Call("fn")
		a.Emit(isa.Inst{Op: isa.OpHlt})
		a.Label("fn")
		a.Emit(isa.Inst{Op: isa.OpPushM, RegMask: 1<<isa.R4 | 1<<isa.LR})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.R4), Src: isa.I(99)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.R0), Src: isa.R(isa.R4)})
		a.Emit(isa.Inst{Op: isa.OpPopM, RegMask: 1<<isa.R4 | 1<<isa.PC})
	})
	mustRun(t, m)
	if m.Regs[isa.R0] != 99 {
		t.Fatalf("r0=%d want 99", m.Regs[isa.R0])
	}
	if m.Regs[isa.R4] != 5 {
		t.Fatalf("r4=%d want 5 (callee-save restored)", m.Regs[isa.R4])
	}
}

func TestX86DivSemantics(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(17)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EBX), Src: isa.I(5)})
		a.Emit(isa.Inst{Op: isa.OpDiv, Dst: isa.R(isa.EAX), Src: isa.R(isa.EBX)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	mustRun(t, m)
	if m.Regs[isa.EAX] != 3 || m.Regs[isa.EDX] != 2 {
		t.Fatalf("eax=%d edx=%d want 3,2", m.Regs[isa.EAX], m.Regs[isa.EDX])
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpXor, Dst: isa.R(isa.EBX), Src: isa.R(isa.EBX)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(1)})
		a.Emit(isa.Inst{Op: isa.OpDiv, Dst: isa.R(isa.EAX), Src: isa.R(isa.EBX)})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	_, err := m.Run(100)
	if !errors.Is(err, ErrDivZero) {
		t.Fatalf("want ErrDivZero, got %v", err)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.M(isa.MemRef{Disp: 0x40000000})})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	_, err := m.Run(100)
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want mem.Fault, got %v", err)
	}
	if f.Addr != 0x40000000 {
		t.Fatalf("fault addr %#x", f.Addr)
	}
}

func TestNonExecutableFetchFaults(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	m.PC = m.SP() // jump into the stack: mapped rw, not x
	err := m.Step()
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want mem.Fault on NX fetch, got %v", err)
	}
}

func TestControlHookRedirects(t *testing.T) {
	m, labels := load(t, isa.X86, func(a *isa.Asm) {
		a.Call("a")
		a.Emit(isa.Inst{Op: isa.OpHlt})
		a.Label("a")
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(1)})
		a.Emit(isa.Inst{Op: isa.OpRet})
		a.Label("b")
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(2)})
		a.Emit(isa.Inst{Op: isa.OpRet})
	})
	// Redirect the call from a to b, like the RAT redirecting through the
	// code cache.
	var sawCall, sawRet bool
	m.OnControl = func(mm *Machine, in *isa.Inst, kind ControlKind, target, retAddr uint32) (uint32, uint32, error) {
		switch kind {
		case CtlCall:
			sawCall = true
			if target == labels["a"] {
				return labels["b"], retAddr, nil
			}
		case CtlRet:
			sawRet = true
		}
		return target, retAddr, nil
	}
	mustRun(t, m)
	if !sawCall || !sawRet {
		t.Fatalf("hooks not invoked: call=%v ret=%v", sawCall, sawRet)
	}
	if m.Regs[isa.EAX] != 2 {
		t.Fatalf("eax=%d want 2 (redirected)", m.Regs[isa.EAX])
	}
}

func TestSyscallHandler(t *testing.T) {
	var got []uint32
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.I(11)})
		a.Emit(isa.Inst{Op: isa.OpSys, Imm: 0x80})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	m.Syscall = func(mm *Machine, vector int32) error {
		got = append(got, uint32(vector), mm.Regs[isa.EAX])
		return nil
	}
	mustRun(t, m)
	if len(got) != 2 || got[0] != 0x80 || got[1] != 11 {
		t.Fatalf("syscall saw %v", got)
	}
}

func TestMissingSyscallHandler(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpSys, Imm: 0x80})
	})
	_, err := m.Run(10)
	if !errors.Is(err, ErrNoSyscall) {
		t.Fatalf("want ErrNoSyscall, got %v", err)
	}
}

func TestFlagsConditions(t *testing.T) {
	cases := []struct {
		a, b uint32
		cond isa.Cond
		want bool
	}{
		{5, 5, isa.CondEQ, true},
		{5, 6, isa.CondEQ, false},
		{5, 6, isa.CondNE, true},
		{5, 6, isa.CondLT, true},
		{6, 5, isa.CondLT, false},
		{0xFFFFFFFF, 1, isa.CondLT, true}, // -1 < 1 signed
		{0xFFFFFFFF, 1, isa.CondB, false}, // huge unsigned
		{1, 0xFFFFFFFF, isa.CondB, true},  // 1 below huge unsigned
		{7, 7, isa.CondGE, true},
		{7, 7, isa.CondLE, true},
		{8, 7, isa.CondGT, true},
	}
	for _, c := range cases {
		var m Machine
		m.cmpFlags(c.a, c.b)
		if got := m.Flags.Eval(c.cond); got != c.want {
			t.Errorf("cmp(%#x,%#x) %s = %v, want %v", c.a, c.b, c.cond, got, c.want)
		}
	}
}

func TestLeave(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Emit(isa.Inst{Op: isa.OpPush, Src: isa.R(isa.EBP)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EBP), Src: isa.R(isa.ESP)})
		a.Emit(isa.Inst{Op: isa.OpSub, Dst: isa.R(isa.ESP), Src: isa.I(0x40)})
		a.Emit(isa.Inst{Op: isa.OpLeave})
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	m.Regs[isa.EBP] = 0xAABB
	sp0 := m.SP()
	mustRun(t, m)
	if m.SP() != sp0 {
		t.Fatalf("leave did not rebalance stack: %#x vs %#x", m.SP(), sp0)
	}
	if m.Regs[isa.EBP] != 0xAABB {
		t.Fatalf("ebp=%#x not restored", m.Regs[isa.EBP])
	}
}

func TestRunStepLimit(t *testing.T) {
	m, _ := load(t, isa.X86, func(a *isa.Asm) {
		a.Label("spin")
		a.Jmp("spin")
	})
	n, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("executed %d, want 1000", n)
	}
}

func TestMovtBuildsConstant(t *testing.T) {
	m, _ := load(t, isa.ARM, func(a *isa.Asm) {
		for _, in := range isa.MaterializeARMConst(isa.R5, 0xDEADBEEF) {
			a.Emit(in)
		}
		a.Emit(isa.Inst{Op: isa.OpHlt})
	})
	mustRun(t, m)
	if m.Regs[isa.R5] != 0xDEADBEEF {
		t.Fatalf("r5=%#x want 0xdeadbeef", m.Regs[isa.R5])
	}
}
