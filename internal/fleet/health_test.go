package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hipstr/internal/health"
)

// monitorHost runs a libquantum fleet with a health monitor sampling its
// aggregate registry every interval from a dedicated goroutine (the
// hipstr-fleet wiring in miniature), keeps sampling after the drain until
// stop returns true or the deadline passes, and returns the host+monitor.
func monitorHost(t *testing.T, cfg Config, n int, interval time.Duration,
	settle time.Duration, stop func(*health.Monitor) bool) (*Host, *health.Monitor) {
	t.Helper()
	h := NewHost(cfg)
	mon := health.NewMonitor(health.Config{
		Rules:     DefaultHealthRules(),
		Telemetry: h.Telemetry(),
		Recorder: health.RecorderConfig{
			Events:  h.Telemetry().Trace.Tail,
			Tenants: h,
		},
	})
	if err := h.AddWorkload("libquantum"); err != nil {
		t.Fatalf("AddWorkload: %v", err)
	}
	h.MarkReady()
	h.Start(context.Background())
	for i := 0; i < n; i++ {
		if _, err := h.Admit("libquantum"); err != nil {
			t.Fatalf("Admit %d: %v", i, err)
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(settle)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for range tick.C {
			mon.ObserveNow(h.Telemetry().Snapshot())
			if time.Now().After(deadline) || stop(mon) {
				return
			}
		}
	}()

	h.Close()
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	<-done
	return h, mon
}

// TestFleetRespawnStormIncident is the health engine's end-to-end
// acceptance: a fleet under heavy attack injection must open the built-in
// respawn-storm incident with offender tenants and the triggering series
// window, and resolve it once the storm decays out of the rate window.
func TestFleetRespawnStormIncident(t *testing.T) {
	cfg := quotaConfig(4)
	cfg.Policy.AttackProb = 0.9
	cfg.Policy.RespawnLimit = 3

	stormDone := func(m *health.Monitor) bool {
		opened, resolved, _ := m.Recorder.Counts()
		return opened > 0 && opened == resolved
	}
	h, mon := monitorHost(t, cfg, 64, 5*time.Millisecond, 10*time.Second, stormDone)

	if h.Aggregates().Respawns == 0 {
		t.Fatal("storm config produced no respawns; the test premise is broken")
	}
	var storm *health.Incident
	for _, inc := range mon.Recorder.Incidents() {
		if inc.Rule.Name == "respawn-storm" {
			inc := inc
			storm = &inc
			break
		}
	}
	if storm == nil {
		t.Fatalf("no respawn-storm incident; incidents: %+v", mon.Recorder.Incidents())
	}
	if len(storm.Offenders) == 0 {
		t.Fatal("respawn-storm incident has no offender tenants")
	}
	for _, o := range storm.Offenders {
		if o.Score <= 0 {
			t.Fatalf("offender %s has score %v", o.ID, o.Score)
		}
	}
	if len(storm.Window) == 0 {
		t.Fatal("respawn-storm incident captured no triggering window")
	}
	if len(storm.Events) == 0 {
		t.Fatal("respawn-storm incident captured no trace events")
	}
	if storm.Open() {
		t.Fatal("respawn-storm incident never resolved after the drain settle")
	}
}

// TestFleetQuietRunNoIncidents: with attack injection off, a drain opens
// nothing — the built-in rules' thresholds sit far above a healthy small
// fleet's behavior, so the health engine is silent on the happy path.
func TestFleetQuietRunNoIncidents(t *testing.T) {
	cfg := quotaConfig(4)
	_, mon := monitorHost(t, cfg, 32, 5*time.Millisecond, 500*time.Millisecond,
		func(*health.Monitor) bool { return false })
	if opened, _, _ := mon.Recorder.Counts(); opened != 0 {
		t.Fatalf("quiet fleet opened %d incidents: %+v", opened, mon.Recorder.Incidents())
	}
}

// TestFleetHistoryScrapeDuringExecution hammers /history and /incidents
// over HTTP while the fleet executes and the monitor samples — the
// concurrent reader/writer contract the -race build checks.
func TestFleetHistoryScrapeDuringExecution(t *testing.T) {
	cfg := quotaConfig(4)
	cfg.Policy.AttackProb = 0.5
	cfg.Policy.RespawnLimit = 2

	h := NewHost(cfg)
	mon := health.NewMonitor(health.Config{
		Rules:     DefaultHealthRules(),
		Telemetry: h.Telemetry(),
		Recorder:  health.RecorderConfig{Events: h.Telemetry().Trace.Tail, Tenants: h},
	})
	if err := h.AddWorkload("libquantum"); err != nil {
		t.Fatalf("AddWorkload: %v", err)
	}
	h.Start(context.Background())

	mux := httptest.NewServer(mon.HistoryHandler())
	defer mux.Close()
	incSrv := httptest.NewServer(mon.Recorder.Handler())
	defer incSrv.Close()

	quit := make(chan struct{})
	var wg sync.WaitGroup

	// The single monitor writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				mon.ObserveNow(h.Telemetry().Snapshot())
			case <-quit:
				return
			}
		}
	}()

	// Concurrent scrapers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			urls := []string{
				mux.URL + "/history",
				mux.URL + fmt.Sprintf("/history?series=fleet.respawns,fleet.active&points=%d", 16+g),
				incSrv.URL + "/incidents",
			}
			cl := mux.Client()
			for i := 0; ; i++ {
				select {
				case <-quit:
					return
				default:
				}
				resp, err := cl.Get(urls[i%len(urls)])
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}

	for i := 0; i < 48; i++ {
		if _, err := h.Admit("libquantum"); err != nil {
			t.Fatalf("Admit: %v", err)
		}
	}
	h.Close()
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	close(quit)
	wg.Wait()

	if mon.History.Len() == 0 {
		t.Fatal("monitor recorded no samples during the run")
	}
}
