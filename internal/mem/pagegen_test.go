package mem

import "testing"

func TestPageGenTracksExecutableWrites(t *testing.T) {
	m := New()
	m.Map("text", 0x1000, 2*PageSize, PermRWX)
	m.Map("data", 0x1000+2*PageSize, PageSize, PermRW)
	base := m.CodeGen()
	otherBefore := m.PageGen(0x1000/PageSize + 1)

	if err := m.Write(0x1000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	g := m.CodeGen()
	if g != base+1 {
		t.Fatalf("code gen %d -> %d, want one bump", base, g)
	}
	if got := m.PageGen(0x1000 / PageSize); got != g {
		t.Fatalf("written page gen = %d, want %d", got, g)
	}
	if got := m.PageGen(0x1000/PageSize + 1); got != otherBefore {
		t.Fatalf("untouched exec page gen = %d, want %d (unchanged)", got, otherBefore)
	}

	// Writes to non-executable pages are invisible to code consumers.
	if err := m.Write(0x1000+2*PageSize, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if m.CodeGen() != g {
		t.Fatalf("data write bumped code gen %d -> %d", g, m.CodeGen())
	}
}

func TestWriteSpanningPagesBumpsEachExecPage(t *testing.T) {
	m := New()
	m.Map("text", 0, 2*PageSize, PermRWX)
	buf := make([]byte, 8)
	if err := m.Write(PageSize-4, buf); err != nil {
		t.Fatal(err)
	}
	g := m.CodeGen()
	if p0, p1 := m.PageGen(0), m.PageGen(1); p0 != g || p1 != g {
		t.Fatalf("straddling write: page gens %d,%d want both %d", p0, p1, g)
	}
	w, ok := m.CodeWriteAt(g)
	if !ok || w.Addr != PageSize-4 || w.Size != 8 {
		t.Fatalf("write log entry = %+v ok=%v, want addr=%d size=8", w, ok, PageSize-4)
	}
}

func TestInvalidateCodeRangeScopesToPages(t *testing.T) {
	m := New()
	m.Map("text", 0, 4*PageSize, PermRX)
	m.InvalidateCodeRange(PageSize, PageSize) // page 1 only
	g := m.CodeGen()
	if got := m.PageGen(1); got != g {
		t.Fatalf("page 1 gen = %d, want %d", got, g)
	}
	for _, pn := range []uint32{0, 2, 3} {
		if got := m.PageGen(pn); got == g {
			t.Fatalf("page %d gen moved to %d; range should not cover it", pn, got)
		}
	}
	if m.CodeGenFloor() != 0 {
		t.Fatalf("ranged invalidation raised the floor to %d", m.CodeGenFloor())
	}
	before := m.CodeGen()
	m.InvalidateCodeRange(0, 0)
	if m.CodeGen() != before {
		t.Fatal("zero-size invalidation bumped the generation")
	}
}

func TestInvalidateCodeRaisesFloor(t *testing.T) {
	m := New()
	m.Map("text", 0, PageSize, PermRX)
	m.InvalidateCode()
	g := m.CodeGen()
	if m.CodeGenFloor() != g {
		t.Fatalf("floor = %d, want %d", m.CodeGenFloor(), g)
	}
	// The floor clamps every page up, even ones never individually bumped.
	if got := m.PageGen(0); got != g {
		t.Fatalf("page gen = %d, want floor %d", got, g)
	}
	// Full invalidations are deliberately absent from the write log: they
	// have no byte range to replay.
	if w, ok := m.CodeWriteAt(g); ok {
		t.Fatalf("full invalidation appeared in the write log: %+v", w)
	}
}

func TestCodeWriteLogRotates(t *testing.T) {
	m := New()
	m.Map("text", 0, 32*PageSize, PermRWX)
	first := m.CodeGen() + 1
	n := CodeWriteLogSize + 8
	for i := 0; i < n; i++ {
		m.InvalidateCodeRange(uint32(i%32)*PageSize, 4)
	}
	last := m.CodeGen()
	// Recent entries replay exactly; entries older than the ring are gone.
	for g := last - CodeWriteLogSize + 1; g <= last; g++ {
		w, ok := m.CodeWriteAt(g)
		if !ok {
			t.Fatalf("gen %d missing from log (last=%d)", g, last)
		}
		wantAddr := uint32((int(g-first))%32) * PageSize
		if w.Addr != wantAddr || w.Size != 4 {
			t.Fatalf("gen %d replayed %+v, want addr=%#x size=4", g, w, wantAddr)
		}
	}
	if _, ok := m.CodeWriteAt(last - CodeWriteLogSize); ok {
		t.Fatalf("gen %d should have rotated out", last-CodeWriteLogSize)
	}
}

func TestCloneCarriesPageGens(t *testing.T) {
	m := New()
	m.Map("text", 0, 2*PageSize, PermRWX)
	if err := m.Write(PageSize, []byte{1}); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if c.CodeGen() != m.CodeGen() || c.CodeGenFloor() != m.CodeGenFloor() {
		t.Fatalf("clone gen/floor %d/%d, want %d/%d",
			c.CodeGen(), c.CodeGenFloor(), m.CodeGen(), m.CodeGenFloor())
	}
	if c.PageGen(1) != m.PageGen(1) || c.PageGen(0) != m.PageGen(0) {
		t.Fatal("clone page generations diverge from original")
	}
	if w, ok := c.CodeWriteAt(c.CodeGen()); !ok || w.Addr != PageSize {
		t.Fatalf("clone write log entry = %+v ok=%v", w, ok)
	}
	// Divergence after the clone stays private to each side.
	if err := m.Write(0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if c.CodeGen() == m.CodeGen() {
		t.Fatal("write to original moved the clone's generation")
	}
}
