package attack_test

import (
	"testing"

	"hipstr/internal/attack"
	"hipstr/internal/core"
	"hipstr/internal/dbt"
)

func victim(t *testing.T) *attack.Victim {
	t.Helper()
	v, err := attack.BuildVictim(24)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func protectedCfg(seed int64, mode core.Mode) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.DBT.Seed = seed
	return cfg
}

// TestBenignRunsEverywhere: without a payload the victim runs cleanly both
// natively and protected.
func TestBenignRunsEverywhere(t *testing.T) {
	v := victim(t)
	out, err := v.AttackNative(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != attack.OutcomeNoEffect {
		t.Fatalf("benign native run: %v", out)
	}
	out, _, err = v.AttackProtected(protectedCfg(1, core.ModeHIPStR), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != attack.OutcomeNoEffect {
		t.Fatalf("benign protected run: %v", out)
	}
}

// TestReturnIntoLibcNativeSucceeds: the textbook attack spawns a shell on
// the unprotected system.
func TestReturnIntoLibcNativeSucceeds(t *testing.T) {
	v := victim(t)
	out, err := v.AttackNative(v.ReturnIntoLibc())
	if err != nil {
		t.Fatal(err)
	}
	if out != attack.OutcomeShell {
		t.Fatalf("native return-into-libc: %v, want shell", out)
	}
}

// TestReturnIntoLibcDefeatedByPSR: under PSR the return address is
// relocated and the calling convention randomized; the same payload must
// never spawn a shell across many randomizations.
func TestReturnIntoLibcDefeatedByPSR(t *testing.T) {
	v := victim(t)
	payload := v.ReturnIntoLibc()
	for seed := int64(0); seed < 10; seed++ {
		out, _, err := v.AttackProtected(protectedCfg(seed, core.ModePSR), payload)
		if err != nil {
			t.Fatal(err)
		}
		if out == attack.OutcomeShell {
			t.Fatalf("seed %d: PSR failed to stop return-into-libc", seed)
		}
	}
}

// TestClassicROPChainNativeSucceeds: a multi-gadget chain establishes
// register state and spawns the shell natively.
func TestClassicROPChainNativeSucceeds(t *testing.T) {
	v := victim(t)
	payload, steps, err := v.BuildClassicChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no chain steps")
	}
	t.Logf("chain of %d gadgets, payload %d words", len(steps), len(payload))
	out, err := v.AttackNative(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != attack.OutcomeShell {
		t.Fatalf("native ROP chain: %v, want shell", out)
	}
}

// TestClassicROPChainDefeatedByHIPStR: the same chain dies under the full
// defense, every time.
func TestClassicROPChainDefeatedByHIPStR(t *testing.T) {
	v := victim(t)
	payload, _, err := v.BuildClassicChain()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		out, _, err := v.AttackProtected(protectedCfg(seed, core.ModeHIPStR), payload)
		if err != nil {
			t.Fatal(err)
		}
		if out == attack.OutcomeShell {
			t.Fatalf("seed %d: HIPStR failed to stop the ROP chain", seed)
		}
	}
}

// TestSprayDefeatedByEntropy: even spraying the entire protocol budget
// with the stub address fails: the relocated return slot lies beyond the
// overflow's reach with overwhelming probability.
func TestSprayDefeatedByEntropy(t *testing.T) {
	v := victim(t)
	payload := v.SprayPayload(1024)
	shells := 0
	for seed := int64(0); seed < 10; seed++ {
		cfg := protectedCfg(seed, core.ModePSR)
		out, _, err := v.AttackProtected(cfg, payload)
		if err != nil {
			t.Fatal(err)
		}
		if out == attack.OutcomeShell {
			shells++
		}
	}
	if shells > 2 {
		t.Fatalf("spray succeeded %d/10 times; relocation entropy ineffective", shells)
	}
}

// TestDefenseReportsSecurityEvents: hijacked control flow shows up as
// code-cache-miss security events in the VM's counters.
func TestDefenseReportsSecurityEvents(t *testing.T) {
	v := victim(t)
	payload := v.SprayPayload(1024)
	cfg := protectedCfg(3, core.ModeHIPStR)
	cfg.DBT.MigrateProb = 1.0
	out, s, err := v.AttackProtected(cfg, payload)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("outcome %v, events %d, migrations %d", out, s.SecurityEvents(), s.Migrations())
	_ = dbt.ErrSecurityKill
}
