package obsrv

import (
	"sync"

	"hipstr/internal/telemetry"
)

// Pump decouples telemetry snapshotting from HTTP scraping. Registry
// collectors read non-atomic VM state, so Snapshot() is only safe on the
// goroutine driving the VM; that goroutine Publishes a fresh snapshot at
// chunk boundaries and HTTP handlers serve the latest published copy from
// any goroutine. Because each published snapshot is strictly newer,
// successive scrapes still observe monotonically increasing counters.
type Pump struct {
	mu   sync.RWMutex
	snap telemetry.Snapshot
	ok   bool
}

// Publish stores s as the snapshot scrapes will serve. Call it only from
// the goroutine that owns the VM (typically right after tel.Snapshot()).
func (p *Pump) Publish(s telemetry.Snapshot) {
	p.mu.Lock()
	p.snap = s
	p.ok = true
	p.mu.Unlock()
}

// Latest returns the most recently published snapshot; ok is false before
// the first Publish.
func (p *Pump) Latest() (telemetry.Snapshot, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.snap, p.ok
}
