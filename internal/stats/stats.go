// Package stats provides the small numeric helpers the experiment drivers
// share.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty or non-positive
// input).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Pct formats a ratio as a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Sci formats a large count in scientific notation.
func Sci(x float64) string { return fmt.Sprintf("%.2e", x) }

// Min and Max over a slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
