// Command metricsdiff loads two metrics snapshots (the JSON artifacts
// written by hipstr-run/hipstr-bench -metrics-out) and prints their
// counters, gauges, and histogram quantiles side by side, with deltas.
// Typical use: compare the same workload under two configurations, or two
// revisions of the VM.
//
//	hipstr-run -workload mcf -metrics-out a.json
//	hipstr-run -workload mcf -rat 64 -metrics-out b.json
//	metricsdiff a.json b.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"hipstr"
)

func load(path string) hipstr.MetricsSnapshot {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var s hipstr.MetricsSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return s
}

// keys returns the sorted union of both maps' keys.
func keys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	all := flag.Bool("all", false, "include unchanged metrics")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricsdiff [-all] a.json b.json")
		os.Exit(2)
	}
	pa, pb := flag.Arg(0), flag.Arg(1)
	a, b := load(pa), load(pb)
	fmt.Printf("a: %s\nb: %s\n", pa, pb)

	var counters [][4]string
	for _, k := range keys(a.Counters, b.Counters) {
		av, bv := a.Counters[k], b.Counters[k]
		if av == bv && !*all {
			continue
		}
		counters = append(counters, [4]string{k,
			fmt.Sprintf("%d", av), fmt.Sprintf("%d", bv),
			fmt.Sprintf("%+d", int64(bv)-int64(av))})
	}
	if len(counters) > 0 {
		fmt.Printf("\n== counters ==\n%-44s %14s %14s %12s\n", "name", "a", "b", "delta")
		for _, row := range counters {
			fmt.Printf("%-44s %14s %14s %12s\n", row[0], row[1], row[2], row[3])
		}
	}

	var gauges [][4]string
	for _, k := range keys(a.Gauges, b.Gauges) {
		av, bv := a.Gauges[k], b.Gauges[k]
		if av == bv && !*all {
			continue
		}
		gauges = append(gauges, [4]string{k,
			fmt.Sprintf("%.6g", av), fmt.Sprintf("%.6g", bv),
			fmt.Sprintf("%+.6g", bv-av)})
	}
	if len(gauges) > 0 {
		fmt.Printf("\n== gauges ==\n%-44s %14s %14s %12s\n", "name", "a", "b", "delta")
		for _, row := range gauges {
			fmt.Printf("%-44s %14s %14s %12s\n", row[0], row[1], row[2], row[3])
		}
	}

	printed := false
	for _, k := range keys(a.Histograms, b.Histograms) {
		ah, bh := a.Histograms[k], b.Histograms[k]
		if ah.Count == bh.Count && ah.Sum == bh.Sum && !*all {
			continue
		}
		if !printed {
			fmt.Printf("\n== histograms ==\n")
			printed = true
		}
		fmt.Printf("%s\n", k)
		fmt.Printf("  %-7s a %14s  b %14s  delta %+d\n", "count",
			fmt.Sprintf("%d", ah.Count), fmt.Sprintf("%d", bh.Count),
			int64(bh.Count)-int64(ah.Count))
		fmt.Printf("  %-7s a %14.6g  b %14.6g  delta %+.6g\n", "mean", ah.Mean, bh.Mean, bh.Mean-ah.Mean)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			aq, bq := ah.Quantile(q), bh.Quantile(q)
			fmt.Printf("  %-7s a %14.6g  b %14.6g  delta %+.6g\n",
				fmt.Sprintf("p%g", 100*q), aq, bq, bq-aq)
		}
	}
	if len(counters)+len(gauges) == 0 && !printed {
		fmt.Println("\nno differences.")
	}
}
