package core_test

import (
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/core"
	"hipstr/internal/telemetry"
	"hipstr/internal/testprogs"
)

// TestSystemTelemetry checks the shared observability pipeline: one
// registry spans the DBT and the migration engine, and migration events
// carry their modeled cost into the per-direction histograms.
func TestSystemTelemetry(t *testing.T) {
	bin, err := compiler.Compile(testprogs.AddressTaken())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(bin, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Telemetry() == nil || s.Telemetry() != s.VM.Telemetry() {
		t.Fatal("system and VM do not share one telemetry instance")
	}
	if _, err := s.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	snap := s.Telemetry().Snapshot()
	if snap.Counters["dbt.security_events"] != s.SecurityEvents() {
		t.Fatalf("registry security events %d != accessor %d",
			snap.Counters["dbt.security_events"], s.SecurityEvents())
	}
	if snap.Counters["dbt.migrations"] != s.Migrations() {
		t.Fatalf("registry migrations %d != accessor %d",
			snap.Counters["dbt.migrations"], s.Migrations())
	}
	if snap.Counters["migrate.attempts"] != s.Engine.Stats.Attempts {
		t.Fatalf("registry attempts %d != engine %d",
			snap.Counters["migrate.attempts"], s.Engine.Stats.Attempts)
	}
	// Per-direction cost histograms must account for every successful
	// migration.
	hist := snap.Histograms["migrate.cost_us.to_x86"]
	histARM := snap.Histograms["migrate.cost_us.to_arm"]
	if hist.Count+histARM.Count != s.Engine.Stats.Migrations {
		t.Fatalf("cost histograms hold %d observations, want %d migrations",
			hist.Count+histARM.Count, s.Engine.Stats.Migrations)
	}
	if s.Migrations() > 0 {
		found := map[telemetry.EventType]bool{}
		for _, e := range s.Telemetry().Trace.Events() {
			found[e.Type] = true
		}
		for _, want := range []telemetry.EventType{
			telemetry.EvSecurity, telemetry.EvPolicy,
			telemetry.EvMigrateBegin, telemetry.EvMigrateEnd,
		} {
			if !found[want] {
				t.Errorf("trace missing %q events", want)
			}
		}
	}
}

// TestRespawnEmitsEvent checks the §5.3 respawn path reports through
// telemetry.
func TestRespawnEmitsEvent(t *testing.T) {
	bin, err := compiler.Compile(testprogs.Fib(10))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(bin, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Respawn(); err != nil {
		t.Fatal(err)
	}
	var sawRespawn bool
	for _, e := range s.Telemetry().Trace.Events() {
		if e.Type == telemetry.EvRespawn {
			sawRespawn = true
		}
	}
	if !sawRespawn {
		t.Fatal("no respawn event traced")
	}
	if got := s.Telemetry().Snapshot().Gauges["core.respawns"]; got != 1 {
		t.Fatalf("core.respawns gauge = %v, want 1", got)
	}
}
