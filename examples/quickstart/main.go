// Quickstart: build a small program with the IR builder, compile it into a
// multi-ISA fat binary, run it natively on both cores, and then run it
// under the full HIPStR defense — same behavior, now with randomized
// program state and heterogeneous-ISA migration armed.
package main

import (
	"fmt"
	"log"

	"hipstr"
)

func main() {
	// A program that computes the sum of the first n squares and exits
	// with the result.
	pb := hipstr.NewProgram("quickstart")
	fb := pb.Func("main", 0)
	n := fb.Const(10)
	sum := fb.Const(0)
	i := fb.Const(1)
	loop := fb.NewBlock()
	body := fb.NewBlock()
	exit := fb.NewBlock()
	fb.SetBlock(0)
	fb.Jmp(loop)
	fb.SetBlock(loop)
	fb.Br(hipstr.LE, i, n, body, exit)
	fb.SetBlock(body)
	sq := fb.Bin(hipstr.Mul, i, i)
	fb.BinTo(sum, hipstr.Add, sum, sq)
	fb.BinImmTo(i, hipstr.Add, i, 1)
	fb.Jmp(loop)
	fb.SetBlock(exit)
	fb.Syscall(1, sum) // exit(sum)
	fb.Ret(sum)
	mod, err := pb.Build()
	if err != nil {
		log.Fatal(err)
	}

	bin, err := hipstr.Compile(mod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: x86 text %d bytes, arm text %d bytes, %d functions\n",
		bin.Module, len(bin.Text[hipstr.X86]), len(bin.Text[hipstr.ARM]), len(bin.Funcs))

	// Native execution on each core.
	for _, k := range []hipstr.ISA{hipstr.X86, hipstr.ARM} {
		p, err := hipstr.RunNative(bin, k)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("native %-4s: exit=%d (want %d)\n", k, p.ExitCode, 385)
	}

	// The same program under the full defense.
	sys, err := hipstr.Protect(bin, hipstr.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HIPStR     : exit=%d, translations x86=%d arm=%d, security events=%d\n",
		sys.ExitCode(), sys.VM.Stats.Translations[hipstr.X86],
		sys.VM.Stats.Translations[hipstr.ARM], sys.SecurityEvents())
}
