package dbt

import (
	"testing"
	"testing/quick"

	"hipstr/internal/isa"
)

func TestRATInsertLookup(t *testing.T) {
	r := NewRAT(4)
	r.Insert(0x100, 0xC100)
	r.Insert(0x200, 0xC200)
	if a, ok := r.Lookup(0x100); !ok || a != 0xC100 {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup(0x300); ok {
		t.Fatal("phantom entry")
	}
	if r.Lookups != 2 || r.Misses != 1 {
		t.Fatalf("counters %d/%d", r.Lookups, r.Misses)
	}
}

func TestRATCapacityEviction(t *testing.T) {
	r := NewRAT(4)
	for i := uint32(0); i < 10; i++ {
		r.Insert(0x100+i, 0xC000+i)
	}
	live := 0
	for i := uint32(0); i < 10; i++ {
		if _, ok := r.Lookup(0x100 + i); ok {
			live++
		}
	}
	if live > 4 {
		t.Fatalf("%d live entries exceed capacity 4", live)
	}
	// FIFO: the most recent insert survives.
	if _, ok := r.Lookup(0x109); !ok {
		t.Fatal("most recent entry evicted")
	}
	if r.Evictions == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestRATUpdateInPlace(t *testing.T) {
	r := NewRAT(2)
	r.Insert(0x100, 0xC1)
	r.Insert(0x100, 0xC2) // remap, no new slot
	r.Insert(0x200, 0xC3)
	if a, _ := r.Lookup(0x100); a != 0xC2 {
		t.Fatalf("update lost: %#x", a)
	}
	if a, _ := r.Lookup(0x200); a != 0xC3 {
		t.Fatalf("second entry lost: %#x", a)
	}
}

// Property: after any insertion sequence, the live-entry count never
// exceeds capacity, and a hit always returns the latest mapping.
func TestRATPropertyQuick(t *testing.T) {
	f := func(keys []uint16, size uint8) bool {
		cap := int(size%16) + 1
		r := NewRAT(cap)
		latest := map[uint32]uint32{}
		for i, k := range keys {
			src := uint32(k)
			dst := uint32(i)
			r.Insert(src, dst)
			latest[src] = dst
		}
		live := 0
		for src, want := range latest {
			if got, ok := r.entries[src]; ok {
				live++
				if got != want {
					return false
				}
			}
		}
		return live <= cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRATEvictionAccountingFIFO is the regression test for the Evictions
// counter and the FIFO (not LRU) replacement discipline: re-inserting a
// live key updates its mapping in place without consuming a new FIFO slot
// or counting an eviction, and it does NOT refresh the key's age — the
// oldest insertion is still evicted first.
func TestRATEvictionAccountingFIFO(t *testing.T) {
	r := NewRAT(3)
	r.Insert(0xA, 0xC1)
	r.Insert(0xB, 0xC2)
	r.Insert(0xC, 0xC3)
	if r.Evictions != 0 {
		t.Fatalf("evictions after filling to capacity: %d, want 0", r.Evictions)
	}

	// Re-inserting a live key is an update, not a new entry: no eviction,
	// no capacity change.
	r.Insert(0xA, 0xC9)
	if r.Evictions != 0 || r.Entries() != 3 {
		t.Fatalf("re-insert of live key: evictions=%d entries=%d, want 0/3",
			r.Evictions, r.Entries())
	}
	if got, ok := r.Lookup(0xA); !ok || got != 0xC9 {
		t.Fatalf("re-insert did not update mapping: got %#x ok=%v", got, ok)
	}

	// FIFO, not LRU: 0xA was touched most recently but inserted first, so
	// the next insertion at capacity must evict 0xA.
	r.Insert(0xD, 0xC4)
	if r.Evictions != 1 {
		t.Fatalf("evictions after first overflow: %d, want 1", r.Evictions)
	}
	if _, ok := r.Lookup(0xA); ok {
		t.Fatal("FIFO violated: oldest key 0xA survived (LRU behavior)")
	}
	for _, k := range []uint32{0xB, 0xC, 0xD} {
		if _, ok := r.Lookup(k); !ok {
			t.Fatalf("live key %#x wrongly evicted", k)
		}
	}

	// Every further insertion of a fresh key evicts exactly one live
	// entry; the counter stays exact.
	for i := uint32(0); i < 5; i++ {
		r.Insert(0x100+i, 0xD00+i)
	}
	if r.Evictions != 6 {
		t.Fatalf("evictions after 5 more overflows: %d, want 6", r.Evictions)
	}
	if r.Entries() != 3 {
		t.Fatalf("entries %d exceed capacity 3", r.Entries())
	}
}

func TestCodeCacheReserveAlignment(t *testing.T) {
	c := NewCodeCache(isa.X86, 4096)
	a1, ok := c.Reserve(10, 16)
	if !ok || a1%16 != 0 {
		t.Fatalf("reserve 1: %#x", a1)
	}
	a2, ok := c.Reserve(20, 64)
	if !ok || a2%64 != 0 || a2 < a1+10 {
		t.Fatalf("reserve 2: %#x", a2)
	}
	if _, ok := c.Reserve(5000, 16); ok {
		t.Fatal("oversized reserve succeeded")
	}
}

// Property: NextAddr always predicts the next Reserve result for the same
// alignment.
func TestCodeCacheNextAddrQuick(t *testing.T) {
	c := NewCodeCache(isa.X86, 1<<20)
	f := func(n uint16, alignSel uint8) bool {
		align := uint32(16) << (alignSel % 3) // 16, 32, 64
		want := c.NextAddr(align)
		got, ok := c.Reserve(uint32(n%2048)+1, align)
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
