package dbt

import (
	"hipstr/internal/isa"
	"hipstr/internal/psr"
)

// rewriteX86 emits the PSR transformation of one x86 instruction: the
// addressing-mode transformation of §5.1, plus the procedure-call,
// implicit-register, and stack-pointer fixups.
func (t *translator) rewriteX86(in *isa.Inst, idx int) {
	a := t.a
	fs := int32(t.fn.FrameSize)
	nfs := int32(t.m.NewFrameSize)
	esp := isa.R(isa.ESP)
	switch in.Op {
	case isa.OpNop:
		a.Emit(isa.Inst{Op: isa.OpNop})
	case isa.OpHlt:
		a.Emit(isa.Inst{Op: isa.OpHlt})
	case isa.OpSub:
		// Frame allocation: `sub esp, FrameSize` relocates the return
		// address and widens the frame by the randomization space.
		if in.Dst.IsReg(isa.ESP) && !in.ByteOp && in.Src.Kind == isa.OpdImm && in.Src.Imm == fs {
			// Prologue: relocate the return address into the widened
			// frame, then re-relocate register state from the boundary
			// (physical) convention into this function's map.
			tmp := isa.EDX // architecturally dead at function entry
			a.Emit(isa.Inst{Op: isa.OpPop, Dst: isa.R(tmp)})
			a.Emit(isa.Inst{Op: isa.OpSub, Dst: esp, Src: isa.I(nfs)})
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(isa.ESP, t.m.RetOff), Src: isa.R(tmp)})
			t.delta = 0
			t.emitReRelocate()
			return
		}
		if in.Dst.IsReg(isa.ESP) && !in.ByteOp && in.Src.Kind == isa.OpdImm {
			a.Emit(*in)
			t.delta -= in.Src.Imm
			return
		}
		t.rewriteALU(in, idx)
	case isa.OpAdd:
		// Frame teardown: fetch the relocated return address back to the
		// canonical position the following `ret` expects.
		if in.Dst.IsReg(isa.ESP) && !in.ByteOp && in.Src.Kind == isa.OpdImm && in.Src.Imm == fs {
			// Epilogue: de-relocate register state back to the boundary
			// convention, then fetch the relocated return address to the
			// canonical position the following `ret` expects.
			t.emitDeRelocate()
			tmp := isa.EDX // dead at return (only EAX carries a value out)
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(tmp), Src: isa.MB(isa.ESP, t.m.RetOff)})
			a.Emit(isa.Inst{Op: isa.OpAdd, Dst: esp, Src: isa.I(nfs)})
			a.Emit(isa.Inst{Op: isa.OpPush, Src: isa.R(tmp)})
			t.delta = 0
			return
		}
		if in.Dst.IsReg(isa.ESP) && !in.ByteOp && in.Src.Kind == isa.OpdImm {
			a.Emit(*in)
			t.delta += in.Src.Imm
			return
		}
		t.rewriteALU(in, idx)
	case isa.OpMov, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpCmp, isa.OpTest:
		t.rewriteALU(in, idx)
	case isa.OpLea:
		src := t.lowerOperand(in.Src, idx)
		dst := t.lowerOperand(in.Dst, idx)
		if dst.Kind == isa.OpdReg {
			a.Emit(isa.Inst{Op: isa.OpLea, Dst: dst, Src: src})
			return
		}
		tmp := t.tmp()
		a.Emit(isa.Inst{Op: isa.OpLea, Dst: isa.R(tmp), Src: src})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: dst, Src: isa.R(tmp)})
	case isa.OpInc, isa.OpDec, isa.OpNeg, isa.OpNot:
		dst := t.lowerOperand(in.Dst, idx)
		op := in.Op
		if dst.Kind == isa.OpdMem && (op == isa.OpInc || op == isa.OpDec) {
			// No inc/dec m32 in the encoder subset: use add/sub 1.
			alt := isa.OpAdd
			if op == isa.OpDec {
				alt = isa.OpSub
			}
			a.Emit(isa.Inst{Op: alt, Dst: dst, Src: isa.I(1)})
			return
		}
		a.Emit(isa.Inst{Op: op, Dst: dst})
	case isa.OpMul:
		dst := t.lowerOperand(in.Dst, idx)
		src := t.lowerOperand(in.Src, idx)
		src2 := t.lowerOperand(in.Src2, idx)
		if dst.Kind == isa.OpdReg {
			a.Emit(isa.Inst{Op: isa.OpMul, Dst: dst, Src: src, Src2: src2})
			return
		}
		tmp := t.tmp()
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(tmp), Src: dst})
		if src.Kind == isa.OpdImm {
			a.Emit(isa.Inst{Op: isa.OpMul, Dst: isa.R(tmp), Src: src, Src2: src2})
		} else {
			a.Emit(isa.Inst{Op: isa.OpMul, Dst: isa.R(tmp), Src: src})
		}
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: dst, Src: isa.R(tmp)})
	case isa.OpDiv:
		t.rewriteDivX86(in, idx)
	case isa.OpShl, isa.OpShr:
		if in.Src.IsReg(isa.ECX) {
			if l := t.m.LocOfReg(isa.ECX); l.Kind == psr.LocStack {
				a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.ECX), Src: isa.MB(isa.ESP, l.Off-t.delta)})
			}
			dst := t.lowerOperand(in.Dst, idx)
			a.Emit(isa.Inst{Op: in.Op, Dst: dst, Src: isa.R(isa.ECX)})
			return
		}
		dst := t.lowerOperand(in.Dst, idx)
		a.Emit(isa.Inst{Op: in.Op, Dst: dst, Src: in.Src})
	case isa.OpPush:
		src := t.lowerOperand(in.Src, idx)
		a.Emit(isa.Inst{Op: isa.OpPush, Src: src})
		t.delta -= 4
	case isa.OpPop:
		t.delta += 4
		dst := t.lowerOperand(in.Dst, idx) // lowered with post-pop delta
		if dst.Kind == isa.OpdReg {
			a.Emit(isa.Inst{Op: isa.OpPop, Dst: dst})
			return
		}
		tmp := t.tmp()
		a.Emit(isa.Inst{Op: isa.OpPop, Dst: isa.R(tmp)})
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: dst, Src: isa.R(tmp)})
	case isa.OpLeave:
		// mov esp, ebp ; pop ebp — under relocation, fetch arch EBP's
		// value from its home, then pop into the home.
		l := t.m.LocOfReg(isa.EBP)
		if l.Kind == psr.LocReg {
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: esp, Src: isa.R(l.Reg)})
			a.Emit(isa.Inst{Op: isa.OpPop, Dst: isa.R(l.Reg)})
		} else {
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: esp, Src: isa.MB(isa.ESP, l.Off-t.delta)})
			tmp := t.tmp()
			a.Emit(isa.Inst{Op: isa.OpPop, Dst: isa.R(tmp)})
			// ESP no longer frame-relative; best effort for gadget code.
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(isa.ESP, l.Off), Src: isa.R(tmp)})
		}
		t.delta = 0
	case isa.OpSys:
		if in.Imm == vecSyscall {
			t.emitSyscallMarshalX86()
			return
		}
		// Foreign int vectors (including attempts to forge VM traps) are
		// software-fault-isolated away.
		t.emitKill()
	case isa.OpJmp:
		t.emitChain(in.Target, isa.OpJmp, isa.CondAlways)
	case isa.OpJcc:
		t.emitChain(in.Target, isa.OpJcc, in.Cond)
		t.emitChain(in.Addr+uint32(in.Size), isa.OpJmp, isa.CondAlways)
	case isa.OpCall:
		t.emitDirectCall(in)
	case isa.OpCallI:
		// Stage the call target from relocated state before the boundary
		// marshal rearranges registers, then trap for dispatch.
		slot := t.stageIndirectTarget(in, idx)
		t.emitDeRelocate()
		t.emitTrapHere(trapMeta{
			vec:        vecIndirect,
			isCall:     true,
			srcRet:     in.Addr + uint32(in.Size),
			delta:      t.delta,
			fnIndex:    t.fn.Index,
			targetSlot: slot,
		})
		t.emitReRelocate() // RAT resume point
		// The unit ends here; straight-line flow continues at the source
		// return address in its own unit.
		t.emitChain(in.Addr+uint32(in.Size), isa.OpJmp, isa.CondAlways)
	case isa.OpJmpI:
		t.emitTrapHere(trapMeta{
			vec:     vecIndirect,
			operand: in.Dst,
			delta:   t.delta,
			fnIndex: t.fn.Index,
		})
	case isa.OpRet:
		a.Emit(isa.Inst{Op: isa.OpRet, Imm: in.Imm})
	default:
		t.emitKill()
	}
}

// rewriteALU handles the two-operand register/memory forms: both operands
// are lowered; when both land in memory, the source is staged through a
// temporary (the paper's "additional instructions only when more than one
// operand is relocated to memory").
func (t *translator) rewriteALU(in *isa.Inst, idx int) {
	dst := t.lowerOperand(in.Dst, idx)
	src := t.lowerOperand(in.Src, idx)
	if dst.Kind == isa.OpdMem && src.Kind == isa.OpdMem {
		tmp := t.tmp()
		t.a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(tmp), Src: src, ByteOp: in.ByteOp})
		src = isa.R(tmp)
	}
	t.a.Emit(isa.Inst{Op: in.Op, Dst: dst, Src: src, ByteOp: in.ByteOp})
}

// rewriteDivX86 marshals the implicit EAX/EDX operands of division.
func (t *translator) rewriteDivX86(in *isa.Inst, idx int) {
	a := t.a
	locA := t.m.LocOfReg(isa.EAX)
	locD := t.m.LocOfReg(isa.EDX)
	if locA.Kind == psr.LocStack {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(isa.EAX), Src: isa.MB(isa.ESP, locA.Off-t.delta)})
	}
	// The divisor may legitimately be physical EAX/EDX: division reads
	// its operands before writing the quotient/remainder registers.
	src := t.lowerOperand(in.Src, idx)
	a.Emit(isa.Inst{Op: isa.OpDiv, Dst: isa.R(isa.EAX), Src: src})
	if locA.Kind == psr.LocStack {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(isa.ESP, locA.Off-t.delta), Src: isa.R(isa.EAX)})
	}
	if locD.Kind == psr.LocStack {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(isa.ESP, locD.Off-t.delta), Src: isa.R(isa.EDX)})
	}
}

// emitDirectCall emits a translated direct call: target chained through
// the cache (or a patchable trap), with the call site recorded so the
// modified call macro-op can push the source return address and update the
// RAT.
func (t *translator) emitDirectCall(in *isa.Inst) {
	srcRet := in.Addr + uint32(in.Size)
	t.emitDeRelocate() // boundary convention: physical registers at calls
	lbl := t.newLabel("call")
	t.a.Label(lbl)
	if cacheAddr, ok := t.vm.caches[t.k].Lookup(in.Target); ok {
		t.a.Emit(isa.Inst{Op: isa.OpCall, Target: cacheAddr})
	} else {
		stub := t.newLabel("stub")
		t.a.EmitTo(isa.Inst{Op: isa.OpCall}, stub)
		t.pendingStub(stub, lbl, in.Target, isa.OpCall, isa.CondAlways)
	}
	t.newCalls = append(t.newCalls, pendingCall{label: lbl, srcRet: srcRet})
	t.emitReRelocate() // the RAT resumes here after the callee returns
}

// rewriteARM emits the PSR transformation of one ARM instruction. ARM is a
// load/store ISA: relocated sources are fetched into temporaries and
// relocated destinations stored back explicitly.
func (t *translator) rewriteARM(in *isa.Inst, idx int) {
	a := t.a
	sp := isa.SP
	// loadSrc returns a register holding the operand's value.
	loadSrc := func(o isa.Operand) isa.Operand {
		low := t.lowerOperand(o, idx)
		if low.Kind != isa.OpdMem {
			return low
		}
		r := t.tmp()
		a.LoadWord(r, low.Mem.Base, low.Mem.Disp, armScratchFor(isa.ARM, r))
		return isa.R(r)
	}
	// destReg returns the register to compute into plus a finisher that
	// stores back when the architectural register is stack-relocated.
	destReg := func(o isa.Operand) (isa.Reg, func()) {
		low := t.lowerOperand(o, idx)
		if low.Kind == isa.OpdReg {
			return low.Reg, func() {}
		}
		r := t.tmp()
		return r, func() { a.StoreWord(r, low.Mem.Base, low.Mem.Disp, armScratchFor(isa.ARM, r)) }
	}
	switch in.Op {
	case isa.OpNop, isa.OpHlt:
		a.Emit(isa.Inst{Op: in.Op})
	case isa.OpMov, isa.OpNot:
		src := loadSrc(in.Src)
		rd, fin := destReg(in.Dst)
		a.Emit(isa.Inst{Op: in.Op, Dst: isa.R(rd), Src: src})
		fin()
	case isa.OpMovT:
		// Read-modify-write on the destination.
		src := in.Src
		low := t.lowerOperand(in.Dst, idx)
		if low.Kind == isa.OpdReg {
			a.Emit(isa.Inst{Op: isa.OpMovT, Dst: low, Src: src})
			return
		}
		r := t.tmp()
		a.LoadWord(r, low.Mem.Base, low.Mem.Disp, armScratchFor(isa.ARM, r))
		a.Emit(isa.Inst{Op: isa.OpMovT, Dst: isa.R(r), Src: src})
		a.StoreWord(r, low.Mem.Base, low.Mem.Disp, armScratchFor(isa.ARM, r))
	case isa.OpAdd, isa.OpSub, isa.OpRsb, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpMul, isa.OpDiv:
		// SP-relative arithmetic passes through (frame pointer math).
		if in.Dst.IsReg(sp) && in.Src2.IsReg(sp) {
			a.Emit(*in)
			if in.Src.Kind == isa.OpdImm {
				if in.Op == isa.OpSub {
					t.delta -= in.Src.Imm
				} else if in.Op == isa.OpAdd {
					t.delta += in.Src.Imm
				}
			}
			return
		}
		src := loadSrc(in.Src)
		src2 := loadSrc(in.Src2)
		rd, fin := destReg(in.Dst)
		a.Emit(isa.Inst{Op: in.Op, Dst: isa.R(rd), Src: src, Src2: src2})
		fin()
	case isa.OpCmp, isa.OpTest:
		lhs := loadSrc(in.Dst)
		src := loadSrc(in.Src)
		if lhs.Kind != isa.OpdReg {
			r := t.tmp()
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(r), Src: lhs})
			lhs = isa.R(r)
		}
		a.Emit(isa.Inst{Op: in.Op, Dst: lhs, Src: src})
	case isa.OpLoad:
		src := t.lowerOperand(in.Src, idx) // memory operand remapped
		rd, fin := destReg(in.Dst)
		a.LoadWord(rd, src.Mem.Base, src.Mem.Disp, armScratchFor(isa.ARM, rd))
		fin()
	case isa.OpStore:
		val := loadSrc(in.Src)
		dst := t.lowerOperand(in.Dst, idx)
		vr := val.Reg
		if val.Kind != isa.OpdReg {
			vr = t.tmp()
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(vr), Src: val})
		}
		a.StoreWord(vr, dst.Mem.Base, dst.Mem.Disp, armScratchFor(isa.ARM, vr))
	case isa.OpSys:
		if in.Imm == vecSyscall {
			t.emitSyscallMarshalARM()
			return
		}
		t.emitKill()
	case isa.OpJmp:
		t.emitChain(in.Target, isa.OpJmp, isa.CondAlways)
	case isa.OpJcc:
		t.emitChain(in.Target, isa.OpJcc, in.Cond)
		t.emitChain(in.Addr+uint32(in.Size), isa.OpJmp, isa.CondAlways)
	case isa.OpCall:
		t.emitDirectCall(in)
	case isa.OpCallI:
		slot := t.stageIndirectTarget(in, idx)
		t.emitDeRelocate()
		t.emitTrapHere(trapMeta{
			vec:        vecIndirect,
			isCall:     true,
			srcRet:     in.Addr + uint32(in.Size),
			delta:      t.delta,
			fnIndex:    t.fn.Index,
			targetSlot: slot,
		})
		t.emitReRelocate()
		t.emitChain(in.Addr+uint32(in.Size), isa.OpJmp, isa.CondAlways)
	case isa.OpBx:
		if in.Dst.IsReg(isa.LR) {
			a.Emit(isa.Inst{Op: isa.OpBx, Dst: isa.R(isa.LR)})
			return
		}
		t.emitTrapHere(trapMeta{
			vec:     vecIndirect,
			operand: in.Dst,
			isCall:  false,
			delta:   t.delta,
			fnIndex: t.fn.Index,
		})
	case isa.OpPushM:
		// Store each architectural register's (relocated) value.
		n := int32(0)
		for r := 0; r < 16; r++ {
			if in.RegMask&(1<<r) != 0 {
				n++
			}
		}
		a.AddImm(sp, sp, -4*n, isa.R12)
		t.delta -= 4 * n
		off := int32(0)
		for r := 0; r < 16; r++ {
			if in.RegMask&(1<<r) == 0 {
				continue
			}
			t.resetTmps()
			v := loadSrc(isa.R(isa.Reg(r)))
			vr := v.Reg
			a.StoreWord(vr, sp, off, armScratchFor(isa.ARM, vr))
			off += 4
		}
	case isa.OpPopM:
		off := int32(0)
		hasPC := in.RegMask&(1<<isa.PC) != 0
		for r := 0; r < 15; r++ { // PC handled by trap
			if in.RegMask&(1<<r) == 0 {
				continue
			}
			t.resetTmps()
			rr := t.tmp()
			a.LoadWord(rr, sp, off, armScratchFor(isa.ARM, rr))
			low := t.lowerOperand(isa.R(isa.Reg(r)), idx)
			if low.Kind == isa.OpdReg {
				a.Emit(isa.Inst{Op: isa.OpMov, Dst: low, Src: isa.R(rr)})
			} else {
				a.StoreWord(rr, low.Mem.Base, low.Mem.Disp, armScratchFor(isa.ARM, rr))
			}
			off += 4
		}
		a.AddImm(sp, sp, off, isa.R12)
		t.delta += off
		if hasPC {
			t.emitTrapHere(trapMeta{vec: vecPopPC, delta: t.delta, fnIndex: t.fn.Index})
		}
	default:
		t.emitKill()
	}
}
