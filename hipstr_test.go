package hipstr_test

import (
	"testing"

	"hipstr"
)

func TestPublicAPIWorkloadRoundTrip(t *testing.T) {
	names := hipstr.Workloads()
	if len(names) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8", len(names))
	}
	bin, err := hipstr.CompileWorkload("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	p, err := hipstr.RunNative(bin, hipstr.X86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(80_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Exited {
		t.Fatal("native run did not exit")
	}
	sys, err := hipstr.Protect(bin, hipstr.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(120_000_000); err != nil {
		t.Fatal(err)
	}
	if !sys.Exited() || sys.ExitCode() != p.ExitCode {
		t.Fatalf("protected exit %d (exited=%v), native %d", sys.ExitCode(), sys.Exited(), p.ExitCode)
	}
}

func TestPublicAPIUnknownWorkload(t *testing.T) {
	if _, err := hipstr.CompileWorkload("nonesuch"); err == nil {
		t.Fatal("expected an error for an unknown workload")
	}
}

func TestPublicAPIProgramBuilder(t *testing.T) {
	pb := hipstr.NewProgram("double")
	fb := pb.Func("main", 0)
	v := fb.Const(21)
	d := fb.BinImm(hipstr.Mul, v, 2)
	fb.Syscall(1, d)
	fb.Ret(d)
	mod, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := hipstr.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []hipstr.ISA{hipstr.X86, hipstr.ARM} {
		p, err := hipstr.RunNative(bin, k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(10_000); err != nil {
			t.Fatal(err)
		}
		if p.ExitCode != 42 {
			t.Fatalf("%s: exit %d, want 42", k, p.ExitCode)
		}
	}
}

func TestPublicAPIGadgetsAndBruteForce(t *testing.T) {
	bin, err := hipstr.CompileWorkload("lbm")
	if err != nil {
		t.Fatal(err)
	}
	gs := hipstr.MineGadgets(bin, hipstr.X86)
	if len(gs) == 0 {
		t.Fatal("no gadgets mined")
	}
	viable := 0
	for i := range gs {
		if hipstr.GadgetEffect(bin, &gs[i]).Viable() {
			viable++
		}
	}
	if viable == 0 {
		t.Fatal("no viable gadgets")
	}
	bf := hipstr.SimulateBruteForce(bin, 1)
	if bf.AttemptsNoBias < 1e12 {
		t.Fatalf("brute force attempts %.2e too low", bf.AttemptsNoBias)
	}
}

func TestPublicAPIMigrationSafety(t *testing.T) {
	bin, err := hipstr.CompileWorkload("mcf")
	if err != nil {
		t.Fatal(err)
	}
	rep := hipstr.AnalyzeMigrationSafety(bin)
	if rep.Total == 0 || rep.Fraction(hipstr.X86) < 0.5 {
		t.Fatalf("implausible safety report: %+v", rep)
	}
}

func TestPublicAPIMeasurement(t *testing.T) {
	bin, err := hipstr.CompileWorkload("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	native, err := hipstr.MeasureNative(bin, hipstr.X86, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	psr, err := hipstr.MeasurePSR(bin, hipstr.X86, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if psr.Cycles <= native.Cycles {
		t.Fatalf("PSR (%f cycles) should cost more than native (%f)", psr.Cycles, native.Cycles)
	}
}

func TestPublicAPIVictim(t *testing.T) {
	v, err := hipstr.NewVictim(12)
	if err != nil {
		t.Fatal(err)
	}
	out, err := v.AttackNative(v.ReturnIntoLibc())
	if err != nil {
		t.Fatal(err)
	}
	if out != hipstr.OutcomeShell {
		t.Fatalf("native attack: %v", out)
	}
	cfg := hipstr.Defaults()
	cfg.DBT.Seed = 5
	out, _, err = v.AttackProtected(cfg, v.ReturnIntoLibc())
	if err != nil {
		t.Fatal(err)
	}
	if out == hipstr.OutcomeShell {
		t.Fatal("HIPStR failed to stop return-into-libc")
	}
}
