package compiler_test

import (
	"reflect"
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/proc"
	"hipstr/internal/testprogs"
)

const maxSteps = 5_000_000

func runNative(t *testing.T, bin *fatbin.Binary, k isa.Kind) *proc.Process {
	t.Helper()
	p, err := proc.New(bin, k)
	if err != nil {
		t.Fatalf("boot %s: %v", k, err)
	}
	if err := p.RunToExit(maxSteps); err != nil {
		t.Fatalf("run %s: %v", k, err)
	}
	return p
}

// TestCrossISAEquivalence compiles every test program for both ISAs and
// checks that native execution produces identical observable behavior:
// exit code and syscall write trace. This is the core guarantee the
// multi-ISA compiler must provide for migration to be meaningful.
func TestCrossISAEquivalence(t *testing.T) {
	for name, tc := range testprogs.All() {
		t.Run(name, func(t *testing.T) {
			bin, err := compiler.Compile(tc.Mod)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			px := runNative(t, bin, isa.X86)
			pa := runNative(t, bin, isa.ARM)
			if px.ExitCode != tc.Exit {
				t.Errorf("x86 exit = %d, want %d", px.ExitCode, tc.Exit)
			}
			if pa.ExitCode != tc.Exit {
				t.Errorf("arm exit = %d, want %d", pa.ExitCode, tc.Exit)
			}
			if !reflect.DeepEqual(px.Trace, pa.Trace) {
				t.Errorf("trace mismatch: x86 %v vs arm %v", px.Trace, pa.Trace)
			}
		})
	}
}

func TestSymbolTableShape(t *testing.T) {
	bin, err := compiler.Compile(testprogs.SumLoop(10))
	if err != nil {
		t.Fatal(err)
	}
	f := bin.Func("main")
	if f == nil {
		t.Fatal("no main metadata")
	}
	if f.FrameSize == 0 || f.SaveOff <= f.SpillOff || f.SpillOff < f.LocalOff {
		t.Fatalf("frame layout inconsistent: %+v", f)
	}
	if len(f.Blocks) == 0 {
		t.Fatal("no block metadata")
	}
	for _, k := range isa.Kinds {
		if f.Entry[k] != f.Start[k] || f.End[k] <= f.Start[k] {
			t.Fatalf("%s: bad code range [%#x,%#x) entry %#x", k, f.Start[k], f.End[k], f.Entry[k])
		}
		prevEnd := f.Start[k]
		for _, b := range f.Blocks {
			if b.Addr[k] < prevEnd {
				t.Fatalf("%s: block %d overlaps previous (%#x < %#x)", k, b.ID, b.Addr[k], prevEnd)
			}
			if b.End[k] < b.Addr[k] {
				t.Fatalf("%s: block %d negative extent", k, b.ID)
			}
			prevEnd = b.End[k]
		}
	}
}

func TestLoopBlocksGetRegisterBindings(t *testing.T) {
	bin, err := compiler.Compile(testprogs.SumLoop(10))
	if err != nil {
		t.Fatal(err)
	}
	f := bin.Func("main")
	foundLoop := false
	foundRegResident := false
	for _, b := range f.Blocks {
		if !b.InLoop {
			continue
		}
		foundLoop = true
		for _, h := range b.LiveIn {
			if h.InReg(isa.X86) || h.InReg(isa.ARM) {
				foundRegResident = true
			}
		}
	}
	if !foundLoop {
		t.Fatal("no loop blocks detected")
	}
	if !foundRegResident {
		t.Fatal("no register-resident live-ins in loop blocks — loop binding inactive")
	}
	// ARM must bind at least as many values as x86 (more registers).
	x86Saved, armSaved := len(f.SavedRegs[isa.X86]), len(f.SavedRegs[isa.ARM])
	if armSaved < x86Saved {
		t.Fatalf("arm saved %d < x86 saved %d", armSaved, x86Saved)
	}
}

func TestFuncAtAndBlockAt(t *testing.T) {
	bin, err := compiler.Compile(testprogs.Fib(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range isa.Kinds {
		fm := bin.Func("fib")
		got := bin.FuncAt(k, fm.Entry[k])
		if got == nil || got.Name != "fib" {
			t.Fatalf("%s: FuncAt(entry) = %v", k, got)
		}
		mid := fm.Entry[k] + (fm.End[k]-fm.Entry[k])/2
		if g := bin.FuncAt(k, mid); g == nil || g.Name != "fib" {
			t.Fatalf("%s: FuncAt(mid) = %v", k, g)
		}
		if g := bin.FuncAt(k, 0x100); g != nil {
			t.Fatalf("%s: FuncAt(bogus) = %v", k, g)
		}
		fn, blk := bin.BlockAt(k, fm.Entry[k])
		if fn == nil || blk == nil || blk.ID != 0 {
			t.Fatalf("%s: BlockAt(entry) = %v %v", k, fn, blk)
		}
	}
}

func TestFixedSlotRecorded(t *testing.T) {
	bin, err := compiler.Compile(testprogs.AddressTaken())
	if err != nil {
		t.Fatal(err)
	}
	f := bin.Func("main")
	hasFixed := false
	for _, fx := range f.FixedSlot {
		if fx {
			hasFixed = true
		}
	}
	if !hasFixed {
		t.Fatal("address-taken slot not marked fixed")
	}
	// Relocatable offsets must exclude the fixed slot.
	fixedOff := uint32(0)
	for s, fx := range f.FixedSlot {
		if fx {
			fixedOff = f.SlotOff(s)
		}
	}
	for _, off := range f.RelocatableOffsets() {
		if off == fixedOff {
			t.Fatalf("fixed slot offset %#x listed as relocatable", off)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	bin, err := compiler.Compile(testprogs.SumLoop(10))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := bin.Save()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fatbin.LoadBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Module != bin.Module || len(got.Funcs) != len(bin.Funcs) {
		t.Fatal("round trip lost structure")
	}
	p := runNative(t, got, isa.X86)
	if p.ExitCode != 45 {
		t.Fatalf("deserialized binary exit %d, want 45", p.ExitCode)
	}
}

func TestDeterministicCompilation(t *testing.T) {
	a, err := compiler.Compile(testprogs.NestedLoops(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := compiler.Compile(testprogs.NestedLoops(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range isa.Kinds {
		if !reflect.DeepEqual(a.Text[k], b.Text[k]) {
			t.Fatalf("%s text not deterministic", k)
		}
	}
}

func TestEveryBlockEndsInControlTransfer(t *testing.T) {
	bin, err := compiler.Compile(testprogs.Collatz(7))
	if err != nil {
		t.Fatal(err)
	}
	// Decode each block of main and verify the final instruction before
	// the next block boundary is a control transfer — the property the
	// DBT's block-at-a-time translation relies on.
	for _, k := range isa.Kinds {
		f := bin.Func("main")
		text := bin.Text[k]
		base := fatbin.TextBase(k)
		for _, b := range f.Blocks {
			addr := b.Addr[k]
			lastWasControl := false
			for addr < b.End[k] {
				in, err := isa.Decode(k, text[addr-base:], addr)
				if err != nil {
					t.Fatalf("%s block %d: decode at %#x: %v", k, b.ID, addr, err)
				}
				lastWasControl = in.Op.IsControl() && in.Op != isa.OpSys
				addr += uint32(in.Size)
			}
			if addr != b.End[k] {
				t.Fatalf("%s block %d: instruction stream overruns block end", k, b.ID)
			}
			if !lastWasControl {
				t.Fatalf("%s block %d does not end in a control transfer", k, b.ID)
			}
		}
	}
}
