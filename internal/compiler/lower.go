package compiler

import (
	"fmt"
	"math/rand"
	"sort"

	"hipstr/internal/fatbin"
	"hipstr/internal/isa"
	"hipstr/internal/prog"
)

// Per-ISA lowering conventions.
var (
	scratchRegs = [2][]isa.Reg{
		isa.X86: {isa.EAX, isa.ECX, isa.EDX},
		isa.ARM: {isa.R0, isa.R1, isa.R2, isa.R3},
	}
	retRegs = [2]isa.Reg{isa.X86: isa.EAX, isa.ARM: isa.R0}
	// sysArgRegs carries syscall arguments; the number register is the
	// return register (EAX / R0).
	sysArgRegs = [2][]isa.Reg{
		isa.X86: {isa.EBX, isa.ECX, isa.EDX, isa.ESI, isa.EDI},
		isa.ARM: {isa.R1, isa.R2, isa.R3, isa.R4},
	}
)

// armScratch is reserved exclusively for the emitter's address/constant
// legalization sequences.
const armScratch = isa.R12

// SyscallVector is the software-interrupt vector for program syscalls.
const SyscallVector = 0x80

// scratchCache is the block-local, write-through register cache: canonical
// memory homes are always current for vregs it tracks, so invalidation
// never needs a writeback.
type scratchCache struct {
	pool []isa.Reg
	of   map[prog.VReg]isa.Reg
	occ  map[isa.Reg]prog.VReg
	lru  []isa.Reg // least recently used first
}

func newScratchCache(pool []isa.Reg) *scratchCache {
	return &scratchCache{
		pool: pool,
		of:   make(map[prog.VReg]isa.Reg),
		occ:  make(map[isa.Reg]prog.VReg),
	}
}

func (c *scratchCache) touch(r isa.Reg) {
	for i, x := range c.lru {
		if x == r {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			break
		}
	}
	c.lru = append(c.lru, r)
}

func (c *scratchCache) lookup(v prog.VReg) (isa.Reg, bool) {
	r, ok := c.of[v]
	if ok {
		c.touch(r)
	}
	return r, ok
}

// take returns a scratch register not in pinned, evicting the LRU occupant
// if necessary. The association tables are cleared for the returned
// register; callers bind it via assign when it will cache a vreg.
func (c *scratchCache) take(pinned map[isa.Reg]bool) isa.Reg {
	for _, r := range c.pool {
		if _, busy := c.occ[r]; !busy && !pinned[r] {
			c.touch(r)
			return r
		}
	}
	for _, r := range c.lru {
		if !pinned[r] {
			c.evictReg(r)
			c.touch(r)
			return r
		}
	}
	// All pool registers pinned and occupied: pick any unpinned pool reg.
	for _, r := range c.pool {
		if !pinned[r] {
			c.evictReg(r)
			c.touch(r)
			return r
		}
	}
	panic("compiler: scratch pool exhausted")
}

func (c *scratchCache) assign(v prog.VReg, r isa.Reg) {
	c.evictReg(r)
	if old, ok := c.of[v]; ok {
		delete(c.occ, old)
		delete(c.of, v)
	}
	c.of[v] = r
	c.occ[r] = v
}

func (c *scratchCache) evictReg(r isa.Reg) {
	if v, ok := c.occ[r]; ok {
		delete(c.of, v)
		delete(c.occ, r)
	}
}

func (c *scratchCache) invalidateAll() {
	c.of = make(map[prog.VReg]isa.Reg)
	c.occ = make(map[isa.Reg]prog.VReg)
	c.lru = c.lru[:0]
}

// lowerer lowers one function to one ISA.
type lowerer struct {
	k       isa.Kind
	mod     *prog.Module
	f       *prog.Func
	meta    *fatbin.FuncMeta
	a       *isa.Asm
	loops   []*loopInfo
	loopOf  []*loopInfo
	entries map[string]uint32 // callee entries for this ISA (zero on sizing pass)
	gaddr   func(gi int) uint32

	bind   map[prog.VReg]isa.Reg
	cache  *scratchCache
	pins   map[isa.Reg]bool
	stubN  int
	callN  int
	sp     isa.Reg
	retReg isa.Reg

	// Layout diversification (Isomeron-style variants): block emission
	// order and nop padding, deterministic per layout seed.
	blockOrder []int
	nopRng     *rand.Rand
}

// diversify installs a shuffled block order and nop padding derived from
// seed (0 leaves the canonical layout).
func (lo *lowerer) diversify(seed int64) {
	if seed == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed ^ int64(lo.meta.Index)<<20))
	order := make([]int, len(lo.f.Blocks))
	for i := range order {
		order[i] = i
	}
	// Entry block stays first (the function entry address).
	tail := order[1:]
	rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	lo.blockOrder = order
	lo.nopRng = rng
}

// callSiteLabel names the return point of the n-th call in the function;
// both ISA lowerings emit calls in identical order, so the labels pair up
// into the symbol table's cross-ISA call-site map.
func callSiteLabel(n int) string { return fmt.Sprintf("cs%d", n) }

func newLowerer(k isa.Kind, mod *prog.Module, f *prog.Func, meta *fatbin.FuncMeta,
	base uint32, loops []*loopInfo, loopOf []*loopInfo,
	entries map[string]uint32, gaddr func(int) uint32) *lowerer {
	return &lowerer{
		k: k, mod: mod, f: f, meta: meta,
		a:     isa.NewAsm(k, base),
		loops: loops, loopOf: loopOf,
		entries: entries, gaddr: gaddr,
		cache:  newScratchCache(scratchRegs[k]),
		pins:   make(map[isa.Reg]bool),
		sp:     isa.StackReg(k),
		retReg: retRegs[k],
	}
}

func (lo *lowerer) pin(r isa.Reg)   { lo.pins[r] = true }
func (lo *lowerer) unpin(r isa.Reg) { delete(lo.pins, r) }
func (lo *lowerer) unpinAll()       { lo.pins = make(map[isa.Reg]bool) }
func (lo *lowerer) temp() isa.Reg   { r := lo.cache.take(lo.pins); lo.pin(r); return r }
func (lo *lowerer) home(v prog.VReg) int32 {
	return int32(lo.meta.HomeOff(int32(v)))
}

// getVal brings vreg v into a register and pins it.
func (lo *lowerer) getVal(v prog.VReg) isa.Reg {
	if r, ok := lo.bind[v]; ok {
		lo.pin(r)
		return r
	}
	if r, ok := lo.cache.lookup(v); ok {
		lo.pin(r)
		return r
	}
	r := lo.cache.take(lo.pins)
	lo.a.LoadWord(r, lo.sp, lo.home(v), armScratch)
	lo.cache.assign(v, r)
	lo.pin(r)
	return r
}

// getOpd returns an operand for v usable as an x86 ALU source: a register
// when resident, otherwise the memory home (exploiting x86 memory
// operands). On ARM it always loads into a register.
func (lo *lowerer) getOpd(v prog.VReg) isa.Operand {
	if r, ok := lo.bind[v]; ok {
		lo.pin(r)
		return isa.R(r)
	}
	if r, ok := lo.cache.lookup(v); ok {
		lo.pin(r)
		return isa.R(r)
	}
	if lo.k == isa.X86 {
		return isa.MB(lo.sp, lo.home(v))
	}
	return isa.R(lo.getVal(v))
}

// finishDef routes the value in r to vreg d: into d's loop register when
// bound (registers are the home inside loops), otherwise written through
// to the canonical frame home and cached.
func (lo *lowerer) finishDef(d prog.VReg, r isa.Reg) {
	if d == prog.NoVReg {
		return
	}
	if br, ok := lo.bind[d]; ok {
		if br != r {
			lo.emitMovReg(br, r)
		}
		// A stale cache entry for d would alias the binding; drop it.
		if cr, ok := lo.cache.lookup(d); ok {
			lo.cache.evictReg(cr)
		}
		return
	}
	lo.a.StoreWord(r, lo.sp, lo.home(d), armScratch)
	if lo.isScratch(r) {
		lo.cache.assign(d, r)
	}
}

func (lo *lowerer) isScratch(r isa.Reg) bool {
	for _, s := range scratchRegs[lo.k] {
		if s == r {
			return true
		}
	}
	return false
}

func (lo *lowerer) emitMovReg(dst, src isa.Reg) {
	if dst == src {
		return
	}
	lo.a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(dst), Src: isa.R(src)})
}

// edgeAction is a load or store fixing loop bindings across a CFG edge.
type edgeAction struct {
	load bool
	v    prog.VReg
	r    isa.Reg
}

// edgeActions computes binding fixups for the edge u -> t: values bound in
// u's loop but not identically in t's are stored back to their homes;
// values bound in t's loop but not identically in u's are loaded.
func (lo *lowerer) edgeActions(u, t int) []edgeAction {
	var bu, bt map[prog.VReg]isa.Reg
	if l := lo.loopOf[u]; l != nil {
		bu = l.bind[lo.k]
	}
	if l := lo.loopOf[t]; l != nil {
		bt = l.bind[lo.k]
	}
	if len(bu) == 0 && len(bt) == 0 {
		return nil
	}
	var acts []edgeAction
	for v, r := range bu {
		if bt[v] != r {
			acts = append(acts, edgeAction{load: false, v: v, r: r})
		}
	}
	for v, r := range bt {
		if bu[v] != r {
			acts = append(acts, edgeAction{load: true, v: v, r: r})
		}
	}
	sort.Slice(acts, func(i, j int) bool {
		if acts[i].load != acts[j].load {
			return !acts[i].load // stores first
		}
		return acts[i].v < acts[j].v
	})
	return acts
}

func (lo *lowerer) emitEdgeActions(acts []edgeAction) {
	for _, a := range acts {
		if a.load {
			lo.a.LoadWord(a.r, lo.sp, lo.home(a.v), armScratch)
		} else {
			lo.a.StoreWord(a.r, lo.sp, lo.home(a.v), armScratch)
		}
	}
}

func blockLabel(id int) string { return fmt.Sprintf("b%d", id) }

// lower emits the whole function and returns its code and label addresses.
func (lo *lowerer) lower() ([]byte, map[string]uint32, error) {
	lo.prologue()
	if lo.blockOrder != nil {
		for _, id := range lo.blockOrder {
			lo.lowerBlock(lo.f.Blocks[id])
		}
	} else {
		for _, b := range lo.f.Blocks {
			lo.lowerBlock(b)
		}
	}
	lo.epilogue()
	return lo.a.Assemble()
}

func (lo *lowerer) prologue() {
	fs := int32(lo.meta.FrameSize)
	if lo.k == isa.X86 {
		lo.a.Emit(isa.Inst{Op: isa.OpSub, Dst: isa.R(isa.ESP), Src: isa.I(fs)})
	} else {
		lo.a.Emit(isa.Inst{Op: isa.OpSub, Dst: isa.R(isa.SP), Src: isa.I(4), Src2: isa.R(isa.SP)})
		lo.a.Emit(isa.Inst{Op: isa.OpStore, Dst: isa.MB(isa.SP, 0), Src: isa.R(isa.LR)})
		lo.a.AddImm(isa.SP, isa.SP, -fs, armScratch)
	}
	for i, r := range lo.meta.SavedRegs[lo.k] {
		lo.a.StoreWord(r, lo.sp, int32(lo.meta.SaveOff)+int32(4*i), armScratch)
	}
}

func (lo *lowerer) epilogue() {
	lo.a.Label("epi")
	for i, r := range lo.meta.SavedRegs[lo.k] {
		lo.a.LoadWord(r, lo.sp, int32(lo.meta.SaveOff)+int32(4*i), armScratch)
	}
	fs := int32(lo.meta.FrameSize)
	if lo.k == isa.X86 {
		lo.a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(isa.ESP), Src: isa.I(fs)})
		lo.a.Emit(isa.Inst{Op: isa.OpRet})
	} else {
		lo.a.AddImm(isa.SP, isa.SP, fs, armScratch)
		lo.a.Emit(isa.Inst{Op: isa.OpLoad, Dst: isa.R(isa.LR), Src: isa.MB(isa.SP, 0)})
		lo.a.Emit(isa.Inst{Op: isa.OpAdd, Dst: isa.R(isa.SP), Src: isa.I(4), Src2: isa.R(isa.SP)})
		lo.a.Emit(isa.Inst{Op: isa.OpBx, Dst: isa.R(isa.LR)})
	}
}

func (lo *lowerer) lowerBlock(b *prog.Block) {
	if lo.nopRng != nil {
		for n := lo.nopRng.Intn(3); n > 0; n-- {
			lo.a.Emit(isa.Inst{Op: isa.OpNop})
		}
	}
	lo.a.Label(blockLabel(b.ID))
	lo.cache.invalidateAll()
	lo.bind = nil
	if l := lo.loopOf[b.ID]; l != nil {
		lo.bind = l.bind[lo.k]
	}
	for i := range b.Ins {
		lo.lowerInstr(b, &b.Ins[i])
		lo.unpinAll()
	}
}

func (lo *lowerer) lowerInstr(b *prog.Block, in *prog.Instr) {
	switch in.Kind {
	case prog.OpConst:
		r := lo.temp()
		lo.a.Const32(r, uint32(in.Imm))
		lo.finishDef(in.Dst, r)
	case prog.OpCopy:
		r := lo.getVal(in.A)
		lo.finishDef(in.Dst, r)
	case prog.OpBin:
		lo.lowerBin(in)
	case prog.OpBinImm:
		lo.lowerBinImm(in)
	case prog.OpNeg:
		ra := lo.getVal(in.A)
		rt := lo.temp()
		if lo.k == isa.X86 {
			lo.emitMovReg(rt, ra)
			lo.a.Emit(isa.Inst{Op: isa.OpNeg, Dst: isa.R(rt)})
		} else {
			lo.a.Emit(isa.Inst{Op: isa.OpRsb, Dst: isa.R(rt), Src: isa.I(0), Src2: isa.R(ra)})
		}
		lo.finishDef(in.Dst, rt)
	case prog.OpNot:
		ra := lo.getVal(in.A)
		rt := lo.temp()
		if lo.k == isa.X86 {
			lo.emitMovReg(rt, ra)
			lo.a.Emit(isa.Inst{Op: isa.OpNot, Dst: isa.R(rt)})
		} else {
			lo.a.Emit(isa.Inst{Op: isa.OpNot, Dst: isa.R(rt), Src: isa.R(ra)})
		}
		lo.finishDef(in.Dst, rt)
	case prog.OpLoadSlot:
		rt := lo.temp()
		lo.a.LoadWord(rt, lo.sp, int32(lo.meta.SlotOff(in.Slot)), armScratch)
		lo.finishDef(in.Dst, rt)
	case prog.OpStoreSlot:
		ra := lo.getVal(in.A)
		lo.a.StoreWord(ra, lo.sp, int32(lo.meta.SlotOff(in.Slot)), armScratch)
	case prog.OpSlotAddr:
		rt := lo.temp()
		lo.a.AddImm(rt, lo.sp, int32(lo.meta.SlotOff(in.Slot)), armScratch)
		lo.finishDef(in.Dst, rt)
	case prog.OpGlobalAddr:
		rt := lo.temp()
		lo.a.Const32(rt, lo.gaddr(in.Global)+uint32(in.Imm))
		lo.finishDef(in.Dst, rt)
	case prog.OpLoad:
		ra := lo.getVal(in.A)
		rt := lo.temp()
		lo.a.LoadWord(rt, ra, in.Imm, armScratch)
		lo.finishDef(in.Dst, rt)
	case prog.OpStore:
		ra := lo.getVal(in.A)
		rb := lo.getVal(in.B)
		lo.a.StoreWord(rb, ra, in.Imm, armScratch)
	case prog.OpFuncAddr:
		rt := lo.temp()
		lo.a.Const32Wide(rt, lo.entries[in.Fn])
		lo.finishDef(in.Dst, rt)
	case prog.OpCall:
		lo.storeCallArgs(in.Args)
		lo.cache.invalidateAll()
		lo.a.Emit(isa.Inst{Op: isa.OpCall, Target: lo.entries[in.Fn]})
		lo.a.Label(callSiteLabel(lo.callN))
		lo.callN++
		lo.finishDef(in.Dst, lo.retReg)
	case prog.OpCallInd:
		rf := lo.getVal(in.A) // stays pinned across the argument stores
		lo.storeCallArgs(in.Args)
		lo.cache.invalidateAll()
		lo.a.Emit(isa.Inst{Op: isa.OpCallI, Dst: isa.R(rf)})
		lo.a.Label(callSiteLabel(lo.callN))
		lo.callN++
		lo.finishDef(in.Dst, lo.retReg)
	case prog.OpSyscall:
		lo.lowerSyscall(in)
	case prog.OpRet:
		if in.A != prog.NoVReg {
			ra := lo.getVal(in.A)
			lo.emitMovReg(lo.retReg, ra)
		}
		lo.a.Jmp("epi")
	case prog.OpJmp:
		lo.emitEdgeActions(lo.edgeActions(b.ID, in.Blk))
		lo.a.Jmp(blockLabel(in.Blk))
	case prog.OpBr, prog.OpBrImm:
		lo.lowerBranch(b, in)
	default:
		panic(fmt.Sprintf("compiler: unhandled IR op %s", in.Kind))
	}
}

func (lo *lowerer) lowerBin(in *prog.Instr) {
	switch in.Bin {
	case prog.BinDiv:
		lo.lowerDiv(in, false)
		return
	case prog.BinShl, prog.BinShr:
		if lo.k == isa.X86 {
			lo.lowerShiftX86(in)
			return
		}
	}
	ra := lo.getVal(in.A)
	if lo.k == isa.X86 {
		rt := lo.temp()
		lo.emitMovReg(rt, ra)
		opd := lo.getOpd(in.B)
		lo.a.Emit(isa.Inst{Op: in.Bin.MachineOp(), Dst: isa.R(rt), Src: opd})
		lo.finishDef(in.Dst, rt)
		return
	}
	rb := lo.getVal(in.B)
	rt := lo.temp()
	lo.a.Emit(isa.Inst{Op: in.Bin.MachineOp(), Dst: isa.R(rt), Src: isa.R(rb), Src2: isa.R(ra)})
	lo.finishDef(in.Dst, rt)
}

func (lo *lowerer) lowerBinImm(in *prog.Instr) {
	if in.Bin == prog.BinDiv {
		lo.lowerDiv(in, true)
		return
	}
	ra := lo.getVal(in.A)
	rt := lo.temp()
	if lo.k == isa.X86 {
		lo.emitMovReg(rt, ra)
		lo.a.Emit(isa.Inst{Op: in.Bin.MachineOp(), Dst: isa.R(rt), Src: isa.I(in.Imm)})
		lo.finishDef(in.Dst, rt)
		return
	}
	if isa.FitsARMImm(in.Imm) && in.Bin != prog.BinMul {
		lo.a.Emit(isa.Inst{Op: in.Bin.MachineOp(), Dst: isa.R(rt), Src: isa.I(in.Imm), Src2: isa.R(ra)})
	} else {
		ri := lo.temp()
		lo.a.Const32(ri, uint32(in.Imm))
		lo.a.Emit(isa.Inst{Op: in.Bin.MachineOp(), Dst: isa.R(rt), Src: isa.R(ri), Src2: isa.R(ra)})
	}
	lo.finishDef(in.Dst, rt)
}

// lowerDiv handles x86's implicit eax/edx division and ARM's plain form.
func (lo *lowerer) lowerDiv(in *prog.Instr, imm bool) {
	if lo.k == isa.ARM {
		ra := lo.getVal(in.A)
		var rb isa.Reg
		if imm {
			rb = lo.temp()
			lo.a.Const32(rb, uint32(in.Imm))
		} else {
			rb = lo.getVal(in.B)
		}
		rt := lo.temp()
		lo.a.Emit(isa.Inst{Op: isa.OpDiv, Dst: isa.R(rt), Src: isa.R(rb), Src2: isa.R(ra)})
		lo.finishDef(in.Dst, rt)
		return
	}
	// x86: dividend in EAX, divisor any r/m (not EAX/EDX), EDX clobbered.
	lo.cache.evictReg(isa.EAX)
	lo.cache.evictReg(isa.EDX)
	lo.pin(isa.EAX)
	lo.pin(isa.EDX)
	ra := lo.getVal(in.A)
	lo.emitMovReg(isa.EAX, ra)
	var opd isa.Operand
	if imm {
		// EDX is clobbered by the division anyway, so it can carry an
		// immediate divisor without costing a scratch register.
		lo.a.Const32(isa.EDX, uint32(in.Imm))
		opd = isa.R(isa.EDX)
	} else {
		opd = lo.getOpd(in.B)
		if opd.IsReg(isa.EAX) || opd.IsReg(isa.EDX) {
			opd = isa.MB(lo.sp, lo.home(in.B)) // home is current (write-through)
		}
	}
	lo.a.Emit(isa.Inst{Op: isa.OpDiv, Dst: isa.R(isa.EAX), Src: opd})
	lo.finishDef(in.Dst, isa.EAX)
}

// lowerShiftX86 routes variable shift counts through CL.
func (lo *lowerer) lowerShiftX86(in *prog.Instr) {
	lo.cache.evictReg(isa.ECX)
	lo.pin(isa.ECX)
	rb := lo.getVal(in.B)
	lo.emitMovReg(isa.ECX, rb)
	if lo.isScratch(rb) {
		lo.unpin(rb) // the count now lives in ECX
	}
	ra := lo.getVal(in.A)
	rt := lo.temp()
	lo.emitMovReg(rt, ra)
	lo.a.Emit(isa.Inst{Op: in.Bin.MachineOp(), Dst: isa.R(rt), Src: isa.R(isa.ECX)})
	lo.finishDef(in.Dst, rt)
}

// storeCallArgs writes arguments into the outgoing-argument area at the
// bottom of the caller's frame. Pins held by the caller (e.g. an indirect
// call's target register) are preserved; only the per-argument pin is
// dropped between iterations.
func (lo *lowerer) storeCallArgs(args []prog.VReg) {
	for i, av := range args {
		pre := make(map[isa.Reg]bool, len(lo.pins))
		for k, v := range lo.pins {
			pre[k] = v
		}
		r := lo.getVal(av)
		lo.a.StoreWord(r, lo.sp, int32(4*i), armScratch)
		lo.pins = pre
	}
}

func (lo *lowerer) lowerSyscall(in *prog.Instr) {
	argRegs := sysArgRegs[lo.k]
	if len(in.Args) > len(argRegs) {
		panic(fmt.Sprintf("compiler: syscall with %d args (max %d)", len(in.Args), len(argRegs)))
	}
	// Spill loop-bound registers that overlap the syscall register set so
	// homes are current, then pass everything via homes.
	var spilled []edgeAction
	for v, r := range lo.bind {
		for _, ar := range argRegs {
			if r == ar {
				spilled = append(spilled, edgeAction{v: v, r: r})
			}
		}
	}
	sort.Slice(spilled, func(i, j int) bool { return spilled[i].v < spilled[j].v })
	for _, s := range spilled {
		lo.a.StoreWord(s.r, lo.sp, lo.home(s.v), armScratch)
	}
	lo.cache.invalidateAll()
	for i, av := range in.Args {
		lo.a.LoadWord(argRegs[i], lo.sp, lo.home(av), armScratch)
	}
	numReg := lo.retReg // EAX / R0 carries the syscall number
	lo.a.Const32(numReg, uint32(in.Imm))
	lo.a.Emit(isa.Inst{Op: isa.OpSys, Imm: SyscallVector})
	// Restore loop bindings before routing the result, so a bound
	// destination is not re-clobbered by its own (stale) reload.
	for _, s := range spilled {
		lo.a.LoadWord(s.r, lo.sp, lo.home(s.v), armScratch)
	}
	lo.finishDef(in.Dst, lo.retReg)
}

func (lo *lowerer) lowerBranch(b *prog.Block, in *prog.Instr) {
	ra := lo.getVal(in.A)
	if in.Kind == prog.OpBr {
		if lo.k == isa.X86 {
			opd := lo.getOpd(in.B)
			lo.a.Emit(isa.Inst{Op: isa.OpCmp, Dst: isa.R(ra), Src: opd})
		} else {
			rb := lo.getVal(in.B)
			lo.a.Emit(isa.Inst{Op: isa.OpCmp, Dst: isa.R(ra), Src: isa.R(rb)})
		}
	} else {
		if lo.k == isa.ARM && !isa.FitsARMImm(in.Imm) {
			ri := lo.temp()
			lo.a.Const32(ri, uint32(in.Imm))
			lo.a.Emit(isa.Inst{Op: isa.OpCmp, Dst: isa.R(ra), Src: isa.R(ri)})
		} else {
			lo.a.Emit(isa.Inst{Op: isa.OpCmp, Dst: isa.R(ra), Src: isa.I(in.Imm)})
		}
	}
	tActs := lo.edgeActions(b.ID, in.Blk)
	fActs := lo.edgeActions(b.ID, in.Blk2)
	tLabel := blockLabel(in.Blk)
	fLabel := blockLabel(in.Blk2)
	var stubT, stubF string
	if len(tActs) > 0 {
		stubT = fmt.Sprintf("b%d.s%d", b.ID, lo.stubN)
		lo.stubN++
		lo.a.Jcc(in.Cond, stubT)
	} else {
		lo.a.Jcc(in.Cond, tLabel)
	}
	// Always end the block with an explicit jump (even for layout-order
	// fall-through) so every basic block ends in a control transfer the
	// DBT can translate independently.
	if len(fActs) > 0 {
		stubF = fmt.Sprintf("b%d.s%d", b.ID, lo.stubN)
		lo.stubN++
		lo.a.Jmp(stubF)
	} else {
		lo.a.Jmp(fLabel)
	}
	if stubT != "" {
		lo.a.Label(stubT)
		lo.emitEdgeActions(tActs)
		lo.a.Jmp(tLabel)
	}
	if stubF != "" {
		lo.a.Label(stubF)
		lo.emitEdgeActions(fActs)
		lo.a.Jmp(fLabel)
	}
}
