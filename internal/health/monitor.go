package health

import (
	"time"

	"hipstr/internal/telemetry"
)

// Config assembles a Monitor: history bounds, the rule set, and the
// flight recorder's forensic sources.
type Config struct {
	// WindowSamples / MaxSeries bound the history ring (0 = defaults).
	WindowSamples int
	MaxSeries     int
	// Rules is the declarative SLO/anomaly rule set.
	Rules []Rule
	// Recorder wires the forensic sources and artifact dir.
	Recorder RecorderConfig
	// Telemetry, when set, receives the health engine's own series
	// (health.samples, health.incidents.*) and the recorder's incident
	// open/resolve events — so the watcher is itself watchable.
	Telemetry *telemetry.Telemetry
}

// Monitor owns one history ring, one rule engine, and one incident
// recorder. Observe is its single write entry point and must be called
// from one goroutine (the one that snapshots the registry); every other
// method is safe concurrently with it.
type Monitor struct {
	History  *History
	Engine   *Engine
	Recorder *Recorder
}

// NewMonitor builds the monitor.
func NewMonitor(cfg Config) *Monitor {
	if cfg.Recorder.Emit == nil && cfg.Telemetry != nil {
		tel := cfg.Telemetry
		cfg.Recorder.Emit = func(e telemetry.Event) { tel.Emit(e) }
	}
	h := NewHistory(cfg.WindowSamples, cfg.MaxSeries)
	rec := NewRecorder(cfg.Recorder)
	m := &Monitor{
		History:  h,
		Engine:   NewEngine(h, rec, cfg.Rules),
		Recorder: rec,
	}
	if tel := cfg.Telemetry; tel != nil {
		tel.Reg.RegisterCollector(func() {
			opened, resolved, stored := rec.Counts()
			tel.Counter("health.incidents.opened").Set(opened)
			tel.Counter("health.incidents.resolved").Set(resolved)
			tel.Gauge("health.incidents.stored").Set(float64(stored))
			tel.Gauge("health.incidents.open").Set(float64(opened - resolved))
			tel.Counter("health.samples").Set(h.Total())
			tel.Counter("health.series_dropped").Set(h.DroppedSeries())
		})
	}
	return m
}

// Observe appends one registry snapshot to the history and evaluates the
// rules at tsNS.
func (m *Monitor) Observe(tsNS int64, snap telemetry.Snapshot) {
	m.History.Append(tsNS, snap)
	m.Engine.Eval(tsNS)
}

// ObserveNow is Observe stamped with the current wall clock.
func (m *Monitor) ObserveNow(snap telemetry.Snapshot) {
	m.Observe(time.Now().UnixNano(), snap)
}

// OpenIncidents reports how many incidents are currently open.
func (m *Monitor) OpenIncidents() int {
	opened, resolved, _ := m.Recorder.Counts()
	return int(opened - resolved)
}
