package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: hipstr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInterpreterSteps/x86-4                 	33491311	        34.39 ns/op	  29076476 steps/s	       0 B/op	       0 allocs/op
BenchmarkInterpreterSteps/x86-observed-4        	22470790	        52.79 ns/op	  18943change steps/s
BenchmarkInterpreterSteps/arm-4                 	38215176	        31.34 ns/op	  31908077 steps/s	       0 B/op	       0 allocs/op
BenchmarkFlat-4                                 	  100000	       475.70 ns/op	     112 B/op	       2 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	best := map[string]Result{}
	env := map[string]string{}
	parseBenchOutput(sampleOutput, best, env)

	if env["goos"] != "linux" || env["goarch"] != "amd64" ||
		env["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("environment header not captured: %v", env)
	}
	x86, ok := best["x86"]
	if !ok {
		t.Fatalf("x86 result missing: %v", best)
	}
	if x86.NsPerStep != 34.39 || x86.StepsPerSec != 29076476 ||
		x86.BytesPerOp != 0 || x86.AllocsPerOp != 0 {
		t.Fatalf("x86 parsed wrong: %+v", x86)
	}
	if _, ok := best["x86-observed"]; ok {
		t.Fatal("malformed line should be skipped, not folded in")
	}
	// A flat benchmark keys on its full (procs-stripped) name and derives
	// steps/s from ns/op when the metric is absent.
	flat, ok := best["BenchmarkFlat"]
	if !ok {
		t.Fatalf("flat result missing: %v", best)
	}
	if flat.AllocsPerOp != 2 || flat.BytesPerOp != 112 {
		t.Fatalf("flat allocs parsed wrong: %+v", flat)
	}
	if flat.StepsPerSec < 2_102_165 || flat.StepsPerSec > 2_102_166 {
		t.Fatalf("steps/s fallback wrong: %v", flat.StepsPerSec)
	}
}

func TestParseBenchOutputKeepsBest(t *testing.T) {
	best := map[string]Result{}
	parseBenchOutput("BenchmarkX/a-4 10 50.0 ns/op\n", best, nil)
	parseBenchOutput("BenchmarkX/a-4 10 40.0 ns/op\n", best, nil)
	parseBenchOutput("BenchmarkX/a-4 10 60.0 ns/op\n", best, nil)
	if got := best["a"].NsPerStep; got != 40.0 {
		t.Fatalf("best ns/op = %v, want 40.0", got)
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkInterpreterSteps/x86-observed-4": "BenchmarkInterpreterSteps/x86-observed",
		"BenchmarkFlat-16":                         "BenchmarkFlat",
		"BenchmarkNoSuffix":                        "BenchmarkNoSuffix",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
