// migration demonstrates PSR-aware cross-ISA execution migration: a
// benchmark starts on the x86 core, is migrated to the ARM core and back
// at phase boundaries (with full stack transformation between relocation
// maps), and still computes the same result as native execution.
package main

import (
	"fmt"
	"log"

	"hipstr"
)

func main() {
	bin, err := hipstr.CompileWorkload("libquantum")
	if err != nil {
		log.Fatal(err)
	}

	// Reference result.
	native, err := hipstr.RunNative(bin, hipstr.X86)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := native.Run(80_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native x86: exit=%d\n", native.ExitCode)

	// Protected run with phase migrations forced every few hundred
	// thousand instructions.
	cfg := hipstr.Defaults()
	cfg.DBT.MigrateProb = 0 // migrations below are explicit phase requests
	sys, err := hipstr.Protect(bin, cfg)
	if err != nil {
		log.Fatal(err)
	}
	hops := 0
	for !sys.Exited() && hops < 6 {
		if _, err := sys.Run(40_000); err != nil {
			log.Fatal(err)
		}
		if sys.Exited() {
			break
		}
		before := sys.Migrations()
		sys.RequestPhaseMigration()
		for !sys.Exited() && sys.Migrations() == before {
			if _, err := sys.Run(10_000); err != nil {
				log.Fatal(err)
			}
		}
		if sys.Migrations() > before {
			hops++
			fmt.Printf("hop %d: now on %-4s core, migration cost %6.0f us "+
				"(%d frames, %d objects moved so far)\n",
				hops, sys.Active(), sys.Engine.Stats.LastCostMicros,
				sys.Engine.Stats.FramesMoved, sys.Engine.Stats.ObjectsMoved)
		}
	}
	for !sys.Exited() {
		if _, err := sys.Run(10_000_000); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("protected : exit=%d after %d migrations (total cost %.2f ms)\n",
		sys.ExitCode(), sys.Migrations(), sys.Engine.Stats.TotalCostMicros/1000)
	if sys.ExitCode() == native.ExitCode {
		fmt.Println("results match: cross-ISA state transformation preserved the computation.")
	} else {
		fmt.Println("MISMATCH — this would be a bug.")
	}
}
