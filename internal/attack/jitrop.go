package attack

import (
	"hipstr/internal/dbt"
	"hipstr/internal/fatbin"
	"hipstr/internal/gadget"
	"hipstr/internal/isa"
)

// JITROPResult is the Figure 5 analysis for one benchmark: the attack
// surface a just-in-time code-reuse attacker sees after leaking the code
// cache, and how heterogeneous-ISA migration gates it (§7.1).
type JITROPResult struct {
	Benchmark string
	// TotalViable is the brute-force-viable gadget population of the
	// whole binary (the JIT-ROP attacker's upper bound).
	TotalViable int
	// InCache counts viable gadgets whose enclosing block is translated —
	// the only ones whose randomized form the cache leak reveals.
	InCache int
	// TriggerMigration counts in-cache gadgets whose use (an indirect
	// transfer to a non-indirect-target) raises a security event, i.e.
	// probabilistically migrates away.
	TriggerMigration int
	// Survivors counts in-cache gadgets at already-translated indirect
	// targets or call sites — the only migration-free entries.
	Survivors int
	// SufficientForExploit reports whether the survivors can populate the
	// four execve registers (the minimal shellcode of §6).
	SufficientForExploit bool
}

// SimulateJITROP runs the workload under a PSR VM for warmupSteps to reach
// steady state, then evaluates the code-reuse surface the cache leak
// exposes.
func SimulateJITROP(bin *fatbin.Binary, cfg dbt.Config, warmupSteps uint64) (JITROPResult, error) {
	res := JITROPResult{Benchmark: bin.Module}
	cfg.MigrateProb = 0 // measurement run; migration is modeled analytically
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		return res, err
	}
	if _, err := vm.Run(warmupSteps); err != nil {
		return res, err
	}
	cache := vm.Cache(isa.X86)

	gs := gadget.Mine(bin, isa.X86, 0)
	an := gadget.NewAnalyzer(bin)
	popRegs := map[isa.Reg]bool{}
	for i := range gs {
		g := &gs[i]
		e := an.NativeEffect(g)
		if !e.Viable() {
			continue
		}
		res.TotalViable++
		if !regionTranslated(bin, cache, g.Addr) {
			continue // outside the cache: undiscoverable by the leak
		}
		res.InCache++
		// Chaining into the gadget is an indirect transfer; unless its
		// address is a known indirect target, the VM raises a security
		// event and may migrate.
		if cache.IsIndirectTarget(g.Addr) {
			res.Survivors++
			for r := range e.Pops {
				popRegs[r] = true
			}
		} else {
			res.TriggerMigration++
		}
	}
	needed := 0
	for _, r := range execveRegs {
		if popRegs[r] {
			needed++
		}
	}
	res.SufficientForExploit = needed == len(execveRegs)
	return res, nil
}

// regionTranslated reports whether a live translation covers addr — the
// JIT-ROP attacker's "discoverable through a cache leak" test.
func regionTranslated(bin *fatbin.Binary, cache *dbt.CodeCache, addr uint32) bool {
	if bin.FuncAt(isa.X86, addr) == nil {
		return false
	}
	return cache.Covered(addr)
}
