package health

import (
	"fmt"
	"time"
)

// Op is the breach direction of a rule.
type Op string

// The comparison directions.
const (
	OpAbove Op = ">"
	OpBelow Op = "<"
)

func (op Op) breaches(v, threshold float64) bool {
	if op == OpBelow {
		return v < threshold
	}
	return v > threshold
}

// RuleKind selects how a rule reads the history.
type RuleKind string

// The rule kinds.
const (
	// KindThreshold compares the series' latest value to Threshold.
	KindThreshold RuleKind = "threshold"
	// KindRate compares the counter-reset-safe per-second rate over
	// Window to Threshold — the rule kind for counters, where a fleet
	// respawn resetting a tenant's counters must not read as a negative
	// spike.
	KindRate RuleKind = "rate"
	// KindDeriv compares the signed per-second slope over Window to
	// Threshold — the rate-of-change kind for gauges (queue depths,
	// occupancy), where decreases are real.
	KindDeriv RuleKind = "deriv"
	// KindBurn is the SLO burn-rate kind: it fires when the series
	// breaches Threshold in at least Fraction of the Window's samples,
	// tolerating isolated excursions that a plain threshold would page on.
	KindBurn RuleKind = "burn"
)

// Rule is one declarative SLO/anomaly condition over a history series.
type Rule struct {
	// Name identifies the rule (and names its incidents).
	Name string `json:"name"`
	// Series is the history series the rule watches.
	Series string `json:"series"`
	// Kind selects the evaluation (threshold | rate | deriv | burn).
	Kind RuleKind `json:"kind"`
	// Op is the breach direction (default: above).
	Op Op `json:"op,omitempty"`
	// Threshold is the breach boundary in the kind's unit (value for
	// threshold/burn, per-second for rate/deriv).
	Threshold float64 `json:"threshold"`
	// Window is the lookback for rate/deriv/burn kinds.
	Window time.Duration `json:"window_ns,omitempty"`
	// Fraction is the burn kind's minimum breaching-sample fraction.
	Fraction float64 `json:"fraction,omitempty"`
	// For is the open hysteresis: the condition must hold continuously
	// this long before an incident opens, so a single-sample spike never
	// pages. Zero opens on the first breaching evaluation.
	For time.Duration `json:"for_ns,omitempty"`
	// Cooldown is the resolve hysteresis: an open incident resolves only
	// after the condition has been clear continuously this long.
	Cooldown time.Duration `json:"cooldown_ns,omitempty"`
	// Severity labels incidents ("page", "warn"; free-form).
	Severity string `json:"severity,omitempty"`
	// OffenderKey names the tenant field the flight recorder ranks
	// offenders by for this rule (default "respawns").
	OffenderKey string `json:"offender_key,omitempty"`
	// Description explains what the rule watches for, for bundles and
	// dashboards.
	Description string `json:"description,omitempty"`
}

// value evaluates the rule's measure at nowNS; ok=false means the history
// cannot answer yet (unknown series, or too few samples in the window),
// which is always treated as healthy.
func (r Rule) value(h *History, nowNS int64) (float64, bool) {
	switch r.Kind {
	case KindRate:
		return h.Rate(r.Series, r.Window, nowNS)
	case KindDeriv:
		return h.Deriv(r.Series, r.Window, nowNS)
	case KindBurn:
		frac, n := h.BurnFraction(r.Series, r.Window, nowNS, r.op(), r.Threshold)
		if n < 2 {
			return 0, false
		}
		return frac, true
	default: // KindThreshold
		p, ok := h.Latest(r.Series)
		return p.Value, ok
	}
}

// breaching reports whether measured value v violates the rule.
func (r Rule) breaching(v float64) bool {
	if r.Kind == KindBurn {
		return v >= r.Fraction && r.Fraction > 0
	}
	return r.op().breaches(v, r.Threshold)
}

func (r Rule) op() Op {
	if r.Op == "" {
		return OpAbove
	}
	return r.Op
}

// Condition renders the rule's condition for human-readable summaries.
func (r Rule) Condition() string {
	switch r.Kind {
	case KindRate, KindDeriv:
		return fmt.Sprintf("%s(%s, %v) %s %s/s", r.Kind, r.Series, r.Window, r.op(), fmtValue(r.Threshold))
	case KindBurn:
		return fmt.Sprintf("%s %s %s for >= %.0f%% of %v", r.Series, r.op(), fmtValue(r.Threshold), 100*r.Fraction, r.Window)
	default:
		return fmt.Sprintf("%s %s %s", r.Series, r.op(), fmtValue(r.Threshold))
	}
}

// ruleState is one rule's hysteresis bookkeeping.
type ruleState struct {
	rule Rule
	// badSinceNS is when the condition last transitioned to breaching
	// (0 = currently clear); goodSinceNS mirrors it for resolution.
	badSinceNS  int64
	goodSinceNS int64
	open        *Incident
}

// Engine evaluates rules against a history and drives the incident
// recorder. It has a single caller (the monitor's Observe loop), so it
// needs no lock of its own; the recorder it drives is what HTTP readers
// touch, and that has one.
type Engine struct {
	history *History
	rec     *Recorder
	states  []*ruleState
}

// NewEngine returns an engine evaluating rules over h, reporting to rec.
func NewEngine(h *History, rec *Recorder, rules []Rule) *Engine {
	e := &Engine{history: h, rec: rec}
	for _, r := range rules {
		if r.OffenderKey == "" {
			r.OffenderKey = "respawns"
		}
		e.states = append(e.states, &ruleState{rule: r})
	}
	return e
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule {
	out := make([]Rule, 0, len(e.states))
	for _, s := range e.states {
		out = append(out, s.rule)
	}
	return out
}

// Eval evaluates every rule at nowNS, opening and resolving incidents
// through the recorder. Call it after History.Append from the same
// goroutine.
func (e *Engine) Eval(nowNS int64) {
	for _, s := range e.states {
		v, ok := s.rule.value(e.history, nowNS)
		bad := ok && s.rule.breaching(v)
		if bad {
			s.goodSinceNS = 0
			if s.badSinceNS == 0 {
				s.badSinceNS = nowNS
			}
		} else {
			s.badSinceNS = 0
			if s.goodSinceNS == 0 {
				s.goodSinceNS = nowNS
			}
		}
		switch {
		case s.open == nil && bad && nowNS-s.badSinceNS >= s.rule.For.Nanoseconds():
			s.open = e.rec.Open(s.rule, v, e.history, nowNS)
		case s.open != nil && bad:
			e.rec.UpdatePeak(s.open, v)
		case s.open != nil && !bad && nowNS-s.goodSinceNS >= s.rule.Cooldown.Nanoseconds():
			e.rec.Resolve(s.open, nowNS)
			s.open = nil
		}
	}
}

// OpenCount returns how many of the engine's rules have an open incident.
func (e *Engine) OpenCount() int {
	n := 0
	for _, s := range e.states {
		if s.open != nil {
			n++
		}
	}
	return n
}
