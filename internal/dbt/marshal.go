package dbt

import (
	"hipstr/internal/isa"
	"hipstr/internal/psr"
)

// Syscall register sets (must match the compiler's lowering conventions).
var x86SysRegs = []isa.Reg{isa.EAX, isa.EBX, isa.ECX, isa.EDX, isa.ESI, isa.EDI}
var armSysRegs = []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R3, isa.R4}

// The syscall marshal: the kernel ABI reads *physical* registers, but
// under PSR the architectural values live in relocated locations.
//
//	phase 1: stage each relocated architectural value into the temp area
//	phase 2: save EVERY physical syscall register into the temp area
//	phase 3: load the staged architectural values into their physical regs
//	         ... int 0x80 / svc ...
//	phase 4: route the result register's value to its relocated home
//	phase 5: restore every saved physical register (except the one now
//	         holding the result), so physical state that did not belong to
//	         this function — e.g. a caller's live callee-saved value in
//	         transit under the boundary convention — survives unharmed.
func (t *translator) emitSyscallMarshalX86() {
	a := t.a
	m := t.m
	esp := isa.ESP
	tempAt := func(i int) int32 { return m.TempOff + 4*int32(i) - t.delta }
	relocated := func(r isa.Reg) bool {
		l := m.LocOfReg(r)
		return !(l.Kind == psr.LocReg && l.Reg == r)
	}
	// Phase 1: stage relocated architectural values.
	for i, r := range x86SysRegs {
		if !relocated(r) {
			continue
		}
		l := m.LocOfReg(r)
		if l.Kind == psr.LocReg {
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(esp, tempAt(i)), Src: isa.R(l.Reg)})
		} else {
			tmp := t.tmp()
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(tmp), Src: isa.MB(esp, l.Off-t.delta)})
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(esp, tempAt(i)), Src: isa.R(tmp)})
		}
	}
	// Phase 2: save every physical syscall register.
	saveSlot := func(j int) int32 { return tempAt(len(x86SysRegs) + j) }
	for j, r := range x86SysRegs {
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(esp, saveSlot(j)), Src: isa.R(r)})
	}
	// Phase 3: load architectural values into physical registers.
	for i, r := range x86SysRegs {
		if relocated(r) {
			a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(r), Src: isa.MB(esp, tempAt(i))})
		}
	}
	a.Emit(isa.Inst{Op: isa.OpSys, Imm: vecSyscall})
	// Phase 4: route the result to arch EAX's relocated home.
	resultHome := isa.NoReg
	switch l := m.LocOfReg(isa.EAX); {
	case l.Kind == psr.LocStack:
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.MB(esp, l.Off-t.delta), Src: isa.R(isa.EAX)})
	case l.Reg != isa.EAX:
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(l.Reg), Src: isa.R(isa.EAX)})
		resultHome = l.Reg
	default:
		resultHome = isa.EAX
	}
	// Phase 5: restore physical registers.
	for j, r := range x86SysRegs {
		if r == resultHome {
			continue
		}
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(r), Src: isa.MB(esp, saveSlot(j))})
	}
}

// emitSyscallMarshalARM is the ARM counterpart of the syscall marshal.
func (t *translator) emitSyscallMarshalARM() {
	a := t.a
	m := t.m
	sp := isa.SP
	tempAt := func(i int) int32 { return m.TempOff + 4*int32(i) - t.delta }
	relocated := func(r isa.Reg) bool {
		l := m.LocOfReg(r)
		return !(l.Kind == psr.LocReg && l.Reg == r)
	}
	for i, r := range armSysRegs {
		if !relocated(r) {
			continue
		}
		l := m.LocOfReg(r)
		if l.Kind == psr.LocReg {
			a.StoreWord(l.Reg, sp, tempAt(i), isa.R12)
		} else {
			tmp := t.tmp()
			a.LoadWord(tmp, sp, l.Off-t.delta, armScratchFor(isa.ARM, tmp))
			a.StoreWord(tmp, sp, tempAt(i), armScratchFor(isa.ARM, tmp))
		}
	}
	saveSlot := func(j int) int32 { return tempAt(len(armSysRegs) + j) }
	for j, r := range armSysRegs {
		a.StoreWord(r, sp, saveSlot(j), isa.R12)
	}
	for i, r := range armSysRegs {
		if relocated(r) {
			a.LoadWord(r, sp, tempAt(i), armScratchFor(isa.ARM, r))
		}
	}
	a.Emit(isa.Inst{Op: isa.OpSys, Imm: vecSyscall})
	resultHome := isa.NoReg
	switch l := m.LocOfReg(isa.R0); {
	case l.Kind == psr.LocStack:
		a.StoreWord(isa.R0, sp, l.Off-t.delta, isa.R12)
	case l.Reg != isa.R0:
		a.Emit(isa.Inst{Op: isa.OpMov, Dst: isa.R(l.Reg), Src: isa.R(isa.R0)})
		resultHome = l.Reg
	default:
		resultHome = isa.R0
	}
	for j, r := range armSysRegs {
		if r == resultHome {
			continue
		}
		a.LoadWord(r, sp, saveSlot(j), armScratchFor(isa.ARM, r))
	}
}
