package telemetry

import (
	"sync"
	"testing"
)

// TestConcurrentCountersAndSnapshots drives counters, gauges, histograms,
// and the tracer from many goroutines while snapshots are taken
// concurrently, then verifies the final totals. Run with -race: the
// registry's hot-path primitives must be wait-free against Snapshot.
func TestConcurrentCountersAndSnapshots(t *testing.T) {
	const (
		writers = 8
		perG    = 5000
	)
	tel := New()
	c := tel.Counter("race.counter")
	h := tel.Histogram("race.hist")
	g := tel.Gauge("race.gauge")

	stop := make(chan struct{})
	snapDone := make(chan struct{})
	// Snapshot continuously while writers run; intermediate snapshots
	// must be internally consistent (counter never exceeds the total).
	go func() {
		defer close(snapDone)
		var prev Snapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := tel.Snapshot()
			if s.Counters["race.counter"] > writers*perG {
				t.Error("counter overshot")
				return
			}
			d := s.Delta(prev)
			if d.Counters["race.counter"] > writers*perG {
				t.Error("delta overshot")
				return
			}
			prev = s
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(float64(i%100) + 0.5)
				g.Add(1)
				if i%500 == 0 {
					tel.Emit(Event{Type: EvPolicy, Detail: "race"})
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-snapDone

	s := tel.Snapshot()
	if got := s.Counters["race.counter"]; got != writers*perG {
		t.Fatalf("counter = %d, want %d", got, writers*perG)
	}
	if got := s.Gauges["race.gauge"]; got != writers*perG {
		t.Fatalf("gauge = %v, want %d", got, writers*perG)
	}
	hs := s.Histograms["race.hist"]
	if hs.Count != writers*perG {
		t.Fatalf("hist count = %d, want %d", hs.Count, writers*perG)
	}
	var n uint64
	for _, b := range hs.Buckets {
		n += b.Count
	}
	if n != hs.Count {
		t.Fatalf("bucket sum %d != count %d", n, hs.Count)
	}
}
