package isa

import (
	"encoding/binary"
	"fmt"
)

// The ARM-like ISA uses fixed 32-bit words with the following layout:
//
//	[31:28] condition nibble (branches only; all other ops require AL)
//	[27:22] opcode (6 bits)
//	[21:18] rd
//	[17:14] rn
//	[13]    immediate flag for operand2
//	[12:0]  operand2: signed 13-bit immediate, or rm in [3:0] with [12:4]=0
//
// Branch offsets occupy [21:0] as a signed word count. MOVW/MOVT carry a
// 16-bit immediate in [15:0]. PUSH/POP carry a register mask in [15:0].
// SVC carries a 16-bit vector. The decoder is strict: undefined opcodes,
// non-AL conditions on non-branches, and nonzero must-be-zero fields all
// reject, which is what gives ARM its far smaller unintentional-gadget
// surface.
const (
	aopMov  = 0x01
	aopAdd  = 0x02
	aopSub  = 0x03
	aopRsb  = 0x04
	aopAnd  = 0x05
	aopOrr  = 0x06
	aopEor  = 0x07
	aopLsl  = 0x08
	aopLsr  = 0x09
	aopMul  = 0x0A
	aopDiv  = 0x0B
	aopCmp  = 0x0C
	aopTst  = 0x0D
	aopMvn  = 0x0E
	aopLdr  = 0x10
	aopStr  = 0x11
	aopB    = 0x12
	aopBl   = 0x13
	aopBx   = 0x14
	aopBlx  = 0x15
	aopPush = 0x16
	aopPop  = 0x17
	aopSvc  = 0x18
	aopNop  = 0x19
	aopHlt  = 0x1A
	aopMovw = 0x1C
	aopMovt = 0x1D
)

// armCondNibble maps Cond to the encoding nibble (ARM AArch32 values).
var armCondNibble = map[Cond]uint32{
	CondEQ: 0x0, CondNE: 0x1, CondAE: 0x2, CondB: 0x3,
	CondGE: 0xA, CondLT: 0xB, CondGT: 0xC, CondLE: 0xD,
	CondAlways: 0xE,
}

var armNibbleCond = func() map[uint32]Cond {
	m := make(map[uint32]Cond, len(armCondNibble))
	for c, n := range armCondNibble {
		m[n] = c
	}
	return m
}()

// armImmMin and armImmMax bound the signed 13-bit operand2 immediate.
const (
	armImmMin = -(1 << 12)
	armImmMax = (1 << 12) - 1
)

// FitsARMImm reports whether v is encodable as an ARM operand2 immediate.
func FitsARMImm(v int32) bool { return v >= armImmMin && v <= armImmMax }

func armWord(cond uint32, op uint32, rd, rn Reg, low14 uint32) uint32 {
	return cond<<28 | op<<22 | uint32(rd&0xF)<<18 | uint32(rn&0xF)<<14 | low14&0x3FFF
}

func armOp2(o Operand) (uint32, error) {
	switch o.Kind {
	case OpdReg:
		if o.Reg > 15 {
			return 0, fmt.Errorf("%w: arm register %d", ErrInvalid, o.Reg)
		}
		return uint32(o.Reg), nil
	case OpdImm:
		if !FitsARMImm(o.Imm) {
			return 0, fmt.Errorf("%w: arm immediate %d out of range", ErrInvalid, o.Imm)
		}
		return 1<<13 | uint32(o.Imm)&0x1FFF, nil
	default:
		return 0, fmt.Errorf("%w: arm operand2 kind %d", ErrInvalid, o.Kind)
	}
}

// EncodeARM encodes in as a single 32-bit word. Instructions whose
// addressing needs exceed the encoding (e.g. large memory displacements)
// must be legalized by the caller into MOVW/MOVT + register-offset forms.
func EncodeARM(in *Inst) ([]byte, error) {
	cond := armCondNibble[CondAlways]
	var w uint32
	reg := func(o Operand, what string) (Reg, error) {
		if o.Kind != OpdReg || o.Reg > 15 {
			return 0, fmt.Errorf("%w: %s must be an arm register", ErrInvalid, what)
		}
		return o.Reg, nil
	}
	switch in.Op {
	case OpNop:
		w = armWord(cond, aopNop, 0, 0, 0)
	case OpHlt:
		w = armWord(cond, aopHlt, 0, 0, 0)
	case OpSys:
		w = cond<<28 | aopSvc<<22 | uint32(uint16(in.Imm))
	case OpMov, OpNot:
		rd, err := reg(in.Dst, "mov dst")
		if err != nil {
			return nil, err
		}
		if in.Op == OpMov && in.Src.Kind == OpdImm && !FitsARMImm(in.Src.Imm) {
			// Wide immediate: movw zero-extended imm16.
			if in.Src.Imm < 0 || in.Src.Imm > 0xFFFF {
				return nil, fmt.Errorf("%w: mov immediate %#x needs movw/movt sequence", ErrInvalid, uint32(in.Src.Imm))
			}
			w = cond<<28 | aopMovw<<22 | uint32(rd)<<18 | uint32(uint16(in.Src.Imm))
			break
		}
		op2, err := armOp2(in.Src)
		if err != nil {
			return nil, err
		}
		op := uint32(aopMov)
		if in.Op == OpNot {
			op = aopMvn
		}
		w = armWord(cond, op, rd, 0, op2)
	case OpMovT:
		rd, err := reg(in.Dst, "movt dst")
		if err != nil {
			return nil, err
		}
		if in.Src.Kind != OpdImm {
			return nil, fmt.Errorf("%w: movt needs immediate", ErrInvalid)
		}
		w = cond<<28 | aopMovt<<22 | uint32(rd)<<18 | uint32(uint16(in.Src.Imm))
	case OpAdd, OpSub, OpRsb, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv:
		rd, err := reg(in.Dst, "alu dst")
		if err != nil {
			return nil, err
		}
		src2 := in.Src2
		if src2.Kind == OpdNone {
			// Two-operand form: rd = rd op src.
			src2 = in.Dst
		}
		rn, err := reg(src2, "alu src2")
		if err != nil {
			return nil, err
		}
		op2, err := armOp2(in.Src)
		if err != nil {
			return nil, err
		}
		var op uint32
		switch in.Op {
		case OpAdd:
			op = aopAdd
		case OpSub:
			op = aopSub
		case OpRsb:
			op = aopRsb
		case OpAnd:
			op = aopAnd
		case OpOr:
			op = aopOrr
		case OpXor:
			op = aopEor
		case OpShl:
			op = aopLsl
		case OpShr:
			op = aopLsr
		case OpMul:
			op = aopMul
			if in.Src.Kind != OpdReg {
				return nil, fmt.Errorf("%w: mul operand must be register", ErrInvalid)
			}
		case OpDiv:
			op = aopDiv
			if in.Src.Kind != OpdReg {
				return nil, fmt.Errorf("%w: div operand must be register", ErrInvalid)
			}
		}
		w = armWord(cond, op, rd, rn, op2)
	case OpCmp, OpTest:
		rn, err := reg(in.Dst, "cmp lhs")
		if err != nil {
			return nil, err
		}
		op2, err := armOp2(in.Src)
		if err != nil {
			return nil, err
		}
		op := uint32(aopCmp)
		if in.Op == OpTest {
			op = aopTst
		}
		w = armWord(cond, op, 0, rn, op2)
	case OpLoad, OpStore:
		var rd Reg
		var m MemRef
		var err error
		if in.Op == OpLoad {
			if rd, err = reg(in.Dst, "ldr dst"); err != nil {
				return nil, err
			}
			if in.Src.Kind != OpdMem {
				return nil, fmt.Errorf("%w: ldr src must be memory", ErrInvalid)
			}
			m = in.Src.Mem
		} else {
			if rd, err = reg(in.Src, "str src"); err != nil {
				return nil, err
			}
			if in.Dst.Kind != OpdMem {
				return nil, fmt.Errorf("%w: str dst must be memory", ErrInvalid)
			}
			m = in.Dst.Mem
		}
		if !m.HasBase || m.Base > 15 {
			return nil, fmt.Errorf("%w: arm memory operand needs base register", ErrInvalid)
		}
		var op2 uint32
		switch {
		case m.HasIndex && m.Disp == 0 && (m.Scale <= 1):
			if m.Index > 15 {
				return nil, fmt.Errorf("%w: arm index register", ErrInvalid)
			}
			op2 = uint32(m.Index)
		case !m.HasIndex:
			if !FitsARMImm(m.Disp) {
				return nil, fmt.Errorf("%w: arm load/store displacement %d", ErrInvalid, m.Disp)
			}
			op2 = 1<<13 | uint32(m.Disp)&0x1FFF
		default:
			return nil, fmt.Errorf("%w: arm scaled/displaced index unsupported", ErrInvalid)
		}
		op := uint32(aopLdr)
		if in.Op == OpStore {
			op = aopStr
		}
		w = armWord(cond, op, rd, m.Base, op2)
	case OpJmp, OpJcc, OpCall:
		c := in.Cond
		if in.Op != OpJcc {
			c = CondAlways
		}
		nib, ok := armCondNibble[c]
		if !ok {
			return nil, fmt.Errorf("%w: arm condition %s", ErrInvalid, c)
		}
		rel := (int64(in.Target) - int64(in.Addr) - 4) / 4
		if rel < -(1<<21) || rel >= 1<<21 {
			return nil, fmt.Errorf("%w: arm branch out of range", ErrInvalid)
		}
		op := uint32(aopB)
		if in.Op == OpCall {
			op = aopBl
		}
		w = nib<<28 | op<<22 | uint32(rel)&0x3FFFFF
	case OpBx, OpCallI, OpJmpI:
		rm, err := reg(in.Dst, "bx target")
		if err != nil {
			return nil, err
		}
		op := uint32(aopBx)
		if in.Op == OpCallI {
			op = aopBlx
		}
		w = armWord(cond, op, 0, 0, uint32(rm))
	case OpPushM, OpPopM:
		op := uint32(aopPush)
		if in.Op == OpPopM {
			op = aopPop
		}
		w = cond<<28 | op<<22 | uint32(in.RegMask)
	case OpPush:
		// push rX == stmdb sp!, {rX}
		r, err := reg(in.Src, "push src")
		if err != nil {
			return nil, err
		}
		w = cond<<28 | aopPush<<22 | 1<<uint32(r)
	case OpPop:
		r, err := reg(in.Dst, "pop dst")
		if err != nil {
			return nil, err
		}
		w = cond<<28 | aopPop<<22 | 1<<uint32(r)
	default:
		return nil, fmt.Errorf("%w: op %s not encodable on arm", ErrInvalid, in.Op)
	}
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, w)
	return out, nil
}

// DecodeARM decodes the 4-byte word at the start of b, located at addr.
// addr must be word-aligned.
func DecodeARM(b []byte, addr uint32) (Inst, error) {
	in := Inst{ISA: ARM, Addr: addr, Size: 4, Cond: CondAlways}
	if addr%4 != 0 {
		return in, fmt.Errorf("%w: unaligned arm address %#x", ErrInvalid, addr)
	}
	if len(b) < 4 {
		return in, ErrTruncated
	}
	w := binary.LittleEndian.Uint32(b)
	nib := w >> 28
	cond, ok := armNibbleCond[nib]
	if !ok {
		return in, ErrInvalid
	}
	op := w >> 22 & 0x3F
	rd := Reg(w >> 18 & 0xF)
	rn := Reg(w >> 14 & 0xF)
	immFlag := w>>13&1 == 1
	op2 := func() Operand {
		if immFlag {
			v := int32(w & 0x1FFF)
			if v&(1<<12) != 0 {
				v |= ^int32(0x1FFF) // sign-extend 13 bits
			}
			return I(v)
		}
		return R(Reg(w & 0xF))
	}
	mbzOp2Reg := func() bool { return immFlag || w&0x1FF0 == 0 }
	// Conditions are only architecturally meaningful on branches.
	if cond != CondAlways && op != aopB {
		return in, ErrInvalid
	}
	switch op {
	case aopNop, aopHlt:
		if w&0x003FFFFF != 0 {
			return in, ErrInvalid
		}
		if op == aopNop {
			in.Op = OpNop
		} else {
			in.Op = OpHlt
		}
		return in, nil
	case aopSvc:
		if w>>16&0x3F != 0 {
			return in, ErrInvalid
		}
		in.Op = OpSys
		in.Imm = int32(w & 0xFFFF)
		return in, nil
	case aopMov, aopMvn:
		if rn != 0 || !mbzOp2Reg() {
			return in, ErrInvalid
		}
		if op == aopMov {
			in.Op = OpMov
		} else {
			in.Op = OpNot
		}
		in.Dst = R(rd)
		in.Src = op2()
		return in, nil
	case aopMovw, aopMovt:
		if w>>16&0x3 != 0 {
			return in, ErrInvalid
		}
		if op == aopMovw {
			in.Op = OpMov
		} else {
			in.Op = OpMovT
		}
		in.Dst = R(rd)
		in.Src = I(int32(w & 0xFFFF))
		return in, nil
	case aopAdd, aopSub, aopRsb, aopAnd, aopOrr, aopEor, aopLsl, aopLsr, aopMul, aopDiv:
		if !mbzOp2Reg() {
			return in, ErrInvalid
		}
		switch op {
		case aopAdd:
			in.Op = OpAdd
		case aopSub:
			in.Op = OpSub
		case aopRsb:
			in.Op = OpRsb
		case aopAnd:
			in.Op = OpAnd
		case aopOrr:
			in.Op = OpOr
		case aopEor:
			in.Op = OpXor
		case aopLsl:
			in.Op = OpShl
		case aopLsr:
			in.Op = OpShr
		case aopMul:
			in.Op = OpMul
		case aopDiv:
			in.Op = OpDiv
		}
		if (op == aopMul || op == aopDiv) && immFlag {
			return in, ErrInvalid
		}
		in.Dst = R(rd)
		in.Src = op2()
		in.Src2 = R(rn)
		return in, nil
	case aopCmp, aopTst:
		if rd != 0 || !mbzOp2Reg() {
			return in, ErrInvalid
		}
		if op == aopCmp {
			in.Op = OpCmp
		} else {
			in.Op = OpTest
		}
		in.Dst = R(rn)
		in.Src = op2()
		return in, nil
	case aopLdr, aopStr:
		var m MemRef
		m.HasBase = true
		m.Base = rn
		if immFlag {
			v := int32(w & 0x1FFF)
			if v&(1<<12) != 0 {
				v |= ^int32(0x1FFF)
			}
			m.Disp = v
		} else {
			if w&0x1FF0 != 0 {
				return in, ErrInvalid
			}
			m.HasIndex = true
			m.Index = Reg(w & 0xF)
			m.Scale = 1
		}
		if op == aopLdr {
			in.Op = OpLoad
			in.Dst = R(rd)
			in.Src = M(m)
		} else {
			in.Op = OpStore
			in.Dst = M(m)
			in.Src = R(rd)
		}
		return in, nil
	case aopB, aopBl:
		rel := int32(w & 0x3FFFFF)
		if rel&(1<<21) != 0 {
			rel |= ^int32(0x3FFFFF)
		}
		in.Target = addr + 4 + uint32(rel*4)
		if op == aopBl {
			in.Op = OpCall
		} else if cond == CondAlways {
			in.Op = OpJmp
		} else {
			in.Op = OpJcc
			in.Cond = cond
		}
		return in, nil
	case aopBx, aopBlx:
		if rd != 0 || rn != 0 || w&0x3FF0 != 0 {
			return in, ErrInvalid
		}
		if op == aopBx {
			in.Op = OpBx
		} else {
			in.Op = OpCallI
		}
		in.Dst = R(Reg(w & 0xF))
		return in, nil
	case aopPush, aopPop:
		if w>>16&0x3F != 0 {
			return in, ErrInvalid
		}
		mask := uint16(w & 0xFFFF)
		if mask == 0 {
			return in, ErrInvalid
		}
		if op == aopPush {
			in.Op = OpPushM
		} else {
			in.Op = OpPopM
		}
		in.RegMask = mask
		return in, nil
	}
	return in, ErrInvalid
}

// MaterializeARMConst returns the movw/movt sequence that loads the 32-bit
// constant v into rd. A single movw suffices when the high half is zero.
func MaterializeARMConst(rd Reg, v uint32) []Inst {
	movw := Inst{Op: OpMov, ISA: ARM, Cond: CondAlways, Dst: R(rd), Src: I(int32(v & 0xFFFF))}
	out := []Inst{movw}
	if v>>16 != 0 {
		out = append(out, Inst{Op: OpMovT, ISA: ARM, Cond: CondAlways, Dst: R(rd), Src: I(int32(v >> 16))})
	}
	return out
}

// Decode dispatches to the decoder for ISA k.
func Decode(k Kind, b []byte, addr uint32) (Inst, error) {
	if k == X86 {
		return DecodeX86(b, addr)
	}
	return DecodeARM(b, addr)
}

// Encode dispatches to the encoder for ISA k.
func Encode(k Kind, in *Inst) ([]byte, error) {
	if k == X86 {
		return EncodeX86(in)
	}
	return EncodeARM(in)
}
