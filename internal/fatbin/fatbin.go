// Package fatbin defines the symmetrical fat binary produced by the
// multi-ISA compiler: one text section per ISA, a shared ISA-agnostic data
// section, a common stack frame organization, and the extended symbol
// table (Figure 2 of the paper) that records, per function and per basic
// block, the liveness and location information the PSR virtual machine and
// the migration engine consume.
package fatbin

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"hipstr/internal/isa"
	"hipstr/internal/mem"
)

// Process address-space layout. The two text sections and the two code
// caches live at disjoint bases so region checks identify the ISA of any
// code address.
const (
	X86TextBase  = 0x08048000
	ARMTextBase  = 0x00400000
	DataBase     = 0x10000000
	HeapBase     = 0x20000000
	StackTop     = 0xBFF00000
	X86CacheBase = 0xC0000000
	ARMCacheBase = 0xD0000000
)

// TextBase returns the text section base for ISA k.
func TextBase(k isa.Kind) uint32 {
	if k == isa.X86 {
		return X86TextBase
	}
	return ARMTextBase
}

// CacheBase returns the code cache base for ISA k.
func CacheBase(k isa.Kind) uint32 {
	if k == isa.X86 {
		return X86CacheBase
	}
	return ARMCacheBase
}

// SaveAreaWords is the size of the common callee-save area, large enough
// for either ISA's callee-saved set.
const SaveAreaWords = 10

// VarHome records where a live virtual register resides at a block
// boundary: a canonical frame offset (its memory home) and, when the value
// is register-resident at block entry, the holding register per ISA.
type VarHome struct {
	VReg     int32
	FrameOff int32      // SP-relative memory home; -1 when none
	Reg      [2]isa.Reg // register residence per ISA; isa.NoReg = in memory
}

// InReg reports whether the value is register-resident on ISA k at the
// block boundary this home describes.
func (v VarHome) InReg(k isa.Kind) bool { return v.Reg[k] != isa.NoReg }

// BlockMeta is the per-basic-block entry of the extended symbol table.
type BlockMeta struct {
	ID      int
	Addr    [2]uint32 // block start per ISA
	End     [2]uint32 // first address past the block per ISA
	LiveIn  []VarHome // live values at block entry
	InLoop  bool
	HasCall bool
}

// CallSite records one call instruction's return point in both ISAs —
// the equivalence points at which suspended frames can be migrated.
type CallSite struct {
	RetAddr [2]uint32
}

// FuncMeta is the per-function entry of the extended symbol table. All
// offsets are SP-relative after the prologue's frame allocation; the frame
// layout is common to both ISAs:
//
//	[SP+0, OutArgOff+4*MaxOutArgs)  outgoing-argument build area
//	[LocalOff, +4*NSlots)           user locals ("fixed stack slots" when pinned)
//	[SpillOff, +4*NVRegs)           canonical vreg homes
//	[SaveOff,  +4*SaveAreaWords)    callee-save area
//	[FrameSize]                     return address word
//	[FrameSize+4+4*i]               incoming argument i
type FuncMeta struct {
	Name      string
	Index     int
	NumArgs   int
	NVRegs    int
	NSlots    int
	FrameSize uint32
	OutArgOff uint32
	LocalOff  uint32
	SpillOff  uint32
	SaveOff   uint32
	FixedSlot []bool    // per local slot: address-taken, not relocatable
	Entry     [2]uint32 // function entry per ISA
	Start     [2]uint32 // code range per ISA
	End       [2]uint32
	SavedRegs [2][]isa.Reg // callee-saved registers the function uses, per ISA
	RetReg    [2]isa.Reg
	Blocks    []BlockMeta
	CallSites []CallSite
}

// CallSiteByRet returns the call site whose ISA-k return address is ret.
func (f *FuncMeta) CallSiteByRet(k isa.Kind, ret uint32) (CallSite, bool) {
	for _, cs := range f.CallSites {
		if cs.RetAddr[k] == ret {
			return cs, true
		}
	}
	return CallSite{}, false
}

// RetAddrOff returns the SP-relative offset of the return address word.
func (f *FuncMeta) RetAddrOff() uint32 { return f.FrameSize }

// ArgOff returns the SP-relative offset of incoming argument i.
func (f *FuncMeta) ArgOff(i int) uint32 { return f.FrameSize + 4 + 4*uint32(i) }

// SlotOff returns the SP-relative offset of local slot s.
func (f *FuncMeta) SlotOff(s int) uint32 { return f.LocalOff + 4*uint32(s) }

// HomeOff returns the SP-relative offset of vreg v's canonical home.
// Parameters live in their incoming argument slots; all other vregs have a
// dedicated word in the spill area.
func (f *FuncMeta) HomeOff(v int32) uint32 {
	if int(v) < f.NumArgs {
		return f.ArgOff(int(v))
	}
	return f.SpillOff + 4*uint32(int(v)-f.NumArgs)
}

// BlockByID returns block metadata by IR block id.
func (f *FuncMeta) BlockByID(id int) *BlockMeta {
	for i := range f.Blocks {
		if f.Blocks[i].ID == id {
			return &f.Blocks[i]
		}
	}
	return nil
}

// RelocatableOffsets enumerates the frame offsets PSR may relocate: vreg
// homes, non-fixed locals, the callee-save area (the paper's "randomized
// scatter of callee saves"), and the return address word. Fixed (address-
// taken) slots and the outgoing-argument area stay put.
func (f *FuncMeta) RelocatableOffsets() []uint32 {
	var out []uint32
	for s := 0; s < f.NSlots; s++ {
		if !f.FixedSlot[s] {
			out = append(out, f.SlotOff(s))
		}
	}
	for v := int32(f.NumArgs); v < int32(f.NVRegs); v++ {
		out = append(out, f.HomeOff(v))
	}
	for w := uint32(0); w < SaveAreaWords; w++ {
		out = append(out, f.SaveOff+4*w)
	}
	out = append(out, f.RetAddrOff())
	return out
}

// Binary is a loaded-image description of a multi-ISA fat binary.
// Binaries are immutable after construction; that is what lets many VMs
// share one Binary and what makes ContentHash cacheable.
type Binary struct {
	Module     string
	Text       [2][]byte
	Data       []byte
	Funcs      []*FuncMeta
	FuncByName map[string]int
	EntryFunc  string // function where execution starts

	// contentHash caches ContentHash (0 = not yet computed; computed
	// values always have the top bit set). Atomic so concurrent VMs
	// hashing a shared Binary don't race; losers of the publish race
	// recompute the same value.
	contentHash atomic.Uint64
}

// ContentHash returns a deterministic digest of everything that can
// influence translation output: both text sections, the data image, and
// the full extended symbol table in function order. It deliberately avoids
// gob (map iteration order is randomized) so equal binaries hash equal
// across processes and runs. The shared translation-unit cache keys on it.
func (b *Binary) ContentHash() uint64 {
	if h := b.contentHash.Load(); h != 0 {
		return h
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00", b.Module, b.EntryFunc)
	for _, t := range b.Text {
		h.Write(t)
		h.Write([]byte{0})
	}
	h.Write(b.Data)
	for _, f := range b.Funcs {
		fmt.Fprintf(h, "%+v", *f)
	}
	sum := h.Sum64() | 1<<63
	b.contentHash.Store(sum)
	return sum
}

// Func returns the named function's metadata, or nil.
func (b *Binary) Func(name string) *FuncMeta {
	if i, ok := b.FuncByName[name]; ok {
		return b.Funcs[i]
	}
	return nil
}

// FuncAt returns the function whose ISA-k code range contains addr.
func (b *Binary) FuncAt(k isa.Kind, addr uint32) *FuncMeta {
	i := sort.Search(len(b.Funcs), func(i int) bool { return b.Funcs[i].End[k] > addr })
	if i < len(b.Funcs) && addr >= b.Funcs[i].Start[k] {
		return b.Funcs[i]
	}
	return nil
}

// BlockAt returns the function and block whose ISA-k range contains addr.
func (b *Binary) BlockAt(k isa.Kind, addr uint32) (*FuncMeta, *BlockMeta) {
	f := b.FuncAt(k, addr)
	if f == nil {
		return nil, nil
	}
	for i := range f.Blocks {
		blk := &f.Blocks[i]
		if addr >= blk.Addr[k] && addr < blk.End[k] {
			return f, blk
		}
	}
	return f, nil
}

// TextRange returns the [base, end) of ISA k's text section.
func (b *Binary) TextRange(k isa.Kind) (uint32, uint32) {
	base := TextBase(k)
	return base, base + uint32(len(b.Text[k]))
}

// Load maps the fat binary into an address space: both text sections
// (read+execute), the shared data section, a heap, and a stack.
func (b *Binary) Load(m *mem.Memory, stackSize, heapSize uint32) {
	for _, k := range isa.Kinds {
		if len(b.Text[k]) == 0 {
			continue
		}
		m.Map("text."+k.String(), TextBase(k), uint32(len(b.Text[k])), mem.PermRX)
		m.WriteForce(TextBase(k), b.Text[k])
	}
	if len(b.Data) > 0 {
		m.Map("data", DataBase, uint32(len(b.Data)), mem.PermRW)
		m.WriteForce(DataBase, b.Data)
	}
	if heapSize > 0 {
		m.Map("heap", HeapBase, heapSize, mem.PermRW)
	}
	if stackSize > 0 {
		m.Map("stack", StackTop-stackSize, stackSize, mem.PermRW)
	}
}

// Save serializes the binary.
func (b *Binary) Save() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("fatbin: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadBytes deserializes a binary produced by Save.
func LoadBytes(data []byte) (*Binary, error) {
	var b Binary
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("fatbin: decode: %w", err)
	}
	return &b, nil
}
