// Package testprogs provides small, hand-written IR programs with known
// behavior, shared by the compiler, DBT, migration, and attack test
// suites. Every program's main exits with a value and/or emits a SysWrite
// trace, so cross-ISA and native-vs-translated equivalence can be checked
// by comparing observable behavior.
package testprogs

import (
	"fmt"

	"hipstr/internal/isa"
	"hipstr/internal/prog"
)

// SumLoop returns a module whose main computes sum(0..n-1) with a simple
// loop over loop-carried vregs and exits with the result. The loop is hot
// enough to receive register bindings, making its state register-resident
// at block boundaries.
func SumLoop(n int32) *prog.Module {
	mb := prog.NewModule("sumloop")
	fb := mb.Func("main", 0)
	nv := fb.Const(n)
	s := fb.Const(0)
	i := fb.Const(0)
	loop := fb.NewBlock()
	body := fb.NewBlock()
	exit := fb.NewBlock()
	fb.SetBlock(0)
	fb.Jmp(loop)
	fb.SetBlock(loop)
	fb.Br(isa.CondLT, i, nv, body, exit)
	fb.SetBlock(body)
	fb.BinTo(s, prog.BinAdd, s, i)
	fb.BinImmTo(i, prog.BinAdd, i, 1)
	fb.Jmp(loop)
	fb.SetBlock(exit)
	resS := fb.NewSlot()
	fb.StoreSlot(resS, s)
	r := fb.LoadSlot(resS)
	fb.Syscall(1, r) // exit(sum)
	fb.Ret(r)
	return mb.MustBuild()
}

// Fib returns a module computing fib(n) by naive recursion, exercising
// call/return, argument passing, and deep stacks. main exits with fib(n).
func Fib(n int32) *prog.Module {
	mb := prog.NewModule("fib")

	mfb := mb.Func("main", 0)
	nv := mfb.Const(n)
	r := mfb.Call("fib", true, nv)
	mfb.Syscall(1, r)
	mfb.Ret(r)

	fb := mb.Func("fib", 1)
	x := fb.Param(0)
	rec := fb.NewBlock()
	base := fb.NewBlock()
	fb.SetBlock(0)
	fb.BrImm(isa.CondLT, x, 2, base, rec)
	fb.SetBlock(base)
	fb.Ret(x)
	fb.SetBlock(rec)
	a := fb.BinImm(prog.BinSub, x, 1)
	ra := fb.Call("fib", true, a)
	b := fb.BinImm(prog.BinSub, x, 2)
	rb := fb.Call("fib", true, b)
	s := fb.Bin(prog.BinAdd, ra, rb)
	fb.Ret(s)

	return mb.MustBuild()
}

// Collatz returns a module that traces the Collatz sequence of n via
// SysWrite and exits with the step count. It exercises div, mul, branches,
// and a write-syscall inside a bound loop.
func Collatz(n int32) *prog.Module {
	mb := prog.NewModule("collatz")
	fb := mb.Func("main", 0)
	vS := fb.NewSlot()
	cS := fb.NewSlot()
	v0 := fb.Const(n)
	c0 := fb.Const(0)
	fb.StoreSlot(vS, v0)
	fb.StoreSlot(cS, c0)
	loop := fb.NewBlock()
	fb.SetBlock(0)
	fb.Jmp(loop)
	check := loop
	odd := fb.NewBlock()
	even := fb.NewBlock()
	cont := fb.NewBlock()
	exit := fb.NewBlock()
	fb.SetBlock(check)
	v := fb.LoadSlot(vS)
	fb.Syscall(4, v) // write(v)
	one := fb.BinImm(prog.BinAnd, v, 1)
	fb.BrImm(isa.CondEQ, one, 0, even, odd)
	fb.SetBlock(even)
	v2 := fb.BinImm(prog.BinDiv, v, 2)
	fb.StoreSlot(vS, v2)
	fb.Jmp(cont)
	fb.SetBlock(odd)
	t := fb.BinImm(prog.BinMul, v, 3)
	t2 := fb.BinImm(prog.BinAdd, t, 1)
	fb.StoreSlot(vS, t2)
	fb.Jmp(cont)
	fb.SetBlock(cont)
	c := fb.LoadSlot(cS)
	c2 := fb.BinImm(prog.BinAdd, c, 1)
	fb.StoreSlot(cS, c2)
	nv := fb.LoadSlot(vS)
	fb.BrImm(isa.CondLE, nv, 1, exit, check)
	fb.SetBlock(exit)
	cnt := fb.LoadSlot(cS)
	fb.Syscall(1, cnt)
	fb.Ret(cnt)
	return mb.MustBuild()
}

// GlobalTable returns a module exercising globals and indirect calls: a
// table of function pointers is stored in a global, then each is called
// through the table. main exits with the accumulated result.
func GlobalTable() *prog.Module {
	mb := prog.NewModule("table")
	tbl := mb.Global("table", 16, nil)

	f1 := mb.Func("inc", 1)
	f1.Ret(f1.BinImm(prog.BinAdd, f1.Param(0), 1))
	f2 := mb.Func("dbl", 1)
	f2.Ret(f2.BinImm(prog.BinMul, f2.Param(0), 2))
	f3 := mb.Func("sqr", 1)
	f3.Ret(f3.Bin(prog.BinMul, f3.Param(0), f3.Param(0)))

	fb := mb.Func("main", 0)
	base := fb.GlobalAddr(tbl, 0)
	for i, name := range []string{"inc", "dbl", "sqr"} {
		fp := fb.FuncAddr(name)
		fb.Store(base, int32(4*i), fp)
	}
	accS := fb.NewSlot()
	start := fb.Const(3)
	fb.StoreSlot(accS, start)
	for i := 0; i < 3; i++ {
		fp := fb.Load(base, int32(4*i))
		cur := fb.LoadSlot(accS)
		res := fb.CallInd(fp, true, cur)
		fb.StoreSlot(accS, res)
	}
	out := fb.LoadSlot(accS)
	fb.Syscall(1, out) // ((3+1)*2)^2 = 64
	fb.Ret(out)
	return mb.MustBuild()
}

// NestedLoops returns a module with a doubly nested loop computing a
// checksum, stressing loop-binding edges (outer->inner transitions) and
// shifts. main exits with the checksum.
func NestedLoops(outer, inner int32) *prog.Module {
	mb := prog.NewModule("nested")
	fb := mb.Func("main", 0)
	acc := fb.Const(0)
	i := fb.Const(0)
	j := fb.Const(0)
	oLoop := fb.NewBlock()
	oBody := fb.NewBlock()
	iLoop := fb.NewBlock()
	iBody := fb.NewBlock()
	oLatch := fb.NewBlock()
	exit := fb.NewBlock()
	fb.SetBlock(0)
	fb.Jmp(oLoop)

	fb.SetBlock(oLoop)
	fb.BrImm(isa.CondLT, i, outer, oBody, exit)

	fb.SetBlock(oBody)
	fb.ConstTo(j, 0)
	fb.Jmp(iLoop)

	fb.SetBlock(iLoop)
	fb.BrImm(isa.CondLT, j, inner, iBody, oLatch)

	fb.SetBlock(iBody)
	x := fb.Bin(prog.BinXor, i, j)
	sh := fb.BinImm(prog.BinShl, x, 1)
	fb.BinTo(acc, prog.BinAdd, acc, sh)
	fb.BinImmTo(j, prog.BinAdd, j, 1)
	fb.Jmp(iLoop)

	fb.SetBlock(oLatch)
	fb.BinImmTo(i, prog.BinAdd, i, 1)
	fb.Jmp(oLoop)

	fb.SetBlock(exit)
	fb.Syscall(1, acc)
	fb.Ret(acc)
	return mb.MustBuild()
}

// PointerChase returns a module that builds a linked list in a global
// arena and walks it, exercising address-taken slots and pointer loads.
// main exits with the list sum.
func PointerChase(n int32) *prog.Module {
	mb := prog.NewModule("ptrchase")
	arena := mb.Global("arena", uint32(8*(n+1)), nil)
	fb := mb.Func("main", 0)
	// Build: node i at arena+8i = {value: i*3, next: arena+8(i+1) or 0}.
	iS := fb.NewSlot()
	fb.StoreSlot(iS, fb.Const(0))
	build := fb.NewBlock()
	fb.SetBlock(0)
	fb.Jmp(build)
	bBody := fb.NewBlock()
	walkInit := fb.NewBlock()
	fb.SetBlock(build)
	iv := fb.LoadSlot(iS)
	fb.BrImm(isa.CondLT, iv, n, bBody, walkInit)
	last := fb.NewBlock()
	notLast := fb.NewBlock()
	bCont := fb.NewBlock()
	fb.SetBlock(bBody)
	i2 := fb.LoadSlot(iS)
	off := fb.BinImm(prog.BinMul, i2, 8)
	basePtr := fb.GlobalAddr(arena, 0)
	node := fb.Bin(prog.BinAdd, basePtr, off)
	val := fb.BinImm(prog.BinMul, i2, 3)
	fb.Store(node, 0, val)
	isLast := fb.BinImm(prog.BinAdd, i2, 1)
	nextOff := fb.BinImm(prog.BinMul, isLast, 8)
	next := fb.Bin(prog.BinAdd, basePtr, nextOff)
	fb.BrImm(isa.CondEQ, isLast, n, last, notLast)
	fb.SetBlock(last)
	zero := fb.Const(0)
	fb.Store(node, 4, zero)
	fb.Jmp(bCont)
	fb.SetBlock(notLast)
	fb.Store(node, 4, next)
	fb.Jmp(bCont)
	fb.SetBlock(bCont)
	fb.StoreSlot(iS, isLast)
	fb.Jmp(build)
	// Walk.
	walk := fb.NewBlock()
	wBody := fb.NewBlock()
	exit := fb.NewBlock()
	fb.SetBlock(walkInit)
	sumS := fb.NewSlot()
	curS := fb.NewSlot()
	fb.StoreSlot(sumS, fb.Const(0))
	head := fb.GlobalAddr(arena, 0)
	fb.StoreSlot(curS, head)
	fb.Jmp(walk)
	fb.SetBlock(walk)
	cur := fb.LoadSlot(curS)
	fb.BrImm(isa.CondEQ, cur, 0, exit, wBody)
	fb.SetBlock(wBody)
	cur2 := fb.LoadSlot(curS)
	v := fb.Load(cur2, 0)
	s := fb.LoadSlot(sumS)
	s2 := fb.Bin(prog.BinAdd, s, v)
	fb.StoreSlot(sumS, s2)
	nxt := fb.Load(cur2, 4)
	fb.StoreSlot(curS, nxt)
	fb.Jmp(walk)
	fb.SetBlock(exit)
	out := fb.LoadSlot(sumS)
	fb.Syscall(1, out)
	fb.Ret(out)
	return mb.MustBuild()
}

// AddressTaken returns a module where a local's address escapes to a
// callee that writes through the pointer — the "fixed stack slot" case PSR
// must not relocate. main exits with the written value.
func AddressTaken() *prog.Module {
	mb := prog.NewModule("addrtaken")

	wr := mb.Func("writeThrough", 2)
	p, v := wr.Param(0), wr.Param(1)
	wr.Store(p, 0, v)
	wr.Ret(prog.NoVReg)

	fb := mb.Func("main", 0)
	s := fb.NewSlot()
	init := fb.Const(5)
	fb.StoreSlot(s, init)
	addr := fb.SlotAddr(s)
	val := fb.Const(77)
	fb.Call("writeThrough", false, addr, val)
	got := fb.LoadSlot(s)
	fb.Syscall(1, got)
	fb.Ret(got)
	return mb.MustBuild()
}

// ManyParams returns a module with a 6-parameter function, exercising the
// outgoing-argument area and argument homes. main exits with a weighted
// sum of the arguments.
func ManyParams() *prog.Module {
	mb := prog.NewModule("manyparams")
	f := mb.Func("weigh", 6)
	acc := f.Param(0)
	for i := 1; i < 6; i++ {
		w := f.BinImm(prog.BinMul, f.Param(i), int32(i+1))
		acc = f.Bin(prog.BinAdd, acc, w)
	}
	f.Ret(acc)

	fb := mb.Func("main", 0)
	var args []prog.VReg
	for i := int32(1); i <= 6; i++ {
		args = append(args, fb.Const(i))
	}
	r := fb.Call("weigh", true, args...)
	fb.Syscall(1, r)
	fb.Ret(r)
	return mb.MustBuild()
}

// CallChain returns a module with n functions f0 -> f1 -> ... -> f(n-1),
// each adding its index before calling the next: n distinct call sites and
// return addresses, for exercising RAT capacity. main exits with
// sum(0..n-1)+7.
func CallChain(n int) *prog.Module {
	mb := prog.NewModule("callchain")
	name := func(i int) string { return fmt.Sprintf("f%d", i) }
	// Declare in reverse so callees exist... forward references are fine
	// for validation, which runs at Build time.
	for i := 0; i < n; i++ {
		fb := mb.Func(name(i), 1)
		x := fb.BinImm(prog.BinAdd, fb.Param(0), int32(i))
		if i == n-1 {
			fb.Ret(x)
		} else {
			r := fb.Call(name(i+1), true, x)
			fb.Ret(r)
		}
	}
	fb := mb.Func("main", 0)
	seed := fb.Const(7)
	r := fb.Call(name(0), true, seed)
	fb.Syscall(1, r)
	fb.Ret(r)
	return mb.MustBuild()
}

// GadgetRich returns a module shaped like real compiled code from the
// gadget miner's perspective: many functions with loops (register
// bindings, hence callee-save restore sequences before returns), indirect
// calls, and large constants whose encodings contain 0xC3/0xFF bytes (the
// source of x86's unintentional gadgets). main exits with a checksum.
func GadgetRich(nfuncs int) *prog.Module {
	mb := prog.NewModule("gadgetrich")
	name := func(i int) string { return fmt.Sprintf("g%d", i) }
	// Constants chosen so their little-endian immediates embed ret (0xC3)
	// and jmp/call r/m (0xFF) opcode bytes at unaligned offsets.
	juicy := []int32{0x00C3C3FF, 0x19C3FF2D, -61, 0x7FC3FF00, 0x2DC32DC3}
	for i := 0; i < nfuncs; i++ {
		fb := mb.Func(name(i), 1)
		x := fb.Param(0)
		acc := fb.Const(juicy[i%len(juicy)])
		j := fb.Const(0)
		loop := fb.NewBlock()
		body := fb.NewBlock()
		exit := fb.NewBlock()
		fb.SetBlock(0)
		fb.Jmp(loop)
		fb.SetBlock(loop)
		fb.BrImm(isa.CondLT, j, int32(3+i%5), body, exit)
		fb.SetBlock(body)
		t := fb.Bin(prog.BinXor, acc, x)
		fb.BinTo(acc, prog.BinAdd, t, j)
		fb.BinImmTo(j, prog.BinAdd, j, 1)
		fb.Jmp(loop)
		fb.SetBlock(exit)
		if i+1 < nfuncs {
			r := fb.Call(name(i+1), true, acc)
			fb.Ret(r)
		} else {
			fb.Ret(acc)
		}
	}
	fb := mb.Func("main", 0)
	seed := fb.Const(0x0BADC3FF)
	fp := fb.FuncAddr(name(0))
	r := fb.CallInd(fp, true, seed)
	lo := fb.BinImm(prog.BinAnd, r, 0xFF)
	fb.Syscall(1, lo)
	fb.Ret(lo)
	return mb.MustBuild()
}

// All returns every test program paired with its expected exit code.
func All() map[string]struct {
	Mod  *prog.Module
	Exit uint32
} {
	return map[string]struct {
		Mod  *prog.Module
		Exit uint32
	}{
		"sumloop":    {SumLoop(100), 4950},
		"fib":        {Fib(12), 144},
		"collatz":    {Collatz(27), 111},
		"table":      {GlobalTable(), 64},
		"nested":     {NestedLoops(9, 7), expectedNested(9, 7)},
		"ptrchase":   {PointerChase(10), expectedChase(10)},
		"addrtaken":  {AddressTaken(), 77},
		"manyparams": {ManyParams(), 1 + 2*2 + 3*3 + 4*4 + 5*5 + 6*6},
	}
}

func expectedNested(outer, inner int32) uint32 {
	var acc uint32
	for i := int32(0); i < outer; i++ {
		for j := int32(0); j < inner; j++ {
			acc += uint32(i^j) << 1
		}
	}
	return acc
}

func expectedChase(n int32) uint32 {
	var s uint32
	for i := int32(0); i < n; i++ {
		s += uint32(i * 3)
	}
	return s
}
