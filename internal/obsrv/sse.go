package obsrv

import (
	"sync"

	"hipstr/internal/telemetry"
)

// DefaultSubscriberBuffer is the per-subscriber event ring capacity.
const DefaultSubscriberBuffer = 1024

// EventHub fans tracer events out to SSE subscribers. It implements
// telemetry.Sink; Emit runs synchronously on the VM's trap paths, so it
// must never block: each subscriber owns a bounded ring that drops its
// oldest events when a slow consumer falls behind, and wakeups use a
// non-blocking capacity-1 channel.
type EventHub struct {
	mu   sync.Mutex
	subs map[*Subscriber]struct{}
	cap  int
}

// NewEventHub returns a hub whose subscribers buffer up to capacity events
// (<= 0 selects DefaultSubscriberBuffer).
func NewEventHub(capacity int) *EventHub {
	if capacity <= 0 {
		capacity = DefaultSubscriberBuffer
	}
	return &EventHub{subs: make(map[*Subscriber]struct{}), cap: capacity}
}

// Emit implements telemetry.Sink.
func (h *EventHub) Emit(e telemetry.Event) {
	h.mu.Lock()
	for s := range h.subs {
		s.push(e)
	}
	h.mu.Unlock()
}

// Subscribe registers a new subscriber receiving events from now on.
func (h *EventHub) Subscribe() *Subscriber {
	s := &Subscriber{
		buf:    make([]telemetry.Event, h.cap),
		notify: make(chan struct{}, 1),
	}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// Unsubscribe detaches s; its buffered events are discarded.
func (h *EventHub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// Subscribers returns the number of attached subscribers.
func (h *EventHub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Subscriber is one SSE consumer's bounded event ring.
type Subscriber struct {
	mu      sync.Mutex
	buf     []telemetry.Event
	head    int // index of the oldest buffered event
	n       int // buffered event count
	dropped uint64
	notify  chan struct{}
}

func (s *Subscriber) push(e telemetry.Event) {
	s.mu.Lock()
	if s.n == len(s.buf) {
		// Ring full: overwrite the oldest (drop-oldest, never block).
		s.buf[s.head] = e
		s.head = (s.head + 1) % len(s.buf)
		s.dropped++
	} else {
		s.buf[(s.head+s.n)%len(s.buf)] = e
		s.n++
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Notify returns the wakeup channel: a receive means Drain may have work.
func (s *Subscriber) Notify() <-chan struct{} { return s.notify }

// Drain returns the buffered events in emission order and the number of
// events dropped since the previous Drain, clearing both.
func (s *Subscriber) Drain() ([]telemetry.Event, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 && s.dropped == 0 {
		return nil, 0
	}
	out := make([]telemetry.Event, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.head+i)%len(s.buf)]
	}
	s.head, s.n = 0, 0
	d := s.dropped
	s.dropped = 0
	return out, d
}

// Dropped returns the events dropped since the last Drain.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
