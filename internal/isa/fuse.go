package isa

// This file implements the superinstruction layer of the predecoded block
// cache: FuseBlock collapses a decoded instruction sequence into fused
// entries — specialized single-instruction forms plus common adjacent
// pairs (cmp+jcc, load+ALU, mov+mov, ALU+store) — that the interpreter
// dispatches with one switch per entry instead of one per instruction.
//
// A FusedInst is a flattened, self-contained operand bundle: the hot exec
// arms read only its fixed-size fields and never touch the 96-byte Inst it
// was built from. The A/B indices point back into the block's Inst slice
// for everything cold: hook invocations, error wrapping, and the timing
// model's batched commit, which replays accounting from the original
// instructions.

// FusedOp selects the interpreter's dedicated exec arm for a fused entry.
type FusedOp uint8

const (
	// FGeneric executes Insts[A] through the interpreter's full switch.
	// Every op without a specialized arm (terminators, byte ops, RMW
	// memory forms, div, pushm/popm, ...) funnels through it.
	FGeneric FusedOp = iota

	// Specialized single-instruction forms. Register fields are
	// pre-masked to 4 bits at fuse time.
	FMovRI  // R1 = Imm
	FMovRR  // R1 = R2
	FMovRM  // R1 = mem32[R2 + Imm]
	FMovMR  // mem32[R2 + Imm] = R1
	FLeaRM  // R1 = R2 + Imm
	FAluRI  // R1 = R1 <Op> Imm            (two-operand form)
	FAluRR  // R1 = R1 <Op> R2
	FAlu3RI // R1 = R2 <Op> Imm            (ARM three-operand form)
	FAlu3RR // R1 = R2 <Op> R3
	FIncDec // R1 = R1 ± 1 (Op selects)
	FCmpRI  // flags = R1 cmp Imm
	FCmpRR  // flags = R1 cmp R2
	FPushR  // push R1
	FPushI  // push Imm
	FPopR   // pop into R1

	// Fused pairs (N == 2).
	FMovMov   // R1 = (Sub&FSubImmA ? Imm : R2); R3 = (Sub&FSubImmB ? Imm2 : R4)
	FLoadAlu  // R1 = mem32[R2+Imm]; R3 = (Sub&FSubAlu3 ? R5 : R3) <Op> (Sub&FSubAluImm ? Imm2 : R4)
	FAluStore // R1 = (Sub&FSubAlu3 ? R5 : R1) <Op> (Sub&FSubAluImm ? Imm : R2); mem32[R3+Imm2] = R4
	FCmpJccRI // flags = R1 cmp Imm; if Cond jump Target else fall to Next
	FCmpJccRR // flags = R1 cmp R2; if Cond jump Target else fall to Next
)

// Sub-code bits. Their meaning is scoped to the fused op family noted in
// the FusedOp comments above.
const (
	FSubImmA uint8 = 1 << 0 // FMovMov: first mov's source is Imm, not R2
	FSubImmB uint8 = 1 << 1 // FMovMov: second mov's source is Imm2, not R4

	FSubAluImm uint8 = 1 << 0 // FLoadAlu/FAluStore: ALU source is immediate
	FSubAlu3   uint8 = 1 << 1 // FLoadAlu/FAluStore: ALU is three-operand (a = R5)

	// FSubMayWrite marks an FGeneric entry whose instruction can store to
	// memory, so the dispatch loop polls the code generation after it.
	// Specialized arms encode this statically in their opcode instead.
	FSubMayWrite uint8 = 1 << 0
)

// FusedInst is one dispatch entry of a fused block. Field roles depend on
// Code (see the FusedOp constants); Next is always the address of the
// instruction following the whole entry.
type FusedInst struct {
	Code FusedOp
	N    uint8 // architectural instructions this entry retires (1 or 2)
	Sub  uint8 // family-scoped sub-code bits
	A, B uint8 // indices of the source Insts within the block

	R1, R2, R3, R4, R5 uint8
	Cond               Cond
	Op                 Op

	Imm, Imm2 int32
	Target    uint32
	Next      uint32
}

// fusableALU reports whether in can execute through the shared register
// ALU arm: a two- or three-operand ALU op with a register destination and
// register/immediate sources. Div is excluded (x86 div writes the EAX/EDX
// pair), as are byte-width forms.
func fusableALU(in *Inst) bool {
	switch in.Op {
	case OpAdd, OpSub, OpRsb, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul:
	default:
		return false
	}
	if in.ByteOp || in.Dst.Kind != OpdReg {
		return false
	}
	if in.Src.Kind != OpdReg && in.Src.Kind != OpdImm {
		return false
	}
	return in.Src2.Kind == OpdNone || in.Src2.Kind == OpdReg
}

// regMov reports whether in is a register-destination mov with a
// register/immediate source (no memory on either side).
func regMov(in *Inst) bool {
	return in.Op == OpMov && !in.ByteOp && in.Dst.Kind == OpdReg &&
		(in.Src.Kind == OpdReg || in.Src.Kind == OpdImm)
}

// baseDispMem reports whether o is a [base + disp] memory operand, the only
// addressing shape the specialized load/store arms handle.
func baseDispMem(o Operand) bool {
	return o.Kind == OpdMem && o.Mem.HasBase && !o.Mem.HasIndex
}

// loadShape reports whether in is a word load of [base+disp] into a
// register (x86 mov r,[m] or ARM ldr).
func loadShape(in *Inst) bool {
	return (in.Op == OpMov || in.Op == OpLoad) && !in.ByteOp &&
		in.Dst.Kind == OpdReg && baseDispMem(in.Src)
}

// storeShape reports whether in is a word store of a register to
// [base+disp] (x86 mov [m],r or ARM str).
func storeShape(in *Inst) bool {
	return (in.Op == OpMov || in.Op == OpStore) && !in.ByteOp &&
		in.Src.Kind == OpdReg && baseDispMem(in.Dst)
}

// regCmp reports whether in is a register/immediate compare (no memory
// operands, word width).
func regCmp(in *Inst) bool {
	return in.Op == OpCmp && !in.ByteOp && in.Dst.Kind == OpdReg &&
		(in.Src.Kind == OpdReg || in.Src.Kind == OpdImm) &&
		in.Src2.Kind == OpdNone
}

// aluFields fills the ALU operand fields shared by the single and pair
// arms: dst (and two-operand a) in dstR, b in srcR/imm, three-operand a in
// src2R with FSubAlu3 set.
func aluFields(in *Inst) (dstR, srcR, src2R, sub uint8, imm int32) {
	dstR = uint8(in.Dst.Reg) & 0xF
	if in.Src.Kind == OpdImm {
		sub |= FSubAluImm
		imm = in.Src.Imm
	} else {
		srcR = uint8(in.Src.Reg) & 0xF
	}
	if in.Src2.Kind == OpdReg {
		sub |= FSubAlu3
		src2R = uint8(in.Src2.Reg) & 0xF
	}
	return
}

// mayWriteMem reports whether executing in through the generic arm can
// store to memory (and therefore requires a code-generation poll to keep
// the documented SMC latency).
func mayWriteMem(in *Inst) bool {
	if in.Dst.Kind == OpdMem {
		return true
	}
	switch in.Op {
	case OpPush, OpPushM, OpCall, OpCallI, OpSys:
		return true
	}
	return false
}

// fuseSingle classifies one instruction into its specialized fused form,
// or FGeneric when no dedicated arm applies.
func fuseSingle(in *Inst, idx int) FusedInst {
	f := FusedInst{Code: FGeneric, N: 1, A: uint8(idx), Next: in.Addr + uint32(in.Size)}
	if in.ByteOp {
		if mayWriteMem(in) {
			f.Sub = FSubMayWrite
		}
		return f
	}
	switch {
	case regMov(in):
		f.R1 = uint8(in.Dst.Reg) & 0xF
		if in.Src.Kind == OpdImm {
			f.Code = FMovRI
			f.Imm = in.Src.Imm
		} else {
			f.Code = FMovRR
			f.R2 = uint8(in.Src.Reg) & 0xF
		}
	case loadShape(in):
		f.Code = FMovRM
		f.R1 = uint8(in.Dst.Reg) & 0xF
		f.R2 = uint8(in.Src.Mem.Base) & 0xF
		f.Imm = in.Src.Mem.Disp
	case storeShape(in):
		f.Code = FMovMR
		f.R1 = uint8(in.Src.Reg) & 0xF
		f.R2 = uint8(in.Dst.Mem.Base) & 0xF
		f.Imm = in.Dst.Mem.Disp
	case in.Op == OpLea && in.Dst.Kind == OpdReg && baseDispMem(in.Src):
		f.Code = FLeaRM
		f.R1 = uint8(in.Dst.Reg) & 0xF
		f.R2 = uint8(in.Src.Mem.Base) & 0xF
		f.Imm = in.Src.Mem.Disp
	case fusableALU(in):
		f.Op = in.Op
		dstR, srcR, src2R, sub, imm := aluFields(in)
		switch {
		case sub&FSubAlu3 != 0 && sub&FSubAluImm != 0:
			f.Code = FAlu3RI
			f.R1, f.R2, f.Imm = dstR, src2R, imm
		case sub&FSubAlu3 != 0:
			f.Code = FAlu3RR
			f.R1, f.R2, f.R3 = dstR, src2R, srcR
		case sub&FSubAluImm != 0:
			f.Code = FAluRI
			f.R1, f.Imm = dstR, imm
		default:
			f.Code = FAluRR
			f.R1, f.R2 = dstR, srcR
		}
	case (in.Op == OpInc || in.Op == OpDec) && in.Dst.Kind == OpdReg:
		f.Code = FIncDec
		f.Op = in.Op
		f.R1 = uint8(in.Dst.Reg) & 0xF
	case regCmp(in):
		f.R1 = uint8(in.Dst.Reg) & 0xF
		if in.Src.Kind == OpdImm {
			f.Code = FCmpRI
			f.Imm = in.Src.Imm
		} else {
			f.Code = FCmpRR
			f.R2 = uint8(in.Src.Reg) & 0xF
		}
	case in.Op == OpPush && (in.Src.Kind == OpdReg || in.Src.Kind == OpdImm):
		if in.Src.Kind == OpdImm {
			f.Code = FPushI
			f.Imm = in.Src.Imm
		} else {
			f.Code = FPushR
			f.R1 = uint8(in.Src.Reg) & 0xF
		}
	case in.Op == OpPop && in.Dst.Kind == OpdReg:
		f.Code = FPopR
		f.R1 = uint8(in.Dst.Reg) & 0xF
	default:
		if mayWriteMem(in) {
			f.Sub = FSubMayWrite
		}
	}
	return f
}

// fusePair tries to fuse insts[i] and insts[i+1] into one entry. Data
// pairs are only formed when the second instruction is not the block's
// final one: the dispatch loop commits batched timing before the last
// architectural instruction executes, so the last entry must be a single
// or a cmp+jcc (whose compare is register-only and observation-neutral
// after execution).
func fusePair(insts []Inst, i int) (FusedInst, bool) {
	a, b := &insts[i], &insts[i+1]
	last := i+1 == len(insts)-1
	f := FusedInst{N: 2, A: uint8(i), B: uint8(i + 1), Next: b.Addr + uint32(b.Size)}

	if regCmp(a) && b.Op == OpJcc {
		f.R1 = uint8(a.Dst.Reg) & 0xF
		if a.Src.Kind == OpdImm {
			f.Code = FCmpJccRI
			f.Imm = a.Src.Imm
		} else {
			f.Code = FCmpJccRR
			f.R2 = uint8(a.Src.Reg) & 0xF
		}
		f.Cond = b.Cond
		f.Target = b.Target
		return f, true
	}
	if last {
		return FusedInst{}, false
	}
	switch {
	case regMov(a) && regMov(b):
		f.Code = FMovMov
		f.R1 = uint8(a.Dst.Reg) & 0xF
		if a.Src.Kind == OpdImm {
			f.Sub |= FSubImmA
			f.Imm = a.Src.Imm
		} else {
			f.R2 = uint8(a.Src.Reg) & 0xF
		}
		f.R3 = uint8(b.Dst.Reg) & 0xF
		if b.Src.Kind == OpdImm {
			f.Sub |= FSubImmB
			f.Imm2 = b.Src.Imm
		} else {
			f.R4 = uint8(b.Src.Reg) & 0xF
		}
		return f, true
	case loadShape(a) && fusableALU(b):
		f.Code = FLoadAlu
		f.R1 = uint8(a.Dst.Reg) & 0xF
		f.R2 = uint8(a.Src.Mem.Base) & 0xF
		f.Imm = a.Src.Mem.Disp
		f.Op = b.Op
		dstR, srcR, src2R, sub, imm := aluFields(b)
		f.R3, f.R4, f.R5 = dstR, srcR, src2R
		f.Sub = sub
		f.Imm2 = imm
		return f, true
	case fusableALU(a) && storeShape(b):
		f.Code = FAluStore
		f.Op = a.Op
		dstR, srcR, src2R, sub, imm := aluFields(a)
		f.R1, f.R2, f.R5 = dstR, srcR, src2R
		f.Sub = sub
		f.Imm = imm
		f.R3 = uint8(b.Dst.Mem.Base) & 0xF
		f.Imm2 = b.Dst.Mem.Disp
		f.R4 = uint8(b.Src.Reg) & 0xF
		return f, true
	}
	return FusedInst{}, false
}

// FuseBlock lowers a decoded block into fused dispatch entries, appending
// to dst (which may be a recycled slice) and returning it together with
// the number of instruction pairs that were fused.
func FuseBlock(insts []Inst, dst []FusedInst) ([]FusedInst, int) {
	pairs := 0
	for i := 0; i < len(insts); {
		if i+1 < len(insts) {
			if f, ok := fusePair(insts, i); ok {
				dst = append(dst, f)
				pairs++
				i += 2
				continue
			}
		}
		dst = append(dst, fuseSingle(&insts[i], i))
		i++
	}
	return dst, pairs
}

// StackAccess reports whether o implicitly accesses memory through the
// stack pointer. It defines the effective-address logging protocol shared
// by the interpreter's batched dispatch loop and the timing model's
// batched commit: for each executed instruction, the machine logs, in
// order, the source effective address if Src is a memory operand, the
// destination effective address if Dst is one, and the pre-execution
// stack pointer if StackAccess is true.
func (o Op) StackAccess() bool {
	switch o {
	case OpPush, OpPop, OpPushM, OpPopM, OpRet, OpLeave:
		return true
	}
	return false
}
