package obsrv_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hipstr/internal/compiler"
	"hipstr/internal/dbt"
	"hipstr/internal/isa"
	"hipstr/internal/obsrv"
	"hipstr/internal/profiler"
	"hipstr/internal/testprogs"
)

// TestConcurrentScrapesDuringExecution is the -race proof of the pump
// design: one goroutine drives a PSR VM in chunks, publishing a snapshot
// at every chunk boundary, while scrapers hammer /metrics, /stats.json,
// and /profile throughout. Registry collectors read non-atomic VM state,
// so this only stays race-free because handlers never call Snapshot()
// themselves. Scrapers also assert the published counters never move
// backwards.
func TestConcurrentScrapesDuringExecution(t *testing.T) {
	tc := testprogs.All()["nested"]
	bin, err := compiler.Compile(tc.Mod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dbt.DefaultConfig()
	cfg.MigrateProb = 0
	vm, err := dbt.New(bin, isa.X86, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(bin, 8)
	prof.SetResolver(vm.ResolvePC)
	prof.Attach(vm.P.M)
	prof.BindTelemetry(vm.Telemetry())

	var pump obsrv.Pump
	h, _ := obsrv.NewHandler(obsrv.Options{
		Snapshot: pump.Latest,
		Tracer:   vm.Telemetry().Trace,
		Profile:  func() (profiler.Report, bool) { return prof.Report(), true },
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	pump.Publish(vm.Telemetry().Snapshot())
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastHits uint64
			for n := 0; n < 25; n++ {
				for _, path := range []string{"/metrics", "/stats.json", "/profile"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("%s = %d", path, resp.StatusCode)
						return
					}
					if path == "/metrics" {
						h := promValue(t, string(body), "machine_blockcache_hits")
						if h < lastHits {
							t.Errorf("machine_blockcache_hits went backwards: %d -> %d", lastHits, h)
						}
						lastHits = h
					}
				}
			}
		}()
	}

	// Drive the VM in small chunks, publishing at each boundary, for as
	// long as the scrapers run — every scrape overlaps a publish.
	scrapersDone := make(chan struct{})
	go func() { wg.Wait(); close(scrapersDone) }()
	const chunk = 20_000
	chunks := 0
	for {
		select {
		case <-scrapersDone:
		default:
			if !vm.P.Exited {
				if _, err := vm.Run(chunk); err != nil {
					t.Fatal(err)
				}
				if chunks++; chunks > 10_000 {
					t.Fatal("program did not exit")
				}
			}
			pump.Publish(vm.Telemetry().Snapshot())
			continue
		}
		break
	}

	if !vm.P.Exited {
		t.Fatal("program did not exit")
	}
	snap, _ := pump.Latest()
	if snap.Counters["machine.blockcache.hits"] == 0 {
		t.Error("no block cache hits recorded")
	}
	if snap.Counters["profiler.samples"] == 0 {
		t.Error("profiler collector not publishing through the pump")
	}
}

func promValue(t *testing.T, body, series string) uint64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", series, body)
	return 0
}
